package main

import (
	"bytes"
	"fmt"
	"time"

	"github.com/datacomp/datacomp/internal/adaptive"
	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/core"
	"github.com/datacomp/datacomp/internal/corpus"
	"github.com/datacomp/datacomp/internal/trace"
)

// runAdaptive demonstrates the closed-loop codec controller on a serving
// path whose traffic mix shifts mid-run, the way a service's payload
// population drifts across a day. The class starts on a deliberately
// conservative static default (zlib-1, the fleet-wide safe choice); the
// controller shadow-measures candidates on reservoir samples of the live
// payloads and swaps the serving config when one wins by the hysteresis
// margin. Every payload is also compressed through the static default so
// the run ends with a measured bytes win, not a modeled one.
func runAdaptive(tracer *trace.Tracer) {
	fmt.Println("=== adaptive: closed-loop codec selection on a shifting traffic mix ===")
	ctrl, err := adaptive.New(adaptive.Config{
		Default:    core.Config{Algorithm: "zlib", Level: 1},
		Interval:   200 * time.Millisecond,
		MinSamples: 4,
		TrainDict:  true,
		Tracer:     tracer,
	})
	if err != nil {
		fatal(err)
	}
	defer ctrl.Close()
	h, err := ctrl.Handle("svc:mixed")
	if err != nil {
		fatal(err)
	}
	ctrl.Start()

	static, err := codec.NewEngine("zlib", codec.WithLevel(1))
	if err != nil {
		fatal(err)
	}

	phases := []struct {
		name string
		gen  func(i int64) []byte
	}{
		{"structured logs, 4 KiB", func(i int64) []byte { return corpus.LogLines(i, 4<<10) }},
		{"serialized records, 1 KiB", func(i int64) []byte { return corpus.Records(i, 1<<10) }},
		{"source blobs, 8 KiB", func(i int64) []byte { return corpus.SourceCode(i, 8<<10) }},
	}

	start := time.Now()
	var rawN, adN, stN int64
	var buf, sbuf, out []byte
	for pi, ph := range phases {
		fmt.Printf("--- phase %d: %s (serving %s) ---\n", pi+1, ph.name, cfgLabel(h.Config()))
		deadline := time.Now().Add(1200 * time.Millisecond)
		lastGen, last := h.Generation(), cfgLabel(h.Config())
		for i := int64(0); time.Now().Before(deadline); i++ {
			src := ph.gen(int64(pi*1000) + i%64)
			buf, err = h.Compress(buf[:0], src)
			if err != nil {
				fatal(err)
			}
			sbuf, err = static.Compress(sbuf[:0], src)
			if err != nil {
				fatal(err)
			}
			rawN += int64(len(src))
			adN += int64(len(buf))
			stN += int64(len(sbuf))
			// Spot-check the serving path end to end: frames written
			// moments before a swap must decode after it.
			if i%8 == 0 {
				out, err = h.Decompress(out[:0], buf)
				if err != nil {
					fatal(err)
				}
				if !bytes.Equal(out, src) {
					fatal(fmt.Errorf("adaptive roundtrip mismatch at gen %d", h.Generation()))
				}
			}
			if gen := h.Generation(); gen != lastGen {
				cur := cfgLabel(h.Config())
				margin := 0.0
				for _, s := range ctrl.Status() {
					if s.Class == "svc:mixed" && s.HasDecision {
						margin = s.Decision.MarginVsDefault()
					}
				}
				fmt.Printf("  t=%5s swap: %s -> %s (gen %d, margin vs default %+.1f%%)\n",
					time.Since(start).Round(100*time.Millisecond), last, cur, gen, margin*100)
				lastGen, last = gen, cur
			}
			// Leave headroom so the shadow worker's budget is visible
			// rather than starved by the foreground loop.
			time.Sleep(500 * time.Microsecond)
		}
	}

	fmt.Printf("\nbytes: raw=%d  adaptive=%d (ratio %.2f)  static zlib-1=%d (ratio %.2f)\n",
		rawN, adN, float64(rawN)/float64(adN), stN, float64(rawN)/float64(stN))
	if adN < stN {
		fmt.Printf("adaptive stored %.1f%% fewer bytes than the static default\n",
			100*(1-float64(adN)/float64(stN)))
	}
	for _, s := range ctrl.Status() {
		fmt.Printf("class %-10s gen=%d swaps=%d serving=%s feasible=%v retired-gen decodes=%d\n",
			s.Class, s.Generation, s.Swaps, cfgLabel(h.Config()), s.Feasible, s.DecodeRetired)
	}
}

// cfgLabel renders a config including the trained dictionary the stock
// String() omits — dict adoptions are exactly the swaps worth seeing here.
func cfgLabel(c core.Config) string {
	if len(c.Dict) > 0 {
		return fmt.Sprintf("%s+dict(%dB)", c.String(), len(c.Dict))
	}
	return c.String()
}
