package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"github.com/datacomp/datacomp/internal/corpus"
	"github.com/datacomp/datacomp/internal/faultinject"
	"github.com/datacomp/datacomp/internal/rpc"
	"github.com/datacomp/datacomp/internal/telemetry"
	"github.com/datacomp/datacomp/internal/trace"
)

// runChaos drives the RPC serving path through the fault-injection
// harness: an echo server on a loopback pipe, a client whose read side
// randomly flips bits, and a retry/redial policy that survives it. The
// invariant on display is the hardening contract — every corrupted
// response is detected (ErrCorrupt), none is silently wrong.
//
// tracer may be nil (tracing off). When on, every call records an
// "rpc.call" root that propagates over the wire into a stitched
// "rpc.serve" half, with retry and breaker events attached — the traces
// retained by the flight recorder show exactly how the injected
// corruption was absorbed.
func runChaos(tracer *trace.Tracer) {
	fmt.Println("=== chaos: bit-flip injection on the RPC serving path ===")
	comp := rpc.Compression{Codec: "zstd", Level: 1, Checksum: true}
	server := rpc.NewServer(comp, rpc.WithShedThreshold(64), rpc.WithServerTracer(tracer))
	server.Register("echo", rpc.Func(func(req []byte) ([]byte, error) { return req, nil }))

	reg := telemetry.Default
	corruptC := reg.Counter("rpc_corrupt_frames_total", "frames failing integrity verification")
	retriesC := reg.Counter("rpc_retries_total", "retried client calls")
	corrupt0, retries0 := corruptC.Value(), retriesC.Value()

	flipSeed := uint64(*seed)
	redials := 0
	dial := func(ctx context.Context) (io.ReadWriter, error) {
		cc, sc := net.Pipe()
		go func() {
			_ = server.ServeConn(context.Background(), sc)
			sc.Close()
		}()
		flipSeed++
		redials++
		return faultinject.New(cc,
			faultinject.WithSeed(flipSeed), faultinject.WithBitFlips(0.00001)), nil
	}
	conn, _ := dial(context.Background())
	redials = 0 // the first dial is setup, not recovery
	client, err := rpc.NewClient(conn, comp,
		rpc.WithTracer(tracer),
		rpc.WithRedial(dial),
		rpc.WithRetry(rpc.RetryPolicy{
			Max:        3,
			Backoff:    2 * time.Millisecond,
			Idempotent: func(string) bool { return true },
		}),
		rpc.WithBreaker(rpc.BreakerPolicy{Threshold: 8, Cooldown: 50 * time.Millisecond}),
	)
	if err != nil {
		fatal(err)
	}

	rng := rand.New(rand.NewSource(*seed))
	const calls = 200
	okCount, failed, wrong := 0, 0, 0
	ctx := context.Background()
	t0 := time.Now()
	for i := 0; i < calls; i++ {
		payload := corpus.ModelB.Request(rng)
		resp, err := client.Call(ctx, "echo", payload)
		switch {
		case err == nil && bytes.Equal(resp, payload):
			okCount++
		case err == nil:
			wrong++ // checksum hole: corruption delivered as data
		case errors.Is(err, rpc.ErrCorrupt):
			failed++
		default:
			failed++
		}
	}
	elapsed := time.Since(t0)

	fmt.Printf("calls            %d (%.1f/s)\n", calls, float64(calls)/elapsed.Seconds())
	fmt.Printf("succeeded        %d (after up to 3 retries)\n", okCount)
	fmt.Printf("failed detected  %d\n", failed)
	fmt.Printf("silently wrong   %d\n", wrong)
	fmt.Printf("corrupt frames   %d (detected by frame checksum)\n", corruptC.Value()-corrupt0)
	fmt.Printf("retries          %d\n", retriesC.Value()-retries0)
	fmt.Printf("redials          %d (desynced connections replaced)\n", redials)
	if wrong > 0 {
		fatal(fmt.Errorf("%d corrupted responses were NOT detected", wrong))
	}
	fmt.Println("\nEvery injected corruption was caught by the XXH64 frame checksum;")
	fmt.Println("retry + redial recovered the idempotent calls that hit it.")
}
