// Command servicechar reproduces the paper's service-level
// characterization (Section IV): Table I's service inventory and Figures
// 6-13. Select sections with flags; by default everything runs.
//
//	-table1  service inventory
//	-fig6    per-service Zstd cycle shares
//	-fig7    DW1-4 splits: compression/decompression and match-finding vs
//	         entropy (measured from the warehouse workflows)
//	-fig8    CACHE1 item size distribution
//	-fig9    CACHE2 item size distribution
//	-fig10   CACHE1 dictionary vs plain speed/ratio curve (levels 1,3,6,11)
//	-fig11   CACHE2 dictionary vs plain speed/ratio curve
//	-fig12   ADS1 models A/B/C across Zstd levels -5..9
//	-fig13   KVSTORE1 block size sweep 1-64 KiB at Zstd level 1
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"
	"time"

	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/corpus"
	"github.com/datacomp/datacomp/internal/dict"
	"github.com/datacomp/datacomp/internal/fleet"
	"github.com/datacomp/datacomp/internal/kvstore"
	"github.com/datacomp/datacomp/internal/stats"
	"github.com/datacomp/datacomp/internal/telemetry/boot"
	"github.com/datacomp/datacomp/internal/warehouse"
)

var seed = flag.Int64("seed", 423, "generation seed")

func main() {
	table1 := flag.Bool("table1", false, "print Table I")
	fig6 := flag.Bool("fig6", false, "print Fig 6")
	fig7 := flag.Bool("fig7", false, "print Fig 7")
	fig8 := flag.Bool("fig8", false, "print Fig 8")
	fig9 := flag.Bool("fig9", false, "print Fig 9")
	fig10 := flag.Bool("fig10", false, "print Fig 10")
	fig11 := flag.Bool("fig11", false, "print Fig 11")
	fig12 := flag.Bool("fig12", false, "print Fig 12")
	fig13 := flag.Bool("fig13", false, "print Fig 13")
	chaos := flag.Bool("chaos", false, "run the fault-injection harness against a loopback RPC server and report corruption handling")
	adaptiveF := flag.Bool("adaptive", false, "run the online adaptive codec controller demo on a shifting traffic mix")
	obs := boot.Register(flag.CommandLine)
	flag.Parse()

	rt, err := obs.Start("servicechar")
	if err != nil {
		fatal(err)
	}
	defer rt.Close()

	if *chaos {
		runChaos(rt.Tracer)
		return
	}
	if *adaptiveF {
		runAdaptive(rt.Tracer)
		return
	}

	all := !(*table1 || *fig6 || *fig7 || *fig8 || *fig9 || *fig10 || *fig11 || *fig12 || *fig13)
	if all || *table1 {
		printTable1()
	}
	if all || *fig6 {
		printFig6()
	}
	if all || *fig7 {
		printFig7()
	}
	if all || *fig8 {
		printItemSizes("CACHE1", "Fig 8", cache1Types())
	}
	if all || *fig9 {
		printItemSizes("CACHE2", "Fig 9", cache2Types())
	}
	if all || *fig10 {
		printDictCurve("CACHE1", "Fig 10", cache1Types())
	}
	if all || *fig11 {
		printDictCurve("CACHE2", "Fig 11", cache2Types())
	}
	if all || *fig12 {
		printFig12()
	}
	if all || *fig13 {
		printFig13()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "servicechar:", err)
	os.Exit(1)
}

func printTable1() {
	fmt.Println("=== Table I: characterized services ===")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "service\tcategory\tdescription\tresource boundedness\tkey takeaway")
	rows := [][]string{
		{"DW1", "Data warehouse", "Distributed data delivery service (ingestion, zstd-7)", "Storage bound", "Compute-storage cost trade-offs"},
		{"DW2", "Data warehouse", "Distributed data shuffle service (zstd-1)", "Storage bound", "Compute-storage cost trade-offs"},
		{"DW3", "Data warehouse", "Distributed scheduling framework for data warehouse jobs", "Storage bound", "Compute-storage cost trade-offs"},
		{"DW4", "Data warehouse", "Distributed scheduling framework for ML jobs", "Storage bound", "Compute-storage cost trade-offs"},
		{"ADS1", "Ads", "Ads serving ML inference service", "Network bound", "Network compression and model variance"},
		{"CACHE1", "Caching", "Distributed memory object caching service", "Compute/memory bound", "Small data compression"},
		{"CACHE2", "Caching", "Distributed social graph data store service", "Compute/memory bound", "Small data compression"},
		{"KVSTORE1", "Key-value store", "Large distributed key-value store (LSM)", "Storage bound", "Different block sizes"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\n", r[0], r[1], r[2], r[3], r[4])
	}
	w.Flush()
	fmt.Println()
}

// fig6Map pairs the paper's service names with the calibrated fleet
// profiles.
var fig6Map = []struct {
	paper, fleetName string
	paperPct         float64
}{
	{"DW1", "dw-ingestion", 28.5},
	{"DW2", "dw-shuffle", 30.0},
	{"DW3", "dw-spark", 13.5},
	{"DW4", "dw-ml", 8.0},
	{"ADS1", "ads-serving", 4.2},
	{"CACHE1", "cache1", 5.2},
	{"CACHE2", "cache2", 4.5},
	{"KVSTORE1", "kvstore1", 15.0},
}

func printFig6() {
	fmt.Println("=== Fig 6: compute cycles (%) used by Zstd per service ===")
	p := &fleet.Profiler{Samples: 1_000_000, Seed: *seed, MeasureBytes: 512 << 10}
	r, err := p.Profile(fleet.DefaultFleet())
	if err != nil {
		fatal(err)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "service\tzstd % (profiled)\tcalibration target")
	for _, m := range fig6Map {
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\n", m.paper, r.ServiceZstdPct[m.fleetName], m.paperPct)
	}
	w.Flush()
	fmt.Println()
}

func printFig7() {
	fmt.Println("=== Fig 7: warehouse splits (measured from the DW workflows) ===")
	ds1, st1, err := warehouse.Ingest(*seed, 6, 30000)
	if err != nil {
		fatal(err)
	}
	_, st2, err := warehouse.Shuffle(ds1, 8)
	if err != nil {
		fatal(err)
	}
	ds3, st3, err := warehouse.SparkWorker(ds1, 3)
	if err != nil {
		fatal(err)
	}
	_ = ds3
	st4, err := warehouse.MLJob(ds1, 2)
	if err != nil {
		fatal(err)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workflow\tcompress %\tdecompress %\tmatch-find % of comp\tentropy % of comp\tratio")
	for _, row := range []struct {
		name string
		st   warehouse.Stats
	}{
		{"DW1 ingest (zstd-7)", st1},
		{"DW2 shuffle (zstd-1)", st2},
		{"DW3 spark (zstd-1)", st3},
		{"DW4 ml (zstd-1)", st4},
	} {
		codecTime := row.st.CompressTime + row.st.DecompressTime
		compPct, decompPct := 0.0, 0.0
		if codecTime > 0 {
			compPct = float64(row.st.CompressTime) / float64(codecTime) * 100
			decompPct = float64(row.st.DecompressTime) / float64(codecTime) * 100
		}
		entPct := 0.0
		if row.st.CompressTime > 0 {
			entPct = float64(row.st.EntropyTime) / float64(row.st.CompressTime) * 100
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.2f\n",
			row.name, compPct, decompPct,
			row.st.MatchFindFraction()*100, entPct, row.st.CompressionRatio())
	}
	w.Flush()
	fmt.Println("(paper: match finding ≈80% of zstd time for DW1 at level 7, ≈30% for DW4 at level 1)")
	fmt.Println()
}

func cache1Types() []corpus.ItemType {
	t := corpus.DefaultItemTypes()
	return []corpus.ItemType{t[0], t[2]} // user profiles + graph edges
}

func cache2Types() []corpus.ItemType {
	t := corpus.DefaultItemTypes()
	return []corpus.ItemType{t[1], t[3]} // posts + media manifests
}

func printItemSizes(service, figure string, types []corpus.ItemType) {
	fmt.Printf("=== %s: item size distribution for %s ===\n", figure, service)
	h := stats.NewSizeHistogram()
	for i, typ := range types {
		for _, item := range corpus.CacheItems(*seed+int64(i), typ, 20000) {
			h.Observe(len(item))
		}
	}
	fmt.Print(h.String())
	fmt.Printf("mean %.0fB; %.1f%% below 1KiB (paper: strongly skewed small with a long tail)\n\n",
		h.Mean(), h.FractionBelow(1024)*100)
}

func printDictCurve(service, figure string, types []corpus.ItemType) {
	fmt.Printf("=== %s: speed vs ratio, plain vs dictionary, %s ===\n", figure, service)
	// Train one dictionary per type, as the paper's typed caches do.
	var trainSamples [][]byte
	var items [][]byte
	for i, typ := range types {
		trainSamples = append(trainSamples, corpus.CacheItems(*seed+int64(i), typ, 1500)...)
		items = append(items, corpus.CacheItems(*seed+100+int64(i), typ, 400)...)
	}
	d, err := dict.Train(trainSamples, dict.DefaultParams(16<<10))
	if err != nil {
		fatal(err)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "level\tmode\tratio\tcomp MB/s")
	for _, level := range []int{1, 3, 6, 11} {
		for _, mode := range []string{"plain", "dict"} {
			opts := []codec.Option{codec.WithLevel(level)}
			if mode == "dict" {
				opts = append(opts, codec.WithDict(d))
			}
			eng, err := codec.NewEngine("zstd", opts...)
			if err != nil {
				fatal(err)
			}
			m, err := codec.Measure(eng, items, 0, 2)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(w, "%d\t%s\t%.2f\t%.1f\n", level, mode, m.Ratio(), m.CompressMBps())
		}
	}
	w.Flush()
	fmt.Println("(paper: dictionary compression achieves a much higher ratio at every level)")
	fmt.Println()
}

func printFig12() {
	fmt.Println("=== Fig 12: ADS1 ratio and speed by Zstd level (-5..9) per model ===")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "model\tlevel\tratio\tcomp MB/s")
	for _, m := range corpus.AdsModels() {
		reqs := m.Requests(*seed, 3)
		for _, level := range []int{-5, -3, -1, 1, 2, 3, 4, 5, 6, 7, 8, 9} {
			eng, err := codec.NewEngine("zstd", codec.WithLevel(level))
			if err != nil {
				fatal(err)
			}
			mt, err := codec.Measure(eng, reqs, 0, 1)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(w, "%s\t%d\t%.2f\t%.1f\n", m.Name, level, mt.Ratio(), mt.CompressMBps())
		}
	}
	w.Flush()
	fmt.Println("(paper: ratios and speeds vary strongly by model; sparser embeddings compress better)")
	fmt.Println()
}

func printFig13() {
	fmt.Println("=== Fig 13: KVSTORE1 block-size sweep (Zstd level 1) ===")
	sample := corpus.SSTSample(*seed, 4<<20)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "block\tratio\tcomp MB/s\tdecomp time/block")
	for _, bs := range []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10} {
		eng, err := codec.NewEngine("zstd", codec.WithLevel(1))
		if err != nil {
			fatal(err)
		}
		m, err := codec.Measure(eng, [][]byte{sample}, bs, 2)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "%s\t%.2f\t%.1f\t%v\n",
			stats.FormatBytes(bs), m.Ratio(), m.CompressMBps(),
			m.DecompressPerBlock().Round(100*time.Nanosecond))
	}
	w.Flush()
	fmt.Println("(paper: larger blocks raise ratio and per-block decompression time; small blocks show non-monotonic speed)")

	// End-to-end flavour: load the LSM store and report its read path.
	// Characterization measures block compression alone, so the WAL is off.
	ctx := context.Background()
	db, err := kvstore.Open(ctx, "",
		kvstore.WithBlockSize(16<<10), kvstore.WithSeed(*seed), kvstore.WithoutWAL())
	if err != nil {
		fatal(err)
	}
	pairs := corpus.KVPairs(*seed, 30000)
	for _, kv := range pairs {
		if err := db.Put(ctx, kv.Key, kv.Value); err != nil {
			fatal(err)
		}
	}
	if err := db.Flush(ctx); err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	for i := 0; i < 500; i++ {
		if _, _, err := db.Get(ctx, pairs[rng.Intn(len(pairs))].Key); err != nil {
			fatal(err)
		}
	}
	st := db.Stats()
	fmt.Printf("end-to-end LSM (16KiB blocks): ratio %.2f, write amp %.2f, decomp/block %v, cache hits %d\n\n",
		st.CompressionRatio(), st.WriteAmplification(),
		st.DecompressPerBlock().Round(100*time.Nanosecond), st.BlockCacheHits)
}
