package main

import (
	"context"
	"testing"
	"time"
)

// logWriter routes loadchar's progress lines into the test log.
type logWriter struct{ t *testing.T }

func (w logWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

func baseConfig() config {
	return config{
		nodes:      3,
		replicas:   3,
		duration:   1500 * time.Millisecond,
		workers:    4,
		readFrac:   0.7,
		keys:       2000,
		zipfS:      1.1,
		valueBytes: 128,
		seed:       42,
	}
}

func TestLoadcharClosedLoopCrash(t *testing.T) {
	cfg := baseConfig()
	cfg.crash = true
	s, err := run(context.Background(), cfg, logWriter{t})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if s.Ops == 0 || s.Writes.Count == 0 || s.Reads.Count == 0 {
		t.Fatalf("no traffic: %+v", s)
	}
	if s.Crashed == "" {
		t.Fatal("crash requested but no node crashed")
	}
	if s.AckedKeys == 0 {
		t.Fatal("no acked writes recorded")
	}
	if s.LostAcked != 0 {
		t.Fatalf("%d acked writes lost across crash+restart", s.LostAcked)
	}
}

func TestLoadcharOpenLoopDiurnal(t *testing.T) {
	cfg := baseConfig()
	cfg.duration = time.Second
	cfg.rate = 400
	cfg.diurnalPeriod = 500 * time.Millisecond
	cfg.diurnalDepth = 0.6
	s, err := run(context.Background(), cfg, logWriter{t})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if s.Ops == 0 {
		t.Fatal("open loop issued no ops")
	}
	// The wave caps the offered rate below the flat target.
	if float64(s.Ops) > cfg.rate*cfg.duration.Seconds()*1.5 {
		t.Fatalf("open loop overshot: %d ops at target %.0f/s", s.Ops, cfg.rate)
	}
	if s.LostAcked != 0 {
		t.Fatalf("%d acked writes lost", s.LostAcked)
	}
}

func TestWaveBounds(t *testing.T) {
	cfg := config{diurnalPeriod: time.Second, diurnalDepth: 0.5}
	for _, at := range []time.Duration{0, 250 * time.Millisecond, 500 * time.Millisecond, time.Second} {
		m := wave(at, cfg)
		if m < 0.5-1e-9 || m > 1+1e-9 {
			t.Fatalf("wave(%v) = %v out of [0.5,1]", at, m)
		}
	}
	if wave(123*time.Millisecond, config{}) != 1 {
		t.Fatal("wave without period must be flat")
	}
	if w := wave(500*time.Millisecond, cfg); w > 0.51 {
		t.Fatalf("trough should bottom near depth: %v", w)
	}
}
