// Command loadchar drives the cluster the way the paper's serving fleet
// is driven: a zipfian key population, a configurable read/write mix,
// closed- or open-loop arrival, and an optional diurnal wave shaping the
// offered rate. It reports p50/p99/p999 latencies per op class and a JSON
// summary, and with -crash it kills and restarts a node mid-run while
// verifying that no acknowledged write is ever lost — the paper's
// durability bar for compressed storage paths.
//
// Closed loop (-rate 0) measures capacity: each worker issues its next op
// the moment the previous one completes. Open loop (-rate N) measures
// latency under an offered load that does not slow down when the system
// does, so queueing delay shows up in the tail percentiles where it
// belongs.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/datacomp/datacomp/internal/adaptive"
	"github.com/datacomp/datacomp/internal/cluster"
	"github.com/datacomp/datacomp/internal/core"
	"github.com/datacomp/datacomp/internal/rpc"
	"github.com/datacomp/datacomp/internal/stats"
	"github.com/datacomp/datacomp/internal/telemetry"
	"github.com/datacomp/datacomp/internal/telemetry/boot"
)

type config struct {
	nodes         int
	replicas      int
	duration      time.Duration
	workers       int
	rate          float64 // ops/s; 0 = closed loop
	readFrac      float64
	keys          int
	zipfS         float64
	valueBytes    int
	diurnalPeriod time.Duration
	diurnalDepth  float64
	crash         bool
	shed          int
	degrade       time.Duration
	adaptive      bool
	seed          int64
	jsonOut       bool
}

type latencySummary struct {
	Count  int64 `json:"count"`
	P50us  int64 `json:"p50_us"`
	P99us  int64 `json:"p99_us"`
	P999us int64 `json:"p999_us"`
}

type adaptiveClassSummary struct {
	Class         string  `json:"class"`
	Config        string  `json:"config"`
	Generation    uint64  `json:"generation"`
	Swaps         uint64  `json:"swaps"`
	Feasible      bool    `json:"feasible"`
	Margin        float64 `json:"margin_vs_default"`
	DecodeRetired uint64  `json:"decode_retired"`
}

type adaptiveSummary struct {
	Swaps      uint64                 `json:"swaps"`
	Infeasible int                    `json:"infeasible_classes"`
	Classes    []adaptiveClassSummary `json:"classes"`
}

type summary struct {
	Nodes          int              `json:"nodes"`
	Replicas       int              `json:"replicas"`
	Workers        int              `json:"workers"`
	RateTarget     float64          `json:"rate_target_ops_s"`
	DurationSec    float64          `json:"duration_s"`
	Ops            int64            `json:"ops"`
	Throughput     float64          `json:"throughput_ops_s"`
	Reads          latencySummary   `json:"reads"`
	Writes         latencySummary   `json:"writes"`
	Errors         int64            `json:"errors"`
	QuorumFailures int64            `json:"quorum_failures"`
	Crashed        string           `json:"crashed_node,omitempty"`
	AckedKeys      int              `json:"acked_keys"`
	LostAcked      int              `json:"lost_acked_writes"`
	ReadRepairs    int64            `json:"read_repairs"`
	Rebalanced     int64            `json:"rebalanced_records"`
	Adaptive       *adaptiveSummary `json:"adaptive,omitempty"`
}

// wave is the instantaneous offered-rate multiplier in [1-depth, 1]: a
// cosine trough bottoming out mid-run, the compressed shape of a
// datacenter's overnight valley.
func wave(elapsed time.Duration, cfg config) float64 {
	if cfg.diurnalPeriod <= 0 || cfg.diurnalDepth <= 0 {
		return 1
	}
	phase := 2 * math.Pi * float64(elapsed) / float64(cfg.diurnalPeriod)
	return 1 - cfg.diurnalDepth*(0.5-0.5*math.Cos(phase))
}

// ackedWrites records, per key, the last value whose Put was acknowledged,
// plus the values of later writes that FAILED indeterminately — a Put that
// errors after reaching some replica has no rollback, so its higher
// version may legitimately win a later quorum read. A per-key mutex is
// held across the Put so the model's order matches the cluster's version
// order even with zipfian write collisions.
type ackedWrites struct {
	mu      []sync.Mutex
	vals    [][]byte
	pending [][][]byte // failed writes issued after the current acked value
}

func newAckedWrites(keys int) *ackedWrites {
	return &ackedWrites{
		mu:      make([]sync.Mutex, keys),
		vals:    make([][]byte, keys),
		pending: make([][][]byte, keys),
	}
}

// record notes a write outcome for key idx; the caller holds mu[idx].
// A success supersedes every earlier failed write (their versions are
// lower than the acked quorum's, so they can never win a read again).
func (a *ackedWrites) record(idx int, val []byte, err error) {
	if err == nil {
		a.vals[idx] = val
		a.pending[idx] = nil
		return
	}
	a.pending[idx] = append(a.pending[idx], val)
}

// check reports whether an observed read for key idx is consistent:
// the last acked value, or any indeterminate write issued after it.
func (a *ackedWrites) check(idx int, got []byte, found bool) bool {
	if found && bytes.Equal(got, a.vals[idx]) {
		return true
	}
	for _, p := range a.pending[idx] {
		if found && bytes.Equal(got, p) {
			return true
		}
	}
	return false
}

func run(ctx context.Context, cfg config, errw io.Writer) (*summary, error) {
	opts := []cluster.Option{
		cluster.WithReplication(cfg.replicas),
	}
	// Adaptive mode: every RPC link (client->node and node->node) rides
	// per-method adaptive classes off one shared controller. The static
	// default is deliberately the fleet's conservative zlib-1 so the run
	// demonstrates the controller discovering a better config online.
	var actrl *adaptive.Controller
	nopts := nodeOpts(cfg)
	if cfg.adaptive {
		var err error
		actrl, err = adaptive.New(adaptive.Config{
			Default:    core.Config{Algorithm: "zlib", Level: 1},
			Interval:   250 * time.Millisecond,
			MinSamples: 4,
		})
		if err != nil {
			return nil, err
		}
		defer actrl.Close()
		actrl.Start()
		comp := rpc.Compression{Adaptive: actrl}
		opts = append(opts, cluster.WithCompression(comp))
		nopts = append(nopts, cluster.WithNodeCompression(comp))
	}
	opts = append(opts, cluster.WithNodeDefaults(nopts...))
	c := cluster.New(opts...)
	defer c.Close()
	for i := 0; i < cfg.nodes; i++ {
		if _, err := c.AddNode(ctx, fmt.Sprintf("node-%d", i)); err != nil {
			return nil, fmt.Errorf("start node-%d: %w", i, err)
		}
	}

	readLat := telemetry.Default.Histogram("loadchar_read_latency", "cluster read latency", "us")
	writeLat := telemetry.Default.Histogram("loadchar_write_latency", "cluster write latency", "us")

	acked := newAckedWrites(cfg.keys)
	var ops, errs, quorumErrs atomic.Int64

	runCtx, cancel := context.WithTimeout(ctx, cfg.duration)
	defer cancel()
	start := time.Now()

	// Crash choreography: kill node-1 a third of the way in, bring it
	// back at two thirds. Writes keep flowing the whole time; quorum
	// absorbs the outage.
	var crashedName string
	if cfg.crash && cfg.nodes >= 3 {
		crashedName = "node-1"
		n := c.Node(crashedName)
		go func() {
			select {
			case <-time.After(cfg.duration / 3):
				n.Crash()
				fmt.Fprintf(errw, "loadchar: crashed %s at %v\n", crashedName, time.Since(start).Round(time.Millisecond))
			case <-runCtx.Done():
				return
			}
			select {
			case <-time.After(cfg.duration / 3):
				if err := n.Restart(ctx); err != nil {
					fmt.Fprintf(errw, "loadchar: restart %s: %v\n", crashedName, err)
					return
				}
				fmt.Fprintf(errw, "loadchar: restarted %s at %v\n", crashedName, time.Since(start).Round(time.Millisecond))
			case <-runCtx.Done():
			}
		}()
	}

	// Open loop: a dispatcher paces admissions; workers drain the queue
	// so queueing delay counts against latency. Closed loop: workers
	// self-admit, with the diurnal wave thinning admissions.
	var admit chan time.Time
	if cfg.rate > 0 {
		admit = make(chan time.Time, int(math.Max(cfg.rate, 64)))
		go func() {
			defer close(admit)
			for {
				m := wave(time.Since(start), cfg)
				gap := time.Duration(float64(time.Second) / (cfg.rate * m))
				select {
				case <-runCtx.Done():
					return
				case <-time.After(gap):
				}
				select {
				case admit <- time.Now():
				default: // queue saturated: the backlog already measures overload
				}
			}
		}()
	}

	phrase := []byte("the quick brown datacenter compresses every block it serves ")
	filler := bytes.Repeat(phrase, 1+cfg.valueBytes/len(phrase))

	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)*7919))
			var zipf *stats.Zipf
			if cfg.zipfS > 1 {
				zipf = stats.NewZipf(rng, cfg.zipfS, uint64(cfg.keys))
			}
			var seq uint64
			for {
				var issued time.Time
				if admit != nil {
					var ok bool
					select {
					case <-runCtx.Done():
						return
					case issued, ok = <-admit:
						if !ok {
							return
						}
					}
				} else {
					if runCtx.Err() != nil {
						return
					}
					if m := wave(time.Since(start), cfg); m < 1 && rng.Float64() > m {
						select {
						case <-runCtx.Done():
							return
						case <-time.After(time.Millisecond):
						}
						continue
					}
					issued = time.Now()
				}

				var idx int
				if zipf != nil {
					idx = int(zipf.Sample()-1) % cfg.keys
				} else {
					idx = rng.Intn(cfg.keys)
				}
				key := []byte(fmt.Sprintf("user:%08d", idx))

				if rng.Float64() < cfg.readFrac {
					_, _, err := c.Get(runCtx, key)
					readLat.Observe(time.Since(issued).Microseconds())
					countErr(runCtx, err, &errs, &quorumErrs)
				} else {
					seq++
					val := make([]byte, 0, cfg.valueBytes+24)
					val = fmt.Appendf(val, "w%03d-%016d|", w, seq)
					val = append(val, filler[:cfg.valueBytes]...)
					aw := &acked.mu[idx]
					aw.Lock()
					err := c.Put(runCtx, key, val)
					acked.record(idx, val, err)
					aw.Unlock()
					writeLat.Observe(time.Since(issued).Microseconds())
					countErr(runCtx, err, &errs, &quorumErrs)
				}
				ops.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// If the crash schedule is still mid-flight (very short runs), make
	// sure the node is back before verification.
	if crashedName != "" {
		if n := c.Node(crashedName); n != nil && !n.Running() {
			// The crash goroutine may be restarting it concurrently;
			// only a restart that leaves the node down is fatal.
			if err := n.Restart(ctx); err != nil && !n.Running() {
				return nil, fmt.Errorf("restart %s for verification: %w", crashedName, err)
			}
		}
	}

	// Verification: every acknowledged write must read back exactly.
	ackedKeys, lost := 0, 0
	for idx := range acked.vals {
		if acked.vals[idx] == nil {
			continue
		}
		ackedKeys++
		key := []byte(fmt.Sprintf("user:%08d", idx))
		got, ok, err := c.Get(ctx, key)
		if err != nil || !acked.check(idx, got, ok) {
			lost++
			if lost <= 5 {
				fmt.Fprintf(errw, "loadchar: LOST ACKED WRITE %s (ok=%v err=%v)\n", key, ok, err)
			}
		}
	}

	var asum *adaptiveSummary
	if actrl != nil {
		asum = &adaptiveSummary{}
		for _, s := range actrl.Status() {
			cs := adaptiveClassSummary{
				Class:         s.Class,
				Config:        s.Config,
				Generation:    s.Generation,
				Swaps:         s.Swaps,
				Feasible:      s.Feasible,
				DecodeRetired: s.DecodeRetired,
			}
			if s.HasDecision {
				cs.Margin = s.Decision.MarginVsDefault()
			}
			asum.Swaps += s.Swaps
			if !s.Feasible {
				asum.Infeasible++
			}
			asum.Classes = append(asum.Classes, cs)
		}
	}

	rs, ws := readLat.Snapshot(), writeLat.Snapshot()
	st := c.Stats()
	return &summary{
		Nodes:       cfg.nodes,
		Replicas:    cfg.replicas,
		Workers:     cfg.workers,
		RateTarget:  cfg.rate,
		DurationSec: elapsed.Seconds(),
		Ops:         ops.Load(),
		Throughput:  float64(ops.Load()) / elapsed.Seconds(),
		Reads: latencySummary{
			Count: readLat.Count(), P50us: rs.Quantile(0.5), P99us: rs.Quantile(0.99), P999us: rs.Quantile(0.999),
		},
		Writes: latencySummary{
			Count: writeLat.Count(), P50us: ws.Quantile(0.5), P99us: ws.Quantile(0.99), P999us: ws.Quantile(0.999),
		},
		Errors:         errs.Load(),
		QuorumFailures: quorumErrs.Load(),
		Crashed:        crashedName,
		AckedKeys:      ackedKeys,
		LostAcked:      lost,
		ReadRepairs:    st.ReadRepairs,
		Rebalanced:     st.RebalancedRecords,
		Adaptive:       asum,
	}, nil
}

// countErr classifies an op error: run-end cancellation is not an error,
// quorum failures are tallied separately (they are the expected failure
// mode during a crash window).
func countErr(ctx context.Context, err error, errs, quorumErrs *atomic.Int64) {
	if err == nil || ctx.Err() != nil {
		return
	}
	errs.Add(1)
	if isQuorumErr(err) {
		quorumErrs.Add(1)
	}
}

func isQuorumErr(err error) bool {
	for e := err; e != nil; {
		if e == cluster.ErrNoQuorum {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

func nodeOpts(cfg config) []cluster.NodeOption {
	var opts []cluster.NodeOption
	if cfg.shed > 0 {
		opts = append(opts, cluster.WithNodeShedThreshold(cfg.shed))
	}
	if cfg.degrade > 0 {
		opts = append(opts, cluster.WithNodeDegrader(cfg.degrade))
	}
	return opts
}

func printHuman(w io.Writer, s *summary) {
	fmt.Fprintf(w, "=== loadchar: %d nodes, RF=%d, %d workers, %.1fs ===\n",
		s.Nodes, s.Replicas, s.Workers, s.DurationSec)
	mode := "closed-loop"
	if s.RateTarget > 0 {
		mode = fmt.Sprintf("open-loop @ %.0f ops/s", s.RateTarget)
	}
	fmt.Fprintf(w, "mode: %s   throughput: %.0f ops/s   ops: %d   errors: %d (quorum: %d)\n",
		mode, s.Throughput, s.Ops, s.Errors, s.QuorumFailures)
	fmt.Fprintf(w, "reads : n=%-8d p50=%6dµs  p99=%6dµs  p999=%6dµs\n",
		s.Reads.Count, s.Reads.P50us, s.Reads.P99us, s.Reads.P999us)
	fmt.Fprintf(w, "writes: n=%-8d p50=%6dµs  p99=%6dµs  p999=%6dµs\n",
		s.Writes.Count, s.Writes.P50us, s.Writes.P99us, s.Writes.P999us)
	if s.Crashed != "" {
		fmt.Fprintf(w, "chaos : crashed+restarted %s — %d acked keys verified, %d lost\n",
			s.Crashed, s.AckedKeys, s.LostAcked)
	} else {
		fmt.Fprintf(w, "verify: %d acked keys, %d lost\n", s.AckedKeys, s.LostAcked)
	}
	fmt.Fprintf(w, "repair: %d read-repairs   rebalanced: %d records\n", s.ReadRepairs, s.Rebalanced)
	if s.Adaptive != nil {
		fmt.Fprintf(w, "adapt : %d swaps across %d classes (%d infeasible)\n",
			s.Adaptive.Swaps, len(s.Adaptive.Classes), s.Adaptive.Infeasible)
		for _, cs := range s.Adaptive.Classes {
			fmt.Fprintf(w, "  %-16s gen=%-3d swaps=%-2d %-24s margin_vs_default=%+.1f%%\n",
				cs.Class, cs.Generation, cs.Swaps, cs.Config, cs.Margin*100)
		}
	}
}

func main() {
	var cfg config
	flag.IntVar(&cfg.nodes, "nodes", 3, "cluster size")
	flag.IntVar(&cfg.replicas, "replicas", 3, "replication factor")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "load duration")
	flag.IntVar(&cfg.workers, "workers", 8, "concurrent workers")
	flag.Float64Var(&cfg.rate, "rate", 0, "open-loop target ops/s (0 = closed loop)")
	flag.Float64Var(&cfg.readFrac, "read-frac", 0.9, "fraction of ops that are reads")
	flag.IntVar(&cfg.keys, "keys", 100_000, "key population size")
	flag.Float64Var(&cfg.zipfS, "zipf", 1.1, "zipfian skew s (<=1 for uniform keys)")
	flag.IntVar(&cfg.valueBytes, "value-bytes", 256, "value size")
	flag.DurationVar(&cfg.diurnalPeriod, "diurnal-period", 0, "diurnal wave period (0 = flat)")
	flag.Float64Var(&cfg.diurnalDepth, "diurnal-depth", 0.5, "diurnal trough depth in [0,1]")
	flag.BoolVar(&cfg.crash, "crash", false, "crash and restart a node mid-run, then verify zero lost acked writes")
	flag.IntVar(&cfg.shed, "shed", 0, "per-node shed threshold (0 = off)")
	flag.DurationVar(&cfg.degrade, "degrade", 0, "per-node degrader high watermark (0 = off)")
	flag.BoolVar(&cfg.adaptive, "adaptive", false, "serve all RPC links through the online adaptive codec controller and gate on it converging")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload seed")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit the summary as JSON on stdout")
	obs := boot.Register(flag.CommandLine)
	flag.Parse()

	rt, err := obs.Start("loadchar")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadchar:", err)
		os.Exit(1)
	}
	defer rt.Close()

	s, err := run(context.Background(), cfg, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadchar:", err)
		os.Exit(1)
	}
	if cfg.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			fmt.Fprintln(os.Stderr, "loadchar:", err)
			os.Exit(1)
		}
	} else {
		printHuman(os.Stdout, s)
	}
	if s.LostAcked > 0 {
		fmt.Fprintf(os.Stderr, "loadchar: FAIL: %d acked writes lost\n", s.LostAcked)
		os.Exit(1)
	}
	// Adaptive gates: the controller must have found at least one better
	// config (a converging closed loop swaps off the deliberately weak
	// default), and must never be serving an SLO-violating config.
	if s.Adaptive != nil {
		if s.Adaptive.Infeasible > 0 {
			fmt.Fprintf(os.Stderr, "loadchar: FAIL: %d adaptive classes serve SLO-infeasible configs\n", s.Adaptive.Infeasible)
			os.Exit(1)
		}
		if s.Adaptive.Swaps == 0 {
			fmt.Fprintln(os.Stderr, "loadchar: FAIL: adaptive controller never swapped off the static default")
			os.Exit(1)
		}
	}
}
