// Command compopt runs CompOpt's sensitivity studies from Section V of the
// paper:
//
//	-study 1  ADS1: minimize compute+network cost under a minimum
//	          compression-speed SLO (Fig 15a; paper: Zstd level 4 wins,
//	          73% below the worst configuration, LZ4-HC level 10).
//	-study 2  KVSTORE1: minimize compute+storage cost across block sizes
//	          4-64 KiB under a per-block decompression latency SLO
//	          (Fig 15b; paper: Zstd-1/64KiB unconstrained, Zstd-1/16KiB
//	          constrained).
//	-study 3  CompSim: cost versus accelerator match-window size at γ=10
//	          with EIA compute pricing (Fig 16; paper: plateau near 2^21 B
//	          for ADS1 and 2^16 B for KVSTORE1).
//
// SLO thresholds default to values scaled for this repository's pure-Go
// codecs (≈5x slower than the C libraries the paper measured); override
// them with -min-comp-mbps and -max-block-ms to explore.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"github.com/datacomp/datacomp/internal/accel"
	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/core"
	"github.com/datacomp/datacomp/internal/corpus"
)

func main() {
	study := flag.Int("study", 0, "study to run (1-3 from the paper, 4 = offload extension; 0 = all)")
	seed := flag.Int64("seed", 423, "sample generation seed")
	minCompMBps := flag.Float64("min-comp-mbps", 40, "study 1: minimum compression speed (paper: 200 MB/s on C codecs)")
	maxBlockMs := flag.Float64("max-block-ms", 0.12, "study 2: per-block decompression SLO in ms (paper: 0.08 ms on C codecs)")
	gamma := flag.Float64("gamma", 10, "study 3: accelerator speed factor γ")
	computeScale := flag.Float64("compute-scale", 1, "study 2: multiplier on the compute price (model a fleet where CPU carries opportunity cost)")
	repeats := flag.Int("repeats", 2, "measurement repeats")
	benchJSON := flag.String("bench-json", "", "price committed benchsnap rows (e.g. BENCH_codec.json) through the CompOpt cost model instead of measuring in-process")
	flag.Parse()

	if *benchJSON != "" {
		studyMeasured(*benchJSON, *minCompMBps)
		return
	}

	if *study == 0 || *study == 1 {
		study1(*seed, *minCompMBps, *repeats)
	}
	if *study == 0 || *study == 2 {
		study2(*seed, *maxBlockMs, *computeScale, *repeats)
	}
	if *study == 0 || *study == 3 {
		study3(*seed, *gamma, *repeats)
	}
	if *study == 0 || *study == 4 {
		study4(*seed, *repeats)
	}
}

// study4 is an extension beyond the paper's figures: it makes §VI-B's
// offload guidance quantitative with the internal/accel device models,
// reporting the block-size break-even for PCIe vs on-chip engines against
// the measured software baseline.
func study4(seed int64, repeats int) {
	fmt.Println("=== Extension (paper §VI-B): offload break-even, PCIe vs on-chip ===")
	sample := corpus.SSTSample(seed, 2<<20)
	params := core.DefaultCostParams()
	params.AlphaNetwork = 0
	e := &core.CompEngine{Samples: [][]byte{sample}, Params: params, Repeats: repeats}
	base, err := e.Evaluate(core.Config{Algorithm: "zstd", Level: 1, BlockSize: 64 << 10})
	if err != nil {
		fatal(err)
	}
	cpuMBps := base.Metrics.CompressMBps()
	ratio := base.Metrics.Ratio()
	devices := []accel.Device{accel.QATLike(), accel.OnChipLike()}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "block\tcpu (%.0f MB/s)\t", cpuMBps)
	for _, d := range devices {
		fmt.Fprintf(w, "%s speedup\t", d.Name)
	}
	fmt.Fprintln(w)
	for _, bs := range []int{512, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		fmt.Fprintf(w, "%d\t1.00x\t", bs)
		for _, d := range devices {
			fmt.Fprintf(w, "%.2fx\t", d.Speedup(bs, cpuMBps, ratio))
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	for _, d := range devices {
		be := d.BreakEvenBlockSize(cpuMBps, ratio)
		fmt.Printf("%s (%s): break-even block size %d B\n", d.Name, d.Placement, be)
	}
	fmt.Println("(paper §VI-B: offload overhead is significant for small blocks/data unless the accelerator is on-chip)")
}

// studyMeasured prices configurations from a committed benchsnap snapshot
// instead of fresh in-process measurements: each compress row becomes a
// Baseline via accel.MeasuredBaseline, is lifted to codec.Metrics over a
// nominal traffic volume, and flows through the same PriceMeasured pricing
// the online adaptive controller uses — one cost model for the offline
// figure, the committed benchmark, and the live serving path.
func studyMeasured(path string, minMBps float64) {
	snap, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("=== CompOpt priced from committed measurements (%s) ===\n", path)
	fmt.Printf("compute+network pricing under a %.0f MB/s compression-speed SLO;\n", minMBps)
	fmt.Println("decompression is not in the snapshot's compress rows, so its cost term is zero here")
	params := core.DefaultCostParams()
	params.AlphaStorage = 0
	e := &core.CompEngine{
		Params:      params,
		Constraints: core.Constraints{MinCompressMBps: minMBps},
	}
	type cand struct {
		codec string
		level int
	}
	cands := []cand{
		{"zstd", 1}, {"zstd", 3}, {"zstd", 9},
		{"lz4", 1}, {"lz4", 9},
		{"zlib", 1}, {"zlib", 6},
	}
	// Nominal volume the row's speed and ratio are lifted over; the cost
	// model is linear in it, so the ranking is volume-independent.
	const vol = int64(64 << 20)
	for _, payload := range []string{"logs", "records", "source"} {
		var all []core.Result
		for _, c := range cands {
			b, err := accel.MeasuredBaseline(snap, c.codec, c.level, payload)
			if err != nil {
				continue // row not in the snapshot
			}
			m := codec.Metrics{
				InputBytes:      vol,
				CompressedBytes: int64(float64(vol) / b.Ratio),
				Blocks:          1,
				CompressTime:    time.Duration(float64(vol) / (b.MBps * 1e6) * float64(time.Second)),
			}
			r, err := e.PriceMeasured(core.Config{Algorithm: c.codec, Level: c.level}, m)
			if err != nil {
				fatal(err)
			}
			all = append(all, r)
		}
		if len(all) == 0 {
			fmt.Printf("\n-- payload %s: no compress rows in snapshot --\n", payload)
			continue
		}
		sort.Slice(all, func(i, j int) bool { return all[i].TotalCost() < all[j].TotalCost() })
		fmt.Printf("\n-- payload %s --\n", payload)
		printResults(all, true)
		for _, r := range all {
			if r.Feasible {
				fmt.Printf("best feasible: %s (total cost %.3g)\n", r.Config, r.TotalCost())
				break
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "compopt:", err)
	os.Exit(1)
}

// adsSamples batches ads requests the way the serving tier ships them.
func adsSamples(seed int64, n int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := range out {
		out[i] = corpus.ModelA.Request(rng)
	}
	return out
}

func printResults(all []core.Result, normalize bool) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "config\tratio\tcomp MB/s\tdecomp/block\tcompute$\tstorage$\tnetwork$\ttotal\tfeasible")
	worst := 0.0
	for _, r := range all {
		if r.TotalCost() > worst {
			worst = r.TotalCost()
		}
	}
	for _, r := range all {
		total := r.TotalCost()
		totalStr := fmt.Sprintf("%.3g", total)
		if normalize && worst > 0 {
			totalStr = fmt.Sprintf("%.3f", total/worst)
		}
		feas := "yes"
		if !r.Feasible {
			feas = "no: " + r.Violation
		}
		fmt.Fprintf(w, "%s\t%.2f\t%.1f\t%v\t%.3g\t%.3g\t%.3g\t%s\t%s\n",
			r.Config, r.Metrics.Ratio(), r.Metrics.CompressMBps(),
			r.Metrics.DecompressPerBlock().Round(time.Microsecond),
			r.ComputeCost, r.StorageCost, r.NetworkCost, totalStr, feas)
	}
	w.Flush()
}

func study1(seed int64, minMBps float64, repeats int) {
	fmt.Println("=== Sensitivity study 1 (Fig 15a): ADS1, compute+network, min compression speed ===")
	params := core.DefaultCostParams()
	params.AlphaStorage = 0 // intermediate data is not stored
	e := &core.CompEngine{
		Samples:     adsSamples(seed, 4),
		Params:      params,
		Constraints: core.Constraints{MinCompressMBps: minMBps},
		Repeats:     repeats,
	}
	candidates := core.Grid(map[string][]int{
		"zstd": {-5, -1, 1, 2, 3, 4, 5, 6, 9},
		"lz4":  {-10, -5, -1, 1, 3, 6, 9, 10, 12},
		"zlib": {1, 6, 9},
	}, nil)
	best, all, err := e.Search(candidates)
	if err != nil {
		fmt.Printf("no feasible configuration under %.0f MB/s; showing all candidates\n", minMBps)
		printResults(all, true)
		return
	}
	printResults(all, true)
	worst := all[len(all)-1]
	fmt.Printf("\nbest feasible: %s  (total cost %.3g, %.0f%% below worst %s)\n",
		best.Config, best.TotalCost(),
		(1-best.TotalCost()/worst.TotalCost())*100, worst.Config)
	fmt.Printf("(paper: Zstd level 4 optimal, 73%% below worst = LZ4 level 10)\n\n")
}

func study2(seed int64, maxBlockMs, computeScale float64, repeats int) {
	fmt.Println("=== Sensitivity study 2 (Fig 15b): KVSTORE1, compute+storage, block sizes, decompression SLO ===")
	params := core.DefaultCostParams()
	params.AlphaNetwork = 0     // storage-bound service
	params.RetentionDays = 90   // long-lived SSTs
	params.DecompressWeight = 3 // every block is read back several times
	params.AlphaCompute *= computeScale
	samples := [][]byte{corpus.SSTSample(seed, 4<<20)}
	blockSizes := []int{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10}
	// The paper's Fig 15b sweeps Zstd/Zlib levels but only plain LZ4
	// (level 1) — HC variants are not in its candidate set.
	candidates := core.Grid(map[string][]int{
		"zstd": {1, 3, 6},
		"lz4":  {1},
		"zlib": {1, 6},
	}, blockSizes)

	// Unconstrained pass.
	free := &core.CompEngine{Samples: samples, Params: params, Repeats: repeats}
	bestFree, allFree, err := free.Search(candidates)
	if err != nil {
		fatal(err)
	}
	printResults(allFree, true)
	worst := allFree[len(allFree)-1]
	fmt.Printf("\nunconstrained best: %s (%.0f%% below worst %s)\n",
		bestFree.Config, (1-bestFree.TotalCost()/worst.TotalCost())*100, worst.Config)

	// Constrained pass.
	slo := &core.CompEngine{
		Samples:     samples,
		Params:      params,
		Constraints: core.Constraints{MaxDecompressPerBlock: time.Duration(maxBlockMs * float64(time.Millisecond))},
		Repeats:     repeats,
	}
	bestSLO, _, err := slo.Search(candidates)
	if err != nil {
		fmt.Printf("no configuration meets the %.2f ms SLO\n\n", maxBlockMs)
		return
	}
	fmt.Printf("with ≤%.2f ms per-block decompression: best %s (%.0f%% below worst)\n",
		maxBlockMs, bestSLO.Config, (1-bestSLO.TotalCost()/worst.TotalCost())*100)
	fmt.Printf("(paper: Zstd-1/64KiB unconstrained; Zstd-1/16KiB under the 0.08 ms SLO)\n\n")
}

func study3(seed int64, gamma float64, repeats int) {
	fmt.Println("=== Sensitivity study 3 (Fig 16): CompSim accelerator match-window sweep (γ=10, EIA pricing) ===")
	type target struct {
		name      string
		samples   [][]byte
		blockSize int
		maxLog    uint
		netAlpha  bool
	}
	// ADS1 compresses whole batched requests; KVSTORE1 compresses 64 KiB
	// SST blocks, so its useful window saturates earlier.
	targets := []target{
		{"ADS1", [][]byte{concat(adsSamples(seed, 16))}, 0, 24, true},
		{"KVSTORE1", [][]byte{corpus.SSTSample(seed, 4<<20)}, 64 << 10, 24, false},
	}
	for _, tg := range targets {
		params := core.DefaultCostParams()
		if tg.netAlpha {
			params.AlphaStorage = 0
		} else {
			params.AlphaNetwork = 0
			params.RetentionDays = 90
		}
		e := &core.CompEngine{Samples: tg.samples, Params: params, Repeats: repeats}
		sweep := core.WindowSweep("zstd", 1, tg.blockSize, 10, tg.maxLog, gamma, core.EIAComputeAlpha)
		fmt.Printf("\n-- %s --\n", tg.name)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "window\tratio\tnormalized cost")
		var results []core.Result
		worst := 0.0
		for _, cfg := range sweep {
			r, err := e.Evaluate(cfg)
			if err != nil {
				fatal(err)
			}
			results = append(results, r)
			if r.TotalCost() > worst {
				worst = r.TotalCost()
			}
		}
		plateau := uint(0)
		var prev float64
		for i, r := range results {
			norm := r.TotalCost() / worst
			fmt.Fprintf(w, "2^%d\t%.3f\t%.3f\n", r.Config.WindowLog, r.Metrics.Ratio(), norm)
			if i > 0 && plateau == 0 && prev-norm < 0.005 {
				plateau = r.Config.WindowLog
			}
			prev = norm
		}
		w.Flush()
		if plateau > 0 {
			fmt.Printf("cost reaches its plateau around 2^%d B\n", plateau)
		}
	}
	fmt.Printf("(paper: plateaus near 2^21 B for ADS1 and 2^16 B for KVSTORE1)\n")
}

func concat(bufs [][]byte) []byte {
	var out []byte
	for _, b := range bufs {
		out = append(out, b...)
	}
	return out
}
