// Command benchsnap measures the steady-state hot path of every registered
// codec at its benchmark levels and writes a machine-readable snapshot
// (BENCH_codec.json) of ns/op, MB/s, B/op and allocs/op per
// (codec, level, payload, direction). CI runs it on every change so the
// repository keeps a perf trajectory; -check makes it exit nonzero when any
// warmed engine allocates on the steady-state path, turning the snapshot
// into the allocation regression gate.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"testing"

	"github.com/datacomp/datacomp/internal/adaptive"
	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/container"
	"github.com/datacomp/datacomp/internal/corpus"
	"github.com/datacomp/datacomp/internal/graph"
	"github.com/datacomp/datacomp/internal/telemetry"
	"github.com/datacomp/datacomp/internal/trace"
)

// Entry is one measured point of the snapshot.
type Entry struct {
	Codec   string `json:"codec"`
	Level   int    `json:"level"`
	Payload string `json:"payload"`
	// Direction is "compress" | "decompress" for engine rows, and
	// "encode" | "decode-block" for container rows.
	Direction string `json:"direction"`
	// Workers is the pipeline width for container encode rows (0 for
	// engine rows and the single-engine decode path).
	Workers     int     `json:"workers,omitempty"`
	NsPerOp     int64   `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Ratio is original/compressed for the measured payload. Both
	// directions of a (codec, level, payload) pair carry the same value —
	// a decompress row decodes exactly what its compress row produced.
	Ratio float64 `json:"ratio"`
}

type snapshot struct {
	Note    string  `json:"note"`
	Entries []Entry `json:"entries"`
}

var configs = []struct {
	codec string
	level int
}{
	{"lz4", 1}, {"lz4", 9},
	{"zstd", 1}, {"zstd", 3}, {"zstd", 9},
	{"zlib", 1}, {"zlib", 6},
}

type payload struct {
	name string
	data []byte
}

func payloads(size int) []payload {
	return []payload{
		{"logs", corpus.LogLines(7, size)},
		{"source", corpus.SourceCode(7, size)},
		{"records", corpus.Records(7, size)},
	}
}

func measure(eng codec.Engine, data []byte, decompress bool) (testing.BenchmarkResult, float64, error) {
	comp, err := eng.Compress(nil, data)
	if err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	ratio := float64(len(data)) / float64(len(comp))
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		out := make([]byte, 0, 2*len(data))
		// Warm scratch tables and buffers before the measured loop.
		if decompress {
			if out, benchErr = eng.Decompress(out[:0], comp); benchErr != nil {
				return
			}
		} else {
			if out, benchErr = eng.Compress(out[:0], data); benchErr != nil {
				return
			}
		}
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if decompress {
				out, benchErr = eng.Decompress(out[:0], comp)
			} else {
				out, benchErr = eng.Compress(out[:0], data)
			}
			if benchErr != nil {
				return
			}
		}
	})
	return res, ratio, benchErr
}

func main() {
	testing.Init() // registers -test.* flags so -benchtime can forward
	out := flag.String("o", "BENCH_codec.json", "output path (- for stdout)")
	size := flag.Int("size", 128<<10, "payload size in bytes")
	benchtime := flag.Duration("benchtime", 0, "per-point benchmark time (0 = testing default)")
	check := flag.Bool("check", false, "exit nonzero if any steady-state point allocates")
	baseline := flag.String("baseline", "", "committed snapshot to regress against (with -check)")
	slowdown := flag.Float64("slowdown", 0.5, "fail -baseline when MB/s falls below this fraction of the baseline")
	traceGate := flag.Float64("trace-gate", 0, "fail when tracing enabled-but-unsampled costs more than this fraction over tracing disabled (0 = report only)")
	adaptiveGate := flag.Float64("adaptive-gate", 0, "fail when the adaptive handle compress path costs more than this fraction over a plain pooled engine (0 = report only)")
	flag.Parse()
	if *benchtime > 0 {
		// testing.Benchmark honours the -test.benchtime flag.
		if err := flag.Lookup("test.benchtime").Value.Set(benchtime.String()); err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
			os.Exit(1)
		}
	}

	snap := snapshot{Note: "steady-state hot path: warmed engines, reused dst buffers (see steady_bench_test.go)"}
	dirty := false
	for _, cfg := range configs {
		for _, p := range payloads(*size) {
			name, data := p.name, p.data
			eng, err := codec.NewEngine(cfg.codec, codec.WithLevel(cfg.level))
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchsnap: %s L%d: %v\n", cfg.codec, cfg.level, err)
				os.Exit(1)
			}
			for _, dir := range []string{"compress", "decompress"} {
				res, ratio, err := measure(eng, data, dir == "decompress")
				if err != nil {
					fmt.Fprintf(os.Stderr, "benchsnap: %s L%d %s %s: %v\n", cfg.codec, cfg.level, name, dir, err)
					os.Exit(1)
				}
				e := Entry{
					Codec:       cfg.codec,
					Level:       cfg.level,
					Payload:     name,
					Direction:   dir,
					NsPerOp:     res.NsPerOp(),
					MBPerS:      float64(res.Bytes) * float64(res.N) / res.T.Seconds() / 1e6,
					BytesPerOp:  res.AllocedBytesPerOp(),
					AllocsPerOp: res.AllocsPerOp(),
				}
				e.Ratio = ratio
				if e.AllocsPerOp != 0 {
					dirty = true
					fmt.Fprintf(os.Stderr, "benchsnap: ALLOC REGRESSION: %s L%d %s %s: %d allocs/op (%d B/op)\n",
						cfg.codec, cfg.level, name, dir, e.AllocsPerOp, e.BytesPerOp)
				}
				snap.Entries = append(snap.Entries, e)
			}
		}
	}

	sentries, sdirty := measureSmallPayloads()
	snap.Entries = append(snap.Entries, sentries...)
	dirty = dirty || sdirty

	gentries, gdirty := measureGraph()
	snap.Entries = append(snap.Entries, gentries...)
	dirty = dirty || gdirty

	centries, cdirty := measureContainer(*size)
	snap.Entries = append(snap.Entries, centries...)
	dirty = dirty || cdirty

	tentries, tdirty := measureTraceOverhead(*size, *traceGate)
	snap.Entries = append(snap.Entries, tentries...)
	dirty = dirty || tdirty

	aentries, adirty := measureAdaptiveOverhead(*adaptiveGate)
	snap.Entries = append(snap.Entries, aentries...)
	dirty = dirty || adirty

	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
	if *baseline != "" && !compareBaseline(*baseline, snap.Entries, *slowdown) {
		dirty = true
	}
	if *check && dirty {
		os.Exit(1)
	}
}

// measureGraph prices the typed transform-graph engine on the corpora its
// search grammar targets: warehouse Int64/Float64 columns as raw
// little-endian words, and ads embedding requests. The "graph" rows run
// engines pinned the way deployments run them — graph.Plan once over the
// corpus sample, pinned via WithGraph — so compress and decompress stay on
// the zero-allocation steady-state path and join the alloc gate. The
// "graph-search" rows price the per-payload search tier instead; its
// candidate graphs and trial buffers are per-call state, so those rows
// carry allocations by design and stay out of the gate.
func measureGraph() ([]Entry, bool) {
	pays := []struct {
		name string
		hint graph.Hint
		data []byte
	}{
		{"wh-int64", graph.HintInt64, corpus.Int64LE(corpus.TimestampColumn(7, 32768))},
		{"wh-float64", graph.HintFloat64, corpus.Float64LE(corpus.MetricColumn(7, 32768))},
		{"ads-embed-a", graph.HintNone, corpus.ModelA.Requests(7, 1)[0]},
		{"ads-embed-b", graph.HintNone, corpus.ModelB.Requests(7, 1)[0]},
	}
	fatal := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "benchsnap: graph: "+format+"\n", a...)
		os.Exit(1)
	}
	var entries []Entry
	dirty := false
	for _, p := range pays {
		g, err := graph.Plan(p.data, p.hint, 9)
		if err != nil {
			fatal("%s: plan: %v", p.name, err)
		}
		eng, err := graph.NewEngine(graph.WithLevel(1), graph.WithGraph(g))
		if err != nil {
			fatal("%s: %v", p.name, err)
		}
		for _, dir := range []string{"compress", "decompress"} {
			res, ratio, err := measure(eng, p.data, dir == "decompress")
			if err != nil {
				fatal("%s %s: %v", p.name, dir, err)
			}
			e := Entry{
				Codec:       "graph",
				Level:       1,
				Payload:     p.name,
				Direction:   dir,
				NsPerOp:     res.NsPerOp(),
				MBPerS:      float64(res.Bytes) * float64(res.N) / res.T.Seconds() / 1e6,
				BytesPerOp:  res.AllocedBytesPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
				Ratio:       ratio,
			}
			if e.AllocsPerOp != 0 {
				dirty = true
				fmt.Fprintf(os.Stderr, "benchsnap: ALLOC REGRESSION: graph L1 %s %s: %d allocs/op (%d B/op)\n",
					p.name, dir, e.AllocsPerOp, e.BytesPerOp)
			}
			entries = append(entries, e)
		}
		seng, err := graph.NewEngine(graph.WithLevel(5))
		if err != nil {
			fatal("%s: %v", p.name, err)
		}
		seng.SetHint(p.hint)
		res, ratio, err := measure(seng, p.data, false)
		if err != nil {
			fatal("%s search: %v", p.name, err)
		}
		entries = append(entries, Entry{
			Codec:       "graph-search",
			Level:       5,
			Payload:     p.name,
			Direction:   "compress",
			NsPerOp:     res.NsPerOp(),
			MBPerS:      float64(res.Bytes) * float64(res.N) / res.T.Seconds() / 1e6,
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			Ratio:       ratio,
		})
	}
	return entries, dirty
}

// measureSmallPayloads prices the paper's dominant workload — cache-item-
// sized payloads of a few hundred bytes to a few KiB — where dispatch
// overhead rivals the codec work. Three row families per (codec, size):
// plain compress/decompress rows reuse one warmed pooled engine and a
// recycled output buffer (the best unbatched steady state; part of the
// zero-alloc gate), "-percall" rows pay the full one-shot dispatch a
// batchless caller pays per item (registry lookup, engine construction,
// cold scratch, an escaping output buffer), and "-batch" rows push the same
// items through Pool.CompressBatch/DecompressBatch with a warmed Batch (one
// engine borrow per batch, reused output slots — also zero-alloc-gated).
// The rows of one configuration are sampled interleaved, best-of-N, so the
// batch-vs-percall comparison is two best rounds of the same noise
// environment rather than whichever mode ran during a quiet slice.
func measureSmallPayloads() ([]Entry, bool) {
	const batchN = 64
	sizes := []struct {
		name  string
		bytes int
	}{
		{"records-256B", 256},
		{"records-1KiB", 1 << 10},
		{"records-4KiB", 4 << 10},
	}
	smallCfgs := []struct {
		codec string
		level int
	}{{"lz4", 1}, {"zstd", 1}, {"zlib", 1}}

	var entries []Entry
	dirty := false
	fatal := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "benchsnap: small payloads: "+format+"\n", a...)
		os.Exit(1)
	}
	for _, cfg := range smallCfgs {
		for _, sz := range sizes {
			srcs := make([][]byte, batchN)
			rawTotal := 0
			for i := range srcs {
				srcs[i] = corpus.Records(int64(31*i+7), sz.bytes)
				rawTotal += len(srcs[i])
			}
			pool, err := codec.NewPool(cfg.codec, codec.Options{Level: cfg.level, Checksum: true})
			if err != nil {
				fatal("%s L%d: %v", cfg.codec, cfg.level, err)
			}
			var cb, db codec.Batch
			if pool.CompressBatch(&cb, srcs) != 0 {
				fatal("%s %s: %v", cfg.codec, sz.name, cb.FirstErr())
			}
			comps := make([][]byte, batchN)
			compTotal := 0
			for i, c := range cb.Out {
				comps[i] = append([]byte{}, c...)
				compTotal += len(c)
			}
			ratio := float64(rawTotal) / float64(compTotal)

			var benchErr error
			modes := []struct {
				dir  string
				runs int
				gate bool // row joins the zero-alloc gate
				fn   func(b *testing.B)
			}{
				{"compress", 1, true, func(b *testing.B) {
					e := pool.Get()
					defer pool.Put(e)
					out, err := e.Compress(nil, srcs[0])
					if err != nil {
						benchErr = err
						return
					}
					b.SetBytes(int64(rawTotal))
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						for _, s := range srcs {
							if out, benchErr = e.Compress(out[:0], s); benchErr != nil {
								return
							}
						}
					}
				}},
				{"decompress", 1, true, func(b *testing.B) {
					e := pool.Get()
					defer pool.Put(e)
					out, err := e.Decompress(nil, comps[0])
					if err != nil {
						benchErr = err
						return
					}
					b.SetBytes(int64(rawTotal))
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						for _, c := range comps {
							if out, benchErr = e.Decompress(out[:0], c); benchErr != nil {
								return
							}
						}
					}
				}},
				{"compress-percall", 3, false, func(b *testing.B) {
					b.SetBytes(int64(rawTotal))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						for _, s := range srcs {
							e, err := codec.NewEngine(cfg.codec, codec.WithLevel(cfg.level), codec.WithChecksum(true))
							if err != nil {
								benchErr = err
								return
							}
							if _, benchErr = e.Compress(nil, s); benchErr != nil {
								return
							}
						}
					}
				}},
				{"decompress-percall", 3, false, func(b *testing.B) {
					b.SetBytes(int64(rawTotal))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						for _, c := range comps {
							e, err := codec.NewEngine(cfg.codec, codec.WithLevel(cfg.level), codec.WithChecksum(true))
							if err != nil {
								benchErr = err
								return
							}
							if _, benchErr = e.Decompress(nil, c); benchErr != nil {
								return
							}
						}
					}
				}},
				{"compress-batch", 3, true, func(b *testing.B) {
					b.SetBytes(int64(rawTotal))
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if pool.CompressBatch(&cb, srcs) != 0 {
							benchErr = cb.FirstErr()
							return
						}
					}
				}},
				{"decompress-batch", 3, true, func(b *testing.B) {
					if pool.DecompressBatch(&db, comps) != 0 {
						benchErr = db.FirstErr()
						return
					}
					b.SetBytes(int64(rawTotal))
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if pool.DecompressBatch(&db, comps) != 0 {
							benchErr = db.FirstErr()
							return
						}
					}
				}},
			}
			best := make([]testing.BenchmarkResult, len(modes))
			maxRuns := 0
			for _, m := range modes {
				maxRuns = max(maxRuns, m.runs)
			}
			for r := 0; r < maxRuns; r++ {
				for mi, m := range modes {
					if r >= m.runs {
						continue
					}
					res := testing.Benchmark(m.fn)
					if benchErr != nil {
						fatal("%s L%d %s %s: %v", cfg.codec, cfg.level, sz.name, m.dir, benchErr)
					}
					if best[mi].N == 0 || res.NsPerOp() < best[mi].NsPerOp() {
						best[mi] = res
					}
				}
			}
			for mi, m := range modes {
				res := best[mi]
				e := Entry{
					Codec:       cfg.codec,
					Level:       cfg.level,
					Payload:     sz.name,
					Direction:   m.dir,
					NsPerOp:     res.NsPerOp(),
					MBPerS:      float64(res.Bytes) * float64(res.N) / res.T.Seconds() / 1e6,
					BytesPerOp:  res.AllocedBytesPerOp(),
					AllocsPerOp: res.AllocsPerOp(),
					Ratio:       ratio,
				}
				if m.gate && e.AllocsPerOp != 0 {
					dirty = true
					fmt.Fprintf(os.Stderr, "benchsnap: ALLOC REGRESSION: %s L%d %s %s: %d allocs/op (%d B/op)\n",
						cfg.codec, cfg.level, sz.name, m.dir, e.AllocsPerOp, e.BytesPerOp)
				}
				entries = append(entries, e)
			}
		}
	}
	return entries, dirty
}

// measureContainer snapshots the container surfaces: streaming Encode at a
// few pipeline widths (worker scaling over an 8 MiB corpus — absolute MB/s
// and the shape of the scaling curve, which on multi-core CI should rise
// with workers) plus the random-access DecodeBlock hot path, which is
// steady-state allocation-free and therefore contributes to the -check gate.
func measureContainer(blockSize int) ([]Entry, bool) {
	data := corpus.LogLines(13, 8<<20)
	var entries []Entry
	dirty := false
	for _, workers := range []int{1, 2, 4, 8} {
		cfg := container.Config{Codec: "zstd", Level: 3, BlockSize: blockSize, Workers: workers}
		var benchErr error
		var stats container.Stats
		res := testing.Benchmark(func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if stats, benchErr = container.Encode(context.Background(), io.Discard, bytes.NewReader(data), cfg); benchErr != nil {
					return
				}
			}
		})
		if benchErr != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: container encode w%d: %v\n", workers, benchErr)
			os.Exit(1)
		}
		entries = append(entries, Entry{
			Codec:     "container/zstd",
			Level:     3,
			Payload:   "logs8m",
			Direction: "encode",
			Workers:   workers,
			NsPerOp:   res.NsPerOp(),
			MBPerS:    float64(res.Bytes) * float64(res.N) / res.T.Seconds() / 1e6,
			Ratio:     float64(stats.RawBytes) / float64(stats.WrittenBytes),
		})
	}

	// Random-access decode: one block per op through a warmed ReaderAt.
	var blob bytes.Buffer
	cfg := container.Config{Codec: "zstd", Level: 3, BlockSize: blockSize, Workers: 1}
	stats, err := container.Encode(context.Background(), &blob, bytes.NewReader(data), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: container build: %v\n", err)
		os.Exit(1)
	}
	ra, err := container.NewReaderAt(bytes.NewReader(blob.Bytes()), int64(blob.Len()))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: container open: %v\n", err)
		os.Exit(1)
	}
	var decErr error
	res := testing.Benchmark(func(b *testing.B) {
		dst, err := ra.DecodeBlock(nil, 0)
		if err != nil {
			decErr = err
			return
		}
		b.SetBytes(int64(blockSize))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if dst, decErr = ra.DecodeBlock(dst[:0], i%ra.NumBlocks()); decErr != nil {
				return
			}
		}
	})
	if decErr != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: container decode: %v\n", decErr)
		os.Exit(1)
	}
	e := Entry{
		Codec:       "container/zstd",
		Level:       3,
		Payload:     "logs8m",
		Direction:   "decode-block",
		NsPerOp:     res.NsPerOp(),
		MBPerS:      float64(res.Bytes) * float64(res.N) / res.T.Seconds() / 1e6,
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		Ratio:       float64(stats.RawBytes) / float64(stats.WrittenBytes),
	}
	if e.AllocsPerOp != 0 {
		dirty = true
		fmt.Fprintf(os.Stderr, "benchsnap: ALLOC REGRESSION: container decode-block: %d allocs/op (%d B/op)\n",
			e.AllocsPerOp, e.BytesPerOp)
	}
	entries = append(entries, e)
	return entries, dirty
}

// measureTraceOverhead prices the tracing spine on the codec hot path:
// one instrumented zstd-3 compression per op under three tracing modes.
// "disabled" has no tracer, "unsampled" runs a tracer whose sampling never
// fires (the always-on production configuration — every request pays the
// sampling decision, none pays for spans), and "sampled" records a full
// span tree per op. Disabled and unsampled must stay allocation-free and,
// when gate > 0, unsampled ns/op may exceed disabled by at most that
// fraction (with a small absolute floor so a short -benchtime does not
// fail on timer noise). Sampled is reported for trajectory only.
func measureTraceOverhead(size int, gate float64) ([]Entry, bool) {
	data := corpus.LogLines(7, size)
	modes := []struct {
		name   string
		tracer *trace.Tracer
		runs   int // best-of-N to damp scheduler noise on the gated rows
	}{
		{"disabled", nil, 3},
		{"unsampled", trace.New(trace.Config{SampleEvery: 1 << 30}), 3},
		{"sampled", trace.New(trace.Config{SampleEvery: 1, Recorder: trace.NewRecorder(4, 4)}), 1},
	}
	var entries []Entry
	dirty := false
	nsPerOp := map[string]int64{}
	engines := make([]*telemetry.Instrumented, len(modes))
	best := make([]testing.BenchmarkResult, len(modes))
	for i := range modes {
		ie, err := telemetry.InstrumentedEngine("zstd", codec.Options{Level: 3}, telemetry.InstrumentOptions{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: trace overhead: %v\n", err)
			os.Exit(1)
		}
		engines[i] = ie
	}
	// Interleave the rounds across modes so slow thermal or scheduler
	// drift lands on all modes alike instead of biasing whichever mode
	// happened to run last; keep the best round per mode.
	maxRuns := 0
	for _, m := range modes {
		maxRuns = max(maxRuns, m.runs)
	}
	for r := 0; r < maxRuns; r++ {
		for mi, m := range modes {
			if r >= m.runs {
				continue
			}
			ie := engines[mi]
			var benchErr error
			res := testing.Benchmark(func(b *testing.B) {
				out := make([]byte, 0, 2*len(data))
				bg := context.Background()
				if out, benchErr = ie.CompressCtx(bg, out[:0], data); benchErr != nil {
					return
				}
				b.SetBytes(int64(len(data)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ctx, root := m.tracer.StartRoot(bg, "bench")
					out, benchErr = ie.CompressCtx(ctx, out[:0], data)
					root.End()
					if benchErr != nil {
						return
					}
				}
			})
			if benchErr != nil {
				fmt.Fprintf(os.Stderr, "benchsnap: trace overhead %s: %v\n", m.name, benchErr)
				os.Exit(1)
			}
			if best[mi].N == 0 || res.NsPerOp() < best[mi].NsPerOp() {
				best[mi] = res
			}
		}
	}
	for mi, m := range modes {
		res := best[mi]
		e := Entry{
			Codec:       "trace/zstd",
			Level:       3,
			Payload:     "logs/" + m.name,
			Direction:   "compress",
			NsPerOp:     res.NsPerOp(),
			MBPerS:      float64(res.Bytes) * float64(res.N) / res.T.Seconds() / 1e6,
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		nsPerOp[m.name] = e.NsPerOp
		// Only the untraced rows join the zero-alloc gate: a sampled op
		// legitimately allocates its context and recorded span buffers.
		if m.name != "sampled" && e.AllocsPerOp != 0 {
			dirty = true
			fmt.Fprintf(os.Stderr, "benchsnap: ALLOC REGRESSION: trace %s: %d allocs/op (%d B/op)\n",
				m.name, e.AllocsPerOp, e.BytesPerOp)
		}
		entries = append(entries, e)
	}
	over := nsPerOp["unsampled"] - nsPerOp["disabled"]
	fmt.Fprintf(os.Stderr, "benchsnap: trace overhead: disabled %dns unsampled %dns (+%dns) sampled %dns\n",
		nsPerOp["disabled"], nsPerOp["unsampled"], over, nsPerOp["sampled"])
	if gate > 0 {
		allowed := int64(gate*float64(nsPerOp["disabled"])) + 500
		if over > allowed {
			dirty = true
			fmt.Fprintf(os.Stderr, "benchsnap: TRACE OVERHEAD REGRESSION: unsampled %dns/op exceeds disabled %dns/op by %dns (allowed %dns)\n",
				nsPerOp["unsampled"], nsPerOp["disabled"], over, allowed)
		}
	}
	return entries, dirty
}

// measureAdaptiveOverhead prices the adaptive serving handle against a
// plain pooled engine on the same payload and config (zstd-3,
// cache-item-sized records): the handle adds a generation load, a
// three-byte self-describing header, and a 1-in-SampleEvery reservoir
// offer per op. Both rows join the zero-alloc gate — the reservoir
// recycles its slot buffers, so a warmed handle must not allocate — and
// when gate > 0 the handle row may exceed the static row by at most that
// fraction (plus a small floor for timer noise). The controller worker is
// never started: this prices the hot-path tax alone, the one every
// request pays whether or not a trial is running.
func measureAdaptiveOverhead(gate float64) ([]Entry, bool) {
	const size = 4 << 10
	data := corpus.Records(7, size)
	fatal := func(err error) {
		fmt.Fprintf(os.Stderr, "benchsnap: adaptive overhead: %v\n", err)
		os.Exit(1)
	}
	pool, err := codec.NewPool("zstd", codec.Options{Level: 3})
	if err != nil {
		fatal(err)
	}
	ctrl, err := adaptive.New(adaptive.Config{})
	if err != nil {
		fatal(err)
	}
	defer ctrl.Close()
	h, err := ctrl.Handle("bench")
	if err != nil {
		fatal(err)
	}
	// Reservoir steady state: every slot filled and at capacity, so offers
	// recycle instead of allocating. 64 slots at 1-in-32 sampling.
	warm := func() error {
		var out []byte
		var err error
		for i := 0; i < 64*32+64; i++ {
			if out, err = h.Compress(out[:0], data); err != nil {
				return err
			}
		}
		return nil
	}
	if err := warm(); err != nil {
		fatal(err)
	}

	var benchErr error
	modes := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"static", func(b *testing.B) {
			e := pool.Get()
			out, err := e.Compress(nil, data)
			pool.Put(e)
			if err != nil {
				benchErr = err
				return
			}
			b.SetBytes(size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := pool.Get()
				out, benchErr = e.Compress(out[:0], data)
				pool.Put(e)
				if benchErr != nil {
					return
				}
			}
		}},
		{"handle", func(b *testing.B) {
			out, err := h.Compress(nil, data)
			if err != nil {
				benchErr = err
				return
			}
			b.SetBytes(size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if out, benchErr = h.Compress(out[:0], data); benchErr != nil {
					return
				}
			}
		}},
	}
	const runs = 3
	best := make([]testing.BenchmarkResult, len(modes))
	for r := 0; r < runs; r++ {
		for mi, m := range modes {
			res := testing.Benchmark(m.fn)
			if benchErr != nil {
				fmt.Fprintf(os.Stderr, "benchsnap: adaptive overhead %s: %v\n", m.name, benchErr)
				os.Exit(1)
			}
			if best[mi].N == 0 || res.NsPerOp() < best[mi].NsPerOp() {
				best[mi] = res
			}
		}
	}

	var entries []Entry
	dirty := false
	nsPerOp := map[string]int64{}
	for mi, m := range modes {
		res := best[mi]
		e := Entry{
			Codec:       "adaptive/zstd",
			Level:       3,
			Payload:     "records-4KiB/" + m.name,
			Direction:   "compress",
			NsPerOp:     res.NsPerOp(),
			MBPerS:      float64(res.Bytes) * float64(res.N) / res.T.Seconds() / 1e6,
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		nsPerOp[m.name] = e.NsPerOp
		if e.AllocsPerOp != 0 {
			dirty = true
			fmt.Fprintf(os.Stderr, "benchsnap: ALLOC REGRESSION: adaptive %s: %d allocs/op (%d B/op)\n",
				m.name, e.AllocsPerOp, e.BytesPerOp)
		}
		entries = append(entries, e)
	}
	over := nsPerOp["handle"] - nsPerOp["static"]
	fmt.Fprintf(os.Stderr, "benchsnap: adaptive overhead: static %dns handle %dns (+%dns)\n",
		nsPerOp["static"], nsPerOp["handle"], over)
	if gate > 0 {
		allowed := int64(gate*float64(nsPerOp["static"])) + 500
		if over > allowed {
			dirty = true
			fmt.Fprintf(os.Stderr, "benchsnap: ADAPTIVE OVERHEAD REGRESSION: handle %dns/op exceeds static %dns/op by %dns (allowed %dns)\n",
				nsPerOp["handle"], nsPerOp["static"], over, allowed)
		}
	}
	return entries, dirty
}

// compareBaseline regresses the fresh entries against a committed snapshot.
// Allocations and compression ratio are machine-independent and checked
// strictly; throughput is gated by the generous slowdown fraction so a
// slower CI machine does not fail the build, while a real decode-path
// regression (or an entropy-stage fallback to a slow path) still does.
func compareBaseline(path string, entries []Entry, slowdown float64) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: baseline: %v\n", err)
		return false
	}
	var base snapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: baseline: %v\n", err)
		return false
	}
	type key struct {
		codec, payload, dir string
		level, workers      int
	}
	ref := make(map[key]Entry, len(base.Entries))
	for _, e := range base.Entries {
		ref[key{e.Codec, e.Payload, e.Direction, e.Level, e.Workers}] = e
	}
	ok := true
	for _, e := range entries {
		b, found := ref[key{e.Codec, e.Payload, e.Direction, e.Level, e.Workers}]
		if !found {
			continue // new configuration: nothing to regress against
		}
		id := fmt.Sprintf("%s L%d %s %s", e.Codec, e.Level, e.Payload, e.Direction)
		if e.Workers > 0 {
			id += fmt.Sprintf(" w%d", e.Workers)
		}
		if b.AllocsPerOp == 0 && e.AllocsPerOp > 0 {
			fmt.Fprintf(os.Stderr, "benchsnap: REGRESSION: %s: %d allocs/op (baseline 0)\n", id, e.AllocsPerOp)
			ok = false
		}
		if b.Ratio > 0 && e.Ratio < b.Ratio*0.98 {
			fmt.Fprintf(os.Stderr, "benchsnap: REGRESSION: %s: ratio %.4f (baseline %.4f)\n", id, e.Ratio, b.Ratio)
			ok = false
		}
		if b.MBPerS > 0 && e.MBPerS < b.MBPerS*slowdown {
			fmt.Fprintf(os.Stderr, "benchsnap: REGRESSION: %s: %.1f MB/s under %.0f%% of baseline %.1f MB/s\n",
				id, e.MBPerS, slowdown*100, b.MBPerS)
			ok = false
		}
	}
	return ok
}
