// Command fleetchar reproduces the paper's fleet-level characterization
// (Section III): it profiles the calibrated synthetic fleet with the
// sampling profiler and prints
//
//	– the overall compression share of fleet cycles and its per-algorithm
//	  breakdown (§III-B: 4.6% total; Zstd 3.9%, LZ4 0.4%, Zlib 0.3%),
//	– Fig 2: Zstd cycle share per service category,
//	– Fig 3: compression/decompression split per category and fleet-wide,
//	– Fig 4: Zstd level usage by cycles,
//	– Fig 5: block size distribution across services,
//	– the real codec measurements backing the volumes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/fleet"
	"github.com/datacomp/datacomp/internal/telemetry"
	"github.com/datacomp/datacomp/internal/telemetry/boot"
)

func main() {
	samples := flag.Int("samples", 2_000_000, "profiler samples")
	seed := flag.Int64("seed", 30, "profiling seed")
	measureBytes := flag.Int("measure-bytes", 1<<20, "bytes per configuration measurement")
	obs := boot.Register(flag.CommandLine)
	flag.Parse()

	rt, err := obs.Start("fleetchar")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetchar:", err)
		os.Exit(1)
	}
	defer rt.Close()

	p := &fleet.Profiler{Samples: *samples, Seed: *seed, MeasureBytes: *measureBytes}
	r, err := p.Profile(fleet.DefaultFleet())
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetchar:", err)
		os.Exit(1)
	}

	if rt.Tracing() {
		// One traced compression per measured fleet configuration: the
		// exported traces break each (codec, level, data kind) down into
		// per-stage spans.
		for _, m := range r.Measured {
			data, err := fleet.GenerateKind(m.Kind, *seed, *measureBytes)
			if err != nil {
				continue
			}
			ie, err := telemetry.InstrumentedEngine(m.Algorithm,
				codec.Options{Level: m.Level}, telemetry.InstrumentOptions{})
			if err != nil {
				continue
			}
			ctx, root := rt.Tracer.StartRoot(context.Background(), "fleetchar.measure")
			root.SetStr("codec", m.Algorithm).SetInt("level", int64(m.Level)).
				SetStr("data", string(m.Kind))
			_, _ = ie.CompressCtx(ctx, nil, data)
			root.End()
		}
	}

	fmt.Printf("=== Fleet-level characterization (%d sampled stacks) ===\n\n", r.Samples)
	fmt.Printf("Compression share of fleet cycles: %.2f%%  (paper: 4.6%%)\n", r.TotalCompressionPct)
	algos := make([]string, 0, len(r.AlgorithmPct))
	for a := range r.AlgorithmPct {
		algos = append(algos, a)
	}
	sort.Slice(algos, func(i, j int) bool { return r.AlgorithmPct[algos[i]] > r.AlgorithmPct[algos[j]] })
	for _, a := range algos {
		fmt.Printf("  %-5s %.2f%%\n", a, r.AlgorithmPct[a])
	}

	fmt.Printf("\n--- Fig 2: Zstd cycles (%%) by service category ---\n")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "category\tzstd % of cycles\t")
	for _, cat := range fleet.Categories() {
		fmt.Fprintf(w, "%s\t%.1f\t%s\n", cat, r.CategoryZstdPct[cat],
			bar(r.CategoryZstdPct[cat], 25))
	}
	w.Flush()

	fmt.Printf("\n--- Fig 3: compression/decompression split by cycles ---\n")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "category\tcompress %\tdecompress %")
	for _, cat := range fleet.Categories() {
		s := r.CategorySplit[cat]
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\n", cat, s.CompressPct, s.DecompressPct)
	}
	fmt.Fprintf(w, "fleet\t%.1f\t%.1f\n", r.FleetSplit.CompressPct, r.FleetSplit.DecompressPct)
	w.Flush()

	fmt.Printf("\n--- Fig 4: Zstd level usage by compute cycles ---\n")
	levels := make([]int, 0, len(r.LevelCyclesPct))
	for l := range r.LevelCyclesPct {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "level\t% of zstd cycles\t")
	for _, l := range levels {
		fmt.Fprintf(w, "%d\t%.1f\t%s\n", l, r.LevelCyclesPct[l], bar(r.LevelCyclesPct[l], 60))
	}
	w.Flush()
	fmt.Printf("levels 1-4 total: %.1f%%  (paper: >50%%)\n", r.LowLevelCyclesPct())

	fmt.Printf("\n--- Fig 5: block size distribution across services ---\n")
	fmt.Print(r.BlockSizes.String())

	fmt.Printf("\n--- Measured codec performance backing the volumes ---\n")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "codec\tlevel\tdata\tblock\tratio\tcomp MB/s\tdecomp MB/s\tcycles/B (comp)")
	for _, m := range r.Measured {
		fmt.Fprintf(w, "%s\t%d\t%s\t%d\t%.2f\t%.1f\t%.1f\t%.1f\n",
			m.Algorithm, m.Level, m.Kind, m.BlockSize, m.Ratio,
			m.CompressMBps, m.DecompressMBps, fleet.CyclesPerByte(m.CompressMBps))
	}
	w.Flush()
}

func bar(pct float64, scale int) string {
	n := int(pct * float64(scale) / 100)
	if n < 0 {
		n = 0
	}
	return strings.Repeat("#", n)
}
