// Command compbench reproduces Figure 1 of the paper: compression ratio
// and compression/decompression speed for Zstd, Zlib and LZ4 across
// compression levels 1-9, on a Silesia-style mixed corpus.
//
// Usage:
//
//	compbench [-size N] [-seed N] [-levels 1,3,5,9] [-algos zstd,zlib,lz4] [-files dickens,xml]
//	          [-telemetry addr] [-trace out.json] [-hold]
//
// With -telemetry, every engine is instrumented and a telemetry endpoint
// serves /metrics (Prometheus), /vars (JSON), /profile (stage shares) and
// /debug/traces while the benchmark runs; a final snapshot is printed at
// exit. With -trace, each (file, codec, level) cell additionally records
// one traced compression — span tree with per-stage children — and the
// retained traces are dumped as Chrome trace-event JSON at exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/corpus"
	"github.com/datacomp/datacomp/internal/telemetry"
	"github.com/datacomp/datacomp/internal/telemetry/boot"
)

func main() {
	size := flag.Int("size", 1<<20, "bytes per corpus member")
	seed := flag.Int64("seed", 20230423, "corpus generation seed")
	levelsFlag := flag.String("levels", "1,2,3,4,5,6,7,8,9", "comma-separated levels")
	algosFlag := flag.String("algos", "zstd,zlib,lz4", "comma-separated codecs")
	filesFlag := flag.String("files", "", "comma-separated corpus members (default all)")
	repeats := flag.Int("repeats", 1, "measurement repeats")
	hold := flag.Bool("hold", false, "with -telemetry, keep serving after the run until interrupted")
	obs := boot.Register(flag.CommandLine)
	flag.Parse()

	rt, err := obs.Start("compbench")
	if err != nil {
		fatal(err)
	}
	defer rt.Close()
	serveTelemetry := *obs.Telemetry != ""
	instrument := serveTelemetry || rt.Tracing()

	levels, err := parseInts(*levelsFlag)
	if err != nil {
		fatal(err)
	}
	algos := splitList(*algosFlag)
	files := corpus.Silesia(*seed, *size)
	if *filesFlag != "" {
		want := map[string]bool{}
		for _, f := range splitList(*filesFlag) {
			want[f] = true
		}
		kept := files[:0]
		for _, f := range files {
			if want[f.Name] {
				kept = append(kept, f)
			}
		}
		files = kept
	}
	if len(files) == 0 {
		fatal(fmt.Errorf("no corpus members selected"))
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "file\tkind\tcodec\tlevel\tratio\tcomp MB/s\tdecomp MB/s")
	for _, f := range files {
		for _, algo := range algos {
			c, ok := codec.Lookup(algo)
			if !ok {
				fatal(fmt.Errorf("unknown codec %q", algo))
			}
			min, max, _ := c.Levels()
			for _, level := range levels {
				if level < min || level > max {
					continue
				}
				eng, err := c.New(codec.Options{Level: level})
				if err != nil {
					fatal(err)
				}
				var ie *telemetry.Instrumented
				if instrument {
					ie = telemetry.Instrument(eng, telemetry.InstrumentOptions{
						Codec: algo, Level: level, Profiler: rt.Profiler,
					})
					eng = ie
				}
				m, err := codec.Measure(eng, [][]byte{f.Data}, 0, *repeats)
				if err != nil {
					fatal(fmt.Errorf("%s %s L%d: %w", f.Name, algo, level, err))
				}
				if rt.Tracing() && ie != nil {
					// One traced compression per cell: the flight recorder
					// retains the slowest cells with per-stage span children.
					ctx, root := rt.Tracer.StartRoot(context.Background(), "compbench.measure")
					root.SetStr("file", f.Name).SetStr("codec", algo).SetInt("level", int64(level))
					_, _ = ie.CompressCtx(ctx, nil, f.Data)
					root.End()
				}
				fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%.2f\t%.1f\t%.1f\n",
					f.Name, f.Kind, algo, level, m.Ratio(), m.CompressMBps(), m.DecompressMBps())
			}
		}
	}
	w.Flush()

	if serveTelemetry {
		fmt.Println()
		fmt.Println("--- telemetry snapshot (/metrics) ---")
		telemetry.WritePrometheus(os.Stdout, telemetry.Default)
		if rt.Profiler != nil {
			if shares := rt.Profiler.Profile().StageShares(); len(shares) > 0 {
				fmt.Println()
				fmt.Println("--- cycle shares (/profile) ---")
				fmt.Print(telemetry.FormatStageShares(shares))
			}
		}
		if *hold && rt.Server != nil {
			fmt.Fprintf(os.Stderr, "compbench: holding telemetry endpoint on http://%s; Ctrl-C to exit\n", rt.Server.Addr)
			select {}
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad level %q", part)
		}
		out = append(out, v)
	}
	sort.Ints(out)
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "compbench:", err)
	os.Exit(1)
}
