// Command datagen emits the repository's synthetic datasets to stdout (or
// a file), so external tools — including the real zstd/lz4/zlib binaries —
// can be benchmarked against the same corpora this reproduction uses.
//
// Usage:
//
//	datagen -kind sst -size 4194304 -seed 7 > sample.bin
//	datagen -kind silesia -out dir/        # writes the 12-member corpus
//	datagen -list
//
// Kinds: web, feed, ads, cacheitem, orc, sst (the fleet data kinds),
// text, source, xml, records, binary, logs, plus "silesia" for the whole
// Figure-1 proxy corpus.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/datacomp/datacomp/internal/corpus"
	"github.com/datacomp/datacomp/internal/fleet"
)

var plainKinds = map[string]func(int64, int) []byte{
	"text":    func(seed int64, n int) []byte { return corpus.NewTextGen(seed, 30000, 1.15).Generate(n) },
	"source":  corpus.SourceCode,
	"xml":     corpus.XML,
	"records": corpus.Records,
	"binary":  corpus.Binary,
	"logs":    corpus.LogLines,
}

func main() {
	kind := flag.String("kind", "sst", "data kind (see -list)")
	size := flag.Int("size", 1<<20, "bytes to generate")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("out", "", "output file (default stdout); for -kind silesia, an output directory")
	list := flag.Bool("list", false, "list available kinds")
	flag.Parse()

	if *list {
		fmt.Println("fleet kinds: web feed ads cacheitem orc sst")
		fmt.Println("plain kinds: text source xml records binary logs")
		fmt.Println("corpora:     silesia (12 files, use -out DIR)")
		return
	}

	if *kind == "silesia" {
		dir := *out
		if dir == "" {
			fatal(fmt.Errorf("-kind silesia needs -out DIR"))
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		for _, f := range corpus.Silesia(*seed, *size) {
			path := filepath.Join(dir, f.Name)
			if err := os.WriteFile(path, f.Data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d bytes, %s)\n", path, len(f.Data), f.Kind)
		}
		return
	}

	var data []byte
	if gen, ok := plainKinds[*kind]; ok {
		data = gen(*seed, *size)
	} else {
		var err error
		data, err = fleet.GenerateKind(fleet.DataKind(*kind), *seed, *size)
		if err != nil {
			fatal(fmt.Errorf("unknown kind %q (try -list)", *kind))
		}
	}

	if *out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *out, len(data))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
