// Steady-state hot-path benchmarks: warmed engines, reused destination
// buffers, per-operation heap accounting. These are the numbers the
// allocation regression gate (TestSteadyStateAllocs, CI bench job) tracks:
// a warmed Encoder/Decoder must stay at 0 allocs/op, and throughput on the
// Fig. 1 corpus classes must not regress.
//
// Run with:
//
//	go test -run='^$' -bench=BenchmarkSteadyState -benchmem
package datacomp_test

import (
	"fmt"
	"testing"

	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/corpus"
)

// steadyPayload is one payload class of the steady-state suite. The three
// classes proxy the paper's Fig. 1 corpus spread: natural-language-like
// text, structured source, and binary records.
type steadyPayload struct {
	name string
	data []byte
}

func steadyPayloads() []steadyPayload {
	const n = 128 << 10
	return []steadyPayload{
		{"logs", corpus.LogLines(7, n)},
		{"source", corpus.SourceCode(7, n)},
		{"records", corpus.Records(7, n)},
	}
}

// steadyConfigs lists the (codec, level) points of the suite: the default
// and the hottest fleet levels per codec.
func steadyConfigs() []struct {
	codec string
	level int
} {
	return []struct {
		codec string
		level int
	}{
		{"lz4", 1},
		{"lz4", 9},
		{"zstd", 1},
		{"zstd", 3},
		{"zstd", 9},
		{"zlib", 1},
		{"zlib", 6},
	}
}

func BenchmarkSteadyState(b *testing.B) {
	for _, cfg := range steadyConfigs() {
		for _, p := range steadyPayloads() {
			eng, err := codec.NewEngine(cfg.codec, codec.WithLevel(cfg.level))
			if err != nil {
				b.Fatal(err)
			}
			comp, err := eng.Compress(nil, p.data)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("compress/%s_L%d/%s", cfg.codec, cfg.level, p.name), func(b *testing.B) {
				out := make([]byte, 0, 2*len(p.data))
				b.SetBytes(int64(len(p.data)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					out, err = eng.Compress(out[:0], p.data)
					if err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("decompress/%s_L%d/%s", cfg.codec, cfg.level, p.name), func(b *testing.B) {
				out := make([]byte, 0, 2*len(p.data))
				// Warm the decoder's internal scratch before measuring.
				out, err = eng.Decompress(out[:0], comp)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(len(p.data)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					out, err = eng.Decompress(out[:0], comp)
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
