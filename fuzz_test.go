// Native fuzz targets for every decoder surface. Under plain `go test`
// these run their seed corpus (valid frames plus mutations); under
// `go test -fuzz=FuzzX .` they explore further. The invariant everywhere:
// arbitrary input may produce an error, never a panic.
package datacomp_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"

	"github.com/datacomp/datacomp/internal/container"
	"github.com/datacomp/datacomp/internal/corpus"
	"github.com/datacomp/datacomp/internal/fse"
	"github.com/datacomp/datacomp/internal/huffman"
	"github.com/datacomp/datacomp/internal/lz4"
	"github.com/datacomp/datacomp/internal/orc"
	"github.com/datacomp/datacomp/internal/rpc"
	"github.com/datacomp/datacomp/internal/trace"
	"github.com/datacomp/datacomp/internal/zlibx"
	"github.com/datacomp/datacomp/internal/zstd"
)

func seedFrames(f *testing.F, compress func([]byte) ([]byte, error)) {
	f.Helper()
	for _, src := range [][]byte{
		nil,
		[]byte("a"),
		[]byte("hello hello hello hello hello"),
		corpus.LogLines(1, 4096),
		corpus.SSTSample(2, 8192),
	} {
		frame, err := compress(src)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		if len(frame) > 4 {
			mut := append([]byte{}, frame...)
			mut[len(mut)/2] ^= 0x55
			f.Add(mut)
			f.Add(frame[:len(frame)/2])
		}
	}
}

func FuzzZstdDecompress(f *testing.F) {
	enc, err := zstd.NewEncoder(zstd.Options{Level: 3, Checksum: true})
	if err != nil {
		f.Fatal(err)
	}
	seedFrames(f, func(src []byte) ([]byte, error) { return enc.Compress(nil, src) })
	f.Fuzz(func(t *testing.T, data []byte) {
		// Bound the work per input: a crafted header may legally promise
		// gigabytes of RLE expansion.
		if n, err := zstd.DecompressedSize(data); err == nil && n > 1<<22 {
			return
		}
		_, _ = zstd.Decompress(nil, data, nil)
		_, _, _ = zstd.FrameDictID(data)
	})
}

func FuzzLZ4Decompress(f *testing.F) {
	enc, err := lz4.NewEncoder(1)
	if err != nil {
		f.Fatal(err)
	}
	seedFrames(f, func(src []byte) ([]byte, error) { return enc.Compress(nil, src) })
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = lz4.Decompress(nil, data)
		_, _ = lz4.DecompressBlock(nil, data, 1024)
	})
}

func FuzzZlibDecompress(f *testing.F) {
	enc, err := zlibx.NewEncoder(6)
	if err != nil {
		f.Fatal(err)
	}
	seedFrames(f, func(src []byte) ([]byte, error) { return enc.Compress(nil, src) })
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = zlibx.Decompress(nil, data)
	})
}

func FuzzFSEDecompress(f *testing.F) {
	syms := make([]byte, 2048)
	for i := range syms {
		syms[i] = byte(i % 7)
	}
	payload, err := fse.Compress(nil, syms, 9)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(payload, 2048)
	f.Add(payload[:len(payload)/2], 100)
	f.Add([]byte{9, 1, 2, 3}, 10)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 || n > 1<<16 {
			n = 16
		}
		_, _ = fse.Decompress(nil, data, n)
	})
}

func FuzzHuffmanDecompress(f *testing.F) {
	src := corpus.LogLines(1, 4096)
	payload, err := huffman.Compress(nil, src)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(payload, len(src))
	f.Add(payload[:len(payload)/3], 100)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 || n > 1<<16 {
			n = 16
		}
		_, _ = huffman.Decompress(nil, data, n)
	})
}

// FuzzEntropyRoundTrip drives every entropy-stage coder pair — Huffman
// single- and 4-stream, FSE single- and 2-state — through encode→decode on
// arbitrary payloads. Compressible or not, whatever the encoder accepts
// must decode back byte-identical; the raw input is also fed straight to
// the decoders, which may reject it but never panic.
func FuzzEntropyRoundTrip(f *testing.F) {
	allDistinct := make([]byte, 256)
	for i := range allDistinct {
		allDistinct[i] = byte(i)
	}
	for _, seed := range [][]byte{
		nil,                          // empty
		{42},                         // single symbol
		bytes.Repeat([]byte{7}, 500), // RLE
		allDistinct,                  // flat histogram
		corpus.LogLines(3, 2048),
		corpus.Records(5, 4096),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<18 {
			data = data[:1<<18]
		}
		roundtrip := func(name string, compress func() ([]byte, error), decompress func([]byte) ([]byte, error)) {
			enc, err := compress()
			if err != nil {
				if err == huffman.ErrIncompressible || err == fse.ErrIncompressible {
					return
				}
				t.Fatalf("%s compress: %v", name, err)
			}
			dec, err := decompress(enc)
			if err != nil {
				t.Fatalf("%s decompress: %v", name, err)
			}
			if !bytes.Equal(dec, data) {
				t.Fatalf("%s: roundtrip mismatch (%d bytes)", name, len(data))
			}
		}
		roundtrip("huffman",
			func() ([]byte, error) { return huffman.Compress(nil, data) },
			func(enc []byte) ([]byte, error) { return huffman.Decompress(nil, enc, len(data)) })
		roundtrip("huffman4",
			func() ([]byte, error) { return huffman.Compress4(nil, data) },
			func(enc []byte) ([]byte, error) { return huffman.Decompress4(nil, enc, len(data)) })
		roundtrip("fse",
			func() ([]byte, error) { return fse.Compress(nil, data, 11) },
			func(enc []byte) ([]byte, error) { return fse.Decompress(nil, enc, len(data)) })
		roundtrip("fse2",
			func() ([]byte, error) { return fse.Compress2(nil, data, 11) },
			func(enc []byte) ([]byte, error) { return fse.Decompress2(nil, enc, len(data)) })

		// The raw input as a hostile compressed payload: errors allowed,
		// panics are not.
		n := len(data) % (1 << 12)
		_, _ = huffman.Decompress4(nil, data, n)
		_, _ = fse.Decompress2(nil, data, n)
	})
}

func FuzzRPCFrame(f *testing.F) {
	for _, frame := range [][]byte{
		rpc.EncodeFrame(0, "echo", nil),
		rpc.EncodeFrame(0, "rank", corpus.LogLines(1, 2048)),
		rpc.EncodeFrame(2, "fail", []byte("handler exploded")),
	} {
		f.Add(frame)
		if len(frame) > 4 {
			mut := append([]byte{}, frame...)
			mut[len(mut)/2] ^= 0x55
			f.Add(mut)
			f.Add(frame[:len(frame)/2])
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		flags, method, payload, err := rpc.ParseFrame(data)
		if err != nil {
			// The whole failure surface of the frame parser: a clean EOF
			// between frames, or typed corruption. Anything else (or a
			// panic) is a parser bug.
			if !errors.Is(err, rpc.ErrCorrupt) && !errors.Is(err, io.EOF) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		// Accepted frames must survive a re-encode/re-parse cycle intact
		// (byte equality is too strict: ReadUvarint accepts non-canonical
		// varint encodings that PutUvarint never emits).
		flags2, method2, payload2, err := rpc.ParseFrame(rpc.EncodeFrame(flags, string(method), payload))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if flags2 != flags || !bytes.Equal(method2, method) || !bytes.Equal(payload2, payload) {
			t.Fatal("frame did not round-trip")
		}
	})
}

func FuzzORCDecodeStripe(f *testing.F) {
	stripe, err := orc.EncodeStripe([]orc.Column{
		{Name: "ts", Kind: orc.Int64, Ints: corpus.TimestampColumn(1, 100)},
		{Name: "ev", Kind: orc.String, Strings: corpus.CategoryColumn(2, 100)},
		{Name: "ok", Kind: orc.Bool, Bools: corpus.FlagColumn(3, 100, 0.5)},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(stripe)
	mut := append([]byte{}, stripe...)
	mut[len(mut)/4] ^= 0xff
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = orc.DecodeStripe(data)
	})
}

// FuzzContainer drives arbitrary bytes through both container read
// surfaces. Seeds are real containers (several codecs and block sizes)
// plus mutations; the invariant is error-not-panic, and every successful
// ReaderAt open must serve DecodeBlock/ReadAt without panicking either.
func FuzzContainer(f *testing.F) {
	for i, cfg := range []container.Config{
		{Codec: "zstd", Level: 1, BlockSize: 1 << 10, Workers: 1},
		{Codec: "lz4", BlockSize: 512, Workers: 2},
		{Codec: "zlib", Level: 1, BlockSize: 2 << 10, Workers: 1},
	} {
		var buf bytes.Buffer
		src := corpus.LogLines(int64(i), 3<<10)
		if _, err := container.Encode(context.Background(), &buf, bytes.NewReader(src), cfg); err != nil {
			f.Fatal(err)
		}
		frame := buf.Bytes()
		f.Add(frame)
		if len(frame) > 8 {
			mut := append([]byte{}, frame...)
			mut[len(mut)/3] ^= 0x55
			f.Add(mut)
			mut2 := append([]byte{}, frame...)
			mut2[len(mut2)-5] ^= 0x80 // inside the trailer
			f.Add(mut2)
			f.Add(frame[:len(frame)/2])
		}
	}
	f.Add([]byte("ZSXS"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Streaming surface.
		if r, err := container.NewReader(bytes.NewReader(data), container.WithWorkers(2)); err == nil {
			_, _ = io.Copy(io.Discard, io.LimitReader(r, 1<<22))
			r.Close()
		}
		// Random-access surface.
		ra, err := container.NewReaderAt(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		if ra.Size() > 1<<22 || ra.NumBlocks() > 1024 {
			return // bound the work per input
		}
		for i := 0; i < ra.NumBlocks(); i++ {
			_, _ = ra.DecodeBlock(nil, i)
		}
		p := make([]byte, 512)
		_, _ = ra.ReadAt(p, 0)
		_, _ = ra.ReadAt(p, ra.Size()/2)
	})
}

func FuzzTraceWire(f *testing.F) {
	wire := trace.AppendWire(nil, trace.SpanContext{
		TraceID: 0x0123456789abcdef, SpanID: 0xfedcba9876543210, Sampled: true,
	})
	f.Add(wire)
	f.Add(wire[:len(wire)/2])
	for i := range wire {
		mut := append([]byte{}, wire...)
		mut[i] ^= 0x55
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, n, err := trace.ParseWire(data)
		if err != nil {
			// Every rejection must carry the one sentinel callers branch on.
			if !errors.Is(err, trace.ErrWire) {
				t.Fatalf("unexpected error class: %v", err)
			}
			if sc.Valid() || n != 0 {
				t.Fatalf("rejection leaked state: sc=%+v n=%d", sc, n)
			}
			return
		}
		// Accepted contexts are exactly the ones the encoder emits: valid,
		// sampled, and byte-identical under re-encode.
		if n != trace.WireLen || !sc.Valid() || !sc.Sampled {
			t.Fatalf("accepted context inconsistent: sc=%+v n=%d", sc, n)
		}
		if re := trace.AppendWire(nil, sc); !bytes.Equal(re, data[:trace.WireLen]) {
			t.Fatalf("wire context did not round-trip: % x != % x", re, data[:trace.WireLen])
		}
	})
}
