// Backward-compatibility gate for the zstd frame format. The fixtures under
// testdata/compat are v1 ('ZSX1') frames produced before the multi-stream
// entropy stage landed; the decoder must keep decoding them byte-identically
// forever, even though the encoder now emits v2 ('ZSX2') frames with block
// modes v1 never defined.
package datacomp_test

import (
	"bytes"
	"os"
	"testing"

	"github.com/datacomp/datacomp/internal/corpus"
	"github.com/datacomp/datacomp/internal/zstd"
)

func TestZstdV1FrameCompat(t *testing.T) {
	// The corpus generators are deterministic, so the original payloads are
	// regenerated rather than stored.
	t.Run("logs_l3_checksum", func(t *testing.T) {
		frame, err := os.ReadFile("testdata/compat/zstd_v1_logs_l3_ck.bin")
		if err != nil {
			t.Fatal(err)
		}
		want := corpus.LogLines(7, 96<<10)
		got, err := zstd.Decompress(nil, frame, nil)
		if err != nil {
			t.Fatalf("decode v1 frame: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("v1 frame decoded to wrong payload (%d bytes, want %d)", len(got), len(want))
		}
	})
	t.Run("dict_item", func(t *testing.T) {
		frame, err := os.ReadFile("testdata/compat/zstd_v1_dict_item.bin")
		if err != nil {
			t.Fatal(err)
		}
		dict := corpus.LogLines(3, 8<<10)
		want := corpus.LogLines(11, 4<<10)
		id, hasDict, err := zstd.FrameDictID(frame)
		if err != nil || !hasDict {
			t.Fatalf("FrameDictID: id=%d hasDict=%v err=%v", id, hasDict, err)
		}
		if wantID := zstd.DictID(dict); id != wantID {
			t.Fatalf("dict ID %d, want %d", id, wantID)
		}
		got, err := zstd.Decompress(nil, frame, dict)
		if err != nil {
			t.Fatalf("decode v1 dict frame: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("v1 dict frame decoded to wrong payload (%d bytes, want %d)", len(got), len(want))
		}
	})
	// A v1 frame must never carry v2-only block modes: flipping the version
	// byte of a fresh v2 frame back to '1' has to fail decoding whenever the
	// frame actually uses them, instead of mis-decoding.
	t.Run("v2_modes_rejected_in_v1", func(t *testing.T) {
		enc, err := zstd.NewEncoder(zstd.Options{Level: 3})
		if err != nil {
			t.Fatal(err)
		}
		src := corpus.LogLines(7, 96<<10) // large: literals use the 4-stream mode
		frame, err := enc.Compress(nil, src)
		if err != nil {
			t.Fatal(err)
		}
		if frame[3] != '2' {
			t.Fatalf("fresh frame magic byte = %q, want '2'", frame[3])
		}
		frame[3] = '1'
		if _, err := zstd.Decompress(nil, frame, nil); err == nil {
			t.Fatal("v2-mode blocks accepted under a v1 header")
		}
	})
}
