// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each BenchmarkFigN / BenchmarkStudyN produces the measurements behind the
// corresponding figure; the cmd/ binaries print the full formatted reports.
// Table I is a static inventory (printed by `servicechar -table1`) and has
// no measurement to benchmark.
package datacomp_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/datacomp/datacomp/internal/ads"
	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/core"
	"github.com/datacomp/datacomp/internal/corpus"
	"github.com/datacomp/datacomp/internal/dict"
	"github.com/datacomp/datacomp/internal/fleet"
	"github.com/datacomp/datacomp/internal/kvstore"
	"github.com/datacomp/datacomp/internal/warehouse"
)

// BenchmarkFig1Codecs measures ratio and speed for every codec and level of
// Figure 1 on the Silesia-proxy corpus. Ratios are reported as custom
// metrics alongside MB/s.
func BenchmarkFig1Codecs(b *testing.B) {
	files := corpus.Silesia(1, 1<<19)
	levels := map[string][]int{"zstd": {1, 3, 5, 9}, "zlib": {1, 6, 9}, "lz4": {1, 5, 9}}
	for _, f := range files[:4] { // dickens, mozilla, mr, nci keep runtime sane
		for algo, ls := range levels {
			for _, level := range ls {
				b.Run(fmt.Sprintf("%s/%s_L%d", f.Name, algo, level), func(b *testing.B) {
					eng, err := codec.NewEngine(algo, codec.WithLevel(level))
					if err != nil {
						b.Fatal(err)
					}
					b.SetBytes(int64(len(f.Data)))
					var out []byte
					for i := 0; i < b.N; i++ {
						out, err = eng.Compress(out[:0], f.Data)
						if err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(len(f.Data))/float64(len(out)), "ratio")
				})
			}
		}
	}
}

// BenchmarkFig1Decompress is Figure 1's decompression-speed panel.
func BenchmarkFig1Decompress(b *testing.B) {
	files := corpus.Silesia(1, 1<<19)
	for _, algo := range []string{"zstd", "zlib", "lz4"} {
		b.Run(algo, func(b *testing.B) {
			eng, err := codec.NewEngine(algo, codec.WithLevel(1))
			if err != nil {
				b.Fatal(err)
			}
			comp, err := eng.Compress(nil, files[0].Data)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(files[0].Data)))
			var out []byte
			for i := 0; i < b.N; i++ {
				out, err = eng.Decompress(out[:0], comp)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig2to5FleetProfile runs the full fleet profiling pipeline
// behind Figures 2-5 (and the §III-B headline numbers), reporting the
// fleet-wide compression share.
func BenchmarkFig2to5FleetProfile(b *testing.B) {
	p := &fleet.Profiler{Samples: 500_000, Seed: 1, MeasureBytes: 256 << 10}
	f := fleet.DefaultFleet()
	for i := 0; i < b.N; i++ {
		r, err := p.Profile(f)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TotalCompressionPct, "comp%")
		b.ReportMetric(r.LowLevelCyclesPct(), "lvl1-4%")
	}
}

// BenchmarkFig6ServiceCycles reproduces the per-service Zstd shares of
// Figure 6 via the same profiling pipeline.
func BenchmarkFig6ServiceCycles(b *testing.B) {
	p := &fleet.Profiler{Samples: 500_000, Seed: 2, MeasureBytes: 256 << 10}
	f := fleet.DefaultFleet()
	for i := 0; i < b.N; i++ {
		r, err := p.Profile(f)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ServiceZstdPct["dw-ingestion"], "DW1%")
		b.ReportMetric(r.ServiceZstdPct["dw-spark"], "DW3%")
	}
}

// BenchmarkFig7WarehouseStages measures the DW1-DW4 workflows behind
// Figure 7, reporting the match-finding share of compression time.
func BenchmarkFig7WarehouseStages(b *testing.B) {
	b.Run("DW1_ingest", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, st, err := warehouse.Ingest(1, 2, 20000)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(st.MatchFindFraction()*100, "matchfind%")
		}
	})
	ds, _, err := warehouse.Ingest(2, 2, 20000)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("DW2_shuffle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, st, err := warehouse.Shuffle(ds, 4)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(st.MatchFindFraction()*100, "matchfind%")
		}
	})
	b.Run("DW3_spark", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, st, err := warehouse.SparkWorker(ds, 2)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(st.MatchFindFraction()*100, "matchfind%")
		}
	})
	b.Run("DW4_ml", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, err := warehouse.MLJob(ds, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(st.MatchFindFraction()*100, "matchfind%")
		}
	})
}

// BenchmarkFig8Fig9ItemSizes regenerates the cache item populations whose
// size distributions are Figures 8 and 9.
func BenchmarkFig8Fig9ItemSizes(b *testing.B) {
	types := corpus.DefaultItemTypes()
	for _, typ := range types {
		b.Run(typ.Name, func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				items := corpus.CacheItems(int64(i), typ, 1000)
				bytes = 0
				for _, it := range items {
					bytes += int64(len(it))
				}
			}
			b.ReportMetric(float64(bytes)/1000, "meanB")
		})
	}
}

// BenchmarkFig10Fig11DictCompression measures the plain-vs-dictionary
// speed/ratio points of Figures 10 and 11.
func BenchmarkFig10Fig11DictCompression(b *testing.B) {
	typ := corpus.DefaultItemTypes()[0]
	training := corpus.CacheItems(1, typ, 1500)
	d, err := dict.Train(training, dict.DefaultParams(16<<10))
	if err != nil {
		b.Fatal(err)
	}
	items := corpus.CacheItems(2, typ, 300)
	var total int64
	for _, it := range items {
		total += int64(len(it))
	}
	for _, level := range []int{1, 3, 6, 11} {
		for _, mode := range []string{"plain", "dict"} {
			b.Run(fmt.Sprintf("L%d_%s", level, mode), func(b *testing.B) {
				opts := []codec.Option{codec.WithLevel(level)}
				if mode == "dict" {
					opts = append(opts, codec.WithDict(d))
				}
				eng, err := codec.NewEngine("zstd", opts...)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(total)
				var out []byte
				var compressed int64
				for i := 0; i < b.N; i++ {
					compressed = 0
					for _, it := range items {
						out, err = eng.Compress(out[:0], it)
						if err != nil {
							b.Fatal(err)
						}
						compressed += int64(len(out))
					}
				}
				b.ReportMetric(float64(total)/float64(compressed), "ratio")
			})
		}
	}
}

// BenchmarkFig12AdsLevels sweeps Zstd levels over the three ads models of
// Figure 12.
func BenchmarkFig12AdsLevels(b *testing.B) {
	for _, m := range corpus.AdsModels() {
		reqs := m.Requests(1, 2)
		var total int64
		for _, r := range reqs {
			total += int64(len(r))
		}
		for _, level := range []int{-5, -1, 1, 4, 9} {
			b.Run(fmt.Sprintf("model%s_L%d", m.Name, level), func(b *testing.B) {
				eng, err := codec.NewEngine("zstd", codec.WithLevel(level))
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(total)
				var out []byte
				var compressed int64
				for i := 0; i < b.N; i++ {
					compressed = 0
					for _, r := range reqs {
						out, err = eng.Compress(out[:0], r)
						if err != nil {
							b.Fatal(err)
						}
						compressed += int64(len(out))
					}
				}
				b.ReportMetric(float64(total)/float64(compressed), "ratio")
			})
		}
	}
}

// BenchmarkFig12AdsPipeline measures the end-to-end request path (compress
// + wire + decompress) the ADS1 latency argument rests on.
func BenchmarkFig12AdsPipeline(b *testing.B) {
	p, err := ads.New(ads.Config{Model: corpus.ModelB, Compress: true, Level: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	req := corpus.ModelB.Request(rng)
	b.SetBytes(int64(len(req)))
	for i := 0; i < b.N; i++ {
		if _, err := p.Send(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13BlockSize sweeps the SST block size of Figure 13 at Zstd
// level 1, reporting ratio and per-block decompression latency.
func BenchmarkFig13BlockSize(b *testing.B) {
	sample := corpus.SSTSample(1, 2<<20)
	for _, bs := range []int{1 << 10, 4 << 10, 16 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("block%dKiB", bs/1024), func(b *testing.B) {
			eng, err := codec.NewEngine("zstd", codec.WithLevel(1))
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(sample)))
			var m codec.Metrics
			for i := 0; i < b.N; i++ {
				m, err = codec.Measure(eng, [][]byte{sample}, bs, 1)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(m.Ratio(), "ratio")
			b.ReportMetric(float64(m.DecompressPerBlock().Microseconds()), "µs/block")
		})
	}
}

// BenchmarkFig13LSMEndToEnd exercises the real LSM read path whose block
// decompression Figure 13 characterizes.
func BenchmarkFig13LSMEndToEnd(b *testing.B) {
	// WithoutWAL keeps the benchmark apples-to-apples with prior runs: it
	// measures the block read path, not durability.
	ctx := context.Background()
	db, err := kvstore.Open(ctx, "",
		kvstore.WithBlockSize(16<<10), kvstore.WithSeed(1), kvstore.WithoutWAL())
	if err != nil {
		b.Fatal(err)
	}
	pairs := corpus.KVPairs(1, 20000)
	for _, kv := range pairs {
		if err := db.Put(ctx, kv.Key, kv.Value); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Flush(ctx); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv := pairs[rng.Intn(len(pairs))]
		if _, _, err := db.Get(ctx, kv.Key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStudy1AdsSearch runs sensitivity study 1 (Fig 15a): the CompOpt
// search over the ads candidate grid.
func BenchmarkStudy1AdsSearch(b *testing.B) {
	params := core.DefaultCostParams()
	params.AlphaStorage = 0
	rng := rand.New(rand.NewSource(1))
	e := &core.CompEngine{
		Samples:     [][]byte{corpus.ModelA.Request(rng)},
		Params:      params,
		Constraints: core.Constraints{MinCompressMBps: 40},
	}
	candidates := core.Grid(map[string][]int{
		"zstd": {-1, 1, 4, 9},
		"lz4":  {-10, 1, 9},
	}, nil)
	for i := 0; i < b.N; i++ {
		best, _, err := e.Search(candidates)
		if err != nil {
			b.Fatal(err)
		}
		if best.Config.Algorithm == "" {
			b.Fatal("no winner")
		}
	}
}

// BenchmarkStudy2KVSearch runs sensitivity study 2 (Fig 15b): the block
// size × codec grid under the decompression SLO.
func BenchmarkStudy2KVSearch(b *testing.B) {
	params := core.DefaultCostParams()
	params.AlphaNetwork = 0
	params.RetentionDays = 90
	params.DecompressWeight = 3
	e := &core.CompEngine{
		Samples:     [][]byte{corpus.SSTSample(1, 1<<20)},
		Params:      params,
		Constraints: core.Constraints{MaxDecompressPerBlock: 150 * time.Microsecond},
	}
	candidates := core.Grid(map[string][]int{"zstd": {1, 3}, "lz4": {1}},
		[]int{4 << 10, 16 << 10, 64 << 10})
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Search(candidates); err != nil && err != core.ErrNoFeasible {
			b.Fatal(err)
		}
	}
}

// BenchmarkStudy3WindowSweep runs sensitivity study 3 (Fig 16): the CompSim
// accelerator match-window sweep.
func BenchmarkStudy3WindowSweep(b *testing.B) {
	params := core.DefaultCostParams()
	params.AlphaNetwork = 0
	e := &core.CompEngine{
		Samples: [][]byte{corpus.SSTSample(1, 1<<20)},
		Params:  params,
	}
	sweep := core.WindowSweep("zstd", 1, 64<<10, 10, 18, 10, core.EIAComputeAlpha)
	for i := 0; i < b.N; i++ {
		for _, cfg := range sweep {
			if _, err := e.Evaluate(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}
