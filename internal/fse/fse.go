// Package fse implements Finite State Entropy coding (tANS), the entropy
// stage that distinguishes the Zstd-style codec from LZ4 in this repository.
//
// The construction follows the published Zstandard/FSE design: normalized
// symbol counts (power-of-two total) are spread over the state table with the
// prime-step walk, encoding runs back-to-front emitting variable bit counts
// per symbol, and decoding walks forward from a flushed final state read via
// a reverse bit stream. Payloads are self-describing: a one-byte table log
// followed by the bit-packed normalized counts, then the tANS bit stream.
package fse

import (
	"errors"
	"fmt"
	mathbits "math/bits"

	"github.com/datacomp/datacomp/internal/bits"
	"github.com/datacomp/datacomp/internal/hist"
)

// ErrIncompressible is returned by Compress when FSE coding does not shrink
// the input.
var ErrIncompressible = errors.New("fse: input not compressible")

// ErrCorrupt is returned when a payload cannot be decoded.
var ErrCorrupt = errors.New("fse: corrupt payload")

// spread distributes symbols over the state table using the FSE step walk.
func spread(norm []uint16, tableLog uint) []byte {
	tableSize := 1 << tableLog
	table := make([]byte, tableSize)
	step := (tableSize >> 1) + (tableSize >> 3) + 3
	mask := tableSize - 1
	pos := 0
	for s, n := range norm {
		for i := 0; i < int(n); i++ {
			table[pos] = byte(s)
			pos = (pos + step) & mask
		}
	}
	return table
}

type symbolTransform struct {
	deltaNbBits    uint32
	deltaFindState int32
}

// EncTable is a prepared tANS encoding table.
type EncTable struct {
	tableLog   uint
	stateTable []uint16 // next-state values, indexed by cumulative slot
	symbolTT   []symbolTransform
	norm       []uint16
}

// BuildEncTable constructs an encoding table from normalized counts summing
// to 1<<tableLog. A distribution giving the whole table to one symbol is
// rejected: callers should use RLE for single-symbol data.
func BuildEncTable(norm []uint16, tableLog uint) (*EncTable, error) {
	if tableLog < hist.MinTableLog || tableLog > hist.MaxTableLog {
		return nil, fmt.Errorf("fse: table log %d out of range", tableLog)
	}
	tableSize := uint32(1) << tableLog
	distinct := 0
	for _, n := range norm {
		if n > 0 {
			distinct++
		}
		if uint32(n) == tableSize {
			return nil, errors.New("fse: single-symbol distribution (use RLE)")
		}
	}
	if distinct == 0 {
		return nil, errors.New("fse: empty distribution")
	}
	sp := spread(norm, tableLog)

	t := &EncTable{
		tableLog:   tableLog,
		stateTable: make([]uint16, tableSize),
		symbolTT:   make([]symbolTransform, len(norm)),
		norm:       norm,
	}
	// Cumulative slot index per symbol.
	cumul := make([]uint32, len(norm)+1)
	for s, n := range norm {
		cumul[s+1] = cumul[s] + uint32(n)
	}
	next := make([]uint32, len(norm))
	copy(next, cumul[:len(norm)])
	for u := uint32(0); u < tableSize; u++ {
		s := sp[u]
		t.stateTable[next[s]] = uint16(tableSize + u)
		next[s]++
	}
	total := int32(0)
	for s, n := range norm {
		switch n {
		case 0:
		case 1:
			t.symbolTT[s] = symbolTransform{
				deltaNbBits:    uint32(tableLog)<<16 - tableSize,
				deltaFindState: total - 1,
			}
			total++
		default:
			maxBitsOut := uint32(tableLog) - uint32(mathbits.Len16(n-1)-1)
			minStatePlus := uint32(n) << maxBitsOut
			t.symbolTT[s] = symbolTransform{
				deltaNbBits:    maxBitsOut<<16 - minStatePlus,
				deltaFindState: total - int32(n),
			}
			total += int32(n)
		}
	}
	return t, nil
}

// encState carries the rolling tANS encoder state.
type encState struct {
	value uint32 // in [tableSize, 2*tableSize)
	t     *EncTable
}

// init positions the state to encode sym without emitting bits.
func (c *encState) init(t *EncTable, sym byte) {
	c.t = t
	tt := t.symbolTT[sym]
	nbBitsOut := (tt.deltaNbBits + (1 << 15)) >> 16
	value := (nbBitsOut << 16) - tt.deltaNbBits
	c.value = uint32(t.stateTable[int32(value>>nbBitsOut)+tt.deltaFindState])
}

func (c *encState) encode(w *bits.Writer, sym byte) {
	tt := c.t.symbolTT[sym]
	nbBitsOut := (c.value + tt.deltaNbBits) >> 16
	w.WriteBits(uint64(c.value), uint(nbBitsOut))
	c.value = uint32(c.t.stateTable[int32(c.value>>nbBitsOut)+tt.deltaFindState])
}

func (c *encState) flush(w *bits.Writer) {
	w.WriteBits(uint64(c.value), c.t.tableLog)
}

type decEntry struct {
	newStateBase uint16
	symbol       byte
	nbBits       uint8
}

// DecTable is a prepared tANS decoding table.
type DecTable struct {
	tableLog uint
	table    []decEntry
}

// BuildDecTable constructs a decoding table from normalized counts.
func BuildDecTable(norm []uint16, tableLog uint) (*DecTable, error) {
	if tableLog < hist.MinTableLog || tableLog > hist.MaxTableLog {
		return nil, fmt.Errorf("fse: table log %d out of range", tableLog)
	}
	tableSize := uint32(1) << tableLog
	sum := uint32(0)
	for _, n := range norm {
		sum += uint32(n)
	}
	if sum != tableSize {
		return nil, ErrCorrupt
	}
	sp := spread(norm, tableLog)
	d := &DecTable{tableLog: tableLog, table: make([]decEntry, tableSize)}
	next := make([]uint32, len(norm))
	for s, n := range norm {
		next[s] = uint32(n)
	}
	for u := uint32(0); u < tableSize; u++ {
		s := sp[u]
		x := next[s]
		next[s]++
		nbBits := uint8(tableLog) - uint8(mathbits.Len32(x)-1)
		d.table[u] = decEntry{
			newStateBase: uint16((x << nbBits) - tableSize),
			symbol:       s,
			nbBits:       nbBits,
		}
	}
	return d, nil
}

// EncodeWith encodes syms with a prepared table, appending the raw tANS bit
// stream (no table header) to the writer. Symbols are processed
// back-to-front per tANS; the decoder recovers them in forward order.
func EncodeWith(w *bits.Writer, t *EncTable, syms []byte) error {
	if len(syms) == 0 {
		return errors.New("fse: empty input")
	}
	for _, s := range syms {
		if int(s) >= len(t.symbolTT) || t.norm[s] == 0 {
			return fmt.Errorf("fse: symbol %d not in table", s)
		}
	}
	var c encState
	c.init(t, syms[len(syms)-1])
	for i := len(syms) - 2; i >= 0; i-- {
		c.encode(w, syms[i])
	}
	c.flush(w)
	return nil
}

// DecodeWith decodes n symbols from the reverse reader using a prepared
// table, appending to dst.
func DecodeWith(dst []byte, d *DecTable, r *bits.ReverseReader, n int) ([]byte, error) {
	if n == 0 {
		return dst, nil
	}
	// Hot loop: operate on locals rather than decState fields.
	table := d.table
	state := uint32(r.ReadBits(d.tableLog))
	if int(state) >= len(table) {
		return nil, ErrCorrupt
	}
	// The final symbol is carried entirely by the flushed state: no
	// transition bits follow it, so it is read without a state update.
	for i := 0; i < n-1; i++ {
		e := table[state]
		state = uint32(e.newStateBase) + uint32(r.ReadBits(uint(e.nbBits)))
		dst = append(dst, e.symbol)
	}
	dst = append(dst, table[state].symbol)
	if r.Overrun() {
		return nil, ErrCorrupt
	}
	return dst, nil
}

// writeNormHeader serializes tableLog and the normalized counts. The counts
// are bit-packed with a shrinking width: each count is written in
// Len(remaining) bits where remaining is the number of unassigned slots, and
// the stream ends when remaining hits zero.
func writeNormHeader(dst []byte, norm []uint16, tableLog uint) []byte {
	dst = append(dst, byte(tableLog))
	w := bits.NewWriter(len(norm))
	remaining := 1 << tableLog
	for _, n := range norm {
		width := uint(mathbits.Len32(uint32(remaining)))
		w.WriteBits(uint64(n), width)
		remaining -= int(n)
		if remaining == 0 {
			break
		}
	}
	return append(dst, w.Flush()...)
}

// readNormHeader parses a header, returning the counts, table log and the
// number of bytes consumed.
func readNormHeader(src []byte) (norm []uint16, tableLog uint, consumed int, err error) {
	if len(src) < 2 {
		return nil, 0, 0, ErrCorrupt
	}
	tableLog = uint(src[0])
	if tableLog < hist.MinTableLog || tableLog > hist.MaxTableLog {
		return nil, 0, 0, ErrCorrupt
	}
	r := bits.NewReader(src[1:])
	remaining := 1 << tableLog
	for remaining > 0 {
		width := uint(mathbits.Len32(uint32(remaining)))
		v, err := r.ReadBits(width)
		if err != nil {
			return nil, 0, 0, ErrCorrupt
		}
		if int(v) > remaining {
			return nil, 0, 0, ErrCorrupt
		}
		norm = append(norm, uint16(v))
		remaining -= int(v)
		if len(norm) > 256 {
			return nil, 0, 0, ErrCorrupt
		}
	}
	bitsUsed := (len(src[1:])*8 - r.BitsRemaining())
	return norm, tableLog, 1 + (bitsUsed+7)/8, nil
}

// Compress entropy-codes syms into a self-describing payload appended to
// dst. It returns ErrIncompressible when coding would not shrink the input
// and an error for empty or single-symbol input (handle those as raw/RLE).
func Compress(dst, syms []byte, maxTableLog uint) ([]byte, error) {
	if len(syms) < 2 {
		return nil, ErrIncompressible
	}
	h := hist.Count(syms)
	if h.IsSingleSymbol() {
		return nil, ErrIncompressible
	}
	tableLog := hist.OptimalTableLog(&h, maxTableLog)
	norm, err := h.Normalize(tableLog)
	if err != nil {
		return nil, err
	}
	t, err := BuildEncTable(norm, tableLog)
	if err != nil {
		return nil, err
	}
	start := len(dst)
	dst = writeNormHeader(dst, norm, tableLog)
	w := bits.NewWriter(len(syms) / 2)
	if err := EncodeWith(w, t, syms); err != nil {
		return nil, err
	}
	dst = append(dst, w.FlushMarker()...)
	if len(dst)-start >= len(syms) {
		return nil, ErrIncompressible
	}
	return dst, nil
}

// Decompress decodes a payload produced by Compress into exactly n symbols
// appended to dst.
func Decompress(dst, src []byte, n int) ([]byte, error) {
	norm, tableLog, consumed, err := readNormHeader(src)
	if err != nil {
		return nil, err
	}
	d, err := BuildDecTable(norm, tableLog)
	if err != nil {
		return nil, err
	}
	r, err := bits.NewReverseReader(src[consumed:])
	if err != nil {
		return nil, ErrCorrupt
	}
	return DecodeWith(dst, d, r, n)
}
