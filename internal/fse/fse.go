// Package fse implements Finite State Entropy coding (tANS), the entropy
// stage that distinguishes the Zstd-style codec from LZ4 in this repository.
//
// The construction follows the published Zstandard/FSE design: normalized
// symbol counts (power-of-two total) are spread over the state table with the
// prime-step walk, encoding runs back-to-front emitting variable bit counts
// per symbol, and decoding walks forward from a flushed final state read via
// a reverse bit stream. Payloads are self-describing: a one-byte table log
// followed by the bit-packed normalized counts, then the tANS bit stream.
//
// Tables support in-place reinitialization (EncTable.Init, DecTable.Init)
// and the Scratch type threads them plus the bit-stream state across blocks,
// so a warmed steady-state encoder or decoder performs zero heap
// allocations per payload.
package fse

import (
	"errors"
	"fmt"
	mathbits "math/bits"

	"github.com/datacomp/datacomp/internal/bits"
	"github.com/datacomp/datacomp/internal/hist"
)

// ErrIncompressible is returned by Compress when FSE coding does not shrink
// the input.
var ErrIncompressible = errors.New("fse: input not compressible")

// ErrCorrupt is returned when a payload cannot be decoded.
var ErrCorrupt = errors.New("fse: corrupt payload")

// spreadInto distributes symbols over the state table using the FSE step
// walk, reusing table's capacity.
func spreadInto(table []byte, norm []uint16, tableLog uint) []byte {
	tableSize := 1 << tableLog
	if cap(table) < tableSize {
		table = make([]byte, tableSize)
	} else {
		table = table[:tableSize]
	}
	step := (tableSize >> 1) + (tableSize >> 3) + 3
	mask := tableSize - 1
	pos := 0
	for s, n := range norm {
		for i := 0; i < int(n); i++ {
			table[pos] = byte(s)
			pos = (pos + step) & mask
		}
	}
	return table
}

type symbolTransform struct {
	deltaNbBits    uint32
	deltaFindState int32
}

// EncTable is a prepared tANS encoding table. The zero value is empty;
// (re)initialize it with Init, which reuses the table's storage.
type EncTable struct {
	tableLog   uint
	stateTable []uint16 // next-state values, indexed by cumulative slot
	symbolTT   []symbolTransform
	norm       []uint16
	spread     []byte // scratch for the state-spread walk
}

// Init (re)builds the encoding table in place from normalized counts summing
// to 1<<tableLog, reusing all internal storage. A distribution giving the
// whole table to one symbol is rejected: callers should use RLE for
// single-symbol data. The table keeps a reference to norm.
func (t *EncTable) Init(norm []uint16, tableLog uint) error {
	if tableLog < hist.MinTableLog || tableLog > hist.MaxTableLog {
		return fmt.Errorf("fse: table log %d out of range", tableLog)
	}
	tableSize := uint32(1) << tableLog
	distinct := 0
	for _, n := range norm {
		if n > 0 {
			distinct++
		}
		if uint32(n) == tableSize {
			return errors.New("fse: single-symbol distribution (use RLE)")
		}
	}
	if distinct == 0 {
		return errors.New("fse: empty distribution")
	}
	t.spread = spreadInto(t.spread, norm, tableLog)

	t.tableLog = tableLog
	t.norm = norm
	if cap(t.stateTable) < int(tableSize) {
		t.stateTable = make([]uint16, tableSize)
	} else {
		t.stateTable = t.stateTable[:tableSize]
	}
	if cap(t.symbolTT) < len(norm) {
		t.symbolTT = make([]symbolTransform, len(norm))
	} else {
		t.symbolTT = t.symbolTT[:len(norm)]
	}
	// Cumulative slot index per symbol.
	var cumul [257]uint32
	var next [256]uint32
	for s, n := range norm {
		cumul[s+1] = cumul[s] + uint32(n)
	}
	copy(next[:len(norm)], cumul[:len(norm)])
	for u := uint32(0); u < tableSize; u++ {
		s := t.spread[u]
		t.stateTable[next[s]] = uint16(tableSize + u)
		next[s]++
	}
	total := int32(0)
	for s, n := range norm {
		switch n {
		case 0:
			t.symbolTT[s] = symbolTransform{}
		case 1:
			t.symbolTT[s] = symbolTransform{
				deltaNbBits:    uint32(tableLog)<<16 - tableSize,
				deltaFindState: total - 1,
			}
			total++
		default:
			maxBitsOut := uint32(tableLog) - uint32(mathbits.Len16(n-1)-1)
			minStatePlus := uint32(n) << maxBitsOut
			t.symbolTT[s] = symbolTransform{
				deltaNbBits:    maxBitsOut<<16 - minStatePlus,
				deltaFindState: total - int32(n),
			}
			total += int32(n)
		}
	}
	return nil
}

// BuildEncTable constructs an encoding table from normalized counts summing
// to 1<<tableLog. See EncTable.Init for the constraints.
func BuildEncTable(norm []uint16, tableLog uint) (*EncTable, error) {
	t := new(EncTable)
	if err := t.Init(norm, tableLog); err != nil {
		return nil, err
	}
	return t, nil
}

// encState carries the rolling tANS encoder state.
type encState struct {
	value uint32 // in [tableSize, 2*tableSize)
	t     *EncTable
}

// init positions the state to encode sym without emitting bits.
func (c *encState) init(t *EncTable, sym byte) {
	c.t = t
	tt := t.symbolTT[sym]
	nbBitsOut := (tt.deltaNbBits + (1 << 15)) >> 16
	value := (nbBitsOut << 16) - tt.deltaNbBits
	c.value = uint32(t.stateTable[int32(value>>nbBitsOut)+tt.deltaFindState])
}

func (c *encState) encode(w *bits.Writer, sym byte) {
	tt := c.t.symbolTT[sym]
	nbBitsOut := (c.value + tt.deltaNbBits) >> 16
	w.WriteBits(uint64(c.value), uint(nbBitsOut))
	c.value = uint32(c.t.stateTable[int32(c.value>>nbBitsOut)+tt.deltaFindState])
}

func (c *encState) flush(w *bits.Writer) {
	w.WriteBits(uint64(c.value), c.t.tableLog)
}

// encode64 is encode writing through the branch-reduced 64-bit writer.
// The caller batches a bounded group of encodes between Carry calls.
func (c *encState) encode64(w *bits.Writer64, sym byte) {
	tt := c.t.symbolTT[sym]
	nbBitsOut := (c.value + tt.deltaNbBits) >> 16
	w.Add(uint64(c.value), uint(nbBitsOut))
	c.value = uint32(c.t.stateTable[int32(c.value>>nbBitsOut)+tt.deltaFindState])
}

func (c *encState) flush64(w *bits.Writer64) {
	w.WriteBits(uint64(c.value), c.t.tableLog)
}

type decEntry struct {
	newStateBase uint16
	symbol       byte
	nbBits       uint8
}

// DecTable is a prepared tANS decoding table. The zero value is empty;
// (re)initialize it with Init, which reuses the table's storage.
type DecTable struct {
	tableLog uint
	table    []decEntry
	spread   []byte // scratch for the state-spread walk
}

// Init (re)builds the decoding table in place from normalized counts,
// reusing all internal storage.
func (d *DecTable) Init(norm []uint16, tableLog uint) error {
	if tableLog < hist.MinTableLog || tableLog > hist.MaxTableLog {
		return fmt.Errorf("fse: table log %d out of range", tableLog)
	}
	tableSize := uint32(1) << tableLog
	sum := uint32(0)
	for _, n := range norm {
		sum += uint32(n)
	}
	if sum != tableSize {
		return ErrCorrupt
	}
	d.spread = spreadInto(d.spread, norm, tableLog)
	d.tableLog = tableLog
	if cap(d.table) < int(tableSize) {
		d.table = make([]decEntry, tableSize)
	} else {
		d.table = d.table[:tableSize]
	}
	var next [256]uint32
	for s, n := range norm {
		next[s] = uint32(n)
	}
	for u := uint32(0); u < tableSize; u++ {
		s := d.spread[u]
		x := next[s]
		next[s]++
		nbBits := uint8(tableLog) - uint8(mathbits.Len32(x)-1)
		d.table[u] = decEntry{
			newStateBase: uint16((x << nbBits) - tableSize),
			symbol:       s,
			nbBits:       nbBits,
		}
	}
	return nil
}

// BuildDecTable constructs a decoding table from normalized counts.
func BuildDecTable(norm []uint16, tableLog uint) (*DecTable, error) {
	d := new(DecTable)
	if err := d.Init(norm, tableLog); err != nil {
		return nil, err
	}
	return d, nil
}

// EncodeWith encodes syms with a prepared table, appending the raw tANS bit
// stream (no table header) to the writer. Symbols are processed
// back-to-front per tANS; the decoder recovers them in forward order.
func EncodeWith(w *bits.Writer, t *EncTable, syms []byte) error {
	if len(syms) == 0 {
		return errors.New("fse: empty input")
	}
	for _, s := range syms {
		if int(s) >= len(t.symbolTT) || t.norm[s] == 0 {
			return fmt.Errorf("fse: symbol %d not in table", s)
		}
	}
	var c encState
	c.init(t, syms[len(syms)-1])
	for i := len(syms) - 2; i >= 0; i-- {
		c.encode(w, syms[i])
	}
	c.flush(w)
	return nil
}

// DecodeWith decodes n symbols from the reverse reader using a prepared
// table, appending to dst.
func DecodeWith(dst []byte, d *DecTable, r *bits.ReverseReader, n int) ([]byte, error) {
	if n == 0 {
		return dst, nil
	}
	// Hot loop: operate on locals rather than decState fields.
	table := d.table
	state := uint32(r.ReadBits(d.tableLog))
	if int(state) >= len(table) {
		return nil, ErrCorrupt
	}
	// The final symbol is carried entirely by the flushed state: no
	// transition bits follow it, so it is read without a state update.
	for i := 0; i < n-1; i++ {
		e := table[state]
		state = uint32(e.newStateBase) + uint32(r.ReadBits(uint(e.nbBits)))
		dst = append(dst, e.symbol)
	}
	dst = append(dst, table[state].symbol)
	if r.Overrun() {
		return nil, ErrCorrupt
	}
	return dst, nil
}

// EncodeWith2 encodes syms (len ≥ 2) with two interleaved tANS states —
// state1 carries the even input positions, state2 the odd ones — so the
// decoder can overlap the two dependent state-transition chains. Symbols
// are processed back-to-front; state2 is flushed before state1, so the
// decoder (reading in reverse write order) recovers state1 first. The raw
// bit stream (no table header) is appended through w.
func EncodeWith2(w *bits.Writer64, t *EncTable, syms []byte) error {
	if len(syms) < 2 {
		return errors.New("fse: two-state encoding needs at least 2 symbols")
	}
	for _, s := range syms {
		if int(s) >= len(t.symbolTT) || t.norm[s] == 0 {
			return fmt.Errorf("fse: symbol %d not in table", s)
		}
	}
	i := len(syms)
	var c1, c2 encState
	if i&1 == 1 {
		// Odd count: state1 ends up with one more symbol. Its extra encode
		// step keeps the decoder's strict 1-2-1-2 alternation intact.
		c1.init(t, syms[i-1])
		c2.init(t, syms[i-2])
		i -= 2
		c1.encode64(w, syms[i-1])
		i--
		w.Carry()
	} else {
		c2.init(t, syms[i-1])
		c1.init(t, syms[i-2])
		i -= 2
	}
	for i > 0 {
		// One pair per carry: ≤ 2×tableLog ≤ 24 bits accumulated.
		c2.encode64(w, syms[i-1])
		c1.encode64(w, syms[i-2])
		w.Carry()
		i -= 2
	}
	c2.flush64(w)
	c1.flush64(w)
	return nil
}

// DecodeWith2 decodes n symbols (n ≥ 2) produced by EncodeWith2,
// appending to dst. Both states stay in registers; the reader is refilled
// once per decoded pair.
func DecodeWith2(dst []byte, d *DecTable, r *bits.ReverseReader64, n int) ([]byte, error) {
	if n < 2 {
		return nil, ErrCorrupt
	}
	base := len(dst)
	dst = grow(dst, n)
	out := dst[base:]
	table := d.table
	tlog := d.tableLog
	st1 := r.ReadBits(tlog)
	st2 := r.ReadBits(tlog)
	i := 0
	// Two pairs per refill: 4 transitions × tableLog ≤ 12 = 48 bits ≤ 56.
	for ; i+4 <= n-2; i += 4 {
		r.Refill()
		e1 := table[st1]
		out[i] = e1.symbol
		st1 = uint64(e1.newStateBase) + r.ReadBits(uint(e1.nbBits))
		e2 := table[st2]
		out[i+1] = e2.symbol
		st2 = uint64(e2.newStateBase) + r.ReadBits(uint(e2.nbBits))
		e1 = table[st1]
		out[i+2] = e1.symbol
		st1 = uint64(e1.newStateBase) + r.ReadBits(uint(e1.nbBits))
		e2 = table[st2]
		out[i+3] = e2.symbol
		st2 = uint64(e2.newStateBase) + r.ReadBits(uint(e2.nbBits))
	}
	for ; i+2 <= n-2; i += 2 {
		r.Refill()
		e1 := table[st1]
		out[i] = e1.symbol
		st1 = uint64(e1.newStateBase) + r.ReadBits(uint(e1.nbBits))
		e2 := table[st2]
		out[i+1] = e2.symbol
		st2 = uint64(e2.newStateBase) + r.ReadBits(uint(e2.nbBits))
	}
	// The final symbol of each stream is carried entirely by its state.
	// Odd n: state1 holds one extra symbol, and the stream ends odd-even,
	// so the final pair comes state2-first.
	if n-i == 3 {
		r.Refill()
		e1 := table[st1]
		out[i] = e1.symbol
		st1 = uint64(e1.newStateBase) + r.ReadBits(uint(e1.nbBits))
		i++
		out[i] = table[st2].symbol
		out[i+1] = table[st1].symbol
	} else {
		out[i] = table[st1].symbol
		out[i+1] = table[st2].symbol
	}
	if r.Overrun() {
		return nil, ErrCorrupt
	}
	return dst, nil
}

// decodeWith64 is the single-state decode loop over the branch-reduced
// reverse reader, used by Scratch.Decompress (the serial dependent-load
// chain remains, but each step loses its per-bit refill branches).
func decodeWith64(dst []byte, d *DecTable, r *bits.ReverseReader64, n int) ([]byte, error) {
	if n == 0 {
		return dst, nil
	}
	base := len(dst)
	dst = grow(dst, n)
	out := dst[base:]
	table := d.table
	st := r.ReadBits(d.tableLog)
	i := 0
	// Four symbols per refill: 4 transitions × tableLog ≤ 12 = 48 bits ≤ 56.
	for ; i+4 <= n-1; i += 4 {
		r.Refill()
		e := table[st]
		out[i] = e.symbol
		st = uint64(e.newStateBase) + r.ReadBits(uint(e.nbBits))
		e = table[st]
		out[i+1] = e.symbol
		st = uint64(e.newStateBase) + r.ReadBits(uint(e.nbBits))
		e = table[st]
		out[i+2] = e.symbol
		st = uint64(e.newStateBase) + r.ReadBits(uint(e.nbBits))
		e = table[st]
		out[i+3] = e.symbol
		st = uint64(e.newStateBase) + r.ReadBits(uint(e.nbBits))
	}
	for ; i+2 <= n-1; i += 2 {
		r.Refill()
		e := table[st]
		out[i] = e.symbol
		st = uint64(e.newStateBase) + r.ReadBits(uint(e.nbBits))
		e = table[st]
		out[i+1] = e.symbol
		st = uint64(e.newStateBase) + r.ReadBits(uint(e.nbBits))
	}
	if i < n-1 {
		r.Refill()
		e := table[st]
		out[i] = e.symbol
		st = uint64(e.newStateBase) + r.ReadBits(uint(e.nbBits))
		i++
	}
	out[i] = table[st].symbol
	if r.Overrun() {
		return nil, ErrCorrupt
	}
	return dst, nil
}

// grow extends b by n bytes without zero-filling, reusing capacity.
func grow(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b[:len(b)+n]
	}
	nb := make([]byte, len(b)+n, 2*len(b)+n)
	copy(nb, b)
	return nb
}

// writeNormHeader serializes tableLog and the normalized counts through w
// (reset here). The counts are bit-packed with a shrinking width: each count
// is written in Len(remaining) bits where remaining is the number of
// unassigned slots, and the stream ends when remaining hits zero.
func writeNormHeader(dst []byte, w *bits.Writer, norm []uint16, tableLog uint) []byte {
	dst = append(dst, byte(tableLog))
	w.Reset()
	remaining := 1 << tableLog
	for _, n := range norm {
		width := uint(mathbits.Len32(uint32(remaining)))
		w.WriteBits(uint64(n), width)
		remaining -= int(n)
		if remaining == 0 {
			break
		}
	}
	return append(dst, w.Flush()...)
}

// readNormHeaderInto parses a header, appending the counts to norm[:0] and
// returning the counts, table log and the number of bytes consumed.
func readNormHeaderInto(scratch []uint16, src []byte) (norm []uint16, tableLog uint, consumed int, err error) {
	if len(src) < 2 {
		return nil, 0, 0, ErrCorrupt
	}
	tableLog = uint(src[0])
	if tableLog < hist.MinTableLog || tableLog > hist.MaxTableLog {
		return nil, 0, 0, ErrCorrupt
	}
	norm = scratch[:0]
	var r bits.Reader
	r.Reset(src[1:])
	remaining := 1 << tableLog
	for remaining > 0 {
		width := uint(mathbits.Len32(uint32(remaining)))
		v, err := r.ReadBits(width)
		if err != nil {
			return nil, 0, 0, ErrCorrupt
		}
		if int(v) > remaining {
			return nil, 0, 0, ErrCorrupt
		}
		norm = append(norm, uint16(v))
		remaining -= int(v)
		if len(norm) > 256 {
			return nil, 0, 0, ErrCorrupt
		}
	}
	bitsUsed := (len(src[1:])*8 - r.BitsRemaining())
	return norm, tableLog, 1 + (bitsUsed+7)/8, nil
}

// Scratch owns the coding tables, normalized-count buffer and bit-stream
// state, so a warmed steady-state encoder or decoder performs zero heap
// allocations per payload. The zero value is ready to use; a Scratch is not
// safe for concurrent use.
type Scratch struct {
	enc  EncTable
	dec  DecTable
	norm []uint16
	w    bits.Writer
	w64  bits.Writer64
	rr64 bits.ReverseReader64
}

// Compress is the scratch-reusing form of the package-level Compress.
func (s *Scratch) Compress(dst, syms []byte, maxTableLog uint) ([]byte, error) {
	if len(syms) < 2 {
		return nil, ErrIncompressible
	}
	h := hist.Count(syms)
	if h.IsSingleSymbol() {
		return nil, ErrIncompressible
	}
	tableLog := hist.OptimalTableLog(&h, maxTableLog)
	norm, err := h.NormalizeInto(s.norm, tableLog)
	if err != nil {
		return nil, err
	}
	s.norm = norm
	if err := s.enc.Init(norm, tableLog); err != nil {
		return nil, err
	}
	start := len(dst)
	dst = writeNormHeader(dst, &s.w, norm, tableLog)
	s.w.Reset()
	if err := EncodeWith(&s.w, &s.enc, syms); err != nil {
		return nil, err
	}
	dst = append(dst, s.w.FlushMarker()...)
	if len(dst)-start >= len(syms) {
		// Return dst at its original length, not nil: the caller keeps the
		// capacity the attempt grew, so a workload of incompressible small
		// payloads doesn't reallocate the staging buffer on every call.
		return dst[:start], ErrIncompressible
	}
	return dst, nil
}

// Decompress is the scratch-reusing form of the package-level Decompress.
func (s *Scratch) Decompress(dst, src []byte, n int) ([]byte, error) {
	norm, tableLog, consumed, err := readNormHeaderInto(s.norm, src)
	if err != nil {
		return nil, err
	}
	s.norm = norm
	if err := s.dec.Init(norm, tableLog); err != nil {
		return nil, err
	}
	if err := s.rr64.Init(src[consumed:]); err != nil {
		return nil, ErrCorrupt
	}
	return decodeWith64(dst, &s.dec, &s.rr64, n)
}

// Compress2 entropy-codes syms with two interleaved tANS states into a
// self-describing payload appended to dst. The header format matches
// Compress (table log byte + bit-packed normalized counts); only the bit
// stream differs, so the payload must be decoded with Decompress2.
func (s *Scratch) Compress2(dst, syms []byte, maxTableLog uint) ([]byte, error) {
	if len(syms) < 2 {
		return nil, ErrIncompressible
	}
	h := hist.Count(syms)
	if h.IsSingleSymbol() {
		return nil, ErrIncompressible
	}
	tableLog := hist.OptimalTableLog(&h, maxTableLog)
	norm, err := h.NormalizeInto(s.norm, tableLog)
	if err != nil {
		return nil, err
	}
	s.norm = norm
	if err := s.enc.Init(norm, tableLog); err != nil {
		return nil, err
	}
	start := len(dst)
	dst = writeNormHeader(dst, &s.w, norm, tableLog)
	s.w64.ResetBuf(dst)
	if err := EncodeWith2(&s.w64, &s.enc, syms); err != nil {
		return nil, err
	}
	dst = s.w64.FlushMarker()
	if len(dst)-start >= len(syms) {
		// As in Compress: hand the grown capacity back to the caller.
		return dst[:start], ErrIncompressible
	}
	return dst, nil
}

// Decompress2 decodes a payload produced by Compress2 into exactly n
// symbols appended to dst.
func (s *Scratch) Decompress2(dst, src []byte, n int) ([]byte, error) {
	norm, tableLog, consumed, err := readNormHeaderInto(s.norm, src)
	if err != nil {
		return nil, err
	}
	s.norm = norm
	if err := s.dec.Init(norm, tableLog); err != nil {
		return nil, err
	}
	if err := s.rr64.Init(src[consumed:]); err != nil {
		return nil, ErrCorrupt
	}
	return DecodeWith2(dst, &s.dec, &s.rr64, n)
}

// Compress entropy-codes syms into a self-describing payload appended to
// dst. It returns ErrIncompressible when coding would not shrink the input
// and an error for empty or single-symbol input (handle those as raw/RLE).
func Compress(dst, syms []byte, maxTableLog uint) ([]byte, error) {
	var s Scratch
	return s.Compress(dst, syms, maxTableLog)
}

// Decompress decodes a payload produced by Compress into exactly n symbols
// appended to dst.
func Decompress(dst, src []byte, n int) ([]byte, error) {
	var s Scratch
	return s.Decompress(dst, src, n)
}

// Compress2 is the one-shot form of Scratch.Compress2.
func Compress2(dst, syms []byte, maxTableLog uint) ([]byte, error) {
	var s Scratch
	return s.Compress2(dst, syms, maxTableLog)
}

// Decompress2 is the one-shot form of Scratch.Decompress2.
func Decompress2(dst, src []byte, n int) ([]byte, error) {
	var s Scratch
	return s.Decompress2(dst, src, n)
}
