package fse

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestCompress2Roundtrip sweeps the interleaved 2-state coder across every
// length from 2 to 599 so both parities of the odd-tail handling and every
// cleanup-loop phase get exercised.
func TestCompress2Roundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 2; n < 600; n++ {
		syms := make([]byte, n)
		for i := range syms {
			syms[i] = byte(rng.Intn(8)) // compressible
		}
		enc, err := Compress2(nil, syms, 9)
		if err == ErrIncompressible {
			continue
		}
		if err != nil {
			t.Fatalf("n=%d compress: %v", n, err)
		}
		dec, err := Decompress2(nil, enc, n)
		if err != nil {
			t.Fatalf("n=%d decompress: %v", n, err)
		}
		if !bytes.Equal(dec, syms) {
			t.Fatalf("n=%d mismatch", n)
		}
	}
}

// TestCompress2Large pushes bigger skewed payloads through a reused Scratch,
// the shape the zstd sequence stage uses.
func TestCompress2Large(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var s Scratch
	for trial := 0; trial < 12; trial++ {
		n := 2000 + rng.Intn(50000)
		syms := make([]byte, n)
		for i := range syms {
			syms[i] = byte(rng.Intn(4) * rng.Intn(10))
		}
		enc, err := s.Compress2(nil, syms, 11)
		if err == ErrIncompressible {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: compress: %v", trial, err)
		}
		dec, err := s.Decompress2(nil, enc, n)
		if err != nil {
			t.Fatalf("trial %d: decompress: %v", trial, err)
		}
		if !bytes.Equal(dec, syms) {
			t.Fatalf("trial %d: mismatch (n=%d)", trial, n)
		}
	}
}

func TestDecompress2Corrupt(t *testing.T) {
	syms := bytes.Repeat([]byte{0, 1, 1, 2, 2, 2, 3}, 200)
	enc, err := Compress2(nil, syms, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress2(nil, nil, 10); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := Decompress2(nil, enc[:len(enc)/2], len(syms)); err == nil {
		t.Fatal("truncated payload accepted")
	}
	// Wrong declared length must error, not mis-decode silently past the
	// stream or panic.
	if dec, err := Decompress2(nil, enc, len(syms)*2); err == nil && bytes.Equal(dec[:len(syms)], syms) && len(dec) == len(syms)*2 {
		t.Fatal("doubled length produced a 'valid' decode")
	}
}
