package fse

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/datacomp/datacomp/internal/bits"
	"github.com/datacomp/datacomp/internal/hist"
)

func skewed(seed int64, n, alpha int) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		// Geometric-ish skew.
		v := 0
		for rng.Intn(2) == 0 && v < alpha-1 {
			v++
		}
		out[i] = byte(v)
	}
	return out
}

func TestCompressRoundtrip(t *testing.T) {
	for _, n := range []int{2, 16, 100, 1000, 10000, 65536} {
		src := skewed(int64(n), n, 20)
		out, err := Compress(nil, src, 11)
		if err == ErrIncompressible {
			continue
		}
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		back, err := Decompress(nil, out, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(back, src) {
			t.Fatalf("n=%d: roundtrip mismatch", n)
		}
	}
}

func TestCompressShrinks(t *testing.T) {
	src := skewed(42, 32768, 8)
	out, err := Compress(nil, src, 11)
	if err != nil {
		t.Fatal(err)
	}
	h := hist.Count(src)
	ideal := int(h.EstimateCompressedBits()/8) + 1
	if len(out) > ideal+ideal/10+64 {
		t.Fatalf("FSE output %d far above entropy ideal %d", len(out), ideal)
	}
}

func TestCompressIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := make([]byte, 4096)
	rng.Read(src)
	if _, err := Compress(nil, src, 11); err != ErrIncompressible {
		t.Fatalf("want ErrIncompressible, got %v", err)
	}
}

func TestCompressSingleSymbol(t *testing.T) {
	src := bytes.Repeat([]byte{7}, 500)
	if _, err := Compress(nil, src, 11); err != ErrIncompressible {
		t.Fatalf("want ErrIncompressible for RLE data, got %v", err)
	}
}

func TestCompressTiny(t *testing.T) {
	if _, err := Compress(nil, []byte{1}, 11); err != ErrIncompressible {
		t.Fatalf("got %v", err)
	}
}

func TestSharedTableEncodeDecode(t *testing.T) {
	// Sequence-coding usage: table built once from one distribution,
	// reused for a different message drawn from the same alphabet.
	train := skewed(1, 4096, 16)
	h := hist.Count(train)
	tableLog := hist.OptimalTableLog(&h, 9)
	norm, err := h.Normalize(tableLog)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := BuildEncTable(norm, tableLog)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := BuildDecTable(norm, tableLog)
	if err != nil {
		t.Fatal(err)
	}
	msg := skewed(2, 777, 16)
	w := bits.NewWriter(1024)
	if err := EncodeWith(w, enc, msg); err != nil {
		t.Fatal(err)
	}
	r, err := bits.NewReverseReader(w.FlushMarker())
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeWith(nil, dec, r, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, msg) {
		t.Fatal("shared-table roundtrip mismatch")
	}
	if !r.Finished() {
		t.Fatalf("bits left over: %d", r.BitsRemaining())
	}
}

func TestEncodeWithUnknownSymbol(t *testing.T) {
	train := skewed(1, 4096, 8)
	h := hist.Count(train)
	norm, err := h.Normalize(8)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := BuildEncTable(norm, 8)
	if err != nil {
		t.Fatal(err)
	}
	w := bits.NewWriter(64)
	if err := EncodeWith(w, enc, []byte{200}); err == nil {
		t.Fatal("want error for out-of-table symbol")
	}
}

func TestBuildEncTableRejectsSingleSymbol(t *testing.T) {
	norm := make([]uint16, 3)
	norm[1] = 1 << 8
	if _, err := BuildEncTable(norm, 8); err == nil {
		t.Fatal("want error for single-symbol distribution")
	}
}

func TestBuildDecTableRejectsBadSum(t *testing.T) {
	norm := []uint16{3, 5} // sums to 8, not 2^8
	if _, err := BuildDecTable(norm, 8); err == nil {
		t.Fatal("want error for bad normalized sum")
	}
}

func TestDecompressCorrupt(t *testing.T) {
	src := skewed(9, 2048, 12)
	out, err := Compress(nil, src, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(nil, out[:2], len(src)); err == nil {
		t.Fatal("truncated payload should fail")
	}
	if _, err := Decompress(nil, nil, 1); err == nil {
		t.Fatal("empty payload should fail")
	}
	// Bad table log.
	bad := append([]byte{}, out...)
	bad[0] = 99
	if _, err := Decompress(nil, bad, len(src)); err == nil {
		t.Fatal("bad table log should fail")
	}
}

func TestNormHeaderRoundtrip(t *testing.T) {
	src := skewed(5, 3000, 25)
	h := hist.Count(src)
	for _, log := range []uint{5, 7, 9, 11, 12} {
		norm, err := h.Normalize(log)
		if err != nil {
			t.Fatal(err)
		}
		var w bits.Writer
		hdr := writeNormHeader(nil, &w, norm, log)
		got, gotLog, consumed, err := readNormHeaderInto(nil, hdr)
		if err != nil {
			t.Fatalf("log %d: %v", log, err)
		}
		if gotLog != log || consumed != len(hdr) {
			t.Fatalf("log %d: gotLog=%d consumed=%d len=%d", log, gotLog, consumed, len(hdr))
		}
		if len(got) != len(norm) {
			t.Fatalf("log %d: count length %d want %d", log, len(got), len(norm))
		}
		for i := range norm {
			if got[i] != norm[i] {
				t.Fatalf("log %d: norm[%d] = %d want %d", log, i, got[i], norm[i])
			}
		}
	}
}

func TestQuickRoundtrip(t *testing.T) {
	f := func(seed int64, size uint16, alphaSel, logSel uint8) bool {
		n := int(size)%16384 + 2
		alpha := int(alphaSel)%40 + 2
		src := skewed(seed, n, alpha)
		maxLog := uint(logSel)%(hist.MaxTableLog-hist.MinTableLog+1) + hist.MinTableLog
		out, err := Compress(nil, src, maxLog)
		if err == ErrIncompressible {
			return true
		}
		if err != nil {
			return false
		}
		back, err := Decompress(nil, out, n)
		return err == nil && bytes.Equal(back, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress(b *testing.B) {
	src := skewed(1, 1<<16, 16)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(nil, src, 11); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	src := skewed(1, 1<<16, 16)
	out, err := Compress(nil, src, 11)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(nil, out, len(src)); err != nil {
			b.Fatal(err)
		}
	}
}
