package container

import (
	"errors"
	"fmt"
	"io"

	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/xxhash"
)

// Builder writes a container one caller-delimited block at a time through a
// single engine — the sequential producer the kvstore table writer and the
// warehouse stripe writer use, where block boundaries are semantic (key
// ranges, column chunks) rather than fixed-size. For fixed-size parallel
// splitting of a stream, use Encode.
//
// A Builder is single-goroutine, like the engine it owns. After a warm-up
// append, AppendBlock performs no heap allocations beyond index growth;
// Reserve pre-sizes the index so steady-state appends stay at zero.
type Builder struct {
	w      io.Writer
	eng    codec.Engine
	comp   []byte // reused compressed-block scratch
	hdr    []byte // reused header scratch
	blocks []BlockInfo
	off    int64
	closed bool
}

// NewBuilder starts a container on w compressing with eng. codecName is
// recorded in the header so readers can construct a matching engine; it
// must name the engine's codec. eng == nil builds a default engine for
// codecName. blockSize is recorded as the writer's nominal block size
// (0 for caller-delimited blocks) and does not limit AppendBlock beyond
// MaxBlockSize. The header is written immediately.
func NewBuilder(w io.Writer, codecName string, eng codec.Engine, blockSize int) (*Builder, error) {
	if eng == nil {
		var err error
		eng, err = codec.NewEngine(codecName, codec.WithLevel(defaultedLevel(codecName, 0)))
		if err != nil {
			return nil, fmt.Errorf("container: %w", err)
		}
	}
	tm()
	hdr, err := appendHeader(nil, codecName, blockSize)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(hdr); err != nil {
		return nil, err
	}
	return &Builder{w: w, eng: eng, hdr: hdr[:0], off: int64(len(hdr))}, nil
}

// Reserve grows the index capacity for n further blocks, so a steady-state
// append cycle performs zero allocations.
func (b *Builder) Reserve(n int) {
	if need := len(b.blocks) + n; need > cap(b.blocks) {
		grown := make([]BlockInfo, len(b.blocks), need)
		copy(grown, b.blocks)
		b.blocks = grown
	}
}

// AppendBlock compresses raw as the next independent block. Empty blocks
// are rejected: every index entry must cover at least one byte so ReadAt's
// range mapping stays unambiguous.
func (b *Builder) AppendBlock(raw []byte) error {
	if b.closed {
		return errors.New("container: append on closed builder")
	}
	if len(raw) == 0 {
		return errors.New("container: empty block")
	}
	if len(raw) > MaxBlockSize {
		return fmt.Errorf("container: block of %d bytes exceeds MaxBlockSize", len(raw))
	}
	comp, err := b.eng.Compress(b.comp[:0], raw)
	if err != nil {
		return err
	}
	b.comp = comp
	sum := xxhash.Sum64(comp)
	b.hdr = appendBlockHeader(b.hdr[:0], len(comp), len(raw), sum)
	if _, err := b.w.Write(b.hdr); err != nil {
		return err
	}
	if _, err := b.w.Write(comp); err != nil {
		return err
	}
	b.blocks = append(b.blocks, BlockInfo{
		Off:     b.off + int64(len(b.hdr)),
		CompLen: len(comp),
		RawLen:  len(raw),
		Sum:     sum,
	})
	b.off += int64(len(b.hdr)) + int64(len(comp))
	tmBlocksEnc.Inc()
	return nil
}

// NumBlocks reports the blocks appended so far.
func (b *Builder) NumBlocks() int { return len(b.blocks) }

// Offset reports the container bytes written so far (before the footer).
func (b *Builder) Offset() int64 { return b.off }

// Close writes the terminator, footer index, and trailer. It does not
// close the underlying writer. Closing twice is a no-op.
func (b *Builder) Close() error {
	if b.closed {
		return nil
	}
	b.closed = true
	tail := append(b.hdr[:0], 0) // zero-length terminator
	tail = appendFooter(tail, b.blocks)
	b.hdr = tail[:0]
	if _, err := b.w.Write(tail); err != nil {
		return err
	}
	b.off += int64(len(tail))
	return nil
}
