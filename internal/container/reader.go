package container

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/xxhash"
)

// readerConfig collects reader-side options shared by Reader and ReaderAt.
type readerConfig struct {
	eng     codec.Engine
	workers int
}

// ReaderOption configures NewReader / NewReaderAt.
type ReaderOption func(*readerConfig)

// WithEngine supplies the decode engine instead of constructing one from
// the header's codec name — required when the payloads were compressed
// with a dictionary, and what the kvstore uses to share its warmed engine.
// A streaming Reader given an engine decodes sequentially on that single
// engine (engines are single-goroutine).
func WithEngine(eng codec.Engine) ReaderOption {
	return func(c *readerConfig) { c.eng = eng }
}

// WithWorkers bounds the streaming Reader's decode worker pool
// (≤ 0 = GOMAXPROCS). Ignored when an engine is supplied.
func WithWorkers(n int) ReaderOption {
	return func(c *readerConfig) { c.workers = n }
}

// errReaderClosed reports reads after Close.
var errReaderClosed = errors.New("container: reader closed")

// decJob carries one block through the decode pipeline.
type decJob struct {
	comp   *[]byte
	raw    *[]byte
	rawLen int
	sum    uint64
	err    error
	done   chan struct{}
}

// Reader streams a container's content in order, decompressing blocks on a
// bounded worker pool while earlier blocks are being consumed — the decode
// mirror of Encode's pipeline. Memory is bounded by O(workers × block
// size). The footer index is not needed (and not read): the per-block
// in-stream headers carry lengths and checksums, so a Reader works over
// plain io.Reader transports. Not safe for concurrent use.
type Reader struct {
	br        *bufio.Reader
	codecName string
	blockSize int

	ordered  chan *decJob
	stop     chan struct{}
	stopOnce sync.Once
	compBufs sync.Pool
	rawBufs  sync.Pool

	cur *decJob
	pos int
	err error
}

// NewReader parses the header and starts the decode pipeline.
func NewReader(r io.Reader, opts ...ReaderOption) (*Reader, error) {
	var cfg readerConfig
	for _, o := range opts {
		o(&cfg)
	}
	tm()
	br := bufio.NewReader(r)
	name, blockSize, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	workers := cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var pool *codec.Pool
	if cfg.eng != nil {
		workers = 1 // a caller-owned engine is single-goroutine
	} else {
		if pool, err = codec.SharedPool(name, codec.Options{Level: defaultedLevel(name, 0)}); err != nil {
			return nil, fmt.Errorf("container: %w", err)
		}
	}

	rd := &Reader{
		br:        br,
		codecName: name,
		blockSize: blockSize,
		ordered:   make(chan *decJob, workers),
		stop:      make(chan struct{}),
		compBufs:  sync.Pool{New: func() any { b := []byte(nil); return &b }},
		rawBufs:   sync.Pool{New: func() any { b := []byte(nil); return &b }},
	}
	jobs := make(chan *decJob, workers)
	go rd.fetch(jobs)
	for w := 0; w < workers; w++ {
		go rd.work(jobs, pool, cfg.eng)
	}
	return rd, nil
}

// CodecName reports the codec recorded in the header.
func (r *Reader) CodecName() string { return r.codecName }

// BlockSize reports the writer's nominal block size (0 = caller-delimited).
func (r *Reader) BlockSize() int { return r.blockSize }

// readHeader parses the container header from a bufio.Reader.
func readHeader(br *bufio.Reader) (name string, blockSize int, err error) {
	var fixed [5]byte
	if _, err := io.ReadFull(br, fixed[:]); err != nil {
		return "", 0, errBadMagic
	}
	if [4]byte(fixed[:4]) != headerMagic {
		return "", 0, errBadMagic
	}
	if fixed[4] != version {
		return "", 0, errBadVersion
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil || nameLen == 0 || nameLen > maxCodecName {
		return "", 0, errBadMagic
	}
	nb := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nb); err != nil {
		return "", 0, errBadMagic
	}
	bs, err := binary.ReadUvarint(br)
	if err != nil || bs > MaxBlockSize {
		return "", 0, errBadMagic
	}
	return string(nb), int(bs), nil
}

// fetch reads per-block headers and payloads, handing jobs to the workers
// and to the in-order consumer. Declared lengths are clamped before any
// allocation, and payloads are read through a growing buffer so a hostile
// length cannot force a large up-front allocation.
func (r *Reader) fetch(jobs chan<- *decJob) {
	defer close(jobs)
	defer close(r.ordered)
	fail := func(err error) {
		j := &decJob{err: err, done: make(chan struct{})}
		close(j.done)
		select {
		case r.ordered <- j:
		case <-r.stop:
		}
	}
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		compLen, err := binary.ReadUvarint(r.br)
		if err != nil {
			fail(&corruptError{msg: "container: block header: " + err.Error()})
			return
		}
		if compLen == 0 {
			return // terminator: footer follows, streaming readers stop here
		}
		if compLen > maxCompBlock {
			fail(errBlockTooLarge)
			return
		}
		rawLen, err := binary.ReadUvarint(r.br)
		if err != nil || rawLen == 0 || rawLen > MaxBlockSize {
			fail(errBadBlockHdr)
			return
		}
		var sumb [8]byte
		if _, err := io.ReadFull(r.br, sumb[:]); err != nil {
			fail(errBadBlockHdr)
			return
		}
		bp := r.compBufs.Get().(*[]byte)
		buf, err := readGrowing(r.br, (*bp)[:0], int(compLen))
		*bp = buf
		if err != nil {
			r.compBufs.Put(bp)
			fail(errTruncated)
			return
		}
		j := &decJob{
			comp:   bp,
			rawLen: int(rawLen),
			sum:    binary.LittleEndian.Uint64(sumb[:]),
			done:   make(chan struct{}),
		}
		select {
		case r.ordered <- j:
		case <-r.stop:
			r.compBufs.Put(bp)
			return
		}
		select {
		case jobs <- j:
		case <-r.stop:
			j.err = errReaderClosed
			close(j.done)
			return
		}
	}
}

// readGrowing fills exactly n bytes into dst, growing in bounded steps so
// a corrupt declared length never allocates more than the stream delivers.
func readGrowing(src io.Reader, dst []byte, n int) ([]byte, error) {
	const step = 1 << 20
	for len(dst) < n {
		chunk := n - len(dst)
		if chunk > step {
			chunk = step
		}
		start := len(dst)
		dst = append(dst, make([]byte, chunk)...)
		if _, err := io.ReadFull(src, dst[start:]); err != nil {
			return dst[:start], err
		}
	}
	return dst, nil
}

// work decompresses jobs. eng is non-nil for single-engine readers; pooled
// workers borrow an engine only when the first job arrives, so inputs that
// fail header or block-frame validation never pay for engine construction.
func (r *Reader) work(jobs <-chan *decJob, pool *codec.Pool, eng codec.Engine) {
	borrowed := false
	defer func() {
		if borrowed {
			pool.Put(eng)
		}
	}()
	for j := range jobs {
		if eng == nil {
			eng = pool.Get()
			borrowed = true
		}
		tmDecInflight.Add(1)
		comp := *j.comp
		if xxhash.Sum64(comp) != j.sum {
			j.err = errChecksum
		} else {
			bp := r.rawBufs.Get().(*[]byte)
			out, err := eng.Decompress((*bp)[:0], comp)
			*bp = out
			j.raw = bp
			if err != nil {
				j.err = err
			} else if len(out) != j.rawLen {
				j.err = errRawLen
			} else {
				tmBlocksDec.Inc()
			}
		}
		tmDecInflight.Add(-1)
		close(j.done)
	}
}

// Read implements io.Reader over the decoded content.
func (r *Reader) Read(p []byte) (int, error) {
	for {
		if r.err != nil {
			return 0, r.err
		}
		if r.cur != nil {
			if r.pos < len(*r.cur.raw) {
				n := copy(p, (*r.cur.raw)[r.pos:])
				r.pos += n
				return n, nil
			}
			r.recycle(r.cur)
			r.cur = nil
		}
		j, ok := <-r.ordered
		if !ok {
			r.err = io.EOF
			return 0, io.EOF
		}
		<-j.done
		if j.err != nil {
			r.err = j.err
			r.recycle(j)
			r.shutdown()
			return 0, r.err
		}
		r.cur = j
		r.pos = 0
	}
}

func (r *Reader) recycle(j *decJob) {
	if j.comp != nil {
		r.compBufs.Put(j.comp)
	}
	if j.raw != nil {
		r.rawBufs.Put(j.raw)
	}
}

// shutdown stops the pipeline and drains outstanding jobs so every
// goroutine exits.
func (r *Reader) shutdown() {
	r.stopOnce.Do(func() { close(r.stop) })
	if r.cur != nil {
		r.recycle(r.cur)
		r.cur = nil
	}
	for j := range r.ordered {
		<-j.done
		r.recycle(j)
	}
}

// Close stops the decode pipeline. It does not close the underlying
// reader. Reads after Close report an error.
func (r *Reader) Close() error {
	r.shutdown()
	if r.err == nil {
		r.err = errReaderClosed
	}
	return nil
}
