package container

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/corpus"
)

// buildSample makes a container from caller-delimited blocks via Builder.
func buildSample(t testing.TB, codecName string, blocks [][]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	b, err := NewBuilder(&buf, codecName, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, blk := range blocks {
		if err := b.AppendBlock(blk); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestBuilderReaderAtRoundtrip(t *testing.T) {
	blocks := [][]byte{
		corpus.LogLines(1, 10_000),
		corpus.Records(2, 64<<10),
		[]byte("x"),
		corpus.SourceCode(3, 5_000),
	}
	for _, name := range codec.Names() {
		t.Run(name, func(t *testing.T) {
			data := buildSample(t, name, blocks)
			ra, err := NewReaderAt(bytes.NewReader(data), int64(len(data)))
			if err != nil {
				t.Fatal(err)
			}
			if ra.CodecName() != name {
				t.Fatalf("codec name %q, want %q", ra.CodecName(), name)
			}
			if ra.NumBlocks() != len(blocks) {
				t.Fatalf("NumBlocks %d, want %d", ra.NumBlocks(), len(blocks))
			}
			var want []byte
			for i, blk := range blocks {
				got, err := ra.DecodeBlock(nil, i)
				if err != nil {
					t.Fatalf("DecodeBlock(%d): %v", i, err)
				}
				if !bytes.Equal(got, blk) {
					t.Fatalf("block %d mismatch", i)
				}
				want = append(want, blk...)
			}
			if ra.Size() != int64(len(want)) {
				t.Fatalf("Size %d, want %d", ra.Size(), len(want))
			}
			// Whole-content ReadAt.
			got := make([]byte, len(want))
			if n, err := ra.ReadAt(got, 0); err != nil || n != len(want) {
				t.Fatalf("ReadAt full: n=%d err=%v", n, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("ReadAt content mismatch")
			}
			// Cross-block range.
			off := int64(len(blocks[0]) - 3)
			span := make([]byte, 10)
			if _, err := ra.ReadAt(span, off); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(span, want[off:off+10]) {
				t.Fatal("cross-block ReadAt mismatch")
			}
			// Past-end reads.
			if _, err := ra.ReadAt(span, ra.Size()); err != io.EOF {
				t.Fatalf("ReadAt at EOF: %v", err)
			}
			if n, err := ra.ReadAt(span, ra.Size()-4); err != io.EOF || n != 4 {
				t.Fatalf("ReadAt tail: n=%d err=%v", n, err)
			}
		})
	}
}

func TestEncodeReaderRoundtrip(t *testing.T) {
	payload := corpus.LogLines(7, 3<<20)
	for _, tc := range []struct {
		name      string
		workers   int
		blockSize int
		size      int
	}{
		{"w1", 1, 64 << 10, 3 << 20},
		{"w4", 4, 64 << 10, 3 << 20},
		{"w8-small-blocks", 8, 4 << 10, 256 << 10},
		{"single-block", 4, 1 << 20, 100},
		{"empty", 4, 64 << 10, 0},
		{"exact-multiple", 3, 1 << 10, 4 << 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			src := payload[:tc.size]
			var buf bytes.Buffer
			st, err := Encode(context.Background(), &buf, bytes.NewReader(src),
				Config{Codec: "zstd", Level: 1, BlockSize: tc.blockSize, Workers: tc.workers})
			if err != nil {
				t.Fatal(err)
			}
			wantBlocks := (tc.size + tc.blockSize - 1) / tc.blockSize
			if st.Blocks != int64(wantBlocks) || st.RawBytes != int64(tc.size) {
				t.Fatalf("stats %+v, want %d blocks %d raw bytes", st, wantBlocks, tc.size)
			}
			if st.WrittenBytes != int64(buf.Len()) {
				t.Fatalf("WrittenBytes %d, buffer %d", st.WrittenBytes, buf.Len())
			}

			// Streaming decode.
			r, err := NewReader(bytes.NewReader(buf.Bytes()), WithWorkers(tc.workers))
			if err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(r)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, src) {
				t.Fatalf("streaming roundtrip mismatch: %d bytes, want %d", len(got), len(src))
			}
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}

			// Random-access decode over the same bytes.
			ra, err := NewReaderAt(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
			if err != nil {
				t.Fatal(err)
			}
			if ra.Size() != int64(tc.size) {
				t.Fatalf("Size %d, want %d", ra.Size(), tc.size)
			}
			if tc.size > 0 {
				probe := make([]byte, min(1024, tc.size))
				off := int64(tc.size / 2)
				if off+int64(len(probe)) > int64(tc.size) {
					off = 0
				}
				if _, err := ra.ReadAt(probe, off); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(probe, src[off:off+int64(len(probe))]) {
					t.Fatal("random-access content mismatch")
				}
			}
		})
	}
}

func TestEncodeSequentialEngineMatchesBuilder(t *testing.T) {
	// Encode output must be decodable by a reader using a caller-supplied
	// engine (sequential path) and vice versa.
	src := corpus.Records(9, 600<<10)
	var buf bytes.Buffer
	if _, err := Encode(context.Background(), &buf, bytes.NewReader(src),
		Config{Codec: "zlib", Level: 6, BlockSize: 128 << 10, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	eng, err := codec.NewEngine("zlib")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), WithEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("engine-supplied streaming decode mismatch")
	}
}

func TestDecodeBlockDecodesExactlyOneBlock(t *testing.T) {
	blocks := [][]byte{
		corpus.LogLines(1, 32<<10),
		corpus.LogLines(2, 32<<10),
		corpus.LogLines(3, 32<<10),
		corpus.LogLines(4, 32<<10),
	}
	data := buildSample(t, "zstd", blocks)
	ra, err := NewReaderAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	// A single DecodeBlock must decompress exactly one block: the telemetry
	// counter is the ground truth the kvstore point-lookup path relies on.
	before := tmBlocksDec.Value()
	if _, err := ra.DecodeBlock(nil, 2); err != nil {
		t.Fatal(err)
	}
	if got := tmBlocksDec.Value() - before; got != 1 {
		t.Fatalf("DecodeBlock decoded %d blocks, want exactly 1", got)
	}
	// A ReadAt spanning two blocks decodes exactly those two.
	before = tmBlocksDec.Value()
	span := make([]byte, 1024)
	if _, err := ra.ReadAt(span, int64(len(blocks[0]))-512); err != nil {
		t.Fatal(err)
	}
	if got := tmBlocksDec.Value() - before; got != 2 {
		t.Fatalf("spanning ReadAt decoded %d blocks, want exactly 2", got)
	}
	// A repeat read inside the last decoded block reuses the scratch block.
	before = tmBlocksDec.Value()
	if _, err := ra.ReadAt(span[:16], int64(len(blocks[0]))+8); err != nil {
		t.Fatal(err)
	}
	if got := tmBlocksDec.Value() - before; got != 0 {
		t.Fatalf("cached ReadAt decoded %d blocks, want 0", got)
	}
}

func TestEncodeBlockCounterAdvances(t *testing.T) {
	src := corpus.LogLines(5, 300<<10)
	before := tmBlocksEnc.Value()
	var buf bytes.Buffer
	st, err := Encode(context.Background(), &buf, bytes.NewReader(src),
		Config{Codec: "lz4", BlockSize: 64 << 10, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := tmBlocksEnc.Value() - before; got != st.Blocks {
		t.Fatalf("container_blocks_encoded_total advanced %d, want %d", got, st.Blocks)
	}
}

func TestEncodeContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// A reader that trickles data forever until the context fires.
	trickle := readerFunc(func(p []byte) (int, error) {
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
		time.Sleep(time.Millisecond)
		for i := range p {
			p[i] = byte(i)
		}
		return len(p), nil
	})
	done := make(chan error, 1)
	go func() {
		_, err := Encode(ctx, io.Discard, trickle, Config{Codec: "lz4", BlockSize: 4 << 10, Workers: 2})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Encode did not stop after cancellation")
	}
}

type readerFunc func(p []byte) (int, error)

func (f readerFunc) Read(p []byte) (int, error) { return f(p) }

type failingWriter struct {
	limit int
	n     int
}

func (w *failingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	if w.n > w.limit {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestEncodeWriteErrorPropagates(t *testing.T) {
	src := corpus.LogLines(3, 2<<20)
	_, err := Encode(context.Background(), &failingWriter{limit: 10_000}, bytes.NewReader(src),
		Config{Codec: "zstd", Level: 1, BlockSize: 32 << 10, Workers: 4})
	if err == nil || err.Error() != "disk full" {
		t.Fatalf("err = %v, want disk full", err)
	}
}

func TestEncodeSourceErrorPropagates(t *testing.T) {
	boom := errors.New("source exploded")
	src := io.MultiReader(bytes.NewReader(corpus.LogLines(3, 100<<10)),
		readerFunc(func(p []byte) (int, error) { return 0, boom }))
	_, err := Encode(context.Background(), io.Discard, src,
		Config{Codec: "zstd", Level: 1, BlockSize: 32 << 10, Workers: 4})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestCorruptPayloadDetected(t *testing.T) {
	blocks := [][]byte{corpus.LogLines(1, 64<<10), corpus.LogLines(2, 64<<10)}
	data := buildSample(t, "zstd", blocks)

	// Flip one payload byte: both readers must report codec.ErrCorrupt.
	mut := append([]byte{}, data...)
	ra, err := NewReaderAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	mut[ra.Block(1).Off+10] ^= 0x40
	mra, err := NewReaderAt(bytes.NewReader(mut), int64(len(mut)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mra.DecodeBlock(nil, 1); !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("DecodeBlock on corrupt payload: %v, want codec.ErrCorrupt", err)
	}
	// Block 0 is untouched and must still decode.
	if _, err := mra.DecodeBlock(nil, 0); err != nil {
		t.Fatalf("DecodeBlock(0) on independent block: %v", err)
	}

	sr, err := NewReader(bytes.NewReader(mut), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if _, err := io.ReadAll(sr); !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("streaming decode of corrupt payload: %v, want codec.ErrCorrupt", err)
	}
}

func TestHostileFooters(t *testing.T) {
	data := buildSample(t, "lz4", [][]byte{corpus.LogLines(1, 8<<10), corpus.LogLines(2, 8<<10)})
	cases := map[string]func([]byte) []byte{
		"truncated-trailer": func(b []byte) []byte { return b[:len(b)-3] },
		"zero-length":       func(b []byte) []byte { return nil },
		"bad-trailer-magic": func(b []byte) []byte {
			m := append([]byte{}, b...)
			m[len(m)-1] ^= 0xff
			return m
		},
		"oversized-footer-len": func(b []byte) []byte {
			m := append([]byte{}, b...)
			for i := len(m) - trailerLen; i < len(m)-4; i++ {
				m[i] = 0xff
			}
			return m
		},
		"footer-bitflip": func(b []byte) []byte {
			m := append([]byte{}, b...)
			m[len(m)-trailerLen-3] ^= 0x10
			return m
		},
		"bad-header-magic": func(b []byte) []byte {
			m := append([]byte{}, b...)
			m[0] = 'Q'
			return m
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			m := mutate(data)
			ra, err := NewReaderAt(bytes.NewReader(m), int64(len(m)))
			if err == nil {
				// A surviving parse must still fail (or succeed harmlessly)
				// on decode — never panic.
				for i := 0; i < ra.NumBlocks(); i++ {
					_, _ = ra.DecodeBlock(nil, i)
				}
				return
			}
			if !errors.Is(err, codec.ErrCorrupt) {
				t.Fatalf("err = %v, want codec.ErrCorrupt", err)
			}
		})
	}
}

func TestBuilderValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewBuilder(&buf, "nope", nil, 0); err == nil {
		t.Fatal("unknown codec accepted")
	}
	b, err := NewBuilder(&buf, "lz4", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AppendBlock(nil); err == nil {
		t.Fatal("empty block accepted")
	}
	if err := b.AppendBlock([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := b.AppendBlock([]byte("late")); err == nil {
		t.Fatal("append after close accepted")
	}
}

func TestReaderCloseMidStream(t *testing.T) {
	src := corpus.LogLines(3, 1<<20)
	var buf bytes.Buffer
	if _, err := Encode(context.Background(), &buf, bytes.NewReader(src),
		Config{Codec: "zstd", Level: 1, BlockSize: 16 << 10, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	head := make([]byte, 10_000)
	if _, err := io.ReadFull(r, head); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(head); err == nil {
		t.Fatal("read after close succeeded")
	}
	if !bytes.Equal(head, src[:len(head)]) {
		t.Fatal("prefix mismatch before close")
	}
}

// TestParallelSpeedup is the scaling gate: on a machine with ≥ 8 CPUs,
// 8-worker streaming encode must beat single-worker by ≥ 3× on the
// benchsnap corpus. Skipped on smaller machines (including 1-2 core CI
// runners) where the pipeline has no parallelism to expose.
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.GOMAXPROCS(0) < 8 {
		t.Skipf("need ≥ 8 CPUs for the 8-worker gate, have %d", runtime.GOMAXPROCS(0))
	}
	src := corpus.LogLines(7, 8<<20)
	throughput := func(workers int) float64 {
		best := 0.0
		for trial := 0; trial < 3; trial++ {
			t0 := time.Now()
			if _, err := Encode(context.Background(), io.Discard, bytes.NewReader(src),
				Config{Codec: "zstd", Level: 9, BlockSize: 256 << 10, Workers: workers}); err != nil {
				t.Fatal(err)
			}
			if mbps := float64(len(src)) / time.Since(t0).Seconds() / 1e6; mbps > best {
				best = mbps
			}
		}
		return best
	}
	w1 := throughput(1)
	w8 := throughput(8)
	t.Logf("streaming encode: 1 worker %.1f MB/s, 8 workers %.1f MB/s (%.2fx)", w1, w8, w8/w1)
	if w8 < 3*w1 {
		t.Fatalf("8-worker encode %.1f MB/s < 3x the 1-worker %.1f MB/s", w8, w1)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkEncode(b *testing.B) {
	src := corpus.LogLines(7, 8<<20)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Encode(context.Background(), io.Discard, bytes.NewReader(src),
					Config{Codec: "zstd", Level: 3, BlockSize: 256 << 10, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecodeBlock(b *testing.B) {
	src := corpus.LogLines(7, 4<<20)
	var buf bytes.Buffer
	if _, err := Encode(context.Background(), &buf, bytes.NewReader(src),
		Config{Codec: "zstd", Level: 3, BlockSize: 64 << 10, Workers: 1}); err != nil {
		b.Fatal(err)
	}
	ra, err := NewReaderAt(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]byte, 0, 64<<10)
	var berr error
	if dst, berr = ra.DecodeBlock(dst[:0], 0); berr != nil {
		b.Fatal(berr)
	}
	b.SetBytes(int64(ra.Block(0).RawLen))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dst, berr = ra.DecodeBlock(dst[:0], i%ra.NumBlocks()); berr != nil {
			b.Fatal(berr)
		}
	}
}
