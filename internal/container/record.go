package container

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/xxhash"
)

// Standalone record framing: the container's per-block header (uvarint
// compLen | uvarint rawLen | 8-byte LE XXH64 over the compressed payload)
// reused as an append-only log framing. A write-ahead log cannot be a full
// container — a crash leaves no terminator or footer — so these functions
// frame and parse one record at a time against a byte stream whose tail may
// be torn mid-record. The kvstore WAL appends with AppendRecord and replays
// with RecordBounds/DecodeRecord (DESIGN.md §11).

// ErrTruncatedRecord marks a record cut short by the end of the stream —
// the header parses as plausible but the payload (or the header itself) is
// incomplete. This is the expected signature of a crash mid-append, so it
// wraps io.ErrUnexpectedEOF rather than ErrCorrupt: replay treats it as
// end-of-log, not as damage to acknowledged data.
var ErrTruncatedRecord = fmt.Errorf("container: truncated record: %w", io.ErrUnexpectedEOF)

var (
	errRecordHdr = &corruptError{msg: "container: corrupt record header"}
	errRecordSum = &corruptError{msg: "container: record checksum mismatch"}
)

// AppendRecord compresses raw with eng and appends one framed record to
// dst. comp is scratch for the compressed payload: pass the previous
// call's second return value to reuse its capacity across appends.
func AppendRecord(dst, comp []byte, eng codec.Engine, raw []byte) (out, compScratch []byte, err error) {
	if len(raw) == 0 {
		return dst, comp, errors.New("container: empty record")
	}
	if len(raw) > MaxBlockSize {
		return dst, comp, fmt.Errorf("container: record of %d bytes exceeds MaxBlockSize", len(raw))
	}
	c, err := eng.Compress(comp[:0], raw)
	if err != nil {
		return dst, comp, err
	}
	sum := xxhash.Sum64(c)
	dst = appendBlockHeader(dst, len(c), len(raw), sum)
	dst = append(dst, c...)
	return dst, c, nil
}

// RecordBounds parses the record header at the start of b and returns the
// total framed length (header plus payload) of the first record. io.EOF
// means b is empty (a clean end of log); ErrTruncatedRecord means b holds
// only a prefix of a plausible record (a torn tail); any other error wraps
// codec.ErrCorrupt (an implausible header — garbage, not a tail).
func RecordBounds(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, io.EOF
	}
	compLen, k := binary.Uvarint(b)
	if k == 0 {
		return 0, ErrTruncatedRecord
	}
	if k < 0 || compLen == 0 || compLen > maxCompBlock {
		return 0, errRecordHdr
	}
	pos := k
	rawLen, k := binary.Uvarint(b[pos:])
	if k == 0 {
		return 0, ErrTruncatedRecord
	}
	if k < 0 || rawLen == 0 || rawLen > MaxBlockSize {
		return 0, errRecordHdr
	}
	pos += k
	if pos+8 > len(b) {
		return 0, ErrTruncatedRecord
	}
	pos += 8
	total := pos + int(compLen)
	if total > len(b) {
		return 0, ErrTruncatedRecord
	}
	return total, nil
}

// DecodeRecord verifies and decompresses the first record of b, appending
// the raw bytes to dst. It returns the decoded bytes and the framed length
// consumed, so callers walk a log by advancing b[n:]. Errors follow
// RecordBounds, plus ErrCorrupt-wrapping failures for checksum mismatch,
// undecodable payloads, and raw-length disagreement.
func DecodeRecord(dst []byte, eng codec.Engine, b []byte) (raw []byte, n int, err error) {
	n, err = RecordBounds(b)
	if err != nil {
		return nil, 0, err
	}
	compLen, k1 := binary.Uvarint(b)
	pos := k1
	rawLen, k2 := binary.Uvarint(b[pos:])
	pos += k2
	sum := binary.LittleEndian.Uint64(b[pos:])
	pos += 8
	payload := b[pos : pos+int(compLen)]
	if xxhash.Sum64(payload) != sum {
		return nil, 0, errRecordSum
	}
	base := len(dst)
	out, err := eng.Decompress(dst, payload)
	if err != nil {
		return nil, 0, err
	}
	if len(out)-base != int(rawLen) {
		return nil, 0, errRawLen
	}
	return out, n, nil
}
