package container

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/xxhash"
)

// ReaderAt serves random-access reads over a complete container: the
// footer index is parsed once, after which DecodeBlock decompresses exactly
// one block and ReadAt touches only the blocks covering the requested
// range — the selective-decode property the paper's block-size study says
// datacenter stores compress in blocks to obtain. Safe for concurrent use
// (an internal mutex serializes the single decode engine); steady-state
// DecodeBlock and ReadAt calls allocate nothing once scratch buffers are
// warm.
type ReaderAt struct {
	r         io.ReaderAt
	eng       codec.Engine
	codecName string
	blockSize int
	blocks    []BlockInfo
	rawOff    []int64 // cumulative raw offsets, len(blocks)+1
	size      int64

	mu           sync.Mutex
	comp         []byte // compressed payload scratch
	scratch      []byte // decoded block scratch for ReadAt
	scratchBlock int    // block index held in scratch, -1 when none
}

// NewReaderAt opens a container of the given total size, reading the
// trailer, footer index, and header. Every declared length and offset is
// validated before use, so hostile footers fail with codec.ErrCorrupt
// rather than oversized allocations or panics.
func NewReaderAt(r io.ReaderAt, size int64, opts ...ReaderOption) (*ReaderAt, error) {
	var cfg readerConfig
	for _, o := range opts {
		o(&cfg)
	}
	tm()
	minHeader := int64(len(headerMagic)) + 1 + 2 // magic, version, 1-byte name, block size
	if size < minHeader+1+trailerLen {           // + terminator
		return nil, errBadTrailer
	}

	var trailer [trailerLen]byte
	if _, err := r.ReadAt(trailer[:], size-trailerLen); err != nil {
		return nil, errBadTrailer
	}
	if [4]byte(trailer[8:]) != trailerMagic {
		return nil, errBadTrailer
	}
	footerLen := int64(uint64(trailer[0]) | uint64(trailer[1])<<8 | uint64(trailer[2])<<16 |
		uint64(trailer[3])<<24 | uint64(trailer[4])<<32 | uint64(trailer[5])<<40 |
		uint64(trailer[6])<<48 | uint64(trailer[7])<<56)
	if footerLen < 1 || footerLen > size-trailerLen-minHeader-1 {
		return nil, errBadTrailer
	}

	hdrLen := minHeader + int64(maxCodecName) + 18 // generous upper bound
	if hdrLen > size {
		hdrLen = size
	}
	hdrBuf := make([]byte, hdrLen)
	if _, err := r.ReadAt(hdrBuf, 0); err != nil && err != io.EOF {
		return nil, errBadMagic
	}
	name, blockSize, headerSize, err := parseHeader(hdrBuf)
	if err != nil {
		return nil, err
	}

	footer := make([]byte, footerLen)
	if _, err := r.ReadAt(footer, size-trailerLen-footerLen); err != nil {
		return nil, errBadFooter
	}
	dataEnd := size - trailerLen - footerLen - 1 // terminator byte precedes the footer
	blocks, err := parseFooter(footer, int64(headerSize), dataEnd)
	if err != nil {
		return nil, err
	}

	rawOff := make([]int64, len(blocks)+1)
	for i, b := range blocks {
		rawOff[i+1] = rawOff[i] + int64(b.RawLen)
	}

	eng := cfg.eng
	if eng == nil {
		if eng, err = codec.NewEngine(name, codec.WithLevel(defaultedLevel(name, 0))); err != nil {
			return nil, fmt.Errorf("container: %w", err)
		}
	}
	return &ReaderAt{
		r:            r,
		eng:          eng,
		codecName:    name,
		blockSize:    blockSize,
		blocks:       blocks,
		rawOff:       rawOff,
		size:         rawOff[len(blocks)],
		scratchBlock: -1,
	}, nil
}

// NumBlocks reports the number of independent blocks.
func (r *ReaderAt) NumBlocks() int { return len(r.blocks) }

// Size reports the total uncompressed content size.
func (r *ReaderAt) Size() int64 { return r.size }

// CodecName reports the codec recorded in the header.
func (r *ReaderAt) CodecName() string { return r.codecName }

// BlockSize reports the writer's nominal block size (0 = caller-delimited).
func (r *ReaderAt) BlockSize() int { return r.blockSize }

// Block returns the index entry for block i.
func (r *ReaderAt) Block(i int) BlockInfo { return r.blocks[i] }

// BlockRawOffset reports the uncompressed offset where block i starts.
func (r *ReaderAt) BlockRawOffset(i int) int64 { return r.rawOff[i] }

// DecodeBlock appends the decoded content of block i to dst, reading and
// decompressing exactly that block. The payload checksum is verified
// before decoding.
func (r *ReaderAt) DecodeBlock(dst []byte, i int) ([]byte, error) {
	if i < 0 || i >= len(r.blocks) {
		return nil, fmt.Errorf("container: block %d out of range [0,%d)", i, len(r.blocks))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.decodeLocked(dst, i)
}

func (r *ReaderAt) decodeLocked(dst []byte, i int) ([]byte, error) {
	b := r.blocks[i]
	if cap(r.comp) < b.CompLen {
		r.comp = make([]byte, b.CompLen)
	}
	comp := r.comp[:b.CompLen]
	if _, err := r.r.ReadAt(comp, b.Off); err != nil {
		return nil, errTruncated
	}
	if xxhash.Sum64(comp) != b.Sum {
		return nil, errChecksum
	}
	base := len(dst)
	out, err := r.eng.Decompress(dst, comp)
	if err != nil {
		return nil, err
	}
	if len(out)-base != b.RawLen {
		return nil, errRawLen
	}
	tmBlocksDec.Inc()
	return out, nil
}

// ReadAt implements io.ReaderAt over the uncompressed content, decoding
// only the blocks that cover [off, off+len(p)). Sequential calls that stay
// within one block reuse the previously decoded block without another
// decompression.
func (r *ReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("container: negative offset %d", off)
	}
	tmRandomReads.Inc()
	if off >= r.size {
		return 0, io.EOF
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// First block whose end is past off.
	i := sort.Search(len(r.blocks), func(i int) bool { return r.rawOff[i+1] > off })
	n := 0
	for n < len(p) && i < len(r.blocks) {
		if r.scratchBlock != i {
			out, err := r.decodeLocked(r.scratch[:0], i)
			if err != nil {
				r.scratchBlock = -1
				return n, err
			}
			r.scratch = out
			r.scratchBlock = i
		}
		k := copy(p[n:], r.scratch[off-r.rawOff[i]:])
		n += k
		off += int64(k)
		if off >= r.rawOff[i+1] {
			i++
		}
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}
