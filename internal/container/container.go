// Package container implements the repository's seekable block container
// (frame magic "ZSXS"): a stream of independently compressed fixed- or
// caller-sized blocks followed by a seekable footer index, so readers can
// either stream the whole object with bounded memory or decode exactly the
// blocks covering a byte range. This is the structural enabler the paper's
// block-size study (§V, Fig 5) identifies: datacenter services compress in
// independent blocks precisely so a point read never pays for the rest of
// the object.
//
// Layout (DESIGN.md §8):
//
//	header    "ZSXS" | version(1) | uvarint len(codec) | codec name |
//	          uvarint blockSize (0 = caller-delimited blocks)
//	block[i]  uvarint compLen (>0) | uvarint rawLen |
//	          8B LE XXH64(payload) | payload (self-describing engine frame)
//	end       uvarint 0 (terminator)
//	footer    uvarint blockCount, then per block:
//	          uvarint payloadOff | uvarint compLen | uvarint rawLen |
//	          8B LE XXH64(payload)
//	trailer   8B LE footerLen | "ZSXI"
//
// The per-block header is duplicated in the footer so a streaming Reader
// needs no seeks and a ReaderAt needs only the 12-byte trailer plus the
// footer to locate any block. Checksums cover the compressed payload, so
// corruption is detected before any decode work.
package container

import (
	"encoding/binary"
	"fmt"
	"sync"

	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/telemetry"
)

// Format constants.
const (
	version = 1

	// MaxBlockSize bounds a block's uncompressed size; declared lengths
	// beyond it are rejected before any allocation (mirrors the RPC frame
	// parser's varint hardening).
	MaxBlockSize = 64 << 20

	// maxCompBlock bounds a block's declared compressed size. A real engine
	// payload is never much larger than its input, so anything past
	// MaxBlockSize plus slack is corruption.
	maxCompBlock = MaxBlockSize + (MaxBlockSize >> 3) + 4096

	// maxBlocks bounds the footer's declared block count.
	maxBlocks = 1 << 28

	// maxCodecName bounds the header's codec-name field.
	maxCodecName = 64

	// trailerLen is the fixed-size tail: 8-byte footer length + magic.
	trailerLen = 12

	// DefaultBlockSize is the split granularity Encode uses when the config
	// leaves it zero — the 256 KiB the paper's warehouse stripes use.
	DefaultBlockSize = 256 << 10
)

var (
	headerMagic  = [4]byte{'Z', 'S', 'X', 'S'}
	trailerMagic = [4]byte{'Z', 'S', 'X', 'I'}
)

// Package telemetry on the shared registry, registered on first use.
var (
	tmOnce                       sync.Once
	tmBlocksEnc, tmBlocksDec     *telemetry.Counter
	tmEncInflight, tmDecInflight *telemetry.Gauge
	tmRandomReads                *telemetry.Counter
)

func tm() {
	tmOnce.Do(func() {
		r := telemetry.Default
		tmBlocksEnc = r.Counter("container_blocks_encoded_total", "container blocks compressed")
		tmBlocksDec = r.Counter("container_blocks_decoded_total", "container blocks decompressed")
		tmEncInflight = r.Gauge("container_encode_inflight_workers", "encode workers currently compressing a block")
		tmDecInflight = r.Gauge("container_decode_inflight_workers", "decode workers currently decompressing a block")
		tmRandomReads = r.Counter("container_random_reads_total", "ReaderAt.ReadAt range requests served")
	})
}

// defaultedLevel resolves a zero compression level to the codec's declared
// default, since not every codec (lz4) accepts 0 as a level.
func defaultedLevel(name string, level int) int {
	if level != 0 {
		return level
	}
	if c, ok := codec.Lookup(name); ok {
		_, _, def := c.Levels()
		return def
	}
	return level
}

// corruptError marks container corruption while keeping codec.ErrCorrupt in
// the chain, so serving paths branch on one sentinel for every decode
// failure in the repository.
type corruptError struct{ msg string }

func (e *corruptError) Error() string { return e.msg }
func (e *corruptError) Unwrap() error { return codec.ErrCorrupt }

// Static corruption errors: the verification hot path allocates nothing.
var (
	errBadMagic      = &corruptError{msg: "container: bad header magic"}
	errBadVersion    = &corruptError{msg: "container: unsupported version"}
	errBadTrailer    = &corruptError{msg: "container: bad or missing footer trailer"}
	errBadFooter     = &corruptError{msg: "container: corrupt footer index"}
	errBadBlockHdr   = &corruptError{msg: "container: corrupt block header"}
	errBlockTooLarge = &corruptError{msg: "container: declared block size exceeds limit"}
	errChecksum      = &corruptError{msg: "container: block checksum mismatch"}
	errRawLen        = &corruptError{msg: "container: block decoded to wrong length"}
	errTruncated     = &corruptError{msg: "container: truncated payload"}
)

// BlockInfo locates and describes one compressed block.
type BlockInfo struct {
	// Off is the absolute offset of the compressed payload bytes.
	Off int64
	// CompLen and RawLen are the payload's compressed and uncompressed
	// sizes.
	CompLen int
	RawLen  int
	// Sum is the XXH64 of the compressed payload.
	Sum uint64
}

// appendHeader emits the container header.
func appendHeader(dst []byte, codecName string, blockSize int) ([]byte, error) {
	if len(codecName) == 0 || len(codecName) > maxCodecName {
		return nil, fmt.Errorf("container: invalid codec name %q", codecName)
	}
	if blockSize < 0 || blockSize > MaxBlockSize {
		return nil, fmt.Errorf("container: block size %d out of range", blockSize)
	}
	dst = append(dst, headerMagic[:]...)
	dst = append(dst, version)
	dst = binary.AppendUvarint(dst, uint64(len(codecName)))
	dst = append(dst, codecName...)
	dst = binary.AppendUvarint(dst, uint64(blockSize))
	return dst, nil
}

// parseHeader decodes the container header, returning the codec name, the
// writer's block size, and the header length.
func parseHeader(b []byte) (codecName string, blockSize int, n int, err error) {
	if len(b) < len(headerMagic)+1 {
		return "", 0, 0, errBadMagic
	}
	if [4]byte(b[:4]) != headerMagic {
		return "", 0, 0, errBadMagic
	}
	if b[4] != version {
		return "", 0, 0, errBadVersion
	}
	pos := 5
	nameLen, k := binary.Uvarint(b[pos:])
	if k <= 0 || nameLen == 0 || nameLen > maxCodecName {
		return "", 0, 0, errBadMagic
	}
	pos += k
	if pos+int(nameLen) > len(b) {
		return "", 0, 0, errBadMagic
	}
	codecName = string(b[pos : pos+int(nameLen)])
	pos += int(nameLen)
	bs, k := binary.Uvarint(b[pos:])
	if k <= 0 || bs > MaxBlockSize {
		return "", 0, 0, errBadMagic
	}
	pos += k
	return codecName, int(bs), pos, nil
}

// appendBlockHeader emits the in-stream per-block header.
func appendBlockHeader(dst []byte, compLen, rawLen int, sum uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(compLen))
	dst = binary.AppendUvarint(dst, uint64(rawLen))
	dst = binary.LittleEndian.AppendUint64(dst, sum)
	return dst
}

// appendFooter emits the footer index and trailer for the given blocks.
func appendFooter(dst []byte, blocks []BlockInfo) []byte {
	start := len(dst)
	dst = binary.AppendUvarint(dst, uint64(len(blocks)))
	for _, b := range blocks {
		dst = binary.AppendUvarint(dst, uint64(b.Off))
		dst = binary.AppendUvarint(dst, uint64(b.CompLen))
		dst = binary.AppendUvarint(dst, uint64(b.RawLen))
		dst = binary.LittleEndian.AppendUint64(dst, b.Sum)
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(dst)-start))
	dst = append(dst, trailerMagic[:]...)
	return dst
}

// parseFooter decodes a footer index region (count + entries, no trailer),
// validating every declared length and that payload spans are monotonically
// increasing and confined to [minOff, maxOff).
func parseFooter(b []byte, minOff, maxOff int64) ([]BlockInfo, error) {
	count, k := binary.Uvarint(b)
	if k <= 0 || count > maxBlocks {
		return nil, errBadFooter
	}
	// Each entry is at least 3 one-byte varints + an 8-byte sum.
	if count > uint64(len(b)/11)+1 {
		return nil, errBadFooter
	}
	pos := k
	blocks := make([]BlockInfo, 0, count)
	prevEnd := minOff
	for i := uint64(0); i < count; i++ {
		off, k := binary.Uvarint(b[pos:])
		if k <= 0 {
			return nil, errBadFooter
		}
		pos += k
		compLen, k := binary.Uvarint(b[pos:])
		if k <= 0 || compLen == 0 || compLen > maxCompBlock {
			return nil, errBadFooter
		}
		pos += k
		rawLen, k := binary.Uvarint(b[pos:])
		if k <= 0 || rawLen == 0 || rawLen > MaxBlockSize {
			return nil, errBadFooter
		}
		pos += k
		if pos+8 > len(b) {
			return nil, errBadFooter
		}
		sum := binary.LittleEndian.Uint64(b[pos:])
		pos += 8
		if int64(off) < prevEnd || int64(off)+int64(compLen) > maxOff {
			return nil, errBadFooter
		}
		prevEnd = int64(off) + int64(compLen)
		blocks = append(blocks, BlockInfo{
			Off:     int64(off),
			CompLen: int(compLen),
			RawLen:  int(rawLen),
			Sum:     sum,
		})
	}
	if pos != len(b) {
		return nil, errBadFooter
	}
	return blocks, nil
}
