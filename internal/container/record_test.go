package container

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"github.com/datacomp/datacomp/internal/codec"
)

func recordEngine(t *testing.T) codec.Engine {
	t.Helper()
	eng, err := codec.NewEngine("lz4", codec.WithLevel(1))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestRecordRoundTrip(t *testing.T) {
	eng := recordEngine(t)
	payloads := [][]byte{
		[]byte("x"),
		bytes.Repeat([]byte("abcdefgh"), 500),
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
	}
	var log, comp []byte
	var err error
	for _, p := range payloads {
		log, comp, err = AppendRecord(log, comp, eng, p)
		if err != nil {
			t.Fatal(err)
		}
	}
	rest := log
	for i, p := range payloads {
		raw, n, err := DecodeRecord(nil, eng, rest)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(raw, p) {
			t.Fatalf("record %d: got %d bytes, want %d", i, len(raw), len(p))
		}
		rest = rest[n:]
	}
	if _, err := RecordBounds(rest); err != io.EOF {
		t.Fatalf("end of log: got %v, want io.EOF", err)
	}
}

func TestRecordTornTail(t *testing.T) {
	eng := recordEngine(t)
	full, _, err := AppendRecord(nil, nil, eng, bytes.Repeat([]byte("hello world "), 100))
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must classify as torn, never as a valid record.
	for cut := 1; cut < len(full); cut++ {
		_, err := RecordBounds(full[:cut])
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("prefix of %d/%d bytes: got %v, want ErrTruncatedRecord", cut, len(full), err)
		}
	}
	if n, err := RecordBounds(full); err != nil || n != len(full) {
		t.Fatalf("full record: n=%d err=%v, want n=%d", n, err, len(full))
	}
}

func TestRecordCorruption(t *testing.T) {
	eng := recordEngine(t)
	full, _, err := AppendRecord(nil, nil, eng, bytes.Repeat([]byte("payload-"), 64))
	if err != nil {
		t.Fatal(err)
	}
	// A flipped payload bit fails the checksum, not the bounds.
	bad := append([]byte{}, full...)
	bad[len(bad)-1] ^= 0x40
	if n, err := RecordBounds(bad); err != nil || n != len(bad) {
		t.Fatalf("bounds on bit-flipped record: n=%d err=%v", n, err)
	}
	if _, _, err := DecodeRecord(nil, eng, bad); !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("decode of bit-flipped record: got %v, want ErrCorrupt", err)
	}
	// A zero first byte (the container terminator) is garbage in a log.
	if _, err := RecordBounds([]byte{0, 1, 2}); !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("zero compLen: got %v, want ErrCorrupt", err)
	}
	// An absurd declared length is corruption, not a torn tail.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, err := RecordBounds(huge); !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("oversized compLen: got %v, want ErrCorrupt", err)
	}
}

func TestRecordScratchReuse(t *testing.T) {
	eng := recordEngine(t)
	raw := bytes.Repeat([]byte("scratch reuse "), 200)
	log1, comp, err := AppendRecord(nil, nil, eng, raw)
	if err != nil {
		t.Fatal(err)
	}
	log2, _, err := AppendRecord(nil, comp, eng, raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(log1, log2) {
		t.Fatal("scratch reuse changed the framed bytes")
	}
}
