package container

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/trace"
	"github.com/datacomp/datacomp/internal/xxhash"
)

// Config parameterizes Encode and is recorded (codec, block size) in the
// container header.
type Config struct {
	// Codec names the registered compressor (default "zstd").
	Codec string
	// Level is the codec-specific compression level (0 = codec default).
	Level int
	// BlockSize is the uncompressed split granularity (default
	// DefaultBlockSize, max MaxBlockSize).
	BlockSize int
	// Workers bounds the compression worker pool (≤ 0 = GOMAXPROCS).
	Workers int
}

func (c *Config) fill() {
	if c.Codec == "" {
		c.Codec = "zstd"
	}
	if c.BlockSize <= 0 {
		c.BlockSize = DefaultBlockSize
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// Stats summarizes one Encode run.
type Stats struct {
	// Blocks is the number of independent blocks written.
	Blocks int64
	// RawBytes and CompressedBytes count block content before and after
	// compression; WrittenBytes additionally includes header, per-block
	// framing, and the footer index.
	RawBytes        int64
	CompressedBytes int64
	WrittenBytes    int64
}

// encJob carries one block through the pipeline. done is closed once comp,
// sum, and err are final.
type encJob struct {
	idx  int64 // block index in stream order, for trace attribution
	raw  []byte
	comp *[]byte
	sum  uint64
	err  error
	done chan struct{}
}

// firstError keeps the first error observed across pipeline stages.
type firstError struct{ p atomic.Pointer[error] }

func (f *firstError) set(err error) {
	if err != nil {
		f.p.CompareAndSwap(nil, &err)
	}
}
func (f *firstError) get() error {
	if e := f.p.Load(); e != nil {
		return *e
	}
	return nil
}

// Encode splits src into cfg.BlockSize blocks, compresses them on a bounded
// worker pool, and writes the container to dst with blocks in order — the
// same pipelined shape as codec.Parallel, but streaming: memory is bounded
// by O(Workers × BlockSize) regardless of input size, the first error
// (reader, worker, writer, or ctx cancellation) stops the pipeline, and a
// seekable footer index is appended so the output supports random access.
func Encode(ctx context.Context, dst io.Writer, src io.Reader, cfg Config) (Stats, error) {
	cfg.fill()
	var st Stats
	if cfg.BlockSize > MaxBlockSize {
		return st, fmt.Errorf("container: block size %d exceeds MaxBlockSize", cfg.BlockSize)
	}
	pool, err := codec.SharedPool(cfg.Codec, codec.Options{Level: defaultedLevel(cfg.Codec, cfg.Level)})
	if err != nil {
		return st, fmt.Errorf("container: %w", err)
	}
	tm()

	hdr, err := appendHeader(nil, cfg.Codec, cfg.BlockSize)
	if err != nil {
		return st, err
	}
	if _, err := dst.Write(hdr); err != nil {
		return st, err
	}
	off := int64(len(hdr))

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := cfg.Workers
	jobs := make(chan *encJob, workers)
	ordered := make(chan *encJob, workers)
	var ferr firstError
	rawBufs := sync.Pool{New: func() any {
		b := make([]byte, cfg.BlockSize)
		return &b
	}}
	compBufs := sync.Pool{New: func() any {
		b := make([]byte, 0, cfg.BlockSize+cfg.BlockSize>>4+64)
		return &b
	}}

	// Reader: cut src into blocks, handing each to the workers and to the
	// in-order writer. ordered is filled before jobs so the writer always
	// sees blocks in stream order; both sends respect cancellation.
	go func() {
		defer close(ordered)
		defer close(jobs)
		for idx := int64(0); ctx.Err() == nil; idx++ {
			bp := rawBufs.Get().(*[]byte)
			n, err := io.ReadFull(src, (*bp)[:cfg.BlockSize])
			if n == 0 {
				rawBufs.Put(bp)
				if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
					ferr.set(err)
					cancel()
				}
				return
			}
			j := &encJob{idx: idx, raw: (*bp)[:n], done: make(chan struct{})}
			select {
			case ordered <- j:
			case <-ctx.Done():
				rawBufs.Put(bp)
				return
			}
			select {
			case jobs <- j:
			case <-ctx.Done():
				// Already promised to the writer: resolve it as cancelled so
				// the writer never blocks on done.
				j.err = ctx.Err()
				close(j.done)
				return
			}
			if err != nil { // EOF after a short final block
				if err != io.EOF && err != io.ErrUnexpectedEOF {
					ferr.set(err)
					cancel()
				}
				return
			}
		}
	}()

	// A traced caller gets a "container.block" span per block, attributed
	// to the worker that compressed it — the straggler block that holds up
	// the in-order writer is visible in the trace.
	parent := trace.FromContext(ctx)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			eng := pool.Get()
			defer pool.Put(eng)
			for j := range jobs {
				if ctx.Err() != nil {
					j.err = ctx.Err()
					close(j.done)
					continue
				}
				tmEncInflight.Add(1)
				var sp trace.SpanHandle
				if parent.Valid() {
					sp = parent.Child("container.block").
						SetInt("block", j.idx).SetInt("worker", int64(w))
				}
				bp := compBufs.Get().(*[]byte)
				out, err := eng.Compress((*bp)[:0], j.raw)
				*bp = out
				j.comp = bp
				j.err = err
				if err == nil {
					j.sum = xxhash.Sum64(out)
					tmBlocksEnc.Inc()
					sp.SetInt("raw", int64(len(j.raw))).SetInt("comp", int64(len(out)))
				} else {
					ferr.set(err)
					cancel()
				}
				sp.End()
				tmEncInflight.Add(-1)
				close(j.done)
			}
		}(w)
	}

	// In-order writer: this goroutine. Every job placed in ordered is
	// awaited and its buffers recycled, error or not, so the pipeline
	// drains cleanly on failure.
	var blocks []BlockInfo
	var hdrScratch [64]byte
	for j := range ordered {
		<-j.done
		if j.err != nil {
			ferr.set(j.err)
		} else if ferr.get() == nil {
			comp := *j.comp
			bh := appendBlockHeader(hdrScratch[:0], len(comp), len(j.raw), j.sum)
			if _, err := dst.Write(bh); err != nil {
				ferr.set(err)
				cancel()
			} else if _, err := dst.Write(comp); err != nil {
				ferr.set(err)
				cancel()
			} else {
				blocks = append(blocks, BlockInfo{
					Off:     off + int64(len(bh)),
					CompLen: len(comp),
					RawLen:  len(j.raw),
					Sum:     j.sum,
				})
				off += int64(len(bh)) + int64(len(comp))
				st.Blocks++
				st.RawBytes += int64(len(j.raw))
				st.CompressedBytes += int64(len(comp))
			}
		}
		rb := j.raw[:cap(j.raw)]
		rawBufs.Put(&rb)
		if j.comp != nil {
			compBufs.Put(j.comp)
		}
	}
	wg.Wait()
	if err := ferr.get(); err != nil {
		return st, err
	}
	if err := ctx.Err(); err != nil {
		return st, err
	}

	tail := append(hdrScratch[:0], 0)
	tail = appendFooter(tail, blocks)
	if _, err := dst.Write(tail); err != nil {
		return st, err
	}
	st.WrittenBytes = off + int64(len(tail))
	return st, nil
}
