// Package accel models compression-offload hardware — QAT-style PCIe
// devices and IBM POWER/z15-style on-chip engines — with an analytical
// latency/throughput model, making the paper's §VI-B guidance computable:
// per-operation offload overhead and data movement can nullify acceleration
// for small blocks "unless the accelerator is located very closely (such as
// on-chip)", while large-block services gain an order of magnitude.
//
// The model deliberately stays first-order, matching CompOpt's philosophy:
// a request pays a fixed offload cost (driver, descriptor, doorbell,
// interrupt), moves its input and output across the device interconnect,
// and occupies one of the device's engines for size/engine-throughput. The
// package converts a device description plus a measured software baseline
// into CompOpt accelerator candidates, so offload decisions fall out of the
// same cost search as everything else.
package accel

import (
	"errors"
	"fmt"
	"time"

	"github.com/datacomp/datacomp/internal/core"
)

// Placement locates the engine relative to the CPU.
type Placement int

const (
	// OnChip engines (IBM POWER9/z15 NXU) pay negligible transfer cost and
	// a tiny invocation overhead.
	OnChip Placement = iota
	// PCIe devices (Intel QAT cards, Microsoft Corsica) pay DMA transfers
	// and a driver/descriptor round trip per request.
	PCIe
)

func (p Placement) String() string {
	if p == OnChip {
		return "on-chip"
	}
	return "pcie"
}

// Device describes one accelerator.
type Device struct {
	Name      string
	Placement Placement
	// CompressMBps and DecompressMBps are per-engine sustained throughputs.
	CompressMBps   float64
	DecompressMBps float64
	// OffloadLatency is the fixed per-request software+hardware overhead.
	OffloadLatency time.Duration
	// DMAMBps is the interconnect bandwidth for input+output movement
	// (ignored for OnChip).
	DMAMBps float64
	// Engines is the number of parallel engines on the device.
	Engines int
}

// Validate checks the device description.
func (d Device) Validate() error {
	if d.CompressMBps <= 0 || d.DecompressMBps <= 0 {
		return errors.New("accel: engine throughput must be positive")
	}
	if d.Placement == PCIe && d.DMAMBps <= 0 {
		return errors.New("accel: PCIe device needs DMA bandwidth")
	}
	if d.Engines <= 0 {
		return errors.New("accel: need at least one engine")
	}
	if d.OffloadLatency < 0 {
		return errors.New("accel: negative offload latency")
	}
	return nil
}

// QATLike returns a PCIe offload card in the class the paper cites
// (Intel QuickAssist): fast engines behind a per-request driver round trip
// and DMA transfers.
func QATLike() Device {
	return Device{
		Name:           "qat-like",
		Placement:      PCIe,
		CompressMBps:   2500,
		DecompressMBps: 5000,
		OffloadLatency: 25 * time.Microsecond,
		DMAMBps:        12000,
		Engines:        8,
	}
}

// OnChipLike returns an on-chip engine in the class of IBM's POWER9/z15
// accelerators: similar engine speed, near-zero invocation cost.
func OnChipLike() Device {
	return Device{
		Name:           "onchip-like",
		Placement:      OnChip,
		CompressMBps:   2000,
		DecompressMBps: 4000,
		OffloadLatency: 1 * time.Microsecond,
		Engines:        2,
	}
}

// transferTime is the input+output movement cost for one request.
func (d Device) transferTime(inBytes, outBytes int) time.Duration {
	if d.Placement == OnChip {
		return 0
	}
	return time.Duration(float64(inBytes+outBytes) / (d.DMAMBps * 1e6) * float64(time.Second))
}

// CompressLatency is the end-to-end latency of compressing one block of
// size bytes that shrinks by ratio.
func (d Device) CompressLatency(size int, ratio float64) time.Duration {
	if ratio < 1 {
		ratio = 1
	}
	engine := time.Duration(float64(size) / (d.CompressMBps * 1e6) * float64(time.Second))
	return d.OffloadLatency + d.transferTime(size, int(float64(size)/ratio)) + engine
}

// DecompressLatency is the end-to-end latency of decompressing one block
// that expands to size bytes.
func (d Device) DecompressLatency(size int, ratio float64) time.Duration {
	if ratio < 1 {
		ratio = 1
	}
	engine := time.Duration(float64(size) / (d.DecompressMBps * 1e6) * float64(time.Second))
	return d.OffloadLatency + d.transferTime(int(float64(size)/ratio), size) + engine
}

// EffectiveCompressMBps is the device's closed-loop compression throughput
// for a stream of blocks of the given size with `inflight` outstanding
// requests: issue-limited at low concurrency, engine-limited at high.
func (d Device) EffectiveCompressMBps(blockSize int, ratio float64, inflight int) float64 {
	if inflight < 1 {
		inflight = 1
	}
	lat := d.CompressLatency(blockSize, ratio).Seconds()
	if lat <= 0 {
		return 0
	}
	engine := float64(blockSize) / (d.CompressMBps * 1e6)
	issueLimited := float64(inflight) * float64(blockSize) / lat
	engineLimited := float64(d.Engines) * float64(blockSize) / engine
	mbps := issueLimited
	if engineLimited < mbps {
		mbps = engineLimited
	}
	return mbps / 1e6
}

// BreakEvenBlockSize returns the smallest power-of-two block size (within
// [64 B, 4 MiB]) at which offloading a single request beats a CPU running
// at cpuMBps, or 0 when the device never wins in that range. This is the
// §VI-B decision boundary: below it, "it would be better to run
// compression on CPU".
func (d Device) BreakEvenBlockSize(cpuMBps, ratio float64) int {
	if cpuMBps <= 0 {
		return 64
	}
	for size := 64; size <= 4<<20; size <<= 1 {
		cpu := time.Duration(float64(size) / (cpuMBps * 1e6) * float64(time.Second))
		if d.CompressLatency(size, ratio) < cpu {
			return size
		}
	}
	return 0
}

// Speedup is the single-request latency ratio CPU/device for a block size
// (values < 1 mean offloading loses).
func (d Device) Speedup(blockSize int, cpuMBps, ratio float64) float64 {
	dev := d.CompressLatency(blockSize, ratio)
	if dev <= 0 {
		return 0
	}
	cpu := time.Duration(float64(blockSize) / (cpuMBps * 1e6) * float64(time.Second))
	return float64(cpu) / float64(dev)
}

// CompSim converts the device into a CompOpt accelerator candidate for a
// given block size: the measured software engine's speed is scaled by the
// modeled single-request speedup, and compute is priced at alphaCompute.
// This is the CompSim integration the paper describes — the device becomes
// "another compressor" in the search.
func (d Device) CompSim(blockSize int, swCompressMBps, ratio, alphaCompute float64) (*core.Accelerator, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if swCompressMBps <= 0 {
		return nil, errors.New("accel: software baseline must be positive")
	}
	gamma := d.Speedup(blockSize, swCompressMBps, ratio)
	if gamma <= 0 {
		return nil, fmt.Errorf("accel: device %s yields no speedup model", d.Name)
	}
	return &core.Accelerator{
		Name:         fmt.Sprintf("%s@%dB", d.Name, blockSize),
		SpeedFactor:  gamma,
		AlphaCompute: alphaCompute,
	}, nil
}
