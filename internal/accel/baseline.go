package accel

import (
	"encoding/json"
	"fmt"

	"github.com/datacomp/datacomp/internal/core"
)

// Baseline is one measured software operating point pulled from a benchsnap
// snapshot (BENCH_codec.json). It grounds the offload model: instead of a
// guessed CPU throughput, CompSim candidates are priced against the speed
// the software engines actually sustain on this machine, so a modeled
// speedup of 1.0 means "matches the measured software ceiling".
type Baseline struct {
	Codec   string
	Level   int
	Payload string
	// MBps is the measured single-engine compress throughput.
	MBps float64
	// Ratio is original/compressed on the measured payload.
	Ratio float64
}

// benchEntry mirrors the benchsnap Entry fields this package consumes; the
// snapshot schema is owned by cmd/benchsnap.
type benchEntry struct {
	Codec     string  `json:"codec"`
	Level     int     `json:"level"`
	Payload   string  `json:"payload"`
	Direction string  `json:"direction"`
	Workers   int     `json:"workers,omitempty"`
	MBPerS    float64 `json:"mb_per_s"`
	Ratio     float64 `json:"ratio"`
}

// MeasuredBaseline extracts the measured software compress baseline for
// (codecName, level, payload) from a benchsnap JSON snapshot. An empty
// payload selects the fastest matching payload — the software ceiling.
// Container and decompress rows are ignored; only single-engine compress
// rows qualify.
func MeasuredBaseline(snapshotJSON []byte, codecName string, level int, payload string) (Baseline, error) {
	var snap struct {
		Entries []benchEntry `json:"entries"`
	}
	if err := json.Unmarshal(snapshotJSON, &snap); err != nil {
		return Baseline{}, fmt.Errorf("accel: parsing benchsnap snapshot: %w", err)
	}
	var best Baseline
	found := false
	for _, e := range snap.Entries {
		if e.Direction != "compress" || e.Workers != 0 {
			continue
		}
		if e.Codec != codecName || e.Level != level {
			continue
		}
		if payload != "" && e.Payload != payload {
			continue
		}
		if e.MBPerS <= 0 {
			continue
		}
		if !found || e.MBPerS > best.MBps {
			best = Baseline{Codec: e.Codec, Level: e.Level, Payload: e.Payload, MBps: e.MBPerS, Ratio: e.Ratio}
			found = true
		}
	}
	if !found {
		return Baseline{}, fmt.Errorf("accel: no compress row for %s level %d payload %q in snapshot", codecName, level, payload)
	}
	return best, nil
}

// CompSim converts the device into a CompOpt accelerator candidate measured
// against this baseline: the speedup is modeled relative to the machine's
// real software throughput and ratio rather than assumed numbers.
func (b Baseline) CompSim(d Device, blockSize int, alphaCompute float64) (*core.Accelerator, error) {
	return d.CompSim(blockSize, b.MBps, b.Ratio, alphaCompute)
}

// Speedup reports the modeled single-request speedup of d over this
// measured baseline at the given block size (values < 1 mean the offload
// loses to the software it was measured against).
func (b Baseline) Speedup(d Device, blockSize int) float64 {
	return d.Speedup(blockSize, b.MBps, b.Ratio)
}
