package accel

import (
	"testing"
	"time"

	"github.com/datacomp/datacomp/internal/core"
	"github.com/datacomp/datacomp/internal/corpus"
)

func TestValidate(t *testing.T) {
	if err := QATLike().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := OnChipLike().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Device{
		{Placement: PCIe, CompressMBps: 0, DecompressMBps: 1, DMAMBps: 1, Engines: 1},
		{Placement: PCIe, CompressMBps: 1, DecompressMBps: 1, DMAMBps: 0, Engines: 1},
		{Placement: OnChip, CompressMBps: 1, DecompressMBps: 1, Engines: 0},
		{Placement: OnChip, CompressMBps: 1, DecompressMBps: 1, Engines: 1, OffloadLatency: -1},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLatencyComponents(t *testing.T) {
	d := QATLike()
	small := d.CompressLatency(512, 3)
	large := d.CompressLatency(1<<20, 3)
	if small >= large {
		t.Fatal("latency must grow with size")
	}
	// Small blocks are dominated by the fixed offload cost.
	if small < d.OffloadLatency {
		t.Fatal("latency below the floor")
	}
	if float64(small) > 1.5*float64(d.OffloadLatency) {
		t.Fatalf("512B request should be overhead-dominated: %v vs overhead %v", small, d.OffloadLatency)
	}
	// On-chip pays no transfer.
	oc := OnChipLike()
	if oc.transferTime(1<<20, 1<<19) != 0 {
		t.Fatal("on-chip transfer should be free")
	}
	if d.transferTime(1<<20, 1<<19) <= 0 {
		t.Fatal("pcie transfer should cost")
	}
	if d.DecompressLatency(1<<20, 3) <= 0 {
		t.Fatal("decompress latency missing")
	}
}

// TestSmallBlockOffloadLoses is the paper's §VI-B claim made executable:
// with a CPU at 500 MB/s, a PCIe card loses on 4 KiB blocks but wins on
// 256 KiB, while an on-chip engine wins much earlier.
func TestSmallBlockOffloadLoses(t *testing.T) {
	const cpuMBps = 500
	qat := QATLike()
	onchip := OnChipLike()
	if s := qat.Speedup(4<<10, cpuMBps, 3); s >= 1 {
		t.Fatalf("PCIe offload of 4KiB should lose, speedup %.2f", s)
	}
	if s := qat.Speedup(256<<10, cpuMBps, 3); s <= 2 {
		t.Fatalf("PCIe offload of 256KiB should win big, speedup %.2f", s)
	}
	if s := onchip.Speedup(4<<10, cpuMBps, 3); s <= 1 {
		t.Fatalf("on-chip offload of 4KiB should win, speedup %.2f", s)
	}
	beQat := qat.BreakEvenBlockSize(cpuMBps, 3)
	beChip := onchip.BreakEvenBlockSize(cpuMBps, 3)
	if beQat == 0 || beChip == 0 {
		t.Fatal("both devices should eventually win")
	}
	if beChip >= beQat {
		t.Fatalf("on-chip break-even (%d) should be below PCIe (%d)", beChip, beQat)
	}
}

func TestBreakEvenMonotonicInOverhead(t *testing.T) {
	base := QATLike()
	slow := base
	slow.OffloadLatency = 10 * base.OffloadLatency
	be1 := base.BreakEvenBlockSize(500, 3)
	be2 := slow.BreakEvenBlockSize(500, 3)
	if be2 < be1 {
		t.Fatalf("higher overhead should not lower break-even: %d vs %d", be1, be2)
	}
	// A hopeless device (CPU faster than engines + overhead forever).
	hopeless := Device{Placement: PCIe, CompressMBps: 1, DecompressMBps: 1,
		DMAMBps: 1, Engines: 1, OffloadLatency: time.Second}
	if be := hopeless.BreakEvenBlockSize(500, 3); be != 0 {
		t.Fatalf("hopeless device reported break-even %d", be)
	}
}

func TestEffectiveThroughputSaturates(t *testing.T) {
	d := QATLike()
	low := d.EffectiveCompressMBps(64<<10, 3, 1)
	high := d.EffectiveCompressMBps(64<<10, 3, 64)
	if high <= low {
		t.Fatal("concurrency should raise throughput")
	}
	// At high concurrency the engines are the cap.
	cap := float64(d.Engines) * d.CompressMBps
	if high > cap*1.01 {
		t.Fatalf("throughput %v exceeds engine cap %v", high, cap)
	}
	more := d.EffectiveCompressMBps(64<<10, 3, 1024)
	if more > cap*1.01 {
		t.Fatal("cap not enforced at extreme concurrency")
	}
}

// TestCompSimIntegration runs a CompOpt search where the same zstd-1
// configuration is offered as CPU, PCIe-offloaded, and on-chip-offloaded,
// over small and large blocks: the search should keep small blocks on CPU
// (or on-chip) and move large blocks to the accelerator.
func TestCompSimIntegration(t *testing.T) {
	sample := corpus.SSTSample(1, 1<<20)
	params := core.DefaultCostParams()
	params.AlphaNetwork = 0
	e := &core.CompEngine{Samples: [][]byte{sample}, Params: params, Repeats: 2}

	// Software baseline at 64 KiB blocks.
	cpuRes, err := e.Evaluate(core.Config{Algorithm: "zstd", Level: 1, BlockSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	swMBps := cpuRes.Metrics.CompressMBps()
	ratio := cpuRes.Metrics.Ratio()

	for _, blockSize := range []int{1 << 10, 64 << 10} {
		qatAcc, err := QATLike().CompSim(blockSize, swMBps, ratio, core.EIAComputeAlpha)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Evaluate(core.Config{Algorithm: "zstd", Level: 1, BlockSize: blockSize, Accel: qatAcc})
		if err != nil {
			t.Fatal(err)
		}
		cpu, err := e.Evaluate(core.Config{Algorithm: "zstd", Level: 1, BlockSize: blockSize})
		if err != nil {
			t.Fatal(err)
		}
		if blockSize == 64<<10 && res.Metrics.CompressMBps() <= cpu.Metrics.CompressMBps() {
			t.Errorf("offloading 64KiB blocks should be faster: %v vs %v",
				res.Metrics.CompressMBps(), cpu.Metrics.CompressMBps())
		}
		if blockSize == 1<<10 && res.Metrics.CompressMBps() >= cpu.Metrics.CompressMBps() {
			t.Errorf("offloading 1KiB blocks should be slower (overhead): %v vs %v",
				res.Metrics.CompressMBps(), cpu.Metrics.CompressMBps())
		}
	}
}

func TestCompSimErrors(t *testing.T) {
	if _, err := QATLike().CompSim(4096, 0, 3, 1); err == nil {
		t.Error("zero baseline accepted")
	}
	bad := Device{}
	if _, err := bad.CompSim(4096, 100, 3, 1); err == nil {
		t.Error("invalid device accepted")
	}
}

func TestPlacementString(t *testing.T) {
	if OnChip.String() != "on-chip" || PCIe.String() != "pcie" {
		t.Fatal("placement strings")
	}
}
