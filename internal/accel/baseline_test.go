package accel

import (
	"os"
	"testing"
)

const sampleSnapshot = `{
  "note": "test",
  "entries": [
    {"codec": "lz4", "level": 1, "payload": "logs", "direction": "compress", "mb_per_s": 220.5, "ratio": 3.4},
    {"codec": "lz4", "level": 1, "payload": "logs", "direction": "decompress", "mb_per_s": 900.0, "ratio": 3.4},
    {"codec": "lz4", "level": 1, "payload": "records", "direction": "compress", "mb_per_s": 130.0, "ratio": 2.1},
    {"codec": "lz4", "level": 1, "payload": "source", "direction": "compress", "mb_per_s": 210.0, "ratio": 3.5},
    {"codec": "zstd", "level": 3, "payload": "logs", "direction": "compress", "mb_per_s": 95.0, "ratio": 4.9},
    {"codec": "zstd", "level": 3, "payload": "logs", "direction": "encode", "workers": 4, "mb_per_s": 350.0, "ratio": 4.8}
  ]
}`

func TestMeasuredBaseline(t *testing.T) {
	b, err := MeasuredBaseline([]byte(sampleSnapshot), "lz4", 1, "records")
	if err != nil {
		t.Fatal(err)
	}
	if b.MBps != 130.0 || b.Ratio != 2.1 || b.Payload != "records" {
		t.Fatalf("wrong row: %+v", b)
	}

	// Empty payload picks the fastest compress row — never the decompress
	// or multi-worker container rows that post bigger numbers.
	b, err = MeasuredBaseline([]byte(sampleSnapshot), "lz4", 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if b.Payload != "logs" || b.MBps != 220.5 {
		t.Fatalf("ceiling row wrong: %+v", b)
	}

	b, err = MeasuredBaseline([]byte(sampleSnapshot), "zstd", 3, "")
	if err != nil {
		t.Fatal(err)
	}
	if b.MBps != 95.0 {
		t.Fatalf("container encode row leaked into baseline: %+v", b)
	}

	if _, err := MeasuredBaseline([]byte(sampleSnapshot), "zlib", 6, ""); err == nil {
		t.Fatal("missing codec accepted")
	}
	if _, err := MeasuredBaseline([]byte("{nope"), "lz4", 1, ""); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestBaselineCompSim(t *testing.T) {
	b, err := MeasuredBaseline([]byte(sampleSnapshot), "zstd", 3, "logs")
	if err != nil {
		t.Fatal(err)
	}
	acc, err := b.CompSim(QATLike(), 1<<20, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if acc.SpeedFactor <= 1 {
		t.Fatalf("QAT-like device should beat a 95 MB/s software baseline on 1 MiB blocks: %+v", acc)
	}
	// Small blocks: the modeled offload overhead should erase the win
	// against the same measured baseline.
	if sp := b.Speedup(QATLike(), 512); sp >= 1 {
		t.Fatalf("512B offload should lose to software: speedup %.2f", sp)
	}
	if sp := b.Speedup(OnChipLike(), 4096); sp <= 1 {
		t.Fatalf("on-chip engine should win at 4KiB: speedup %.2f", sp)
	}
}

// TestMeasuredBaselineAgainstRepoSnapshot validates the parser against the
// committed snapshot, keeping the schema and this reader from drifting
// apart.
func TestMeasuredBaselineAgainstRepoSnapshot(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_codec.json")
	if err != nil {
		t.Skipf("no committed snapshot: %v", err)
	}
	for _, cfg := range []struct {
		codec string
		level int
	}{{"lz4", 1}, {"zstd", 1}, {"zlib", 1}} {
		b, err := MeasuredBaseline(data, cfg.codec, cfg.level, "")
		if err != nil {
			t.Fatal(err)
		}
		if b.MBps <= 0 || b.Ratio <= 1 {
			t.Fatalf("%s L%d: implausible baseline %+v", cfg.codec, cfg.level, b)
		}
	}
}
