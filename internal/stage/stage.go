// Package stage defines the canonical compressor-stage identifiers shared
// by the codec implementations (internal/zstd, internal/lz4, internal/zlibx)
// and the telemetry subsystem. The paper's fleet profiler attributes CPU
// cycles to codec *functions*, not just codec calls (Figs 3, 4, 7): the
// match-finding stage and the entropy-coding stage behave very differently
// across levels, so observability has to keep them apart. Codec packages
// cannot import internal/codec (it imports them), so the stage vocabulary
// lives in this leaf package.
package stage

// ID identifies one compressor stage.
type ID uint8

// The stage taxonomy. App means "not inside a codec stage" (frame headers,
// buffer management, application code). Serialize is LZ4's byte-aligned
// token emission — the paper's point that LZ4 has no entropy stage is
// preserved by keeping it distinct from Entropy.
const (
	App ID = iota
	MatchFind
	Entropy
	Serialize
	numStages
)

// Count is the number of defined stages, for array sizing.
const Count = int(numStages)

// String returns the stage's telemetry label.
func (id ID) String() string {
	switch id {
	case App:
		return "app"
	case MatchFind:
		return "matchfind"
	case Entropy:
		return "entropy"
	case Serialize:
		return "serialize"
	default:
		return "unknown"
	}
}

// Hook observes stage transitions inside an encoder. Implementations must
// be cheap: hooks fire once or twice per block on the compression hot path.
type Hook func(ID)
