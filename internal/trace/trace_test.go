package trace

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"github.com/datacomp/datacomp/internal/stage"
)

func TestNilAndDisabledTracer(t *testing.T) {
	var nilT *Tracer
	if nilT.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	ctx, h := nilT.StartRoot(context.Background(), "root")
	if h.Valid() {
		t.Fatal("nil tracer produced a valid handle")
	}
	if ctx != context.Background() {
		t.Fatal("nil tracer modified the context")
	}

	off := New(Config{SampleEvery: 0})
	if off.Enabled() {
		t.Fatal("SampleEvery=0 tracer reports enabled")
	}
	if _, h := off.StartRoot(context.Background(), "root"); h.Valid() {
		t.Fatal("disabled tracer sampled a trace")
	}
}

func TestZeroHandleIsInert(t *testing.T) {
	var h SpanHandle
	// None of these may panic or allocate.
	h2 := h.Child("c").SetInt("k", 1).SetStr("s", "v")
	h2.Event("e")
	h2.End()
	if h2.Valid() || h2.TraceID() != 0 || h2.Context().Valid() {
		t.Fatal("zero handle produced live state")
	}
	if got := testing.AllocsPerRun(100, func() {
		h.Child("c").SetInt("k", 1).End()
	}); got != 0 {
		t.Fatalf("zero-handle ops allocated %v/op", got)
	}
}

func TestUnsampledStartRootAllocs(t *testing.T) {
	tr := New(Config{SampleEvery: 1 << 30})
	ctx := context.Background()
	if got := testing.AllocsPerRun(100, func() {
		c, h := tr.StartRoot(ctx, "root")
		if h.Valid() {
			t.Fatal("unexpected sample")
		}
		_ = c
		h.End()
	}); got != 0 {
		t.Fatalf("unsampled StartRoot allocated %v/op", got)
	}
}

func TestSampleEvery(t *testing.T) {
	tr := New(Config{SampleEvery: 4})
	sampled := 0
	for i := 0; i < 400; i++ {
		_, h := tr.StartRoot(context.Background(), "r")
		if h.Valid() {
			sampled++
			h.End()
		}
	}
	if sampled != 100 {
		t.Fatalf("1-in-4 sampling hit %d/400", sampled)
	}
}

func TestSpanTreeAndAttributes(t *testing.T) {
	rec := NewRecorder(4, 4)
	tr := New(Config{SampleEvery: 1, Recorder: rec})
	ctx, root := tr.StartRoot(context.Background(), "root")
	if !root.Valid() {
		t.Fatal("always-sample tracer did not sample")
	}
	id := root.TraceID()
	if id == 0 {
		t.Fatal("zero trace ID")
	}
	if sc := root.Context(); !sc.Valid() || sc.TraceID != id {
		t.Fatalf("bad span context %+v", sc)
	}

	c := root.Child("child").SetInt("block", 3).SetStr("codec", "zstd")
	ev := c.Event("rung").SetInt("to", 1)
	_ = ev
	// Start from context builds a child of the active span.
	_, c2 := Start(ctx, "ctxchild")
	c2.End()
	c.End()
	time.Sleep(time.Millisecond)
	root.End()

	snaps := rec.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("recorder holds %d traces, want 1", len(snaps))
	}
	td := snaps[0]
	if td.ID != id {
		t.Fatalf("trace ID %x, want %x", td.ID, id)
	}
	if len(td.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(td.Spans))
	}
	if r := td.Root(); r == nil || r.Name != "root" || r.Dur <= 0 {
		t.Fatalf("bad root %+v", r)
	}
	child := td.Find("child")
	if child == nil || child.Parent != td.Root().ID {
		t.Fatalf("bad child %+v", child)
	}
	attrs := child.Attrs
	if len(attrs) != 2 || attrs[0].Key != "block" || attrs[0].Int != 3 ||
		attrs[1].Key != "codec" || attrs[1].Str != "zstd" || !attrs[1].IsStr {
		t.Fatalf("bad attrs %+v", attrs)
	}
	rung := td.Find("rung")
	if rung == nil || rung.Dur != 0 || rung.Parent != child.ID {
		t.Fatalf("bad event span %+v", rung)
	}
	if cc := td.Find("ctxchild"); cc == nil || cc.Parent != td.Root().ID {
		t.Fatalf("bad context child %+v", cc)
	}
}

func TestMaxSpansDrop(t *testing.T) {
	rec := NewRecorder(1, 1)
	tr := New(Config{SampleEvery: 1, Recorder: rec})
	_, root := tr.StartRoot(context.Background(), "root")
	for i := 0; i < MaxSpans+10; i++ {
		root.Child("c").End()
	}
	root.End()
	td := rec.Snapshot()[0]
	if len(td.Spans) != MaxSpans {
		t.Fatalf("got %d spans, want cap %d", len(td.Spans), MaxSpans)
	}
	if td.Dropped != 11 {
		t.Fatalf("dropped %d, want 11", td.Dropped)
	}
}

func TestHandlesInertAfterRecycle(t *testing.T) {
	tr := New(Config{SampleEvery: 1}) // no recorder: End recycles immediately
	_, root := tr.StartRoot(context.Background(), "root")
	c := root.Child("child")
	root.End()
	// The buffer is back in the pool; stale handles must not corrupt the
	// next trace that reuses it.
	c.SetInt("late", 1)
	c.End()
	rec := NewRecorder(1, 1)
	tr2 := New(Config{SampleEvery: 1, Recorder: rec})
	_ = tr2
	_, root2 := tr.StartRoot(context.Background(), "root2")
	c.SetStr("later", "x") // still stale, different generation
	root2.End()
}

func TestUnfinishedSpanClampedToRootEnd(t *testing.T) {
	rec := NewRecorder(1, 1)
	tr := New(Config{SampleEvery: 1, Recorder: rec})
	_, root := tr.StartRoot(context.Background(), "root")
	straggler := root.Child("straggler")
	_ = straggler // never ended
	time.Sleep(time.Millisecond)
	root.End()
	td := rec.Snapshot()[0]
	sp := td.Find("straggler")
	if sp == nil || sp.Dur < 0 {
		t.Fatalf("straggler not clamped: %+v", sp)
	}
	rootSp := td.Root()
	if sp.Start+sp.Dur > rootSp.Start+rootSp.Dur {
		t.Fatalf("straggler extends past root end")
	}
}

func TestRecorderSlowestPromotion(t *testing.T) {
	rec := NewRecorder(2, 2)
	tr := New(Config{SampleEvery: 1, Recorder: rec})
	// Record traces with increasing durations; with a 2-slot ring and
	// 2-slot slow set, the slowest must survive arbitrary churn.
	var slowID TraceID
	for i := 0; i < 10; i++ {
		_, root := tr.StartRoot(context.Background(), "r")
		d := time.Duration(i%5) * time.Millisecond
		if i == 3 {
			d = 50 * time.Millisecond
			slowID = root.TraceID()
		}
		time.Sleep(d)
		root.End()
	}
	if !rec.Contains(slowID) {
		t.Fatal("slowest trace evicted from recorder")
	}
	slowest := rec.Slowest(1)
	if len(slowest) != 1 || slowest[0].ID != slowID {
		t.Fatalf("Slowest(1) = %+v, want trace %x", slowest, slowID)
	}
	if n := rec.Admits(); n != 10 {
		t.Fatalf("admits %d, want 10", n)
	}
}

func TestRecorderJustCompletedSlowVisible(t *testing.T) {
	rec := NewRecorder(2, 8)
	tr := New(Config{SampleEvery: 1, Recorder: rec})
	_, root := tr.StartRoot(context.Background(), "slow")
	id := root.TraceID()
	time.Sleep(5 * time.Millisecond)
	root.End()
	// Still in the recent ring, not yet promoted — Slowest must see it.
	slowest := rec.Slowest(1)
	if len(slowest) != 1 || slowest[0].ID != id {
		t.Fatalf("just-completed slow trace not visible in Slowest")
	}
}

func TestRecorderSteadyStateAllocs(t *testing.T) {
	rec := NewRecorder(4, 4)
	tr := New(Config{SampleEvery: 1, Recorder: rec})
	// Warm: fill the ring, slow set, and buffer pool.
	for i := 0; i < 64; i++ {
		_, root := tr.StartRoot(context.Background(), "warm")
		root.Child("c").SetInt("k", int64(i)).End()
		root.End()
	}
	got := testing.AllocsPerRun(200, func() {
		_, root := tr.StartRoot(context.Background(), "steady")
		root.Child("c").SetInt("k", 1).End()
		root.End()
	})
	// context.WithValue allocates for the sampled path (2 allocs: value
	// wrapper + interface box); the trace machinery itself must add none.
	if got > 3 {
		t.Fatalf("sampled steady state allocated %v/op, want <= 3", got)
	}
}

func TestStartRemoteAndStitch(t *testing.T) {
	recC := NewRecorder(4, 4)
	recS := NewRecorder(4, 4)
	client := New(Config{SampleEvery: 1, Recorder: recC})
	server := New(Config{SampleEvery: 1, Recorder: recS})

	ctx, croot := client.StartRoot(context.Background(), "rpc.call")
	callSC := croot.Context()

	_, sroot := server.StartRemote(context.Background(), "rpc.serve", callSC)
	if !sroot.Valid() {
		t.Fatal("StartRemote rejected a valid context")
	}
	if sroot.TraceID() != croot.TraceID() {
		t.Fatal("server half has a different trace ID")
	}
	sroot.Child("handler").End()
	sroot.End()
	_ = ctx
	croot.End()

	// StartRemote with an invalid context must no-op.
	if _, h := server.StartRemote(context.Background(), "x", SpanContext{}); h.Valid() {
		t.Fatal("StartRemote sampled an invalid context")
	}

	all := append(recC.Snapshot(), recS.Snapshot()...)
	stitched := Stitch(all)
	if len(stitched) != 1 {
		t.Fatalf("stitched %d traces, want 1", len(stitched))
	}
	td := stitched[0]
	if len(td.Spans) != 3 {
		t.Fatalf("stitched %d spans, want 3", len(td.Spans))
	}
	if r := td.Root(); r == nil || r.Name != "rpc.call" {
		t.Fatalf("stitched root %+v, want rpc.call", r)
	}
	serve := td.Find("rpc.serve")
	if serve == nil || serve.Parent != td.Root().ID {
		t.Fatalf("rpc.serve not parented under rpc.call: %+v", serve)
	}
}

func TestStageSpans(t *testing.T) {
	rec := NewRecorder(1, 1)
	tr := New(Config{SampleEvery: 1, Recorder: rec})
	_, root := tr.StartRoot(context.Background(), "root")
	var ss StageSpans
	ss.Bind(root)
	ss.Hook(stage.MatchFind)
	ss.Hook(stage.Entropy)
	ss.Hook(stage.App)
	ss.Finish()
	root.End()
	td := rec.Snapshot()[0]
	mf := td.Find(stage.MatchFind.String())
	en := td.Find(stage.Entropy.String())
	if mf == nil || en == nil {
		t.Fatalf("missing stage spans: %+v", td.Spans)
	}
	if mf.Dur < 0 || en.Dur < 0 {
		t.Fatal("stage spans left open")
	}
	if td.Find(stage.App.String()) != nil {
		t.Fatal("app stage got a span")
	}

	// Zero parent: all no-ops.
	var ss2 StageSpans
	ss2.Hook(stage.MatchFind)
	ss2.Finish()
}

func TestChromeExportRoundTrip(t *testing.T) {
	rec := NewRecorder(2, 2)
	tr := New(Config{SampleEvery: 1, Recorder: rec})
	_, root := tr.StartRoot(context.Background(), "root")
	root.Child("block").SetInt("worker", 2).SetInt("block", 7).End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, rec.Snapshot()); err != nil {
		t.Fatal(err)
	}
	events, err := ParseChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("round trip failed: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	var blockEv *ChromeEvent
	for i := range events {
		if events[i].Name == "block" {
			blockEv = &events[i]
		}
	}
	if blockEv == nil {
		t.Fatal("block event missing")
	}
	if blockEv.TID != 4 {
		t.Fatalf("worker-attributed event on tid %d, want 4", blockEv.TID)
	}
	if blockEv.Args["worker"] != float64(2) || blockEv.Args["block"] != float64(7) {
		t.Fatalf("attrs lost: %+v", blockEv.Args)
	}
	if blockEv.Args["parent"] == nil {
		t.Fatal("parent link lost")
	}

	// Empty export must still be decodable ([]), not null.
	buf.Reset()
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("empty export does not round-trip: %v", err)
	}
	if !strings.Contains(buf.String(), "[]") {
		t.Fatalf("empty export emitted %q, want []", buf.String())
	}
}

func TestWriteTree(t *testing.T) {
	rec := NewRecorder(1, 1)
	tr := New(Config{SampleEvery: 1, Recorder: rec})
	_, root := tr.StartRoot(context.Background(), "root")
	root.Child("child").SetStr("codec", "zstd").End()
	root.End()
	var buf bytes.Buffer
	WriteTree(&buf, rec.Snapshot()[0])
	out := buf.String()
	for _, want := range []string{"root", "  child", "codec=zstd", "spans 2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree output missing %q:\n%s", want, out)
		}
	}
}

func TestWireRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: 0xdeadbeefcafe, SpanID: 0x1234, Sampled: true}
	b := AppendWire(nil, sc)
	if len(b) != WireLen {
		t.Fatalf("encoded %d bytes, want %d", len(b), WireLen)
	}
	got, n, err := ParseWire(b)
	if err != nil || n != WireLen || got != sc {
		t.Fatalf("round trip: %+v n=%d err=%v", got, n, err)
	}
	// Invalid contexts encode to nothing.
	if b := AppendWire(nil, SpanContext{}); len(b) != 0 {
		t.Fatalf("invalid context encoded %d bytes", len(b))
	}
	if b := AppendWire(nil, SpanContext{TraceID: 1, SpanID: 1}); len(b) != 0 {
		t.Fatal("unsampled context encoded")
	}
}

func TestWireHostileInputs(t *testing.T) {
	valid := AppendWire(nil, SpanContext{TraceID: 1, SpanID: 2, Sampled: true})
	cases := map[string][]byte{
		"empty":        {},
		"short":        valid[:WireLen-1],
		"bad version":  append([]byte{99}, valid[1:]...),
		"bad flags":    {1, 0x82, 1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0},
		"zero trace":   {1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0},
		"zero span":    {1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"flag cleared": {1, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0},
	}
	for name, b := range cases {
		sc, n, err := ParseWire(b)
		if err == nil {
			t.Errorf("%s: accepted %+v", name, sc)
		}
		if n != 0 || sc.Valid() {
			t.Errorf("%s: leaked state sc=%+v n=%d", name, sc, n)
		}
	}
	// Trailing bytes after a valid field are the caller's problem; the
	// parser must consume exactly WireLen.
	padded := append(append([]byte{}, valid...), 0xff, 0xff)
	if _, n, err := ParseWire(padded); err != nil || n != WireLen {
		t.Fatalf("padded parse n=%d err=%v", n, err)
	}
}
