package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// ChromeEvent is one Chrome trace-event ("X" complete event), the format
// Perfetto and chrome://tracing load directly. Timestamps and durations are
// microseconds; Args carries span identity and attributes.
type ChromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur"`
	PID   int64          `json:"pid"`
	TID   int64          `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeFile is the JSON object format ({"traceEvents": [...]}), which both
// viewers accept and which leaves room for metadata.
type chromeFile struct {
	TraceEvents []ChromeEvent `json:"traceEvents"`
}

// chromeTID picks the event's thread lane: worker-attributed spans (the
// container/parallel block pipelines) get per-worker lanes so the fan-out
// is visible; everything else nests on lane 1.
func chromeTID(sp SpanData) int64 {
	for _, a := range sp.Attrs {
		if a.Key == "worker" && !a.IsStr {
			return 2 + a.Int
		}
	}
	return 1
}

// WriteChromeTrace renders traces as Chrome trace-event JSON. Each trace
// becomes one "process" (pid = low bits of the trace ID) so stitched
// client+server halves share a track group; ts is absolute wall time so
// concurrently recorded traces align.
func WriteChromeTrace(w io.Writer, traces []TraceData) error {
	var f chromeFile
	f.TraceEvents = []ChromeEvent{} // encode [] rather than null when empty
	for _, td := range traces {
		pid := int64(uint32(td.ID) & 0x7fffffff)
		for _, sp := range td.Spans {
			ev := ChromeEvent{
				Name:  sp.Name,
				Cat:   "trace",
				Phase: "X",
				TS:    float64(td.Start.Add(sp.Start).UnixNano()) / 1e3,
				Dur:   float64(sp.Dur.Nanoseconds()) / 1e3,
				PID:   pid,
				TID:   chromeTID(sp),
				Args: map[string]any{
					"trace": strconv.FormatUint(uint64(td.ID), 16),
					"span":  strconv.FormatUint(uint64(sp.ID), 16),
				},
			}
			if sp.Parent != 0 {
				ev.Args["parent"] = strconv.FormatUint(uint64(sp.Parent), 16)
			}
			for _, a := range sp.Attrs {
				if a.IsStr {
					ev.Args[a.Key] = a.Str
				} else {
					ev.Args[a.Key] = a.Int
				}
			}
			f.TraceEvents = append(f.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// ParseChromeTrace decodes WriteChromeTrace output — the round-trip check
// the export path is tested against, and a guard that the emitted JSON
// stays loadable.
func ParseChromeTrace(data []byte) ([]ChromeEvent, error) {
	var f chromeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("trace: chrome trace decode: %w", err)
	}
	for i, ev := range f.TraceEvents {
		if ev.Name == "" || ev.Phase != "X" {
			return nil, fmt.Errorf("trace: chrome trace event %d malformed (name=%q ph=%q)", i, ev.Name, ev.Phase)
		}
	}
	return f.TraceEvents, nil
}

// WriteTree renders one trace as an indented text tree ordered by start
// time — the quick no-tooling view /debug/traces serves.
func WriteTree(w io.Writer, td TraceData) {
	children := make(map[SpanID][]int, len(td.Spans))
	present := make(map[SpanID]bool, len(td.Spans))
	for i := range td.Spans {
		present[td.Spans[i].ID] = true
	}
	var roots []int
	for i := range td.Spans {
		p := td.Spans[i].Parent
		if p == 0 || !present[p] {
			roots = append(roots, i)
		} else {
			children[p] = append(children[p], i)
		}
	}
	byStart := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool { return td.Spans[idx[a]].Start < td.Spans[idx[b]].Start })
	}
	byStart(roots)
	fmt.Fprintf(w, "trace %016x  start %s  root %s  spans %d",
		uint64(td.ID), td.Start.Format(time.RFC3339Nano), rootDurData(td), len(td.Spans))
	if td.Dropped > 0 {
		fmt.Fprintf(w, "  (%d spans dropped)", td.Dropped)
	}
	fmt.Fprintln(w)
	var walk func(idx, depth int)
	walk = func(idx, depth int) {
		sp := &td.Spans[idx]
		for i := 0; i < depth; i++ {
			io.WriteString(w, "  ")
		}
		fmt.Fprintf(w, "%s  +%s %s", sp.Name, sp.Start.Round(time.Microsecond), sp.Dur.Round(time.Microsecond))
		for _, a := range sp.Attrs {
			if a.IsStr {
				fmt.Fprintf(w, " %s=%s", a.Key, a.Str)
			} else {
				fmt.Fprintf(w, " %s=%d", a.Key, a.Int)
			}
		}
		fmt.Fprintln(w)
		kids := children[sp.ID]
		byStart(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 1)
	}
}
