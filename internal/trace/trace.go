// Package trace is the repository's request-scoped tracing spine: a
// low-overhead, allocation-conscious span library with context propagation,
// sampling, a wire-encodable span context for RPC stitching, and a flight
// recorder that retains the slowest and most recent completed traces.
//
// The fleet characterization the paper performs attributes *aggregate*
// cycles to codec stages; serving a latency SLO needs *per-request*
// attribution — which codec stage, degrader rung, retry, or container block
// put one request into the p999 bucket. Spans answer that: every sampled
// request carries a trace through rpc framing, codec stages, degrader
// transitions, and container block pipelines, and the histogram exemplars
// in internal/telemetry link tail buckets back to the offending trace.
//
// Design constraints, in order:
//
//  1. Disabled or enabled-but-unsampled tracing must cost near nothing on
//     the hot path: no allocations, one atomic or one context lookup.
//  2. Sampled traces must have bounded memory: spans live in a per-trace
//     buffer capped at MaxSpans, and buffers recycle through pools, so the
//     steady state allocates nothing.
//  3. Handles are values. A SpanHandle is two words and is safe to copy,
//     pass across goroutines, and call on when zero (every method no-ops).
package trace

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/datacomp/datacomp/internal/stage"
)

// TraceID identifies one request's trace. Zero is "no trace".
type TraceID uint64

// SpanID identifies one span within a trace. Zero is "no span".
type SpanID uint64

// SpanContext is the propagatable identity of a span — what crosses the
// wire in an RPC frame header so client and server spans stitch into one
// tree.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Valid reports whether the context names a real sampled span.
func (sc SpanContext) Valid() bool {
	return sc.Sampled && sc.TraceID != 0 && sc.SpanID != 0
}

// Attr is one typed span attribute: either an int64 or a string value.
type Attr struct {
	Key string
	Str string
	Int int64
	// IsStr distinguishes the zero int from an empty-string value.
	IsStr bool
}

const (
	// maxAttrs bounds attributes per span; later sets are dropped. Spans
	// are fixed-size records so trace memory stays bounded and pooled.
	maxAttrs = 6

	// MaxSpans bounds spans per trace. Further starts are dropped (counted
	// in TraceData.Dropped) so a pathological request cannot grow the
	// flight recorder without bound.
	MaxSpans = 512
)

// Span is one timed operation inside a trace. Spans are records inside the
// owning Trace's buffer; external code manipulates them through SpanHandle.
type Span struct {
	ID     SpanID
	Parent SpanID // zero for the local root
	Name   string
	Start  time.Duration // offset from the trace's start time
	Dur    time.Duration // negative until End (clamped at export)
	attrs  [maxAttrs]Attr
	nattrs uint8
}

// Attrs returns the span's set attributes.
func (s *Span) Attrs() []Attr { return s.attrs[:s.nattrs] }

// Trace accumulates the spans of one sampled request. All mutation happens
// under mu: span starts can come from pipeline worker goroutines while the
// request goroutine is annotating its own span.
type Trace struct {
	tracer *Tracer
	id     TraceID
	remote bool // root was started from a wire context (server half)

	mu      sync.Mutex
	gen     uint32 // incremented on recycle; stale handles no-op
	start   time.Time
	spans   []Span
	dropped int64
}

// SpanHandle addresses one span of one trace generation. The zero handle is
// valid and inert: every method is a no-op, which is what an unsampled
// request gets.
type SpanHandle struct {
	tr  *Trace
	idx int32
	gen uint32
}

// Valid reports whether the handle addresses a live span.
func (h SpanHandle) Valid() bool { return h.tr != nil }

// ctxKey keys the active span handle in a context.
type ctxKey struct{}

// ContextWith returns ctx carrying h as the active span. A zero handle
// returns ctx unchanged (no allocation).
func ContextWith(ctx context.Context, h SpanHandle) context.Context {
	if !h.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, h)
}

// FromContext returns the active span handle, or the zero handle.
func FromContext(ctx context.Context) SpanHandle {
	h, _ := ctx.Value(ctxKey{}).(SpanHandle)
	return h
}

// Config parameterizes a Tracer.
type Config struct {
	// SampleEvery samples one trace in every N root starts. 1 traces every
	// request; 0 disables tracing entirely.
	SampleEvery int
	// Recorder retains completed traces. Nil means completed traces are
	// recycled immediately (spans still flow to live exemplars).
	Recorder *Recorder
}

// Tracer creates and samples traces. Safe for concurrent use.
type Tracer struct {
	every uint64
	tick  atomic.Uint64
	ids   atomic.Uint64 // splitmix64 counter for trace/span IDs
	rec   *Recorder
	bufs  sync.Pool // *Trace
}

// New builds a tracer. A nil *Tracer is usable and permanently disabled, so
// call sites never nil-check.
func New(cfg Config) *Tracer {
	t := &Tracer{every: uint64(max(cfg.SampleEvery, 0)), rec: cfg.Recorder}
	t.ids.Store(uint64(time.Now().UnixNano()))
	return t
}

// splitmix64 is the ID mixer: cheap, well-distributed, never zero-prone
// enough to matter (zero outputs are rerolled by nextID).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (t *Tracer) nextID() uint64 {
	for {
		if id := splitmix64(t.ids.Add(1)); id != 0 {
			return id
		}
	}
}

// Enabled reports whether the tracer can ever sample (non-nil and
// SampleEvery > 0).
func (t *Tracer) Enabled() bool { return t != nil && t.every > 0 }

// sampled makes the root-start sampling decision.
func (t *Tracer) sampled() bool {
	if t == nil || t.every == 0 {
		return false
	}
	if t.every == 1 {
		return true
	}
	return t.tick.Add(1)%t.every == 0
}

// newTrace pulls a recycled trace buffer or builds one.
func (t *Tracer) newTrace(id TraceID) *Trace {
	tr, ok := t.bufs.Get().(*Trace)
	if !ok {
		tr = &Trace{tracer: t, spans: make([]Span, 0, 16)}
	}
	tr.id = id
	tr.remote = false
	tr.start = time.Now()
	return tr
}

// recycle resets and pools a finished trace buffer.
func (t *Tracer) recycle(tr *Trace) {
	tr.mu.Lock()
	tr.gen++
	tr.spans = tr.spans[:0]
	tr.dropped = 0
	tr.id = 0
	tr.mu.Unlock()
	t.bufs.Put(tr)
}

// StartRoot starts a new trace if this request wins sampling, returning ctx
// carrying the root span. Unsampled requests get ctx back unchanged and a
// zero handle, with zero allocations.
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, SpanHandle) {
	if !t.sampled() {
		return ctx, SpanHandle{}
	}
	tr := t.newTrace(TraceID(t.nextID()))
	h := tr.startSpan(0, name)
	return ContextWith(ctx, h), h
}

// StartRemote starts the local half of a trace whose identity arrived over
// the wire (the server side of an RPC). The local root's parent is the
// remote span, so export stitches both halves into one tree.
func (t *Tracer) StartRemote(ctx context.Context, name string, sc SpanContext) (context.Context, SpanHandle) {
	if t == nil || t.every == 0 || !sc.Valid() {
		return ctx, SpanHandle{}
	}
	tr := t.newTrace(sc.TraceID)
	tr.remote = true
	h := tr.startSpan(sc.SpanID, name)
	return ContextWith(ctx, h), h
}

// Start starts a child of the context's active span. With no active span it
// returns ctx unchanged and a zero handle.
func Start(ctx context.Context, name string) (context.Context, SpanHandle) {
	h := FromContext(ctx)
	if !h.Valid() {
		return ctx, SpanHandle{}
	}
	c := h.Child(name)
	return ContextWith(ctx, c), c
}

// startSpan allocates a span record. parent is zero for the local root.
func (tr *Trace) startSpan(parent SpanID, name string) SpanHandle {
	now := time.Now()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.spans) >= MaxSpans {
		tr.dropped++
		return SpanHandle{}
	}
	idx := int32(len(tr.spans))
	tr.spans = append(tr.spans, Span{
		ID:     SpanID(tr.tracer.nextID()),
		Parent: parent,
		Name:   name,
		Start:  now.Sub(tr.start),
		Dur:    -1,
	})
	return SpanHandle{tr: tr, idx: idx, gen: tr.gen}
}

// span returns the addressed record, or nil for a stale/zero handle. Caller
// must hold tr.mu.
func (h SpanHandle) span() *Span {
	if h.tr.gen != h.gen || int(h.idx) >= len(h.tr.spans) {
		return nil
	}
	return &h.tr.spans[h.idx]
}

// Child starts a child span. On a zero handle it returns a zero handle.
func (h SpanHandle) Child(name string) SpanHandle {
	if !h.Valid() {
		return SpanHandle{}
	}
	h.tr.mu.Lock()
	sp := h.span()
	h.tr.mu.Unlock()
	if sp == nil {
		return SpanHandle{}
	}
	return h.tr.startSpan(sp.ID, name)
}

// Event records an instantaneous (zero-duration) child span — the shape
// used for degrader rung changes, retries, and breaker transitions. The
// returned handle accepts attributes.
func (h SpanHandle) Event(name string) SpanHandle {
	e := h.Child(name)
	if e.Valid() {
		e.tr.mu.Lock()
		if sp := e.span(); sp != nil {
			sp.Dur = 0
		}
		e.tr.mu.Unlock()
	}
	return e
}

// SetInt sets an integer attribute, returning h for chaining. Attributes
// past the per-span cap are dropped.
func (h SpanHandle) SetInt(key string, v int64) SpanHandle {
	if !h.Valid() {
		return h
	}
	h.tr.mu.Lock()
	if sp := h.span(); sp != nil && sp.nattrs < maxAttrs {
		sp.attrs[sp.nattrs] = Attr{Key: key, Int: v}
		sp.nattrs++
	}
	h.tr.mu.Unlock()
	return h
}

// SetStr sets a string attribute, returning h for chaining.
func (h SpanHandle) SetStr(key, v string) SpanHandle {
	if !h.Valid() {
		return h
	}
	h.tr.mu.Lock()
	if sp := h.span(); sp != nil && sp.nattrs < maxAttrs {
		sp.attrs[sp.nattrs] = Attr{Key: key, Str: v, IsStr: true}
		sp.nattrs++
	}
	h.tr.mu.Unlock()
	return h
}

// Context returns the span's propagatable identity, for the wire.
func (h SpanHandle) Context() SpanContext {
	if !h.Valid() {
		return SpanContext{}
	}
	h.tr.mu.Lock()
	sp := h.span()
	var sc SpanContext
	if sp != nil {
		sc = SpanContext{TraceID: h.tr.id, SpanID: sp.ID, Sampled: true}
	}
	h.tr.mu.Unlock()
	return sc
}

// TraceID returns the owning trace's ID (zero for a zero handle) — what
// histogram exemplars record.
func (h SpanHandle) TraceID() TraceID {
	if !h.Valid() {
		return 0
	}
	return h.tr.id
}

// End closes the span. Ending the local root completes the trace: it is
// handed to the flight recorder (or recycled), after which all handles into
// it become inert. End on a zero handle is a no-op; End is not idempotent
// on the root (the second call is inert because the generation moved on).
func (h SpanHandle) End() {
	if !h.Valid() {
		return
	}
	now := time.Now()
	h.tr.mu.Lock()
	sp := h.span()
	root := false
	if sp != nil {
		if sp.Dur < 0 {
			sp.Dur = now.Sub(h.tr.start) - sp.Start
		}
		root = h.idx == 0
	}
	h.tr.mu.Unlock()
	if root && sp != nil {
		h.tr.tracer.finish(h.tr)
	}
}

// finish routes a completed trace to the recorder and recycles whatever
// falls out the other end.
func (t *Tracer) finish(tr *Trace) {
	if t.rec != nil {
		tr = t.rec.admit(tr)
	}
	if tr != nil {
		// A shared recorder can displace a trace owned by another tracer;
		// recycle into its owner's pool, not ours.
		tr.tracer.recycle(tr)
	}
}

// rootDur returns the completed root duration (0 if absent).
func (tr *Trace) rootDur() time.Duration {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.spans) == 0 || tr.spans[0].Dur < 0 {
		return 0
	}
	return tr.spans[0].Dur
}

// snapshotData deep-copies a completed trace for export.
func (tr *Trace) snapshotData() TraceData {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	td := TraceData{
		ID:      tr.id,
		Start:   tr.start,
		Remote:  tr.remote,
		Dropped: tr.dropped,
		Spans:   make([]SpanData, len(tr.spans)),
	}
	var rootEnd time.Duration
	if len(tr.spans) > 0 && tr.spans[0].Dur >= 0 {
		rootEnd = tr.spans[0].Start + tr.spans[0].Dur
	}
	for i := range tr.spans {
		sp := &tr.spans[i]
		d := sp.Dur
		if d < 0 {
			// Never ended (a pipeline straggler): clamp to the root's end.
			d = max(rootEnd-sp.Start, 0)
		}
		td.Spans[i] = SpanData{
			ID:     sp.ID,
			Parent: sp.Parent,
			Name:   sp.Name,
			Start:  sp.Start,
			Dur:    d,
			Attrs:  append([]Attr(nil), sp.attrs[:sp.nattrs]...),
		}
	}
	return td
}

// SpanData is an exported copy of one span.
type SpanData struct {
	ID     SpanID
	Parent SpanID
	Name   string
	Start  time.Duration // offset from TraceData.Start
	Dur    time.Duration
	Attrs  []Attr
}

// TraceData is an exported copy of one completed trace (or, after Stitch,
// of several local halves sharing a trace ID).
type TraceData struct {
	ID      TraceID
	Start   time.Time
	Remote  bool
	Dropped int64
	Spans   []SpanData
}

// Root returns the trace's root span: the span whose parent is absent from
// the trace (after stitching, the client half's root). Falls back to the
// first span.
func (td TraceData) Root() *SpanData {
	if len(td.Spans) == 0 {
		return nil
	}
	present := make(map[SpanID]bool, len(td.Spans))
	for i := range td.Spans {
		present[td.Spans[i].ID] = true
	}
	for i := range td.Spans {
		if td.Spans[i].Parent == 0 || !present[td.Spans[i].Parent] {
			return &td.Spans[i]
		}
	}
	return &td.Spans[0]
}

// Find returns the first span with the given name, or nil.
func (td TraceData) Find(name string) *SpanData {
	for i := range td.Spans {
		if td.Spans[i].Name == name {
			return &td.Spans[i]
		}
	}
	return nil
}

// Stitch merges trace halves that share a TraceID — the client and server
// sides of an RPC recorded as separate local traces — into one TraceData
// per ID, preserving input order of first appearance. Span Start offsets
// are rebased onto the earliest half's start time.
func Stitch(tds []TraceData) []TraceData {
	byID := make(map[TraceID]int, len(tds))
	var out []TraceData
	for _, td := range tds {
		i, ok := byID[td.ID]
		if !ok {
			byID[td.ID] = len(out)
			out = append(out, td)
			continue
		}
		dst := &out[i]
		base := dst.Start
		if td.Start.Before(base) {
			// Rebase the existing spans onto the earlier start.
			delta := base.Sub(td.Start)
			for j := range dst.Spans {
				dst.Spans[j].Start += delta
			}
			dst.Start = td.Start
			base = td.Start
		}
		delta := td.Start.Sub(base)
		for _, sp := range td.Spans {
			sp.Start += delta
			dst.Spans = append(dst.Spans, sp)
		}
		dst.Dropped += td.Dropped
		dst.Remote = dst.Remote && td.Remote
	}
	return out
}

// StageSpans adapts a stage.Hook to per-stage child spans: each transition
// out of a stage ends its span, each transition into a non-App stage starts
// one under the bound parent. Single-goroutine, like the engines that fire
// the hook. With a zero parent every call is a no-op.
type StageSpans struct {
	parent SpanHandle
	cur    SpanHandle
}

// Bind sets the parent for subsequent stage spans and clears any leftover
// open stage.
func (ss *StageSpans) Bind(parent SpanHandle) {
	ss.parent = parent
	ss.cur = SpanHandle{}
}

// Hook is the stage.Hook to install on an engine.
func (ss *StageSpans) Hook(id stage.ID) {
	if ss.cur.Valid() {
		ss.cur.End()
		ss.cur = SpanHandle{}
	}
	if !ss.parent.Valid() || id == stage.App {
		return
	}
	ss.cur = ss.parent.Child(id.String())
}

// Finish closes the open stage span (an engine that ends mid-stage) and
// unbinds.
func (ss *StageSpans) Finish() {
	if ss.cur.Valid() {
		ss.cur.End()
	}
	ss.parent = SpanHandle{}
	ss.cur = SpanHandle{}
}
