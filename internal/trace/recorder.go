package trace

import (
	"sort"
	"sync"
	"time"
)

// Recorder is the always-on flight recorder: a fixed set of trace buffers
// retaining the N slowest and M most recent completed traces, dumpable at
// any time. Completed traces enter the recent ring; when the ring evicts a
// trace, it is promoted into the slowest set if it outranks the current
// minimum. Buffers circulate — admitted traces displace others back to the
// tracer's pool — so the steady state allocates nothing.
//
// The slowest view merges both sets at read time, so a slow trace is
// visible as a slowest-N entry the moment it completes, not only after the
// recent ring has cycled past it.
type Recorder struct {
	mu     sync.Mutex
	slow   []*Trace // unordered; scanned for min on promotion (N is small)
	slowN  int
	recent []*Trace // ring of the M most recent completions
	pos    int
	admits int64
}

// NewRecorder builds a recorder keeping the slowN slowest and recentM most
// recent traces. Non-positive sizes get modest defaults (16 slow, 64
// recent).
func NewRecorder(slowN, recentM int) *Recorder {
	if slowN <= 0 {
		slowN = 16
	}
	if recentM <= 0 {
		recentM = 64
	}
	return &Recorder{slowN: slowN, recent: make([]*Trace, recentM)}
}

// admit takes ownership of a completed trace and returns a displaced trace
// for the tracer to recycle (nil when a slot was free).
func (r *Recorder) admit(tr *Trace) *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.admits++
	evicted := r.recent[r.pos]
	r.recent[r.pos] = tr
	r.pos = (r.pos + 1) % len(r.recent)
	if evicted == nil {
		return nil
	}
	// Promote the evictee into the slowest set if it outranks the minimum.
	if len(r.slow) < r.slowN {
		r.slow = append(r.slow, evicted)
		return nil
	}
	minIdx := 0
	for i := 1; i < len(r.slow); i++ {
		if r.slow[i].rootDur() < r.slow[minIdx].rootDur() {
			minIdx = i
		}
	}
	if evicted.rootDur() > r.slow[minIdx].rootDur() {
		displaced := r.slow[minIdx]
		r.slow[minIdx] = evicted
		return displaced
	}
	return evicted
}

// Admits reports how many completed traces the recorder has accepted.
func (r *Recorder) Admits() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.admits
}

// Snapshot deep-copies every retained trace (slowest set then recent ring,
// most recent first), deduplicating traces present in both views. Dumping
// allocates; admission never does.
func (r *Recorder) Snapshot() []TraceData {
	r.mu.Lock()
	seen := make(map[*Trace]bool, len(r.slow)+len(r.recent))
	var list []*Trace
	for _, tr := range r.slow {
		if tr != nil && !seen[tr] {
			seen[tr] = true
			list = append(list, tr)
		}
	}
	for i := 0; i < len(r.recent); i++ {
		tr := r.recent[(r.pos-1-i+2*len(r.recent))%len(r.recent)]
		if tr != nil && !seen[tr] {
			seen[tr] = true
			list = append(list, tr)
		}
	}
	r.mu.Unlock()
	out := make([]TraceData, 0, len(list))
	for _, tr := range list {
		out = append(out, tr.snapshotData())
	}
	return out
}

// Slowest returns up to n retained traces ordered by root duration,
// slowest first, considering both the slowest set and the recent ring.
func (r *Recorder) Slowest(n int) []TraceData {
	all := r.Snapshot()
	sort.Slice(all, func(i, j int) bool { return rootDurData(all[i]) > rootDurData(all[j]) })
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

// Recent returns up to n retained traces ordered most recent first.
func (r *Recorder) Recent(n int) []TraceData {
	all := r.Snapshot()
	sort.Slice(all, func(i, j int) bool { return all[i].Start.After(all[j].Start) })
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

// Contains reports whether any retained trace carries id.
func (r *Recorder) Contains(id TraceID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, tr := range r.slow {
		if tr != nil && tr.id == id {
			return true
		}
	}
	for _, tr := range r.recent {
		if tr != nil && tr.id == id {
			return true
		}
	}
	return false
}

func rootDurData(td TraceData) time.Duration {
	if root := td.Root(); root != nil {
		return root.Dur
	}
	return 0
}
