package trace

import (
	"encoding/binary"
	"errors"
)

// Wire encoding of a SpanContext — the trace-context field an RPC frame
// header carries when its sender has tracing enabled (DESIGN.md §9):
//
//	version  1 byte   (wireVersion; anything else is undecodable)
//	flags    1 byte   (bit 0 = sampled; other bits must be zero)
//	traceID  8 bytes  little-endian, nonzero
//	spanID   8 bytes  little-endian, nonzero
//
// The field is fixed-size so a frame parser always knows how many bytes to
// consume before validating them, and it is covered by the frame checksum,
// so a flipped bit surfaces as frame corruption rather than a misstitched
// trace. Only sampled contexts are ever encoded: an unsampled request omits
// the field entirely (and the frame flag announcing it), which is what
// keeps the common path byte-identical to the pre-tracing format.
const (
	wireVersion = 1

	// WireLen is the exact encoded size of a SpanContext.
	WireLen = 18

	wireFlagSampled = 1 << 0
	wireFlagsKnown  = wireFlagSampled
)

// ErrWire reports a malformed wire trace context.
var ErrWire = errors.New("trace: malformed wire span context")

// Static detail errors, all wrapping ErrWire so callers branch on one
// sentinel while logs keep the diagnosis.
var (
	errWireShort   = &wireError{msg: "trace: wire span context truncated"}
	errWireVersion = &wireError{msg: "trace: unknown wire span context version"}
	errWireFlags   = &wireError{msg: "trace: unknown wire span context flags"}
	errWireZeroID  = &wireError{msg: "trace: wire span context has zero id"}
)

type wireError struct{ msg string }

func (e *wireError) Error() string { return e.msg }
func (e *wireError) Unwrap() error { return ErrWire }

// AppendWire encodes sc. Encoding an invalid (unsampled or zero-ID) context
// is a programming error upstream; the decoder would reject it, so encode
// nothing and let the caller's length check catch it.
func AppendWire(dst []byte, sc SpanContext) []byte {
	if !sc.Valid() {
		return dst
	}
	dst = append(dst, wireVersion, wireFlagSampled)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(sc.TraceID))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(sc.SpanID))
	return dst
}

// ParseWire decodes a SpanContext from the front of b, returning it and the
// number of bytes consumed. Hostile input yields an error wrapping ErrWire,
// never a panic and never a silently wrong identity.
func ParseWire(b []byte) (SpanContext, int, error) {
	if len(b) < WireLen {
		return SpanContext{}, 0, errWireShort
	}
	if b[0] != wireVersion {
		return SpanContext{}, 0, errWireVersion
	}
	flags := b[1]
	if flags&^wireFlagsKnown != 0 {
		return SpanContext{}, 0, errWireFlags
	}
	sc := SpanContext{
		TraceID: TraceID(binary.LittleEndian.Uint64(b[2:])),
		SpanID:  SpanID(binary.LittleEndian.Uint64(b[10:])),
		Sampled: flags&wireFlagSampled != 0,
	}
	// A present field must carry a real sampled identity: the encoder never
	// emits anything else, so anything else is corruption.
	if !sc.Valid() {
		return SpanContext{}, 0, errWireZeroID
	}
	return sc, WireLen, nil
}
