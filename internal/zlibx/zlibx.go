// Package zlibx implements a DEFLATE-style codec: LZ77 over a 32 KiB window
// (minimum match 3, maximum 258) followed by dynamic canonical Huffman
// coding of a merged literal/length alphabet and a distance alphabet.
//
// In the reproduced paper's taxonomy this is the "non-LZ-entropy" legacy
// codec (Zlib): it shares the LZ match-finding stage with LZ4 and the
// Zstd-style codec but uses Huffman for everything — no FSE — which places
// it between the two in ratio and last in decompression speed. Levels 0-9
// mirror zlib: 0 stores, 1 is fastest, 9 searches hardest. The container is
// this repository's own (DEFLATE's alphabets, not its exact bitstream).
package zlibx

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/datacomp/datacomp/internal/bits"
	"github.com/datacomp/datacomp/internal/huffman"
	"github.com/datacomp/datacomp/internal/lz"
	"github.com/datacomp/datacomp/internal/stage"
	"github.com/datacomp/datacomp/internal/wildcopy"
)

// Level bounds. Level 0 stores blocks uncompressed.
const (
	MinLevel = 0
	MaxLevel = 9
)

// ErrCorrupt is returned for undecodable payloads.
var ErrCorrupt = errors.New("zlibx: corrupt payload")

const (
	eobSym      = 256 // end-of-block symbol in the lit/len alphabet
	firstLenSym = 257
	numLitLen   = 286 // 0..285
	numDist     = 30
	minMatch    = 3
	maxMatch    = 258
	windowLog   = 15
	maxCodeBits = 12      // this container limits codes to 12 bits
	blockSize   = 1 << 16 // input chunk per dynamic-table block
	typeStored  = 0
	typeDynamic = 1
)

var lengthBase = [29]uint16{
	3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
	35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258,
}

var lengthExtra = [29]uint8{
	0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
	3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
}

var distBase = [30]uint16{
	1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
	257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
}

var distExtra = [30]uint8{
	0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
	7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13,
}

// lengthCodeTab maps matchLen-3 (0..255) to a length code index (0..28).
var lengthCodeTab [256]uint8

// distCodeTab maps offsets: index [0,256) holds codes for offsets 1..256;
// index [256,512) holds codes for (offset-1)>>7 when offset > 256.
var distCodeTab [512]uint8

func init() {
	for c := len(lengthBase) - 1; c >= 0; c-- {
		lo := int(lengthBase[c]) - minMatch
		hi := lo + 1<<lengthExtra[c]
		for v := lo; v < hi && v < 256; v++ {
			lengthCodeTab[v] = uint8(c)
		}
	}
	// Length 258 has its own zero-extra code (28); make sure it wins.
	lengthCodeTab[maxMatch-minMatch] = 28
	for c := 0; c < len(distBase); c++ {
		lo := int(distBase[c])
		hi := lo + 1<<distExtra[c]
		for off := lo; off < hi && off <= 1<<windowLog; off++ {
			if off <= 256 {
				distCodeTab[off-1] = uint8(c)
			} else {
				distCodeTab[256+(off-1)>>7] = uint8(c)
			}
		}
	}
}

func lengthCode(matchLen int) uint8 { return lengthCodeTab[matchLen-minMatch] }

func distCode(offset int) uint8 {
	if offset <= 256 {
		return distCodeTab[offset-1]
	}
	return distCodeTab[256+(offset-1)>>7]
}

// params maps levels 1..9 to match-finder settings, following zlib's
// fast→lazy progression.
func params(level int) lz.Params {
	p := lz.Params{
		WindowLog: windowLog,
		MinMatch:  minMatch,
		MaxMatch:  maxMatch,
		SkipStep:  1,
	}
	switch {
	case level <= 2:
		p.Strategy = lz.Fast
		p.HashLog = 12 + uint(level) // 13, 14
	case level <= 5:
		p.Strategy = lz.Greedy
		p.HashLog = 15
		p.ChainLog = 15
		p.Depth = 8 << uint(level-3) // 8, 16, 32
	default:
		p.Strategy = lz.Lazy
		if level >= 8 {
			p.Strategy = lz.Lazy2
		}
		p.HashLog = 15
		p.ChainLog = 15
		p.Depth = 32 << uint(level-6) // 32 .. 256
	}
	return p
}

// Encoder compresses at a fixed level. Not safe for concurrent use.
type Encoder struct {
	level     int
	matcher   *lz.Matcher // nil for level 0
	seqs      []lz.Sequence
	stageHook stage.Hook

	// Entropy-stage scratch, reused across blocks so a warmed encoder
	// performs zero heap allocations per payload.
	build      huffman.BuildScratch
	litLenFreq [numLitLen]uint32
	distFreq   [numDist]uint32
	litLens    [numLitLen]uint8
	distLens   [numDist]uint8
	litCodes   [numLitLen]uint32
	distCodes  [numDist]uint32
	w          bits.Writer64
}

// SetStageHook installs a hook fired at stage transitions inside Compress:
// stage.MatchFind before parsing, stage.Entropy before Huffman coding,
// stage.App when the block completes.
func (e *Encoder) SetStageHook(h stage.Hook) { e.stageHook = h }

func (e *Encoder) enterStage(s stage.ID) {
	if e.stageHook != nil {
		e.stageHook(s)
	}
}

// NewEncoder returns an encoder for the given level.
func NewEncoder(level int) (*Encoder, error) {
	if level < MinLevel || level > MaxLevel {
		return nil, fmt.Errorf("zlibx: level %d out of range [%d,%d]", level, MinLevel, MaxLevel)
	}
	e := &Encoder{level: level}
	if level > 0 {
		m, err := lz.NewMatcher(params(level))
		if err != nil {
			return nil, err
		}
		e.matcher = m
	}
	return e, nil
}

// Level returns the encoder's compression level.
func (e *Encoder) Level() int { return e.level }

// Compress appends a self-describing payload to dst.
func (e *Encoder) Compress(dst, src []byte) ([]byte, error) {
	var tmp [binary.MaxVarintLen64]byte
	dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(len(src)))]...)
	if len(src) == 0 {
		return append(dst, typeStored<<1|1, 0), nil
	}
	for start := 0; start < len(src); start += blockSize {
		end := start + blockSize
		if end > len(src) {
			end = len(src)
		}
		last := end == len(src)
		var err error
		dst, err = e.compressBlock(dst, src, start, end, last)
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

func storedBlock(dst []byte, content []byte, last bool) []byte {
	hdr := byte(typeStored << 1)
	if last {
		hdr |= 1
	}
	var tmp [binary.MaxVarintLen64]byte
	dst = append(dst, hdr)
	dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(len(content)))]...)
	return append(dst, content...)
}

func (e *Encoder) compressBlock(dst, src []byte, start, end int, last bool) ([]byte, error) {
	content := src[start:end]
	if e.level == 0 {
		return storedBlock(dst, content, last), nil
	}
	// History is limited to the window preceding the block.
	base := start - 1<<windowLog
	if base < 0 {
		base = 0
	}
	e.enterStage(stage.MatchFind)
	e.seqs = e.matcher.Parse(e.seqs[:0], src[base:end], start-base)

	e.enterStage(stage.Entropy)
	payload, err := e.encodeDynamic(content, e.seqs)
	e.enterStage(stage.App)
	if err != nil {
		return nil, err
	}
	if payload == nil || len(payload) >= len(content) {
		return storedBlock(dst, content, last), nil
	}
	hdr := byte(typeDynamic << 1)
	if last {
		hdr |= 1
	}
	var tmp [binary.MaxVarintLen64]byte
	dst = append(dst, hdr)
	dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(len(payload)))]...)
	return append(dst, payload...), nil
}

// writeTable serializes code lengths: 1-bit flag then either a 4-bit length
// or a 6-bit zero-run (1..64).
func writeTable(w *bits.Writer64, lengths []uint8) {
	i := 0
	for i < len(lengths) {
		if lengths[i] == 0 {
			run := 1
			for i+run < len(lengths) && lengths[i+run] == 0 && run < 64 {
				run++
			}
			w.WriteBits(1, 1)
			w.WriteBits(uint64(run-1), 6)
			i += run
			continue
		}
		w.WriteBits(0, 1)
		w.WriteBits(uint64(lengths[i]), 4)
		i++
	}
}

// readTable deserializes n code lengths into lengths (len(lengths) == n).
func readTable(r *bits.Reader64, lengths []uint8) error {
	i := 0
	for i < len(lengths) {
		r.Refill() // ≤11 bits per iteration
		if r.Overrun() {
			return ErrCorrupt
		}
		if r.ReadBits(1) == 1 {
			run := int(r.ReadBits(6))
			for k := 0; k <= run && i < len(lengths); k++ {
				lengths[i] = 0
				i++
			}
			continue
		}
		lengths[i] = uint8(r.ReadBits(4))
		i++
	}
	return nil
}

// encodeDynamic serializes one dynamic-Huffman block. Returns nil when the
// alphabet degenerates (e.g. a single distinct token), signalling the caller
// to store the block.
func (e *Encoder) encodeDynamic(content []byte, seqs []lz.Sequence) ([]byte, error) {
	// Histogram both alphabets.
	litLenFreq := e.litLenFreq[:]
	distFreq := e.distFreq[:]
	for i := range litLenFreq {
		litLenFreq[i] = 0
	}
	for i := range distFreq {
		distFreq[i] = 0
	}
	pos := 0
	hasMatch := false
	for _, s := range seqs {
		for _, b := range content[pos : pos+int(s.LitLen)] {
			litLenFreq[b]++
		}
		pos += int(s.LitLen) + int(s.MatchLen)
		if s.MatchLen > 0 {
			hasMatch = true
			litLenFreq[firstLenSym+int(lengthCode(int(s.MatchLen)))]++
			distFreq[distCode(int(s.Offset))]++
		}
	}
	if pos != len(content) {
		return nil, fmt.Errorf("zlibx: internal: parse covers %d of %d bytes", pos, len(content))
	}
	litLenFreq[eobSym]++

	litLens := e.litLens[:]
	litCodes := e.litCodes[:]
	if err := e.build.BuildLengths(litLens, litLenFreq, maxCodeBits); err != nil {
		return nil, err
	}
	if err := huffman.CanonicalCodesInto(litCodes, litLens); err != nil {
		return nil, err
	}
	distLens := e.distLens[:]
	distCodes := e.distCodes[:]
	if hasMatch {
		if err := e.build.BuildLengths(distLens, distFreq, maxCodeBits); err != nil {
			return nil, err
		}
		if err := huffman.CanonicalCodesInto(distCodes, distLens); err != nil {
			return nil, err
		}
	} else {
		for i := range distLens {
			distLens[i] = 0
		}
	}

	w := &e.w
	w.Reset()
	writeTable(w, litLens)
	writeTable(w, distLens)

	emit := func(codes []uint32, lens []uint8, sym int) {
		w.WriteBits(uint64(huffman.ReverseBits(codes[sym], lens[sym])), uint(lens[sym]))
	}
	pos = 0
	for _, s := range seqs {
		for _, b := range content[pos : pos+int(s.LitLen)] {
			emit(litCodes, litLens, int(b))
		}
		pos += int(s.LitLen) + int(s.MatchLen)
		if s.MatchLen == 0 {
			continue
		}
		// One match token is ≤42 bits (12+5+12+13); after a Carry the
		// accumulator holds <8, so the whole group fits one carry cycle.
		w.Carry()
		lc := lengthCode(int(s.MatchLen))
		ls := firstLenSym + int(lc)
		w.Add(uint64(huffman.ReverseBits(litCodes[ls], litLens[ls])), uint(litLens[ls]))
		w.Add(uint64(int(s.MatchLen)-int(lengthBase[lc])), uint(lengthExtra[lc]))
		dc := distCode(int(s.Offset))
		w.Add(uint64(huffman.ReverseBits(distCodes[dc], distLens[dc])), uint(distLens[dc]))
		w.Add(uint64(int(s.Offset)-int(distBase[dc])), uint(distExtra[dc]))
		w.Carry()
	}
	emit(litCodes, litLens, eobSym)
	return w.Flush(), nil
}

// decTable is a flat lookup decoder for ≤maxCodeBits codes. The zero value
// is empty; (re)build it with init, which reuses the entry slab.
type decTable struct {
	entries []uint32 // sym<<8 | len; len 0 = invalid
}

// init (re)builds the lookup table in place from code lengths. codes is
// caller-provided scratch with len(codes) ≥ len(lengths).
func (t *decTable) init(lengths []uint8, codes []uint32) error {
	if err := huffman.CanonicalCodesInto(codes[:len(lengths)], lengths); err != nil {
		return err
	}
	if cap(t.entries) < 1<<maxCodeBits {
		t.entries = make([]uint32, 1<<maxCodeBits)
	} else {
		t.entries = t.entries[:1<<maxCodeBits]
		clear(t.entries)
	}
	for sym, l := range lengths {
		if l == 0 {
			continue
		}
		if l > maxCodeBits {
			return ErrCorrupt
		}
		rev := huffman.ReverseBits(codes[sym], l)
		step := uint32(1) << l
		for idx := rev; idx < 1<<maxCodeBits; idx += step {
			t.entries[idx] = uint32(sym)<<8 | uint32(l)
		}
	}
	return nil
}

// decode reads one symbol with the branch-reduced peek/consume split; a
// false second return marks an invalid code. The caller refills the
// reader and checks Overrun once per token.
func (t *decTable) decode(r *bits.Reader64) (int, bool) {
	e := t.entries[r.Peek(maxCodeBits)]
	l := e & 0xff
	r.Consume(uint(l))
	return int(e >> 8), l != 0
}

// Decoder decompresses payloads, reusing its Huffman lookup tables and
// length scratch across calls so a warmed Decoder performs zero heap
// allocations per payload. The zero value is ready to use; a Decoder is not
// safe for concurrent use.
type Decoder struct {
	litTab   decTable
	distTab  decTable
	litLens  [numLitLen]uint8
	distLens [numDist]uint8
	codes    [numLitLen]uint32 // canonical-code scratch for table builds
}

// NewDecoder returns an empty Decoder.
func NewDecoder() *Decoder { return &Decoder{} }

// Decompress decodes a payload produced by Compress, appending to dst.
func Decompress(dst, src []byte) ([]byte, error) {
	var d Decoder
	return d.Decompress(dst, src)
}

// Decompress decodes a payload produced by Compress, appending to dst.
func (d *Decoder) Decompress(dst, src []byte) ([]byte, error) {
	contentSize, n := binary.Uvarint(src)
	if n <= 0 || contentSize > 1<<31 {
		return nil, ErrCorrupt
	}
	pos := n
	base := len(dst)
	out := dst
	for {
		if pos >= len(src) {
			return nil, ErrCorrupt
		}
		hdr := src[pos]
		pos++
		last := hdr&1 != 0
		typ := int(hdr >> 1)
		switch typ {
		case typeStored:
			sz, k := binary.Uvarint(src[pos:])
			if k <= 0 || pos+k+int(sz) > len(src) {
				return nil, ErrCorrupt
			}
			pos += k
			out = append(out, src[pos:pos+int(sz)]...)
			pos += int(sz)
		case typeDynamic:
			sz, k := binary.Uvarint(src[pos:])
			if k <= 0 || pos+k+int(sz) > len(src) {
				return nil, ErrCorrupt
			}
			pos += k
			var err error
			out, err = d.decodeDynamic(out, base, src[pos:pos+int(sz)])
			if err != nil {
				return nil, err
			}
			pos += int(sz)
		default:
			return nil, ErrCorrupt
		}
		if len(out)-base > int(contentSize) {
			return nil, ErrCorrupt
		}
		if last {
			break
		}
	}
	if len(out)-base != int(contentSize) {
		return nil, ErrCorrupt
	}
	if pos != len(src) {
		return nil, ErrCorrupt
	}
	return out, nil
}

func (d *Decoder) decodeDynamic(out []byte, base int, payload []byte) ([]byte, error) {
	var rv bits.Reader64
	rv.Init(payload)
	r := &rv
	if err := readTable(r, d.litLens[:]); err != nil {
		return nil, err
	}
	if err := readTable(r, d.distLens[:]); err != nil {
		return nil, err
	}
	if err := d.litTab.init(d.litLens[:], d.codes[:]); err != nil {
		return nil, ErrCorrupt
	}
	var distTab *decTable
	hasDist := false
	for _, l := range d.distLens {
		if l > 0 {
			hasDist = true
			break
		}
	}
	if hasDist {
		if err := d.distTab.init(d.distLens[:], d.codes[:]); err != nil {
			return nil, ErrCorrupt
		}
		distTab = &d.distTab
	}
	litTab := &d.litTab
	for {
		// One refill covers a whole token: literal ≤12 bits, match ≤42
		// (12+5+12+13). The per-iteration Overrun check terminates corrupt
		// streams whose zero-extended tail keeps decoding as valid codes.
		r.Refill()
		if r.Overrun() {
			return nil, ErrCorrupt
		}
		sym, ok := litTab.decode(r)
		if !ok {
			return nil, ErrCorrupt
		}
		switch {
		case sym < 256:
			out = append(out, byte(sym))
		case sym == eobSym:
			if r.Overrun() {
				return nil, ErrCorrupt
			}
			return out, nil
		default:
			lc := sym - firstLenSym
			if lc >= len(lengthBase) {
				return nil, ErrCorrupt
			}
			matchLen := int(lengthBase[lc]) + int(r.ReadBits(uint(lengthExtra[lc])))
			if distTab == nil {
				return nil, ErrCorrupt
			}
			dc, ok := distTab.decode(r)
			if !ok {
				return nil, ErrCorrupt
			}
			offset := int(distBase[dc]) + int(r.ReadBits(uint(distExtra[dc])))
			if offset > len(out)-base {
				return nil, ErrCorrupt
			}
			// DEFLATE doesn't carry the decompressed size, so there is no
			// one-shot slack reservation; wildcopy.Match grows as it goes.
			out = wildcopy.Match(out, offset, matchLen)
		}
	}
}
