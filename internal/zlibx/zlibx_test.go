package zlibx

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func compressible(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"deflate", "huffman", "distance", "literal", "window", "zlib", "dynamic", "stored"}
	var buf bytes.Buffer
	for buf.Len() < n {
		buf.WriteString(words[rng.Intn(len(words))])
		buf.WriteByte(' ')
	}
	return buf.Bytes()[:n]
}

func roundtrip(t *testing.T, level int, src []byte) []byte {
	t.Helper()
	e, err := NewEncoder(level)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Compress(nil, src)
	if err != nil {
		t.Fatalf("level %d size %d: %v", level, len(src), err)
	}
	back, err := Decompress(nil, out)
	if err != nil {
		t.Fatalf("level %d size %d: %v", level, len(src), err)
	}
	if !bytes.Equal(back, src) {
		t.Fatalf("level %d size %d: roundtrip mismatch", level, len(src))
	}
	return out
}

func TestRoundtripAllLevels(t *testing.T) {
	src := compressible(1, 200000) // multi-block
	for level := MinLevel; level <= MaxLevel; level++ {
		out := roundtrip(t, level, src)
		if level >= 1 && len(out) >= len(src) {
			t.Errorf("level %d: no compression (%d >= %d)", level, len(out), len(src))
		}
	}
}

func TestLevel0Stores(t *testing.T) {
	src := compressible(2, 10000)
	out := roundtrip(t, 0, src)
	if len(out) < len(src) {
		t.Fatalf("level 0 must store, got %d < %d", len(out), len(src))
	}
}

func TestRoundtripSizes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 10, 100, blockSize - 1, blockSize, blockSize + 1, 3*blockSize + 17} {
		roundtrip(t, 1, compressible(int64(n), n))
		roundtrip(t, 6, compressible(int64(n)+1, n))
		roundtrip(t, 9, compressible(int64(n)+2, n))
	}
}

func TestRoundtripIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := make([]byte, 80000)
	rng.Read(src)
	out := roundtrip(t, 6, src)
	if len(out) > len(src)+len(src)/50+64 {
		t.Fatalf("expansion too large: %d vs %d", len(out), len(src))
	}
}

func TestRoundtripSingleSymbol(t *testing.T) {
	src := bytes.Repeat([]byte{'a'}, 100000)
	out := roundtrip(t, 6, src)
	if len(out) > 2000 {
		t.Fatalf("run should compress hard, got %d", len(out))
	}
}

func TestHigherLevelBetterRatio(t *testing.T) {
	src := compressible(9, 1<<18)
	e1, _ := NewEncoder(1)
	e9, _ := NewEncoder(9)
	out1, err := e1.Compress(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	out9, err := e9.Compress(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(out9) > len(out1) {
		t.Errorf("level 9 (%d) worse than level 1 (%d)", len(out9), len(out1))
	}
}

func TestLevelValidation(t *testing.T) {
	if _, err := NewEncoder(-1); err == nil {
		t.Error("level -1 accepted")
	}
	if _, err := NewEncoder(10); err == nil {
		t.Error("level 10 accepted")
	}
	e, err := NewEncoder(4)
	if err != nil {
		t.Fatal(err)
	}
	if e.Level() != 4 {
		t.Errorf("Level() = %d", e.Level())
	}
}

func TestLengthAndDistCodes(t *testing.T) {
	for ml := minMatch; ml <= maxMatch; ml++ {
		c := lengthCode(ml)
		lo := int(lengthBase[c])
		hi := lo + 1<<lengthExtra[c]
		if ml < lo || ml >= hi {
			// Code 28 (258) is exact.
			if !(c == 28 && ml == 258) {
				t.Fatalf("lengthCode(%d) = %d covers [%d,%d)", ml, c, lo, hi)
			}
		}
	}
	for _, off := range []int{1, 2, 4, 5, 8, 9, 256, 257, 1024, 4097, 32768} {
		c := distCode(off)
		lo := int(distBase[c])
		hi := lo + 1<<distExtra[c]
		if off < lo || off >= hi {
			t.Fatalf("distCode(%d) = %d covers [%d,%d)", off, c, lo, hi)
		}
	}
}

func TestDecompressCorrupt(t *testing.T) {
	src := compressible(11, 30000)
	e, _ := NewEncoder(6)
	out, err := e.Compress(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]byte{
		nil,
		{0xff, 0xff},
		out[:len(out)/3],
		append(append([]byte{}, out...), 9, 9),
	}
	for i, c := range cases {
		if _, err := Decompress(nil, c); err == nil {
			t.Errorf("case %d decoded successfully", i)
		}
	}
}

func TestQuickRoundtrip(t *testing.T) {
	f := func(seed int64, size uint16, levelSel, noise uint8) bool {
		n := int(size) % 30000
		src := compressible(seed, n)
		rng := rand.New(rand.NewSource(seed ^ 7))
		for k := 0; k < n*int(noise)/1024; k++ {
			src[rng.Intn(n)] = byte(rng.Intn(256))
		}
		level := int(levelSel) % (MaxLevel + 1)
		e, err := NewEncoder(level)
		if err != nil {
			return false
		}
		out, err := e.Compress(nil, src)
		if err != nil {
			return false
		}
		back, err := Decompress(nil, out)
		return err == nil && bytes.Equal(back, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress(b *testing.B) {
	src := compressible(1, 1<<18)
	for _, level := range []int{1, 6, 9} {
		b.Run(string(rune('0'+level)), func(b *testing.B) {
			e, err := NewEncoder(level)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(src)))
			var out []byte
			for i := 0; i < b.N; i++ {
				out, err = e.Compress(out[:0], src)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecompress(b *testing.B) {
	src := compressible(1, 1<<18)
	e, _ := NewEncoder(6)
	out, err := e.Compress(nil, src)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	var back []byte
	for i := 0; i < b.N; i++ {
		back, err = Decompress(back[:0], out)
		if err != nil {
			b.Fatal(err)
		}
	}
}
