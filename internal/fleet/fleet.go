// Package fleet models a datacenter fleet and reproduces the paper's
// fleet-level characterization pipeline (§III): services are profiled by
// sampling call stacks, samples landing in compression functions are
// filtered and aggregated by algorithm, category, level, and
// compression-vs-decompression direction.
//
// The paper's raw inputs — per-service cycle volumes — are proprietary, so
// DefaultFleet ships service profiles *calibrated* to the paper's reported
// aggregates (4.6% of fleet cycles in compression, Zstd ≫ LZ4 ≈ Zlib,
// category Zstd shares spanning 1.8–21.2%, levels 1-4 holding >50% of
// cycles). What is real: the codec work is measured on this machine per
// (algorithm, level, block size, data kind) to derive byte volumes, and the
// reported numbers come out of a simulated sampling profiler with
// configurable sample count, exactly like the 30-day continuous profiling
// infrastructure the paper used. See DESIGN.md §4 for the calibrated vs
// measured split.
package fleet

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/corpus"
	"github.com/datacomp/datacomp/internal/orc"
	"github.com/datacomp/datacomp/internal/stats"
	"github.com/datacomp/datacomp/internal/telemetry"
)

// Category is a service class, matching the paper's taxonomy (§III-A).
type Category string

// The six categories of the fleet characterization.
const (
	Ads           Category = "ads"
	Cache         Category = "cache"
	DataWarehouse Category = "data-warehouse"
	Feed          Category = "feed"
	KeyValueStore Category = "key-value-store"
	Web           Category = "web"
)

// Categories lists all categories in report order.
func Categories() []Category {
	return []Category{Ads, Cache, DataWarehouse, Feed, KeyValueStore, Web}
}

// DataKind selects the synthetic data family a use compresses.
type DataKind string

// Data kinds exercised by the fleet.
const (
	KindWeb       DataKind = "web"
	KindFeed      DataKind = "feed"
	KindAds       DataKind = "ads"
	KindCacheItem DataKind = "cacheitem"
	KindORC       DataKind = "orc"
	KindSST       DataKind = "sst"
)

// Use is one compression configuration a service exercises.
type Use struct {
	Algorithm string
	Level     int
	// BlockSize is the typical input size per call (Fig 5's distribution).
	BlockSize int
	Kind      DataKind
	// CycleShare is this use's share of the service's compression cycles.
	CycleShare float64
	// CompressShare splits the use's cycles between compression and
	// decompression (Fig 3).
	CompressShare float64
}

// Service is one fleet service profile.
type Service struct {
	Name     string
	Category Category
	// CycleWeight is the service's share of total fleet cycles.
	CycleWeight float64
	// CompFrac is the fraction of the service's cycles spent in
	// (de)compression.
	CompFrac float64
	Uses     []Use
}

// Validate checks that shares are sane.
func (s Service) Validate() error {
	if s.CycleWeight < 0 || s.CompFrac < 0 || s.CompFrac > 1 {
		return fmt.Errorf("fleet: service %s has invalid weights", s.Name)
	}
	total := 0.0
	for _, u := range s.Uses {
		if u.CycleShare < 0 || u.CompressShare < 0 || u.CompressShare > 1 {
			return fmt.Errorf("fleet: service %s use %s has invalid shares", s.Name, u.Algorithm)
		}
		if _, ok := codec.Lookup(u.Algorithm); !ok {
			return fmt.Errorf("fleet: service %s uses unknown codec %s", s.Name, u.Algorithm)
		}
		total += u.CycleShare
	}
	if len(s.Uses) > 0 && (total < 0.99 || total > 1.01) {
		return fmt.Errorf("fleet: service %s use shares sum to %.3f", s.Name, total)
	}
	return nil
}

// DefaultFleet returns the calibrated fleet (14 services across the six
// categories). The weights reproduce the paper's headline aggregates; see
// the package comment.
func DefaultFleet() []Service {
	return []Service{
		{
			Name: "web-frontend", Category: Web, CycleWeight: 0.32, CompFrac: 0.022,
			Uses: []Use{
				{Algorithm: "zstd", Level: 1, BlockSize: 8 << 10, Kind: KindWeb, CycleShare: 0.80, CompressShare: 0.30},
				{Algorithm: "zlib", Level: 6, BlockSize: 8 << 10, Kind: KindWeb, CycleShare: 0.20, CompressShare: 0.40},
			},
		},
		{
			Name: "web-api", Category: Web, CycleWeight: 0.08, CompFrac: 0.030,
			Uses: []Use{
				{Algorithm: "zstd", Level: 1, BlockSize: 4 << 10, Kind: KindWeb, CycleShare: 0.55, CompressShare: 0.35},
				{Algorithm: "zlib", Level: 6, BlockSize: 4 << 10, Kind: KindWeb, CycleShare: 0.45, CompressShare: 0.45},
			},
		},
		{
			Name: "feed-ranker", Category: Feed, CycleWeight: 0.14, CompFrac: 0.024,
			Uses: []Use{
				{Algorithm: "zstd", Level: 1, BlockSize: 4 << 10, Kind: KindFeed, CycleShare: 0.85, CompressShare: 0.25},
				{Algorithm: "lz4", Level: 1, BlockSize: 4 << 10, Kind: KindFeed, CycleShare: 0.15, CompressShare: 0.30},
			},
		},
		{
			Name: "feed-aggregator", Category: Feed, CycleWeight: 0.08, CompFrac: 0.030,
			Uses: []Use{
				{Algorithm: "zstd", Level: 2, BlockSize: 16 << 10, Kind: KindFeed, CycleShare: 1.0, CompressShare: 0.30},
			},
		},
		{
			Name: "ads-serving", Category: Ads, CycleWeight: 0.10, CompFrac: 0.042,
			Uses: []Use{
				{Algorithm: "zstd", Level: 4, BlockSize: 128 << 10, Kind: KindAds, CycleShare: 1.0, CompressShare: 0.55},
			},
		},
		{
			Name: "ads-feature-log", Category: Ads, CycleWeight: 0.04, CompFrac: 0.030,
			Uses: []Use{
				{Algorithm: "zstd", Level: 1, BlockSize: 64 << 10, Kind: KindAds, CycleShare: 0.85, CompressShare: 0.60},
				{Algorithm: "lz4", Level: 1, BlockSize: 64 << 10, Kind: KindAds, CycleShare: 0.15, CompressShare: 0.60},
			},
		},
		{
			Name: "cache1", Category: Cache, CycleWeight: 0.07, CompFrac: 0.052,
			Uses: []Use{
				{Algorithm: "zstd", Level: 3, BlockSize: 512, Kind: KindCacheItem, CycleShare: 1.0, CompressShare: 0.30},
			},
		},
		{
			Name: "cache2", Category: Cache, CycleWeight: 0.05, CompFrac: 0.045,
			Uses: []Use{
				{Algorithm: "zstd", Level: 3, BlockSize: 1 << 10, Kind: KindCacheItem, CycleShare: 0.85, CompressShare: 0.30},
				{Algorithm: "lz4", Level: 1, BlockSize: 1 << 10, Kind: KindCacheItem, CycleShare: 0.15, CompressShare: 0.35},
			},
		},
		{
			Name: "dw-ingestion", Category: DataWarehouse, CycleWeight: 0.025, CompFrac: 0.285,
			Uses: []Use{
				{Algorithm: "zstd", Level: 7, BlockSize: 256 << 10, Kind: KindORC, CycleShare: 1.0, CompressShare: 0.80},
			},
		},
		{
			Name: "dw-shuffle", Category: DataWarehouse, CycleWeight: 0.020, CompFrac: 0.300,
			Uses: []Use{
				{Algorithm: "zstd", Level: 1, BlockSize: 256 << 10, Kind: KindORC, CycleShare: 1.0, CompressShare: 0.73},
			},
		},
		{
			Name: "dw-spark", Category: DataWarehouse, CycleWeight: 0.020, CompFrac: 0.135,
			Uses: []Use{
				{Algorithm: "zstd", Level: 1, BlockSize: 256 << 10, Kind: KindORC, CycleShare: 0.70, CompressShare: 0.45},
				{Algorithm: "zstd", Level: 7, BlockSize: 256 << 10, Kind: KindORC, CycleShare: 0.30, CompressShare: 0.75},
			},
		},
		{
			Name: "dw-ml", Category: DataWarehouse, CycleWeight: 0.015, CompFrac: 0.080,
			Uses: []Use{
				{Algorithm: "zstd", Level: 1, BlockSize: 256 << 10, Kind: KindORC, CycleShare: 1.0, CompressShare: 0.45},
			},
		},
		{
			Name: "kvstore1", Category: KeyValueStore, CycleWeight: 0.050, CompFrac: 0.150,
			Uses: []Use{
				{Algorithm: "zstd", Level: 1, BlockSize: 16 << 10, Kind: KindSST, CycleShare: 0.90, CompressShare: 0.50},
				{Algorithm: "zstd", Level: 5, BlockSize: 64 << 10, Kind: KindSST, CycleShare: 0.10, CompressShare: 0.85},
			},
		},
		{
			Name: "kv-backup", Category: KeyValueStore, CycleWeight: 0.020, CompFrac: 0.080,
			Uses: []Use{
				{Algorithm: "lz4", Level: 3, BlockSize: 64 << 10, Kind: KindSST, CycleShare: 0.60, CompressShare: 0.70},
				{Algorithm: "zstd", Level: 5, BlockSize: 64 << 10, Kind: KindSST, CycleShare: 0.40, CompressShare: 0.75},
			},
		},
	}
}

// GenerateKind produces sample data of the kind sized for measurement.
func GenerateKind(kind DataKind, seed int64, size int) ([]byte, error) {
	switch kind {
	case KindWeb:
		return corpus.LogLines(seed, size), nil
	case KindFeed:
		// Feed payloads: ranked story metadata, JSON-ish.
		types := corpus.DefaultItemTypes()
		var out []byte
		rng := rand.New(rand.NewSource(seed))
		for len(out) < size {
			out = append(out, types[1].Item(rng)...)
		}
		return out[:size], nil
	case KindAds:
		var out []byte
		rng := rand.New(rand.NewSource(seed))
		for len(out) < size {
			out = append(out, corpus.ModelB.Request(rng)...)
		}
		return out[:size], nil
	case KindCacheItem:
		types := corpus.DefaultItemTypes()
		var out []byte
		rng := rand.New(rand.NewSource(seed))
		for len(out) < size {
			out = append(out, types[0].Item(rng)...)
		}
		return out[:size], nil
	case KindORC:
		cols := []orc.Column{
			{Name: "ts", Kind: orc.Int64, Ints: corpus.TimestampColumn(seed, size/24)},
			{Name: "id", Kind: orc.Int64, Ints: corpus.IDColumn(seed+1, size/24)},
			{Name: "ev", Kind: orc.String, Strings: corpus.CategoryColumn(seed+2, size/24)},
		}
		enc, err := orc.EncodeStripe(cols)
		if err != nil {
			return nil, err
		}
		for len(enc) < size {
			enc = append(enc, enc...)
		}
		return enc[:size], nil
	case KindSST:
		return corpus.SSTSample(seed, size), nil
	default:
		return nil, fmt.Errorf("fleet: unknown data kind %q", kind)
	}
}

// useKey identifies a distinct measurement configuration.
type useKey struct {
	algo  string
	level int
	block int
	kind  DataKind
}

// UseMetrics is the measured performance of one configuration.
type UseMetrics struct {
	Algorithm      string
	Level          int
	BlockSize      int
	Kind           DataKind
	Ratio          float64
	CompressMBps   float64
	DecompressMBps float64
}

// Split is a compression/decompression cycle split.
type Split struct {
	CompressPct   float64
	DecompressPct float64
}

// Report is the output of a fleet profiling run.
type Report struct {
	// TotalCompressionPct is the share of fleet cycles in compression
	// functions (paper: 4.6%).
	TotalCompressionPct float64
	// AlgorithmPct is per-algorithm share of fleet cycles (paper: zstd
	// 3.9%, lz4 0.4%, zlib 0.3%).
	AlgorithmPct map[string]float64
	// CategoryZstdPct is Fig 2: zstd share of each category's cycles.
	CategoryZstdPct map[Category]float64
	// CategorySplit is Fig 3 per category; FleetSplit is the fleet row.
	CategorySplit map[Category]Split
	FleetSplit    Split
	// LevelCyclesPct is Fig 4: share of zstd cycles per level.
	LevelCyclesPct map[int]float64
	// ServiceZstdPct is the per-service zstd share (feeds Fig 6).
	ServiceZstdPct map[string]float64
	// BlockSizes is Fig 5: one observation per service at its
	// cycle-weighted mean block size.
	BlockSizes *stats.SizeHistogram
	// Measured holds the real codec measurements backing the volumes.
	Measured []UseMetrics
	// Samples is the number of profiler samples drawn.
	Samples int
	// Cycles is the raw sample aggregation the report was computed from —
	// the same substrate telemetry.Profiler fills when sampling live
	// engines, so downstream tooling can consume simulated and live
	// profiles uniformly.
	Cycles *telemetry.CycleProfile
}

// Profiler runs the sampled-stack emulation.
type Profiler struct {
	// Samples is the number of call-stack samples to draw (default 2e6).
	Samples int
	// Seed drives sampling and data generation.
	Seed int64
	// MeasureBytes is the data volume per configuration measurement
	// (default 1 MiB).
	MeasureBytes int
}

func (p *Profiler) fill() {
	if p.Samples == 0 {
		p.Samples = 2_000_000
	}
	if p.MeasureBytes == 0 {
		p.MeasureBytes = 1 << 20
	}
}

// stackBucket is one (service, function) attribution target. Sampled hits
// are accumulated in a telemetry.CycleProfile keyed by the bucket's key,
// not here — the simulated profiler and the live telemetry.Profiler share
// that aggregation substrate.
type stackBucket struct {
	key    telemetry.SampleKey
	weight float64 // exact cycle share
}

// Profile measures every configuration in the fleet and emulates the
// sampling profiler over the calibrated cycle distribution.
func (p *Profiler) Profile(fleet []Service) (*Report, error) {
	p.fill()
	for _, s := range fleet {
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}

	// Normalize fleet weights.
	totalWeight := 0.0
	for _, s := range fleet {
		totalWeight += s.CycleWeight
	}
	if totalWeight <= 0 {
		return nil, fmt.Errorf("fleet: zero total cycle weight")
	}

	// Measurement phase: run every distinct configuration on real data.
	measured := map[useKey]UseMetrics{}
	for _, s := range fleet {
		for _, u := range s.Uses {
			k := useKey{u.Algorithm, u.Level, u.BlockSize, u.Kind}
			if _, ok := measured[k]; ok {
				continue
			}
			eng, err := codec.NewEngine(u.Algorithm, codec.WithLevel(u.Level))
			if err != nil {
				return nil, fmt.Errorf("fleet: %s: %w", s.Name, err)
			}
			data, err := GenerateKind(u.Kind, p.Seed+int64(len(measured)), p.MeasureBytes)
			if err != nil {
				return nil, err
			}
			m, err := codec.Measure(eng, [][]byte{data}, u.BlockSize, 1)
			if err != nil {
				return nil, fmt.Errorf("fleet: measuring %s L%d on %s: %w", u.Algorithm, u.Level, u.Kind, err)
			}
			measured[k] = UseMetrics{
				Algorithm:      u.Algorithm,
				Level:          u.Level,
				BlockSize:      u.BlockSize,
				Kind:           u.Kind,
				Ratio:          m.Ratio(),
				CompressMBps:   m.CompressMBps(),
				DecompressMBps: m.DecompressMBps(),
			}
		}
	}

	// Build the exact cycle distribution over stack buckets.
	var buckets []stackBucket
	for _, s := range fleet {
		w := s.CycleWeight / totalWeight
		app := w * (1 - s.CompFrac)
		buckets = append(buckets, stackBucket{
			key:    telemetry.SampleKey{Service: s.Name, Group: string(s.Category)},
			weight: app,
		})
		for _, u := range s.Uses {
			base := w * s.CompFrac * u.CycleShare
			buckets = append(buckets,
				stackBucket{
					key: telemetry.SampleKey{Service: s.Name, Group: string(s.Category),
						Codec: u.Algorithm, Level: u.Level, Dir: telemetry.DirCompress},
					weight: base * u.CompressShare,
				},
				stackBucket{
					key: telemetry.SampleKey{Service: s.Name, Group: string(s.Category),
						Codec: u.Algorithm, Level: u.Level, Dir: telemetry.DirDecompress},
					weight: base * (1 - u.CompressShare),
				},
			)
		}
	}

	// Sampling phase: draw stack samples from the distribution into the
	// shared cycle-profile aggregation.
	profile := telemetry.NewCycleProfile()
	rng := rand.New(rand.NewSource(p.Seed))
	cum := make([]float64, len(buckets))
	total := 0.0
	for i, b := range buckets {
		total += b.weight
		cum[i] = total
	}
	for i := 0; i < p.Samples; i++ {
		x := rng.Float64() * total
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		profile.Add(buckets[lo].key, 1)
	}

	// Aggregation phase (everything below uses the sampled counts, as the
	// paper's pipeline aggregates sampled stacks).
	r := &Report{
		AlgorithmPct:    map[string]float64{},
		CategoryZstdPct: map[Category]float64{},
		CategorySplit:   map[Category]Split{},
		LevelCyclesPct:  map[int]float64{},
		ServiceZstdPct:  map[string]float64{},
		BlockSizes:      stats.NewSizeHistogram(),
		Samples:         p.Samples,
		Cycles:          profile,
	}
	catTotal := map[Category]float64{}
	catZstd := map[Category]float64{}
	catComp := map[Category]float64{}
	catDecomp := map[Category]float64{}
	svcTotal := map[string]float64{}
	svcZstd := map[string]float64{}
	zstdTotal := 0.0
	levelCount := map[int]float64{}
	var fleetComp, fleetDecomp float64

	// Fleet-wide algorithm shares come straight off the profile's
	// classifier-based grouping (application samples count toward the
	// denominator, as they do for a real sampling profiler).
	for algo, share := range profile.ShareBy(func(k telemetry.SampleKey) (string, bool) {
		return k.Codec, k.Codec != ""
	}) {
		r.AlgorithmPct[algo] = share * 100
		r.TotalCompressionPct += share * 100
	}

	for k, samples := range profile.Samples() {
		c := float64(samples)
		cat := Category(k.Group)
		catTotal[cat] += c
		svcTotal[k.Service] += c
		if k.Codec == "" {
			continue
		}
		if k.Dir == telemetry.DirCompress {
			fleetComp += c
			catComp[cat] += c
		} else {
			fleetDecomp += c
			catDecomp[cat] += c
		}
		if k.Codec == "zstd" {
			catZstd[cat] += c
			svcZstd[k.Service] += c
			zstdTotal += c
			levelCount[k.Level] += c
		}
	}
	for _, cat := range Categories() {
		if catTotal[cat] > 0 {
			r.CategoryZstdPct[cat] = catZstd[cat] / catTotal[cat] * 100
		}
		if cd := catComp[cat] + catDecomp[cat]; cd > 0 {
			r.CategorySplit[cat] = Split{
				CompressPct:   catComp[cat] / cd * 100,
				DecompressPct: catDecomp[cat] / cd * 100,
			}
		}
	}
	if cd := fleetComp + fleetDecomp; cd > 0 {
		r.FleetSplit = Split{CompressPct: fleetComp / cd * 100, DecompressPct: fleetDecomp / cd * 100}
	}
	for lvl, c := range levelCount {
		if zstdTotal > 0 {
			r.LevelCyclesPct[lvl] = c / zstdTotal * 100
		}
	}
	for svc, tot := range svcTotal {
		if tot > 0 {
			r.ServiceZstdPct[svc] = svcZstd[svc] / tot * 100
		}
	}
	// Fig 5: one histogram observation per service at its cycle-weighted
	// mean block size.
	for _, s := range fleet {
		mean := 0.0
		for _, u := range s.Uses {
			mean += float64(u.BlockSize) * u.CycleShare
		}
		r.BlockSizes.Observe(int(mean))
	}
	keys := make([]useKey, 0, len(measured))
	for k := range measured {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.algo != b.algo {
			return a.algo < b.algo
		}
		if a.level != b.level {
			return a.level < b.level
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		return a.block < b.block
	})
	for _, k := range keys {
		r.Measured = append(r.Measured, measured[k])
	}
	return r, nil
}

// LowLevelCyclesPct sums the Fig 4 shares for levels 1-4 (the paper: >50%,
// even >80% for Feed).
func (r *Report) LowLevelCyclesPct() float64 {
	total := 0.0
	for lvl, pct := range r.LevelCyclesPct {
		if lvl >= 1 && lvl <= 4 {
			total += pct
		}
	}
	return total
}

// nominalGHz is the clock used to convert measured seconds into "cycles"
// for narrative reporting; only ratios are ever reported.
const nominalGHz = 2.5

// CyclesPerByte converts a measured throughput into cycles/byte at the
// nominal clock.
func CyclesPerByte(mbps float64) float64 {
	if mbps <= 0 {
		return 0
	}
	return nominalGHz * 1e9 / (mbps * 1e6)
}
