package fleet

import (
	"math"
	"testing"
)

func defaultReport(t *testing.T) *Report {
	t.Helper()
	p := &Profiler{Samples: 500_000, Seed: 1, MeasureBytes: 256 << 10}
	r, err := p.Profile(DefaultFleet())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDefaultFleetValid(t *testing.T) {
	for _, s := range DefaultFleet() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestFleetHeadlineAggregates(t *testing.T) {
	r := defaultReport(t)
	// Paper: 4.6% of fleet cycles in compression.
	if r.TotalCompressionPct < 3.5 || r.TotalCompressionPct > 6.0 {
		t.Errorf("total compression %% = %.2f, want ≈4.6", r.TotalCompressionPct)
	}
	// Paper: zstd 3.9%, lz4 0.4%, zlib 0.3%: zstd dominant.
	if r.AlgorithmPct["zstd"] < 2*(r.AlgorithmPct["lz4"]+r.AlgorithmPct["zlib"]) {
		t.Errorf("zstd should dominate: %v", r.AlgorithmPct)
	}
	if r.AlgorithmPct["lz4"] <= 0 || r.AlgorithmPct["zlib"] <= 0 {
		t.Errorf("lz4/zlib should be present: %v", r.AlgorithmPct)
	}
}

func TestCategoryZstdSpreadFig2(t *testing.T) {
	r := defaultReport(t)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, cat := range Categories() {
		v := r.CategoryZstdPct[cat]
		if v <= 0 {
			t.Errorf("category %s has no zstd cycles", cat)
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	// Paper: considerable variance, 1.8% to 21.2%.
	if lo > 3.0 {
		t.Errorf("min category share %.2f, want ≈1.8", lo)
	}
	if hi < 15.0 || hi > 28.0 {
		t.Errorf("max category share %.2f, want ≈21.2", hi)
	}
	if r.CategoryZstdPct[DataWarehouse] < r.CategoryZstdPct[Web] {
		t.Error("data warehouse should out-consume web (paper: data-heavy categories highest)")
	}
}

func TestSplitFig3(t *testing.T) {
	r := defaultReport(t)
	for _, cat := range Categories() {
		s := r.CategorySplit[cat]
		if math.Abs(s.CompressPct+s.DecompressPct-100) > 0.1 {
			t.Errorf("%s split does not sum to 100: %+v", cat, s)
		}
	}
	// Cache/Feed/Web are read-heavy (decompression-dominated); DW
	// ingestion-heavy services skew toward compression.
	if r.CategorySplit[Cache].DecompressPct < 55 {
		t.Errorf("cache should be decompression-heavy: %+v", r.CategorySplit[Cache])
	}
	if r.CategorySplit[DataWarehouse].CompressPct < 55 {
		t.Errorf("warehouse should be compression-heavy: %+v", r.CategorySplit[DataWarehouse])
	}
	if math.Abs(r.FleetSplit.CompressPct+r.FleetSplit.DecompressPct-100) > 0.1 {
		t.Errorf("fleet split: %+v", r.FleetSplit)
	}
}

func TestLevelUsageFig4(t *testing.T) {
	r := defaultReport(t)
	if low := r.LowLevelCyclesPct(); low < 50 {
		t.Errorf("levels 1-4 hold %.1f%% of zstd cycles, paper says >50%%", low)
	}
	total := 0.0
	for _, pct := range r.LevelCyclesPct {
		total += pct
	}
	if math.Abs(total-100) > 0.1 {
		t.Errorf("level shares sum to %.2f", total)
	}
	if r.LevelCyclesPct[7] <= 0 {
		t.Error("level 7 (ingestion) should appear")
	}
}

func TestBlockSizesFig5(t *testing.T) {
	r := defaultReport(t)
	if r.BlockSizes.Total() != int64(len(DefaultFleet())) {
		t.Fatalf("block size observations = %d", r.BlockSizes.Total())
	}
	// The paper's Fig 5 spans bytes to hundreds of KiB.
	if r.BlockSizes.FractionBelow(1<<10) <= 0 {
		t.Error("expected sub-KiB block sizes (cache items)")
	}
	if r.BlockSizes.FractionBelow(128<<10) >= 1 {
		t.Error("expected ≥128KiB block sizes (warehouse)")
	}
}

func TestMeasurementsPresent(t *testing.T) {
	r := defaultReport(t)
	if len(r.Measured) == 0 {
		t.Fatal("no measurements")
	}
	for _, m := range r.Measured {
		if m.Ratio <= 1.0 {
			t.Errorf("%s L%d on %s: ratio %.2f", m.Algorithm, m.Level, m.Kind, m.Ratio)
		}
		if m.CompressMBps <= 0 || m.DecompressMBps <= 0 {
			t.Errorf("%s L%d: speeds %v/%v", m.Algorithm, m.Level, m.CompressMBps, m.DecompressMBps)
		}
	}
}

func TestServiceZstdPct(t *testing.T) {
	r := defaultReport(t)
	if r.ServiceZstdPct["dw-shuffle"] < 20 {
		t.Errorf("dw-shuffle zstd%% = %.1f, want ≈30", r.ServiceZstdPct["dw-shuffle"])
	}
	if r.ServiceZstdPct["web-frontend"] > 5 {
		t.Errorf("web-frontend zstd%% = %.1f, want small", r.ServiceZstdPct["web-frontend"])
	}
}

func TestSamplingNoiseShrinksWithSamples(t *testing.T) {
	exactish := &Profiler{Samples: 4_000_000, Seed: 7, MeasureBytes: 64 << 10}
	noisy := &Profiler{Samples: 10_000, Seed: 7, MeasureBytes: 64 << 10}
	re, err := exactish.Profile(DefaultFleet())
	if err != nil {
		t.Fatal(err)
	}
	rn, err := noisy.Profile(DefaultFleet())
	if err != nil {
		t.Fatal(err)
	}
	// Both should land near the calibration target but the small-sample
	// run may wobble more.
	if math.Abs(re.TotalCompressionPct-4.6) > 1.0 {
		t.Errorf("high-sample estimate %.2f too far from 4.6", re.TotalCompressionPct)
	}
	if rn.TotalCompressionPct <= 0 {
		t.Error("low-sample estimate vanished")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := Service{Name: "x", Category: Web, CycleWeight: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative weight accepted")
	}
	bad2 := Service{Name: "y", Category: Web, CycleWeight: 0.1, CompFrac: 0.5,
		Uses: []Use{{Algorithm: "nope", CycleShare: 1.0}}}
	if err := bad2.Validate(); err == nil {
		t.Error("unknown codec accepted")
	}
	bad3 := Service{Name: "z", Category: Web, CycleWeight: 0.1, CompFrac: 0.5,
		Uses: []Use{{Algorithm: "zstd", CycleShare: 0.3}}}
	if err := bad3.Validate(); err == nil {
		t.Error("non-normalized use shares accepted")
	}
}

func TestGenerateKindAllKinds(t *testing.T) {
	for _, k := range []DataKind{KindWeb, KindFeed, KindAds, KindCacheItem, KindORC, KindSST} {
		data, err := GenerateKind(k, 1, 32<<10)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if len(data) != 32<<10 {
			t.Fatalf("%s: %d bytes", k, len(data))
		}
	}
	if _, err := GenerateKind("bogus", 1, 100); err == nil {
		t.Error("bogus kind accepted")
	}
}

func TestCyclesPerByte(t *testing.T) {
	if CyclesPerByte(0) != 0 {
		t.Error("zero speed should give zero")
	}
	// 2500 MB/s at 2.5GHz = 1 cycle/byte.
	if got := CyclesPerByte(2500); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("got %v", got)
	}
}
