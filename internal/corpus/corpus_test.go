package corpus

import (
	"bytes"
	"testing"

	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/stats"
)

// ratio compresses data with zstd level 3 and returns the ratio.
func ratio(t *testing.T, data []byte) float64 {
	t.Helper()
	eng, err := codec.NewEngine("zstd", codec.WithLevel(3))
	if err != nil {
		t.Fatal(err)
	}
	m, err := codec.Measure(eng, [][]byte{data}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m.Ratio()
}

func TestSilesiaMembersAndDeterminism(t *testing.T) {
	files := Silesia(1, 1<<16)
	if len(files) != 12 {
		t.Fatalf("got %d files", len(files))
	}
	again := Silesia(1, 1<<16)
	for i, f := range files {
		if len(f.Data) != 1<<16 {
			t.Fatalf("%s: size %d", f.Name, len(f.Data))
		}
		if !bytes.Equal(f.Data, again[i].Data) {
			t.Fatalf("%s: not deterministic", f.Name)
		}
	}
	different := Silesia(2, 1<<16)
	same := 0
	for i := range files {
		if bytes.Equal(files[i].Data, different[i].Data) {
			same++
		}
	}
	if same == len(files) {
		t.Fatal("seed has no effect")
	}
}

func TestSilesiaCompressibilitySpread(t *testing.T) {
	files := Silesia(3, 1<<17)
	ratios := map[string]float64{}
	for _, f := range files {
		ratios[f.Name] = ratio(t, f.Data)
	}
	// The paper's Fig 1 point: order-of-magnitude spread across data types.
	if ratios["xml"] < 4 {
		t.Errorf("xml should be highly compressible, ratio %.2f", ratios["xml"])
	}
	if ratios["sao"] > 2.0 {
		t.Errorf("sao should compress poorly, ratio %.2f", ratios["sao"])
	}
	if ratios["xml"] < 2.5*ratios["sao"] {
		t.Errorf("expected wide spread: xml %.2f vs sao %.2f", ratios["xml"], ratios["sao"])
	}
	if ratios["dickens"] < 1.5 {
		t.Errorf("text should compress, ratio %.2f", ratios["dickens"])
	}
}

func TestCacheItemSizesSkewSmall(t *testing.T) {
	for _, typ := range DefaultItemTypes() {
		items := CacheItems(7, typ, 3000)
		h := stats.NewSizeHistogram()
		for _, it := range items {
			h.Observe(len(it))
		}
		below1k := h.FractionBelow(1024)
		if typ.Name != "media_manifest" && below1k < 0.5 {
			t.Errorf("%s: only %.0f%% below 1KiB, want skew toward small", typ.Name, below1k*100)
		}
		if h.FractionBelow(1<<20) < 1.0 && typ.Size.Max <= 1<<20 {
			t.Errorf("%s: items above configured max", typ.Name)
		}
	}
}

func TestCacheItemsShareStructure(t *testing.T) {
	typ := DefaultItemTypes()[0]
	items := CacheItems(9, typ, 50)
	// Every item repeats the type skeleton.
	for _, it := range items {
		if !bytes.Contains(it, []byte(`"__type":"user_profile"`)) {
			t.Fatal("missing type tag")
		}
		if !bytes.Contains(it, []byte(`"user_id"`)) {
			t.Fatal("missing field skeleton")
		}
	}
}

func TestAdsModelShapes(t *testing.T) {
	models := AdsModels()
	if len(models) != 3 {
		t.Fatalf("got %d models", len(models))
	}
	reqA := ModelA.Requests(1, 2)
	reqB := ModelB.Requests(1, 2)
	if len(reqA[0]) <= len(reqB[0]) {
		t.Errorf("model A requests (%d) should exceed model B (%d)", len(reqA[0]), len(reqB[0]))
	}
	// C serializes the same shape differently: different bytes, different size.
	reqC := ModelC.Requests(1, 1)
	if bytes.Equal(reqB[0][:64], reqC[0][:64]) {
		t.Error("models B and C should serialize differently")
	}
}

func TestAdsSparseCompressesBetterThanDense(t *testing.T) {
	sparse := AdsModel{Name: "S", DenseFloats: 1024, SparseInts: 30000, SparseDensity: 0.03, Serialization: "raw"}
	dense := AdsModel{Name: "D", DenseFloats: 30000, SparseInts: 1024, SparseDensity: 0.5, Serialization: "raw"}
	rs := ratio(t, sparse.Requests(5, 1)[0])
	rd := ratio(t, dense.Requests(5, 1)[0])
	if rs <= rd {
		t.Errorf("sparse-heavy request should compress better: sparse %.2f dense %.2f", rs, rd)
	}
}

func TestKVPairsSorted(t *testing.T) {
	pairs := KVPairs(11, 5000)
	for i := 1; i < len(pairs); i++ {
		if bytes.Compare(pairs[i-1].Key, pairs[i].Key) > 0 {
			t.Fatalf("keys out of order at %d: %q > %q", i, pairs[i-1].Key, pairs[i].Key)
		}
	}
}

func TestSSTSampleSizeAndCompressibility(t *testing.T) {
	data := SSTSample(13, 1<<18)
	if len(data) != 1<<18 {
		t.Fatalf("size %d", len(data))
	}
	if r := ratio(t, data); r < 1.5 {
		t.Errorf("SST data should compress moderately, ratio %.2f", r)
	}
}

func TestWarehouseColumns(t *testing.T) {
	ts := TimestampColumn(1, 1000)
	for i := 1; i < len(ts); i++ {
		if ts[i] < ts[i-1] {
			t.Fatal("timestamps must be non-decreasing")
		}
	}
	ids := IDColumn(2, 1000)
	seen := map[int64]int{}
	for _, id := range ids {
		seen[id]++
	}
	if len(seen) == len(ids) {
		t.Error("IDs should repeat (zipf hot entities)")
	}
	cats := CategoryColumn(3, 1000)
	uniq := map[string]bool{}
	for _, c := range cats {
		uniq[c] = true
	}
	if len(uniq) > 6 {
		t.Errorf("categories should be low-cardinality, got %d", len(uniq))
	}
	flags := FlagColumn(4, 10000, 0.9)
	trues := 0
	for _, f := range flags {
		if f {
			trues++
		}
	}
	if trues < 8500 || trues > 9500 {
		t.Errorf("flag probability off: %d/10000", trues)
	}
	metrics := MetricColumn(5, 100)
	if len(metrics) != 100 {
		t.Fatal("wrong length")
	}
}

func TestTextGenDeterministic(t *testing.T) {
	a := NewTextGen(42, 1000, 1.2).Generate(10000)
	b := NewTextGen(42, 1000, 1.2).Generate(10000)
	if !bytes.Equal(a, b) {
		t.Fatal("text generation not deterministic")
	}
}

func TestGeneratorsProduceRequestedSize(t *testing.T) {
	gens := map[string]func(int64, int) []byte{
		"source":  SourceCode,
		"xml":     XML,
		"records": Records,
		"binary":  Binary,
		"smooth":  Smooth16,
		"stars":   StarCatalog,
		"logs":    LogLines,
	}
	for name, g := range gens {
		for _, n := range []int{100, 4096, 65536} {
			if got := g(1, n); len(got) != n {
				t.Errorf("%s(%d): got %d bytes", name, n, len(got))
			}
		}
	}
}
