// Package corpus generates the synthetic datasets that stand in for the
// proprietary production data of the reproduced paper (repro band 2/5: the
// measurement data is Meta-internal). Every generator is deterministic in
// its seed and is tuned to exhibit the redundancy structure the paper
// describes for its service class:
//
//   - Text/markup/source/database proxies for the Silesia-style benchmark
//     corpus (Fig 1).
//   - Typed small cache items with heavy inter-item structure but little
//     intra-item redundancy (Figs 8-11).
//   - Ads inference requests mixing dense float embeddings (hard to
//     compress) with sparse integer embeddings (mostly zeros; easy), in
//     three wire formats (Fig 12).
//   - Sorted key-value entries for SST blocks (Fig 13) and typed columns
//     for the ORC-style warehouse format (Fig 7).
package corpus

import (
	"bytes"
	"fmt"
	"math/rand"

	"github.com/datacomp/datacomp/internal/stats"
)

// TextGen produces word-soup text with Zipf-distributed vocabulary
// popularity, the workhorse behind every "natural text"-like proxy.
type TextGen struct {
	words [][]byte
	zipf  *stats.Zipf
	rng   *rand.Rand
}

// NewTextGen builds a generator with the given vocabulary size and Zipf
// exponent (s > 1; lower s = richer, less compressible text).
func NewTextGen(seed int64, vocab int, zipfS float64) *TextGen {
	rng := rand.New(rand.NewSource(seed))
	words := make([][]byte, vocab)
	for i := range words {
		n := 2 + rng.Intn(9)
		w := make([]byte, n)
		for j := range w {
			w[j] = byte('a' + rng.Intn(26))
		}
		words[i] = w
	}
	return &TextGen{
		words: words,
		zipf:  stats.NewZipf(rng, zipfS, uint64(vocab)),
		rng:   rng,
	}
}

// Generate appends n bytes of text to a fresh buffer.
func (g *TextGen) Generate(n int) []byte {
	var buf bytes.Buffer
	buf.Grow(n + 16)
	col := 0
	for buf.Len() < n {
		w := g.words[g.zipf.Sample()-1]
		buf.Write(w)
		col += len(w) + 1
		if col > 70 {
			buf.WriteByte('\n')
			col = 0
		} else {
			buf.WriteByte(' ')
		}
	}
	return buf.Bytes()[:n]
}

// SourceCode produces program-like text: indented lines, repeated
// identifiers, punctuation structure.
func SourceCode(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	idents := make([]string, 120)
	for i := range idents {
		l := 3 + rng.Intn(12)
		b := make([]byte, l)
		for j := range b {
			b[j] = byte('a' + rng.Intn(26))
		}
		idents[i] = string(b)
	}
	keywords := []string{"if", "for", "return", "func", "var", "int", "err", "nil", "range", "struct"}
	var buf bytes.Buffer
	buf.Grow(n + 64)
	depth := 0
	for buf.Len() < n {
		for i := 0; i < depth; i++ {
			buf.WriteByte('\t')
		}
		switch rng.Intn(6) {
		case 0:
			fmt.Fprintf(&buf, "%s %s := %s(%s)\n", keywords[rng.Intn(len(keywords))],
				idents[rng.Intn(len(idents))], idents[rng.Intn(len(idents))], idents[rng.Intn(len(idents))])
		case 1:
			fmt.Fprintf(&buf, "if %s != nil {\n", idents[rng.Intn(20)])
			depth++
		case 2:
			if depth > 0 {
				buf.WriteString("}\n")
				depth--
			} else {
				fmt.Fprintf(&buf, "// %s handles %s\n", idents[rng.Intn(len(idents))], idents[rng.Intn(len(idents))])
			}
		case 3:
			fmt.Fprintf(&buf, "return %s.%s(%d)\n", idents[rng.Intn(20)], idents[rng.Intn(len(idents))], rng.Intn(100))
		case 4:
			fmt.Fprintf(&buf, "%s.%s = append(%s.%s, %s)\n", idents[0], idents[rng.Intn(len(idents))],
				idents[0], idents[rng.Intn(len(idents))], idents[rng.Intn(len(idents))])
		default:
			fmt.Fprintf(&buf, "%s(%s, %s)\n", idents[rng.Intn(len(idents))],
				idents[rng.Intn(len(idents))], idents[rng.Intn(len(idents))])
		}
	}
	return buf.Bytes()[:n]
}

// XML produces nested markup with a small tag vocabulary: the most
// compressible proxy, mirroring the xml member of Silesia.
func XML(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	tags := []string{"record", "entity", "property", "value", "reference", "item", "meta"}
	attrs := []string{"id", "type", "class", "version", "lang"}
	var buf bytes.Buffer
	buf.Grow(n + 128)
	buf.WriteString("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<dataset>\n")
	var stack []string
	for buf.Len() < n {
		if len(stack) > 0 && rng.Intn(3) == 0 {
			tag := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			fmt.Fprintf(&buf, "</%s>\n", tag)
			continue
		}
		tag := tags[rng.Intn(len(tags))]
		fmt.Fprintf(&buf, "<%s %s=\"%d\" %s=\"n%d\">", tag,
			attrs[rng.Intn(len(attrs))], rng.Intn(300),
			attrs[rng.Intn(len(attrs))], rng.Intn(20))
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&buf, "value-%d", rng.Intn(50))
			fmt.Fprintf(&buf, "</%s>\n", tag)
		} else {
			buf.WriteByte('\n')
			stack = append(stack, tag)
		}
	}
	return buf.Bytes()[:n]
}

// Records produces line-oriented database-like rows with fixed field
// structure (the osdb/nci proxy).
func Records(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	status := []string{"ACTIVE", "PENDING", "DELETED", "ARCHIVED"}
	var buf bytes.Buffer
	buf.Grow(n + 128)
	ts := int64(1600000000)
	for buf.Len() < n {
		ts += int64(rng.Intn(100))
		fmt.Fprintf(&buf, "%010d|%s|region-%02d|%s|%08.2f|%d\n",
			rng.Intn(1<<30), status[rng.Intn(len(status))], rng.Intn(16),
			fmt.Sprintf("item-%05d", rng.Intn(2000)), rng.Float64()*1e4, ts)
	}
	return buf.Bytes()[:n]
}

// Binary produces executable-like binary data: opcode-ish byte patterns
// with repeated runs and embedded strings (the mozilla/ooffice proxy).
func Binary(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, n+64)
	patterns := make([][]byte, 32)
	for i := range patterns {
		p := make([]byte, 4+rng.Intn(12))
		rng.Read(p)
		patterns[i] = p
	}
	for len(out) < n {
		switch rng.Intn(5) {
		case 0: // repeated instruction-like pattern
			p := patterns[rng.Intn(len(patterns))]
			for k := 0; k < 1+rng.Intn(8); k++ {
				out = append(out, p...)
			}
		case 1: // zero padding
			for k := 0; k < 4+rng.Intn(60); k++ {
				out = append(out, 0)
			}
		case 2: // embedded string
			out = append(out, []byte(fmt.Sprintf("symbol_%d@section.%d", rng.Intn(500), rng.Intn(8)))...)
		default: // raw code bytes
			chunk := make([]byte, 8+rng.Intn(56))
			rng.Read(chunk)
			out = append(out, chunk...)
		}
	}
	return out[:n]
}

// Smooth16 produces slowly varying little-endian 16-bit samples: the
// medical-image proxy (mr/x-ray), where delta structure exists but byte
// entropy is high.
func Smooth16(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, n+2)
	v := 2048
	for len(out) < n {
		v += rng.Intn(33) - 16
		if v < 0 {
			v = 0
		}
		if v > 4095 {
			v = 4095
		}
		out = append(out, byte(v), byte(v>>8))
	}
	return out[:n]
}

// StarCatalog produces fixed-size binary records with mostly random fields
// (the sao proxy: barely compressible).
func StarCatalog(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, n+32)
	for len(out) < n {
		var rec [28]byte
		rng.Read(rec[:24])
		// A few shared catalog flag bytes give the compressor something.
		rec[24], rec[25], rec[26], rec[27] = 0x53, 0x41, 0x4f, byte(rng.Intn(4))
		out = append(out, rec[:]...)
	}
	return out[:n]
}

// LogLines produces web-server-style access logs.
func LogLines(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	paths := []string{"/feed", "/profile", "/api/v2/items", "/static/app.js", "/ads/click", "/health"}
	agents := []string{"Mozilla/5.0 (X11; Linux x86_64)", "okhttp/4.9.1", "curl/7.81.0"}
	codes := []int{200, 200, 200, 200, 304, 404, 500}
	var buf bytes.Buffer
	buf.Grow(n + 256)
	ts := int64(1680000000)
	for buf.Len() < n {
		ts += int64(rng.Intn(3))
		fmt.Fprintf(&buf, "10.%d.%d.%d - - [%d] \"GET %s HTTP/1.1\" %d %d \"%s\"\n",
			rng.Intn(256), rng.Intn(256), rng.Intn(256), ts,
			paths[rng.Intn(len(paths))], codes[rng.Intn(len(codes))],
			rng.Intn(65536), agents[rng.Intn(len(agents))])
	}
	return buf.Bytes()[:n]
}
