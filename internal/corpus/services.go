package corpus

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"github.com/datacomp/datacomp/internal/stats"
)

// ItemType describes one typed cache object class. CACHE1/CACHE2 group
// items by type and train one dictionary per type (§IV-C).
type ItemType struct {
	// Name identifies the type ("user_profile", ...).
	Name string
	// Fields is the shared key skeleton all items of the type repeat.
	Fields []string
	// Size is the item size distribution: skewed small, long tail.
	Size stats.Lognormal
}

// DefaultItemTypes returns the typed-object mix used by the cache
// characterization. Size parameters put most items under 1 KiB with a long
// tail, matching Figs 8 and 9.
func DefaultItemTypes() []ItemType {
	return []ItemType{
		{
			Name:   "user_profile",
			Fields: []string{"user_id", "display_name", "region", "locale", "created_at", "follower_count", "privacy_flags"},
			Size:   stats.Lognormal{Mu: 5.2, Sigma: 0.9, Min: 64, Max: 1 << 16},
		},
		{
			Name:   "post_meta",
			Fields: []string{"post_id", "author_id", "created_at", "like_count", "share_count", "visibility", "media_refs"},
			Size:   stats.Lognormal{Mu: 5.8, Sigma: 1.1, Min: 96, Max: 1 << 18},
		},
		{
			Name:   "edge_assoc",
			Fields: []string{"src_id", "dst_id", "assoc_type", "time", "data_version"},
			Size:   stats.Lognormal{Mu: 4.6, Sigma: 0.7, Min: 48, Max: 1 << 14},
		},
		{
			Name:   "media_manifest",
			Fields: []string{"media_id", "mime", "width", "height", "cdn_urls", "transcode_profiles", "checksums"},
			Size:   stats.Lognormal{Mu: 6.8, Sigma: 1.3, Min: 256, Max: 1 << 20},
		},
	}
}

// Item generates one serialized item of the type: a repeated field skeleton
// with per-item values, padded with semi-structured payload up to the
// sampled size.
func (t ItemType) Item(rng *rand.Rand) []byte {
	target := t.Size.Sample(rng)
	var buf bytes.Buffer
	buf.Grow(target + 64)
	fmt.Fprintf(&buf, `{"__type":"%s","__v":3`, t.Name)
	for _, f := range t.Fields {
		switch rng.Intn(3) {
		case 0:
			fmt.Fprintf(&buf, `,"%s":%d`, f, rng.Int63n(1<<40))
		case 1:
			fmt.Fprintf(&buf, `,"%s":"%s-%d"`, f, f, rng.Intn(1<<20))
		default:
			fmt.Fprintf(&buf, `,"%s":%v`, f, rng.Intn(2) == 0)
		}
	}
	// Fill to the target size with a tag list: structured, some repetition
	// across items but high per-item entropy in the values.
	if buf.Len() < target {
		buf.WriteString(`,"payload":[`)
		first := true
		for buf.Len() < target-16 {
			if !first {
				buf.WriteByte(',')
			}
			first = false
			fmt.Fprintf(&buf, `{"k":"attr_%02d","v":%d}`, rng.Intn(40), rng.Int63n(1<<32))
		}
		buf.WriteByte(']')
	}
	buf.WriteByte('}')
	return buf.Bytes()
}

// CacheItems generates n items of the given type.
func CacheItems(seed int64, t ItemType, n int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := range out {
		out[i] = t.Item(rng)
	}
	return out
}

// AdsModel describes one ranking model's request shape (Fig 12): requests
// are dense float embeddings plus sparse integer embeddings, and the
// dense/sparse mix plus the wire format drive compressibility.
type AdsModel struct {
	// Name identifies the model ("A", "B", "C").
	Name string
	// DenseFloats is the number of float32 features per request.
	DenseFloats int
	// SparseInts is the number of int32 slots in the sparse embeddings.
	SparseInts int
	// SparseDensity is the fraction of sparse slots that are nonzero.
	SparseDensity float64
	// Serialization selects the wire format: "raw" (little-endian
	// fixed-width, models A and B) or "varint" (model C's alternate
	// serialization of the same content shape).
	Serialization string
}

// Paper-motivated model shapes: A causes the most traffic with the largest
// requests; B is high-traffic with smaller requests; C is B re-serialized.
var (
	ModelA = AdsModel{Name: "A", DenseFloats: 24576, SparseInts: 40960, SparseDensity: 0.05, Serialization: "raw"}
	ModelB = AdsModel{Name: "B", DenseFloats: 8192, SparseInts: 8192, SparseDensity: 0.10, Serialization: "raw"}
	ModelC = AdsModel{Name: "C", DenseFloats: 8192, SparseInts: 8192, SparseDensity: 0.10, Serialization: "varint"}
)

// AdsModels lists the three models of Fig 12.
func AdsModels() []AdsModel { return []AdsModel{ModelA, ModelB, ModelC} }

// Request generates one inference request for the model.
func (m AdsModel) Request(rng *rand.Rand) []byte {
	out := make([]byte, 0, m.DenseFloats*4+m.SparseInts*4+64)
	out = append(out, []byte(fmt.Sprintf("ads-req model=%s v=2\n", m.Name))...)
	// Dense embeddings: quantized activations — some repeated exact values
	// (zeros from ReLU), otherwise high-entropy mantissas.
	for i := 0; i < m.DenseFloats; i++ {
		var f float32
		if rng.Float64() > 0.3 { // 30% exact zeros (post-ReLU sparsity)
			f = float32(math.Floor(rng.NormFloat64()*1000) / 1000)
		}
		if m.Serialization == "varint" {
			out = binary.AppendUvarint(out, uint64(math.Float32bits(f)))
		} else {
			out = binary.LittleEndian.AppendUint32(out, math.Float32bits(f))
		}
	}
	// Sparse embeddings: mostly zero slots with occasional small IDs.
	for i := 0; i < m.SparseInts; i++ {
		var v uint32
		if rng.Float64() < m.SparseDensity {
			v = uint32(rng.Intn(1 << 20))
		}
		if m.Serialization == "varint" {
			out = binary.AppendUvarint(out, uint64(v))
		} else {
			out = binary.LittleEndian.AppendUint32(out, v)
		}
	}
	return out
}

// Requests generates n requests for the model.
func (m AdsModel) Requests(seed int64, n int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := range out {
		out[i] = m.Request(rng)
	}
	return out
}

// KV is one key-value pair.
type KV struct {
	Key   []byte
	Value []byte
}

// KVPairs generates n sorted key-value pairs with realistic structure:
// keys share column-family-style prefixes (so neighbouring keys share long
// prefixes, as in an SST), values are semi-structured.
func KVPairs(seed int64, n int) []KV {
	rng := rand.New(rand.NewSource(seed))
	out := make([]KV, n)
	id := uint64(rng.Intn(1 << 20))
	families := []string{"usr", "obj", "idx", "cnt"}
	fam := families[rng.Intn(len(families))]
	// Serialized objects share structure: values are drawn from a pool of
	// templates with per-row field mutations, so identical byte runs recur
	// at distances of tens of kilobytes — the redundancy a larger match
	// window (and larger compression blocks) can exploit, as in Fig 13.
	templates := make([][]byte, 160)
	for i := range templates {
		t := make([]byte, 48+rng.Intn(208))
		for j := range t {
			t[j] = byte(rng.Intn(64))
		}
		templates[i] = t
	}
	ztempl := stats.NewZipf(rng, 1.3, uint64(len(templates)))
	for i := range out {
		// Mostly sequential IDs with occasional family switches keep the
		// key stream sorted while varying prefixes.
		id += uint64(1 + rng.Intn(16))
		if rng.Intn(512) == 0 {
			next := families[rng.Intn(len(families))]
			if next > fam {
				fam = next
				id = uint64(rng.Intn(1 << 16))
			}
		}
		out[i].Key = []byte(fmt.Sprintf("%s:%016x", fam, id))
		switch rng.Intn(4) {
		case 0:
			out[i].Value = []byte(fmt.Sprintf(`{"state":%d,"updated":%d,"owner":"svc-%02d"}`,
				rng.Intn(8), 1600000000+rng.Intn(1<<24), rng.Intn(32)))
		case 1, 2:
			t := templates[ztempl.Sample()-1]
			v := append([]byte{}, t...)
			// Mutate a few fields so rows are distinct but share long runs.
			for m := 0; m < 3+rng.Intn(4); m++ {
				v[rng.Intn(len(v))] = byte(rng.Intn(256))
			}
			out[i].Value = v
		default:
			out[i].Value = binary.LittleEndian.AppendUint64(nil, uint64(rng.Int63()))
		}
	}
	return out
}

// SSTSample flattens generated key-value pairs into a contiguous byte
// stream, the representation KVSTORE1's block-size sweep compresses
// (Fig 13).
func SSTSample(seed int64, size int) []byte {
	var out []byte
	pairs := KVPairs(seed, size/64+16)
	for _, kv := range pairs {
		out = append(out, kv.Key...)
		out = append(out, 0)
		out = append(out, kv.Value...)
		out = append(out, 0)
		if len(out) >= size {
			break
		}
	}
	if len(out) > size {
		out = out[:size]
	}
	return out
}

// Columns for the ORC-style warehouse format.

// TimestampColumn generates mostly increasing int64 timestamps (delta
// encoding friendly).
func TimestampColumn(seed int64, n int) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	t := int64(1680000000000)
	for i := range out {
		t += int64(rng.Intn(2000))
		out[i] = t
	}
	return out
}

// IDColumn generates entity IDs with Zipf-repeated hot entities
// (dictionary encoding friendly).
func IDColumn(seed int64, n int) []int64 {
	rng := rand.New(rand.NewSource(seed))
	z := stats.NewZipf(rng, 1.3, 1<<16)
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(z.Sample()) * 7919
	}
	return out
}

// MetricColumn generates float64 measurements.
func MetricColumn(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	v := 100.0
	for i := range out {
		v += rng.NormFloat64()
		out[i] = math.Floor(v*100) / 100
	}
	return out
}

// Int64LE serializes a column as little-endian int64 words — the layout
// warehouse stripes, the graph engine's typed hints, and the graph ratio
// gates all share.
func Int64LE(vals []int64) []byte {
	out := make([]byte, 0, len(vals)*8)
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint64(out, uint64(v))
	}
	return out
}

// Float64LE serializes a column as little-endian IEEE float64 words.
func Float64LE(vals []float64) []byte {
	out := make([]byte, 0, len(vals)*8)
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}

// CategoryColumn generates low-cardinality strings (RLE/dictionary
// friendly).
func CategoryColumn(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	cats := []string{"impression", "click", "conversion", "view", "hide", "report"}
	out := make([]string, n)
	for i := range out {
		out[i] = cats[rng.Intn(len(cats))]
	}
	return out
}

// FlagColumn generates booleans with the given true-probability.
func FlagColumn(seed int64, n int, pTrue float64) []bool {
	rng := rand.New(rand.NewSource(seed))
	out := make([]bool, n)
	for i := range out {
		out[i] = rng.Float64() < pTrue
	}
	return out
}
