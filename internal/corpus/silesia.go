package corpus

// File is one member of a generated benchmark corpus.
type File struct {
	// Name mirrors the Silesia member the generator stands in for.
	Name string
	// Kind describes the data class (text, binary, markup, ...).
	Kind string
	// Data is the generated content.
	Data []byte
}

// Silesia generates a 12-member proxy of the Silesia corpus, the dataset
// Figure 1 of the paper sweeps. Each member has the broad compressibility
// character of its namesake (from very compressible XML to nearly
// incompressible binary catalogs); absolute ratios differ from the real
// files but the cross-file spread — the paper's point that compression
// metrics vary by an order of magnitude with data type — is preserved.
func Silesia(seed int64, size int) []File {
	return []File{
		{"dickens", "english text", NewTextGen(seed+1, 30000, 1.15).Generate(size)},
		{"mozilla", "executable binary", Binary(seed+2, size)},
		{"mr", "medical image", Smooth16(seed+3, size)},
		{"nci", "chemical database", Records(seed+4, size)},
		{"ooffice", "application binary", Binary(seed+5, size)},
		{"osdb", "database", Records(seed+6, size)},
		{"reymont", "polish text", NewTextGen(seed+7, 45000, 1.25).Generate(size)},
		{"samba", "source code", SourceCode(seed+8, size)},
		{"sao", "star catalog", StarCatalog(seed+9, size)},
		{"webster", "dictionary text", NewTextGen(seed+10, 60000, 1.10).Generate(size)},
		{"x-ray", "medical image", Smooth16(seed+11, size)},
		{"xml", "markup", XML(seed+12, size)},
	}
}
