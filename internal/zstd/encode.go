package zstd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"github.com/datacomp/datacomp/internal/bits"
	"github.com/datacomp/datacomp/internal/fse"
	"github.com/datacomp/datacomp/internal/huffman"
	"github.com/datacomp/datacomp/internal/lz"
	"github.com/datacomp/datacomp/internal/stage"
)

// Frame constants. Version 2 frames may carry the multi-stream entropy
// sections (4-stream Huffman literals, 2-state FSE sequence streams);
// version 1 frames are still decoded for backward compatibility.
var (
	frameMagicV1 = [4]byte{'Z', 'S', 'X', '1'}
	frameMagicV2 = [4]byte{'Z', 'S', 'X', '2'}
)

const (
	flagDict     = 1 << 0
	flagChecksum = 1 << 1
)

// Block types.
const (
	blockRaw = iota
	blockRLE
	blockCompressed
)

// Literal-section modes. litsHuff4 (4 independent bitstreams sharing one
// table) only appears in version ≥2 frames.
const (
	litsRaw = iota
	litsRLE
	litsHuff
	litsHuff4
)

// Sequence-stream modes. seqFSE2 (two interleaved tANS states) only
// appears in version ≥2 frames.
const (
	seqFSE = iota
	seqRLE
	seqRaw
	seqFSE2
)

// seqTableLog is the FSE table size for sequence code streams.
const seqTableLog = 9

// Multi-stream thresholds: below these sizes the split/jump-header overhead
// and the second-state flush outweigh the decode-ILP win.
const (
	huff4MinLits = 1024
	fse2MinSeqs  = 16
)

// Options configure an Encoder.
type Options struct {
	// Level selects the speed/ratio trade-off, MinLevel..MaxLevel.
	// 0 means DefaultLevel.
	Level int
	// WindowLog overrides the level's match window (MinWindowLog..
	// MaxWindowLog). 0 keeps the level default. This is the knob the
	// paper's sensitivity study 3 sweeps for hardware sizing.
	WindowLog uint
	// Dict is a content-prefix dictionary shared out-of-band with the
	// decompressor, the mechanism behind the paper's small-item cache
	// compression (§IV-C).
	Dict []byte
	// Checksum appends an FNV-64a of the content to the frame.
	Checksum bool
}

// DictID identifies dictionary content; frames record it so decompression
// with a mismatched dictionary fails cleanly.
func DictID(dict []byte) uint32 {
	if len(dict) == 0 {
		return 0
	}
	h := fnv.New32a()
	h.Write(dict)
	return h.Sum32()
}

// StageStats accumulates the time spent in the two compressor stages,
// powering the paper's Figure 7 (match finding vs entropy split).
type StageStats struct {
	MatchFind time.Duration
	Entropy   time.Duration
}

// Encoder compresses frames at a fixed configuration. Not safe for
// concurrent use.
type Encoder struct {
	opts      Options
	base      levelParams
	dictID    uint32
	matchers  map[lz.Params]*lz.Matcher
	lastP     lz.Params
	lastM     *lz.Matcher
	stats     StageStats
	stageHook stage.Hook

	seqs []lz.Sequence
	lits []byte
	llc  []byte
	ofc  []byte
	mlc  []byte
	work []byte

	// Entropy-stage scratch, reused across blocks so a warmed encoder
	// performs zero heap allocations per frame.
	huff    huffman.Scratch
	fseSc   fse.Scratch
	extras  bits.Writer
	payload []byte
	litEnc  []byte
	seqEnc  [3][]byte
}

// NewEncoder validates opts and returns an Encoder.
func NewEncoder(opts Options) (*Encoder, error) {
	if opts.Level == 0 {
		opts.Level = DefaultLevel
	}
	base, err := paramsForLevel(opts.Level)
	if err != nil {
		return nil, err
	}
	if opts.WindowLog != 0 && (opts.WindowLog < MinWindowLog || opts.WindowLog > MaxWindowLog) {
		return nil, fmt.Errorf("zstd: window log %d out of range [%d,%d]", opts.WindowLog, MinWindowLog, MaxWindowLog)
	}
	return &Encoder{
		opts:     opts,
		base:     base,
		dictID:   DictID(opts.Dict),
		matchers: make(map[lz.Params]*lz.Matcher),
	}, nil
}

// Options returns the encoder's configuration.
func (e *Encoder) Options() Options { return e.opts }

// Stages returns the accumulated per-stage compression time and can be
// reset with ResetStages.
func (e *Encoder) Stages() StageStats { return e.stats }

// ResetStages clears the stage accounting.
func (e *Encoder) ResetStages() { e.stats = StageStats{} }

// SetStageHook installs a hook fired at stage transitions inside Compress
// (stage.MatchFind before parsing, stage.Entropy before entropy coding,
// stage.App when the block completes). A nil hook disables notification.
// The hook is called from the compressing goroutine only.
func (e *Encoder) SetStageHook(h stage.Hook) { e.stageHook = h }

func (e *Encoder) enterStage(s stage.ID) {
	if e.stageHook != nil {
		e.stageHook(s)
	}
}

func (e *Encoder) matcher(srcLen int) (*lz.Matcher, error) {
	p := adaptParams(e.base, srcLen, e.opts.WindowLog)
	// Same-shape payloads (a batch of cache items, RPC bodies) resolve to
	// the same adapted params; the one-entry cache skips the map hash on
	// that path, which is measurable at small payload sizes.
	if p == e.lastP && e.lastM != nil {
		return e.lastM, nil
	}
	m, ok := e.matchers[p]
	if !ok {
		var err error
		m, err = lz.NewMatcher(p)
		if err != nil {
			return nil, err
		}
		e.matchers[p] = m
	}
	e.lastP, e.lastM = p, m
	return m, nil
}

// Compress appends a complete frame holding src to dst.
func (e *Encoder) Compress(dst, src []byte) ([]byte, error) {
	dst = append(dst, frameMagicV2[:]...)
	flags := byte(0)
	if len(e.opts.Dict) > 0 {
		flags |= flagDict
	}
	if e.opts.Checksum {
		flags |= flagChecksum
	}
	dst = append(dst, flags)
	var tmp [binary.MaxVarintLen64]byte
	dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(len(src)))]...)
	if flags&flagDict != 0 {
		dst = binary.LittleEndian.AppendUint32(dst, e.dictID)
	}

	// Work buffer: dictionary content acts as parse history.
	buf := src
	start := 0
	if len(e.opts.Dict) > 0 {
		e.work = append(e.work[:0], e.opts.Dict...)
		e.work = append(e.work, src...)
		buf = e.work
		start = len(e.opts.Dict)
	}

	if len(src) == 0 {
		dst = appendBlockHeader(dst, true, blockRaw, 0)
	}
	for blockStart := start; blockStart < len(buf); blockStart += MaxBlockSize {
		blockEnd := blockStart + MaxBlockSize
		if blockEnd > len(buf) {
			blockEnd = len(buf)
		}
		last := blockEnd == len(buf)
		var err error
		dst, err = e.compressBlock(dst, buf, blockStart, blockEnd, last)
		if err != nil {
			return nil, err
		}
	}
	if e.opts.Checksum {
		dst = binary.LittleEndian.AppendUint64(dst, fnv64a(src))
	}
	return dst, nil
}

// fnv64a is an inline FNV-64a so checksumming does not allocate a
// hash.Hash64 per frame (hash/fnv's constructor escapes to the heap).
func fnv64a(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// appendBlockHeader writes the 3-byte block header:
// bit0 last, bits1-2 type, bits3-23 size.
func appendBlockHeader(dst []byte, last bool, typ, size int) []byte {
	v := uint32(size) << 3
	v |= uint32(typ) << 1
	if last {
		v |= 1
	}
	return append(dst, byte(v), byte(v>>8), byte(v>>16))
}

func allSame(b []byte) bool {
	for i := 1; i < len(b); i++ {
		if b[i] != b[0] {
			return false
		}
	}
	return true
}

func (e *Encoder) compressBlock(dst, buf []byte, blockStart, blockEnd int, last bool) ([]byte, error) {
	content := buf[blockStart:blockEnd]
	if len(content) >= 16 && allSame(content) {
		dst = appendBlockHeader(dst, last, blockRLE, len(content))
		return append(dst, content[0]), nil
	}

	// Stage 1: match finding over the window preceding the block.
	m, err := e.matcher(blockEnd - blockStart)
	if err != nil {
		return nil, err
	}
	windowBase := blockStart - (1 << m.Params().WindowLog)
	if windowBase < 0 {
		windowBase = 0
	}
	e.enterStage(stage.MatchFind)
	t0 := time.Now()
	e.seqs = m.Parse(e.seqs[:0], buf[windowBase:blockEnd], blockStart-windowBase)
	t1 := time.Now()
	e.stats.MatchFind += t1.Sub(t0)

	// Stage 2: entropy coding.
	e.enterStage(stage.Entropy)
	payload, err := e.encodeBlockPayload(content)
	e.stats.Entropy += time.Since(t1)
	e.enterStage(stage.App)
	if err != nil {
		return nil, err
	}
	if payload == nil || len(payload) >= len(content) {
		dst = appendBlockHeader(dst, last, blockRaw, len(content))
		return append(dst, content...), nil
	}
	dst = appendBlockHeader(dst, last, blockCompressed, len(payload))
	return append(dst, payload...), nil
}

// encodeBlockPayload serializes the parsed sequences. It returns nil when
// the representation cannot beat a raw block.
func (e *Encoder) encodeBlockPayload(content []byte) ([]byte, error) {
	e.lits = e.lits[:0]
	e.llc = e.llc[:0]
	e.ofc = e.ofc[:0]
	e.mlc = e.mlc[:0]
	extras := &e.extras
	extras.Reset()

	pos := 0
	numSeqs := 0
	reps := newRepState()
	for _, s := range e.seqs {
		e.lits = append(e.lits, content[pos:pos+int(s.LitLen)]...)
		pos += int(s.LitLen) + int(s.MatchLen)
		if s.MatchLen == 0 {
			continue // trailing literals live only in the literal section
		}
		if s.MatchLen < 3 || s.Offset == 0 {
			return nil, errors.New("zstd: internal: invalid sequence")
		}
		numSeqs++
		lc := llCode(s.LitLen)
		ofValue := reps.encode(s.Offset)
		oc := ofCode(ofValue)
		mc := mlCode(s.MatchLen)
		e.llc = append(e.llc, lc)
		e.ofc = append(e.ofc, oc)
		e.mlc = append(e.mlc, mc)
		extras.WriteBits(uint64(llExtra(s.LitLen, lc)), uint(llExtraBits[lc]))
		ofx, ofn := ofExtra(ofValue)
		extras.WriteBits(uint64(ofx), uint(ofn))
		extras.WriteBits(uint64(mlExtra(s.MatchLen, mc)), uint(mlExtraBits[mc]))
	}
	if pos != len(content) {
		return nil, fmt.Errorf("zstd: internal: sequences cover %d of %d bytes", pos, len(content))
	}

	payload := e.payload[:0]
	var tmp [binary.MaxVarintLen64]byte

	// Literals section.
	switch {
	case len(e.lits) == 0:
		payload = append(payload, litsRaw)
		payload = append(payload, tmp[:binary.PutUvarint(tmp[:], 0)]...)
	case len(e.lits) >= 8 && allSame(e.lits):
		payload = append(payload, litsRLE)
		payload = append(payload, tmp[:binary.PutUvarint(tmp[:], uint64(len(e.lits)))]...)
		payload = append(payload, e.lits[0])
	default:
		litMode := byte(litsHuff)
		var enc []byte
		var err error
		if len(e.lits) >= huff4MinLits {
			litMode = litsHuff4
			enc, err = e.huff.Compress4(e.litEnc[:0], e.lits)
		} else {
			enc, err = e.huff.Compress(e.litEnc[:0], e.lits)
		}
		if err == nil {
			e.litEnc = enc
			payload = append(payload, litMode)
			payload = append(payload, tmp[:binary.PutUvarint(tmp[:], uint64(len(e.lits)))]...)
			payload = append(payload, tmp[:binary.PutUvarint(tmp[:], uint64(len(enc)))]...)
			payload = append(payload, enc...)
		} else if err == huffman.ErrIncompressible {
			if enc != nil {
				e.litEnc = enc // empty, but keeps the grown capacity
			}
			payload = append(payload, litsRaw)
			payload = append(payload, tmp[:binary.PutUvarint(tmp[:], uint64(len(e.lits)))]...)
			payload = append(payload, e.lits...)
		} else {
			return nil, err
		}
	}

	// Sequence section.
	payload = append(payload, tmp[:binary.PutUvarint(tmp[:], uint64(numSeqs))]...)
	if numSeqs > 0 {
		streams := [3][]byte{e.llc, e.ofc, e.mlc}
		var encoded [3][]byte
		modes := [3]byte{}
		for i, s := range streams {
			switch {
			case allSame(s):
				modes[i] = seqRLE
				encoded[i] = s[:1]
			default:
				seqMode := byte(seqFSE)
				var enc []byte
				var err error
				if numSeqs >= fse2MinSeqs {
					seqMode = seqFSE2
					enc, err = e.fseSc.Compress2(e.seqEnc[i][:0], s, seqTableLog)
				} else {
					enc, err = e.fseSc.Compress(e.seqEnc[i][:0], s, seqTableLog)
				}
				if err == nil {
					e.seqEnc[i] = enc
					modes[i] = seqMode
					encoded[i] = enc
				} else if err == fse.ErrIncompressible {
					if enc != nil {
						e.seqEnc[i] = enc // empty, but keeps the grown capacity
					}
					modes[i] = seqRaw
					encoded[i] = s
				} else {
					return nil, err
				}
			}
		}
		payload = append(payload, modes[0]|modes[1]<<2|modes[2]<<4)
		for i, enc := range encoded {
			switch modes[i] {
			case seqRLE:
				payload = append(payload, enc[0])
			case seqRaw: // length implied by numSeqs
				payload = append(payload, enc...)
			case seqFSE, seqFSE2:
				payload = append(payload, tmp[:binary.PutUvarint(tmp[:], uint64(len(enc)))]...)
				payload = append(payload, enc...)
			}
		}
		ex := extras.Flush()
		payload = append(payload, tmp[:binary.PutUvarint(tmp[:], uint64(len(ex)))]...)
		payload = append(payload, ex...)
	}
	e.payload = payload // keep capacity for the next block
	return payload, nil
}
