package zstd

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/datacomp/datacomp/internal/corpus"
)

func compressible(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"warehouse", "ingestion", "compression", "dictionary", "entropy",
		"sequence", "literal", "offset", "match", "zstd", "level", "block"}
	var buf bytes.Buffer
	for buf.Len() < n {
		buf.WriteString(words[rng.Intn(len(words))])
		buf.WriteByte(' ')
	}
	return buf.Bytes()[:n]
}

func roundtrip(t *testing.T, opts Options, src []byte) []byte {
	t.Helper()
	e, err := NewEncoder(opts)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Compress(nil, src)
	if err != nil {
		t.Fatalf("opts %+v size %d: %v", opts, len(src), err)
	}
	back, err := Decompress(nil, out, opts.Dict)
	if err != nil {
		t.Fatalf("opts %+v size %d: %v", opts, len(src), err)
	}
	if !bytes.Equal(back, src) {
		t.Fatalf("opts %+v size %d: roundtrip mismatch", opts, len(src))
	}
	return out
}

func TestRoundtripLevels(t *testing.T) {
	src := compressible(1, 300000) // multi-block
	for _, level := range []int{-5, -1, 1, 2, 3, 5, 7, 9, 12, 16, 19, 22} {
		out := roundtrip(t, Options{Level: level}, src)
		if len(out) >= len(src) {
			t.Errorf("level %d: no compression (%d >= %d)", level, len(out), len(src))
		}
	}
}

func TestRoundtripSizes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 8, 100, 1000, MaxBlockSize - 1, MaxBlockSize, MaxBlockSize + 1, 3 * MaxBlockSize} {
		roundtrip(t, Options{Level: 1}, compressible(int64(n), n))
		roundtrip(t, Options{Level: 6}, compressible(int64(n)+1, n))
	}
}

func TestRoundtripIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := make([]byte, 100000)
	rng.Read(src)
	out := roundtrip(t, Options{Level: 3}, src)
	if len(out) > len(src)+len(src)/100+64 {
		t.Fatalf("expansion too large on random data: %d vs %d", len(out), len(src))
	}
}

func TestRoundtripRLE(t *testing.T) {
	src := bytes.Repeat([]byte{'z'}, 500000)
	out := roundtrip(t, Options{Level: 1}, src)
	if len(out) > 64 {
		t.Fatalf("RLE blocks should collapse runs: got %d bytes", len(out))
	}
}

func TestHigherLevelBetterRatio(t *testing.T) {
	src := compressible(9, 1<<19)
	sizes := map[int]int{}
	for _, level := range []int{-5, 1, 3, 9, 19} {
		e, err := NewEncoder(Options{Level: level})
		if err != nil {
			t.Fatal(err)
		}
		out, err := e.Compress(nil, src)
		if err != nil {
			t.Fatal(err)
		}
		sizes[level] = len(out)
	}
	if sizes[19] > sizes[1] {
		t.Errorf("level 19 (%d) worse than level 1 (%d)", sizes[19], sizes[1])
	}
	if sizes[1] > sizes[-5] {
		t.Errorf("level 1 (%d) worse than level -5 (%d)", sizes[1], sizes[-5])
	}
}

func TestChecksum(t *testing.T) {
	src := compressible(11, 50000)
	e, err := NewEncoder(Options{Level: 3, Checksum: true})
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Compress(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(nil, out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, src) {
		t.Fatal("mismatch")
	}
	// Corrupt one content byte: the checksum (or structure checks) must
	// catch it.
	for i := 8; i < len(out)-9; i += 7 {
		mut := append([]byte{}, out...)
		mut[i] ^= 0x40
		if got, err := Decompress(nil, mut, nil); err == nil && bytes.Equal(got, src) == false {
			t.Fatalf("corruption at byte %d produced wrong data without error", i)
		}
	}
}

func TestDictionaryRoundtripAndGain(t *testing.T) {
	// Many small, structurally similar items: the paper's cache use case.
	dictSamples := make([]byte, 0, 1<<16)
	for i := 0; i < 200; i++ {
		dictSamples = append(dictSamples, compressible(int64(i%7), 300)...)
	}
	dict := dictSamples[:1<<14]
	item := compressible(3, 400)

	plain, err := NewEncoder(Options{Level: 3})
	if err != nil {
		t.Fatal(err)
	}
	withDict, err := NewEncoder(Options{Level: 3, Dict: dict})
	if err != nil {
		t.Fatal(err)
	}
	outPlain, err := plain.Compress(nil, item)
	if err != nil {
		t.Fatal(err)
	}
	outDict, err := withDict.Compress(nil, item)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(nil, outDict, dict)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, item) {
		t.Fatal("dict roundtrip mismatch")
	}
	if len(outDict) >= len(outPlain) {
		t.Errorf("dictionary did not help small item: %d >= %d", len(outDict), len(outPlain))
	}
	// Wrong dictionary must be rejected.
	if _, err := Decompress(nil, outDict, dict[:len(dict)-1]); err != ErrDictMismatch {
		t.Fatalf("want ErrDictMismatch, got %v", err)
	}
	if _, err := Decompress(nil, outDict, nil); err != ErrDictMismatch {
		t.Fatalf("want ErrDictMismatch, got %v", err)
	}
	if _, err := Decompress(nil, outPlain, dict); err != ErrDictMismatch {
		t.Fatalf("dict on plain frame: want ErrDictMismatch, got %v", err)
	}
}

func TestWindowLogOverride(t *testing.T) {
	// Locally incompressible data repeated at 32 KiB distance: the copy is
	// visible with a 64 KiB window, invisible with a 1 KiB window.
	block := make([]byte, 32*1024)
	rand.New(rand.NewSource(13)).Read(block)
	src := append(append([]byte{}, block...), block...)
	small := roundtrip(t, Options{Level: 1, WindowLog: 10}, src)
	large := roundtrip(t, Options{Level: 1, WindowLog: 16}, src)
	if len(large) >= len(small) {
		t.Errorf("larger window should compress repetition better: %d >= %d", len(large), len(small))
	}
}

func TestStagesAccounted(t *testing.T) {
	e, err := NewEncoder(Options{Level: 7})
	if err != nil {
		t.Fatal(err)
	}
	src := compressible(17, 1<<18)
	if _, err := e.Compress(nil, src); err != nil {
		t.Fatal(err)
	}
	st := e.Stages()
	if st.MatchFind <= 0 || st.Entropy <= 0 {
		t.Fatalf("stage accounting missing: %+v", st)
	}
	e.ResetStages()
	if st := e.Stages(); st.MatchFind != 0 || st.Entropy != 0 {
		t.Fatalf("reset failed: %+v", st)
	}
}

func TestDecompressedSize(t *testing.T) {
	src := compressible(19, 12345)
	out := roundtrip(t, Options{Level: 1}, src)
	n, err := DecompressedSize(out)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(src) {
		t.Fatalf("size = %d want %d", n, len(src))
	}
}

func TestDecompressCorrupt(t *testing.T) {
	src := compressible(23, 20000)
	out := roundtrip(t, Options{Level: 3}, src)
	cases := [][]byte{
		nil,
		{1, 2, 3},
		out[:5],
		out[:len(out)/2],
		append(append([]byte{}, out...), 0xff),
	}
	for i, c := range cases {
		if _, err := Decompress(nil, c, nil); err == nil {
			t.Errorf("case %d decoded successfully", i)
		}
	}
	bad := append([]byte{}, out...)
	bad[0] = 'Q'
	if _, err := Decompress(nil, bad, nil); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestBadOptions(t *testing.T) {
	if _, err := NewEncoder(Options{Level: 23}); err == nil {
		t.Error("level 23 accepted")
	}
	if _, err := NewEncoder(Options{Level: -6}); err == nil {
		t.Error("level -6 accepted")
	}
	if _, err := NewEncoder(Options{Level: 1, WindowLog: 5}); err == nil {
		t.Error("window log 5 accepted")
	}
	if _, err := NewEncoder(Options{Level: 1, WindowLog: 30}); err == nil {
		t.Error("window log 30 accepted")
	}
}

func TestRepeatOffsets(t *testing.T) {
	// Strictly periodic record data: after the first match almost every
	// sequence reuses the same distance, exercising the rep0 path; mixing
	// two periods exercises rep1/rep2 rotation.
	var src []byte
	recA := []byte("record-type-alpha|0123456789abcdef|")
	recB := []byte("rec-beta|fedcba98|")
	for i := 0; i < 400; i++ {
		src = append(src, recA...)
		if i%3 == 0 {
			src = append(src, recB...)
		}
	}
	for _, level := range []int{1, 3, 6, 12, 19} {
		out := roundtrip(t, Options{Level: level}, src)
		// Periodic data with rep codes should collapse dramatically.
		if len(out)*20 > len(src) {
			t.Errorf("level %d: periodic data compressed only to %d/%d", level, len(out), len(src))
		}
	}
	// The rep state machine itself.
	r := newRepState()
	if v := r.encode(100); v != 103 {
		t.Fatalf("fresh offset: %d", v)
	}
	if v := r.encode(100); v != 1 {
		t.Fatalf("rep0: %d", v)
	}
	if v := r.encode(200); v != 203 {
		t.Fatalf("second offset: %d", v)
	}
	if v := r.encode(100); v != 2 {
		t.Fatalf("rep1: %d", v)
	}
	// Mirror with a decoder state.
	d := newRepState()
	for _, pair := range [][2]uint32{{103, 100}, {1, 100}, {203, 200}, {2, 100}} {
		if got := d.decode(pair[0]); got != pair[1] {
			t.Fatalf("decode(%d) = %d want %d", pair[0], got, pair[1])
		}
	}
}

func TestCodeTables(t *testing.T) {
	// Every representable literal length maps to a code whose
	// baseline+extras range contains it.
	for _, v := range []uint32{0, 1, 15, 16, 17, 31, 32, 63, 64, 100, 1000, 65535, 65536, 100000} {
		c := llCode(v)
		if c > maxLLCode {
			t.Fatalf("llCode(%d) = %d", v, c)
		}
		lo := llBaselines[c]
		hi := lo + 1<<llExtraBits[c]
		if v < lo || v >= hi {
			t.Fatalf("llCode(%d) = %d covers [%d,%d)", v, c, lo, hi)
		}
	}
	for _, v := range []uint32{3, 4, 34, 35, 36, 37, 66, 67, 130, 131, 258, 259, 1027, 65539, 120000} {
		c := mlCode(v)
		if c > maxMLCode {
			t.Fatalf("mlCode(%d) = %d", v, c)
		}
		lo := mlBaselines[c]
		hi := lo + 1<<mlExtraBits[c]
		if v < lo || v >= hi {
			t.Fatalf("mlCode(%d) = %d covers [%d,%d)", v, c, lo, hi)
		}
	}
	for _, off := range []uint32{1, 2, 3, 4, 255, 256, 65535, 1 << 20, 1 << 26} {
		c := ofCode(off)
		extra, nb := ofExtra(off)
		if uint32(1)<<c+extra != off || nb != c {
			t.Fatalf("offset %d: code %d extra %d", off, c, extra)
		}
	}
}

func TestQuickRoundtrip(t *testing.T) {
	f := func(seed int64, size uint16, levelSel uint8, noise uint8) bool {
		n := int(size) % 40000
		src := compressible(seed, n)
		rng := rand.New(rand.NewSource(seed ^ 99))
		for k := 0; k < n*int(noise)/2048; k++ {
			src[rng.Intn(n)] = byte(rng.Intn(256))
		}
		level := int(levelSel)%(MaxLevel-MinLevel+1) + MinLevel
		if level == 0 {
			level = 3
		}
		e, err := NewEncoder(Options{Level: level})
		if err != nil {
			return false
		}
		out, err := e.Compress(nil, src)
		if err != nil {
			return false
		}
		back, err := Decompress(nil, out, nil)
		return err == nil && bytes.Equal(back, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDictRoundtrip(t *testing.T) {
	dict := compressible(123, 8192)
	f := func(seed int64, size uint16) bool {
		n := int(size) % 4000
		src := compressible(seed, n)
		e, err := NewEncoder(Options{Level: 3, Dict: dict})
		if err != nil {
			return false
		}
		out, err := e.Compress(nil, src)
		if err != nil {
			return false
		}
		back, err := Decompress(nil, out, dict)
		return err == nil && bytes.Equal(back, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress(b *testing.B) {
	src := compressible(1, 1<<18)
	for _, level := range []int{-5, 1, 3, 7, 12, 19} {
		name := "L" + itoa(level)
		b.Run(name, func(b *testing.B) {
			e, err := NewEncoder(Options{Level: level})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(src)))
			var out []byte
			for i := 0; i < b.N; i++ {
				out, err = e.Compress(out[:0], src)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(v int) string {
	if v < 0 {
		return "m" + itoa(-v)
	}
	if v >= 10 {
		return itoa(v/10) + string(rune('0'+v%10))
	}
	return string(rune('0' + v))
}

func BenchmarkDecompress(b *testing.B) {
	// Per-level decode benchmarks over log-like data: the shape the
	// multi-stream entropy stage (4-stream literals, 2-state sequences) is
	// tuned for, and the corpus the BENCH_codec.json regression gate tracks.
	src := corpus.LogLines(7, 128<<10)
	for _, level := range []int{1, 3, 9} {
		b.Run("L"+itoa(level), func(b *testing.B) {
			e, err := NewEncoder(Options{Level: level})
			if err != nil {
				b.Fatal(err)
			}
			out, err := e.Compress(nil, src)
			if err != nil {
				b.Fatal(err)
			}
			dec := NewDecoder(nil)
			b.SetBytes(int64(len(src)))
			b.ReportAllocs()
			b.ResetTimer()
			var back []byte
			for i := 0; i < b.N; i++ {
				back, err = dec.Decompress(back[:0], out)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestFrameDictIDAndOptions(t *testing.T) {
	dict := compressible(51, 4096)
	e, err := NewEncoder(Options{Level: 2, Dict: dict})
	if err != nil {
		t.Fatal(err)
	}
	if e.Options().Level != 2 {
		t.Fatalf("options = %+v", e.Options())
	}
	frame, err := e.Compress(nil, compressible(52, 500))
	if err != nil {
		t.Fatal(err)
	}
	id, required, err := FrameDictID(frame)
	if err != nil || !required || id != DictID(dict) {
		t.Fatalf("id=%x required=%v err=%v", id, required, err)
	}
	plainEnc, _ := NewEncoder(Options{Level: 1})
	plain, err := plainEnc.Compress(nil, []byte("no dict here"))
	if err != nil {
		t.Fatal(err)
	}
	if _, required, err := FrameDictID(plain); err != nil || required {
		t.Fatalf("plain frame: required=%v err=%v", required, err)
	}
	if _, _, err := FrameDictID([]byte("junk")); err == nil {
		t.Fatal("junk accepted")
	}
	if _, err := DecompressedSize([]byte("junk")); err == nil {
		t.Fatal("junk size accepted")
	}
}

func TestLiteralRLEBlock(t *testing.T) {
	// Long literal run plus structure: exercises the litsRLE path.
	src := append(bytes.Repeat([]byte{'z'}, 600), compressible(53, 40)...)
	src = append(src, bytes.Repeat([]byte{'z'}, 600)...)
	roundtrip(t, Options{Level: 1}, src)
}
