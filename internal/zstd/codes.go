// Package zstd implements a Zstandard-style compressor: an LZ77
// match-finding stage followed by an entropy stage that Huffman-codes
// literals and FSE-codes the sequence symbols, the two-stage architecture
// whose trade-offs the reproduced paper characterizes.
//
// The codec mirrors Zstandard's design — 128 KiB blocks, literal-length /
// match-length / offset code alphabets with extra bits, compression levels
// −5..22 mapped to match-finder parameter sets, window-log control,
// content-prefix dictionaries, and per-input adaptive hash-table sizing —
// but uses its own frame format (it is not bitstream-compatible with the C
// library; see DESIGN.md for the substitution argument).
package zstd

import mathbits "math/bits"

// Literal-length codes (0..35). Codes below 16 encode the length directly
// with no extra bits; higher codes carry baseline + extra bits, following
// the published Zstandard alphabet.
var llBaselines = [36]uint32{
	0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
	16, 18, 20, 22, 24, 28, 32, 40, 48, 64, 128, 256, 512, 1024,
	2048, 4096, 8192, 16384, 32768, 65536,
}

var llExtraBits = [36]uint8{
	0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
	1, 1, 1, 1, 2, 2, 3, 3, 4, 6, 7, 8, 9, 10,
	11, 12, 13, 14, 15, 16,
}

// maxLLCode is the largest literal-length code.
const maxLLCode = 35

// llCodeTab maps literal lengths below 64 to codes; longer lengths use one
// code per power of two. Built in init from the baseline/extra tables so the
// two directions cannot drift apart.
var llCodeTab [64]uint8

// llCode maps a literal length to its code.
func llCode(litLen uint32) uint8 {
	if litLen < 64 {
		return llCodeTab[litLen]
	}
	hb := uint8(mathbits.Len32(litLen) - 1) // ≥6
	return 25 + (hb - 6)                    // baseline 64 lives at code 25
}

// Match-length codes (0..52). Codes below 32 encode length-3 directly.
var mlBaselines = [53]uint32{
	3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18,
	19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34,
	35, 37, 39, 41, 43, 47, 51, 59, 67, 83, 99, 131, 259, 515,
	1027, 2051, 4099, 8195, 16387, 32771, 65539,
}

var mlExtraBits = [53]uint8{
	0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
	0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
	1, 1, 1, 1, 2, 2, 3, 3, 4, 4, 5, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
}

// maxMLCode is the largest match-length code.
const maxMLCode = 52

// mlCodeTab maps (matchLen-3) below 128 to codes; see llCodeTab.
var mlCodeTab [128]uint8

// mlCode maps a match length (≥3) to its code.
func mlCode(matchLen uint32) uint8 {
	v := matchLen - 3
	if v < 128 {
		return mlCodeTab[v]
	}
	hb := uint8(mathbits.Len32(v) - 1) // ≥7
	return 43 + (hb - 7)               // baseline 131 (v=128) lives at code 43
}

func init() {
	for c := 0; c <= maxLLCode; c++ {
		lo := llBaselines[c]
		hi := lo + 1<<llExtraBits[c]
		for v := lo; v < hi && v < uint32(len(llCodeTab)); v++ {
			llCodeTab[v] = uint8(c)
		}
	}
	for c := 0; c <= maxMLCode; c++ {
		lo := mlBaselines[c] - 3
		hi := lo + 1<<mlExtraBits[c]
		for v := lo; v < hi && v < uint32(len(mlCodeTab)); v++ {
			mlCodeTab[v] = uint8(c)
		}
	}
}

// Offset coding follows Zstandard's scheme including repeat offsets: the
// coded "offset value" is offset+3 for literal offsets, while values 1-3
// select one of three rolling repeat slots (initialized to {1,4,8} at each
// block). code = floor(log2(value)), value = (1<<code) + extra with `code`
// extra bits. Repeats make consecutive same-offset matches — ubiquitous in
// record-structured datacenter data — nearly free to encode.
const maxOFCode = 31

// repState is the rolling repeat-offset stack shared (in lockstep) by
// encoder and decoder.
type repState [3]uint32

func newRepState() repState { return repState{1, 4, 8} }

// encode maps an actual offset to its coded value, updating the stack.
func (r *repState) encode(offset uint32) uint32 {
	switch offset {
	case r[0]:
		return 1
	case r[1]:
		r[0], r[1] = r[1], r[0]
		return 2
	case r[2]:
		r[0], r[1], r[2] = r[2], r[0], r[1]
		return 3
	default:
		r[0], r[1], r[2] = offset, r[0], r[1]
		return offset + 3
	}
}

// decode maps a coded value back to the actual offset, updating the stack.
func (r *repState) decode(value uint32) uint32 {
	switch value {
	case 1:
		return r[0]
	case 2:
		r[0], r[1] = r[1], r[0]
		return r[0]
	case 3:
		off := r[2]
		r[0], r[1], r[2] = r[2], r[0], r[1]
		return off
	default:
		off := value - 3
		r[0], r[1], r[2] = off, r[0], r[1]
		return off
	}
}

func ofCode(value uint32) uint8 {
	return uint8(mathbits.Len32(value) - 1)
}

func ofExtra(value uint32) (extra uint32, nbits uint8) {
	c := ofCode(value)
	return value - 1<<c, c
}

// llExtra returns the extra-bit payload for a literal length under its code.
func llExtra(litLen uint32, code uint8) uint32 { return litLen - llBaselines[code] }

// mlExtra returns the extra-bit payload for a match length under its code.
func mlExtra(matchLen uint32, code uint8) uint32 { return matchLen - mlBaselines[code] }
