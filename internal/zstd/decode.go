package zstd

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/datacomp/datacomp/internal/bits"
	"github.com/datacomp/datacomp/internal/fse"
	"github.com/datacomp/datacomp/internal/huffman"
	"github.com/datacomp/datacomp/internal/stage"
	"github.com/datacomp/datacomp/internal/wildcopy"
)

// ErrCorrupt is returned for undecodable frames.
var ErrCorrupt = errors.New("zstd: corrupt frame")

// ErrDictMismatch is returned when a frame requires a dictionary that was
// not supplied or does not match the recorded dictionary ID.
var ErrDictMismatch = errors.New("zstd: dictionary missing or mismatched")

// frameHeader is the parsed fixed part of a frame.
type frameHeader struct {
	contentSize uint64
	dictID      uint32
	version     int
	hasDict     bool
	hasChecksum bool
	headerLen   int
}

func parseHeader(src []byte) (frameHeader, error) {
	var h frameHeader
	if len(src) < 6 {
		return h, ErrCorrupt
	}
	if src[0] != frameMagicV1[0] || src[1] != frameMagicV1[1] || src[2] != frameMagicV1[2] {
		return h, ErrCorrupt
	}
	switch src[3] {
	case frameMagicV1[3]:
		h.version = 1
	case frameMagicV2[3]:
		h.version = 2
	default:
		return h, ErrCorrupt
	}
	flags := src[4]
	if flags&^(flagDict|flagChecksum) != 0 {
		return h, ErrCorrupt
	}
	h.hasDict = flags&flagDict != 0
	h.hasChecksum = flags&flagChecksum != 0
	size, n := binary.Uvarint(src[5:])
	if n <= 0 {
		return h, ErrCorrupt
	}
	pos := 5 + n
	if h.hasDict {
		if len(src) < pos+4 {
			return h, ErrCorrupt
		}
		h.dictID = binary.LittleEndian.Uint32(src[pos:])
		pos += 4
	}
	h.contentSize = size
	h.headerLen = pos
	return h, nil
}

// FrameDictID reports the dictionary ID recorded in a frame header and
// whether the frame requires a dictionary at all. Managed-compression
// services use it to resolve the right dictionary version before
// decompressing.
func FrameDictID(src []byte) (id uint32, required bool, err error) {
	h, err := parseHeader(src)
	if err != nil {
		return 0, false, err
	}
	return h.dictID, h.hasDict, nil
}

// DecompressedSize reports the content size recorded in a frame header.
func DecompressedSize(src []byte) (int, error) {
	h, err := parseHeader(src)
	if err != nil {
		return 0, err
	}
	if h.contentSize > 1<<31 {
		return 0, ErrCorrupt
	}
	return int(h.contentSize), nil
}

// Decoder decompresses frames produced with a fixed dictionary, reusing its
// history buffer and entropy-table scratch across frames so a warmed Decoder
// performs zero heap allocations per frame. Not safe for concurrent use.
type Decoder struct {
	dict []byte
	buf  []byte // history: dict prefix + decoded content
	bd   blockDecoder
}

// SetStageHook installs a hook fired at stage transitions inside
// Decompress (stage.Entropy before a block's entropy decode, stage.App
// before its sequence execution). A nil hook disables notification. The
// hook is called from the decompressing goroutine only.
func (dec *Decoder) SetStageHook(h stage.Hook) { dec.bd.hook = h }

// NewDecoder returns a Decoder for frames compressed with dict (nil for
// dictionary-less frames).
func NewDecoder(dict []byte) *Decoder {
	return &Decoder{dict: dict}
}

// Decompress decodes a frame, appending the content to dst. dict must be
// the same content-prefix dictionary used at compression time (nil when the
// frame was compressed without one).
func Decompress(dst, src []byte, dict []byte) ([]byte, error) {
	d := Decoder{dict: dict}
	return d.Decompress(dst, src)
}

// Decompress decodes a frame, appending the content to dst.
func (dec *Decoder) Decompress(dst, src []byte) ([]byte, error) {
	dict := dec.dict
	h, err := parseHeader(src)
	if err != nil {
		return nil, err
	}
	if h.contentSize > 1<<31 {
		return nil, ErrCorrupt
	}
	if h.hasDict {
		if DictID(dict) != h.dictID {
			return nil, ErrDictMismatch
		}
	} else if len(dict) > 0 {
		return nil, ErrDictMismatch
	}
	pos := h.headerLen

	// Decode into a history buffer seeded with the dictionary so match
	// offsets can reach into it. The header's content size is untrusted:
	// cap the preallocation and let verified blocks grow the buffer.
	capHint := int(h.contentSize)
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	if need := len(dict) + capHint; cap(dec.buf) < need {
		dec.buf = make([]byte, 0, need)
	}
	buf := append(dec.buf[:0], dict...)
	base := len(buf)

	d := &dec.bd
	d.v2 = h.version >= 2
	for {
		if pos+3 > len(src) {
			return nil, ErrCorrupt
		}
		v := uint32(src[pos]) | uint32(src[pos+1])<<8 | uint32(src[pos+2])<<16
		pos += 3
		last := v&1 != 0
		typ := int(v >> 1 & 3)
		size := int(v >> 3)
		switch typ {
		case blockRaw:
			if pos+size > len(src) {
				return nil, ErrCorrupt
			}
			buf = append(buf, src[pos:pos+size]...)
			pos += size
		case blockRLE:
			if pos >= len(src) {
				return nil, ErrCorrupt
			}
			b := src[pos]
			pos++
			for i := 0; i < size; i++ {
				buf = append(buf, b)
			}
		case blockCompressed:
			if pos+size > len(src) {
				return nil, ErrCorrupt
			}
			buf, err = d.decode(buf, src[pos:pos+size])
			if err != nil {
				return nil, err
			}
			pos += size
		default:
			return nil, ErrCorrupt
		}
		if len(buf)-base > int(h.contentSize) {
			return nil, ErrCorrupt
		}
		if last {
			break
		}
	}
	if len(buf)-base != int(h.contentSize) {
		return nil, ErrCorrupt
	}
	dec.buf = buf // keep grown history capacity for the next frame
	if h.hasChecksum {
		if pos+8 > len(src) {
			return nil, ErrCorrupt
		}
		want := binary.LittleEndian.Uint64(src[pos:])
		if fnv64a(buf[base:]) != want {
			return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
		}
		pos += 8
	}
	if pos != len(src) {
		return nil, ErrCorrupt
	}
	return append(dst, buf[base:]...), nil
}

// blockDecoder holds reusable scratch for compressed-block decoding: the
// section buffers plus the Huffman and FSE table scratch, so repeated blocks
// rebuild entropy tables in place.
type blockDecoder struct {
	lits  []byte
	llc   []byte
	ofc   []byte
	mlc   []byte
	huff  huffman.Scratch
	fseSc fse.Scratch
	hook  stage.Hook
	v2    bool // frame version ≥2: multi-stream entropy modes allowed
}

func (d *blockDecoder) enterStage(s stage.ID) {
	if d.hook != nil {
		d.hook(s)
	}
}

// decodeStream reads one sequence-code stream.
func (d *blockDecoder) decodeStream(dst []byte, mode byte, src []byte, pos, n int) ([]byte, int, error) {
	switch mode {
	case seqRLE:
		if pos >= len(src) {
			return nil, 0, ErrCorrupt
		}
		b := src[pos]
		pos++
		for i := 0; i < n; i++ {
			dst = append(dst, b)
		}
		return dst, pos, nil
	case seqRaw:
		if pos+n > len(src) {
			return nil, 0, ErrCorrupt
		}
		dst = append(dst, src[pos:pos+n]...)
		return dst, pos + n, nil
	case seqFSE, seqFSE2:
		if mode == seqFSE2 && !d.v2 {
			return nil, 0, ErrCorrupt
		}
		length, k := binary.Uvarint(src[pos:])
		if k <= 0 || pos+k+int(length) > len(src) {
			return nil, 0, ErrCorrupt
		}
		pos += k
		var err error
		if mode == seqFSE2 {
			dst, err = d.fseSc.Decompress2(dst, src[pos:pos+int(length)], n)
		} else {
			dst, err = d.fseSc.Decompress(dst, src[pos:pos+int(length)], n)
		}
		if err != nil {
			return nil, 0, err
		}
		return dst, pos + int(length), nil
	default:
		return nil, 0, ErrCorrupt
	}
}

// decode expands one compressed block into buf (which carries all prior
// history for match resolution).
func (d *blockDecoder) decode(buf, src []byte) ([]byte, error) {
	pos := 0
	if len(src) < 2 {
		return nil, ErrCorrupt
	}
	d.enterStage(stage.Entropy)
	litMode := src[pos]
	pos++
	litCount, n := binary.Uvarint(src[pos:])
	if n <= 0 || litCount > MaxBlockSize {
		return nil, ErrCorrupt
	}
	pos += n
	d.lits = d.lits[:0]
	switch litMode {
	case litsRaw:
		if pos+int(litCount) > len(src) {
			return nil, ErrCorrupt
		}
		d.lits = append(d.lits, src[pos:pos+int(litCount)]...)
		pos += int(litCount)
	case litsRLE:
		if pos >= len(src) {
			return nil, ErrCorrupt
		}
		b := src[pos]
		pos++
		for i := 0; i < int(litCount); i++ {
			d.lits = append(d.lits, b)
		}
	case litsHuff, litsHuff4:
		if litMode == litsHuff4 && !d.v2 {
			return nil, ErrCorrupt
		}
		compLen, k := binary.Uvarint(src[pos:])
		if k <= 0 || pos+k+int(compLen) > len(src) {
			return nil, ErrCorrupt
		}
		pos += k
		var err error
		if litMode == litsHuff4 {
			d.lits, err = d.huff.Decompress4(d.lits, src[pos:pos+int(compLen)], int(litCount))
		} else {
			d.lits, err = d.huff.Decompress(d.lits, src[pos:pos+int(compLen)], int(litCount))
		}
		if err != nil {
			return nil, err
		}
		pos += int(compLen)
	default:
		return nil, ErrCorrupt
	}

	numSeqs64, n := binary.Uvarint(src[pos:])
	if n <= 0 || numSeqs64 > MaxBlockSize {
		return nil, ErrCorrupt
	}
	pos += n
	numSeqs := int(numSeqs64)
	if numSeqs == 0 {
		if pos != len(src) {
			return nil, ErrCorrupt
		}
		d.enterStage(stage.App)
		return append(buf, d.lits...), nil
	}

	if pos >= len(src) {
		return nil, ErrCorrupt
	}
	modeByte := src[pos]
	pos++
	modes := [3]byte{modeByte & 3, modeByte >> 2 & 3, modeByte >> 4 & 3}
	var err error
	d.llc, pos, err = d.decodeStream(d.llc[:0], modes[0], src, pos, numSeqs)
	if err != nil {
		return nil, err
	}
	d.ofc, pos, err = d.decodeStream(d.ofc[:0], modes[1], src, pos, numSeqs)
	if err != nil {
		return nil, err
	}
	d.mlc, pos, err = d.decodeStream(d.mlc[:0], modes[2], src, pos, numSeqs)
	if err != nil {
		return nil, err
	}
	exLen, k := binary.Uvarint(src[pos:])
	if k <= 0 || pos+k+int(exLen) != len(src) {
		return nil, ErrCorrupt
	}
	pos += k
	var extras bits.Reader64
	extras.Init(src[pos : pos+int(exLen)])

	d.enterStage(stage.App)
	// 16 readable bytes past the literal buffer let the sequence loop copy
	// short literal runs in unconditional 16-byte chunks.
	litsLen := len(d.lits)
	if cap(d.lits)-litsLen < 16 {
		nl := make([]byte, litsLen, 2*cap(d.lits)+16)
		copy(nl, d.lits)
		d.lits = nl
	}
	litSrc := d.lits[:litsLen+16]
	litPos := 0
	reps := newRepState()
	for i := 0; i < numSeqs; i++ {
		lc, oc, mc := d.llc[i], d.ofc[i], d.mlc[i]
		if lc > maxLLCode || oc > maxOFCode || mc > maxMLCode {
			return nil, ErrCorrupt
		}
		// All three extras fields almost always fit one refill window
		// (≤56 bits); only huge-offset sequences (ll+of+ml extras up to
		// 63 bits) need the second refill. Reads past the end zero-extend
		// and are rejected by the Overrun check below.
		lb, mb := uint(llExtraBits[lc]), uint(mlExtraBits[mc])
		extras.Refill()
		llx := extras.ReadBits(lb)
		ofx := extras.ReadBits(uint(oc))
		if lb+uint(oc)+mb > 56 {
			extras.Refill()
		}
		mlx := extras.ReadBits(mb)
		litLen := int(llBaselines[lc]) + int(llx)
		ofValue := uint32(uint64(1)<<oc + ofx)
		offset := int(reps.decode(ofValue))
		matchLen := int(mlBaselines[mc]) + int(mlx)
		if offset == 0 {
			return nil, ErrCorrupt
		}
		if litPos+litLen > litsLen {
			return nil, ErrCorrupt
		}
		// Reserve room for the whole sequence plus slack up front so both
		// copies below can run in unconditional 16-byte chunks that spill
		// only into reserved capacity.
		buf = wildcopy.Reserve(buf, litLen+matchLen+32)
		n := len(buf)
		if litLen <= 16 {
			wildcopy.Copy16(buf[n:n+16:cap(buf)], litSrc[litPos:])
			buf = buf[:n+litLen]
		} else {
			buf = buf[:n+litLen]
			copy(buf[n:], litSrc[litPos:litPos+litLen])
		}
		litPos += litLen
		if offset > len(buf) {
			return nil, ErrCorrupt
		}
		if offset >= 16 {
			buf = wildcopy.MatchSlack(buf, offset, matchLen)
		} else {
			buf = wildcopy.Match(buf, offset, matchLen)
		}
	}
	if extras.Overrun() {
		return nil, ErrCorrupt
	}
	// Trailing literals not claimed by any sequence.
	buf = append(buf, d.lits[litPos:]...)
	return buf, nil
}
