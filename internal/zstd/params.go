package zstd

import (
	"fmt"
	mathbits "math/bits"

	"github.com/datacomp/datacomp/internal/lz"
)

// Level bounds. Negative levels trade ratio for speed by skipping positions
// in the fast match finder, mirroring Zstandard's --fast modes.
const (
	MinLevel = -5
	MaxLevel = 22
)

// DefaultLevel matches the upstream library's default.
const DefaultLevel = 3

// MaxBlockSize is the block granularity of the frame format (128 KiB, as in
// Zstandard).
const MaxBlockSize = 1 << 17

// MinWindowLog and MaxWindowLog bound the match window. The upper bound is
// kept at 2^27 so the CompSim window sweep in the paper's sensitivity study 3
// (2^10..2^24) fits comfortably.
const (
	MinWindowLog = 10
	MaxWindowLog = 27
)

// levelParams is one row of the level table.
type levelParams struct {
	windowLog uint
	hashLog   uint
	chainLog  uint
	depth     int
	minMatch  int
	strategy  lz.Strategy
	skipStep  int
}

// levelTable maps levels 1..22; negative levels and 0 are derived in
// paramsForLevel. The progression mirrors Zstandard's: growing windows,
// deeper chains, lazier parsing as the level climbs, and optimal (DP)
// parsing at the top levels (btopt territory).
var levelTable = map[int]levelParams{
	1:  {17, 15, 0, 0, 4, lz.Fast, 1},
	2:  {18, 16, 0, 0, 4, lz.Fast, 1},
	3:  {18, 17, 16, 4, 4, lz.Greedy, 0},
	4:  {18, 17, 17, 8, 4, lz.Greedy, 0},
	5:  {18, 18, 17, 8, 3, lz.Lazy, 0},
	6:  {18, 18, 18, 16, 3, lz.Lazy, 0},
	7:  {19, 18, 18, 16, 3, lz.Lazy2, 0},
	8:  {19, 18, 19, 32, 3, lz.Lazy2, 0},
	9:  {19, 19, 19, 48, 3, lz.Lazy2, 0},
	10: {20, 19, 20, 64, 3, lz.Lazy2, 0},
	11: {20, 20, 20, 96, 3, lz.Lazy2, 0},
	12: {20, 20, 21, 128, 3, lz.Lazy2, 0},
	13: {21, 20, 21, 192, 3, lz.Lazy2, 0},
	14: {21, 20, 21, 256, 3, lz.Lazy2, 0},
	15: {21, 21, 22, 384, 3, lz.Lazy2, 0},
	16: {21, 21, 22, 512, 3, lz.Lazy2, 0},
	17: {22, 22, 22, 768, 3, lz.Lazy2, 0},
	18: {22, 22, 23, 1024, 3, lz.Lazy2, 0},
	19: {23, 22, 23, 1536, 3, lz.Optimal, 0},
	20: {25, 23, 24, 2048, 3, lz.Optimal, 0},
	21: {26, 23, 24, 3072, 3, lz.Optimal, 0},
	22: {27, 23, 24, 4096, 3, lz.Optimal, 0},
}

// paramsForLevel resolves a level to its parameter row.
func paramsForLevel(level int) (levelParams, error) {
	if level < MinLevel || level > MaxLevel {
		return levelParams{}, fmt.Errorf("zstd: level %d out of range [%d,%d]", level, MinLevel, MaxLevel)
	}
	if level >= 1 {
		return levelTable[level], nil
	}
	// Level 0 means default; negative levels accelerate level 1 by skipping.
	if level == 0 {
		return levelTable[DefaultLevel], nil
	}
	p := levelTable[1]
	p.skipStep = 1 - level // -1 → 2, -5 → 6
	return p, nil
}

// adaptParams shrinks table and window sizes for small inputs, the behaviour
// the paper calls out for KVSTORE1: "for smaller inputs, Zstd shrinks its
// hash tables ... the working memory will sit in a faster cache" (§IV-E).
func adaptParams(p levelParams, srcLen int, windowOverride uint) lz.Params {
	if windowOverride != 0 {
		p.windowLog = windowOverride
		// An explicit window is a capacity statement (CompSim sizes real
		// hardware from it): scale the index structures so the matcher can
		// actually reach across it, as zstd derives cparams from windowLog.
		if h := windowOverride - 1; h > p.hashLog {
			if h > 22 {
				h = 22
			}
			p.hashLog = h
		}
		if p.strategy != lz.Fast {
			if c := windowOverride; c > p.chainLog {
				if c > 23 {
					c = 23
				}
				p.chainLog = c
			}
		}
	}
	if p.windowLog < MinWindowLog {
		p.windowLog = MinWindowLog
	}
	if p.windowLog > MaxWindowLog {
		p.windowLog = MaxWindowLog
	}
	if srcLen > 0 {
		need := uint(mathbits.Len64(uint64(srcLen - 1)))
		if need < MinWindowLog {
			need = MinWindowLog
		}
		if p.windowLog > need {
			p.windowLog = need
		}
		// Hash/chain tables larger than the input waste cache; keep a 2x
		// slack so near-boundary inputs still hash well.
		if p.hashLog > need+1 {
			p.hashLog = need + 1
		}
		if p.chainLog > need+1 && p.chainLog != 0 {
			p.chainLog = need + 1
		}
	}
	if p.hashLog < 6 {
		p.hashLog = 6
	}
	if p.strategy != lz.Fast && p.chainLog < 6 {
		p.chainLog = 6
	}
	return lz.Params{
		WindowLog: p.windowLog,
		HashLog:   p.hashLog,
		ChainLog:  p.chainLog,
		Depth:     p.depth,
		MinMatch:  p.minMatch,
		SkipStep:  p.skipStep,
		Strategy:  p.strategy,
	}
}
