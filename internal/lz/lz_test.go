package lz

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func testParams(s Strategy) Params {
	return Params{
		WindowLog: 17,
		HashLog:   14,
		ChainLog:  14,
		Depth:     16,
		MinMatch:  4,
		SkipStep:  1,
		Strategy:  s,
	}
}

// compressible produces text-like data with heavy repetition.
func compressible(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"the", "compression", "datacenter", "service", "zstd", "level", "block", "cache", "fleet", "cycles"}
	var buf bytes.Buffer
	for buf.Len() < n {
		buf.WriteString(words[rng.Intn(len(words))])
		buf.WriteByte(' ')
	}
	return buf.Bytes()[:n]
}

var allStrategies = []Strategy{Fast, Greedy, Lazy, Lazy2, Optimal}

func TestParseReconstruct(t *testing.T) {
	src := compressible(1, 50000)
	for _, s := range allStrategies {
		m, err := NewMatcher(testParams(s))
		if err != nil {
			t.Fatal(err)
		}
		seqs := m.Parse(nil, src, 0)
		if TotalLen(seqs) != len(src) {
			t.Fatalf("%v: coverage %d != %d", s, TotalLen(seqs), len(src))
		}
		out, err := Apply(src, 0, seqs)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !bytes.Equal(out, src) {
			t.Fatalf("%v: reconstruction mismatch", s)
		}
	}
}

func TestParseWithHistory(t *testing.T) {
	dict := compressible(2, 4096)
	body := compressible(2, 2000) // same distribution => matches into dict
	src := append(append([]byte{}, dict...), body...)
	for _, s := range allStrategies {
		m, err := NewMatcher(testParams(s))
		if err != nil {
			t.Fatal(err)
		}
		seqs := m.Parse(nil, src, len(dict))
		if TotalLen(seqs) != len(body) {
			t.Fatalf("%v: coverage %d != %d", s, TotalLen(seqs), len(body))
		}
		out, err := Apply(src, len(dict), seqs)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !bytes.Equal(out, body) {
			t.Fatalf("%v: reconstruction mismatch", s)
		}
		// With a good dictionary some matches must reach into history.
		intoDict := false
		pos := len(dict)
		for _, q := range seqs {
			pos += int(q.LitLen)
			if q.MatchLen > 0 && int(q.Offset) > pos-len(dict) {
				intoDict = true
			}
			pos += int(q.MatchLen)
		}
		if !intoDict {
			t.Errorf("%v: no matches reached into the dictionary", s)
		}
	}
}

func TestParseIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := make([]byte, 10000)
	rng.Read(src)
	for _, s := range allStrategies {
		m, err := NewMatcher(testParams(s))
		if err != nil {
			t.Fatal(err)
		}
		seqs := m.Parse(nil, src, 0)
		out, err := Apply(src, 0, seqs)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !bytes.Equal(out, src) {
			t.Fatalf("%v: reconstruction mismatch", s)
		}
	}
}

func TestParseEmptyAndTiny(t *testing.T) {
	m, err := NewMatcher(testParams(Greedy))
	if err != nil {
		t.Fatal(err)
	}
	if seqs := m.Parse(nil, nil, 0); len(seqs) != 0 {
		t.Fatalf("empty input: %v", seqs)
	}
	for n := 1; n < 12; n++ {
		src := bytes.Repeat([]byte{'a'}, n)
		seqs := m.Parse(nil, src, 0)
		out, err := Apply(src, 0, seqs)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(out, src) {
			t.Fatalf("n=%d: mismatch", n)
		}
	}
}

func TestParseRunOfBytes(t *testing.T) {
	src := bytes.Repeat([]byte{'x'}, 100000)
	for _, s := range allStrategies {
		m, err := NewMatcher(testParams(s))
		if err != nil {
			t.Fatal(err)
		}
		seqs := m.Parse(nil, src, 0)
		out, err := Apply(src, 0, seqs)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !bytes.Equal(out, src) {
			t.Fatalf("%v: mismatch", s)
		}
		if len(seqs) > 10 {
			t.Errorf("%v: run of a single byte should collapse to few sequences, got %d", s, len(seqs))
		}
	}
}

func TestMaxMatchClipping(t *testing.T) {
	p := testParams(Greedy)
	p.MinMatch = 3
	p.MaxMatch = 258 // DEFLATE limit
	m, err := NewMatcher(p)
	if err != nil {
		t.Fatal(err)
	}
	src := bytes.Repeat([]byte{'q'}, 5000)
	seqs := m.Parse(nil, src, 0)
	for _, s := range seqs {
		if int(s.MatchLen) > 258 {
			t.Fatalf("match length %d exceeds max", s.MatchLen)
		}
	}
	out, err := Apply(src, 0, seqs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, src) {
		t.Fatal("mismatch")
	}
}

func TestWindowRespected(t *testing.T) {
	p := testParams(Greedy)
	p.WindowLog = 10 // 1 KiB window
	m, err := NewMatcher(p)
	if err != nil {
		t.Fatal(err)
	}
	// Repetition at distance 4 KiB: outside the window, must not match it.
	block := compressible(7, 4096)
	src := append(append([]byte{}, block...), block...)
	seqs := m.Parse(nil, src, 0)
	for _, s := range seqs {
		if s.Offset > 1024 {
			t.Fatalf("offset %d exceeds window", s.Offset)
		}
	}
	out, err := Apply(src, 0, seqs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, src) {
		t.Fatal("mismatch")
	}
}

func TestStrategyEffortOrdering(t *testing.T) {
	// Higher-effort strategies should produce a cheaper parse. Cost proxy:
	// every literal costs ~1 byte, every sequence ~3 bytes of headers.
	src := compressible(11, 1<<17)
	parseCost := func(s Strategy, depth int) int {
		p := testParams(s)
		p.Depth = depth
		m, err := NewMatcher(p)
		if err != nil {
			t.Fatal(err)
		}
		cost := 0
		for _, q := range m.Parse(nil, src, 0) {
			cost += int(q.LitLen) + 3
		}
		return cost
	}
	fast := parseCost(Fast, 1)
	lazy2 := parseCost(Lazy2, 64)
	if lazy2 > fast+fast/50 {
		t.Fatalf("lazy2 parse cost %d materially above fast %d", lazy2, fast)
	}
	optimal := parseCost(Optimal, 64)
	if optimal > lazy2+lazy2/25 {
		t.Fatalf("optimal parse cost %d materially above lazy2 %d", optimal, lazy2)
	}
}

func TestMinMatchVariants(t *testing.T) {
	for _, mm := range []int{3, 4, 5, 6} {
		p := testParams(Lazy)
		p.MinMatch = mm
		m, err := NewMatcher(p)
		if err != nil {
			t.Fatalf("minmatch %d: %v", mm, err)
		}
		src := compressible(int64(mm), 20000)
		seqs := m.Parse(nil, src, 0)
		for _, s := range seqs {
			if s.MatchLen != 0 && int(s.MatchLen) < mm {
				t.Fatalf("minmatch %d: match of length %d emitted", mm, s.MatchLen)
			}
		}
		out, err := Apply(src, 0, seqs)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, src) {
			t.Fatalf("minmatch %d: mismatch", mm)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	good := testParams(Greedy)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{WindowLog: 5, HashLog: 14, ChainLog: 14, MinMatch: 4},
		{WindowLog: 17, HashLog: 2, ChainLog: 14, MinMatch: 4},
		{WindowLog: 17, HashLog: 14, ChainLog: 14, MinMatch: 1},
		{WindowLog: 17, HashLog: 14, ChainLog: 14, MinMatch: 4, MaxMatch: 2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	if _, err := NewMatcher(Params{}); err == nil {
		t.Error("zero params must be rejected")
	}
}

func TestQuickRoundtripAllStrategies(t *testing.T) {
	f := func(seed int64, size uint16, strat uint8, startFrac uint8) bool {
		n := int(size)%30000 + 1
		src := compressible(seed, n)
		// Sprinkle random bytes to vary compressibility.
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		for k := 0; k < n/20; k++ {
			src[rng.Intn(n)] = byte(rng.Intn(256))
		}
		start := int(startFrac) % (n + 1) / 2
		p := testParams(allStrategies[int(strat)%len(allStrategies)])
		m, err := NewMatcher(p)
		if err != nil {
			return false
		}
		seqs := m.Parse(nil, src, start)
		out, err := Apply(src, start, seqs)
		return err == nil && bytes.Equal(out, src[start:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParse(b *testing.B) {
	src := compressible(1, 1<<17)
	for _, s := range allStrategies {
		b.Run(s.String(), func(b *testing.B) {
			m, err := NewMatcher(testParams(s))
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(src)))
			var seqs []Sequence
			for i := 0; i < b.N; i++ {
				seqs = m.Parse(seqs[:0], src, 0)
			}
		})
	}
}
