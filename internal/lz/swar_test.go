package lz

import (
	"bytes"
	"math/rand"
	"testing"
)

// adversarialInputs returns the input shapes most likely to expose SWAR
// kernel bugs: lengths straddling the 8-byte word and 4 KiB page boundaries,
// all-equal runs (maximal match lengths, every hash identical), and
// alternating patterns (period-2 self-similarity at every even offset).
func adversarialInputs(t testing.TB) map[string][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	inputs := map[string][]byte{}

	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 4093, 4096, 4099, 8191} {
		b := make([]byte, n)
		rng.Read(b)
		inputs["random-"+itoa(n)] = b
	}
	for _, n := range []int{7, 8, 9, 64, 4095, 4097} {
		inputs["allequal-"+itoa(n)] = bytes.Repeat([]byte{0xAA}, n)
	}
	for _, n := range []int{16, 255, 4096} {
		b := make([]byte, n)
		for i := range b {
			if i&1 == 0 {
				b[i] = 0x55
			} else {
				b[i] = 0xAA
			}
		}
		inputs["alternating-"+itoa(n)] = b
	}
	// Mostly-equal with a difference planted at every position relative to
	// an 8-byte window: catches TrailingZeros byte-offset conversion bugs.
	for d := 0; d < 9; d++ {
		b := bytes.Repeat([]byte{0x33}, 64)
		b[32+d] ^= 0xFF
		inputs["diff-at-"+itoa(d)] = b
	}
	return inputs
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestHashSWARMatchesRef(t *testing.T) {
	for name, src := range adversarialInputs(t) {
		if len(src) < 8 {
			continue
		}
		for minMatch := 3; minMatch <= 7; minMatch++ {
			for _, hashLog := range []uint{6, 13, 17} {
				m := &Matcher{
					p:        Params{MinMatch: minMatch, HashLog: hashLog},
					hashPre:  uint8(64 - 8*minMatch),
					hashPost: uint8(64 - hashLog),
				}
				for i := 0; i+8 <= len(src); i++ {
					got := m.hashAt(src, i)
					want := hashRef(src, i, minMatch, hashLog)
					if got != want {
						t.Fatalf("%s: hashAt(src,%d) mm=%d hl=%d = %#x, ref %#x",
							name, i, minMatch, hashLog, got, want)
					}
					if got>>hashLog != 0 {
						t.Fatalf("%s: hash %#x exceeds %d bits", name, got, hashLog)
					}
				}
			}
		}
	}
}

// TestHashIgnoresBytesBeyondPrefix pins the preShift masking: bytes past the
// minMatch prefix must not influence the bucket, or distinct prefixes would
// alias and the quick-reject mask would diverge from the hash.
func TestHashIgnoresBytesBeyondPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for minMatch := 3; minMatch <= 7; minMatch++ {
		m := &Matcher{
			p:        Params{MinMatch: minMatch, HashLog: 14},
			hashPre:  uint8(64 - 8*minMatch),
			hashPost: uint8(64 - 14),
		}
		a := make([]byte, 16)
		b := make([]byte, 16)
		for trial := 0; trial < 1000; trial++ {
			rng.Read(a)
			rng.Read(b)
			copy(b, a[:minMatch])
			if m.hashAt(a, 0) != m.hashAt(b, 0) {
				t.Fatalf("mm=%d: equal %d-byte prefixes hash differently", minMatch, minMatch)
			}
		}
	}
}

func TestMatchLenSWARMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for name, src := range adversarialInputs(t) {
		if len(src) < 2 {
			continue
		}
		// Exhaustive on small inputs, sampled on large ones.
		trials := len(src) * 4
		if trials > 4000 {
			trials = 4000
		}
		for trial := 0; trial < trials; trial++ {
			b := 1 + rng.Intn(len(src)-1)
			a := rng.Intn(b)
			limit := b + rng.Intn(len(src)-b+1)
			got := matchLen(src, a, b, limit)
			want := matchLenRef(src, a, b, limit)
			if got != want {
				t.Fatalf("%s: matchLen(a=%d,b=%d,limit=%d) = %d, ref %d", name, a, b, limit, got, want)
			}
		}
	}
}

// TestParseRoundTripAdversarial runs every strategy over the adversarial
// corpus and checks the sequences reconstruct the input exactly.
func TestParseRoundTripAdversarial(t *testing.T) {
	params := map[string]Params{
		"fast-mm3":  {WindowLog: 15, HashLog: 12, MinMatch: 3, Strategy: Fast},
		"fast-mm4":  {WindowLog: 16, HashLog: 13, MinMatch: 4, Strategy: Fast},
		"fast-skip": {WindowLog: 16, HashLog: 13, MinMatch: 4, SkipStep: 3, Strategy: Fast},
		"greedy":    {WindowLog: 16, HashLog: 13, ChainLog: 13, Depth: 16, MinMatch: 4, Strategy: Greedy},
		"lazy-max":  {WindowLog: 16, HashLog: 13, ChainLog: 13, Depth: 16, MinMatch: 4, MaxMatch: 273, Strategy: Lazy},
		"lazy2-mm3": {WindowLog: 15, HashLog: 12, ChainLog: 12, Depth: 8, MinMatch: 3, MaxMatch: 258, Strategy: Lazy2},
		"optimal":   {WindowLog: 15, HashLog: 12, ChainLog: 12, Depth: 8, MinMatch: 4, Strategy: Optimal},
	}
	for pname, p := range params {
		m, err := NewMatcher(p)
		if err != nil {
			t.Fatalf("%s: %v", pname, err)
		}
		for name, src := range adversarialInputs(t) {
			seqs := m.Parse(nil, src, 0)
			got, err := Apply(src, 0, seqs)
			if err != nil {
				t.Fatalf("%s/%s: apply: %v", pname, name, err)
			}
			if !bytes.Equal(got, src) {
				t.Fatalf("%s/%s: roundtrip mismatch (len %d vs %d)", pname, name, len(got), len(src))
			}
		}
	}
}

// TestMatcherReuseAcrossPayloads exercises the epoch-based (clear-free)
// tables: one matcher parses many unrelated payloads of varying sizes and
// every parse must roundtrip — stale entries from earlier, longer payloads
// must never surface as matches.
func TestMatcherReuseAcrossPayloads(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, p := range []Params{
		{WindowLog: 16, HashLog: 13, MinMatch: 4, Strategy: Fast},
		{WindowLog: 16, HashLog: 13, ChainLog: 13, Depth: 16, MinMatch: 4, Strategy: Lazy},
	} {
		m, err := NewMatcher(p)
		if err != nil {
			t.Fatal(err)
		}
		// Long payload first so later short parses see a table full of
		// out-of-range positions.
		sizes := []int{1 << 16, 100, 4096, 1, 9, 1 << 15, 256, 0, 777}
		for round := 0; round < 3; round++ {
			for _, n := range sizes {
				src := make([]byte, n)
				if n > 0 && rng.Intn(2) == 0 {
					// Compressible: repeat a small alphabet in chunks.
					chunk := make([]byte, 17)
					rng.Read(chunk)
					for i := 0; i < n; i += len(chunk) {
						copy(src[i:], chunk)
					}
				} else {
					rng.Read(src)
				}
				seqs := m.Parse(nil, src, 0)
				got, err := Apply(src, 0, seqs)
				if err != nil {
					t.Fatalf("strategy %v n=%d: %v", p.Strategy, n, err)
				}
				if !bytes.Equal(got, src) {
					t.Fatalf("strategy %v n=%d: roundtrip mismatch", p.Strategy, n)
				}
			}
		}
	}
}

// TestEpochOverflowClears drives base near int32 overflow and checks the
// wraparound path (the only remaining table clear) still roundtrips.
func TestEpochOverflowClears(t *testing.T) {
	m, err := NewMatcher(Params{WindowLog: 15, HashLog: 12, MinMatch: 4, Strategy: Fast})
	if err != nil {
		t.Fatal(err)
	}
	src := bytes.Repeat([]byte("overflow epoch test payload "), 64)
	seqs := m.Parse(nil, src, 0)
	if _, err := Apply(src, 0, seqs); err != nil {
		t.Fatal(err)
	}
	m.base = 1<<31 - 100 // force the overflow clear on the next parse
	seqs = m.Parse(nil, src, 0)
	got, err := Apply(src, 0, seqs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("roundtrip mismatch after epoch overflow clear")
	}
	if m.base != 1+int32(len(src)) {
		t.Fatalf("base = %d after overflow clear, want %d", m.base, 1+len(src))
	}
}

// TestFastReseedFindsRepeatedRuns pins the re-seeding fix: a long match
// must leave enough table entries behind that a later occurrence of its
// interior is still found. Layout: A B A' B where A' repeats A so the
// parser is mid-match when B first appears; B's second occurrence is only
// findable if the matched span was seeded.
func TestFastReseedFindsRepeatedRuns(t *testing.T) {
	m, err := NewMatcher(Params{WindowLog: 18, HashLog: 14, MinMatch: 4, Strategy: Fast})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	a := make([]byte, 512)
	b := make([]byte, 512)
	rng.Read(a)
	rng.Read(b)
	src := append(append(append(append([]byte{}, a...), b...), a...), b...)
	seqs := m.Parse(nil, src, 0)
	matched := 0
	for _, s := range seqs {
		matched += int(s.MatchLen)
	}
	// The second A+B half (1024 bytes) is a verbatim repeat; with interior
	// seeding nearly all of it should be matched.
	if matched < 900 {
		t.Fatalf("matched only %d bytes of a 1024-byte repeat; interior seeding broken", matched)
	}
	if got, err := Apply(src, 0, seqs); err != nil || !bytes.Equal(got, src) {
		t.Fatalf("roundtrip failed: %v", err)
	}
}
