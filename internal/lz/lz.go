// Package lz implements the Lempel-Ziv match-finding stage shared by the
// LZ4, Zstd-style and DEFLATE-style codecs in this repository.
//
// The paper this repository reproduces (ISPASS'23, "Characterization of Data
// Compression in Datacenters") describes LZ compressors as a match-finding
// stage followed by an entropy stage, with the compression-speed/ratio
// trade-off governed almost entirely by the match finder. This package
// provides that stage as a family of strategies of increasing effort:
//
//	Fast    — single hash table, greedy, optional skip acceleration
//	          (used by LZ4 fast levels and negative Zstd-style levels)
//	Greedy  — hash chains, takes the best match at each position
//	Lazy    — hash chains, defers one position when a longer match follows
//	Lazy2   — hash chains, evaluates two following positions
//	Optimal — dynamic programming over chain candidates (approximate
//	          cheapest encoding; the paper's "slow dynamic programming
//	          algorithms" end of the spectrum)
//
// Parsers emit Sequences: runs of literals followed by a (offset, length)
// match, exactly the intermediate representation both entropy stages
// consume.
package lz

import (
	"encoding/binary"
	"fmt"
)

// Sequence is a single LZ77 parse step: LitLen literals copied verbatim,
// followed by MatchLen bytes copied from Offset bytes back. The final
// sequence of a parse may have MatchLen == 0 and Offset == 0 to flush
// trailing literals.
type Sequence struct {
	LitLen   uint32
	MatchLen uint32
	Offset   uint32
}

// Strategy selects the match-finding algorithm.
type Strategy int

const (
	// Fast uses a single hash table and greedy parsing with optional skip
	// acceleration.
	Fast Strategy = iota
	// Greedy walks hash chains and commits to the best match at each
	// position.
	Greedy
	// Lazy additionally evaluates the next position before committing.
	Lazy
	// Lazy2 evaluates the next two positions before committing.
	Lazy2
	// Optimal runs a dynamic program over chain candidates to approximate
	// the cheapest encoding (the btopt end of the spectrum). Slowest,
	// best ratio.
	Optimal
)

func (s Strategy) String() string {
	switch s {
	case Fast:
		return "fast"
	case Greedy:
		return "greedy"
	case Lazy:
		return "lazy"
	case Lazy2:
		return "lazy2"
	case Optimal:
		return "optimal"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Params configure a match finder. The zero value is not valid; use a codec
// level table or fill every field.
type Params struct {
	WindowLog uint // maximum match offset is 1<<WindowLog
	HashLog   uint // hash table has 1<<HashLog heads
	ChainLog  uint // chain table has 1<<ChainLog links (chain strategies)
	Depth     int  // maximum chain positions examined per search
	MinMatch  int  // smallest emitted match length (3 or 4)
	MaxMatch  int  // largest emitted match length, 0 = unlimited
	SkipStep  int  // Fast only: advance per miss; >1 trades ratio for speed
	Strategy  Strategy
}

// Validate reports whether the parameters are internally consistent.
func (p Params) Validate() error {
	if p.WindowLog < 10 || p.WindowLog > 30 {
		return fmt.Errorf("lz: window log %d out of range [10,30]", p.WindowLog)
	}
	if p.HashLog < 6 || p.HashLog > 28 {
		return fmt.Errorf("lz: hash log %d out of range [6,28]", p.HashLog)
	}
	if p.Strategy != Fast && (p.ChainLog < 6 || p.ChainLog > 30) {
		return fmt.Errorf("lz: chain log %d out of range [6,30]", p.ChainLog)
	}
	if p.MinMatch < 3 || p.MinMatch > 7 {
		return fmt.Errorf("lz: min match %d out of range [3,7]", p.MinMatch)
	}
	if p.MaxMatch != 0 && p.MaxMatch < p.MinMatch {
		return fmt.Errorf("lz: max match %d below min match %d", p.MaxMatch, p.MinMatch)
	}
	if p.Depth < 0 {
		return fmt.Errorf("lz: negative depth")
	}
	if p.SkipStep < 0 {
		return fmt.Errorf("lz: negative skip step")
	}
	return nil
}

const (
	prime3 = 506832829
	prime4 = 2654435761
	prime5 = 889523592379
	prime6 = 227718039650203
)

// Matcher is a reusable match finder. It is not safe for concurrent use.
type Matcher struct {
	p    Params
	head []int32
	prev []int32
}

// NewMatcher allocates a match finder for the given parameters.
func NewMatcher(p Params) (*Matcher, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &Matcher{p: p, head: make([]int32, 1<<p.HashLog)}
	if p.Strategy != Fast {
		m.prev = make([]int32, 1<<p.ChainLog)
	}
	return m, nil
}

// Params returns the matcher's configuration.
func (m *Matcher) Params() Params { return m.p }

func (m *Matcher) hash(src []byte, i int) uint32 {
	switch m.p.MinMatch {
	case 3:
		v := uint32(src[i]) | uint32(src[i+1])<<8 | uint32(src[i+2])<<16
		return (v * prime3) >> (32 - m.p.HashLog)
	case 4:
		v := binary.LittleEndian.Uint32(src[i:])
		return (v * prime4) >> (32 - m.p.HashLog)
	case 5:
		v := binary.LittleEndian.Uint64(src[i:]) << 24
		return uint32((v * prime5) >> (64 - m.p.HashLog))
	default:
		v := binary.LittleEndian.Uint64(src[i:]) << 16
		return uint32((v * prime6) >> (64 - m.p.HashLog))
	}
}

// matchLen counts equal bytes between src[a:] and src[b:], up to limit.
func matchLen(src []byte, a, b, limit int) int {
	n := 0
	for b+n+8 <= limit {
		x := binary.LittleEndian.Uint64(src[a+n:]) ^ binary.LittleEndian.Uint64(src[b+n:])
		if x != 0 {
			return n + trailingZeroBytes(x)
		}
		n += 8
	}
	for b+n < limit && src[a+n] == src[b+n] {
		n++
	}
	return n
}

func trailingZeroBytes(x uint64) int {
	n := 0
	for x&0xff == 0 {
		n++
		x >>= 8
	}
	return n
}

// Parse appends the LZ77 sequences covering src[start:] to dst. Bytes before
// start act as history (dictionary or previous blocks): matches may point
// into them but no sequence covers them. The sum of LitLen+MatchLen over the
// returned sequences always equals len(src)-start.
func (m *Matcher) Parse(dst []Sequence, src []byte, start int) []Sequence {
	if start >= len(src) {
		return dst
	}
	for i := range m.head {
		m.head[i] = -1
	}
	if m.p.Strategy == Fast {
		return m.parseFast(dst, src, start)
	}
	for i := range m.prev {
		m.prev[i] = -1
	}
	if m.p.Strategy == Optimal {
		return m.parseOptimal(dst, src, start)
	}
	return m.parseChain(dst, src, start)
}

func (m *Matcher) parseFast(dst []Sequence, src []byte, start int) []Sequence {
	minMatch := m.p.MinMatch
	window := 1 << m.p.WindowLog
	step := m.p.SkipStep
	if step < 1 {
		step = 1
	}
	// Index history so matches can reach into it.
	hashEnd := len(src) - 8
	if minMatch < 5 {
		hashEnd = len(src) - minMatch
	}
	for i := 0; i < start && i <= hashEnd; i++ {
		m.head[m.hash(src, i)] = int32(i)
	}

	litStart := start
	i := start
	end := len(src)
	for i+minMatch <= end && i <= hashEnd {
		h := m.hash(src, i)
		cand := int(m.head[h])
		m.head[h] = int32(i)
		if cand >= 0 && i-cand <= window {
			ml := matchLen(src, cand, i, end)
			if ml >= minMatch {
				// Extend backwards into pending literals.
				for i > litStart && cand > 0 && src[i-1] == src[cand-1] {
					i--
					cand--
					ml++
				}
				if m.p.MaxMatch > 0 && ml > m.p.MaxMatch {
					ml = m.p.MaxMatch
				}
				dst = append(dst, Sequence{
					LitLen:   uint32(i - litStart),
					MatchLen: uint32(ml),
					Offset:   uint32(i - cand),
				})
				// Seed a couple of hashes inside the match so later data
				// can still find it.
				if mid := i + ml/2; mid <= hashEnd && ml >= minMatch*2 {
					m.head[m.hash(src, mid)] = int32(mid)
				}
				i += ml
				litStart = i
				if i <= hashEnd {
					m.head[m.hash(src, i-1)] = int32(i - 1)
				}
				continue
			}
		}
		i += step
	}
	if litStart < end {
		dst = append(dst, Sequence{LitLen: uint32(end - litStart)})
	}
	return dst
}

// findBest walks the hash chain at position i and returns the best match.
func (m *Matcher) findBest(src []byte, i, end int) (bestLen, bestPos int) {
	window := 1 << m.p.WindowLog
	chainMask := int32(1<<m.p.ChainLog - 1)
	minMatch := m.p.MinMatch
	limit := i - window
	if limit < 0 {
		limit = 0
	}
	cand := int(m.head[m.hash(src, i)])
	depth := m.p.Depth
	bestLen = minMatch - 1
	for d := 0; d < depth && cand >= limit && cand >= 0 && cand < i; d++ {
		// Quick reject: check the byte just past the current best.
		if i+bestLen < end && src[cand+bestLen] == src[i+bestLen] {
			if ml := matchLen(src, cand, i, end); ml > bestLen {
				bestLen = ml
				bestPos = cand
				if m.p.MaxMatch > 0 && ml >= m.p.MaxMatch {
					break
				}
				if i+ml >= end {
					break
				}
			}
		}
		next := int(m.prev[int32(cand)&chainMask])
		if next >= cand {
			break // stale entry from a farther position, chain ended
		}
		cand = next
	}
	if bestLen < minMatch {
		return 0, 0
	}
	return bestLen, bestPos
}

func (m *Matcher) insert(src []byte, i int) {
	h := m.hash(src, i)
	chainMask := int32(1<<m.p.ChainLog - 1)
	m.prev[int32(i)&chainMask] = m.head[h]
	m.head[h] = int32(i)
}

func (m *Matcher) parseChain(dst []Sequence, src []byte, start int) []Sequence {
	minMatch := m.p.MinMatch
	end := len(src)
	hashEnd := end - 8
	if minMatch < 5 {
		hashEnd = end - minMatch
	}
	for i := 0; i < start && i <= hashEnd; i++ {
		m.insert(src, i)
	}

	lazySteps := 0
	switch m.p.Strategy {
	case Lazy:
		lazySteps = 1
	case Lazy2:
		lazySteps = 2
	}

	litStart := start
	i := start
	lastOffset := 0
	for i+minMatch <= end && i <= hashEnd {
		ml, pos := m.findBest(src, i, end)
		m.insert(src, i)
		// Repeat-offset probe: re-using the previous match distance is
		// nearly free to encode downstream (Zstandard's rep codes), so a
		// same-distance match wins unless the chain found a clearly longer
		// one.
		if lastOffset > 0 && i-lastOffset >= 0 {
			if repLen := matchLen(src, i-lastOffset, i, end); repLen >= minMatch {
				if m.p.MaxMatch > 0 && repLen > m.p.MaxMatch {
					repLen = m.p.MaxMatch
				}
				if repLen+2 >= ml {
					ml, pos = repLen, i-lastOffset
				}
			}
		}
		if ml == 0 {
			i++
			continue
		}
		// Lazy evaluation: a longer match starting 1-2 bytes later wins.
		for step := 0; step < lazySteps; step++ {
			j := i + 1
			if j+minMatch > end || j > hashEnd {
				break
			}
			ml2, pos2 := m.findBest(src, j, end)
			m.insert(src, j)
			if ml2 > ml+step { // must beat the cost of an extra literal
				i, ml, pos = j, ml2, pos2
			} else {
				break
			}
		}
		// Extend backwards into pending literals.
		for i > litStart && pos > 0 && src[i-1] == src[pos-1] {
			i--
			pos--
			ml++
		}
		if m.p.MaxMatch > 0 && ml > m.p.MaxMatch {
			ml = m.p.MaxMatch
		}
		dst = append(dst, Sequence{
			LitLen:   uint32(i - litStart),
			MatchLen: uint32(ml),
			Offset:   uint32(i - pos),
		})
		lastOffset = i - pos
		// Index the interior of the match (bounded so long matches stay
		// cheap).
		interior := ml
		if interior > 64 {
			interior = 64
		}
		for k := i + 1; k < i+interior && k <= hashEnd; k++ {
			m.insert(src, k)
		}
		i += ml
		litStart = i
	}
	if litStart < end {
		dst = append(dst, Sequence{LitLen: uint32(end - litStart)})
	}
	return dst
}

// Apply reconstructs the parsed region from sequences: literals are taken
// from orig (the original buffer handed to Parse) and matches are copied
// from the sliding history. It is the reference decoder used by tests.
func Apply(orig []byte, start int, seqs []Sequence) ([]byte, error) {
	out := make([]byte, 0, len(orig)-start)
	hist := append([]byte{}, orig[:start]...)
	pos := start
	for _, s := range seqs {
		if pos+int(s.LitLen) > len(orig) {
			return nil, fmt.Errorf("lz: literal run past end")
		}
		hist = append(hist, orig[pos:pos+int(s.LitLen)]...)
		out = append(out, orig[pos:pos+int(s.LitLen)]...)
		pos += int(s.LitLen)
		if s.MatchLen > 0 {
			if int(s.Offset) > len(hist) || s.Offset == 0 {
				return nil, fmt.Errorf("lz: bad offset %d at pos %d", s.Offset, pos)
			}
			for k := 0; k < int(s.MatchLen); k++ {
				b := hist[len(hist)-int(s.Offset)]
				hist = append(hist, b)
				out = append(out, b)
			}
			pos += int(s.MatchLen)
		}
	}
	if pos != len(orig) {
		return nil, fmt.Errorf("lz: sequences cover %d bytes, want %d", pos-start, len(orig)-start)
	}
	return out, nil
}

// TotalLen sums the bytes covered by a sequence list.
func TotalLen(seqs []Sequence) int {
	n := 0
	for _, s := range seqs {
		n += int(s.LitLen) + int(s.MatchLen)
	}
	return n
}
