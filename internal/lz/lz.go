// Package lz implements the Lempel-Ziv match-finding stage shared by the
// LZ4, Zstd-style and DEFLATE-style codecs in this repository.
//
// The paper this repository reproduces (ISPASS'23, "Characterization of Data
// Compression in Datacenters") describes LZ compressors as a match-finding
// stage followed by an entropy stage, with the compression-speed/ratio
// trade-off governed almost entirely by the match finder. This package
// provides that stage as a family of strategies of increasing effort:
//
//	Fast    — single hash table, greedy, optional skip acceleration
//	          (used by LZ4 fast levels and negative Zstd-style levels)
//	Greedy  — hash chains, takes the best match at each position
//	Lazy    — hash chains, defers one position when a longer match follows
//	Lazy2   — hash chains, evaluates two following positions
//	Optimal — dynamic programming over chain candidates (approximate
//	          cheapest encoding; the paper's "slow dynamic programming
//	          algorithms" end of the spectrum)
//
// Parsers emit Sequences: runs of literals followed by a (offset, length)
// match, exactly the intermediate representation both entropy stages
// consume.
//
// The hot kernels are SWAR-shaped: every hashed position is loaded as one
// unaligned 64-bit word (through encoding/binary, so 32-bit and
// alignment-strict targets stay correct), hashed with a single
// multiply-shift, and match lengths resolve 8 bytes per XOR via
// bits.TrailingZeros64. Scalar reference kernels live in ref.go and the
// differential tests in swar_test.go hold the two implementations equal.
package lz

import (
	"encoding/binary"
	"fmt"
	mathbits "math/bits"
)

// Sequence is a single LZ77 parse step: LitLen literals copied verbatim,
// followed by MatchLen bytes copied from Offset bytes back. The final
// sequence of a parse may have MatchLen == 0 and Offset == 0 to flush
// trailing literals.
type Sequence struct {
	LitLen   uint32
	MatchLen uint32
	Offset   uint32
}

// Strategy selects the match-finding algorithm.
type Strategy int

const (
	// Fast uses a single hash table and greedy parsing with optional skip
	// acceleration.
	Fast Strategy = iota
	// Greedy walks hash chains and commits to the best match at each
	// position.
	Greedy
	// Lazy additionally evaluates the next position before committing.
	Lazy
	// Lazy2 evaluates the next two positions before committing.
	Lazy2
	// Optimal runs a dynamic program over chain candidates to approximate
	// the cheapest encoding (the btopt end of the spectrum). Slowest,
	// best ratio.
	Optimal
)

func (s Strategy) String() string {
	switch s {
	case Fast:
		return "fast"
	case Greedy:
		return "greedy"
	case Lazy:
		return "lazy"
	case Lazy2:
		return "lazy2"
	case Optimal:
		return "optimal"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Params configure a match finder. The zero value is not valid; use a codec
// level table or fill every field.
type Params struct {
	WindowLog uint // maximum match offset is 1<<WindowLog
	HashLog   uint // hash table has 1<<HashLog heads
	ChainLog  uint // chain table has 1<<ChainLog links (chain strategies)
	Depth     int  // maximum chain positions examined per search
	MinMatch  int  // smallest emitted match length (3 or 4)
	MaxMatch  int  // largest emitted match length, 0 = unlimited
	SkipStep  int  // Fast only: advance per miss; >1 trades ratio for speed
	Strategy  Strategy
}

// Validate reports whether the parameters are internally consistent.
func (p Params) Validate() error {
	if p.WindowLog < 10 || p.WindowLog > 30 {
		return fmt.Errorf("lz: window log %d out of range [10,30]", p.WindowLog)
	}
	if p.HashLog < 6 || p.HashLog > 28 {
		return fmt.Errorf("lz: hash log %d out of range [6,28]", p.HashLog)
	}
	if p.Strategy != Fast && (p.ChainLog < 6 || p.ChainLog > 30) {
		return fmt.Errorf("lz: chain log %d out of range [6,30]", p.ChainLog)
	}
	if p.MinMatch < 3 || p.MinMatch > 7 {
		return fmt.Errorf("lz: min match %d out of range [3,7]", p.MinMatch)
	}
	if p.MaxMatch != 0 && p.MaxMatch < p.MinMatch {
		return fmt.Errorf("lz: max match %d below min match %d", p.MaxMatch, p.MinMatch)
	}
	if p.Depth < 0 {
		return fmt.Errorf("lz: negative depth")
	}
	if p.SkipStep < 0 {
		return fmt.Errorf("lz: negative skip step")
	}
	return nil
}

// hashMul64 is the 64-bit odd multiply-shift constant (2^64/φ) all hash
// widths share: the hashed prefix is shifted to the top of the word, so one
// multiply mixes MinMatch bytes and the top HashLog product bits become the
// bucket. See hashWord and hashRef (the scalar reference).
const hashMul64 = 0x9e3779b185ebca87

// hashWord hashes the low (64-preShift)/8 bytes of an unaligned 64-bit
// little-endian load. preShift = 64 - 8*MinMatch discards the bytes beyond
// the hashed prefix; postShift = 64 - HashLog selects the bucket from the
// top product bits. One shift, one multiply, one shift — cheap enough to
// run at every input position.
func hashWord(x uint64, preShift, postShift uint) uint32 {
	return uint32(((x << preShift) * hashMul64) >> postShift)
}

// matchLen counts equal bytes between src[a:] and src[b:] (a < b), up to
// limit. The fast loop XORs unaligned 8-byte words and converts the first
// difference to a byte count with TrailingZeros64; the scalar tail handles
// the final <8 bytes.
func matchLen(src []byte, a, b, limit int) int {
	n := 0
	for b+n+8 <= limit {
		x := binary.LittleEndian.Uint64(src[a+n:]) ^ binary.LittleEndian.Uint64(src[b+n:])
		if x != 0 {
			return n + mathbits.TrailingZeros64(x)>>3
		}
		n += 8
	}
	for b+n < limit && src[a+n] == src[b+n] {
		n++
	}
	return n
}

// skipTrigger shifts the Fast strategy's miss counter into its stride: after
// 1<<skipTrigger consecutive misses the parser starts skipping positions
// geometrically (the lz4/zstd-fast acceleration shape, but branch-free —
// the stride is a shift of the counter, not a conditional).
const skipTrigger = 6

// seedCap bounds how many leading interior positions of an accepted match
// the Fast strategy re-hashes. Matched spans used to seed only their
// midpoint and tail, which made repeated content (log lines, fixed-width
// records) invisible to later searches; now every skipped position is
// hashed up to this cap, with midpoint and tail still covering the rest of
// longer matches. Measured on the bench corpora, cap 8 keeps ~all of the
// ratio gain of unbounded seeding (+0.7% logs, +1.4% records) at a
// fraction of its cost.
const seedCap = 8

// Matcher is a reusable match finder. It is not safe for concurrent use.
type Matcher struct {
	p    Params
	head []int32
	prev []int32
	// base is the epoch offset of the current parse: tables store base+pos
	// and a lookup subtracts base, so entries from earlier parses surface
	// as negative (invalid) without clearing the tables. Parse bumps base
	// by len(src) each call and only memclears on int32 overflow — this is
	// what makes small-payload and batch compression cheap, since a 64 KiB
	// table clear would otherwise dominate a 1 KiB parse.
	base int32
	// Precomputed hashWord shifts for p.MinMatch and p.HashLog.
	hashPre  uint8
	hashPost uint8
}

// NewMatcher allocates a match finder for the given parameters.
func NewMatcher(p Params) (*Matcher, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &Matcher{
		p:        p,
		head:     make([]int32, 1<<p.HashLog),
		base:     1, // 0 is the empty table value
		hashPre:  uint8(64 - 8*p.MinMatch),
		hashPost: uint8(64 - p.HashLog),
	}
	if p.Strategy != Fast {
		m.prev = make([]int32, 1<<p.ChainLog)
	}
	return m, nil
}

// Params returns the matcher's configuration.
func (m *Matcher) Params() Params { return m.p }

// hashAt hashes the MinMatch-byte prefix at src[i:]. Callers must ensure
// i+8 <= len(src): the kernel always loads a full word.
func (m *Matcher) hashAt(src []byte, i int) uint32 {
	return hashWord(binary.LittleEndian.Uint64(src[i:]), uint(m.hashPre), uint(m.hashPost))
}

// Parse appends the LZ77 sequences covering src[start:] to dst. Bytes before
// start act as history (dictionary or previous blocks): matches may point
// into them but no sequence covers them. The sum of LitLen+MatchLen over the
// returned sequences always equals len(src)-start.
func (m *Matcher) Parse(dst []Sequence, src []byte, start int) []Sequence {
	if start >= len(src) {
		return dst
	}
	if int64(m.base)+int64(len(src)) >= 1<<31 {
		// Epoch overflow (~2 GiB parsed through one matcher): take the one
		// real table clear and restart the epoch counter.
		clear(m.head)
		clear(m.prev)
		m.base = 1
	}
	switch m.p.Strategy {
	case Fast:
		dst = m.parseFast(dst, src, start)
	case Optimal:
		dst = m.parseOptimal(dst, src, start)
	default:
		dst = m.parseChain(dst, src, start)
	}
	m.base += int32(len(src))
	return dst
}

func (m *Matcher) parseFast(dst []Sequence, src []byte, start int) []Sequence {
	minMatch := m.p.MinMatch
	window := 1 << m.p.WindowLog
	step := m.p.SkipStep
	if step < 1 {
		step = 1
	}
	end := len(src)
	// The SWAR kernels load 8 bytes at every hashed position, so indexing
	// stops at len-8; the final tail stays literal (LZ4's own end-of-block
	// rules forbid matches there anyway).
	hashEnd := end - 8
	pre, post := uint(m.hashPre), uint(m.hashPost)
	base := m.base
	head := m.head
	// The quick-reject compares the hashed prefix of a candidate in one
	// register op; minMatch 3 masks the fourth byte out.
	qmask := uint32(0xffffffff)
	if minMatch == 3 {
		qmask = 0x00ffffff
	}
	// Index history so matches can reach into it.
	for i := 0; i < start && i <= hashEnd; i++ {
		head[hashWord(binary.LittleEndian.Uint64(src[i:]), pre, post)] = base + int32(i)
	}

	litStart := start
	i := start
	// Branch-reduced skip acceleration: sw counts misses in its low bits and
	// yields the stride from its high bits, so incompressible stretches are
	// skipped geometrically without a conditional in the loop.
	sw := uint32(step) << skipTrigger
	for i <= hashEnd {
		x := binary.LittleEndian.Uint64(src[i:])
		h := hashWord(x, pre, post)
		cand := int(head[h] - base)
		head[h] = base + int32(i)
		if cand >= 0 && i-cand <= window &&
			(uint32(x)^binary.LittleEndian.Uint32(src[cand:]))&qmask == 0 {
			ml := matchLen(src, cand, i, end)
			if ml >= minMatch {
				// Extend backwards into pending literals.
				for i > litStart && cand > 0 && src[i-1] == src[cand-1] {
					i--
					cand--
					ml++
				}
				if m.p.MaxMatch > 0 && ml > m.p.MaxMatch {
					ml = m.p.MaxMatch
				}
				dst = append(dst, Sequence{
					LitLen:   uint32(i - litStart),
					MatchLen: uint32(ml),
					Offset:   uint32(i - cand),
				})
				// Seed the matched span so later data still finds it: every
				// skipped position up to seedCap, then midpoint and tail of
				// anything longer.
				next := i + ml
				seedEnd := next
				if seedEnd > i+1+seedCap {
					seedEnd = i + 1 + seedCap
				}
				if seedEnd > hashEnd+1 {
					seedEnd = hashEnd + 1
				}
				for k := i + 1; k < seedEnd; k++ {
					head[hashWord(binary.LittleEndian.Uint64(src[k:]), pre, post)] = base + int32(k)
				}
				if mid := i + ml/2; mid <= hashEnd && mid >= seedEnd {
					head[hashWord(binary.LittleEndian.Uint64(src[mid:]), pre, post)] = base + int32(mid)
				}
				if t := next - 1; t >= seedEnd && t <= hashEnd {
					head[hashWord(binary.LittleEndian.Uint64(src[t:]), pre, post)] = base + int32(t)
				}
				i = next
				litStart = next
				sw = uint32(step) << skipTrigger
				continue
			}
		}
		i += int(sw >> skipTrigger)
		sw++
	}
	if litStart < end {
		dst = append(dst, Sequence{LitLen: uint32(end - litStart)})
	}
	return dst
}

// findBest walks the hash chain at position i and returns the best match.
func (m *Matcher) findBest(src []byte, i, end int) (bestLen, bestPos int) {
	window := 1 << m.p.WindowLog
	chainMask := int32(1<<m.p.ChainLog - 1)
	minMatch := m.p.MinMatch
	base := m.base
	limit := i - window
	if limit < 0 {
		limit = 0
	}
	cand := int(m.head[m.hashAt(src, i)] - base)
	depth := m.p.Depth
	bestLen = minMatch - 1
	for d := 0; d < depth && cand >= limit && cand >= 0 && cand < i; d++ {
		// Fetch the next link before the byte compares so the chain load
		// overlaps the match work (prefetch-shaped walk).
		next := int(m.prev[int32(cand)&chainMask] - base)
		// Quick reject: check the byte just past the current best.
		if i+bestLen < end && src[cand+bestLen] == src[i+bestLen] {
			if ml := matchLen(src, cand, i, end); ml > bestLen {
				bestLen = ml
				bestPos = cand
				if m.p.MaxMatch > 0 && ml >= m.p.MaxMatch {
					break
				}
				if i+ml >= end {
					break
				}
			}
		}
		if next >= cand {
			break // stale entry from a farther position, chain ended
		}
		cand = next
	}
	if bestLen < minMatch {
		return 0, 0
	}
	return bestLen, bestPos
}

func (m *Matcher) insert(src []byte, i int) {
	h := m.hashAt(src, i)
	chainMask := int32(1<<m.p.ChainLog - 1)
	m.prev[int32(i)&chainMask] = m.head[h]
	m.head[h] = m.base + int32(i)
}

func (m *Matcher) parseChain(dst []Sequence, src []byte, start int) []Sequence {
	minMatch := m.p.MinMatch
	end := len(src)
	hashEnd := end - 8
	for i := 0; i < start && i <= hashEnd; i++ {
		m.insert(src, i)
	}

	lazySteps := 0
	switch m.p.Strategy {
	case Lazy:
		lazySteps = 1
	case Lazy2:
		lazySteps = 2
	}

	litStart := start
	i := start
	lastOffset := 0
	for i+minMatch <= end && i <= hashEnd {
		ml, pos := m.findBest(src, i, end)
		m.insert(src, i)
		// Repeat-offset probe: re-using the previous match distance is
		// nearly free to encode downstream (Zstandard's rep codes), so a
		// same-distance match wins unless the chain found a clearly longer
		// one.
		if lastOffset > 0 && i-lastOffset >= 0 {
			if repLen := matchLen(src, i-lastOffset, i, end); repLen >= minMatch {
				if m.p.MaxMatch > 0 && repLen > m.p.MaxMatch {
					repLen = m.p.MaxMatch
				}
				if repLen+2 >= ml {
					ml, pos = repLen, i-lastOffset
				}
			}
		}
		if ml == 0 {
			i++
			continue
		}
		// Lazy evaluation: a longer match starting 1-2 bytes later wins.
		for step := 0; step < lazySteps; step++ {
			j := i + 1
			if j+minMatch > end || j > hashEnd {
				break
			}
			ml2, pos2 := m.findBest(src, j, end)
			m.insert(src, j)
			if ml2 > ml+step { // must beat the cost of an extra literal
				i, ml, pos = j, ml2, pos2
			} else {
				break
			}
		}
		// Extend backwards into pending literals.
		for i > litStart && pos > 0 && src[i-1] == src[pos-1] {
			i--
			pos--
			ml++
		}
		if m.p.MaxMatch > 0 && ml > m.p.MaxMatch {
			ml = m.p.MaxMatch
		}
		dst = append(dst, Sequence{
			LitLen:   uint32(i - litStart),
			MatchLen: uint32(ml),
			Offset:   uint32(i - pos),
		})
		lastOffset = i - pos
		// Index the interior of the match (bounded so long matches stay
		// cheap).
		interior := ml
		if interior > 64 {
			interior = 64
		}
		for k := i + 1; k < i+interior && k <= hashEnd; k++ {
			m.insert(src, k)
		}
		i += ml
		litStart = i
	}
	if litStart < end {
		dst = append(dst, Sequence{LitLen: uint32(end - litStart)})
	}
	return dst
}

// Apply reconstructs the parsed region from sequences: literals are taken
// from orig (the original buffer handed to Parse) and matches are copied
// from the sliding history. It is the reference decoder used by tests.
func Apply(orig []byte, start int, seqs []Sequence) ([]byte, error) {
	out := make([]byte, 0, len(orig)-start)
	hist := append([]byte{}, orig[:start]...)
	pos := start
	for _, s := range seqs {
		if pos+int(s.LitLen) > len(orig) {
			return nil, fmt.Errorf("lz: literal run past end")
		}
		hist = append(hist, orig[pos:pos+int(s.LitLen)]...)
		out = append(out, orig[pos:pos+int(s.LitLen)]...)
		pos += int(s.LitLen)
		if s.MatchLen > 0 {
			if int(s.Offset) > len(hist) || s.Offset == 0 {
				return nil, fmt.Errorf("lz: bad offset %d at pos %d", s.Offset, pos)
			}
			for k := 0; k < int(s.MatchLen); k++ {
				b := hist[len(hist)-int(s.Offset)]
				hist = append(hist, b)
				out = append(out, b)
			}
			pos += int(s.MatchLen)
		}
	}
	if pos != len(orig) {
		return nil, fmt.Errorf("lz: sequences cover %d bytes, want %d", pos-start, len(orig)-start)
	}
	return out, nil
}

// TotalLen sums the bytes covered by a sequence list.
func TotalLen(seqs []Sequence) int {
	n := 0
	for _, s := range seqs {
		n += int(s.LitLen) + int(s.MatchLen)
	}
	return n
}
