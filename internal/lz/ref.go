package lz

// Scalar reference kernels for the SWAR fast paths in lz.go. These are the
// ground truth the differential tests in swar_test.go compare against: they
// assemble words byte-at-a-time (no unaligned multi-byte loads) and count
// match lengths with a plain byte loop, so any divergence in the SWAR
// versions — endianness, prefix masking, tail handling, off-by-one at the
// 8-byte boundary — shows up as a mismatch rather than silent corruption.

// hashRef computes the same bucket as Matcher.hashAt from individual byte
// loads: the minMatch-byte prefix at src[i:] is packed little-endian,
// shifted to the top of the word, and run through the shared multiply-shift.
func hashRef(src []byte, i, minMatch int, hashLog uint) uint32 {
	var x uint64
	for k := minMatch - 1; k >= 0; k-- {
		x = x<<8 | uint64(src[i+k])
	}
	x <<= 64 - 8*uint(minMatch)
	return uint32((x * hashMul64) >> (64 - hashLog))
}

// matchLenRef counts equal bytes between src[a:] and src[b:] up to limit,
// one byte at a time.
func matchLenRef(src []byte, a, b, limit int) int {
	n := 0
	for b+n < limit && src[a+n] == src[b+n] {
		n++
	}
	return n
}
