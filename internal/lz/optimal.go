package lz

import mathbits "math/bits"

// Optimal parsing: the "slow dynamic programming algorithms which attempt
// to find the optimal encoding" end of the paper's match-finder spectrum
// (§II-B). A forward DP assigns every position the cheapest known encoding
// cost in approximate output bits; hash chains supply match candidates and
// a backtrack recovers the sequence list. Used by the Zstd-style codec's
// highest levels, where compression speed is traded for the last few
// percent of ratio.

const (
	// litBits approximates the entropy-coded cost of one literal.
	litBits = 7
	// matchBaseBits approximates the fixed cost of a sequence (codes plus
	// FSE state amortization).
	matchBaseBits = 11
	// maxOptCandidates bounds chain positions examined per DP step.
	maxOptCandidates = 32
	// maxLenSamples bounds the lengths relaxed per candidate.
	maxLenSamples = 12
	// infPrice marks unreachable DP states.
	infPrice = int32(1) << 30
)

// matchPrice approximates the encoded size of a match in bits.
func matchPrice(length, offset int) int32 {
	ofBits := int32(mathbits.Len32(uint32(offset))) // code + extra bits
	var mlBits int32
	if v := length - 3; v >= 32 {
		mlBits = int32(mathbits.Len32(uint32(v))) - 4
	}
	return matchBaseBits + ofBits + mlBits
}

// optState is one DP cell: the cheapest way to reach this position.
type optState struct {
	price    int32
	matchLen int32 // 0 = arrived via literal
	offset   int32
}

// candidate is one chain hit at a position.
type candidate struct {
	pos    int
	maxLen int
}

// collectCandidates walks the hash chain at position i gathering distinct
// candidates (longest matches first would be ideal; chain order is
// newest-first which keeps offsets small for equal lengths).
func (m *Matcher) collectCandidates(src []byte, i, end int, out []candidate) []candidate {
	window := 1 << m.p.WindowLog
	chainMask := int32(1<<m.p.ChainLog - 1)
	limit := i - window
	if limit < 0 {
		limit = 0
	}
	base := m.base
	cand := int(m.head[m.hashAt(src, i)] - base)
	depth := m.p.Depth
	if depth > maxOptCandidates {
		depth = maxOptCandidates
	}
	best := m.p.MinMatch - 1
	for d := 0; d < depth && cand >= limit && cand >= 0 && cand < i; d++ {
		if i+best < end && src[cand+best] == src[i+best] {
			if ml := matchLen(src, cand, i, end); ml >= m.p.MinMatch {
				if m.p.MaxMatch > 0 && ml > m.p.MaxMatch {
					ml = m.p.MaxMatch
				}
				out = append(out, candidate{pos: cand, maxLen: ml})
				if ml > best {
					best = ml
				}
			}
		}
		next := int(m.prev[int32(cand)&chainMask] - base)
		if next >= cand {
			break
		}
		cand = next
	}
	return out
}

// parseOptimal runs the DP over src[start:] and backtracks into sequences.
func (m *Matcher) parseOptimal(dst []Sequence, src []byte, start int) []Sequence {
	end := len(src)
	n := end - start
	minMatch := m.p.MinMatch
	// hashAt always loads a full word, so indexing stops at len-8.
	hashEnd := end - 8
	for i := 0; i < start && i <= hashEnd; i++ {
		m.insert(src, i)
	}

	states := make([]optState, n+1)
	for i := 1; i <= n; i++ {
		states[i].price = infPrice
	}

	var cands []candidate
	for i := 0; i < n; i++ {
		cur := states[i].price
		pos := start + i
		if pos <= hashEnd {
			cands = m.collectCandidates(src, pos, end, cands[:0])
		} else {
			cands = cands[:0]
		}
		if pos <= hashEnd {
			m.insert(src, pos)
		}
		if cur >= infPrice {
			continue
		}
		// Literal step.
		if p := cur + litBits; p < states[i+1].price {
			states[i+1] = optState{price: p}
		}
		// Match steps: relax a sampled set of lengths per candidate.
		for _, c := range cands {
			offset := pos - c.pos
			span := c.maxLen - minMatch
			step := 1
			if span >= maxLenSamples {
				step = span/maxLenSamples + 1
			}
			for l := c.maxLen; l >= minMatch; l -= step {
				if p := cur + matchPrice(l, offset); p < states[i+l].price {
					states[i+l] = optState{price: p, matchLen: int32(l), offset: int32(offset)}
				}
			}
		}
	}

	// Backtrack from the end into reversed ops, then emit sequences in
	// forward order.
	type op struct{ ml, off int }
	ops := make([]op, 0, n/4+1)
	i := n
	for i > 0 {
		s := states[i]
		if s.matchLen == 0 {
			ops = append(ops, op{})
			i--
			continue
		}
		ops = append(ops, op{ml: int(s.matchLen), off: int(s.offset)})
		i -= int(s.matchLen)
	}
	lit := 0
	for k := len(ops) - 1; k >= 0; k-- {
		if ops[k].ml == 0 {
			lit++
			continue
		}
		dst = append(dst, Sequence{LitLen: uint32(lit), MatchLen: uint32(ops[k].ml), Offset: uint32(ops[k].off)})
		lit = 0
	}
	if lit > 0 {
		dst = append(dst, Sequence{LitLen: uint32(lit)})
	}
	return dst
}
