// Package managed implements the paper's Managed Compression service
// (§II-B): callers get a stateless Compress/Decompress API keyed by use
// case, while the service keeps the state — it samples payloads, trains
// per-use-case dictionaries from them, versions the dictionaries, and
// resolves the right version at decompression time from the dictionary ID
// embedded in each frame. This is how the paper's caches regain the
// compression ratio that per-item compression of small objects loses.
package managed

import (
	"errors"
	"fmt"
	"sync"

	"github.com/datacomp/datacomp/internal/dict"
	"github.com/datacomp/datacomp/internal/zstd"
)

// Config tunes the service.
type Config struct {
	// Level is the zstd-style compression level (default 3).
	Level int
	// DictSize bounds trained dictionaries (default 16 KiB).
	DictSize int
	// SampleEvery keeps one of every N compressed payloads for training
	// (default 4).
	SampleEvery int
	// TrainAfter (re)trains once this many new samples have accumulated
	// (default 256).
	TrainAfter int
	// MaxSamples bounds the retained training window (default 1024; older
	// samples age out so dictionaries track drifting data).
	MaxSamples int
}

func (c *Config) fill() {
	if c.Level == 0 {
		c.Level = 3
	}
	if c.DictSize == 0 {
		c.DictSize = 16 << 10
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 4
	}
	if c.TrainAfter <= 0 {
		c.TrainAfter = 256
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 1024
	}
}

// UseCaseStats describes one use case's state.
type UseCaseStats struct {
	Generations   int // dictionary versions trained so far
	Samples       int // samples currently retained
	RawBytes      int64
	StoredBytes   int64
	DictFrames    int64 // frames compressed with a dictionary
	NoDictFrames  int64
	ResolveMisses int64 // decompressions that needed a historical version
}

// Ratio is raw/stored bytes across all compressions of the use case.
func (s UseCaseStats) Ratio() float64 {
	if s.StoredBytes == 0 {
		return 0
	}
	return float64(s.RawBytes) / float64(s.StoredBytes)
}

// useCase holds the per-use-case state the paper says the service keeps so
// callers do not have to.
type useCase struct {
	plain    *zstd.Encoder
	current  *zstd.Encoder // nil until the first dictionary is trained
	currID   uint32
	dicts    map[uint32][]byte // every version ever trained, by ID
	samples  [][]byte
	sinceTr  int
	counter  int
	stats    UseCaseStats
	lastDict []byte
}

// Service is a managed-compression endpoint. Safe for concurrent use.
type Service struct {
	cfg Config
	mu  sync.Mutex
	ucs map[string]*useCase
}

// New builds a Service.
func New(cfg Config) *Service {
	cfg.fill()
	return &Service{cfg: cfg, ucs: make(map[string]*useCase)}
}

func (s *Service) usecase(name string) (*useCase, error) {
	if uc, ok := s.ucs[name]; ok {
		return uc, nil
	}
	plain, err := zstd.NewEncoder(zstd.Options{Level: s.cfg.Level})
	if err != nil {
		return nil, err
	}
	uc := &useCase{plain: plain, dicts: make(map[uint32][]byte)}
	s.ucs[name] = uc
	return uc, nil
}

// ErrEmptyUseCase is returned for operations without a use-case name.
var ErrEmptyUseCase = errors.New("managed: empty use case")

// Compress compresses src for the named use case, appending the frame to
// dst. The service transparently samples payloads and upgrades to trained
// dictionaries as enough history accumulates.
func (s *Service) Compress(usecase string, dst, src []byte) ([]byte, error) {
	if usecase == "" {
		return nil, ErrEmptyUseCase
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	uc, err := s.usecase(usecase)
	if err != nil {
		return nil, err
	}

	// Sampling: keep every Nth payload for training.
	uc.counter++
	if uc.counter%s.cfg.SampleEvery == 0 {
		uc.samples = append(uc.samples, append([]byte{}, src...))
		if len(uc.samples) > s.cfg.MaxSamples {
			uc.samples = uc.samples[len(uc.samples)-s.cfg.MaxSamples:]
		}
		uc.sinceTr++
		if uc.sinceTr >= s.cfg.TrainAfter {
			if err := s.retrainLocked(uc); err == nil {
				uc.sinceTr = 0
			}
			// Training failures (e.g. not enough data) are retried after
			// the next batch of samples.
		}
	}

	enc := uc.plain
	if uc.current != nil {
		enc = uc.current
		uc.stats.DictFrames++
	} else {
		uc.stats.NoDictFrames++
	}
	start := len(dst)
	out, err := enc.Compress(dst, src)
	if err != nil {
		return nil, err
	}
	uc.stats.RawBytes += int64(len(src))
	uc.stats.StoredBytes += int64(len(out) - start)
	uc.stats.Samples = len(uc.samples)
	return out, nil
}

// retrainLocked trains a new dictionary generation from the sample window.
func (s *Service) retrainLocked(uc *useCase) error {
	d, err := dict.Train(uc.samples, dict.DefaultParams(s.cfg.DictSize))
	if err != nil {
		return err
	}
	id := zstd.DictID(d)
	enc, err := zstd.NewEncoder(zstd.Options{Level: s.cfg.Level, Dict: d})
	if err != nil {
		return err
	}
	uc.dicts[id] = d
	uc.current = enc
	uc.currID = id
	uc.lastDict = d
	uc.stats.Generations++
	return nil
}

// ErrUnknownDictionary is returned when a frame references a dictionary
// this service never trained.
var ErrUnknownDictionary = errors.New("managed: frame references unknown dictionary")

// Decompress decodes a frame produced by Compress for the same use case,
// resolving whichever dictionary generation the frame was written with.
func (s *Service) Decompress(usecase string, dst, src []byte) ([]byte, error) {
	if usecase == "" {
		return nil, ErrEmptyUseCase
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	uc, err := s.usecase(usecase)
	if err != nil {
		return nil, err
	}
	id, required, err := zstd.FrameDictID(src)
	if err != nil {
		return nil, err
	}
	if !required {
		return zstd.Decompress(dst, src, nil)
	}
	d, ok := uc.dicts[id]
	if !ok {
		return nil, fmt.Errorf("%w (id %08x)", ErrUnknownDictionary, id)
	}
	if id != uc.currID {
		uc.stats.ResolveMisses++
	}
	return zstd.Decompress(dst, src, d)
}

// Stats snapshots a use case's statistics (zero value if unseen).
func (s *Service) Stats(usecase string) UseCaseStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if uc, ok := s.ucs[usecase]; ok {
		st := uc.stats
		st.Samples = len(uc.samples)
		return st
	}
	return UseCaseStats{}
}

// Dictionary returns the current dictionary generation for a use case
// (nil before the first training) — the out-of-band distribution hook for
// remote decompressors.
func (s *Service) Dictionary(usecase string) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if uc, ok := s.ucs[usecase]; ok {
		return append([]byte(nil), uc.lastDict...)
	}
	return nil
}

// UseCases lists the use cases seen so far.
func (s *Service) UseCases() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.ucs))
	for name := range s.ucs {
		out = append(out, name)
	}
	return out
}
