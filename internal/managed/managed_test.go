package managed

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/datacomp/datacomp/internal/corpus"
	"github.com/datacomp/datacomp/internal/zstd"
)

func items(seed int64, n int) [][]byte {
	typ := corpus.DefaultItemTypes()[0]
	return corpus.CacheItems(seed, typ, n)
}

func TestRoundtripBeforeAndAfterTraining(t *testing.T) {
	s := New(Config{SampleEvery: 1, TrainAfter: 50})
	payloads := items(1, 200)
	var frames [][]byte
	for _, p := range payloads {
		f, err := s.Compress("user_profile", nil, p)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	// Every frame — dictionary-less early ones and dictionary frames from
	// every later generation — must decompress.
	for i, f := range frames {
		back, err := s.Decompress("user_profile", nil, f)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(back, payloads[i]) {
			t.Fatalf("frame %d corrupted", i)
		}
	}
	st := s.Stats("user_profile")
	if st.Generations < 2 {
		t.Fatalf("expected multiple dictionary generations, got %d", st.Generations)
	}
	if st.NoDictFrames == 0 || st.DictFrames == 0 {
		t.Fatalf("expected both frame kinds: %+v", st)
	}
	if st.Ratio() <= 1 {
		t.Fatalf("ratio %.2f", st.Ratio())
	}
}

func TestDictionaryImprovesOverTime(t *testing.T) {
	s := New(Config{SampleEvery: 1, TrainAfter: 100, MaxSamples: 400})
	warm := items(2, 120) // triggers one training
	for _, p := range warm {
		if _, err := s.Compress("uc", nil, p); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats("uc").Generations == 0 {
		t.Fatal("no dictionary trained")
	}
	// Fresh items: compare managed output vs plain zstd.
	fresh := items(99, 100)
	plain, err := zstd.NewEncoder(zstd.Options{Level: 3})
	if err != nil {
		t.Fatal(err)
	}
	var managedBytes, plainBytes int
	for _, p := range fresh {
		mf, err := s.Compress("uc", nil, p)
		if err != nil {
			t.Fatal(err)
		}
		pf, err := plain.Compress(nil, p)
		if err != nil {
			t.Fatal(err)
		}
		managedBytes += len(mf)
		plainBytes += len(pf)
	}
	if managedBytes >= plainBytes {
		t.Fatalf("managed (%d) should beat plain (%d) on small items", managedBytes, plainBytes)
	}
}

func TestOldGenerationsRemainDecodable(t *testing.T) {
	s := New(Config{SampleEvery: 1, TrainAfter: 40, MaxSamples: 80})
	var oldFrame []byte
	var oldPayload []byte
	for gen := 0; gen < 5; gen++ {
		for _, p := range items(int64(gen), 60) {
			f, err := s.Compress("uc", nil, p)
			if err != nil {
				t.Fatal(err)
			}
			if gen == 1 && oldFrame == nil {
				oldFrame = f
				oldPayload = p
			}
		}
	}
	st := s.Stats("uc")
	if st.Generations < 3 {
		t.Fatalf("generations = %d", st.Generations)
	}
	back, err := s.Decompress("uc", nil, oldFrame)
	if err != nil {
		t.Fatalf("old generation frame: %v", err)
	}
	if !bytes.Equal(back, oldPayload) {
		t.Fatal("old frame corrupted")
	}
}

func TestUnknownDictionaryRejected(t *testing.T) {
	s := New(Config{})
	// A frame written with a dictionary the service never saw.
	d := bytes.Repeat([]byte("external dictionary content "), 40)
	enc, err := zstd.NewEncoder(zstd.Options{Level: 3, Dict: d})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := enc.Compress(nil, []byte("some payload some payload some payload"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Decompress("uc", nil, frame); err == nil {
		t.Fatal("unknown dictionary accepted")
	}
}

func TestUseCasesAreIsolated(t *testing.T) {
	s := New(Config{SampleEvery: 1, TrainAfter: 50})
	for _, p := range items(3, 60) {
		if _, err := s.Compress("a", nil, p); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats("a").Generations == 0 {
		t.Fatal("use case a should have trained")
	}
	if s.Stats("b").Generations != 0 {
		t.Fatal("use case b should be untouched")
	}
	ucs := s.UseCases()
	if len(ucs) != 1 || ucs[0] != "a" {
		t.Fatalf("use cases: %v", ucs)
	}
	if d := s.Dictionary("a"); len(d) == 0 {
		t.Fatal("dictionary not exported")
	}
	if d := s.Dictionary("b"); d != nil {
		t.Fatal("phantom dictionary")
	}
}

func TestEmptyUseCaseRejected(t *testing.T) {
	s := New(Config{})
	if _, err := s.Compress("", nil, []byte("x")); err != ErrEmptyUseCase {
		t.Fatalf("got %v", err)
	}
	if _, err := s.Decompress("", nil, []byte("x")); err != ErrEmptyUseCase {
		t.Fatalf("got %v", err)
	}
}

func TestConcurrentUse(t *testing.T) {
	s := New(Config{SampleEvery: 2, TrainAfter: 30})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			uc := fmt.Sprintf("uc-%d", g%3)
			rng := rand.New(rand.NewSource(int64(g)))
			typ := corpus.DefaultItemTypes()[g%4]
			for i := 0; i < 50; i++ {
				p := typ.Item(rng)
				f, err := s.Compress(uc, nil, p)
				if err != nil {
					t.Error(err)
					return
				}
				back, err := s.Decompress(uc, nil, f)
				if err != nil || !bytes.Equal(back, p) {
					t.Errorf("roundtrip: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
