// Package stats provides the small statistical toolkit used across the
// characterization harness: streaming moments, percentiles, histogram/CDF
// bucketing for size distributions (Figs 5, 8, 9), and the heavy-tailed
// samplers (lognormal, zipf, pareto) that drive the synthetic service
// workloads.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Welford accumulates streaming mean and variance.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Observe adds one value.
func (w *Welford) Observe(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// ObserveN adds n identical observations of x in O(1), merging a
// zero-variance batch by the Chan et al. parallel update. Telemetry
// histograms use it to summarize bucketed counts without replaying every
// observation.
func (w *Welford) ObserveN(x float64, n int64) {
	if n <= 0 {
		return
	}
	d := x - w.mean
	total := w.n + n
	w.mean += d * float64(n) / float64(total)
	w.m2 += d * d * float64(w.n) * float64(n) / float64(total)
	w.n = total
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the sample variance (0 for fewer than 2 observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of values using
// linear interpolation. The input is not modified.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// SizeHistogram buckets values into power-of-two size classes, the
// presentation the paper uses for item and block size distributions.
type SizeHistogram struct {
	counts map[int]int64 // bucket exponent -> count
	total  int64
	sum    float64
}

// NewSizeHistogram returns an empty histogram.
func NewSizeHistogram() *SizeHistogram {
	return &SizeHistogram{counts: make(map[int]int64)}
}

// Observe records one size in bytes.
func (h *SizeHistogram) Observe(size int) {
	if size < 0 {
		size = 0
	}
	exp := 0
	for 1<<exp < size {
		exp++
	}
	h.counts[exp]++
	h.total++
	h.sum += float64(size)
}

// Total returns the number of observations.
func (h *SizeHistogram) Total() int64 { return h.total }

// Mean returns the mean observed size.
func (h *SizeHistogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Bucket holds one histogram row.
type Bucket struct {
	UpperBound int // inclusive upper bound in bytes (1<<exp)
	Count      int64
	Fraction   float64
	CumFrac    float64
}

// Buckets returns the occupied buckets in ascending size order with
// cumulative fractions (a CDF).
func (h *SizeHistogram) Buckets() []Bucket {
	exps := make([]int, 0, len(h.counts))
	for e := range h.counts {
		exps = append(exps, e)
	}
	sort.Ints(exps)
	out := make([]Bucket, 0, len(exps))
	cum := int64(0)
	for _, e := range exps {
		cum += h.counts[e]
		out = append(out, Bucket{
			UpperBound: 1 << e,
			Count:      h.counts[e],
			Fraction:   float64(h.counts[e]) / float64(h.total),
			CumFrac:    float64(cum) / float64(h.total),
		})
	}
	return out
}

// FractionBelow reports the fraction of observations in buckets with upper
// bound ≤ limit bytes.
func (h *SizeHistogram) FractionBelow(limit int) float64 {
	if h.total == 0 {
		return 0
	}
	var below int64
	for e, c := range h.counts {
		if 1<<e <= limit {
			below += c
		}
	}
	return float64(below) / float64(h.total)
}

// String renders the histogram as an ASCII table.
func (h *SizeHistogram) String() string {
	var b strings.Builder
	for _, bk := range h.Buckets() {
		bar := strings.Repeat("#", int(bk.Fraction*50))
		fmt.Fprintf(&b, "%10s %8d (%5.1f%%) %s\n", FormatBytes(bk.UpperBound), bk.Count, bk.Fraction*100, bar)
	}
	return b.String()
}

// FormatBytes renders a byte count with a binary unit suffix.
func FormatBytes(n int) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/float64(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Lognormal samples sizes with the strong small-item skew and long tail the
// paper observes for cache items (Figs 8, 9). Mu and Sigma are the
// parameters of the underlying normal in log space.
type Lognormal struct {
	Mu    float64
	Sigma float64
	Min   int
	Max   int
}

// Sample draws one size.
func (l Lognormal) Sample(rng *rand.Rand) int {
	v := int(math.Exp(rng.NormFloat64()*l.Sigma + l.Mu))
	if v < l.Min {
		v = l.Min
	}
	if l.Max > 0 && v > l.Max {
		v = l.Max
	}
	return v
}

// Zipf wraps rand.Zipf with 1-based ranks for key popularity.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf builds a sampler over ranks [1, n] with exponent s > 1.
func NewZipf(rng *rand.Rand, s float64, n uint64) *Zipf {
	return &Zipf{z: rand.NewZipf(rng, s, 1, n-1)}
}

// Sample draws a rank in [1, n].
func (z *Zipf) Sample() uint64 { return z.z.Uint64() + 1 }

// Pareto samples heavy-tailed values with minimum xm and shape alpha.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// Sample draws one value.
func (p Pareto) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return p.Xm / math.Pow(u, 1/p.Alpha)
}
