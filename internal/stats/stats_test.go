package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWelford(t *testing.T) {
	var w Welford
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, v := range vals {
		w.Observe(v)
	}
	if w.N() != 8 {
		t.Fatalf("n = %d", w.N())
	}
	if math.Abs(w.Mean()-5.0) > 1e-12 {
		t.Fatalf("mean = %v", w.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("variance = %v", w.Variance())
	}
	if math.Abs(w.Stddev()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("stddev = %v", w.Stddev())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 {
		t.Fatal("empty welford should be zero")
	}
	w.Observe(3)
	if w.Variance() != 0 {
		t.Fatal("single observation variance should be 0")
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(vals, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(vals, 100); got != 10 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(vals, 50); math.Abs(got-5.5) > 1e-12 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty p50 = %v", got)
	}
	// Input must not be reordered.
	vals2 := []float64{3, 1, 2}
	Percentile(vals2, 50)
	if vals2[0] != 3 || vals2[1] != 1 || vals2[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestPercentileTable(t *testing.T) {
	cases := []struct {
		name string
		vals []float64
		p    float64
		want float64
	}{
		{"empty", nil, 50, 0},
		{"empty p0", []float64{}, 0, 0},
		{"single", []float64{7}, 50, 7},
		{"single p0", []float64{7}, 0, 7},
		{"single p100", []float64{7}, 100, 7},
		{"p0 is min", []float64{5, 1, 9}, 0, 1},
		{"p100 is max", []float64{5, 1, 9}, 100, 9},
		{"negative p clamps to min", []float64{5, 1, 9}, -10, 1},
		{"p above 100 clamps to max", []float64{5, 1, 9}, 150, 9},
		{"unsorted median", []float64{9, 1, 5}, 50, 5},
		{"unsorted interpolated", []float64{4, 2, 3, 1}, 50, 2.5},
		{"duplicates", []float64{2, 2, 2, 2}, 75, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Percentile(tc.vals, tc.p); math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("Percentile(%v, %v) = %v, want %v", tc.vals, tc.p, got, tc.want)
			}
		})
	}
}

func TestWelfordObserveN(t *testing.T) {
	// ObserveN(x, n) must match n individual Observe(x) calls exactly.
	var a, b Welford
	batches := []struct {
		x float64
		n int64
	}{{10, 3}, {-4, 1}, {2.5, 7}, {100, 2}}
	for _, bt := range batches {
		a.ObserveN(bt.x, bt.n)
		for i := int64(0); i < bt.n; i++ {
			b.Observe(bt.x)
		}
	}
	if a.N() != b.N() {
		t.Fatalf("n: %d vs %d", a.N(), b.N())
	}
	if math.Abs(a.Mean()-b.Mean()) > 1e-9 {
		t.Fatalf("mean: %v vs %v", a.Mean(), b.Mean())
	}
	if math.Abs(a.Variance()-b.Variance()) > 1e-9 {
		t.Fatalf("variance: %v vs %v", a.Variance(), b.Variance())
	}
	// Non-positive counts are ignored.
	before := a
	a.ObserveN(42, 0)
	a.ObserveN(42, -5)
	if a != before {
		t.Fatal("ObserveN with n <= 0 mutated the accumulator")
	}
}

func TestSizeHistogram(t *testing.T) {
	h := NewSizeHistogram()
	for _, s := range []int{1, 2, 3, 4, 100, 1000, 1024, 1025, 65536} {
		h.Observe(s)
	}
	if h.Total() != 9 {
		t.Fatalf("total = %d", h.Total())
	}
	bks := h.Buckets()
	if len(bks) == 0 {
		t.Fatal("no buckets")
	}
	last := bks[len(bks)-1]
	if last.CumFrac != 1.0 {
		t.Fatalf("final cumulative fraction = %v", last.CumFrac)
	}
	for i := 1; i < len(bks); i++ {
		if bks[i].UpperBound <= bks[i-1].UpperBound {
			t.Fatal("buckets not sorted")
		}
		if bks[i].CumFrac < bks[i-1].CumFrac {
			t.Fatal("CDF not monotonic")
		}
	}
	if got := h.FractionBelow(1024); math.Abs(got-7.0/9.0) > 1e-12 {
		t.Fatalf("FractionBelow(1024) = %v", got)
	}
	if !strings.Contains(h.String(), "KiB") {
		t.Fatal("String output missing units")
	}
	if h.Mean() <= 0 {
		t.Fatal("mean not tracked")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int]string{
		12:      "12B",
		2048:    "2.0KiB",
		1 << 20: "1.0MiB",
		1 << 30: "1.0GiB",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q want %q", n, got, want)
		}
	}
}

func TestLognormalSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := Lognormal{Mu: 5.5, Sigma: 1.2, Min: 16, Max: 1 << 20}
	h := NewSizeHistogram()
	for i := 0; i < 20000; i++ {
		v := l.Sample(rng)
		if v < 16 || v > 1<<20 {
			t.Fatalf("sample %d out of bounds", v)
		}
		h.Observe(v)
	}
	// Lognormal(5.5, 1.2): most mass under 1 KiB, visible tail above.
	if f := h.FractionBelow(1024); f < 0.7 || f > 0.99 {
		t.Fatalf("fraction below 1KiB = %v, want skew toward small", f)
	}
	if f := h.FractionBelow(1 << 14); f >= 1.0 {
		t.Fatal("expected a long tail above 16KiB")
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := NewZipf(rng, 1.2, 1000)
	counts := make(map[uint64]int)
	for i := 0; i < 50000; i++ {
		r := z.Sample()
		if r < 1 || r > 1000 {
			t.Fatalf("rank %d out of bounds", r)
		}
		counts[r]++
	}
	if counts[1] < counts[100] {
		t.Fatal("rank 1 should dominate rank 100")
	}
}

func TestPareto(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := Pareto{Xm: 10, Alpha: 2}
	var w Welford
	for i := 0; i < 20000; i++ {
		v := p.Sample(rng)
		if v < 10 {
			t.Fatalf("sample %v below xm", v)
		}
		w.Observe(v)
	}
	// E[X] = alpha*xm/(alpha-1) = 20.
	if w.Mean() < 17 || w.Mean() > 23 {
		t.Fatalf("pareto mean = %v, want ≈20", w.Mean())
	}
}

func TestQuickPercentileBounds(t *testing.T) {
	f := func(seed int64, n uint8, p uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, int(n)+1)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
			lo = math.Min(lo, vals[i])
			hi = math.Max(hi, vals[i])
		}
		got := Percentile(vals, float64(p%101))
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHistogramCDF(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewSizeHistogram()
		for i := 0; i < int(n)+1; i++ {
			h.Observe(rng.Intn(1 << 20))
		}
		bks := h.Buckets()
		prev := 0.0
		for _, b := range bks {
			if b.CumFrac < prev {
				return false
			}
			prev = b.CumFrac
		}
		return math.Abs(prev-1.0) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
