package warehouse

import (
	"testing"

	"github.com/datacomp/datacomp/internal/adaptive"
	"github.com/datacomp/datacomp/internal/core"
)

// TestIngestEngineAdaptive routes DW1 stripe encoding through an adaptive
// serving handle, forces a config swap mid-stream, and verifies every
// downstream stage still reads the dataset — including stripes written
// under the now-retired generation.
func TestIngestEngineAdaptive(t *testing.T) {
	ctrl, err := adaptive.New(adaptive.Config{RetainGenerations: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	h, err := ctrl.Handle("warehouse:stripe")
	if err != nil {
		t.Fatal(err)
	}

	// First half of the dataset under the initial generation.
	ds, st, err := IngestEngine(1, 2, 512, h)
	if err != nil {
		t.Fatal(err)
	}
	if st.StoredBytes >= st.RawBytes {
		t.Fatalf("no compression through handle: raw %d stored %d", st.RawBytes, st.StoredBytes)
	}

	// Swap the serving config, then append stripes under the new generation.
	if err := h.Adopt(core.Config{Algorithm: "lz4", Level: 1}); err != nil {
		t.Fatal(err)
	}
	ds2, _, err := IngestEngine(100, 2, 512, h)
	if err != nil {
		t.Fatal(err)
	}
	ds.Stripes = append(ds.Stripes, ds2.Stripes...)

	// Every downstream stage decodes the mixed-generation dataset.
	if _, _, err := SparkWorker(ds, 1); err != nil {
		t.Fatalf("spark over mixed generations: %v", err)
	}
	if _, _, err := Shuffle(ds, 2); err != nil {
		t.Fatalf("shuffle over mixed generations: %v", err)
	}
	if _, err := MLJob(ds, 1); err != nil {
		t.Fatalf("ml scan over mixed generations: %v", err)
	}
}

// TestIngestEngineNil rejects a nil engine instead of panicking mid-stripe.
func TestIngestEngineNil(t *testing.T) {
	if _, _, err := IngestEngine(1, 1, 64, nil); err == nil {
		t.Fatal("nil engine accepted")
	}
}
