// Package warehouse models the paper's Data Warehouse services (§IV-B):
// row batches are encoded into ORC-style stripes, cut into ≤256 KiB blocks
// and compressed with the Zstd-style codec. Four workflows reproduce the
// paper's DW1-DW4:
//
//	DW1 Ingestion    — encode + compress at level 7 (long-term storage
//	                   favours ratio; match finding dominates).
//	DW2 Shuffle      — read, re-partition by destination worker, re-write
//	                   at level 1 (short-term storage favours speed).
//	DW3 Spark worker — read, compute, re-write at level 1.
//	DW4 ML job       — read-heavy training input scans with light level-1
//	                   checkpoint writes.
//
// Every workflow accounts compression, decompression, the zstd stage split
// (match finding vs entropy coding, Fig 7) and real application compute, so
// the "compute cycles spent in Zstd" percentages of Fig 6 are measurable.
package warehouse

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/container"
	"github.com/datacomp/datacomp/internal/corpus"
	"github.com/datacomp/datacomp/internal/graph"
	"github.com/datacomp/datacomp/internal/orc"
	"github.com/datacomp/datacomp/internal/telemetry"
)

// Package-level telemetry on the shared registry, registered at first
// stripe I/O. All workflows in the process aggregate here; per-run numbers
// remain in the returned Stats.
var (
	tmOnce                   sync.Once
	tmCompNS, tmDecompNS     *telemetry.Counter
	tmMatchNS, tmEntropyNS   *telemetry.Counter
	tmRawBytes, tmStoredByte *telemetry.Counter
	tmStripeBytes            *telemetry.Histogram
)

func tm() {
	tmOnce.Do(func() {
		r := telemetry.Default
		tmCompNS = r.Counter("warehouse_compress_ns_total", "stripe compression time")
		tmDecompNS = r.Counter("warehouse_decompress_ns_total", "stripe decompression time")
		tmMatchNS = r.Counter("warehouse_matchfind_ns_total", "zstd match-finding time inside stripe compression")
		tmEntropyNS = r.Counter("warehouse_entropy_ns_total", "zstd entropy-coding time inside stripe compression")
		tmRawBytes = r.Counter("warehouse_raw_bytes_total", "raw stripe bytes compressed")
		tmStoredByte = r.Counter("warehouse_stored_bytes_total", "stored stripe bytes after compression")
		tmStripeBytes = r.Histogram("warehouse_stripe_raw_bytes", "raw encoded stripe size", "bytes")
	})
}

// Stats aggregates one workflow run.
type Stats struct {
	RawBytes    int64
	StoredBytes int64

	CompressTime   time.Duration
	DecompressTime time.Duration
	// MatchFindTime and EntropyTime split CompressTime into the two zstd
	// stages (Fig 7).
	MatchFindTime time.Duration
	EntropyTime   time.Duration
	// EncodeTime covers ORC encode/decode (storage-engine work).
	EncodeTime time.Duration
	// ComputeTime covers the application's own work.
	ComputeTime time.Duration
}

// CompressionRatio is raw/stored bytes.
func (s Stats) CompressionRatio() float64 {
	if s.StoredBytes == 0 {
		return 0
	}
	return float64(s.RawBytes) / float64(s.StoredBytes)
}

// ZstdCyclesFraction is the share of total measured time spent inside the
// compressor (compress + decompress), the quantity Fig 6 reports.
func (s Stats) ZstdCyclesFraction() float64 {
	total := s.CompressTime + s.DecompressTime + s.EncodeTime + s.ComputeTime
	if total <= 0 {
		return 0
	}
	return float64(s.CompressTime+s.DecompressTime) / float64(total)
}

// MatchFindFraction is match-finding time over total compression time
// (Fig 7's stage split).
func (s Stats) MatchFindFraction() float64 {
	if s.CompressTime <= 0 {
		return 0
	}
	return float64(s.MatchFindTime) / float64(s.CompressTime)
}

func (s *Stats) add(o Stats) {
	s.RawBytes += o.RawBytes
	s.StoredBytes += o.StoredBytes
	s.CompressTime += o.CompressTime
	s.DecompressTime += o.DecompressTime
	s.MatchFindTime += o.MatchFindTime
	s.EntropyTime += o.EntropyTime
	s.EncodeTime += o.EncodeTime
	s.ComputeTime += o.ComputeTime
}

// Dataset is stored warehouse data: per stripe, a seekable container whose
// block 0 is a column directory and whose remaining blocks hold each
// column's ORC encoding in ≤ orc.MaxCompressionBlock chunks — so a reader
// that needs two of six columns decompresses only those columns' blocks.
type Dataset struct {
	Stripes [][]byte
	// Level records the compression level the data was written with.
	Level int
	// Engine, when non-nil, is the engine the stripes were written through
	// (e.g. an adaptive serving handle); readers must decode with it because
	// its frames are self-describing in a format a plain zstd engine does
	// not speak. Nil means stripes are plain zstd at Level.
	Engine codec.Engine
}

// StoredBytes is the on-disk size of the dataset.
func (d *Dataset) StoredBytes() int64 {
	var n int64
	for _, s := range d.Stripes {
		n += int64(len(s))
	}
	return n
}

// engine builds a zstd engine and returns it with its staged view.
func engine(level int) (codec.Engine, codec.StagedEngine, error) {
	eng, err := codec.NewEngine("zstd", codec.WithLevel(level))
	if err != nil {
		return nil, nil, err
	}
	staged, _ := eng.(codec.StagedEngine)
	return eng, staged, nil
}

// readEngine returns the engine ds's stripes decode with: the engine the
// dataset was written through when one was recorded, else zstd at the
// recorded level.
func readEngine(ds *Dataset) (codec.Engine, error) {
	if ds.Engine != nil {
		return ds.Engine, nil
	}
	eng, _, err := engine(ds.Level)
	return eng, err
}

// captureStages folds the engine's stage counters into st and resets the
// baseline for the next capture.
type stageCapture struct {
	staged codec.StagedEngine
	last   time.Duration
	lastMF time.Duration
}

func (c *stageCapture) fold(st *Stats) {
	if c.staged == nil {
		return
	}
	s := c.staged.Stages()
	st.MatchFindTime += s.MatchFind - c.lastMF
	st.EntropyTime += s.Entropy - c.last
	tmMatchNS.Add((s.MatchFind - c.lastMF).Nanoseconds())
	tmEntropyNS.Add((s.Entropy - c.last).Nanoseconds())
	c.lastMF = s.MatchFind
	c.last = s.Entropy
}

// generateBatch builds one row batch of warehouse columns.
func generateBatch(seed int64, rows int) []orc.Column {
	return []orc.Column{
		{Name: "event_time", Kind: orc.Int64, Ints: corpus.TimestampColumn(seed, rows)},
		{Name: "actor_id", Kind: orc.Int64, Ints: corpus.IDColumn(seed+1, rows)},
		{Name: "target_id", Kind: orc.Int64, Ints: corpus.IDColumn(seed+2, rows)},
		{Name: "event_type", Kind: orc.String, Strings: corpus.CategoryColumn(seed+3, rows)},
		{Name: "score", Kind: orc.Float64, Floats: corpus.MetricColumn(seed+4, rows)},
		{Name: "sampled", Kind: orc.Bool, Bools: corpus.FlagColumn(seed+5, rows, 0.05)},
	}
}

// errStripe reports a malformed stripe directory.
var errStripe = errors.New("warehouse: corrupt stripe directory")

// ErrColumnEncoding reports a stripe directory naming a column kind or
// encoding this reader does not implement. Typed graph stripes must fail
// loudly on readers that predate their encoding, never silently skip the
// column.
var ErrColumnEncoding = errors.New("warehouse: unsupported column encoding")

// Stripe directory layout version and per-column encoding tags. The
// directory block is:
//
//	version(1) | uvarint ncols, then per column:
//	uvarint nameLen | name | kind(1) | enc(1) | uvarint chunks
const (
	dirVersion byte = 2

	encORC      byte = 0 // ORC stripe encoding (any kind)
	encTypedRaw byte = 1 // fixed-width little-endian words (Int64, Float64)
)

// typedHint maps a column kind to the graph-engine hint its raw
// serialization should be compressed under, or HintNone when the kind has
// no typed-raw form.
func typedHint(k orc.Kind) graph.Hint {
	switch k {
	case orc.Int64:
		return graph.HintInt64
	case orc.Float64:
		return graph.HintFloat64
	}
	return graph.HintNone
}

// hinter unwraps eng (through checksum or other wrappers) down to a
// graph-hinted engine, or nil when the stack has none.
func hinter(eng codec.Engine) graph.Hinter {
	for e := eng; e != nil; {
		if h, ok := e.(graph.Hinter); ok {
			return h
		}
		u, ok := e.(interface{ Unwrap() codec.Engine })
		if !ok {
			break
		}
		e = u.Unwrap()
	}
	return nil
}

// appendTypedRaw serializes an Int64/Float64 column as fixed-width
// little-endian words — the shape the graph engine's typed transform
// chains (delta/zigzag/varint, decimal rescale) operate on.
func appendTypedRaw(dst []byte, c orc.Column) []byte {
	switch c.Kind {
	case orc.Int64:
		for _, v := range c.Ints {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
		}
	case orc.Float64:
		for _, v := range c.Floats {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst
}

// decodeTypedRaw reconstructs a typed-raw column from its serialized words.
func decodeTypedRaw(name string, kind orc.Kind, data []byte) (orc.Column, error) {
	if len(data)%8 != 0 {
		return orc.Column{}, fmt.Errorf("%w: column %q: ragged typed payload", errStripe, name)
	}
	col := orc.Column{Name: name, Kind: kind}
	n := len(data) / 8
	switch kind {
	case orc.Int64:
		col.Ints = make([]int64, n)
		for i := range col.Ints {
			col.Ints[i] = int64(binary.LittleEndian.Uint64(data[i*8:]))
		}
	case orc.Float64:
		col.Floats = make([]float64, n)
		for i := range col.Floats {
			col.Floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		}
	default:
		return orc.Column{}, fmt.Errorf("%w: column %q: kind %d has no typed-raw form", ErrColumnEncoding, name, kind)
	}
	return col, nil
}

// columnChunks is the ≤ orc.MaxCompressionBlock split count for one
// column's encoding.
func columnChunks(n int) int {
	return (n + orc.MaxCompressionBlock - 1) / orc.MaxCompressionBlock
}

// writeStripe encodes each column separately and writes the stripe as one
// seekable container: block 0 is the directory (column names, kinds,
// encodings and chunk counts), then each column's encoding in
// ≤ orc.MaxCompressionBlock chunks. Column-granular blocks are what let
// readStripeColumns prune. When the engine exposes a graph hint (typed
// transform-graph compression), Int64/Float64 columns are serialized as
// raw little-endian words and each column's chunks are compressed under
// its kind's hint; other kinds, and every column under a plain engine,
// keep the ORC encoding.
func writeStripe(cols []orc.Column, eng codec.Engine, cap *stageCapture, st *Stats) ([]byte, error) {
	tm()
	h := hinter(eng)
	encoded := make([][]byte, len(cols))
	encs := make([]byte, len(cols))
	var raw int64
	t0 := time.Now()
	for i := range cols {
		if h != nil && typedHint(cols[i].Kind) != graph.HintNone {
			encoded[i] = appendTypedRaw(nil, cols[i])
			encs[i] = encTypedRaw
		} else {
			enc, err := orc.EncodeStripe(cols[i : i+1])
			if err != nil {
				return nil, err
			}
			encoded[i] = enc
			encs[i] = encORC
		}
		raw += int64(len(encoded[i]))
	}
	st.EncodeTime += time.Since(t0)

	dir := append([]byte(nil), dirVersion)
	dir = binary.AppendUvarint(dir, uint64(len(cols)))
	for i, c := range cols {
		dir = binary.AppendUvarint(dir, uint64(len(c.Name)))
		dir = append(dir, c.Name...)
		dir = append(dir, byte(c.Kind), encs[i])
		dir = binary.AppendUvarint(dir, uint64(columnChunks(len(encoded[i]))))
	}
	raw += int64(len(dir))

	containerCodec := "zstd"
	if h != nil {
		containerCodec = "graph"
	}
	var out bytes.Buffer
	t1 := time.Now()
	bw, err := container.NewBuilder(&out, containerCodec, eng, orc.MaxCompressionBlock)
	if err != nil {
		return nil, err
	}
	if h != nil {
		h.SetHint(graph.HintNone) // directory block is untyped
	}
	if err := bw.AppendBlock(dir); err != nil {
		return nil, err
	}
	for i, enc := range encoded {
		if h != nil {
			hint := graph.HintNone
			if encs[i] == encTypedRaw {
				hint = typedHint(cols[i].Kind)
			}
			// Chunk boundaries are multiples of the 8-byte word width
			// (orc.MaxCompressionBlock is 8-aligned), so every chunk of a
			// typed column keeps the hinted shape.
			h.SetHint(hint)
		}
		for off := 0; off < len(enc); off += orc.MaxCompressionBlock {
			end := off + orc.MaxCompressionBlock
			if end > len(enc) {
				end = len(enc)
			}
			if err := bw.AppendBlock(enc[off:end]); err != nil {
				return nil, err
			}
		}
	}
	if h != nil {
		h.SetHint(graph.HintNone)
	}
	if err := bw.Close(); err != nil {
		return nil, err
	}
	dt := time.Since(t1)
	st.CompressTime += dt
	tmCompNS.Add(dt.Nanoseconds())
	cap.fold(st)
	framed := out.Bytes()
	st.RawBytes += raw
	st.StoredBytes += int64(len(framed))
	tmRawBytes.Add(raw)
	tmStoredByte.Add(int64(len(framed)))
	tmStripeBytes.Observe(raw)
	return framed, nil
}

// readStripe decompresses and decodes every column of one stored stripe.
func readStripe(framed []byte, eng codec.Engine, st *Stats) ([]orc.Column, error) {
	return readStripeColumns(framed, eng, st, nil)
}

// readStripeColumns decodes the stripe's directory and then only the
// columns in want (nil = all), skipping the container blocks of pruned
// columns entirely — their bytes are never decompressed.
func readStripeColumns(framed []byte, eng codec.Engine, st *Stats, want map[string]bool) ([]orc.Column, error) {
	tm()
	ra, err := container.NewReaderAt(bytes.NewReader(framed), int64(len(framed)),
		container.WithEngine(eng))
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	dir, err := ra.DecodeBlock(nil, 0)
	if err != nil {
		return nil, err
	}
	st.DecompressTime += time.Since(t0)

	if len(dir) < 1 || dir[0] != dirVersion {
		return nil, errStripe
	}
	ncols, k := binary.Uvarint(dir[1:])
	if k <= 0 || ncols > uint64(len(dir)) {
		return nil, errStripe
	}
	pos := 1 + k
	var cols []orc.Column
	next := 1 // first column chunk follows the directory block
	for ci := uint64(0); ci < ncols; ci++ {
		nameLen, k := binary.Uvarint(dir[pos:])
		if k <= 0 || pos+k+int(nameLen)+2 > len(dir) {
			return nil, errStripe
		}
		pos += k
		name := string(dir[pos : pos+int(nameLen)])
		pos += int(nameLen)
		kind, colEnc := orc.Kind(dir[pos]), dir[pos+1]
		pos += 2
		if kind > orc.Bool || colEnc > encTypedRaw {
			return nil, fmt.Errorf("%w: column %q: kind %d encoding %d", ErrColumnEncoding, name, kind, colEnc)
		}
		chunks, k := binary.Uvarint(dir[pos:])
		if k <= 0 || next+int(chunks) > ra.NumBlocks()+1 {
			return nil, errStripe
		}
		pos += k
		if want != nil && !want[name] {
			next += int(chunks) // pruned: blocks skipped, not decompressed
			continue
		}
		var enc []byte
		t1 := time.Now()
		for c := 0; c < int(chunks); c++ {
			if enc, err = ra.DecodeBlock(enc, next+c); err != nil {
				return nil, err
			}
		}
		dt := time.Since(t1)
		st.DecompressTime += dt
		tmDecompNS.Add(dt.Nanoseconds())
		next += int(chunks)
		t2 := time.Now()
		if colEnc == encTypedRaw {
			col, err := decodeTypedRaw(name, kind, enc)
			st.EncodeTime += time.Since(t2)
			if err != nil {
				return nil, err
			}
			cols = append(cols, col)
			continue
		}
		decoded, err := orc.DecodeStripe(enc)
		st.EncodeTime += time.Since(t2)
		if err != nil {
			return nil, err
		}
		if len(decoded) != 1 {
			return nil, errStripe
		}
		cols = append(cols, decoded[0])
	}
	return cols, nil
}

// IngestionLevel is the paper-reported compression level for DW1.
const IngestionLevel = 7

// ShuffleLevel is the paper-reported compression level for DW2/DW3 writes.
const ShuffleLevel = 1

// Ingest runs DW1: read upstream data (which arrives compressed at a cheap
// level by the producing service), decompress it, ORC-encode and re-compress
// at IngestionLevel for long-term storage.
func Ingest(seed int64, stripes, rowsPerStripe int) (*Dataset, Stats, error) {
	eng, staged, err := engine(IngestionLevel)
	if err != nil {
		return nil, Stats{}, err
	}
	return ingest(seed, stripes, rowsPerStripe, eng, staged, nil)
}

// IngestEngine runs DW1 writing stored stripes through the supplied engine
// instead of the fixed IngestionLevel zstd engine. An *adaptive.Handle
// satisfies codec.Engine, so the serving-path controller can steer the
// warehouse storage format online; the returned Dataset remembers the
// engine and downstream stages (SparkWorker, Shuffle, MLJob) read back
// through it, so stripes written under since-retired generations keep
// decoding.
func IngestEngine(seed int64, stripes, rowsPerStripe int, eng codec.Engine) (*Dataset, Stats, error) {
	if eng == nil {
		return nil, Stats{}, errors.New("warehouse: nil engine")
	}
	staged, _ := eng.(codec.StagedEngine)
	return ingest(seed, stripes, rowsPerStripe, eng, staged, eng)
}

// GraphSearchLevel is the graph-engine search effort IngestGraph writes
// with: trial search over the typed candidate beam, matching DW1's
// ratio-over-speed posture without paying full-payload trials.
const GraphSearchLevel = 5

// IngestGraph runs DW1 through the typed transform-graph engine:
// Int64/Float64 columns are stored as raw little-endian words and
// compressed through a per-column transform graph (delta/zigzag/varint
// for timestamps and IDs, decimal rescale for quantized metrics), while
// String/Bool columns keep their ORC encoding under the same engine's
// generic path. Frames are self-describing, and the returned Dataset
// records the engine, so downstream stages (SparkWorker, Shuffle, MLJob)
// read the stripes back unchanged.
func IngestGraph(seed int64, stripes, rowsPerStripe int) (*Dataset, Stats, error) {
	eng, err := codec.NewEngine("graph", codec.WithLevel(GraphSearchLevel))
	if err != nil {
		return nil, Stats{}, err
	}
	return ingest(seed, stripes, rowsPerStripe, eng, nil, eng)
}

// ingest is the shared DW1 body; keep is recorded on the Dataset so readers
// reuse the write engine (nil for the plain zstd path).
func ingest(seed int64, stripes, rowsPerStripe int, eng codec.Engine, staged codec.StagedEngine, keep codec.Engine) (*Dataset, Stats, error) {
	var st Stats
	upstreamEng, _, err := engine(ShuffleLevel)
	if err != nil {
		return nil, st, err
	}
	cap := &stageCapture{staged: staged}
	ds := &Dataset{Level: IngestionLevel, Engine: keep}
	for i := 0; i < stripes; i++ {
		cols := generateBatch(seed+int64(i)*100, rowsPerStripe)
		// The upstream producer hands over level-1-compressed stripes; the
		// ingestion service pays the decompression before re-encoding. The
		// producer's own encode/compress work is not this service's time,
		// so it lands in a discarded Stats.
		var producer Stats
		upstreamFramed, err := writeStripe(cols, upstreamEng, &stageCapture{}, &producer)
		if err != nil {
			return nil, st, err
		}
		cols, err = readStripe(upstreamFramed, upstreamEng, &st)
		if err != nil {
			return nil, st, err
		}
		// Light ingestion-side validation work.
		t0 := time.Now()
		validateBatch(cols)
		st.ComputeTime += time.Since(t0)
		framed, err := writeStripe(cols, eng, cap, &st)
		if err != nil {
			return nil, st, err
		}
		ds.Stripes = append(ds.Stripes, framed)
	}
	return ds, st, nil
}

// validateBatch is the ingestion service's own per-row work.
func validateBatch(cols []orc.Column) int {
	bad := 0
	for _, c := range cols {
		switch c.Kind {
		case orc.Int64:
			for _, v := range c.Ints {
				if v < 0 {
					bad++
				}
			}
		case orc.String:
			for _, v := range c.Strings {
				if len(v) == 0 {
					bad++
				}
			}
		}
	}
	return bad
}

// SparkWorker runs DW3: read the dataset, aggregate, write derived output
// at ShuffleLevel.
func SparkWorker(ds *Dataset, computePasses int) (*Dataset, Stats, error) {
	var st Stats
	readEng, err := readEngine(ds)
	if err != nil {
		return nil, st, err
	}
	writeEng, staged, err := engine(ShuffleLevel)
	if err != nil {
		return nil, st, err
	}
	cap := &stageCapture{staged: staged}
	out := &Dataset{Level: ShuffleLevel}
	for _, framed := range ds.Stripes {
		cols, err := readStripe(framed, readEng, &st)
		if err != nil {
			return nil, st, err
		}
		t0 := time.Now()
		agg := aggregate(cols, computePasses)
		st.ComputeTime += time.Since(t0)
		framedOut, err := writeStripe(agg, writeEng, cap, &st)
		if err != nil {
			return nil, st, err
		}
		out.Stripes = append(out.Stripes, framedOut)
	}
	return out, st, nil
}

// aggregate is the Spark worker's computation: a per-row enrichment (a
// derived session key, a running per-event-type score aggregate joined back
// onto each row, and a quality flag), repeated computePasses times to model
// heavier jobs. The output row count matches the input, as it does for
// typical ETL stages.
func aggregate(cols []orc.Column, passes int) []orc.Column {
	var events []string
	var scores []float64
	var times []int64
	var actors []int64
	for _, c := range cols {
		switch c.Name {
		case "event_type":
			events = c.Strings
		case "score":
			scores = c.Floats
		case "event_time":
			times = c.Ints
		case "actor_id":
			actors = c.Ints
		}
	}
	n := len(events)
	session := make([]int64, n)
	runAvg := make([]float64, n)
	good := make([]bool, n)
	sums := map[string]float64{}
	counts := map[string]int64{}
	for p := 0; p < passes; p++ {
		for k := range sums {
			delete(sums, k)
		}
		for k := range counts {
			delete(counts, k)
		}
		for i := 0; i < n; i++ {
			sums[events[i]] += scores[i]
			counts[events[i]]++
			// Sessionize: actor joined with a coarse time bucket.
			if actors != nil && times != nil {
				session[i] = actors[i]*1e6 + times[i]/60000
			}
			runAvg[i] = sums[events[i]] / float64(counts[events[i]])
			good[i] = scores[i] > runAvg[i]
		}
	}
	return []orc.Column{
		{Name: "event_type", Kind: orc.String, Strings: events},
		{Name: "session", Kind: orc.Int64, Ints: session},
		{Name: "score", Kind: orc.Float64, Floats: scores},
		{Name: "event_type_avg", Kind: orc.Float64, Floats: runAvg},
		{Name: "above_avg", Kind: orc.Bool, Bools: good},
	}
}

// Shuffle runs DW2: read the dataset and re-partition rows across workers,
// writing each partition at ShuffleLevel.
func Shuffle(ds *Dataset, workers int) ([]*Dataset, Stats, error) {
	if workers <= 0 {
		return nil, Stats{}, errors.New("warehouse: workers must be positive")
	}
	var st Stats
	readEng, err := readEngine(ds)
	if err != nil {
		return nil, st, err
	}
	writeEng, staged, err := engine(ShuffleLevel)
	if err != nil {
		return nil, st, err
	}
	cap := &stageCapture{staged: staged}
	outs := make([]*Dataset, workers)
	for i := range outs {
		outs[i] = &Dataset{Level: ShuffleLevel}
	}
	for _, framed := range ds.Stripes {
		cols, err := readStripe(framed, readEng, &st)
		if err != nil {
			return nil, st, err
		}
		t0 := time.Now()
		parts := partition(cols, workers)
		st.ComputeTime += time.Since(t0)
		for w, p := range parts {
			if p[0].Len() == 0 {
				continue
			}
			framedOut, err := writeStripe(p, writeEng, cap, &st)
			if err != nil {
				return nil, st, err
			}
			outs[w].Stripes = append(outs[w].Stripes, framedOut)
		}
	}
	return outs, st, nil
}

// partition splits rows by hashing the actor column.
func partition(cols []orc.Column, workers int) [][]orc.Column {
	rows := cols[0].Len()
	var actors []int64
	for _, c := range cols {
		if c.Name == "actor_id" {
			actors = c.Ints
		}
	}
	assign := make([]int, rows)
	h := fnv.New32a()
	var b [8]byte
	for i := 0; i < rows; i++ {
		h.Reset()
		v := uint64(0)
		if actors != nil {
			v = uint64(actors[i])
		} else {
			v = uint64(i)
		}
		for k := 0; k < 8; k++ {
			b[k] = byte(v >> (8 * k))
		}
		h.Write(b[:])
		assign[i] = int(h.Sum32()) % workers
		if assign[i] < 0 {
			assign[i] += workers
		}
	}
	out := make([][]orc.Column, workers)
	for w := 0; w < workers; w++ {
		part := make([]orc.Column, len(cols))
		for ci, c := range cols {
			nc := orc.Column{Name: c.Name, Kind: c.Kind}
			for i := 0; i < rows; i++ {
				if assign[i] != w {
					continue
				}
				switch c.Kind {
				case orc.Int64:
					nc.Ints = append(nc.Ints, c.Ints[i])
				case orc.Float64:
					nc.Floats = append(nc.Floats, c.Floats[i])
				case orc.String:
					nc.Strings = append(nc.Strings, c.Strings[i])
				case orc.Bool:
					nc.Bools = append(nc.Bools, c.Bools[i])
				}
			}
			part[ci] = nc
		}
		out[w] = part
	}
	return out
}

// mlWantCols are the only columns trainStep consumes; the ML scan prunes
// the rest at the stripe directory, never decompressing their blocks.
var mlWantCols = map[string]bool{"score": true, "actor_id": true}

// MLJob runs DW4: scan the dataset epochs times (read-heavy), doing
// feature-extraction compute per scan and writing one small level-1
// checkpoint per epoch. Scans read only the columns the training step
// uses (column pruning via the stripe directory).
func MLJob(ds *Dataset, epochs int) (Stats, error) {
	var st Stats
	readEng, err := readEngine(ds)
	if err != nil {
		return st, err
	}
	writeEng, staged, err := engine(ShuffleLevel)
	if err != nil {
		return st, err
	}
	cap := &stageCapture{staged: staged}
	// A realistically sized embedding-table shard: checkpoints are a
	// visible (but minority) share of the job's compression work.
	weights := make([]float64, 1<<17)
	for e := 0; e < epochs; e++ {
		for _, framed := range ds.Stripes {
			cols, err := readStripeColumns(framed, readEng, &st, mlWantCols)
			if err != nil {
				return st, err
			}
			t0 := time.Now()
			trainStep(cols, weights)
			st.ComputeTime += time.Since(t0)
		}
		// Checkpoint: weights serialized and compressed at level 1.
		ck := []orc.Column{{Name: "weights", Kind: orc.Float64, Floats: weights}}
		if _, err := writeStripe(ck, writeEng, cap, &st); err != nil {
			return st, err
		}
	}
	return st, nil
}

// trainStep is the ML job's compute: a toy SGD-ish update over the scores.
func trainStep(cols []orc.Column, weights []float64) {
	var scores []float64
	var ids []int64
	for _, c := range cols {
		if c.Name == "score" {
			scores = c.Floats
		}
		if c.Name == "actor_id" {
			ids = c.Ints
		}
	}
	for i := range scores {
		slot := 0
		if ids != nil {
			slot = int(uint64(ids[i]) % uint64(len(weights)))
		}
		pred := weights[slot]
		grad := pred - scores[i]*0.01
		weights[slot] -= 0.001 * grad
	}
}

// String summarizes stats for reports.
func (s Stats) String() string {
	return fmt.Sprintf("raw=%d stored=%d ratio=%.2f zstd%%=%.1f mf%%=%.1f",
		s.RawBytes, s.StoredBytes, s.CompressionRatio(),
		s.ZstdCyclesFraction()*100, s.MatchFindFraction()*100)
}
