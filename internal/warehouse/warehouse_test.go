package warehouse

import (
	"testing"

	"github.com/datacomp/datacomp/internal/telemetry"
)

func TestIngest(t *testing.T) {
	ds, st, err := Ingest(1, 4, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Stripes) != 4 {
		t.Fatalf("stripes = %d", len(ds.Stripes))
	}
	if st.CompressionRatio() <= 1.2 {
		t.Fatalf("warehouse data should compress: ratio %.2f", st.CompressionRatio())
	}
	if st.CompressTime <= 0 || st.ComputeTime <= 0 || st.EncodeTime <= 0 {
		t.Fatalf("missing accounting: %+v", st)
	}
	if ds.Level != IngestionLevel {
		t.Fatalf("level = %d", ds.Level)
	}
	if ds.StoredBytes() != st.StoredBytes {
		t.Fatalf("stored bytes mismatch: %d vs %d", ds.StoredBytes(), st.StoredBytes)
	}
}

func TestIngestStageSplitHighLevel(t *testing.T) {
	// DW1 compresses at level 7: match finding should dominate the
	// compression time (the paper reports up to 80%).
	_, st, err := Ingest(2, 3, 20000)
	if err != nil {
		t.Fatal(err)
	}
	mf := st.MatchFindFraction()
	if mf < 0.5 {
		t.Fatalf("level-7 match finding should dominate: %.2f", mf)
	}
	if st.MatchFindTime+st.EntropyTime > st.CompressTime+st.CompressTime/10 {
		t.Fatalf("stage times exceed total: mf=%v ent=%v total=%v",
			st.MatchFindTime, st.EntropyTime, st.CompressTime)
	}
}

func TestSparkWorkerRoundtrip(t *testing.T) {
	ds, _, err := Ingest(3, 3, 4000)
	if err != nil {
		t.Fatal(err)
	}
	out, st, err := SparkWorker(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Stripes) != len(ds.Stripes) {
		t.Fatalf("output stripes = %d", len(out.Stripes))
	}
	if st.DecompressTime <= 0 {
		t.Fatal("worker must decompress input")
	}
	if st.ComputeTime <= 0 {
		t.Fatal("worker must compute")
	}
	if out.Level != ShuffleLevel {
		t.Fatalf("output level = %d", out.Level)
	}
}

func TestShufflePartitionsAllRows(t *testing.T) {
	ds, _, err := Ingest(5, 2, 6000)
	if err != nil {
		t.Fatal(err)
	}
	outs, st, err := Shuffle(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 4 {
		t.Fatalf("partitions = %d", len(outs))
	}
	nonEmpty := 0
	for _, o := range outs {
		if len(o.Stripes) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 3 {
		t.Fatalf("hash partitioning too skewed: %d non-empty", nonEmpty)
	}
	if st.CompressTime <= 0 || st.DecompressTime <= 0 {
		t.Fatalf("shuffle must decompress and recompress: %+v", st)
	}
	if _, _, err := Shuffle(ds, 0); err == nil {
		t.Fatal("zero workers accepted")
	}
}

func TestShuffleLowLevelStageSplit(t *testing.T) {
	ds, _, err := Ingest(7, 2, 20000)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := Shuffle(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Level-1 writes: match finding should take a visibly smaller share
	// than DW1's level-7 writes.
	_, ingestStats, err := Ingest(8, 2, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if st.MatchFindFraction() >= ingestStats.MatchFindFraction() {
		t.Fatalf("level-1 match-find share (%.2f) should be below level-7 (%.2f)",
			st.MatchFindFraction(), ingestStats.MatchFindFraction())
	}
}

func TestMLJobReadHeavy(t *testing.T) {
	ds, _, err := Ingest(9, 4, 20000)
	if err != nil {
		t.Fatal(err)
	}
	st, err := MLJob(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.DecompressTime <= 0 {
		t.Fatal("ML job must decompress input")
	}
	if st.DecompressTime <= st.CompressTime {
		t.Fatalf("ML job should be read-heavy: decomp %v comp %v",
			st.DecompressTime, st.CompressTime)
	}
	if st.ComputeTime <= 0 {
		t.Fatal("ML job must compute")
	}
}

func TestStatsAggregation(t *testing.T) {
	var a, b Stats
	a.RawBytes = 10
	a.CompressTime = 100
	b.RawBytes = 5
	b.CompressTime = 50
	a.add(b)
	if a.RawBytes != 15 || a.CompressTime != 150 {
		t.Fatalf("add broken: %+v", a)
	}
	var zero Stats
	if zero.CompressionRatio() != 0 || zero.ZstdCyclesFraction() != 0 || zero.MatchFindFraction() != 0 {
		t.Fatal("zero stats should report zeros")
	}
}

func TestReadStripeColumnsPrunes(t *testing.T) {
	cols := generateBatch(77, 20000)
	eng, staged, err := engine(ShuffleLevel)
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	framed, err := writeStripe(cols, eng, &stageCapture{staged: staged}, &st)
	if err != nil {
		t.Fatal(err)
	}

	decoded := telemetry.Default.Counter("container_blocks_decoded_total", "container blocks decompressed")

	before := decoded.Value()
	all, err := readStripe(framed, eng, &st)
	if err != nil {
		t.Fatal(err)
	}
	fullBlocks := decoded.Value() - before
	if len(all) != len(cols) {
		t.Fatalf("full read returned %d columns, want %d", len(all), len(cols))
	}

	before = decoded.Value()
	pruned, err := readStripeColumns(framed, eng, &st, mlWantCols)
	if err != nil {
		t.Fatal(err)
	}
	prunedBlocks := decoded.Value() - before
	if len(pruned) != 2 {
		t.Fatalf("pruned read returned %d columns, want 2", len(pruned))
	}
	for _, c := range pruned {
		if !mlWantCols[c.Name] {
			t.Fatalf("pruned read returned unwanted column %q", c.Name)
		}
	}
	// The pruned scan must decompress strictly fewer container blocks than
	// the full scan — the whole point of column-granular blocks.
	if prunedBlocks >= fullBlocks {
		t.Fatalf("pruned read decoded %d blocks, full read %d — no pruning", prunedBlocks, fullBlocks)
	}
	// Pruned columns match the full read's content.
	for _, p := range pruned {
		for _, f := range all {
			if f.Name != p.Name {
				continue
			}
			if len(f.Ints) != len(p.Ints) || len(f.Floats) != len(p.Floats) {
				t.Fatalf("column %q length mismatch after pruning", p.Name)
			}
			for i := range f.Ints {
				if f.Ints[i] != p.Ints[i] {
					t.Fatalf("column %q diverges at row %d", p.Name, i)
				}
			}
			for i := range f.Floats {
				if f.Floats[i] != p.Floats[i] {
					t.Fatalf("column %q diverges at row %d", p.Name, i)
				}
			}
		}
	}
}

func TestReadStripeCorruptDirectory(t *testing.T) {
	eng, _, err := engine(ShuffleLevel)
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	// Not a container at all.
	if _, err := readStripe([]byte("garbage"), eng, &st); err == nil {
		t.Fatal("garbage stripe accepted")
	}
}
