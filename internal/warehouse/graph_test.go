package warehouse

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/container"
	"github.com/datacomp/datacomp/internal/graph"
	"github.com/datacomp/datacomp/internal/orc"
)

func TestIngestGraphRoundtrip(t *testing.T) {
	const stripes, rows = 3, 5000
	ds, st, err := IngestGraph(11, stripes, rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Stripes) != stripes {
		t.Fatalf("stripes = %d", len(ds.Stripes))
	}
	if ds.Engine == nil {
		t.Fatal("graph dataset must record its engine for readers")
	}
	readEng, err := readEngine(ds)
	if err != nil {
		t.Fatal(err)
	}
	for i, framed := range ds.Stripes {
		cols, err := readStripe(framed, readEng, &Stats{})
		if err != nil {
			t.Fatalf("stripe %d: %v", i, err)
		}
		want := generateBatch(11+int64(i)*100, rows)
		if len(cols) != len(want) {
			t.Fatalf("stripe %d: %d columns, want %d", i, len(cols), len(want))
		}
		for j, w := range want {
			got := cols[j]
			if got.Name != w.Name || got.Kind != w.Kind {
				t.Fatalf("stripe %d col %d: %s/%v, want %s/%v", i, j, got.Name, got.Kind, w.Name, w.Kind)
			}
			for r := range w.Ints {
				if got.Ints[r] != w.Ints[r] {
					t.Fatalf("column %q diverges at row %d", w.Name, r)
				}
			}
			for r := range w.Floats {
				if got.Floats[r] != w.Floats[r] {
					t.Fatalf("column %q diverges at row %d", w.Name, r)
				}
			}
			for r := range w.Strings {
				if got.Strings[r] != w.Strings[r] {
					t.Fatalf("column %q diverges at row %d", w.Name, r)
				}
			}
			for r := range w.Bools {
				if got.Bools[r] != w.Bools[r] {
					t.Fatalf("column %q diverges at row %d", w.Name, r)
				}
			}
		}
	}
	// The typed graph path must store the same data in fewer bytes than the
	// generic zstd-7 ingestion pipeline: timestamps delta down to near
	// nothing and the quantized metric column rescales to small integers.
	_, plain, err := Ingest(11, stripes, rows)
	if err != nil {
		t.Fatal(err)
	}
	if st.StoredBytes >= plain.StoredBytes {
		t.Fatalf("graph ingestion stored %d bytes, plain zstd-7 stored %d", st.StoredBytes, plain.StoredBytes)
	}
}

func TestIngestGraphDownstream(t *testing.T) {
	ds, _, err := IngestGraph(13, 2, 3000)
	if err != nil {
		t.Fatal(err)
	}
	outs, _, err := Shuffle(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for _, out := range outs {
		for _, framed := range out.Stripes {
			eng, err := readEngine(out)
			if err != nil {
				t.Fatal(err)
			}
			cols, err := readStripe(framed, eng, &Stats{})
			if err != nil {
				t.Fatal(err)
			}
			rows += cols[0].Len()
		}
	}
	if rows != 2*3000 {
		t.Fatalf("shuffle lost rows: %d, want %d", rows, 2*3000)
	}
	if _, err := MLJob(ds, 1); err != nil {
		t.Fatalf("ML job over graph stripes: %v", err)
	}
}

func TestHinterUnwrapsChecksum(t *testing.T) {
	eng, err := codec.NewEngine("graph", codec.WithLevel(3), codec.WithChecksum(true))
	if err != nil {
		t.Fatal(err)
	}
	if hinter(eng) == nil {
		t.Fatal("hinter must unwrap the checksum frame to reach the graph engine")
	}
	zstd, _, err := engine(ShuffleLevel)
	if err != nil {
		t.Fatal(err)
	}
	if hinter(zstd) != nil {
		t.Fatal("zstd engine must not report a graph hinter")
	}
}

// TestReadStripeUnsupportedColumn pins the failure mode for forward
// compatibility: a directory naming a column kind or encoding this reader
// does not implement must surface ErrColumnEncoding, not silently skip
// the column.
func TestReadStripeUnsupportedColumn(t *testing.T) {
	eng, _, err := engine(ShuffleLevel)
	if err != nil {
		t.Fatal(err)
	}
	build := func(kind, enc byte) []byte {
		dir := append([]byte(nil), dirVersion)
		dir = binary.AppendUvarint(dir, 1)
		dir = binary.AppendUvarint(dir, uint64(len("c")))
		dir = append(dir, 'c')
		dir = append(dir, kind, enc)
		dir = binary.AppendUvarint(dir, 1)
		var out bytes.Buffer
		bw, err := container.NewBuilder(&out, "zstd", eng, orc.MaxCompressionBlock)
		if err != nil {
			t.Fatal(err)
		}
		if err := bw.AppendBlock(dir); err != nil {
			t.Fatal(err)
		}
		if err := bw.AppendBlock(make([]byte, 16)); err != nil {
			t.Fatal(err)
		}
		if err := bw.Close(); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	for _, tc := range []struct{ kind, enc byte }{
		{9, encORC},                     // unknown kind
		{byte(orc.Int64), 7},            // unknown encoding
		{byte(orc.String), encTypedRaw}, // kind with no typed-raw form
	} {
		_, err := readStripe(build(tc.kind, tc.enc), eng, &Stats{})
		if !errors.Is(err, ErrColumnEncoding) {
			t.Fatalf("kind=%d enc=%d: err = %v, want ErrColumnEncoding", tc.kind, tc.enc, err)
		}
	}
	// Sanity: a supported directory still reads.
	cols := generateBatch(5, 100)
	var st Stats
	framed, err := writeStripe(cols, eng, &stageCapture{}, &st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := readStripe(framed, eng, &st); err != nil {
		t.Fatal(err)
	}
}

// TestTypedRawRejectsRagged pins the corrupt-payload path of the typed
// decoder.
func TestTypedRawRejectsRagged(t *testing.T) {
	if _, err := decodeTypedRaw("c", orc.Int64, make([]byte, 12)); !errors.Is(err, errStripe) {
		t.Fatalf("ragged typed payload: err = %v", err)
	}
	col, err := decodeTypedRaw("c", orc.Float64, appendTypedRaw(nil, orc.Column{
		Kind: orc.Float64, Floats: []float64{1.5, -2.25, 0},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Floats) != 3 || col.Floats[1] != -2.25 {
		t.Fatalf("typed roundtrip broken: %+v", col)
	}
	if hint := typedHint(orc.Bool); hint != graph.HintNone {
		t.Fatalf("bool columns must not claim a typed hint: %v", hint)
	}
}
