package kvstore

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"

	"github.com/datacomp/datacomp/internal/container"
)

// Durability format (DESIGN.md §11).
//
// WAL: a stream of container-framed records (uvarint compLen | uvarint
// rawLen | XXH64 | compressed payload). Each record holds one batch:
//
//	uvarint seq | uvarint opCount |
//	per op: 1B kind (0=put, 1=delete) | uvarint klen | key |
//	        (put only) uvarint vlen | value
//
// Snapshot: a full container whose block 0 is a meta block ("KVSN" |
// uvarint seq = the WAL sequence the snapshot covers) and whose remaining
// blocks pack live entries in key order (uvarint klen | key | uvarint
// vlen | value). Recovery loads the snapshot straight into the bottom
// level, then replays WAL batches with seq greater than the meta seq.

const (
	opPut    = 0
	opDelete = 1
)

var snapMeta = [4]byte{'K', 'V', 'S', 'N'}

// Batch accumulates writes that apply atomically through one WAL record —
// the storage-side sibling of codec.CompressBatch: N small items share one
// compression dispatch and one fsync. Ops replay in insertion order, so a
// later op on the same key wins.
type Batch struct {
	ops []batchOp
	// size approximates the encoded payload, for callers packing toward a
	// target record size.
	size int
}

type batchOp struct {
	key, value []byte
	del        bool
}

// Put queues key→value (copies both).
func (b *Batch) Put(key, value []byte) {
	b.ops = append(b.ops, batchOp{
		key:   append([]byte{}, key...),
		value: append([]byte{}, value...),
	})
	b.size += len(key) + len(value) + 12
}

// Delete queues a tombstone for key (copies it).
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{key: append([]byte{}, key...), del: true})
	b.size += len(key) + 12
}

// Len reports the queued op count.
func (b *Batch) Len() int { return len(b.ops) }

// Size approximates the encoded payload bytes.
func (b *Batch) Size() int { return b.size }

// Reset empties the batch, retaining capacity.
func (b *Batch) Reset() {
	b.ops = b.ops[:0]
	b.size = 0
}

// appendBatchPayload encodes seq plus b's ops onto dst.
func appendBatchPayload(dst []byte, seq uint64, b *Batch) []byte {
	dst = binary.AppendUvarint(dst, seq)
	dst = binary.AppendUvarint(dst, uint64(len(b.ops)))
	for _, op := range b.ops {
		kind := byte(opPut)
		if op.del {
			kind = opDelete
		}
		dst = append(dst, kind)
		dst = binary.AppendUvarint(dst, uint64(len(op.key)))
		dst = append(dst, op.key...)
		if !op.del {
			dst = binary.AppendUvarint(dst, uint64(len(op.value)))
			dst = append(dst, op.value...)
		}
	}
	return dst
}

// decodeBatchPayload parses one batch payload, invoking fn per op. The
// key and value slices alias raw. value is nil for deletes.
func decodeBatchPayload(raw []byte, fn func(key, value []byte, del bool) error) (seq uint64, err error) {
	seq, n := binary.Uvarint(raw)
	if n <= 0 {
		return 0, fmt.Errorf("%w: batch seq", ErrCorrupt)
	}
	pos := n
	count, n := binary.Uvarint(raw[pos:])
	if n <= 0 || count > uint64(len(raw)) {
		return 0, fmt.Errorf("%w: batch count", ErrCorrupt)
	}
	pos += n
	for i := uint64(0); i < count; i++ {
		if pos >= len(raw) {
			return 0, fmt.Errorf("%w: batch op", ErrCorrupt)
		}
		kind := raw[pos]
		pos++
		if kind != opPut && kind != opDelete {
			return 0, fmt.Errorf("%w: batch op kind %d", ErrCorrupt, kind)
		}
		klen, n := binary.Uvarint(raw[pos:])
		if n <= 0 || klen == 0 || klen > uint64(len(raw)-pos-n) {
			return 0, fmt.Errorf("%w: batch key", ErrCorrupt)
		}
		pos += n
		key := raw[pos : pos+int(klen)]
		pos += int(klen)
		var value []byte
		if kind == opPut {
			vlen, n := binary.Uvarint(raw[pos:])
			if n <= 0 || vlen > uint64(len(raw)-pos-n) {
				return 0, fmt.Errorf("%w: batch value", ErrCorrupt)
			}
			pos += n
			value = raw[pos : pos+int(vlen)]
			pos += int(vlen)
		}
		if err := fn(key, value, kind == opDelete); err != nil {
			return 0, err
		}
	}
	if pos != len(raw) {
		return 0, fmt.Errorf("%w: batch trailing bytes", ErrCorrupt)
	}
	return seq, nil
}

// buildSnapshotLocked serializes the DB's full live state (memtable
// overlaid on every level) into a snapshot container covering db.seq.
func (db *DB) buildSnapshotLocked(ctx context.Context) ([]byte, error) {
	var out bytes.Buffer
	bw, err := container.NewBuilder(&out, db.cfg.codecName, db.eng, db.cfg.blockSize)
	if err != nil {
		return nil, err
	}
	meta := append([]byte{}, snapMeta[:]...)
	meta = binary.AppendUvarint(meta, db.seq)
	if err := bw.AppendBlock(meta); err != nil {
		return nil, err
	}

	mi, err := db.fullMergeIteratorLocked()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, db.cfg.blockSize+4096)
	entries := 0
	for mi.valid() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !mi.tombstone() {
			buf = binary.AppendUvarint(buf, uint64(len(mi.key())))
			buf = append(buf, mi.key()...)
			buf = binary.AppendUvarint(buf, uint64(len(mi.value())))
			buf = append(buf, mi.value()...)
			entries++
			if len(buf) >= db.cfg.blockSize {
				if err := bw.AppendBlock(buf); err != nil {
					return nil, err
				}
				buf = buf[:0]
			}
		}
		if err := mi.next(); err != nil {
			return nil, err
		}
	}
	if mi.err != nil {
		return nil, mi.err
	}
	if len(buf) > 0 {
		if err := bw.AppendBlock(buf); err != nil {
			return nil, err
		}
	}
	if err := bw.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// fullMergeIteratorLocked merges the memtable (as the newest source) with
// every table on every level — the iterator behind Scan and snapshots.
func (db *DB) fullMergeIteratorLocked() (*mergeIterator, error) {
	w := newTableWriter(-1, db.cfg.codecName, db.eng, db.cfg.blockSize, nil)
	for it := db.mem.iterator(); it.valid(); it.next() {
		var v []byte
		if !it.tombstone() {
			v = it.value()
			if v == nil {
				v = []byte{}
			}
		}
		if err := w.add(it.key(), v); err != nil {
			return nil, err
		}
	}
	memTable, err := w.finish()
	if err != nil {
		return nil, err
	}
	var inputs []*sstable
	if memTable != nil {
		inputs = append(inputs, memTable)
	}
	inputs = append(inputs, db.levels[0]...)
	for lvl := 1; lvl < numLevels; lvl++ {
		inputs = append(inputs, db.levels[lvl]...)
	}
	return newMergeIterator(inputs, &db.stats, nil), nil
}

// loadSnapshotLocked rebuilds the bottom level from a snapshot container
// and returns the WAL sequence it covers. Called only on an empty DB.
func (db *DB) loadSnapshotLocked(snap []byte) (uint64, error) {
	ra, err := container.NewReaderAt(bytes.NewReader(snap), int64(len(snap)),
		container.WithEngine(db.eng))
	if err != nil {
		return 0, fmt.Errorf("kvstore: snapshot: %w", err)
	}
	if ra.NumBlocks() < 1 {
		return 0, fmt.Errorf("%w: snapshot has no meta block", ErrCorrupt)
	}
	meta, err := ra.DecodeBlock(nil, 0)
	if err != nil {
		return 0, err
	}
	if len(meta) < len(snapMeta) || [4]byte(meta[:4]) != snapMeta {
		return 0, fmt.Errorf("%w: snapshot meta magic", ErrCorrupt)
	}
	seq, n := binary.Uvarint(meta[4:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: snapshot meta seq", ErrCorrupt)
	}

	w := newTableWriter(db.nextID, db.cfg.codecName, db.eng, db.cfg.blockSize, &db.stats)
	db.nextID++
	var out []*sstable
	rawInTable := 0
	var blk []byte
	for bi := 1; bi < ra.NumBlocks(); bi++ {
		blk, err = ra.DecodeBlock(blk[:0], bi)
		if err != nil {
			return 0, err
		}
		pos := 0
		for pos < len(blk) {
			klen, n := binary.Uvarint(blk[pos:])
			if n <= 0 || klen == 0 || klen > uint64(len(blk)-pos-n) {
				return 0, fmt.Errorf("%w: snapshot entry key", ErrCorrupt)
			}
			pos += n
			key := blk[pos : pos+int(klen)]
			pos += int(klen)
			vlen, n := binary.Uvarint(blk[pos:])
			if n <= 0 || vlen > uint64(len(blk)-pos-n) {
				return 0, fmt.Errorf("%w: snapshot entry value", ErrCorrupt)
			}
			pos += n
			value := blk[pos : pos+int(vlen)]
			pos += int(vlen)
			if err := w.add(key, value); err != nil {
				return 0, err
			}
			rawInTable += int(klen) + int(vlen)
			if rawInTable >= db.cfg.maxTableBytes {
				t, err := w.finish()
				if err != nil {
					return 0, err
				}
				if t != nil {
					out = append(out, t)
				}
				w = newTableWriter(db.nextID, db.cfg.codecName, db.eng, db.cfg.blockSize, &db.stats)
				db.nextID++
				rawInTable = 0
			}
		}
	}
	t, err := w.finish()
	if err != nil {
		return 0, err
	}
	if t != nil {
		out = append(out, t)
	}
	db.levels[numLevels-1] = out
	return seq, nil
}
