package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/datacomp/datacomp/internal/faultinject"
)

// dump collects the DB's full live state for equivalence checks.
func dump(t testing.TB, db *DB) map[string]string {
	t.Helper()
	got := map[string]string{}
	if err := db.Scan(tctx, func(k, v []byte) bool {
		got[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func mustPut(t testing.TB, db *DB, k, v string) {
	t.Helper()
	if err := db.Put(tctx, []byte(k), []byte(v)); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverFromWAL is the basic durability loop: write, crash without a
// clean Close, reopen on the same persister, read everything back.
func TestRecoverFromWAL(t *testing.T) {
	p := NewMemPersister()
	db, err := Open(tctx, "", WithPersister(p), WithWAL(SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("key-%04d", i)
		v := fmt.Sprintf("val-%d", i*3)
		want[k] = v
		mustPut(t, db, k, v)
	}
	for i := 0; i < 300; i += 5 {
		k := fmt.Sprintf("key-%04d", i)
		delete(want, k)
		if err := db.Delete(tctx, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the process dies. SyncAlways means every ack is durable.
	p.Crash()

	db2, err := Open(tctx, "", WithPersister(p))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := dump(t, db2); len(got) != len(want) {
		t.Fatalf("recovered %d keys, want %d", len(got), len(want))
	} else {
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("key %q: recovered %q, want %q", k, got[k], v)
			}
		}
	}
	if db2.Seq() != db.Seq() {
		t.Fatalf("recovered seq %d, want %d", db2.Seq(), db.Seq())
	}
	if db2.Stats().ReplayedBatches == 0 {
		t.Fatal("recovery replayed no batches")
	}
}

// TestCrashAfterBatchBoundaries is the kill matrix from the issue: crash
// after zero, a partial (unsynced), and a full synced batch. Acked+synced
// writes survive; unsynced ones vanish atomically.
func TestCrashAfterBatchBoundaries(t *testing.T) {
	for _, tc := range []struct {
		name    string
		batches int // synced batches before the crash
		partial bool
	}{
		{"zero", 0, false},
		{"partial", 2, true},
		{"full", 3, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := NewMemPersister()
			db, err := Open(tctx, "", WithPersister(p), WithWAL(SyncOnCheckpoint))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < tc.batches; i++ {
				var b Batch
				b.Put([]byte(fmt.Sprintf("synced-%d-a", i)), []byte("x"))
				b.Put([]byte(fmt.Sprintf("synced-%d-b", i)), []byte("y"))
				if err := db.Apply(tctx, &b); err != nil {
					t.Fatal(err)
				}
			}
			if err := p.Sync(); err != nil {
				t.Fatal(err)
			}
			if tc.partial {
				// Acked but not synced: lost as a unit on crash.
				mustPut(t, db, "unsynced", "gone")
			}
			p.Crash()

			db2, err := Open(tctx, "", WithPersister(p))
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			got := dump(t, db2)
			if len(got) != 2*tc.batches {
				t.Fatalf("recovered %d keys, want %d", len(got), 2*tc.batches)
			}
			if _, ok := got["unsynced"]; ok {
				t.Fatal("unsynced write survived the crash")
			}
		})
	}
}

// TestTornRecordEveryOffset tears the log at every byte offset. Whatever
// the cut, recovery must land on a batch boundary: each batch is all-there
// or all-gone, and the store must reopen without error.
func TestTornRecordEveryOffset(t *testing.T) {
	// Build a reference log of batches with known boundaries.
	p := NewMemPersister()
	db, err := Open(tctx, "", WithPersister(p), WithWAL(SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	var bounds []int64 // WAL length after each batch
	const batches = 6
	for i := 0; i < batches; i++ {
		var b Batch
		b.Put([]byte(fmt.Sprintf("k-%d-1", i)), bytes.Repeat([]byte{byte(i)}, 100))
		b.Put([]byte(fmt.Sprintf("k-%d-2", i)), []byte(fmt.Sprintf("val-%d", i)))
		if err := db.Apply(tctx, &b); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, p.WALBytes())
	}
	full := append([]byte{}, p.wal...)

	batchesAt := func(cut int64) int {
		n := 0
		for _, b := range bounds {
			if b <= cut {
				n++
			}
		}
		return n
	}
	for cut := int64(0); cut <= int64(len(full)); cut++ {
		p2 := NewMemPersister()
		if err := p2.AppendWAL(full[:cut]); err != nil {
			t.Fatal(err)
		}
		db2, err := Open(tctx, "", WithPersister(p2))
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		want := batchesAt(cut)
		got := dump(t, db2)
		if len(got) != 2*want {
			t.Fatalf("cut=%d: recovered %d keys, want %d (complete batches only)",
				cut, len(got), 2*want)
		}
		// The persister discarded the torn tail, so the store keeps working.
		if err := db2.Put(tctx, []byte("after-tear"), []byte("ok")); err != nil {
			t.Fatalf("cut=%d: put after recovery: %v", cut, err)
		}
		db2.Close()
	}
}

// TestSnapshotWALEquivalence: a store recovered from snapshot+WAL and one
// recovered from WAL alone hold identical data, and checkpointing at any
// moment never changes the recovered contents.
func TestSnapshotWALEquivalence(t *testing.T) {
	pSnap := NewMemPersister()
	pWAL := NewMemPersister()
	dbSnap, err := Open(tctx, "", WithPersister(pSnap), WithWAL(SyncAlways),
		WithMemtableBytes(4<<10))
	if err != nil {
		t.Fatal(err)
	}
	dbWAL, err := Open(tctx, "", WithPersister(pWAL), WithWAL(SyncAlways),
		WithMemtableBytes(4<<10))
	if err != nil {
		t.Fatal(err)
	}
	apply := func(i int) {
		k := fmt.Sprintf("key-%04d", i%200) // overwrites exercise shadowing
		v := fmt.Sprintf("val-%d", i)
		mustPut(t, dbSnap, k, v)
		mustPut(t, dbWAL, k, v)
		if i%7 == 0 {
			d := []byte(fmt.Sprintf("key-%04d", (i*3)%200))
			if err := dbSnap.Delete(tctx, d); err != nil {
				t.Fatal(err)
			}
			if err := dbWAL.Delete(tctx, d); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 400; i++ {
		apply(i)
		if i == 150 || i == 310 {
			if err := dbSnap.Checkpoint(tctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	if dbSnap.Stats().Snapshots != 2 {
		t.Fatalf("snapshots=%d, want 2", dbSnap.Stats().Snapshots)
	}
	p2 := pSnap // crash both and reopen
	db2, err := Open(tctx, "", WithPersister(p2))
	if err != nil {
		t.Fatal(err)
	}
	db3, err := Open(tctx, "", WithPersister(pWAL))
	if err != nil {
		t.Fatal(err)
	}
	a, b := dump(t, db2), dump(t, db3)
	if len(a) != len(b) {
		t.Fatalf("snapshot path has %d keys, WAL path %d", len(a), len(b))
	}
	for k, v := range b {
		if a[k] != v {
			t.Fatalf("key %q: snapshot path %q, WAL path %q", k, a[k], v)
		}
	}
	// The snapshot bounded the replay work.
	if r1, r2 := db2.Stats().ReplayedBatches, db3.Stats().ReplayedBatches; r1 >= r2 {
		t.Fatalf("snapshot recovery replayed %d batches, WAL-only %d", r1, r2)
	}
}

// TestStaleWALAfterSnapshot models the crash window between snapshot rename
// and WAL truncate: replaying batches the snapshot already covers must not
// double-apply or resurrect deleted keys.
func TestStaleWALAfterSnapshot(t *testing.T) {
	p := NewMemPersister()
	db, err := Open(tctx, "", WithPersister(p), WithWAL(SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, db, "a", "1")
	mustPut(t, db, "b", "2")
	if err := db.Delete(tctx, []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Snapshot the current state, but resurrect the pre-snapshot WAL — as if
	// the crash hit after rename, before truncate.
	staleWAL := append([]byte{}, p.wal...)
	if err := db.Checkpoint(tctx); err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	p.wal = append(p.wal[:0], staleWAL...)
	p.synced = len(p.wal)
	p.mu.Unlock()

	db2, err := Open(tctx, "", WithPersister(p))
	if err != nil {
		t.Fatal(err)
	}
	got := dump(t, db2)
	if _, ok := got["a"]; ok {
		t.Fatal(`stale WAL resurrected deleted key "a"`)
	}
	if got["b"] != "2" {
		t.Fatalf(`key "b": got %q, want "2"`, got["b"])
	}
	if db2.Seq() != db.Seq() {
		t.Fatalf("seq %d after stale-WAL recovery, want %d", db2.Seq(), db.Seq())
	}
}

// TestAutoCheckpoint: the WAL rotates into a snapshot once it outgrows
// WithWALRotateBytes, and the result still recovers everything.
func TestAutoCheckpoint(t *testing.T) {
	p := NewMemPersister()
	db, err := Open(tctx, "", WithPersister(p), WithWAL(SyncAlways),
		WithWALRotateBytes(8<<10))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		mustPut(t, db, fmt.Sprintf("key-%04d", i), fmt.Sprintf("value-%d", i))
	}
	st := db.Stats()
	if st.Snapshots == 0 {
		t.Fatal("WAL never rotated into a snapshot")
	}
	if db.WALSize() >= st.WALBytes {
		t.Fatal("rotation did not reset the live WAL size")
	}
	db2, err := Open(tctx, "", WithPersister(p))
	if err != nil {
		t.Fatal(err)
	}
	if got := dump(t, db2); len(got) != 500 {
		t.Fatalf("recovered %d keys, want 500", len(got))
	}
}

// TestDirPersisterRecovery runs the same loop against real files, including
// a torn tail produced by os.Truncate on wal.log.
func TestDirPersisterRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	db, err := Open(tctx, dir, WithWAL(SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		mustPut(t, db, fmt.Sprintf("key-%03d", i), fmt.Sprintf("v-%d", i))
	}
	if err := db.Checkpoint(tctx); err != nil {
		t.Fatal(err)
	}
	for i := 200; i < 260; i++ {
		mustPut(t, db, fmt.Sprintf("key-%03d", i), fmt.Sprintf("v-%d", i))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapFileName)); err != nil {
		t.Fatalf("snapshot file: %v", err)
	}

	// Clean reopen first.
	db2, err := Open(tctx, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := dump(t, db2); len(got) != 260 {
		t.Fatalf("recovered %d keys, want 260", len(got))
	}
	mustPut(t, db2, "post-reopen", "ok")
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final record mid-frame with a real file truncate.
	walPath := filepath.Join(dir, walFileName)
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("test needs a non-empty WAL to tear")
	}
	if err := os.Truncate(walPath, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	db3, err := Open(tctx, dir)
	if err != nil {
		t.Fatalf("open with torn WAL tail: %v", err)
	}
	got := dump(t, db3)
	if len(got) != 260 { // the torn record held only "post-reopen"
		t.Fatalf("recovered %d keys after tear, want 260", len(got))
	}
	if _, ok := got["post-reopen"]; ok {
		t.Fatal("torn record partially applied")
	}
	// Replay truncated the file, so new writes extend a clean log.
	mustPut(t, db3, "after-tear", "ok")
	if err := db3.Close(); err != nil {
		t.Fatal(err)
	}
	db4, err := Open(tctx, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := dump(t, db4); got["after-tear"] != "ok" {
		t.Fatal("write after torn-tail recovery was lost")
	}
	db4.Close()
}

// TestFaultPersister: a failed WAL append or sync is a failed ack — the
// in-memory state must not advance, and the store stays consistent.
func TestFaultPersister(t *testing.T) {
	inner := NewMemPersister()
	fp := NewFaultPersister(inner)
	db, err := Open(tctx, "", WithPersister(fp), WithWAL(SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, db, "pre", "1")
	seq := db.Seq()

	fp.FailAppendsAfter(0)
	if err := db.Put(tctx, []byte("denied"), []byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if _, ok, _ := db.Get(tctx, []byte("denied")); ok {
		t.Fatal("failed append still mutated the memtable")
	}
	if db.Seq() != seq {
		t.Fatal("failed append advanced the sequence")
	}

	fp.FailAppendsAfter(-1)
	fp.FailSync(true)
	if err := db.Put(tctx, []byte("denied2"), []byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected on sync", err)
	}
	if _, ok, _ := db.Get(tctx, []byte("denied2")); ok {
		t.Fatal("failed sync still mutated the memtable")
	}
	fp.FailSync(false)

	fp.FailSnapshot(true)
	if err := db.Checkpoint(tctx); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected on snapshot", err)
	}
	fp.FailSnapshot(false)

	// After all faults clear, the store works and recovers cleanly.
	mustPut(t, db, "post", "2")
	db2, err := Open(tctx, "", WithPersister(inner))
	if err != nil {
		t.Fatal(err)
	}
	got := dump(t, db2)
	if got["pre"] != "1" || got["post"] != "2" {
		t.Fatalf("recovered %v, want pre=1 and post=2", got)
	}
	// "denied" (failed append) must never reappear. "denied2" (failed
	// sync) is indeterminate — the record reached the log before the fsync
	// failed, like any commit that errors after transport — so recovery
	// may legitimately surface it.
	if _, ok := got["denied"]; ok {
		t.Fatal("failed append reappeared after recovery")
	}
}

// FuzzWALReplay feeds arbitrary bytes to recovery: Open must never panic
// and, whatever it salvages, the store must stay usable.
func FuzzWALReplay(f *testing.F) {
	// Seed with a real log and mutations of it.
	p := NewMemPersister()
	db, err := Open(tctx, "", WithPersister(p), WithWAL(SyncAlways))
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := db.Put(tctx, []byte(fmt.Sprintf("k%d", i)), bytes.Repeat([]byte("v"), i*10)); err != nil {
			f.Fatal(err)
		}
	}
	real := append([]byte{}, p.wal...)
	f.Add(real)
	f.Add(real[:len(real)/2])
	mut := append([]byte{}, real...)
	mut[len(mut)/3] ^= 0x80
	f.Add(mut)
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00, 0xff})

	f.Fuzz(func(t *testing.T, wal []byte) {
		p := NewMemPersister()
		if err := p.AppendWAL(wal); err != nil {
			t.Fatal(err)
		}
		db, err := Open(tctx, "", WithPersister(p))
		if err != nil {
			return // rejecting garbage is fine; panicking is not
		}
		if err := db.Put(tctx, []byte("probe"), []byte("ok")); err != nil {
			t.Fatalf("store unusable after replaying fuzz log: %v", err)
		}
		v, ok, err := db.Get(tctx, []byte("probe"))
		if err != nil || !ok || string(v) != "ok" {
			t.Fatalf("probe lost: ok=%v err=%v", ok, err)
		}
	})
}

// TestFaultInjectedWALRecovery feeds the on-disk WAL through seeded
// faultinject corruption (bit flips and truncation) and checks the replay
// invariant: with every key written exactly once, a clean-close WAL must
// recover to an exact batch prefix — db.Seq() batches, each fully applied,
// every recovered value byte-identical — and the store must stay writable.
func TestFaultInjectedWALRecovery(t *testing.T) {
	dir := t.TempDir()
	const batches = 40
	{
		p, err := NewDirPersister(dir)
		if err != nil {
			t.Fatal(err)
		}
		db, err := Open(tctx, "", WithPersister(p), WithWAL(SyncAlways))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < batches; i++ {
			mustPut(t, db, fmt.Sprintf("fi-%03d", i), fmt.Sprintf("val-%03d", i))
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
	walPath := filepath.Join(dir, walFileName)
	pristine, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(walPath, mutate(append([]byte{}, pristine...)), 0o644); err != nil {
				t.Fatal(err)
			}
			defer os.WriteFile(walPath, pristine, 0o644)

			p, err := NewDirPersister(dir)
			if err != nil {
				t.Fatal(err)
			}
			db, err := Open(tctx, "", WithPersister(p), WithWAL(SyncAlways))
			if err != nil {
				t.Fatalf("recovery must absorb WAL corruption, got %v", err)
			}
			defer db.Close()

			// Exact-prefix invariant: the first Seq() batches, no others.
			replayed := int(db.Seq())
			if replayed > batches {
				t.Fatalf("replayed %d batches, only %d written", replayed, batches)
			}
			got := dump(t, db)
			if len(got) != replayed {
				t.Fatalf("recovered %d keys, want exactly %d (one per replayed batch)", len(got), replayed)
			}
			for i := 0; i < replayed; i++ {
				k := fmt.Sprintf("fi-%03d", i)
				if got[k] != fmt.Sprintf("val-%03d", i) {
					t.Fatalf("batch %d: key %q = %q", i, k, got[k])
				}
			}
			mustPut(t, db, "probe", "alive")
		})
	}

	for seed := uint64(1); seed <= 5; seed++ {
		seed := seed
		corrupt(fmt.Sprintf("bitflips-seed%d", seed), func(wal []byte) []byte {
			conn := faultinject.New(bytes.NewBuffer(wal),
				faultinject.WithSeed(seed), faultinject.WithBitFlips(0.0005))
			flipped, err := io.ReadAll(conn)
			if err != nil {
				t.Fatal(err)
			}
			return flipped
		})
	}
	for _, frac := range []int{1, 3, 7} {
		frac := frac
		corrupt(fmt.Sprintf("truncate-%d8ths", frac), func(wal []byte) []byte {
			return wal[:len(wal)*frac/8]
		})
	}
}
