package kvstore

import (
	"github.com/datacomp/datacomp/internal/codec"
)

// SyncPolicy is the WAL fsync knob: how much acknowledged data a crash may
// cost. It is the classic durability/throughput trade the fleet tunes per
// store — a replicated cluster can afford SyncOnCheckpoint on each node
// because the other replicas are the short-term durability.
type SyncPolicy int

const (
	// SyncOnCheckpoint (the default) appends WAL records without fsync and
	// syncs only at checkpoints and Close. A crash loses the unsynced tail;
	// replay recovers everything up to the last sync.
	SyncOnCheckpoint SyncPolicy = iota
	// SyncAlways fsyncs the WAL before acknowledging every batch: no
	// acknowledged write is ever lost to a crash.
	SyncAlways
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	default:
		return "checkpoint"
	}
}

// config is the resolved Open configuration.
type config struct {
	codecName string
	level     int
	engine    codec.Engine // nil: built from codecName+level

	blockSize         int
	memtableBytes     int
	maxTableBytes     int
	l0Trigger         int
	baseLevelBytes    int64
	blockCacheEntries int
	seed              int64

	persister      Persister
	walDisabled    bool
	sync           SyncPolicy
	walCodec       string
	walRotateBytes int64
}

// Option configures Open, mirroring the functional-option vocabulary of
// codec.NewEngine and container's readers.
type Option func(*config)

// WithCodec selects the block compressor by registered codec name
// (default "zstd").
func WithCodec(name string) Option { return func(c *config) { c.codecName = name } }

// WithLevel sets the block compressor level (default 1, the common choice
// the paper reports for compaction-heavy stores).
func WithLevel(level int) Option { return func(c *config) { c.level = level } }

// WithEngine installs a prebuilt engine for block compression instead of
// constructing one from the codec name — the hook for wrapped engines such
// as codec.Degrader or telemetry.Instrument. The engine must be dedicated
// to this DB (engines are single-goroutine; the DB serializes access), and
// it must decode every frame it encodes across reopens.
func WithEngine(eng codec.Engine) Option { return func(c *config) { c.engine = eng } }

// WithBlockSize sets the uncompressed data-block granularity (default
// 16 KiB; RocksDB commonly uses 16-64 KiB per the paper).
func WithBlockSize(n int) Option { return func(c *config) { c.blockSize = n } }

// WithMemtableBytes triggers a flush when the memtable reaches this size
// (default 1 MiB).
func WithMemtableBytes(n int) Option { return func(c *config) { c.memtableBytes = n } }

// WithMaxTableBytes bounds the raw bytes per output table during flush and
// compaction (default 2 MiB).
func WithMaxTableBytes(n int) Option { return func(c *config) { c.maxTableBytes = n } }

// WithL0CompactionTrigger compacts L0 when it accumulates this many tables
// (default 4).
func WithL0CompactionTrigger(n int) Option { return func(c *config) { c.l0Trigger = n } }

// WithBaseLevelBytes sets the stored-size budget of L1; each deeper level
// gets 10x more (default 8 MiB).
func WithBaseLevelBytes(n int64) Option { return func(c *config) { c.baseLevelBytes = n } }

// WithBlockCacheEntries bounds the decoded-block cache (default 256;
// negative disables).
func WithBlockCacheEntries(n int) Option { return func(c *config) { c.blockCacheEntries = n } }

// WithSeed makes skiplist heights deterministic.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithPersister installs the durability backend. It overrides the path
// argument of Open; tests run diskless by passing a MemPersister or
// FaultPersister here.
func WithPersister(p Persister) Option { return func(c *config) { c.persister = p } }

// WithWAL sets the write-ahead log's fsync policy (default
// SyncOnCheckpoint). The WAL itself is always on unless WithoutWAL.
func WithWAL(policy SyncPolicy) Option { return func(c *config) { c.sync = policy } }

// WithoutWAL disables the write-ahead log and snapshots entirely: the DB
// is purely in-memory and nothing survives a crash. This is the v1
// behavior, kept for benchmarks and characterization runs that measure
// block compression alone.
func WithoutWAL() Option { return func(c *config) { c.walDisabled = true } }

// WithWALCodec selects the WAL record compressor (default "lz4": the WAL
// sits on the write ack path, so the cheapest codec wins; blocks keep
// their own, denser codec).
func WithWALCodec(name string) Option { return func(c *config) { c.walCodec = name } }

// WithWALRotateBytes sets the WAL size that triggers an automatic
// checkpoint (snapshot + WAL reset; default 8 MiB, 0 keeps the default,
// negative disables auto-checkpointing).
func WithWALRotateBytes(n int64) Option { return func(c *config) { c.walRotateBytes = n } }

func buildConfig(opts []Option) config {
	c := config{}
	for _, o := range opts {
		o(&c)
	}
	if c.codecName == "" {
		c.codecName = "zstd"
	}
	if c.level == 0 {
		c.level = 1
	}
	if c.blockSize == 0 {
		c.blockSize = 16 << 10
	}
	if c.memtableBytes == 0 {
		c.memtableBytes = 1 << 20
	}
	if c.maxTableBytes == 0 {
		c.maxTableBytes = 2 << 20
	}
	if c.l0Trigger == 0 {
		c.l0Trigger = 4
	}
	if c.baseLevelBytes == 0 {
		c.baseLevelBytes = 8 << 20
	}
	if c.blockCacheEntries == 0 {
		c.blockCacheEntries = 256
	}
	if c.walCodec == "" {
		c.walCodec = "lz4"
	}
	if c.walRotateBytes == 0 {
		c.walRotateBytes = 8 << 20
	}
	return c
}

// Options is the v1 configuration struct.
//
// Deprecated: use Open's functional options. Field-to-option map:
// Codec → WithCodec, Level → WithLevel, BlockSize → WithBlockSize,
// MemtableBytes → WithMemtableBytes, MaxTableBytes → WithMaxTableBytes,
// L0CompactionTrigger → WithL0CompactionTrigger, BaseLevelBytes →
// WithBaseLevelBytes, BlockCacheEntries → WithBlockCacheEntries,
// Seed → WithSeed.
type Options struct {
	Codec               string
	Level               int
	BlockSize           int
	MemtableBytes       int
	MaxTableBytes       int
	L0CompactionTrigger int
	BaseLevelBytes      int64
	BlockCacheEntries   int
	Seed                int64
}

// opts converts the v1 struct to the functional-option form.
func (o Options) opts() []Option {
	return []Option{
		WithCodec(o.Codec), WithLevel(o.Level), WithBlockSize(o.BlockSize),
		WithMemtableBytes(o.MemtableBytes), WithMaxTableBytes(o.MaxTableBytes),
		WithL0CompactionTrigger(o.L0CompactionTrigger),
		WithBaseLevelBytes(o.BaseLevelBytes),
		WithBlockCacheEntries(o.BlockCacheEntries), WithSeed(o.Seed),
	}
}
