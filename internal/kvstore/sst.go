package kvstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/container"
)

// ErrCorrupt is returned for undecodable table blocks.
var ErrCorrupt = errors.New("kvstore: corrupt table block")

const restartInterval = 16

// sstable is one immutable sorted table. Data blocks live in a seekable
// container (one container block per data block), so a point lookup
// decompresses exactly the block covering the key — container.ReaderAt is
// the random-access surface. Only the per-block last keys stay outside the
// container (this store models files as buffers — see DESIGN.md).
type sstable struct {
	id         int64
	data       []byte // complete container bytes
	ra         *container.ReaderAt
	lastKeys   [][]byte // largest key per block, parallel to container blocks
	smallest   []byte
	largest    []byte
	numEntries int
	rawBytes   int
}

// size returns the stored (compressed) size of the table.
func (t *sstable) size() int { return len(t.data) }

// numBlocks reports the table's data-block count.
func (t *sstable) numBlocks() int { return len(t.lastKeys) }

// tableWriter accumulates sorted entries into container blocks.
type tableWriter struct {
	eng       codec.Engine
	blockSize int
	stats     *Stats

	table    *sstable
	out      bytes.Buffer
	bw       *container.Builder
	bwErr    error
	buf      []byte // current block, uncompressed
	restarts []uint32
	count    int
	lastKey  []byte
	firstKey []byte
	prevKey  []byte
}

func newTableWriter(id int64, codecName string, eng codec.Engine, blockSize int, stats *Stats) *tableWriter {
	w := &tableWriter{
		eng:       eng,
		blockSize: blockSize,
		stats:     stats,
		table:     &sstable{id: id},
	}
	w.bw, w.bwErr = container.NewBuilder(&w.out, codecName, eng, blockSize)
	return w
}

func sharedPrefixLen(a, b []byte) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// add appends an entry; keys must arrive in strictly increasing order.
// value nil records a tombstone.
func (w *tableWriter) add(key, value []byte) error {
	if w.prevKey != nil && bytes.Compare(key, w.prevKey) <= 0 {
		return fmt.Errorf("kvstore: keys out of order: %q after %q", key, w.prevKey)
	}
	shared := 0
	if w.count%restartInterval == 0 {
		w.restarts = append(w.restarts, uint32(len(w.buf)))
	} else {
		shared = sharedPrefixLen(w.prevKey, key)
	}
	w.buf = binary.AppendUvarint(w.buf, uint64(shared))
	w.buf = binary.AppendUvarint(w.buf, uint64(len(key)-shared))
	if value == nil {
		w.buf = binary.AppendUvarint(w.buf, 0) // tombstone
	} else {
		w.buf = binary.AppendUvarint(w.buf, uint64(len(value))+1)
	}
	w.buf = append(w.buf, key[shared:]...)
	w.buf = append(w.buf, value...)
	w.count++
	w.table.numEntries++
	w.prevKey = append(w.prevKey[:0], key...)
	w.lastKey = w.prevKey
	if w.firstKey == nil {
		w.firstKey = append([]byte{}, key...)
	}
	if len(w.buf) >= w.blockSize {
		return w.flushBlock()
	}
	return nil
}

func (w *tableWriter) flushBlock() error {
	if w.bwErr != nil {
		return w.bwErr
	}
	if len(w.buf) == 0 {
		return nil
	}
	// Append the restart array.
	for _, r := range w.restarts {
		w.buf = binary.LittleEndian.AppendUint32(w.buf, r)
	}
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(w.restarts)))

	before := w.bw.Offset()
	t0 := time.Now()
	err := w.bw.AppendBlock(w.buf)
	dt := time.Since(t0)
	if err != nil {
		return err
	}
	if w.stats != nil {
		w.stats.CompressTime += dt
		w.stats.BlocksWritten++
		w.stats.RawBytesWritten += int64(len(w.buf))
		w.stats.StoredBytesWritten += w.bw.Offset() - before
		tmCompNS.Add(dt.Nanoseconds())
		tmBlocksWritten.Inc()
		tmRawBytesWritten.Add(int64(len(w.buf)))
		tmStoredBytesWritten.Add(w.bw.Offset() - before)
	}
	w.table.lastKeys = append(w.table.lastKeys, append([]byte{}, w.lastKey...))
	w.table.rawBytes += len(w.buf)
	w.buf = w.buf[:0]
	w.restarts = w.restarts[:0]
	w.count = 0
	return nil
}

// finish seals the table: the container gains its footer index and the
// table opens a ReaderAt over it sharing the writer's engine. Returns nil
// when no entries were added.
func (w *tableWriter) finish() (*sstable, error) {
	if err := w.flushBlock(); err != nil {
		return nil, err
	}
	if w.table.numEntries == 0 {
		return nil, nil
	}
	if err := w.bw.Close(); err != nil {
		return nil, err
	}
	w.table.data = w.out.Bytes()
	ra, err := container.NewReaderAt(bytes.NewReader(w.table.data), int64(len(w.table.data)),
		container.WithEngine(w.eng))
	if err != nil {
		return nil, err
	}
	if ra.NumBlocks() != len(w.table.lastKeys) {
		return nil, ErrCorrupt
	}
	w.table.ra = ra
	w.table.smallest = w.firstKey
	w.table.largest = append([]byte{}, w.lastKey...)
	return w.table, nil
}

// decodeBlock expands one data block — exactly one container block is read
// and decompressed — and returns its entry region (the restart array is
// validated and stripped).
func decodeBlock(t *sstable, bi int, stats *Stats) ([]byte, error) {
	t0 := time.Now()
	raw, err := t.ra.DecodeBlock(nil, bi)
	dt := time.Since(t0)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if stats != nil {
		stats.DecompressTime += dt
		stats.BlocksDecompressed++
		stats.BytesDecompressed += int64(len(raw))
		stats.BlocksRead++
		tmDecompNS.Add(dt.Nanoseconds())
		tmBlocksDecompressed.Inc()
		tmBytesDecompressed.Add(int64(len(raw)))
		tmBlocksRead.Inc()
	}
	if len(raw) < 4 {
		return nil, ErrCorrupt
	}
	numRestarts := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	trailer := 4 + 4*int(numRestarts)
	if trailer > len(raw) {
		return nil, ErrCorrupt
	}
	return raw[:len(raw)-trailer], nil
}

// blockEntry is one decoded entry.
type blockEntry struct {
	key       []byte
	value     []byte
	tombstone bool
}

// walkBlock scans every entry of a decoded block in order, invoking fn.
// fn returns false to stop early.
func walkBlock(entries []byte, fn func(blockEntry) bool) error {
	pos := 0
	var key []byte
	for pos < len(entries) {
		shared, n := binary.Uvarint(entries[pos:])
		if n <= 0 {
			return ErrCorrupt
		}
		pos += n
		unshared, n := binary.Uvarint(entries[pos:])
		if n <= 0 {
			return ErrCorrupt
		}
		pos += n
		vtag, n := binary.Uvarint(entries[pos:])
		if n <= 0 {
			return ErrCorrupt
		}
		pos += n
		if int(shared) > len(key) || pos+int(unshared) > len(entries) {
			return ErrCorrupt
		}
		key = append(key[:int(shared)], entries[pos:pos+int(unshared)]...)
		pos += int(unshared)
		var e blockEntry
		e.key = key
		if vtag == 0 {
			e.tombstone = true
		} else {
			vlen := int(vtag) - 1
			if pos+vlen > len(entries) {
				return ErrCorrupt
			}
			e.value = entries[pos : pos+vlen]
			pos += vlen
		}
		if !fn(e) {
			return nil
		}
	}
	return nil
}

// findBlock locates the block that may contain key (first block whose
// lastKey ≥ key). Returns -1 when key is past the table.
func (t *sstable) findBlock(key []byte) int {
	i := sort.Search(len(t.lastKeys), func(i int) bool {
		return bytes.Compare(t.lastKeys[i], key) >= 0
	})
	if i == len(t.lastKeys) {
		return -1
	}
	return i
}

// get searches the table. Returns (value, tombstone, found).
func (t *sstable) get(key []byte, stats *Stats, cache *blockCache) ([]byte, bool, bool, error) {
	bi := t.findBlock(key)
	if bi < 0 || bytes.Compare(key, t.smallest) < 0 {
		return nil, false, false, nil
	}
	entries, err := t.loadBlock(bi, stats, cache)
	if err != nil {
		return nil, false, false, err
	}
	var out []byte
	var tomb, found bool
	err = walkBlock(entries, func(e blockEntry) bool {
		c := bytes.Compare(e.key, key)
		if c == 0 {
			found = true
			tomb = e.tombstone
			out = append([]byte{}, e.value...)
			return false
		}
		return c < 0 // keep scanning while behind
	})
	if err != nil {
		return nil, false, false, err
	}
	return out, tomb, found, nil
}

func (t *sstable) loadBlock(bi int, stats *Stats, cache *blockCache) ([]byte, error) {
	if cache != nil {
		if b, ok := cache.get(t.id, bi); ok {
			if stats != nil {
				stats.BlockCacheHits++
				tmBlockCacheHits.Inc()
			}
			return b, nil
		}
	}
	entries, err := decodeBlock(t, bi, stats)
	if err != nil {
		return nil, err
	}
	if cache != nil {
		cache.put(t.id, bi, entries)
	}
	return entries, nil
}

// tableIterator walks a whole table in key order.
type tableIterator struct {
	t       *sstable
	stats   *Stats
	cache   *blockCache
	block   int
	entries []blockEntry
	pos     int
	err     error
}

func (t *sstable) iterator(stats *Stats, cache *blockCache) *tableIterator {
	it := &tableIterator{t: t, stats: stats, cache: cache, block: -1}
	it.nextBlock()
	return it
}

func (it *tableIterator) nextBlock() {
	it.entries = it.entries[:0]
	it.pos = 0
	it.block++
	if it.block >= it.t.numBlocks() {
		return
	}
	raw, err := it.t.loadBlock(it.block, it.stats, it.cache)
	if err != nil {
		it.err = err
		return
	}
	err = walkBlock(raw, func(e blockEntry) bool {
		it.entries = append(it.entries, blockEntry{
			key:       append([]byte{}, e.key...),
			value:     append([]byte{}, e.value...),
			tombstone: e.tombstone,
		})
		return true
	})
	if err != nil {
		it.err = err
	}
}

func (it *tableIterator) valid() bool {
	return it.err == nil && it.block < it.t.numBlocks() && it.pos < len(it.entries)
}
func (it *tableIterator) key() []byte     { return it.entries[it.pos].key }
func (it *tableIterator) value() []byte   { return it.entries[it.pos].value }
func (it *tableIterator) tombstone() bool { return it.entries[it.pos].tombstone }
func (it *tableIterator) next() {
	it.pos++
	if it.pos >= len(it.entries) {
		it.nextBlock()
	}
}

// blockCache is a bounded FIFO-ish cache of decoded blocks keyed by
// (table, block).
type blockCache struct {
	maxEntries int
	m          map[[2]int64][]byte
	order      [][2]int64
}

func newBlockCache(maxEntries int) *blockCache {
	return &blockCache{maxEntries: maxEntries, m: make(map[[2]int64][]byte)}
}

func (c *blockCache) get(table int64, block int) ([]byte, bool) {
	b, ok := c.m[[2]int64{table, int64(block)}]
	return b, ok
}

func (c *blockCache) put(table int64, block int, entries []byte) {
	k := [2]int64{table, int64(block)}
	if _, ok := c.m[k]; ok {
		return
	}
	for len(c.m) >= c.maxEntries && len(c.order) > 0 {
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.m, victim)
	}
	c.m[k] = append([]byte{}, entries...)
	c.order = append(c.order, k)
}

// dropTable evicts all cached blocks of a table (after compaction).
func (c *blockCache) dropTable(table int64) {
	for k := range c.m {
		if k[0] == table {
			delete(c.m, k)
		}
	}
	kept := c.order[:0]
	for _, k := range c.order {
		if k[0] != table {
			kept = append(kept, k)
		}
	}
	c.order = kept
}
