package kvstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/datacomp/datacomp/internal/codec"
)

// ErrCorrupt is returned for undecodable table blocks.
var ErrCorrupt = errors.New("kvstore: corrupt table block")

const restartInterval = 16

// Block payload flags.
const (
	blockStoredRaw = iota
	blockCompressed
)

// blockIndexEntry locates one data block inside a table.
type blockIndexEntry struct {
	lastKey []byte // largest key in the block
	offset  int
	length  int
	rawLen  int
}

// sstable is one immutable sorted table. Data blocks are individually
// compressed; the index stays in memory (this store models files as
// buffers — see DESIGN.md).
type sstable struct {
	id         int64
	data       []byte
	index      []blockIndexEntry
	smallest   []byte
	largest    []byte
	numEntries int
	rawBytes   int
}

// size returns the stored (compressed) size of the table.
func (t *sstable) size() int { return len(t.data) }

// tableWriter accumulates sorted entries into blocks.
type tableWriter struct {
	eng       codec.Engine
	blockSize int
	stats     *Stats

	table    *sstable
	buf      []byte // current block, uncompressed
	restarts []uint32
	count    int
	lastKey  []byte
	firstKey []byte
	prevKey  []byte
}

func newTableWriter(id int64, eng codec.Engine, blockSize int, stats *Stats) *tableWriter {
	return &tableWriter{
		eng:       eng,
		blockSize: blockSize,
		stats:     stats,
		table:     &sstable{id: id},
	}
}

func sharedPrefixLen(a, b []byte) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// add appends an entry; keys must arrive in strictly increasing order.
// value nil records a tombstone.
func (w *tableWriter) add(key, value []byte) error {
	if w.prevKey != nil && bytes.Compare(key, w.prevKey) <= 0 {
		return fmt.Errorf("kvstore: keys out of order: %q after %q", key, w.prevKey)
	}
	shared := 0
	if w.count%restartInterval == 0 {
		w.restarts = append(w.restarts, uint32(len(w.buf)))
	} else {
		shared = sharedPrefixLen(w.prevKey, key)
	}
	w.buf = binary.AppendUvarint(w.buf, uint64(shared))
	w.buf = binary.AppendUvarint(w.buf, uint64(len(key)-shared))
	if value == nil {
		w.buf = binary.AppendUvarint(w.buf, 0) // tombstone
	} else {
		w.buf = binary.AppendUvarint(w.buf, uint64(len(value))+1)
	}
	w.buf = append(w.buf, key[shared:]...)
	w.buf = append(w.buf, value...)
	w.count++
	w.table.numEntries++
	w.prevKey = append(w.prevKey[:0], key...)
	w.lastKey = w.prevKey
	if w.firstKey == nil {
		w.firstKey = append([]byte{}, key...)
	}
	if len(w.buf) >= w.blockSize {
		return w.flushBlock()
	}
	return nil
}

func (w *tableWriter) flushBlock() error {
	if len(w.buf) == 0 {
		return nil
	}
	// Append the restart array.
	for _, r := range w.restarts {
		w.buf = binary.LittleEndian.AppendUint32(w.buf, r)
	}
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(w.restarts)))

	offset := len(w.table.data)
	t0 := time.Now()
	comp, err := w.eng.Compress(nil, w.buf)
	dt := time.Since(t0)
	if err != nil {
		return err
	}
	if w.stats != nil {
		w.stats.CompressTime += dt
		w.stats.BlocksWritten++
		w.stats.RawBytesWritten += int64(len(w.buf))
		tmCompNS.Add(dt.Nanoseconds())
		tmBlocksWritten.Inc()
		tmRawBytesWritten.Add(int64(len(w.buf)))
	}
	if len(comp) >= len(w.buf) {
		w.table.data = append(w.table.data, blockStoredRaw)
		w.table.data = append(w.table.data, w.buf...)
	} else {
		w.table.data = append(w.table.data, blockCompressed)
		w.table.data = append(w.table.data, comp...)
	}
	if w.stats != nil {
		w.stats.StoredBytesWritten += int64(len(w.table.data) - offset)
		tmStoredBytesWritten.Add(int64(len(w.table.data) - offset))
	}
	w.table.index = append(w.table.index, blockIndexEntry{
		lastKey: append([]byte{}, w.lastKey...),
		offset:  offset,
		length:  len(w.table.data) - offset,
		rawLen:  len(w.buf),
	})
	w.table.rawBytes += len(w.buf)
	w.buf = w.buf[:0]
	w.restarts = w.restarts[:0]
	w.count = 0
	return nil
}

// finish seals the table. Returns nil when no entries were added.
func (w *tableWriter) finish() (*sstable, error) {
	if err := w.flushBlock(); err != nil {
		return nil, err
	}
	if w.table.numEntries == 0 {
		return nil, nil
	}
	w.table.smallest = w.firstKey
	w.table.largest = append([]byte{}, w.lastKey...)
	return w.table, nil
}

// decodeBlock expands one data block and returns its entry region (the
// restart array is validated and stripped).
func decodeBlock(eng codec.Engine, t *sstable, e blockIndexEntry, stats *Stats) ([]byte, error) {
	if e.offset+e.length > len(t.data) || e.length < 1 {
		return nil, ErrCorrupt
	}
	payload := t.data[e.offset : e.offset+e.length]
	var raw []byte
	switch payload[0] {
	case blockStoredRaw:
		raw = payload[1:]
	case blockCompressed:
		t0 := time.Now()
		var err error
		raw, err = eng.Decompress(nil, payload[1:])
		dt := time.Since(t0)
		if err != nil {
			return nil, err
		}
		if stats != nil {
			stats.DecompressTime += dt
			stats.BlocksDecompressed++
			tmDecompNS.Add(dt.Nanoseconds())
			tmBlocksDecompressed.Inc()
		}
	default:
		return nil, ErrCorrupt
	}
	if stats != nil {
		stats.BlocksRead++
		tmBlocksRead.Inc()
	}
	if len(raw) < 4 {
		return nil, ErrCorrupt
	}
	numRestarts := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	trailer := 4 + 4*int(numRestarts)
	if trailer > len(raw) {
		return nil, ErrCorrupt
	}
	return raw[:len(raw)-trailer], nil
}

// blockEntry is one decoded entry.
type blockEntry struct {
	key       []byte
	value     []byte
	tombstone bool
}

// walkBlock scans every entry of a decoded block in order, invoking fn.
// fn returns false to stop early.
func walkBlock(entries []byte, fn func(blockEntry) bool) error {
	pos := 0
	var key []byte
	for pos < len(entries) {
		shared, n := binary.Uvarint(entries[pos:])
		if n <= 0 {
			return ErrCorrupt
		}
		pos += n
		unshared, n := binary.Uvarint(entries[pos:])
		if n <= 0 {
			return ErrCorrupt
		}
		pos += n
		vtag, n := binary.Uvarint(entries[pos:])
		if n <= 0 {
			return ErrCorrupt
		}
		pos += n
		if int(shared) > len(key) || pos+int(unshared) > len(entries) {
			return ErrCorrupt
		}
		key = append(key[:int(shared)], entries[pos:pos+int(unshared)]...)
		pos += int(unshared)
		var e blockEntry
		e.key = key
		if vtag == 0 {
			e.tombstone = true
		} else {
			vlen := int(vtag) - 1
			if pos+vlen > len(entries) {
				return ErrCorrupt
			}
			e.value = entries[pos : pos+vlen]
			pos += vlen
		}
		if !fn(e) {
			return nil
		}
	}
	return nil
}

// findBlock locates the block that may contain key (first block whose
// lastKey ≥ key). Returns -1 when key is past the table.
func (t *sstable) findBlock(key []byte) int {
	i := sort.Search(len(t.index), func(i int) bool {
		return bytes.Compare(t.index[i].lastKey, key) >= 0
	})
	if i == len(t.index) {
		return -1
	}
	return i
}

// get searches the table. Returns (value, tombstone, found).
func (t *sstable) get(eng codec.Engine, key []byte, stats *Stats, cache *blockCache) ([]byte, bool, bool, error) {
	bi := t.findBlock(key)
	if bi < 0 || bytes.Compare(key, t.smallest) < 0 {
		return nil, false, false, nil
	}
	entries, err := t.loadBlock(eng, bi, stats, cache)
	if err != nil {
		return nil, false, false, err
	}
	var out []byte
	var tomb, found bool
	err = walkBlock(entries, func(e blockEntry) bool {
		c := bytes.Compare(e.key, key)
		if c == 0 {
			found = true
			tomb = e.tombstone
			out = append([]byte{}, e.value...)
			return false
		}
		return c < 0 // keep scanning while behind
	})
	if err != nil {
		return nil, false, false, err
	}
	return out, tomb, found, nil
}

func (t *sstable) loadBlock(eng codec.Engine, bi int, stats *Stats, cache *blockCache) ([]byte, error) {
	if cache != nil {
		if b, ok := cache.get(t.id, bi); ok {
			if stats != nil {
				stats.BlockCacheHits++
				tmBlockCacheHits.Inc()
			}
			return b, nil
		}
	}
	entries, err := decodeBlock(eng, t, t.index[bi], stats)
	if err != nil {
		return nil, err
	}
	if cache != nil {
		cache.put(t.id, bi, entries)
	}
	return entries, nil
}

// tableIterator walks a whole table in key order.
type tableIterator struct {
	t       *sstable
	eng     codec.Engine
	stats   *Stats
	cache   *blockCache
	block   int
	entries []blockEntry
	pos     int
	err     error
}

func (t *sstable) iterator(eng codec.Engine, stats *Stats, cache *blockCache) *tableIterator {
	it := &tableIterator{t: t, eng: eng, stats: stats, cache: cache, block: -1}
	it.nextBlock()
	return it
}

func (it *tableIterator) nextBlock() {
	it.entries = it.entries[:0]
	it.pos = 0
	it.block++
	if it.block >= len(it.t.index) {
		return
	}
	raw, err := it.t.loadBlock(it.eng, it.block, it.stats, it.cache)
	if err != nil {
		it.err = err
		return
	}
	err = walkBlock(raw, func(e blockEntry) bool {
		it.entries = append(it.entries, blockEntry{
			key:       append([]byte{}, e.key...),
			value:     append([]byte{}, e.value...),
			tombstone: e.tombstone,
		})
		return true
	})
	if err != nil {
		it.err = err
	}
}

func (it *tableIterator) valid() bool {
	return it.err == nil && it.block < len(it.t.index) && it.pos < len(it.entries)
}
func (it *tableIterator) key() []byte     { return it.entries[it.pos].key }
func (it *tableIterator) value() []byte   { return it.entries[it.pos].value }
func (it *tableIterator) tombstone() bool { return it.entries[it.pos].tombstone }
func (it *tableIterator) next() {
	it.pos++
	if it.pos >= len(it.entries) {
		it.nextBlock()
	}
}

// blockCache is a bounded FIFO-ish cache of decoded blocks keyed by
// (table, block).
type blockCache struct {
	maxEntries int
	m          map[[2]int64][]byte
	order      [][2]int64
}

func newBlockCache(maxEntries int) *blockCache {
	return &blockCache{maxEntries: maxEntries, m: make(map[[2]int64][]byte)}
}

func (c *blockCache) get(table int64, block int) ([]byte, bool) {
	b, ok := c.m[[2]int64{table, int64(block)}]
	return b, ok
}

func (c *blockCache) put(table int64, block int, entries []byte) {
	k := [2]int64{table, int64(block)}
	if _, ok := c.m[k]; ok {
		return
	}
	for len(c.m) >= c.maxEntries && len(c.order) > 0 {
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.m, victim)
	}
	c.m[k] = append([]byte{}, entries...)
	c.order = append(c.order, k)
}

// dropTable evicts all cached blocks of a table (after compaction).
func (c *blockCache) dropTable(table int64) {
	for k := range c.m {
		if k[0] == table {
			delete(c.m, k)
		}
	}
	kept := c.order[:0]
	for _, k := range c.order {
		if k[0] != table {
			kept = append(kept, k)
		}
	}
	c.order = kept
}
