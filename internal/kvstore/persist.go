package kvstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/datacomp/datacomp/internal/container"
)

// Persister is the DB's durability backend: an append-only write-ahead log
// of opaque framed records plus one atomic snapshot slot. The DB owns the
// record format (container record framing, compressed batches); the
// persister owns bytes, boundaries, and fsync. Implementations must make
// ReplayWAL discard the torn or corrupt tail it stops at, so subsequent
// appends extend a clean log.
type Persister interface {
	// AppendWAL appends one framed record. Durability follows Sync, not
	// AppendWAL.
	AppendWAL(rec []byte) error
	// Sync makes every appended record durable.
	Sync() error
	// ReplayWAL invokes fn for each complete framed record in append
	// order. A torn or unparsable tail ends the walk silently and is
	// discarded. fn returning ErrStopReplay discards that record and the
	// remainder of the log; any other fn error aborts the replay.
	ReplayWAL(fn func(rec []byte) error) error
	// WriteSnapshot atomically replaces the snapshot and resets the WAL
	// to empty. The old snapshot or the new one survives a crash, never a
	// mix; the seq embedded in the snapshot makes a stale WAL harmless.
	WriteSnapshot(snap []byte) error
	// LoadSnapshot returns the current snapshot, or (nil, nil) when none
	// was ever written.
	LoadSnapshot() ([]byte, error)
	// Close releases resources. The persister may be reopened or reused
	// afterwards by a recovering DB where the implementation allows it.
	Close() error
}

// ErrStopReplay is returned by a ReplayWAL callback to declare the current
// record undecodable: replay stops, and the record plus everything after
// it is discarded as the crash tail.
var ErrStopReplay = errors.New("kvstore: stop WAL replay")

// walkWAL walks the framed records of log, invoking fn per record. It
// returns the byte length of the prefix to keep: the log up to (not
// including) the first torn record, unparsable header, or record on which
// fn returned ErrStopReplay. Other fn errors abort the walk.
func walkWAL(log []byte, fn func(rec []byte) error) (keep int, err error) {
	pos := 0
	for {
		n, err := container.RecordBounds(log[pos:])
		if err != nil {
			// io.EOF: clean end. Torn or corrupt: the crash tail starts
			// here; everything before it is intact.
			return pos, nil
		}
		if ferr := fn(log[pos : pos+n]); ferr != nil {
			if errors.Is(ferr, ErrStopReplay) {
				return pos, nil
			}
			return pos, ferr
		}
		pos += n
	}
}

// MemPersister is the diskless Persister: the WAL is a byte slice, the
// snapshot a buffer. It distinguishes synced from merely appended bytes so
// tests (and the cluster's chaos harness) can model a machine crash —
// Crash drops everything not yet fsynced — without touching a filesystem.
type MemPersister struct {
	mu     sync.Mutex
	wal    []byte
	synced int
	snap   []byte
}

// NewMemPersister returns an empty in-memory persister.
func NewMemPersister() *MemPersister { return &MemPersister{} }

// AppendWAL implements Persister.
func (p *MemPersister) AppendWAL(rec []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wal = append(p.wal, rec...)
	return nil
}

// Sync implements Persister: appended bytes become crash-durable.
func (p *MemPersister) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.synced = len(p.wal)
	return nil
}

// ReplayWAL implements Persister.
func (p *MemPersister) ReplayWAL(fn func(rec []byte) error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	keep, err := walkWAL(p.wal, fn)
	if err != nil {
		return err
	}
	p.wal = p.wal[:keep]
	if p.synced > keep {
		p.synced = keep
	}
	return nil
}

// WriteSnapshot implements Persister.
func (p *MemPersister) WriteSnapshot(snap []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.snap = append(p.snap[:0], snap...)
	p.wal = p.wal[:0]
	p.synced = 0
	return nil
}

// LoadSnapshot implements Persister.
func (p *MemPersister) LoadSnapshot() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.snap == nil {
		return nil, nil
	}
	return append([]byte{}, p.snap...), nil
}

// Close implements Persister; a MemPersister stays reusable after Close,
// which is what lets a "crashed" node reopen its state.
func (p *MemPersister) Close() error { return nil }

// Crash models the machine dying: every WAL byte not covered by a Sync is
// lost. The snapshot (always written atomically) survives.
func (p *MemPersister) Crash() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wal = p.wal[:p.synced]
}

// TruncateWAL cuts the log to n bytes — at an arbitrary offset, so tests
// can tear the final record mid-frame.
func (p *MemPersister) TruncateWAL(n int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if int(n) < len(p.wal) {
		p.wal = p.wal[:n]
	}
	if p.synced > len(p.wal) {
		p.synced = len(p.wal)
	}
}

// WALBytes reports the current WAL length, so tests can enumerate every
// crash offset.
func (p *MemPersister) WALBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int64(len(p.wal))
}

// Directory layout of DirPersister.
const (
	walFileName  = "wal.log"
	snapFileName = "snapshot.zsxs"
	snapTempName = "snapshot.tmp"
)

// DirPersister stores the WAL and snapshot as files in one directory:
//
//	<dir>/wal.log        append-only framed records
//	<dir>/snapshot.zsxs  container snapshot, replaced via rename
//
// WriteSnapshot writes a temp file, fsyncs, renames it over the snapshot,
// then truncates the WAL — if the crash lands between rename and truncate,
// replay skips the stale batches by sequence number.
type DirPersister struct {
	dir string
	mu  sync.Mutex
	wal *os.File
}

// NewDirPersister opens (creating if needed) a directory-backed persister.
func NewDirPersister(dir string) (*DirPersister, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: persister dir: %w", err)
	}
	wal, err := os.OpenFile(filepath.Join(dir, walFileName), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: wal: %w", err)
	}
	return &DirPersister{dir: dir, wal: wal}, nil
}

// Dir reports the backing directory.
func (p *DirPersister) Dir() string { return p.dir }

// AppendWAL implements Persister.
func (p *DirPersister) AppendWAL(rec []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, err := p.wal.Write(rec)
	return err
}

// Sync implements Persister.
func (p *DirPersister) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.wal.Sync()
}

// ReplayWAL implements Persister, truncating the file past the last intact
// record so new appends extend a clean log.
func (p *DirPersister) ReplayWAL(fn func(rec []byte) error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	log, err := os.ReadFile(filepath.Join(p.dir, walFileName))
	if err != nil {
		return err
	}
	keep, err := walkWAL(log, fn)
	if err != nil {
		return err
	}
	if keep < len(log) {
		if err := p.wal.Truncate(int64(keep)); err != nil {
			return err
		}
	}
	return nil
}

// WriteSnapshot implements Persister.
func (p *DirPersister) WriteSnapshot(snap []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	tmp := filepath.Join(p.dir, snapTempName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(snap); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(p.dir, snapFileName)); err != nil {
		return err
	}
	if err := p.wal.Truncate(0); err != nil {
		return err
	}
	return p.wal.Sync()
}

// LoadSnapshot implements Persister.
func (p *DirPersister) LoadSnapshot() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	snap, err := os.ReadFile(filepath.Join(p.dir, snapFileName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	return snap, err
}

// Close implements Persister.
func (p *DirPersister) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.wal.Close()
}

// FaultPersister wraps a Persister with deterministic failure injection on
// the durability path — the storage-side sibling of faultinject.Conn. It
// is how tests prove a failed append is a failed ack, never a silent hole.
type FaultPersister struct {
	P Persister

	mu           sync.Mutex
	appendBudget int64 // bytes accepted before appends fail; <0 = unlimited
	appended     int64
	failSync     bool
	failSnapshot bool
}

// NewFaultPersister wraps p with no faults armed.
func NewFaultPersister(p Persister) *FaultPersister {
	return &FaultPersister{P: p, appendBudget: -1}
}

// FailAppendsAfter arms append failure once n more bytes have been
// accepted; n = 0 fails the next append.
func (p *FaultPersister) FailAppendsAfter(n int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.appendBudget = n
	p.appended = 0
}

// FailSync makes Sync fail while on is true.
func (p *FaultPersister) FailSync(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failSync = on
}

// FailSnapshot makes WriteSnapshot fail while on is true.
func (p *FaultPersister) FailSnapshot(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failSnapshot = on
}

// ErrInjected is the failure FaultPersister injects.
var ErrInjected = errors.New("kvstore: injected persister fault")

// AppendWAL implements Persister.
func (p *FaultPersister) AppendWAL(rec []byte) error {
	p.mu.Lock()
	if p.appendBudget >= 0 {
		if p.appended+int64(len(rec)) > p.appendBudget {
			p.mu.Unlock()
			return fmt.Errorf("append past budget: %w", ErrInjected)
		}
		p.appended += int64(len(rec))
	}
	p.mu.Unlock()
	return p.P.AppendWAL(rec)
}

// Sync implements Persister.
func (p *FaultPersister) Sync() error {
	p.mu.Lock()
	fail := p.failSync
	p.mu.Unlock()
	if fail {
		return fmt.Errorf("sync: %w", ErrInjected)
	}
	return p.P.Sync()
}

// ReplayWAL implements Persister.
func (p *FaultPersister) ReplayWAL(fn func(rec []byte) error) error { return p.P.ReplayWAL(fn) }

// WriteSnapshot implements Persister.
func (p *FaultPersister) WriteSnapshot(snap []byte) error {
	p.mu.Lock()
	fail := p.failSnapshot
	p.mu.Unlock()
	if fail {
		return fmt.Errorf("snapshot: %w", ErrInjected)
	}
	return p.P.WriteSnapshot(snap)
}

// LoadSnapshot implements Persister.
func (p *FaultPersister) LoadSnapshot() ([]byte, error) { return p.P.LoadSnapshot() }

// Close implements Persister.
func (p *FaultPersister) Close() error { return p.P.Close() }
