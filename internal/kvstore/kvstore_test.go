package kvstore

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/datacomp/datacomp/internal/corpus"
)

var tctx = context.Background()

func testDB(t testing.TB, opts ...Option) *DB {
	t.Helper()
	db, err := Open(tctx, "", opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestPutGetSmall(t *testing.T) {
	db := testDB(t)
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		v := []byte(fmt.Sprintf("value-%d", i*7))
		if err := db.Put(tctx, k, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		v, ok, err := db.Get(tctx, k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(v) != fmt.Sprintf("value-%d", i*7) {
			t.Fatalf("key %s: ok=%v v=%q", k, ok, v)
		}
	}
	if _, ok, _ := db.Get(tctx, []byte("absent")); ok {
		t.Fatal("phantom key")
	}
}

func TestEmptyKeyAndValue(t *testing.T) {
	db := testDB(t)
	if err := db.Put(tctx, nil, []byte("v")); err != ErrEmptyKey {
		t.Fatalf("got %v", err)
	}
	if _, _, err := db.Get(tctx, nil); err != ErrEmptyKey {
		t.Fatalf("got %v", err)
	}
	if err := db.Delete(tctx, nil); err != ErrEmptyKey {
		t.Fatalf("got %v", err)
	}
	if err := db.Put(tctx, []byte("k"), nil); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get(tctx, []byte("k"))
	if err != nil || !ok || len(v) != 0 {
		t.Fatalf("empty value: v=%v ok=%v err=%v", v, ok, err)
	}
}

func TestOpenLegacyShim(t *testing.T) {
	db, err := OpenLegacy(Options{Codec: "lz4", BlockSize: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put(tctx, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get(tctx, []byte("k"))
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("legacy shim lookup: ok=%v err=%v", ok, err)
	}
	// The shim preserves v1 semantics: no WAL, nothing persisted.
	if db.persister != nil {
		t.Fatal("legacy shim should not create a persister")
	}
	if db.Stats().WALAppends != 0 {
		t.Fatal("legacy shim wrote WAL records")
	}
}

func TestApplyBatchAtomic(t *testing.T) {
	db := testDB(t)
	var b Batch
	for i := 0; i < 64; i++ {
		b.Put([]byte(fmt.Sprintf("b-%03d", i)), []byte(fmt.Sprintf("v-%d", i)))
	}
	b.Delete([]byte("b-007"))
	if b.Len() != 65 || b.Size() == 0 {
		t.Fatalf("batch accounting: len=%d size=%d", b.Len(), b.Size())
	}
	if err := db.Apply(tctx, &b); err != nil {
		t.Fatal(err)
	}
	// One WAL record for the whole batch.
	if got := db.Stats().WALAppends; got != 1 {
		t.Fatalf("batch produced %d WAL appends, want 1", got)
	}
	if _, ok, _ := db.Get(tctx, []byte("b-007")); ok {
		t.Fatal("later delete in batch did not win over earlier put")
	}
	v, ok, err := db.Get(tctx, []byte("b-042"))
	if err != nil || !ok || string(v) != "v-42" {
		t.Fatalf("batch member lost: ok=%v err=%v", ok, err)
	}
	// An empty-key op rejects the whole batch before any state changes.
	var bad Batch
	bad.Put([]byte("good"), []byte("x"))
	bad.Put(nil, []byte("y"))
	if err := db.Apply(tctx, &bad); err != ErrEmptyKey {
		t.Fatalf("got %v, want ErrEmptyKey", err)
	}
	if _, ok, _ := db.Get(tctx, []byte("good")); ok {
		t.Fatal("rejected batch partially applied")
	}
}

func TestClosedDB(t *testing.T) {
	db := testDB(t)
	if err := db.Put(tctx, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := db.Put(tctx, []byte("k"), []byte("v")); err != ErrClosed {
		t.Fatalf("put after close: %v", err)
	}
	if _, _, err := db.Get(tctx, []byte("k")); err != ErrClosed {
		t.Fatalf("get after close: %v", err)
	}
	if err := db.Scan(tctx, func(k, v []byte) bool { return true }); err != ErrClosed {
		t.Fatalf("scan after close: %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	db := testDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := db.Put(ctx, []byte("k"), []byte("v")); err != context.Canceled {
		t.Fatalf("put on canceled ctx: %v", err)
	}
	if _, _, err := db.Get(ctx, []byte("k")); err != context.Canceled {
		t.Fatalf("get on canceled ctx: %v", err)
	}
	if _, ok, err := db.Get(tctx, []byte("k")); ok || err != nil {
		t.Fatalf("canceled put leaked state: ok=%v err=%v", ok, err)
	}
}

func TestDeleteAndTombstones(t *testing.T) {
	db := testDB(t, WithMemtableBytes(4<<10)) // force flushes
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		if err := db.Put(tctx, k, bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(tctx); err != nil {
		t.Fatal(err)
	}
	// Delete the odd keys after they are on disk.
	for i := 1; i < 500; i += 2 {
		if err := db.Delete(tctx, []byte(fmt.Sprintf("key-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(tctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		_, ok, err := db.Get(tctx, k)
		if err != nil {
			t.Fatal(err)
		}
		if want := i%2 == 0; ok != want {
			t.Fatalf("key %s: ok=%v want %v", k, ok, want)
		}
	}
}

func TestOverwriteLatestWins(t *testing.T) {
	db := testDB(t, WithMemtableBytes(2<<10))
	k := []byte("hot-key")
	for gen := 0; gen < 50; gen++ {
		if err := db.Put(tctx, k, []byte(fmt.Sprintf("gen-%d", gen))); err != nil {
			t.Fatal(err)
		}
		// Interleave enough other writes to force flushes between
		// generations.
		for j := 0; j < 40; j++ {
			if err := db.Put(tctx, []byte(fmt.Sprintf("filler-%d-%d", gen, j)), bytes.Repeat([]byte{'f'}, 50)); err != nil {
				t.Fatal(err)
			}
		}
	}
	v, ok, err := db.Get(tctx, k)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if string(v) != "gen-49" {
		t.Fatalf("got %q, want newest generation", v)
	}
}

func TestFlushAndCompactionHappen(t *testing.T) {
	db := testDB(t,
		WithMemtableBytes(8<<10),
		WithMaxTableBytes(16<<10),
		WithBaseLevelBytes(32<<10),
		WithL0CompactionTrigger(2),
		WithBlockSize(4<<10),
	)
	pairs := corpus.KVPairs(1, 8000)
	for _, kv := range pairs {
		if err := db.Put(tctx, kv.Key, kv.Value); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.Flushes == 0 {
		t.Fatal("no flushes")
	}
	if st.Compactions == 0 {
		t.Fatal("no compactions")
	}
	if st.CompressTime <= 0 {
		t.Fatal("no compression time recorded")
	}
	// All keys must survive the level churn (last write wins on dup keys).
	want := map[string][]byte{}
	for _, kv := range pairs {
		want[string(kv.Key)] = kv.Value
	}
	checked := 0
	for k, v := range want {
		got, ok, err := db.Get(tctx, []byte(k))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("key %q lost after compaction (ok=%v)", k, ok)
		}
		checked++
		if checked > 2000 {
			break
		}
	}
	counts := db.TableCounts()
	deeper := 0
	for _, c := range counts[1:] {
		deeper += c
	}
	if deeper == 0 {
		t.Fatalf("compaction never moved tables deeper: %v", counts)
	}
}

func TestScan(t *testing.T) {
	db := testDB(t, WithMemtableBytes(4<<10))
	want := map[string]string{}
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key-%05d", i)
		v := fmt.Sprintf("val-%d", i)
		want[k] = v
		if err := db.Put(tctx, []byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i += 3 {
		k := fmt.Sprintf("key-%05d", i)
		delete(want, k)
		if err := db.Delete(tctx, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]string{}
	var prev []byte
	err := db.Scan(tctx, func(k, v []byte) bool {
		if prev != nil && bytes.Compare(k, prev) <= 0 {
			t.Fatalf("scan out of order: %q after %q", k, prev)
		}
		prev = append(prev[:0], k...)
		got[string(k)] = string(v)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan saw %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %q: got %q want %q", k, got[k], v)
		}
	}
}

func TestBlockSizeAffectsRatioAndLatency(t *testing.T) {
	load := func(blockSize int) Stats {
		db := testDB(t, WithBlockSize(blockSize), WithMemtableBytes(256<<10))
		pairs := corpus.KVPairs(7, 20000)
		for _, kv := range pairs {
			if err := db.Put(tctx, kv.Key, kv.Value); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(tctx); err != nil {
			t.Fatal(err)
		}
		// Random reads to exercise block decompression (cache disabled by
		// fresh keys each time? use no-cache db instead).
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 300; i++ {
			kv := pairs[rng.Intn(len(pairs))]
			if _, _, err := db.Get(tctx, kv.Key); err != nil {
				t.Fatal(err)
			}
		}
		return db.Stats()
	}
	small := load(1 << 10)
	large := load(64 << 10)
	if large.CompressionRatio() <= small.CompressionRatio() {
		t.Errorf("larger blocks should compress better: 64K %.3f vs 1K %.3f",
			large.CompressionRatio(), small.CompressionRatio())
	}
	if small.BlocksWritten <= large.BlocksWritten {
		t.Errorf("smaller blocks should produce more blocks: %d vs %d",
			small.BlocksWritten, large.BlocksWritten)
	}
}

func TestBlockCacheHits(t *testing.T) {
	db := testDB(t, WithBlockCacheEntries(64))
	pairs := corpus.KVPairs(3, 2000)
	for _, kv := range pairs {
		if err := db.Put(tctx, kv.Key, kv.Value); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(tctx); err != nil {
		t.Fatal(err)
	}
	// Repeated reads of the same key hit the decoded-block cache.
	for i := 0; i < 10; i++ {
		if _, _, err := db.Get(tctx, pairs[42].Key); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.BlockCacheHits == 0 {
		t.Fatal("no block cache hits")
	}
	if st.BlocksDecompressed == 0 {
		t.Fatal("no block decompressions recorded")
	}
}

func TestStatsRatios(t *testing.T) {
	var s Stats
	if s.WriteAmplification() != 0 || s.CompressionRatio() != 0 || s.DecompressPerBlock() != 0 {
		t.Fatal("zero stats should report zeros")
	}
}

func TestCodecOptions(t *testing.T) {
	for _, name := range []string{"zstd", "lz4", "zlib"} {
		db, err := Open(tctx, "", WithCodec(name), WithLevel(1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 0; i < 200; i++ {
			if err := db.Put(tctx, []byte(fmt.Sprintf("k%04d", i)), bytes.Repeat([]byte("data "), 20)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(tctx); err != nil {
			t.Fatal(err)
		}
		v, ok, err := db.Get(tctx, []byte("k0100"))
		if err != nil || !ok || !bytes.Equal(v, bytes.Repeat([]byte("data "), 20)) {
			t.Fatalf("%s: ok=%v err=%v", name, ok, err)
		}
		db.Close()
	}
	if _, err := Open(tctx, "", WithCodec("bogus")); err == nil {
		t.Fatal("bogus codec accepted")
	}
	if _, err := Open(tctx, "", WithWALCodec("bogus")); err == nil {
		t.Fatal("bogus WAL codec accepted")
	}
}

func TestQuickRandomOpsMatchModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db, err := Open(tctx, "",
			WithMemtableBytes(2<<10),
			WithL0CompactionTrigger(2),
			WithBaseLevelBytes(8<<10),
			WithMaxTableBytes(8<<10),
			WithBlockSize(1<<10),
			WithSeed(seed),
		)
		if err != nil {
			return false
		}
		defer db.Close()
		model := map[string][]byte{}
		keys := make([]string, 0, 64)
		for op := 0; op < 600; op++ {
			switch rng.Intn(4) {
			case 0, 1: // put
				k := fmt.Sprintf("k%03d", rng.Intn(200))
				v := make([]byte, rng.Intn(100))
				rng.Read(v)
				if err := db.Put(tctx, []byte(k), v); err != nil {
					return false
				}
				model[k] = v
				keys = append(keys, k)
			case 2: // delete
				k := fmt.Sprintf("k%03d", rng.Intn(200))
				if err := db.Delete(tctx, []byte(k)); err != nil {
					return false
				}
				delete(model, k)
			default: // get
				k := fmt.Sprintf("k%03d", rng.Intn(200))
				v, ok, err := db.Get(tctx, []byte(k))
				if err != nil {
					return false
				}
				want, wantOK := model[k]
				if ok != wantOK {
					return false
				}
				if ok && !bytes.Equal(v, want) {
					return false
				}
			}
		}
		// Final full verification.
		for k, want := range model {
			v, ok, err := db.Get(tctx, []byte(k))
			if err != nil || !ok || !bytes.Equal(v, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPut(b *testing.B) {
	db, err := Open(tctx, "")
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	pairs := corpus.KVPairs(1, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv := pairs[i%len(pairs)]
		if err := db.Put(tctx, kv.Key, kv.Value); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	db, err := Open(tctx, "")
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	pairs := corpus.KVPairs(1, 50000)
	for _, kv := range pairs {
		if err := db.Put(tctx, kv.Key, kv.Value); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Flush(tctx); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv := pairs[rng.Intn(len(pairs))]
		if _, _, err := db.Get(tctx, kv.Key); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPointLookupDecodesSingleBlock pins the container integration's point:
// a Get decompresses exactly the one container block covering the key, so
// bytes decompressed per lookup track the block size rather than the table
// size — the selective-decode property the seekable container exists for.
func TestPointLookupDecodesSingleBlock(t *testing.T) {
	db := testDB(t, WithBlockSize(4<<10), WithBlockCacheEntries(-1))
	pairs := corpus.KVPairs(11, 4000)
	for _, kv := range pairs {
		if err := db.Put(tctx, kv.Key, kv.Value); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(tctx); err != nil {
		t.Fatal(err)
	}
	whole := db.Stats().RawBytesWritten
	before := db.Stats()
	if v, ok, err := db.Get(tctx, pairs[1234].Key); err != nil || !ok || !bytes.Equal(v, pairs[1234].Value) {
		t.Fatalf("lookup: ok=%v err=%v", ok, err)
	}
	d := db.Stats()
	blocks := d.BlocksDecompressed - before.BlocksDecompressed
	bytesDec := d.BytesDecompressed - before.BytesDecompressed
	if blocks != 1 {
		t.Fatalf("point lookup decompressed %d blocks, want exactly 1", blocks)
	}
	// One block's worth (entries + restart array), far below the table.
	if limit := int64(8 << 10); bytesDec > limit {
		t.Fatalf("point lookup decompressed %d bytes, want ≤ %d", bytesDec, limit)
	}
	if bytesDec*4 > whole {
		t.Fatalf("lookup decoded %d of %d raw table bytes — not selective", bytesDec, whole)
	}
}
