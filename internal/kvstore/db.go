package kvstore

import (
	"bytes"
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/container"
	"github.com/datacomp/datacomp/internal/telemetry"
)

// Package-level telemetry on the shared registry, registered on first Open.
// All DBs in the process aggregate here; per-DB numbers remain in DB.Stats.
var (
	tmOnce                                  sync.Once
	tmPuts, tmGets, tmDeletes               *telemetry.Counter
	tmFlushes, tmCompactions                *telemetry.Counter
	tmCompNS, tmDecompNS, tmReadNS          *telemetry.Counter
	tmBlocksWritten, tmBlocksRead           *telemetry.Counter
	tmBlocksDecompressed, tmBlockCacheHits  *telemetry.Counter
	tmRawBytesWritten, tmStoredBytesWritten *telemetry.Counter
	tmBytesDecompressed                     *telemetry.Counter
	tmWALAppends, tmWALBytes, tmWALSyncs    *telemetry.Counter
	tmSnapshots, tmSnapshotBytes            *telemetry.Counter
	tmReplayedBatches, tmRecoveries         *telemetry.Counter
)

func tm() {
	tmOnce.Do(func() {
		r := telemetry.Default
		tmPuts = r.Counter("kvstore_puts_total", "kvstore put operations")
		tmGets = r.Counter("kvstore_gets_total", "kvstore get operations")
		tmDeletes = r.Counter("kvstore_deletes_total", "kvstore delete operations")
		tmFlushes = r.Counter("kvstore_flushes_total", "memtable flushes")
		tmCompactions = r.Counter("kvstore_compactions_total", "level compactions")
		tmCompNS = r.Counter("kvstore_compress_ns_total", "block compression time (flush + compaction)")
		tmDecompNS = r.Counter("kvstore_decompress_ns_total", "block decompression time")
		tmReadNS = r.Counter("kvstore_read_ns_total", "time inside Get")
		tmBlocksWritten = r.Counter("kvstore_blocks_written_total", "data blocks written")
		tmBlocksRead = r.Counter("kvstore_blocks_read_total", "data blocks read")
		tmBlocksDecompressed = r.Counter("kvstore_blocks_decompressed_total", "data blocks decompressed")
		tmBlockCacheHits = r.Counter("kvstore_block_cache_hits_total", "decoded-block cache hits")
		tmRawBytesWritten = r.Counter("kvstore_raw_bytes_written_total", "raw bytes entering block compression")
		tmStoredBytesWritten = r.Counter("kvstore_stored_bytes_written_total", "stored bytes after block compression")
		tmBytesDecompressed = r.Counter("kvstore_bytes_decompressed_total", "uncompressed bytes produced by block decodes")
		tmWALAppends = r.Counter("kvstore_wal_appends_total", "WAL record batches appended")
		tmWALBytes = r.Counter("kvstore_wal_bytes_total", "framed WAL bytes appended")
		tmWALSyncs = r.Counter("kvstore_wal_syncs_total", "WAL fsyncs")
		tmSnapshots = r.Counter("kvstore_snapshots_total", "snapshot checkpoints written")
		tmSnapshotBytes = r.Counter("kvstore_snapshot_bytes_total", "snapshot container bytes written")
		tmReplayedBatches = r.Counter("kvstore_wal_replayed_batches_total", "WAL batches applied during recovery")
		tmRecoveries = r.Counter("kvstore_recoveries_total", "DB opens that recovered prior state")
	})
}

const numLevels = 7

// Stats aggregates DB activity, separating the compression work the paper
// attributes to compaction from read-side decompression.
type Stats struct {
	Puts, Gets, Deletes int64
	Flushes             int64
	Compactions         int64

	CompressTime   time.Duration
	DecompressTime time.Duration
	ReadTime       time.Duration

	BlocksWritten      int64
	BlocksRead         int64
	BlocksDecompressed int64
	BlockCacheHits     int64

	// BytesDecompressed counts uncompressed bytes produced by block
	// decodes — the per-lookup decode cost the container's single-block
	// point reads keep proportional to block size, not value count.
	BytesDecompressed int64

	RawBytesWritten    int64
	StoredBytesWritten int64

	// Durability-side accounting.
	WALAppends      int64 // record batches appended
	WALBytes        int64 // framed bytes appended
	WALSyncs        int64
	Snapshots       int64
	ReplayedBatches int64 // WAL batches applied during recovery
}

// WriteAmplification is stored bytes written per raw byte ingested.
func (s Stats) WriteAmplification() float64 {
	if s.RawBytesWritten == 0 {
		return 0
	}
	return float64(s.StoredBytesWritten) / float64(s.RawBytesWritten)
}

// CompressionRatio is raw/stored over all block writes.
func (s Stats) CompressionRatio() float64 {
	if s.StoredBytesWritten == 0 {
		return 0
	}
	return float64(s.RawBytesWritten) / float64(s.StoredBytesWritten)
}

// DecompressPerBlock is the mean block decompression latency, the quantity
// KVSTORE1's read SLO bounds.
func (s Stats) DecompressPerBlock() time.Duration {
	if s.BlocksDecompressed == 0 {
		return 0
	}
	return s.DecompressTime / time.Duration(s.BlocksDecompressed)
}

// DB is an embedded LSM key-value store with a compressed write-ahead log
// and snapshot checkpoints. Safe for concurrent use (a single mutex
// serializes operations; the paper's experiments measure compression work,
// not lock scalability).
type DB struct {
	mu     sync.Mutex
	cfg    config
	eng    codec.Engine
	mem    *memtable
	levels [numLevels][]*sstable // levels[0] newest-first; deeper levels sorted, disjoint
	cache  *blockCache
	nextID int64
	stats  Stats
	closed bool

	// Durability state (nil persister / nil walEng when WithoutWAL).
	persister Persister
	walEng    codec.Engine
	seq       uint64 // last acknowledged batch sequence
	walBytes  int64  // framed bytes in the current WAL generation
	oneOp     Batch  // scratch batch for Put/Delete
	walBuf    []byte // batch payload scratch
	walFrame  []byte // framed record scratch
	walComp   []byte // compressed payload scratch
}

// Open opens a DB, recovering any state its persister holds: snapshot
// first, then WAL batches past the snapshot's sequence. path names the
// directory of a DirPersister; an empty path without WithPersister runs on
// an in-memory MemPersister (diskless, but still crash-modelable).
func Open(ctx context.Context, path string, opts ...Option) (*DB, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := buildConfig(opts)
	tm()
	eng := cfg.engine
	if eng == nil {
		var err error
		eng, err = codec.NewEngine(cfg.codecName, codec.WithLevel(cfg.level))
		if err != nil {
			return nil, err
		}
	}
	db := &DB{
		cfg: cfg,
		eng: eng,
		mem: newMemtable(cfg.seed),
	}
	if cfg.blockCacheEntries > 0 {
		db.cache = newBlockCache(cfg.blockCacheEntries)
	}
	if !cfg.walDisabled {
		var err error
		db.walEng, err = codec.NewEngine(cfg.walCodec, codec.WithLevel(1))
		if err != nil {
			return nil, err
		}
		db.persister = cfg.persister
		if db.persister == nil {
			if path == "" {
				db.persister = NewMemPersister()
			} else {
				db.persister, err = NewDirPersister(path)
				if err != nil {
					return nil, err
				}
			}
		}
		if err := db.recover(ctx); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// OpenLegacy opens a purely in-memory DB from the v1 Options struct.
//
// Deprecated: use Open with a context and functional options; this shim
// maps Options onto them (plus WithoutWAL, matching the v1 store's lack of
// durability) and will be removed next release.
func OpenLegacy(opts Options) (*DB, error) {
	return Open(context.Background(), "", append(opts.opts(), WithoutWAL())...)
}

// recover loads the persisted snapshot and replays the WAL tail.
func (db *DB) recover(ctx context.Context) error {
	snap, err := db.persister.LoadSnapshot()
	if err != nil {
		return err
	}
	var snapSeq uint64
	recovered := false
	if len(snap) > 0 {
		snapSeq, err = db.loadSnapshotLocked(snap)
		if err != nil {
			return err
		}
		db.seq = snapSeq
		recovered = true
	}
	replayed := 0
	err = db.persister.ReplayWAL(func(rec []byte) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		raw, _, err := container.DecodeRecord(db.walBuf[:0], db.walEng, rec)
		if err != nil {
			// An undecodable record is the crash tail: drop it and stop.
			return ErrStopReplay
		}
		db.walBuf = raw[:0]
		seq, err := decodeBatchPayload(raw, func(key, value []byte, del bool) error {
			return nil // validate the whole batch before applying any of it
		})
		if err != nil {
			return ErrStopReplay
		}
		if seq <= snapSeq {
			// Stale batch already covered by the snapshot (crash landed
			// between snapshot rename and WAL truncate).
			db.walBytes += int64(len(rec))
			return nil
		}
		_, err = decodeBatchPayload(raw, func(key, value []byte, del bool) error {
			if del {
				db.mem.set(append([]byte{}, key...), nil)
			} else {
				v := append([]byte{}, value...)
				if v == nil {
					v = []byte{}
				}
				db.mem.set(append([]byte{}, key...), v)
			}
			return nil
		})
		if err != nil {
			return ErrStopReplay
		}
		db.seq = seq
		db.walBytes += int64(len(rec))
		replayed++
		if err := db.maybeFlushLocked(ctx); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		return err
	}
	if replayed > 0 {
		recovered = true
	}
	db.stats.ReplayedBatches += int64(replayed)
	tmReplayedBatches.Add(int64(replayed))
	if recovered {
		tmRecoveries.Inc()
	}
	return nil
}

// ErrEmptyKey is returned for operations with an empty key.
var ErrEmptyKey = errors.New("kvstore: empty key")

// ErrClosed is returned for operations on a closed DB.
var ErrClosed = errors.New("kvstore: closed")

// Put stores value under key, durably per the WAL sync policy.
func (db *DB) Put(ctx context.Context, key, value []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.oneOp.Reset()
	db.oneOp.Put(key, value)
	return db.applyLocked(ctx, &db.oneOp)
}

// Delete records a tombstone for key.
func (db *DB) Delete(ctx context.Context, key []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.oneOp.Reset()
	db.oneOp.Delete(key)
	return db.applyLocked(ctx, &db.oneOp)
}

// Apply commits every op in b atomically: one WAL record, one fsync under
// SyncAlways, then the memtable mutation. Either the whole batch is
// acknowledged or none of it is applied.
func (db *DB) Apply(ctx context.Context, b *Batch) error {
	for _, op := range b.ops {
		if len(op.key) == 0 {
			return ErrEmptyKey
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.applyLocked(ctx, b)
}

func (db *DB) applyLocked(ctx context.Context, b *Batch) error {
	if db.closed {
		return ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if b.Len() == 0 {
		return nil
	}

	// Write-ahead: the batch must be in the log (and synced, under
	// SyncAlways) before any in-memory state changes. A failed append is a
	// failed ack with no state change anywhere. A failed sync is also a
	// failed ack and mutates nothing in memory, but the record may already
	// sit in the log, so a later recovery can surface the batch — the same
	// indeterminate window as a commit that errors after transport.
	if db.persister != nil {
		db.walBuf = appendBatchPayload(db.walBuf[:0], db.seq+1, b)
		var err error
		db.walFrame, db.walComp, err = container.AppendRecord(db.walFrame[:0], db.walComp, db.walEng, db.walBuf)
		if err != nil {
			return err
		}
		if err := db.persister.AppendWAL(db.walFrame); err != nil {
			return err
		}
		if db.cfg.sync == SyncAlways {
			if err := db.persister.Sync(); err != nil {
				return err
			}
			db.stats.WALSyncs++
			tmWALSyncs.Inc()
		}
		db.walBytes += int64(len(db.walFrame))
		db.stats.WALAppends++
		db.stats.WALBytes += int64(len(db.walFrame))
		tmWALAppends.Inc()
		tmWALBytes.Add(int64(len(db.walFrame)))
	}
	db.seq++

	for _, op := range b.ops {
		if op.del {
			db.mem.set(append([]byte{}, op.key...), nil)
			db.stats.Deletes++
			tmDeletes.Inc()
		} else {
			v := append([]byte{}, op.value...)
			if v == nil {
				v = []byte{}
			}
			db.mem.set(append([]byte{}, op.key...), v)
			db.stats.Puts++
			tmPuts.Inc()
		}
	}
	if err := db.maybeFlushLocked(ctx); err != nil {
		return err
	}
	return db.maybeCheckpointLocked(ctx)
}

// maybeCheckpointLocked rotates the WAL into a snapshot once it outgrows
// the configured budget.
func (db *DB) maybeCheckpointLocked(ctx context.Context) error {
	if db.persister == nil || db.cfg.walRotateBytes < 0 || db.walBytes < db.cfg.walRotateBytes {
		return nil
	}
	return db.checkpointLocked(ctx)
}

// Get fetches the value for key.
func (db *DB) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	if len(key) == 0 {
		return nil, false, ErrEmptyKey
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, false, ErrClosed
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
	}
	t0 := time.Now()
	defer func() {
		dt := time.Since(t0)
		db.stats.ReadTime += dt
		db.stats.Gets++
		tmReadNS.Add(dt.Nanoseconds())
		tmGets.Inc()
	}()

	if v, ok := db.mem.get(key); ok {
		if v == nil {
			return nil, false, nil // tombstone
		}
		return append([]byte{}, v...), true, nil
	}
	// L0: newest table wins.
	for _, t := range db.levels[0] {
		if bytes.Compare(key, t.smallest) < 0 || bytes.Compare(key, t.largest) > 0 {
			continue
		}
		v, tomb, found, err := t.get(key, &db.stats, db.cache)
		if err != nil {
			return nil, false, err
		}
		if found {
			if tomb {
				return nil, false, nil
			}
			return v, true, nil
		}
	}
	// Deeper levels: tables are disjoint; at most one candidate each.
	for lvl := 1; lvl < numLevels; lvl++ {
		for _, t := range db.levels[lvl] {
			if bytes.Compare(key, t.smallest) < 0 {
				break
			}
			if bytes.Compare(key, t.largest) > 0 {
				continue
			}
			v, tomb, found, err := t.get(key, &db.stats, db.cache)
			if err != nil {
				return nil, false, err
			}
			if found {
				if tomb {
					return nil, false, nil
				}
				return v, true, nil
			}
			break
		}
	}
	return nil, false, nil
}

func (db *DB) maybeFlushLocked(ctx context.Context) error {
	if db.mem.approximateBytes() < db.cfg.memtableBytes {
		return nil
	}
	return db.flushLocked(ctx)
}

// Flush forces the memtable into L0.
func (db *DB) Flush(ctx context.Context) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.flushLocked(ctx)
}

func (db *DB) flushLocked(ctx context.Context) error {
	if db.mem.len() == 0 {
		return nil
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	w := newTableWriter(db.nextID, db.cfg.codecName, db.eng, db.cfg.blockSize, &db.stats)
	db.nextID++
	for it := db.mem.iterator(); it.valid(); it.next() {
		var v []byte
		if !it.tombstone() {
			v = it.value()
			if v == nil {
				v = []byte{}
			}
		}
		if err := w.add(it.key(), v); err != nil {
			return err
		}
	}
	t, err := w.finish()
	if err != nil {
		return err
	}
	if t != nil {
		db.levels[0] = append([]*sstable{t}, db.levels[0]...)
	}
	db.mem = newMemtable(db.cfg.seed + db.nextID)
	db.stats.Flushes++
	tmFlushes.Inc()
	return db.maybeCompactLocked(ctx)
}

// Checkpoint writes a snapshot of the full live state and resets the WAL —
// the log-compaction step that bounds recovery time. It runs automatically
// when the WAL exceeds WithWALRotateBytes.
func (db *DB) Checkpoint(ctx context.Context) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return db.checkpointLocked(ctx)
}

func (db *DB) checkpointLocked(ctx context.Context) error {
	if db.persister == nil {
		return nil
	}
	snap, err := db.buildSnapshotLocked(ctx)
	if err != nil {
		return err
	}
	if err := db.persister.WriteSnapshot(snap); err != nil {
		return err
	}
	db.walBytes = 0
	db.stats.Snapshots++
	tmSnapshots.Inc()
	tmSnapshotBytes.Add(int64(len(snap)))
	return nil
}

// Close syncs the WAL and closes the persister. The DB rejects operations
// afterwards. Close is not a checkpoint: reopening replays the WAL.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if db.persister == nil {
		return nil
	}
	if err := db.persister.Sync(); err != nil {
		return err
	}
	db.stats.WALSyncs++
	tmWALSyncs.Inc()
	return db.persister.Close()
}

func levelBytes(tables []*sstable) int64 {
	var n int64
	for _, t := range tables {
		n += int64(t.size())
	}
	return n
}

func (db *DB) levelLimit(lvl int) int64 {
	limit := db.cfg.baseLevelBytes
	for i := 1; i < lvl; i++ {
		limit *= 10
	}
	return limit
}

func (db *DB) maybeCompactLocked(ctx context.Context) error {
	for {
		progressed := false
		if len(db.levels[0]) >= db.cfg.l0Trigger {
			if err := db.compactL0Locked(ctx); err != nil {
				return err
			}
			progressed = true
		}
		for lvl := 1; lvl < numLevels-1; lvl++ {
			if levelBytes(db.levels[lvl]) > db.levelLimit(lvl) {
				if err := db.compactLevelLocked(ctx, lvl); err != nil {
					return err
				}
				progressed = true
			}
		}
		if !progressed {
			return nil
		}
	}
}

// overlaps reports whether table t intersects [lo, hi].
func overlaps(t *sstable, lo, hi []byte) bool {
	return bytes.Compare(t.largest, lo) >= 0 && bytes.Compare(t.smallest, hi) <= 0
}

func (db *DB) compactL0Locked(ctx context.Context) error {
	sources := db.levels[0]
	lo := sources[0].smallest
	hi := sources[0].largest
	for _, t := range sources {
		if bytes.Compare(t.smallest, lo) < 0 {
			lo = t.smallest
		}
		if bytes.Compare(t.largest, hi) > 0 {
			hi = t.largest
		}
	}
	var keep, merge []*sstable
	for _, t := range db.levels[1] {
		if overlaps(t, lo, hi) {
			merge = append(merge, t)
		} else {
			keep = append(keep, t)
		}
	}
	// Priority: L0 newest first, then L1.
	inputs := append(append([]*sstable{}, sources...), merge...)
	out, err := db.mergeTablesLocked(ctx, inputs, 1)
	if err != nil {
		return err
	}
	db.levels[0] = nil
	db.levels[1] = sortTables(append(keep, out...))
	for _, t := range inputs {
		if db.cache != nil {
			db.cache.dropTable(t.id)
		}
	}
	db.stats.Compactions++
	tmCompactions.Inc()
	return nil
}

func (db *DB) compactLevelLocked(ctx context.Context, lvl int) error {
	if len(db.levels[lvl]) == 0 {
		return nil
	}
	src := db.levels[lvl][0]
	var keep, merge []*sstable
	for _, t := range db.levels[lvl+1] {
		if overlaps(t, src.smallest, src.largest) {
			merge = append(merge, t)
		} else {
			keep = append(keep, t)
		}
	}
	inputs := append([]*sstable{src}, merge...)
	out, err := db.mergeTablesLocked(ctx, inputs, lvl+1)
	if err != nil {
		return err
	}
	db.levels[lvl] = db.levels[lvl][1:]
	db.levels[lvl+1] = sortTables(append(keep, out...))
	for _, t := range inputs {
		if db.cache != nil {
			db.cache.dropTable(t.id)
		}
	}
	db.stats.Compactions++
	tmCompactions.Inc()
	return nil
}

func sortTables(ts []*sstable) []*sstable {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && bytes.Compare(ts[j].smallest, ts[j-1].smallest) < 0; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
	return ts
}

// mergeTablesLocked k-way merges input tables (earlier inputs shadow later
// ones) into new tables for targetLevel. Tombstones are dropped when the
// target is the bottom level. ctx cancellation is honored between merged
// entries, so a deadline propagates into compaction work.
func (db *DB) mergeTablesLocked(ctx context.Context, inputs []*sstable, targetLevel int) ([]*sstable, error) {
	// Tombstones can be dropped only when no deeper level holds data they
	// might still be shadowing.
	bottom := true
	for lvl := targetLevel + 1; lvl < numLevels; lvl++ {
		if len(db.levels[lvl]) > 0 {
			bottom = false
		}
	}

	mi := newMergeIterator(inputs, &db.stats, db.cache)
	var out []*sstable
	w := newTableWriter(db.nextID, db.cfg.codecName, db.eng, db.cfg.blockSize, &db.stats)
	db.nextID++
	rawInTable := 0
	entries := 0
	for mi.valid() {
		if ctx != nil && entries&0x3ff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		entries++
		if !(mi.tombstone() && bottom) {
			var v []byte
			if !mi.tombstone() {
				v = mi.value()
				if v == nil {
					v = []byte{}
				}
			}
			if err := w.add(mi.key(), v); err != nil {
				return nil, err
			}
			rawInTable += len(mi.key()) + len(mi.value())
			if rawInTable >= db.cfg.maxTableBytes {
				t, err := w.finish()
				if err != nil {
					return nil, err
				}
				if t != nil {
					out = append(out, t)
				}
				w = newTableWriter(db.nextID, db.cfg.codecName, db.eng, db.cfg.blockSize, &db.stats)
				db.nextID++
				rawInTable = 0
			}
		}
		if err := mi.next(); err != nil {
			return nil, err
		}
	}
	if mi.err != nil {
		return nil, mi.err
	}
	t, err := w.finish()
	if err != nil {
		return nil, err
	}
	if t != nil {
		out = append(out, t)
	}
	return out, nil
}

// mergeIterator k-way merges table iterators; on duplicate keys the source
// with the lowest index wins.
type mergeIterator struct {
	h   mergeHeap
	err error
	cur struct {
		key       []byte
		value     []byte
		tombstone bool
	}
	done bool
}

type mergeSource struct {
	it  *tableIterator
	idx int
}

type mergeHeap []*mergeSource

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	c := bytes.Compare(h[i].it.key(), h[j].it.key())
	if c != 0 {
		return c < 0
	}
	return h[i].idx < h[j].idx
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(*mergeSource)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func newMergeIterator(inputs []*sstable, stats *Stats, cache *blockCache) *mergeIterator {
	mi := &mergeIterator{}
	for i, t := range inputs {
		it := t.iterator(stats, cache)
		if it.err != nil {
			mi.err = it.err
			return mi
		}
		if it.valid() {
			mi.h = append(mi.h, &mergeSource{it: it, idx: i})
		}
	}
	heap.Init(&mi.h)
	if err := mi.next(); err != nil {
		mi.err = err
	}
	return mi
}

func (mi *mergeIterator) valid() bool { return !mi.done && mi.err == nil }

func (mi *mergeIterator) key() []byte     { return mi.cur.key }
func (mi *mergeIterator) value() []byte   { return mi.cur.value }
func (mi *mergeIterator) tombstone() bool { return mi.cur.tombstone }

// next advances to the next distinct key.
func (mi *mergeIterator) next() error {
	for {
		if mi.h.Len() == 0 {
			mi.done = true
			return nil
		}
		src := mi.h[0]
		key := append([]byte{}, src.it.key()...)
		value := append([]byte{}, src.it.value()...)
		tomb := src.it.tombstone()
		// Pop every source entry with this key; the first (lowest index,
		// newest) defines the value.
		for mi.h.Len() > 0 && bytes.Equal(mi.h[0].it.key(), key) {
			s := mi.h[0]
			s.it.next()
			if s.it.err != nil {
				return s.it.err
			}
			if s.it.valid() {
				heap.Fix(&mi.h, 0)
			} else {
				heap.Pop(&mi.h)
			}
		}
		mi.cur.key = key
		mi.cur.value = value
		mi.cur.tombstone = tomb
		return nil
	}
}

// Scan walks every live key in order, stopping when fn returns false. ctx
// cancellation is honored between entries.
func (db *DB) Scan(ctx context.Context, fn func(key, value []byte) bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	mi, err := db.fullMergeIteratorLocked()
	if err != nil {
		return err
	}
	entries := 0
	for mi.valid() {
		if ctx != nil && entries&0x3ff == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		entries++
		if !mi.tombstone() {
			if !fn(mi.key(), mi.value()) {
				return nil
			}
		}
		if err := mi.next(); err != nil {
			return err
		}
	}
	return mi.err
}

// Stats returns a snapshot of accumulated statistics.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.stats
}

// Seq reports the last acknowledged batch sequence number.
func (db *DB) Seq() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.seq
}

// WALSize reports the framed bytes in the current WAL generation.
func (db *DB) WALSize() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.walBytes
}

// TableCounts reports the number of tables per level (diagnostics).
func (db *DB) TableCounts() []int {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]int, numLevels)
	for i := range db.levels {
		out[i] = len(db.levels[i])
	}
	return out
}

// DiskBytes reports the stored size of all tables.
func (db *DB) DiskBytes() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	var n int64
	for _, lvl := range db.levels {
		n += levelBytes(lvl)
	}
	return n
}

// String summarizes the DB state.
func (db *DB) String() string {
	counts := db.TableCounts()
	return fmt.Sprintf("kvstore{codec=%s level=%d block=%d wal=%s tables=%v}",
		db.cfg.codecName, db.cfg.level, db.cfg.blockSize, db.walMode(), counts)
}

func (db *DB) walMode() string {
	if db.cfg.walDisabled {
		return "off"
	}
	return db.cfg.sync.String()
}
