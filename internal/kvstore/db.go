package kvstore

import (
	"bytes"
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/telemetry"
)

// Package-level telemetry on the shared registry, registered on first Open.
// All DBs in the process aggregate here; per-DB numbers remain in DB.Stats.
var (
	tmOnce                                  sync.Once
	tmPuts, tmGets, tmDeletes               *telemetry.Counter
	tmFlushes, tmCompactions                *telemetry.Counter
	tmCompNS, tmDecompNS, tmReadNS          *telemetry.Counter
	tmBlocksWritten, tmBlocksRead           *telemetry.Counter
	tmBlocksDecompressed, tmBlockCacheHits  *telemetry.Counter
	tmRawBytesWritten, tmStoredBytesWritten *telemetry.Counter
	tmBytesDecompressed                     *telemetry.Counter
)

func tm() {
	tmOnce.Do(func() {
		r := telemetry.Default
		tmPuts = r.Counter("kvstore_puts_total", "kvstore put operations")
		tmGets = r.Counter("kvstore_gets_total", "kvstore get operations")
		tmDeletes = r.Counter("kvstore_deletes_total", "kvstore delete operations")
		tmFlushes = r.Counter("kvstore_flushes_total", "memtable flushes")
		tmCompactions = r.Counter("kvstore_compactions_total", "level compactions")
		tmCompNS = r.Counter("kvstore_compress_ns_total", "block compression time (flush + compaction)")
		tmDecompNS = r.Counter("kvstore_decompress_ns_total", "block decompression time")
		tmReadNS = r.Counter("kvstore_read_ns_total", "time inside Get")
		tmBlocksWritten = r.Counter("kvstore_blocks_written_total", "data blocks written")
		tmBlocksRead = r.Counter("kvstore_blocks_read_total", "data blocks read")
		tmBlocksDecompressed = r.Counter("kvstore_blocks_decompressed_total", "data blocks decompressed")
		tmBlockCacheHits = r.Counter("kvstore_block_cache_hits_total", "decoded-block cache hits")
		tmRawBytesWritten = r.Counter("kvstore_raw_bytes_written_total", "raw bytes entering block compression")
		tmStoredBytesWritten = r.Counter("kvstore_stored_bytes_written_total", "stored bytes after block compression")
		tmBytesDecompressed = r.Counter("kvstore_bytes_decompressed_total", "uncompressed bytes produced by block decodes")
	})
}

// Options configure a DB. The compression triple (Codec, Level, BlockSize)
// is the configuration surface the paper's KVSTORE1 study optimizes.
type Options struct {
	// Codec and Level select the block compressor (default zstd level 1,
	// the common choice the paper reports for compaction-heavy stores).
	Codec string
	Level int
	// BlockSize is the uncompressed data-block granularity (default 16 KiB;
	// RocksDB commonly uses 16-64 KiB per the paper).
	BlockSize int
	// MemtableBytes triggers a flush when the memtable reaches this size.
	MemtableBytes int
	// MaxTableBytes bounds the raw bytes per output table during flush and
	// compaction.
	MaxTableBytes int
	// L0CompactionTrigger compacts L0 when it accumulates this many tables.
	L0CompactionTrigger int
	// BaseLevelBytes is the stored-size budget of L1; each deeper level
	// gets 10x more.
	BaseLevelBytes int64
	// BlockCacheEntries bounds the decoded-block cache (0 disables).
	BlockCacheEntries int
	// Seed makes skiplist heights deterministic.
	Seed int64
}

func (o *Options) fill() {
	if o.Codec == "" {
		o.Codec = "zstd"
	}
	if o.Level == 0 {
		o.Level = 1
	}
	if o.BlockSize == 0 {
		o.BlockSize = 16 << 10
	}
	if o.MemtableBytes == 0 {
		o.MemtableBytes = 1 << 20
	}
	if o.MaxTableBytes == 0 {
		o.MaxTableBytes = 2 << 20
	}
	if o.L0CompactionTrigger == 0 {
		o.L0CompactionTrigger = 4
	}
	if o.BaseLevelBytes == 0 {
		o.BaseLevelBytes = 8 << 20
	}
	if o.BlockCacheEntries == 0 {
		o.BlockCacheEntries = 256
	}
}

const numLevels = 7

// Stats aggregates DB activity, separating the compression work the paper
// attributes to compaction from read-side decompression.
type Stats struct {
	Puts, Gets, Deletes int64
	Flushes             int64
	Compactions         int64

	CompressTime   time.Duration
	DecompressTime time.Duration
	ReadTime       time.Duration

	BlocksWritten      int64
	BlocksRead         int64
	BlocksDecompressed int64
	BlockCacheHits     int64

	// BytesDecompressed counts uncompressed bytes produced by block
	// decodes — the per-lookup decode cost the container's single-block
	// point reads keep proportional to block size, not value count.
	BytesDecompressed int64

	RawBytesWritten    int64
	StoredBytesWritten int64
}

// WriteAmplification is stored bytes written per raw byte ingested.
func (s Stats) WriteAmplification() float64 {
	if s.RawBytesWritten == 0 {
		return 0
	}
	return float64(s.StoredBytesWritten) / float64(s.RawBytesWritten)
}

// CompressionRatio is raw/stored over all block writes.
func (s Stats) CompressionRatio() float64 {
	if s.StoredBytesWritten == 0 {
		return 0
	}
	return float64(s.RawBytesWritten) / float64(s.StoredBytesWritten)
}

// DecompressPerBlock is the mean block decompression latency, the quantity
// KVSTORE1's read SLO bounds.
func (s Stats) DecompressPerBlock() time.Duration {
	if s.BlocksDecompressed == 0 {
		return 0
	}
	return s.DecompressTime / time.Duration(s.BlocksDecompressed)
}

// DB is an embedded LSM key-value store. Safe for concurrent use (a single
// mutex serializes operations; the paper's experiments measure compression
// work, not lock scalability).
type DB struct {
	mu     sync.Mutex
	opts   Options
	eng    codec.Engine
	mem    *memtable
	levels [numLevels][]*sstable // levels[0] newest-first; deeper levels sorted, disjoint
	cache  *blockCache
	nextID int64
	stats  Stats
}

// Open creates an empty DB with the given options.
func Open(opts Options) (*DB, error) {
	opts.fill()
	tm()
	eng, err := codec.NewEngine(opts.Codec, codec.WithLevel(opts.Level))
	if err != nil {
		return nil, err
	}
	db := &DB{
		opts: opts,
		eng:  eng,
		mem:  newMemtable(opts.Seed),
	}
	if opts.BlockCacheEntries > 0 {
		db.cache = newBlockCache(opts.BlockCacheEntries)
	}
	return db, nil
}

// Options returns the DB configuration.
func (db *DB) Options() Options { return db.opts }

// ErrEmptyKey is returned for operations with an empty key.
var ErrEmptyKey = errors.New("kvstore: empty key")

// Put stores value under key.
func (db *DB) Put(key, value []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	v := append([]byte{}, value...)
	if v == nil {
		v = []byte{}
	}
	db.mem.set(append([]byte{}, key...), v)
	db.stats.Puts++
	tmPuts.Inc()
	return db.maybeFlushLocked()
}

// Delete records a tombstone for key.
func (db *DB) Delete(key []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.mem.set(append([]byte{}, key...), nil)
	db.stats.Deletes++
	tmDeletes.Inc()
	return db.maybeFlushLocked()
}

// Get fetches the value for key.
func (db *DB) Get(key []byte) ([]byte, bool, error) {
	if len(key) == 0 {
		return nil, false, ErrEmptyKey
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	t0 := time.Now()
	defer func() {
		dt := time.Since(t0)
		db.stats.ReadTime += dt
		db.stats.Gets++
		tmReadNS.Add(dt.Nanoseconds())
		tmGets.Inc()
	}()

	if v, ok := db.mem.get(key); ok {
		if v == nil {
			return nil, false, nil // tombstone
		}
		return append([]byte{}, v...), true, nil
	}
	// L0: newest table wins.
	for _, t := range db.levels[0] {
		if bytes.Compare(key, t.smallest) < 0 || bytes.Compare(key, t.largest) > 0 {
			continue
		}
		v, tomb, found, err := t.get(key, &db.stats, db.cache)
		if err != nil {
			return nil, false, err
		}
		if found {
			if tomb {
				return nil, false, nil
			}
			return v, true, nil
		}
	}
	// Deeper levels: tables are disjoint; at most one candidate each.
	for lvl := 1; lvl < numLevels; lvl++ {
		for _, t := range db.levels[lvl] {
			if bytes.Compare(key, t.smallest) < 0 {
				break
			}
			if bytes.Compare(key, t.largest) > 0 {
				continue
			}
			v, tomb, found, err := t.get(key, &db.stats, db.cache)
			if err != nil {
				return nil, false, err
			}
			if found {
				if tomb {
					return nil, false, nil
				}
				return v, true, nil
			}
			break
		}
	}
	return nil, false, nil
}

func (db *DB) maybeFlushLocked() error {
	if db.mem.approximateBytes() < db.opts.MemtableBytes {
		return nil
	}
	return db.flushLocked()
}

// Flush forces the memtable into L0.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.flushLocked()
}

func (db *DB) flushLocked() error {
	if db.mem.len() == 0 {
		return nil
	}
	w := newTableWriter(db.nextID, db.opts.Codec, db.eng, db.opts.BlockSize, &db.stats)
	db.nextID++
	for it := db.mem.iterator(); it.valid(); it.next() {
		var v []byte
		if !it.tombstone() {
			v = it.value()
			if v == nil {
				v = []byte{}
			}
		}
		if err := w.add(it.key(), v); err != nil {
			return err
		}
	}
	t, err := w.finish()
	if err != nil {
		return err
	}
	if t != nil {
		db.levels[0] = append([]*sstable{t}, db.levels[0]...)
	}
	db.mem = newMemtable(db.opts.Seed + db.nextID)
	db.stats.Flushes++
	tmFlushes.Inc()
	return db.maybeCompactLocked()
}

func levelBytes(tables []*sstable) int64 {
	var n int64
	for _, t := range tables {
		n += int64(t.size())
	}
	return n
}

func (db *DB) levelLimit(lvl int) int64 {
	limit := db.opts.BaseLevelBytes
	for i := 1; i < lvl; i++ {
		limit *= 10
	}
	return limit
}

func (db *DB) maybeCompactLocked() error {
	for {
		progressed := false
		if len(db.levels[0]) >= db.opts.L0CompactionTrigger {
			if err := db.compactL0Locked(); err != nil {
				return err
			}
			progressed = true
		}
		for lvl := 1; lvl < numLevels-1; lvl++ {
			if levelBytes(db.levels[lvl]) > db.levelLimit(lvl) {
				if err := db.compactLevelLocked(lvl); err != nil {
					return err
				}
				progressed = true
			}
		}
		if !progressed {
			return nil
		}
	}
}

// overlaps reports whether table t intersects [lo, hi].
func overlaps(t *sstable, lo, hi []byte) bool {
	return bytes.Compare(t.largest, lo) >= 0 && bytes.Compare(t.smallest, hi) <= 0
}

func (db *DB) compactL0Locked() error {
	sources := db.levels[0]
	lo := sources[0].smallest
	hi := sources[0].largest
	for _, t := range sources {
		if bytes.Compare(t.smallest, lo) < 0 {
			lo = t.smallest
		}
		if bytes.Compare(t.largest, hi) > 0 {
			hi = t.largest
		}
	}
	var keep, merge []*sstable
	for _, t := range db.levels[1] {
		if overlaps(t, lo, hi) {
			merge = append(merge, t)
		} else {
			keep = append(keep, t)
		}
	}
	// Priority: L0 newest first, then L1.
	inputs := append(append([]*sstable{}, sources...), merge...)
	out, err := db.mergeTablesLocked(inputs, 1)
	if err != nil {
		return err
	}
	db.levels[0] = nil
	db.levels[1] = sortTables(append(keep, out...))
	for _, t := range inputs {
		if db.cache != nil {
			db.cache.dropTable(t.id)
		}
	}
	db.stats.Compactions++
	tmCompactions.Inc()
	return nil
}

func (db *DB) compactLevelLocked(lvl int) error {
	if len(db.levels[lvl]) == 0 {
		return nil
	}
	src := db.levels[lvl][0]
	var keep, merge []*sstable
	for _, t := range db.levels[lvl+1] {
		if overlaps(t, src.smallest, src.largest) {
			merge = append(merge, t)
		} else {
			keep = append(keep, t)
		}
	}
	inputs := append([]*sstable{src}, merge...)
	out, err := db.mergeTablesLocked(inputs, lvl+1)
	if err != nil {
		return err
	}
	db.levels[lvl] = db.levels[lvl][1:]
	db.levels[lvl+1] = sortTables(append(keep, out...))
	for _, t := range inputs {
		if db.cache != nil {
			db.cache.dropTable(t.id)
		}
	}
	db.stats.Compactions++
	tmCompactions.Inc()
	return nil
}

func sortTables(ts []*sstable) []*sstable {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && bytes.Compare(ts[j].smallest, ts[j-1].smallest) < 0; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
	return ts
}

// mergeTablesLocked k-way merges input tables (earlier inputs shadow later
// ones) into new tables for targetLevel. Tombstones are dropped when the
// target is the bottom level.
func (db *DB) mergeTablesLocked(inputs []*sstable, targetLevel int) ([]*sstable, error) {
	// Tombstones can be dropped only when no deeper level holds data they
	// might still be shadowing.
	bottom := true
	for lvl := targetLevel + 1; lvl < numLevels; lvl++ {
		if len(db.levels[lvl]) > 0 {
			bottom = false
		}
	}

	mi := newMergeIterator(inputs, &db.stats, db.cache)
	var out []*sstable
	w := newTableWriter(db.nextID, db.opts.Codec, db.eng, db.opts.BlockSize, &db.stats)
	db.nextID++
	rawInTable := 0
	for mi.valid() {
		if !(mi.tombstone() && bottom) {
			var v []byte
			if !mi.tombstone() {
				v = mi.value()
				if v == nil {
					v = []byte{}
				}
			}
			if err := w.add(mi.key(), v); err != nil {
				return nil, err
			}
			rawInTable += len(mi.key()) + len(mi.value())
			if rawInTable >= db.opts.MaxTableBytes {
				t, err := w.finish()
				if err != nil {
					return nil, err
				}
				if t != nil {
					out = append(out, t)
				}
				w = newTableWriter(db.nextID, db.opts.Codec, db.eng, db.opts.BlockSize, &db.stats)
				db.nextID++
				rawInTable = 0
			}
		}
		if err := mi.next(); err != nil {
			return nil, err
		}
	}
	if mi.err != nil {
		return nil, mi.err
	}
	t, err := w.finish()
	if err != nil {
		return nil, err
	}
	if t != nil {
		out = append(out, t)
	}
	return out, nil
}

// mergeIterator k-way merges table iterators; on duplicate keys the source
// with the lowest index wins.
type mergeIterator struct {
	h   mergeHeap
	err error
	cur struct {
		key       []byte
		value     []byte
		tombstone bool
	}
	done bool
}

type mergeSource struct {
	it  *tableIterator
	idx int
}

type mergeHeap []*mergeSource

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	c := bytes.Compare(h[i].it.key(), h[j].it.key())
	if c != 0 {
		return c < 0
	}
	return h[i].idx < h[j].idx
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(*mergeSource)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func newMergeIterator(inputs []*sstable, stats *Stats, cache *blockCache) *mergeIterator {
	mi := &mergeIterator{}
	for i, t := range inputs {
		it := t.iterator(stats, cache)
		if it.err != nil {
			mi.err = it.err
			return mi
		}
		if it.valid() {
			mi.h = append(mi.h, &mergeSource{it: it, idx: i})
		}
	}
	heap.Init(&mi.h)
	if err := mi.next(); err != nil {
		mi.err = err
	}
	return mi
}

func (mi *mergeIterator) valid() bool { return !mi.done && mi.err == nil }

func (mi *mergeIterator) key() []byte     { return mi.cur.key }
func (mi *mergeIterator) value() []byte   { return mi.cur.value }
func (mi *mergeIterator) tombstone() bool { return mi.cur.tombstone }

// next advances to the next distinct key.
func (mi *mergeIterator) next() error {
	for {
		if mi.h.Len() == 0 {
			mi.done = true
			return nil
		}
		src := mi.h[0]
		key := append([]byte{}, src.it.key()...)
		value := append([]byte{}, src.it.value()...)
		tomb := src.it.tombstone()
		// Pop every source entry with this key; the first (lowest index,
		// newest) defines the value.
		for mi.h.Len() > 0 && bytes.Equal(mi.h[0].it.key(), key) {
			s := mi.h[0]
			s.it.next()
			if s.it.err != nil {
				return s.it.err
			}
			if s.it.valid() {
				heap.Fix(&mi.h, 0)
			} else {
				heap.Pop(&mi.h)
			}
		}
		mi.cur.key = key
		mi.cur.value = value
		mi.cur.tombstone = tomb
		return nil
	}
}

// Scan walks every live key in order, stopping when fn returns false.
func (db *DB) Scan(fn func(key, value []byte) bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	// Merge all tables (L0 newest-first, then deeper levels) plus the
	// memtable overlaid manually: simplest correct approach is to collect
	// memtable entries and treat them as the newest source.
	w := newTableWriter(-1, db.opts.Codec, db.eng, db.opts.BlockSize, nil)
	for it := db.mem.iterator(); it.valid(); it.next() {
		var v []byte
		if !it.tombstone() {
			v = it.value()
			if v == nil {
				v = []byte{}
			}
		}
		if err := w.add(it.key(), v); err != nil {
			return err
		}
	}
	memTable, err := w.finish()
	if err != nil {
		return err
	}
	var inputs []*sstable
	if memTable != nil {
		inputs = append(inputs, memTable)
	}
	inputs = append(inputs, db.levels[0]...)
	for lvl := 1; lvl < numLevels; lvl++ {
		inputs = append(inputs, db.levels[lvl]...)
	}
	mi := newMergeIterator(inputs, &db.stats, nil)
	for mi.valid() {
		if !mi.tombstone() {
			if !fn(mi.key(), mi.value()) {
				return nil
			}
		}
		if err := mi.next(); err != nil {
			return err
		}
	}
	return mi.err
}

// Stats returns a snapshot of accumulated statistics.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.stats
}

// TableCounts reports the number of tables per level (diagnostics).
func (db *DB) TableCounts() []int {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]int, numLevels)
	for i := range db.levels {
		out[i] = len(db.levels[i])
	}
	return out
}

// DiskBytes reports the stored size of all tables.
func (db *DB) DiskBytes() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	var n int64
	for _, lvl := range db.levels {
		n += levelBytes(lvl)
	}
	return n
}

// String summarizes the DB state.
func (db *DB) String() string {
	counts := db.TableCounts()
	return fmt.Sprintf("kvstore{codec=%s level=%d block=%d tables=%v}",
		db.opts.Codec, db.opts.Level, db.opts.BlockSize, counts)
}
