// Package kvstore implements an embedded log-structured merge-tree
// key-value store in the RocksDB mold: a skiplist memtable is flushed into
// block-based sorted-string-table (SST) files whose data blocks are
// individually compressed, and background compaction merges tables down the
// level hierarchy, re-compressing as it goes.
//
// This is the substrate for the paper's KVSTORE1 characterization (§IV-E):
// reads must decompress an entire block to fetch one key, so the block size
// knob trades compression ratio against per-block decompression latency
// (Fig 13), and the (codec, level, block size) triple is exactly the
// configuration space CompOpt's sensitivity study 2 sweeps.
package kvstore

import (
	"bytes"
	"math/rand"
)

const maxHeight = 12

type memNode struct {
	key   []byte
	value []byte // nil = tombstone
	next  [maxHeight]*memNode
}

// memtable is a skiplist-backed sorted map. Not safe for concurrent use;
// the DB serializes access.
type memtable struct {
	head   *memNode
	height int
	rng    *rand.Rand
	bytes  int
	count  int
}

func newMemtable(seed int64) *memtable {
	return &memtable{
		head:   &memNode{},
		height: 1,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

func (m *memtable) randomHeight() int {
	h := 1
	for h < maxHeight && m.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with key ≥ k and fills prev
// with the rightmost nodes before it at every height.
func (m *memtable) findGreaterOrEqual(k []byte, prev *[maxHeight]*memNode) *memNode {
	x := m.head
	for level := m.height - 1; level >= 0; level-- {
		for x.next[level] != nil && bytes.Compare(x.next[level].key, k) < 0 {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// set inserts or replaces key. value nil records a tombstone.
func (m *memtable) set(key, value []byte) {
	var prev [maxHeight]*memNode
	n := m.findGreaterOrEqual(key, &prev)
	if n != nil && bytes.Equal(n.key, key) {
		m.bytes += len(value) - len(n.value)
		n.value = value
		return
	}
	h := m.randomHeight()
	for m.height < h {
		prev[m.height] = m.head
		m.height++
	}
	node := &memNode{key: key, value: value}
	for level := 0; level < h; level++ {
		node.next[level] = prev[level].next[level]
		prev[level].next[level] = node
	}
	m.bytes += len(key) + len(value) + 32
	m.count++
}

// get reports (value, found). A found tombstone returns (nil, true).
func (m *memtable) get(key []byte) ([]byte, bool) {
	n := m.findGreaterOrEqual(key, nil)
	if n != nil && bytes.Equal(n.key, key) {
		return n.value, true
	}
	return nil, false
}

// approximateBytes estimates resident size for flush triggering.
func (m *memtable) approximateBytes() int { return m.bytes }

// len returns the number of distinct keys (including tombstones).
func (m *memtable) len() int { return m.count }

// iterator walks the memtable in key order.
type memIterator struct {
	n *memNode
}

func (m *memtable) iterator() *memIterator { return &memIterator{n: m.head.next[0]} }

func (it *memIterator) valid() bool     { return it.n != nil }
func (it *memIterator) key() []byte     { return it.n.key }
func (it *memIterator) value() []byte   { return it.n.value }
func (it *memIterator) tombstone() bool { return it.n.value == nil }
func (it *memIterator) next()           { it.n = it.n.next[0] }
