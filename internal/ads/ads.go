// Package ads models ADS1, the paper's latency-sensitive ML inference
// service (§IV-D): clients ship large feature payloads (dense float plus
// sparse integer embeddings) over the network, and compressing the request
// trades compute time — on the critical path of a strict latency SLO — for
// network bytes. The pipeline accounts each leg (client compress, wire,
// server decompress) so the compute/network/latency trade-off of Fig 12 and
// sensitivity study 1 is measurable.
package ads

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/corpus"
	"github.com/datacomp/datacomp/internal/graph"
	"github.com/datacomp/datacomp/internal/stats"
)

// Config configures a request pipeline.
type Config struct {
	// Model selects the request shape (corpus.ModelA/B/C).
	Model corpus.AdsModel
	// Compress enables request compression with Codec/Level.
	Compress bool
	Codec    string
	Level    int
	// NetworkMBps is the simulated client→server bandwidth used to convert
	// wire bytes into wire time (default 1250 MB/s ≈ 10 Gb/s).
	NetworkMBps float64
}

func (c *Config) fill() {
	if c.Codec == "" {
		c.Codec = "zstd"
	}
	if c.Level == 0 {
		c.Level = 1
	}
	if c.NetworkMBps == 0 {
		c.NetworkMBps = 1250
	}
	if c.Model.Name == "" {
		c.Model = corpus.ModelA
	}
}

// Result is the accounting for one request.
type Result struct {
	RawBytes  int
	WireBytes int

	CompressTime   time.Duration
	WireTime       time.Duration
	DecompressTime time.Duration
}

// Latency is the end-to-end request latency contribution of transport:
// compress + wire + decompress.
func (r Result) Latency() time.Duration {
	return r.CompressTime + r.WireTime + r.DecompressTime
}

// Stats aggregates pipeline activity.
type Stats struct {
	Requests  int64
	RawBytes  int64
	WireBytes int64

	CompressTime   time.Duration
	DecompressTime time.Duration
	WireTime       time.Duration

	latencies []float64 // seconds
}

// CompressionRatio is raw/wire bytes.
func (s Stats) CompressionRatio() float64 {
	if s.WireBytes == 0 {
		return 0
	}
	return float64(s.RawBytes) / float64(s.WireBytes)
}

// LatencyP returns the p-th percentile transport latency.
func (s Stats) LatencyP(p float64) time.Duration {
	return time.Duration(stats.Percentile(s.latencies, p) * float64(time.Second))
}

// MeanLatency returns the mean transport latency.
func (s Stats) MeanLatency() time.Duration {
	if s.Requests == 0 {
		return 0
	}
	return time.Duration((s.CompressTime + s.DecompressTime + s.WireTime).Nanoseconds() / s.Requests)
}

// Pipeline is a client→server request path. Not safe for concurrent use.
type Pipeline struct {
	cfg    Config
	client codec.Engine // client-side compressor
	server codec.Engine // server-side decompressor
	stats  Stats
	buf    []byte
}

// planLevel is the one-time search effort New spends pinning a graph to
// the model's request corpus: full-payload trials with every entropy
// terminal enabled. It is paid once per pipeline, never per request.
const planLevel = 9

// New builds a pipeline. The "graph" codec gets per-corpus treatment: the
// request shape is fixed per model, so New searches for the best transform
// graph over one sample request at full effort and pins it on the client —
// per-request compression then pays no search. The server decodes with a
// plain graph engine, since frames carry their own graph.
func New(cfg Config) (*Pipeline, error) {
	cfg.fill()
	p := &Pipeline{cfg: cfg}
	if cfg.Compress {
		var err error
		if cfg.Codec == "graph" {
			sample := cfg.Model.Request(rand.New(rand.NewSource(0)))
			g, err := graph.Plan(sample, graph.HintNone, planLevel)
			if err != nil {
				return nil, err
			}
			client, err := graph.NewEngine(graph.WithLevel(cfg.Level), graph.WithGraph(g))
			if err != nil {
				return nil, err
			}
			server, err := graph.NewEngine(graph.WithLevel(cfg.Level))
			if err != nil {
				return nil, err
			}
			p.client, p.server = client, server
			return p, nil
		}
		p.client, err = codec.NewEngine(cfg.Codec, codec.WithLevel(cfg.Level))
		if err != nil {
			return nil, err
		}
		p.server, err = codec.NewEngine(cfg.Codec, codec.WithLevel(cfg.Level))
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Config returns the pipeline configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// ErrEmptyRequest is returned for zero-length requests.
var ErrEmptyRequest = errors.New("ads: empty request")

// Send pushes one serialized request through the pipeline and returns its
// accounting.
func (p *Pipeline) Send(req []byte) (Result, error) {
	if len(req) == 0 {
		return Result{}, ErrEmptyRequest
	}
	var r Result
	r.RawBytes = len(req)
	wire := req
	if p.cfg.Compress {
		t0 := time.Now()
		out, err := p.client.Compress(p.buf[:0], req)
		r.CompressTime = time.Since(t0)
		if err != nil {
			return Result{}, err
		}
		p.buf = out
		wire = out
	}
	r.WireBytes = len(wire)
	r.WireTime = time.Duration(float64(len(wire)) / (p.cfg.NetworkMBps * 1e6) * float64(time.Second))
	if p.cfg.Compress {
		t0 := time.Now()
		back, err := p.server.Decompress(nil, wire)
		r.DecompressTime = time.Since(t0)
		if err != nil {
			return Result{}, err
		}
		if len(back) != len(req) {
			return Result{}, fmt.Errorf("ads: decompressed %d bytes, want %d", len(back), len(req))
		}
	}

	p.stats.Requests++
	p.stats.RawBytes += int64(r.RawBytes)
	p.stats.WireBytes += int64(r.WireBytes)
	p.stats.CompressTime += r.CompressTime
	p.stats.DecompressTime += r.DecompressTime
	p.stats.WireTime += r.WireTime
	p.stats.latencies = append(p.stats.latencies, r.Latency().Seconds())
	return r, nil
}

// Run generates n model requests and pushes them through the pipeline.
func (p *Pipeline) Run(seed int64, n int) error {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		if _, err := p.Send(p.cfg.Model.Request(rng)); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns a snapshot of accumulated statistics.
func (p *Pipeline) Stats() Stats {
	out := p.stats
	out.latencies = append([]float64(nil), p.stats.latencies...)
	return out
}
