package ads

import (
	"testing"

	"github.com/datacomp/datacomp/internal/corpus"
)

func TestUncompressedPipeline(t *testing.T) {
	p, err := New(Config{Model: corpus.ModelB, Compress: false})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(1, 5); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Requests != 5 {
		t.Fatalf("requests = %d", st.Requests)
	}
	if st.RawBytes != st.WireBytes {
		t.Fatal("uncompressed pipeline should ship raw bytes")
	}
	if st.CompressTime != 0 || st.DecompressTime != 0 {
		t.Fatal("no codec time expected")
	}
	if st.WireTime <= 0 {
		t.Fatal("wire time not modeled")
	}
}

func TestCompressedPipelineSavesWireBytes(t *testing.T) {
	plain, err := New(Config{Model: corpus.ModelA, Compress: false})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := New(Config{Model: corpus.ModelA, Compress: true, Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Run(7, 5); err != nil {
		t.Fatal(err)
	}
	if err := comp.Run(7, 5); err != nil {
		t.Fatal(err)
	}
	ps, cs := plain.Stats(), comp.Stats()
	if cs.WireBytes >= ps.WireBytes {
		t.Fatalf("compression should cut wire bytes: %d vs %d", cs.WireBytes, ps.WireBytes)
	}
	if cs.CompressionRatio() <= 1.2 {
		t.Fatalf("ads requests should compress: ratio %.2f", cs.CompressionRatio())
	}
	if cs.CompressTime <= 0 || cs.DecompressTime <= 0 {
		t.Fatal("codec time not accounted")
	}
}

func TestLatencyAccounting(t *testing.T) {
	// On a slow network, compression should reduce total latency; the
	// trade-off reverses only on fast networks.
	slow, err := New(Config{Model: corpus.ModelA, Compress: true, Level: 1, NetworkMBps: 20})
	if err != nil {
		t.Fatal(err)
	}
	slowPlain, err := New(Config{Model: corpus.ModelA, Compress: false, NetworkMBps: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := slow.Run(3, 5); err != nil {
		t.Fatal(err)
	}
	if err := slowPlain.Run(3, 5); err != nil {
		t.Fatal(err)
	}
	if slow.Stats().MeanLatency() >= slowPlain.Stats().MeanLatency() {
		t.Fatalf("on a slow wire compression should win: %v vs %v",
			slow.Stats().MeanLatency(), slowPlain.Stats().MeanLatency())
	}
	if p99 := slow.Stats().LatencyP(99); p99 < slow.Stats().LatencyP(50) {
		t.Fatal("p99 below p50")
	}
}

func TestModelCompressibilityOrdering(t *testing.T) {
	// More sparse content (zeros) => higher ratio. Model A has the most
	// sparse slots relative to dense.
	ratios := map[string]float64{}
	for _, m := range corpus.AdsModels() {
		p, err := New(Config{Model: m, Compress: true, Level: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Run(11, 3); err != nil {
			t.Fatal(err)
		}
		ratios[m.Name] = p.Stats().CompressionRatio()
	}
	t.Logf("model ratios: %v", ratios)
	for name, r := range ratios {
		if r <= 1 {
			t.Errorf("model %s ratio %.2f", name, r)
		}
	}
	// Model C's varint serialization of the same content should change its
	// ratio versus B (the paper's point: serialization matters).
	if ratios["B"] == ratios["C"] {
		t.Error("models B and C should differ")
	}
}

func TestSendErrors(t *testing.T) {
	p, err := New(Config{Model: corpus.ModelB})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Send(nil); err != ErrEmptyRequest {
		t.Fatalf("got %v", err)
	}
	if _, err := New(Config{Compress: true, Codec: "bogus"}); err == nil {
		t.Fatal("bogus codec accepted")
	}
}

func TestZeroStats(t *testing.T) {
	var s Stats
	if s.CompressionRatio() != 0 || s.MeanLatency() != 0 {
		t.Fatal("zero stats should report zeros")
	}
}

func TestGraphPipelineBeatsZstd(t *testing.T) {
	// The graph codec pins a per-corpus transform graph at pipeline build
	// time (split at the header, decimal-rescale the dense float region,
	// varint the sparse ints); on the fixed-shape embedding models it must
	// beat the generic zstd wire ratio. Model C varint-serializes its
	// sparse region, which defeats stride transforms, so it only has to
	// hold parity there.
	for _, tc := range []struct {
		model corpus.AdsModel
		edge  float64
	}{
		{corpus.ModelA, 1.10},
		{corpus.ModelB, 1.10},
		{corpus.ModelC, 0.97},
	} {
		zp, err := New(Config{Model: tc.model, Compress: true, Codec: "zstd", Level: 3})
		if err != nil {
			t.Fatal(err)
		}
		gp, err := New(Config{Model: tc.model, Compress: true, Codec: "graph", Level: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := zp.Run(7, 8); err != nil {
			t.Fatal(err)
		}
		if err := gp.Run(7, 8); err != nil {
			t.Fatal(err)
		}
		zr, gr := zp.Stats().CompressionRatio(), gp.Stats().CompressionRatio()
		if gr < zr*tc.edge {
			t.Errorf("%s: graph ratio %.3f, zstd ratio %.3f (need ≥ %.2f×)", tc.model.Name, gr, zr, tc.edge)
		}
	}
}

func TestGraphPipelineRoundtrip(t *testing.T) {
	p, err := New(Config{Model: corpus.ModelB, Compress: true, Codec: "graph"})
	if err != nil {
		t.Fatal(err)
	}
	// Send verifies decompressed length internally; any graph/codec
	// mismatch surfaces as an error here.
	if err := p.Run(3, 6); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.WireBytes >= st.RawBytes {
		t.Fatalf("graph pipeline did not compress: %d -> %d", st.RawBytes, st.WireBytes)
	}
}
