package rpc

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"github.com/datacomp/datacomp/internal/trace"
)

// RemoteError is a handler-side failure relayed to the caller. It proves
// the transport worked end to end, so it never trips the circuit breaker
// and is never retried.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return e.Msg }

// ErrCircuitOpen is returned by Call when the per-connection circuit
// breaker is open: recent calls failed at the transport layer, and the
// cooldown has not elapsed.
var ErrCircuitOpen = errors.New("rpc: circuit breaker open")

// ErrClientClosed is returned by Call after Close.
var ErrClientClosed = errors.New("rpc: client closed")

// RetryPolicy configures automatic retries of failed calls. Only transport
// failures retry (RemoteError means the request was executed); only
// methods the Idempotent predicate approves retry, because a transport
// error leaves it unknown whether the server ran the request.
type RetryPolicy struct {
	// Max is the number of retries after the initial attempt.
	Max int
	// Backoff is the delay before the first retry, doubling each retry
	// (default 10ms).
	Backoff time.Duration
	// MaxBackoff caps the doubling (default 1s).
	MaxBackoff time.Duration
	// Idempotent reports whether a method is safe to re-execute. Nil
	// disables retries entirely.
	Idempotent func(method string) bool
}

func (p *RetryPolicy) fill() {
	if p.Backoff <= 0 {
		p.Backoff = 10 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
}

// delay returns the backoff before retry number n (1-based), deterministic
// exponential growth capped at MaxBackoff.
func (p *RetryPolicy) delay(n int) time.Duration {
	d := p.Backoff
	for i := 1; i < n; i++ {
		d *= 2
		if d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if d > p.MaxBackoff {
		return p.MaxBackoff
	}
	return d
}

// BreakerPolicy configures the per-connection circuit breaker: after
// Threshold consecutive transport failures the breaker opens and calls
// fail fast with ErrCircuitOpen until Cooldown elapses, after which a
// single probe call is let through (half-open).
type BreakerPolicy struct {
	// Threshold is the consecutive-failure count that opens the breaker;
	// 0 disables it.
	Threshold int
	// Cooldown is how long the breaker stays open (default 1s).
	Cooldown time.Duration
}

func (p *BreakerPolicy) fill() {
	if p.Cooldown <= 0 {
		p.Cooldown = time.Second
	}
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithRetry enables automatic retries per policy.
func WithRetry(p RetryPolicy) ClientOption {
	return func(c *Client) { p.fill(); c.retry = p }
}

// WithBreaker enables the per-connection circuit breaker.
func WithBreaker(p BreakerPolicy) ClientOption {
	return func(c *Client) { p.fill(); c.breaker = p }
}

// WithRedial installs a dialer used to replace the connection after a
// transport failure desynchronizes it. Without one, a desynced client
// fails all subsequent calls.
func WithRedial(dial func(ctx context.Context) (io.ReadWriter, error)) ClientOption {
	return func(c *Client) { c.redial = dial }
}

// WithTracer enables request tracing: sampled calls get an "rpc.call" span
// (a child of the context's active span, or a new root), the frame carries
// the span context so the server's half stitches under it, and retries and
// breaker rejections surface as span events. A nil tracer is a no-op.
func WithTracer(tr *trace.Tracer) ClientOption {
	return func(c *Client) { c.tracer = tr }
}

// Client issues calls over one connection. Safe for concurrent use; calls
// are serialized.
type Client struct {
	comp    Compression
	retry   RetryPolicy
	breaker BreakerPolicy
	redial  func(ctx context.Context) (io.ReadWriter, error)
	tracer  *trace.Tracer
	now     func() time.Time // injectable for breaker tests

	mu     sync.Mutex
	t      *transport
	conn   io.ReadWriter
	closed bool
	broken bool // stream desynced; conn unusable until redial
	folded counters

	fails     int // consecutive transport failures (breaker input)
	openUntil time.Time
}

// NewClient wraps an established connection. Both ends must use the same
// Compression configuration.
func NewClient(conn io.ReadWriter, comp Compression, opts ...ClientOption) (*Client, error) {
	c := &Client{comp: comp, conn: conn, now: time.Now}
	for _, o := range opts {
		o(c)
	}
	// Options first: the transport needs the tracer to install stage hooks.
	t, err := newTransport(conn, comp, c.tracer)
	if err != nil {
		return nil, err
	}
	c.t = t
	return c, nil
}

// Close releases the client's pooled engine. The underlying connection is
// the caller's to close. Calls after Close fail with ErrClientClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.t.release()
	return nil
}

// Stats returns the client's traffic counters, including traffic on
// connections since replaced by redials. Safe to call concurrently with
// in-flight Calls.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	var agg counters
	c.folded.foldInto(&agg)
	c.t.stats.foldInto(&agg)
	c.mu.Unlock()
	return agg.snapshot()
}

// Call sends a request and waits for its response. The context's deadline
// and cancellation propagate into the connection I/O when the connection
// is a net.Conn; transport failures on idempotent methods retry with
// exponential backoff per the client's RetryPolicy.
func (c *Client) Call(ctx context.Context, method string, req []byte) ([]byte, error) {
	if method == "" {
		return nil, errors.New("rpc: empty method")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClientClosed
	}
	ctx, span := c.traceCall(ctx, method)
	t0 := time.Now()
	resp, err := c.callLocked(ctx, method, req, span)
	tmCallNS.ObserveTraced(time.Since(t0).Nanoseconds(), uint64(span.TraceID()))
	if span.Valid() {
		if err != nil {
			span.SetStr("error", err.Error())
		}
		span.End()
	}
	return resp, err
}

// traceCall opens the call's span: a child of the context's active span
// when the caller is already traced, else a fresh root if this client's
// tracer samples the call. Untraced calls get a zero handle and zero cost.
func (c *Client) traceCall(ctx context.Context, method string) (context.Context, trace.SpanHandle) {
	parent := trace.FromContext(ctx)
	var span trace.SpanHandle
	if parent.Valid() {
		span = parent.Child("rpc.call")
	} else if c.tracer.Enabled() {
		ctx, span = c.tracer.StartRoot(ctx, "rpc.call")
	}
	if !span.Valid() {
		return ctx, span
	}
	span.SetStr("method", method)
	return trace.ContextWith(ctx, span), span
}

// callLocked runs the breaker gate and the retry loop under c.mu.
func (c *Client) callLocked(ctx context.Context, method string, req []byte, span trace.SpanHandle) ([]byte, error) {
	if err := c.gate(); err != nil {
		span.Event("rpc.breaker_fastfail")
		return nil, err
	}

	retryable := c.retry.Max > 0 && c.retry.Idempotent != nil && c.retry.Idempotent(method)
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			tmDeadline.Inc()
			return nil, err
		}
		if attempt > 0 {
			tmRetries.Inc()
			span.Event("rpc.retry").SetInt("attempt", int64(attempt))
			if err := sleepCtx(ctx, c.retry.delay(attempt)); err != nil {
				tmDeadline.Inc()
				return nil, err
			}
		}
		if c.broken {
			if err := c.redialLocked(ctx); err != nil {
				lastErr = err
				c.recordFailure()
				if !retryable || attempt >= c.retry.Max {
					return nil, lastErr
				}
				continue
			}
		}
		resp, err := c.attempt(ctx, method, req, span)
		if err == nil {
			c.recordSuccess()
			return resp, nil
		}
		var re *RemoteError
		if errors.As(err, &re) {
			// The transport delivered both frames; only the handler failed.
			c.recordSuccess()
			return nil, err
		}
		c.recordFailure()
		if c.fails == c.breaker.Threshold && c.breaker.Threshold > 0 {
			span.Event("rpc.breaker_open")
		}
		lastErr = err
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, lastErr
		}
		if !retryable || attempt >= c.retry.Max {
			return nil, lastErr
		}
		if c.broken && c.redial == nil {
			return nil, lastErr // nothing left to retry on
		}
	}
}

// CallLegacy sends a request without a context.
//
// Deprecated: use Call with a context; this wrapper exists for the v1 API
// and uses context.Background().
func (c *Client) CallLegacy(method string, req []byte) ([]byte, error) {
	return c.Call(context.Background(), method, req)
}

// gate enforces the circuit breaker at call entry: open → fast fail;
// cooldown elapsed → allow one half-open probe.
func (c *Client) gate() error {
	if c.breaker.Threshold <= 0 || c.fails < c.breaker.Threshold {
		return nil
	}
	if c.now().Before(c.openUntil) {
		tmBreakerFastFail.Inc()
		return ErrCircuitOpen
	}
	return nil // half-open probe
}

func (c *Client) recordSuccess() { c.fails = 0 }

func (c *Client) recordFailure() {
	c.fails++
	if c.breaker.Threshold > 0 && c.fails >= c.breaker.Threshold {
		if c.fails == c.breaker.Threshold {
			tmBreakerOpen.Inc()
		}
		c.openUntil = c.now().Add(c.breaker.Cooldown)
	}
}

// redialLocked replaces a desynced connection via the configured dialer,
// folding the dead transport's stats into the client total.
func (c *Client) redialLocked(ctx context.Context) error {
	if c.redial == nil {
		return errors.New("rpc: connection desynchronized and no redialer configured")
	}
	conn, err := c.redial(ctx)
	if err != nil {
		return err
	}
	t, err := newTransport(conn, c.comp, c.tracer)
	if err != nil {
		return err
	}
	c.t.stats.foldInto(&c.folded)
	c.t.release()
	c.t = t
	c.conn = conn
	c.broken = false
	return nil
}

// attempt performs one request/response exchange with ctx deadlines armed
// on the connection, and marks the client broken when the error leaves the
// stream position unknown. A traced attempt stages the span context onto
// the request frame and parents the transport's codec spans.
func (c *Client) attempt(ctx context.Context, method string, req []byte, span trace.SpanHandle) ([]byte, error) {
	release := armDeadline(ctx, c.conn)
	defer release()
	if span.Valid() {
		c.t.cur = span
		c.t.wsc = span.Context()
	}
	resp, err := c.exchange(ctx, method, req)
	c.t.cur = trace.SpanHandle{}
	c.t.wsc = trace.SpanContext{}
	return resp, err
}

func (c *Client) exchange(ctx context.Context, method string, req []byte) ([]byte, error) {
	c.t.wmethod = append(c.t.wmethod[:0], method...)
	if err := c.t.writeFrame(0, c.t.wmethod, req); err != nil {
		c.broken = true
		return nil, c.ctxErr(ctx, err)
	}
	flags, _, resp, err := c.t.readFrame()
	if err != nil {
		if !isAligned(err) {
			c.broken = true
		}
		return nil, c.ctxErr(ctx, err)
	}
	c.t.stats.calls.Add(1)
	tmCalls.Inc()
	if flags&flagError != 0 {
		return nil, &RemoteError{Msg: string(resp)}
	}
	return resp, nil
}

// ctxErr prefers the context's verdict over the raw I/O error: a deadline
// firing surfaces as a net timeout on the connection, but the caller asked
// in context terms and gets the answer in context terms.
func (c *Client) ctxErr(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		tmDeadline.Inc()
		return ctxErr
	}
	// A connection timeout can fire a beat before the context's own timer:
	// the conn deadline was armed from ctx, so the timeout IS the deadline.
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		if _, ok := ctx.Deadline(); ok {
			tmDeadline.Inc()
			return context.DeadlineExceeded
		}
	}
	return err
}

// armDeadline projects ctx onto a net.Conn: the deadline is set up front,
// and cancellation forces an immediate wakeup by setting a past deadline.
// The returned release detaches the watcher and clears the deadline.
// Non-net connections (pipes, buffers) get no projection — callers there
// rely on ctx checks between operations.
func armDeadline(ctx context.Context, conn io.ReadWriter) func() {
	nc, ok := conn.(net.Conn)
	if !ok {
		return func() {}
	}
	if d, ok := ctx.Deadline(); ok {
		nc.SetDeadline(d)
	}
	var stop func() bool
	var fired chan struct{}
	if ctx.Done() != nil {
		fired = make(chan struct{})
		stop = context.AfterFunc(ctx, func() {
			defer close(fired)
			nc.SetDeadline(time.Unix(1, 0))
		})
	}
	return func() {
		if stop != nil && !stop() {
			// The cancel callback already started; wait for it so its
			// past-deadline write can't land after our clear and poison
			// the connection for the next caller.
			<-fired
		}
		nc.SetDeadline(time.Time{})
	}
}

// sleepCtx sleeps for d or until ctx is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
