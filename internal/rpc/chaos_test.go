package rpc

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"github.com/datacomp/datacomp/internal/corpus"
	"github.com/datacomp/datacomp/internal/faultinject"
)

// TestReadFrameRejectsMalformedInput walks every header-level failure mode
// of the frame parser: each must surface as ErrCorrupt, never a panic and
// never a silently wrong message.
func TestReadFrameRejectsMalformedInput(t *testing.T) {
	good := EncodeFrame(0, "echo", []byte("payload bytes here"))
	mutate := func(i int, bit byte) []byte {
		mut := append([]byte(nil), good...)
		mut[i] ^= bit
		return mut
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"unknown flags", mutate(0, 0x80)},
		{"short header", good[:1]},
		{"truncated method", good[:2]},
		{"truncated checksum", good[:len(good)-len("payload bytes here")-4]},
		{"truncated payload", good[:len(good)-3]},
		// 0xFF 0xFF ... varint promises an mlen far beyond maxMethod.
		{"oversized method length", []byte{0, 0xFF, 0xFF, 0xFF, 0x7F}},
		// Valid empty method, then plen > maxFrame.
		{"oversized payload length", []byte{0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}},
		{"flipped method byte", mutate(2, 0x01)},
		{"flipped checksum byte", mutate(len(good)-len("payload bytes here")-1, 0x20)},
		{"flipped payload byte", mutate(len(good)-1, 0x04)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := ParseFrame(tc.data)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
		})
	}

	// Clean close between frames is EOF, not corruption.
	if _, _, _, err := ParseFrame(nil); err != io.EOF {
		t.Fatalf("empty input: %v, want io.EOF", err)
	}
	// And the unmutated frame parses back exactly.
	flags, method, payload, err := ParseFrame(good)
	if err != nil || flags != 0 || string(method) != "echo" || string(payload) != "payload bytes here" {
		t.Fatalf("good frame: %v %d %q %q", err, flags, method, payload)
	}
}

// TestServerRejectsCorruptStream feeds a server connection a frame with
// every byte bit-flipped: ServeConn must terminate with ErrCorrupt.
func TestServerRejectsCorruptStream(t *testing.T) {
	frame := EncodeFrame(0, "echo", corpus.LogLines(1, 4<<10))
	for seed := uint64(1); seed <= 8; seed++ {
		conn := faultinject.New(
			struct {
				io.Reader
				io.Writer
			}{bytes.NewReader(frame), io.Discard},
			faultinject.WithSeed(seed), faultinject.WithBitFlips(1),
		)
		s := echoServer(Compression{})
		err := s.ServeConn(context.Background(), conn)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("seed %d: ServeConn = %v, want ErrCorrupt", seed, err)
		}
	}
}

// TestChaosBitFlips runs calls through a connection that randomly flips
// bits on the client's read side. Every call must either return the exact
// payload or fail with ErrCorrupt (or a connection-teardown error) — a
// silently wrong response is the one unacceptable outcome. The client
// redials desynced connections and keeps going.
func TestChaosBitFlips(t *testing.T) {
	comp := Compression{Codec: "zstd", Level: 1, Checksum: true}
	s := echoServer(comp)
	seed := uint64(0)
	dial := func(ctx context.Context) (io.ReadWriter, error) {
		cc, sc := net.Pipe()
		go func() {
			_ = s.ServeConn(context.Background(), sc)
			sc.Close()
		}()
		seed++
		return faultinject.New(cc,
			faultinject.WithSeed(seed), faultinject.WithBitFlips(0.0005)), nil
	}
	conn, _ := dial(context.Background())
	c, err := NewClient(conn, comp, WithRedial(dial))
	if err != nil {
		t.Fatal(err)
	}
	payload := corpus.LogLines(7, 8<<10)
	ctx := context.Background()
	ok, corruptErrs := 0, 0
	for i := 0; i < 60; i++ {
		resp, err := c.Call(ctx, "echo", payload)
		switch {
		case err == nil:
			if !bytes.Equal(resp, payload) {
				t.Fatalf("call %d: silently wrong payload", i)
			}
			ok++
		case errors.Is(err, ErrCorrupt):
			corruptErrs++
		case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF),
			errors.Is(err, io.ErrClosedPipe), errors.Is(err, net.ErrClosed):
			// Connection teardown after a desync is a legal failure shape.
		default:
			t.Fatalf("call %d: unexpected error class: %v", i, err)
		}
	}
	if ok == 0 {
		t.Fatal("no call survived the chaos run; flip rate too hot to test recovery")
	}
	if corruptErrs == 0 {
		t.Fatal("no corruption detected over 60 flipped calls; injection ineffective")
	}
}

// TestTruncationSurfacesAsCorrupt cuts the response stream mid-frame.
func TestTruncationSurfacesAsCorrupt(t *testing.T) {
	comp := Compression{}
	s := echoServer(comp)
	cc, sc := net.Pipe()
	go func() {
		_ = s.ServeConn(context.Background(), sc)
		sc.Close()
	}()
	conn := faultinject.New(cc, faultinject.WithTruncate(10))
	c, err := NewClient(conn, comp)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	_, err = c.Call(context.Background(), "echo", corpus.LogLines(2, 4<<10))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated response: %v, want ErrCorrupt", err)
	}
}

// TestRetryRecoversIdempotentCall gives the client a dead first connection
// and a working redial: with a retry policy marking "echo" idempotent, the
// call must succeed on the second attempt.
func TestRetryRecoversIdempotentCall(t *testing.T) {
	comp := Compression{Codec: "lz4", Level: 1}
	s := echoServer(comp)
	dial := func(ctx context.Context) (io.ReadWriter, error) {
		cc, sc := net.Pipe()
		go func() {
			_ = s.ServeConn(context.Background(), sc)
			sc.Close()
		}()
		return cc, nil
	}
	// First connection: closed before use, so attempt 1 fails at the
	// transport layer.
	cc, sc := net.Pipe()
	cc.Close()
	sc.Close()
	c, err := NewClient(cc, comp,
		WithRedial(dial),
		WithRetry(RetryPolicy{
			Max:        2,
			Backoff:    time.Millisecond,
			Idempotent: func(method string) bool { return method == "echo" },
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	payload := corpus.LogLines(3, 8<<10)
	resp, err := c.Call(context.Background(), "echo", payload)
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if !bytes.Equal(resp, payload) {
		t.Fatal("payload mismatch after retry")
	}
}

// TestNonIdempotentNeverRetries: the same dead-first-connection setup must
// fail when the method is not marked idempotent — re-executing a request
// whose fate is unknown is the caller's call, not the transport's.
func TestNonIdempotentNeverRetries(t *testing.T) {
	comp := Compression{}
	cc, sc := net.Pipe()
	cc.Close()
	sc.Close()
	dialed := 0
	c, err := NewClient(cc, comp,
		WithRedial(func(ctx context.Context) (io.ReadWriter, error) {
			dialed++
			return nil, errors.New("dial refused")
		}),
		WithRetry(RetryPolicy{
			Max:        3,
			Backoff:    time.Millisecond,
			Idempotent: func(string) bool { return false },
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(context.Background(), "mutate", []byte("x")); err == nil {
		t.Fatal("call on dead connection succeeded")
	}
	if dialed != 0 {
		t.Fatalf("non-idempotent call redialed %d times", dialed)
	}
}

// TestRemoteErrorNotRetried: a handler failure proves the transport works;
// retrying would re-execute the request.
func TestRemoteErrorNotRetried(t *testing.T) {
	comp := Compression{}
	s := NewServer(comp)
	calls := 0
	s.Register("flaky", Func(func(req []byte) ([]byte, error) {
		calls++
		return nil, errors.New("handler failure")
	}))
	cc, sc := net.Pipe()
	go func() {
		_ = s.ServeConn(context.Background(), sc)
		sc.Close()
	}()
	defer cc.Close()
	c, err := NewClient(cc, comp, WithRetry(RetryPolicy{
		Max:        3,
		Backoff:    time.Millisecond,
		Idempotent: func(string) bool { return true },
	}))
	if err != nil {
		t.Fatal(err)
	}
	var re *RemoteError
	if _, err := c.Call(context.Background(), "flaky", nil); !errors.As(err, &re) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("handler ran %d times, want 1", calls)
	}
}

// TestCircuitBreaker opens after consecutive transport failures, fast-fails
// while open, and closes again after a successful half-open probe.
func TestCircuitBreaker(t *testing.T) {
	comp := Compression{}
	cc, sc := net.Pipe()
	cc.Close()
	sc.Close()
	c, err := NewClient(cc, comp, WithBreaker(BreakerPolicy{Threshold: 2, Cooldown: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(1000, 0)
	c.now = func() time.Time { return clock }

	for i := 0; i < 2; i++ {
		if _, err := c.Call(context.Background(), "echo", nil); err == nil {
			t.Fatal("call on dead connection succeeded")
		}
	}
	// Threshold reached: the breaker is open and calls fail fast.
	if _, err := c.Call(context.Background(), "echo", nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen, got %v", err)
	}

	// Cooldown elapses; the half-open probe goes through a working redial
	// and its success closes the breaker.
	s := echoServer(comp)
	c.redial = func(ctx context.Context) (io.ReadWriter, error) {
		cc, sc := net.Pipe()
		go func() {
			_ = s.ServeConn(context.Background(), sc)
			sc.Close()
		}()
		return cc, nil
	}
	clock = clock.Add(2 * time.Hour)
	if _, err := c.Call(context.Background(), "echo", []byte("probe")); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if c.fails != 0 {
		t.Fatalf("breaker did not close after probe: fails = %d", c.fails)
	}
}

// TestDeadlinePropagates arms the context deadline on the connection: a
// slow handler must fail the call with DeadlineExceeded, promptly.
func TestDeadlinePropagates(t *testing.T) {
	comp := Compression{}
	s := NewServer(comp)
	s.Register("slow", Func(func(req []byte) ([]byte, error) {
		time.Sleep(2 * time.Second)
		return req, nil
	}))
	cc, sc := net.Pipe()
	go func() {
		_ = s.ServeConn(context.Background(), sc)
		sc.Close()
	}()
	defer cc.Close()
	c, err := NewClient(cc, comp)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err = c.Call(ctx, "slow", []byte("x"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(t0); elapsed > time.Second {
		t.Fatalf("deadline did not unblock the call: took %v", elapsed)
	}
}

// TestCancelPropagates unblocks an in-flight call on context cancellation.
func TestCancelPropagates(t *testing.T) {
	comp := Compression{}
	s := NewServer(comp)
	release := make(chan struct{})
	s.Register("hang", Func(func(req []byte) ([]byte, error) {
		<-release
		return req, nil
	}))
	defer close(release)
	cc, sc := net.Pipe()
	go func() {
		_ = s.ServeConn(context.Background(), sc)
		sc.Close()
	}()
	defer cc.Close()
	c, err := NewClient(cc, comp)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	_, err = c.Call(ctx, "hang", []byte("x"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if elapsed := time.Since(t0); elapsed > time.Second {
		t.Fatalf("cancel did not unblock the call: took %v", elapsed)
	}
}

// TestServerShedsCompressionUnderLoad: past the inflight threshold the
// server answers uncompressed — more wire bytes, but no codec CPU spent.
func TestServerShedsCompressionUnderLoad(t *testing.T) {
	comp := Compression{Codec: "zstd", Level: 1}
	big := corpus.LogLines(9, 32<<10)
	run := func(overload bool) Stats {
		s := NewServer(comp, WithShedThreshold(4))
		s.Register("fetch", Func(func(req []byte) ([]byte, error) { return big, nil }))
		if overload {
			// Synthetic pressure: pretend other connections hold requests in
			// flight past the shed threshold.
			s.inflight.Add(10)
		}
		cc, sc := net.Pipe()
		go func() {
			_ = s.ServeConn(context.Background(), sc)
			sc.Close()
		}()
		defer cc.Close()
		c, err := NewClient(cc, comp)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := c.Call(context.Background(), "fetch", []byte("k"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resp, big) {
			t.Fatal("payload mismatch")
		}
		return s.Stats()
	}
	normal := run(false)
	if normal.WireBytes >= normal.RawBytes {
		t.Fatalf("control run did not compress: %+v", normal)
	}
	shed := run(true)
	if shed.WireBytes != shed.RawBytes {
		t.Fatalf("overloaded server still compressed: %+v", shed)
	}
}

// TestLegacyWrappers keeps the deprecated v1 entry points working.
func TestLegacyWrappers(t *testing.T) {
	comp := Compression{}
	s := echoServer(comp)
	cc, sc := net.Pipe()
	go func() {
		_ = s.ServeConnLegacy(sc)
		sc.Close()
	}()
	defer cc.Close()
	c, err := NewClient(cc, comp)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.CallLegacy("echo", []byte("v1 caller"))
	if err != nil || string(resp) != "v1 caller" {
		t.Fatalf("legacy path: %v %q", err, resp)
	}
}

// TestClosedClientFailsFast enforces the post-Close contract.
func TestClosedClientFailsFast(t *testing.T) {
	cc, sc := net.Pipe()
	defer cc.Close()
	defer sc.Close()
	c, err := NewClient(cc, Compression{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(context.Background(), "echo", nil); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("want ErrClientClosed, got %v", err)
	}
}

// TestChecksumMismatchKeepsConnectionAligned: a checksum failure is
// detected after the full frame is consumed, so the same connection keeps
// serving without a redial.
func TestChecksumMismatchKeepsConnectionAligned(t *testing.T) {
	good := EncodeFrame(0, "m", []byte("payload"))
	flip := append([]byte(nil), good...)
	flip[len(flip)-1] ^= 0x01
	stream := append(append([]byte(nil), flip...), good...)
	t2 := &transport{r: bufio.NewReader(bytes.NewReader(stream))}
	if _, _, _, err := t2.readFrame(); !errors.Is(err, ErrCorrupt) || !isAligned(err) {
		t.Fatalf("flipped frame: err = %v (aligned = %v)", err, isAligned(err))
	}
	_, method, payload, err := t2.readFrame()
	if err != nil || string(method) != "m" || string(payload) != "payload" {
		t.Fatalf("aligned stream did not recover: %v %q %q", err, method, payload)
	}
}
