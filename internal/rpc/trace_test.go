package rpc

import (
	"errors"
	"testing"

	"github.com/datacomp/datacomp/internal/trace"
)

func TestFrameTraceContextRoundTrip(t *testing.T) {
	sc := trace.SpanContext{TraceID: 0xabcdef01, SpanID: 0x42, Sampled: true}
	frame := EncodeFrameWithTrace(0, "kv.get", []byte("payload"), sc)
	flags, method, payload, got, err := ParseFrameTrace(frame)
	if err != nil {
		t.Fatal(err)
	}
	if flags&flagTrace == 0 {
		t.Fatal("flagTrace not set on traced frame")
	}
	if string(method) != "kv.get" || string(payload) != "payload" {
		t.Fatalf("method/payload corrupted: %q %q", method, payload)
	}
	if got != sc {
		t.Fatalf("trace context %+v, want %+v", got, sc)
	}
}

func TestFrameWithoutTraceIsByteIdenticalToPreTraceFormat(t *testing.T) {
	// An invalid span context must produce a frame indistinguishable from
	// one encoded with no tracing at all — the version-gating guarantee.
	plain := EncodeFrame(0, "m", []byte("data"))
	viaTrace := EncodeFrameWithTrace(0, "m", []byte("data"), trace.SpanContext{})
	if string(plain) != string(viaTrace) {
		t.Fatal("untraced frames differ between encode paths")
	}
	flags, _, _, sc, err := ParseFrameTrace(plain)
	if err != nil {
		t.Fatal(err)
	}
	if flags&flagTrace != 0 || sc.Valid() {
		t.Fatalf("plain frame decoded with trace state: flags=%x sc=%+v", flags, sc)
	}
}

func TestFrameTraceChecksumCoversTraceField(t *testing.T) {
	sc := trace.SpanContext{TraceID: 7, SpanID: 9, Sampled: true}
	frame := EncodeFrameWithTrace(0, "m", []byte("data"), sc)
	// Flip a bit inside the trace ID (bytes 3..10 of the frame: flags byte,
	// then version, flags, traceID...).
	frame[4] ^= 0x01
	if _, _, _, err := ParseFrame(frame); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted trace field parsed: err=%v", err)
	}
}

func TestFrameTraceGarbageFieldIsCorrupt(t *testing.T) {
	sc := trace.SpanContext{TraceID: 7, SpanID: 9, Sampled: true}
	frame := EncodeFrameWithTrace(0, "m", []byte("data"), sc)
	frame[1] = 99 // wire version byte
	if _, _, _, err := ParseFrame(frame); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage trace field parsed: err=%v", err)
	}
	// Zeroed trace ID (flag says sampled, ID says nothing): also corrupt.
	frame = EncodeFrameWithTrace(0, "m", []byte("data"), sc)
	for i := 3; i < 11; i++ {
		frame[i] = 0
	}
	if _, _, _, err := ParseFrame(frame); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero-ID trace field parsed: err=%v", err)
	}
}
