package rpc

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestPackUnpackBatch(t *testing.T) {
	cases := [][][]byte{
		{},
		{[]byte("one")},
		{[]byte(""), []byte("two"), []byte("")},
		{bytes.Repeat([]byte{0xAB}, 1<<16), []byte("x")},
	}
	for _, items := range cases {
		env := PackBatch(nil, items)
		got, err := UnpackBatch(env, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(items) {
			t.Fatalf("count %d, want %d", len(got), len(items))
		}
		for i := range items {
			if !bytes.Equal(got[i], items[i]) {
				t.Fatalf("item %d mismatch", i)
			}
		}
	}
}

func TestUnpackBatchRejectsMalformed(t *testing.T) {
	good := PackBatch(nil, [][]byte{[]byte("hello"), []byte("world")})
	cases := map[string][]byte{
		"empty":            {},
		"truncated body":   good[:len(good)-2],
		"trailing garbage": append(append([]byte{}, good...), 0xFF),
		"huge count":       binary.AppendUvarint(nil, maxBatchItems+1),
		"length past end":  append(binary.AppendUvarint(binary.AppendUvarint(nil, 1), 1<<40), 'x'),
	}
	for name, env := range cases {
		if _, err := UnpackBatch(env, nil); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func batchEchoServer(comp Compression) *Server {
	s := NewServer(comp)
	s.RegisterBatch("echo.batch", func(ctx context.Context, req []byte) ([]byte, error) {
		if bytes.HasPrefix(req, []byte("poison")) {
			return nil, fmt.Errorf("rejected %q", req)
		}
		return append([]byte("ok:"), req...), nil
	})
	return s
}

func TestCallBatchRoundTrip(t *testing.T) {
	for _, comp := range []Compression{{}, {Codec: "zstd", Level: 1, MinSize: 64}} {
		c := pipePair(t, batchEchoServer(comp), comp)
		reqs := make([][]byte, 32)
		for i := range reqs {
			reqs[i] = []byte(fmt.Sprintf("user:%d;session:%d;cart:%d", i, i*7, i*13))
		}
		resps, errs, err := c.CallBatch(context.Background(), "echo.batch", reqs)
		if err != nil {
			t.Fatal(err)
		}
		if errs != nil {
			t.Fatalf("unexpected item errors: %v", errs)
		}
		for i, r := range resps {
			if want := append([]byte("ok:"), reqs[i]...); !bytes.Equal(r, want) {
				t.Fatalf("item %d: got %q want %q", i, r, want)
			}
		}
		// The whole batch must have ridden in one RPC exchange.
		if st := c.Stats(); st.Calls != 1 {
			t.Fatalf("batch of %d used %d calls, want 1", len(reqs), st.Calls)
		}
	}
}

func TestCallBatchPerItemErrors(t *testing.T) {
	comp := Compression{Codec: "lz4", Level: 1, MinSize: 64}
	c := pipePair(t, batchEchoServer(comp), comp)
	reqs := [][]byte{
		[]byte("fine one"),
		[]byte("poison pill"),
		[]byte("fine two"),
	}
	resps, errs, err := c.CallBatch(context.Background(), "echo.batch", reqs)
	if err != nil {
		t.Fatal(err)
	}
	if errs == nil || errs[1] == nil || !strings.Contains(errs[1].Error(), "poison pill") {
		t.Fatalf("item 1 error not surfaced: %v", errs)
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy items errored: %v", errs)
	}
	for _, i := range []int{0, 2} {
		if want := append([]byte("ok:"), reqs[i]...); !bytes.Equal(resps[i], want) {
			t.Fatalf("item %d: got %q", i, resps[i])
		}
	}
	if len(resps[1]) != 0 {
		t.Fatalf("failed item carried a response: %q", resps[1])
	}
}

// TestCallBatchCompressesSmallItems shows the envelope's point: items below
// the transport's MinSize, which would travel raw frame-by-frame, compress
// against each other once packed.
func TestCallBatchCompressesSmallItems(t *testing.T) {
	comp := Compression{Codec: "zstd", Level: 1, MinSize: 256}
	c := pipePair(t, batchEchoServer(comp), comp)
	reqs := make([][]byte, 64)
	for i := range reqs {
		reqs[i] = []byte(fmt.Sprintf("GET user:%04d profile=full flags=abcdef", i))
	}
	if _, _, err := c.CallBatch(context.Background(), "echo.batch", reqs); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.WireBytes >= st.RawBytes {
		t.Fatalf("batched small items did not compress: wire=%d raw=%d", st.WireBytes, st.RawBytes)
	}
}
