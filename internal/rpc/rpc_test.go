package rpc

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"

	"github.com/datacomp/datacomp/internal/corpus"
)

// pipePair wires a client to a served connection over net.Pipe.
func pipePair(t *testing.T, s *Server, comp Compression) *Client {
	t.Helper()
	cc, sc := net.Pipe()
	go func() {
		_ = s.ServeConn(context.Background(), sc)
		sc.Close()
	}()
	c, err := NewClient(cc, comp)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cc.Close() })
	return c
}

func echoServer(comp Compression) *Server {
	s := NewServer(comp)
	s.Register("echo", Func(func(req []byte) ([]byte, error) {
		return req, nil
	}))
	s.Register("fail", Func(func(req []byte) ([]byte, error) {
		return nil, errors.New("handler exploded")
	}))
	return s
}

func TestCallUncompressed(t *testing.T) {
	comp := Compression{}
	c := pipePair(t, echoServer(comp), comp)
	payload := []byte("hello over the wire")
	resp, err := c.Call(context.Background(), "echo", payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, payload) {
		t.Fatal("echo mismatch")
	}
	st := c.Stats()
	if st.RawBytes != st.WireBytes {
		t.Fatalf("no compression configured but bytes differ: %+v", st)
	}
	if st.Calls != 1 {
		t.Fatalf("calls = %d", st.Calls)
	}
}

func TestCallCompressedSavesWireBytes(t *testing.T) {
	comp := Compression{Codec: "zstd", Level: 1}
	c := pipePair(t, echoServer(comp), comp)
	payload := corpus.LogLines(1, 64<<10)
	resp, err := c.Call(context.Background(), "echo", payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, payload) {
		t.Fatal("echo mismatch")
	}
	st := c.Stats()
	if st.WireBytes >= st.RawBytes {
		t.Fatalf("compression saved nothing: %+v", st)
	}
	if st.Saved() < 0.5 {
		t.Fatalf("logs should compress well on the wire: saved %.2f", st.Saved())
	}
	if st.CompressTime <= 0 || st.DecompressTime <= 0 {
		t.Fatalf("codec time not accounted: %+v", st)
	}
}

func TestSmallMessagesSkipCodec(t *testing.T) {
	comp := Compression{Codec: "zstd", Level: 1, MinSize: 1024}
	c := pipePair(t, echoServer(comp), comp)
	if _, err := c.Call(context.Background(), "echo", []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.CompressTime != 0 {
		t.Fatalf("small payload hit the codec: %+v", st)
	}
}

func TestIncompressiblePayloadSentRaw(t *testing.T) {
	comp := Compression{Codec: "lz4", Level: 1}
	c := pipePair(t, echoServer(comp), comp)
	blob := make([]byte, 16<<10)
	for i := range blob {
		blob[i] = byte(i*7 + i>>3*131)
	}
	// Make truly random-ish.
	rngFill(blob)
	resp, err := c.Call(context.Background(), "echo", blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, blob) {
		t.Fatal("mismatch")
	}
	// Wire bytes should not exceed raw by more than framing noise.
	st := c.Stats()
	if st.WireBytes > st.RawBytes+64 {
		t.Fatalf("incompressible payload expanded on the wire: %+v", st)
	}
}

func rngFill(b []byte) {
	x := uint64(88172645463325252)
	for i := range b {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		b[i] = byte(x)
	}
}

func TestRemoteError(t *testing.T) {
	comp := Compression{Codec: "zstd"}
	c := pipePair(t, echoServer(comp), comp)
	_, err := c.Call(context.Background(), "fail", []byte("boom"))
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "exploded") {
		t.Fatalf("want RemoteError, got %v", err)
	}
	// Connection remains usable after a handler error.
	if _, err := c.Call(context.Background(), "echo", []byte("still alive")); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownMethod(t *testing.T) {
	comp := Compression{}
	c := pipePair(t, echoServer(comp), comp)
	_, err := c.Call(context.Background(), "nope", nil)
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "unknown method") {
		t.Fatalf("got %v", err)
	}
	if _, err := c.Call(context.Background(), "", nil); err == nil {
		t.Fatal("empty method accepted")
	}
}

func TestBadCodecRejected(t *testing.T) {
	if _, err := NewClient(nil, Compression{Codec: "bogus"}); err == nil {
		t.Fatal("bogus codec accepted")
	}
	s := NewServer(Compression{Codec: "bogus"})
	cc, sc := net.Pipe()
	defer cc.Close()
	defer sc.Close()
	if err := s.ServeConn(context.Background(), sc); err == nil {
		t.Fatal("server accepted bogus codec")
	}
}

func TestOverTCP(t *testing.T) {
	comp := Compression{Codec: "zstd", Level: 1}
	s := echoServer(comp)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer ln.Close()
	go s.Serve(context.Background(), ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c, err := NewClient(conn, comp)
	if err != nil {
		t.Fatal(err)
	}
	payload := corpus.LogLines(3, 32<<10)
	for i := 0; i < 5; i++ {
		resp, err := c.Call(context.Background(), "echo", payload)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resp, payload) {
			t.Fatal("mismatch over TCP")
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	comp := Compression{Codec: "lz4", Level: 1}
	s := echoServer(comp)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := pipePair(t, s, comp)
			payload := corpus.LogLines(int64(g), 8<<10)
			for i := 0; i < 10; i++ {
				resp, err := c.Call(context.Background(), "echo", payload)
				if err != nil || !bytes.Equal(resp, payload) {
					t.Errorf("client %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestStatsConcurrentWithCalls(t *testing.T) {
	// Stats snapshots must be safe while calls are in flight on both ends
	// (the race detector enforces this).
	comp := Compression{Codec: "zstd", Level: 1}
	s := echoServer(comp)
	c := pipePair(t, s, comp)
	payload := corpus.LogLines(5, 16<<10)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				_ = c.Stats()
				_ = s.Stats()
			}
		}
	}()
	for i := 0; i < 50; i++ {
		resp, err := c.Call(context.Background(), "echo", payload)
		if err != nil || !bytes.Equal(resp, payload) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	close(done)
	wg.Wait()

	st := c.Stats()
	if st.Calls != 50 {
		t.Fatalf("client calls = %d, want 50", st.Calls)
	}
	// The server view includes the still-live connection.
	if srv := s.Stats(); srv.Calls != 50 {
		t.Fatalf("server calls = %d, want 50", srv.Calls)
	}
}

func TestClientCloseReleasesEngine(t *testing.T) {
	comp := Compression{Codec: "zstd", Level: 1}
	c := pipePair(t, echoServer(comp), comp)
	payload := corpus.LogLines(9, 8<<10)
	if _, err := c.Call(context.Background(), "echo", payload); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	// Stats remain readable after Close.
	if st := c.Stats(); st.Calls != 1 {
		t.Fatalf("calls after close = %d", st.Calls)
	}
}

func TestServerStatsAggregation(t *testing.T) {
	comp := Compression{Codec: "zstd", Level: 1}
	s := echoServer(comp)
	cc, sc := net.Pipe()
	done := make(chan struct{})
	go func() {
		_ = s.ServeConn(context.Background(), sc)
		close(done)
	}()
	c, err := NewClient(cc, comp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(context.Background(), "echo", corpus.LogLines(1, 32<<10)); err != nil {
		t.Fatal(err)
	}
	cc.Close()
	sc.Close()
	<-done
	st := s.Stats()
	if st.RawBytes == 0 || st.WireBytes == 0 {
		t.Fatalf("server stats empty: %+v", st)
	}
}
