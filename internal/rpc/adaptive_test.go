package rpc

import (
	"bytes"
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/datacomp/datacomp/internal/adaptive"
	"github.com/datacomp/datacomp/internal/core"
	"github.com/datacomp/datacomp/internal/corpus"
)

func adaptiveController(t *testing.T, cfg adaptive.Config) *adaptive.Controller {
	t.Helper()
	ctrl, err := adaptive.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ctrl.Close)
	return ctrl
}

func TestAdaptiveCallRoundtrip(t *testing.T) {
	ctrl := adaptiveController(t, adaptive.Config{})
	comp := Compression{Adaptive: ctrl}
	c := pipePair(t, echoServer(comp), comp)
	payload := corpus.LogLines(3, 8<<10)
	resp, err := c.Call(context.Background(), "echo", payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, payload) {
		t.Fatal("echo mismatch through adaptive transport")
	}
	// Compressible payloads over MinSize must actually shrink on the wire.
	st := c.Stats()
	if st.WireBytes >= st.RawBytes {
		t.Fatalf("no wire savings: raw %d wire %d", st.RawBytes, st.WireBytes)
	}
	// Both directions created per-method classes under the rpc: prefix.
	classes := map[string]bool{}
	for _, s := range ctrl.Status() {
		classes[s.Class] = true
	}
	if !classes["rpc:echo"] {
		t.Fatalf("no rpc:echo class registered; classes: %v", classes)
	}
}

func TestAdaptiveSmallMessagesSkipCodec(t *testing.T) {
	ctrl := adaptiveController(t, adaptive.Config{})
	comp := Compression{Adaptive: ctrl, MinSize: 1 << 20}
	c := pipePair(t, echoServer(comp), comp)
	payload := corpus.LogLines(4, 4<<10)
	resp, err := c.Call(context.Background(), "echo", payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, payload) {
		t.Fatal("echo mismatch")
	}
	if st := c.Stats(); st.WireBytes != st.RawBytes {
		t.Fatalf("sub-MinSize payload was compressed: raw %d wire %d", st.RawBytes, st.WireBytes)
	}
}

// TestAdaptiveRPCSwapHammer is the RPC half of the satellite race gate:
// concurrent clients call through adaptive transports while generations
// swap every few milliseconds on both the request and response classes.
// Every call must round-trip exactly; a decode under the wrong generation
// surfaces as a corrupt frame or content mismatch.
func TestAdaptiveRPCSwapHammer(t *testing.T) {
	ctrl := adaptiveController(t, adaptive.Config{RetainGenerations: 2})
	comp := Compression{Adaptive: ctrl}
	s := echoServer(comp)

	// Pre-create the class so the swapper can churn it from the start.
	h, err := ctrl.Handle("rpc:echo")
	if err != nil {
		t.Fatal(err)
	}
	configs := []core.Config{
		{Algorithm: "zstd", Level: 1},
		{Algorithm: "lz4", Level: 1},
		{Algorithm: "zstd", Level: 6},
		{Algorithm: "zlib", Level: 1},
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(3 * time.Millisecond):
			}
			if err := h.Adopt(configs[i%len(configs)]); err != nil {
				t.Errorf("adopt: %v", err)
				return
			}
		}
	}()

	payloads := [][]byte{
		corpus.LogLines(21, 4<<10),
		corpus.Records(22, 4<<10),
		corpus.SourceCode(23, 4<<10),
	}
	const clients = 4
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cc, sc := net.Pipe()
			defer cc.Close()
			go func() {
				_ = s.ServeConn(context.Background(), sc)
				sc.Close()
			}()
			c, err := NewClient(cc, comp)
			if err != nil {
				t.Errorf("client %d: %v", w, err)
				return
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				want := payloads[(w+i)%len(payloads)]
				got, err := c.Call(context.Background(), "echo", want)
				if err != nil {
					t.Errorf("client %d call %d: %v", w, i, err)
					return
				}
				if !bytes.Equal(got, want) {
					t.Errorf("client %d call %d: payload mismatch", w, i)
					return
				}
			}
		}(w)
	}
	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if h.Generation() < 5 {
		t.Fatalf("only %d generations churned during the hammer", h.Generation())
	}
}
