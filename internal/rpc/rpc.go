// Package rpc is a minimal service-to-service RPC transport with
// transparent per-message compression — the setting of the paper's
// introduction, where datacenter services exchange objects over RPC and
// compression trades CPU cycles for network bytes.
//
// Messages are length-delimited binary frames; payloads at or above a
// configurable threshold are compressed with the configured codec and
// flagged, so the peer decompresses only what was actually compressed
// (small messages skip the codec entirely, as fleet services do). Both
// ends account raw vs wire bytes and codec time, making the compute ⇄
// network trade measurable per connection.
package rpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/datacomp/datacomp/internal/codec"
)

// Compression configures the transport's codec.
type Compression struct {
	// Codec names a registered codec; empty disables compression.
	Codec string
	// Level is the codec level (0 = codec default).
	Level int
	// MinSize skips compression for smaller payloads (default 256).
	MinSize int
}

func (c *Compression) fill() {
	if c.MinSize == 0 {
		c.MinSize = 256
	}
}

// Stats counts one endpoint's traffic.
type Stats struct {
	Calls          int64
	RawBytes       int64 // payload bytes before compression (both directions)
	WireBytes      int64 // payload bytes on the wire
	CompressTime   time.Duration
	DecompressTime time.Duration
}

// Saved reports the fraction of payload bytes removed by compression.
func (s Stats) Saved() float64 {
	if s.RawBytes == 0 {
		return 0
	}
	return 1 - float64(s.WireBytes)/float64(s.RawBytes)
}

// frame flags.
const (
	flagCompressed = 1 << 0
	flagError      = 1 << 1
)

const maxFrame = 64 << 20

// transport frames and (de)compresses messages on one connection.
// Not safe for concurrent use; Client/Server serialize around it.
type transport struct {
	r     *bufio.Reader
	w     *bufio.Writer
	eng   codec.Engine // nil = no compression
	min   int
	stats Stats
	buf   []byte
}

func newTransport(conn io.ReadWriter, comp Compression) (*transport, error) {
	comp.fill()
	t := &transport{
		r:   bufio.NewReader(conn),
		w:   bufio.NewWriter(conn),
		min: comp.MinSize,
	}
	if comp.Codec != "" {
		c, ok := codec.Lookup(comp.Codec)
		if !ok {
			return nil, fmt.Errorf("rpc: unknown codec %q", comp.Codec)
		}
		level := comp.Level
		if level == 0 {
			_, _, level = c.Levels()
		}
		eng, err := c.New(codec.Options{Level: level})
		if err != nil {
			return nil, err
		}
		t.eng = eng
	}
	return t, nil
}

// writeFrame sends flags, method and payload, compressing when worthwhile.
func (t *transport) writeFrame(flags byte, method string, payload []byte) error {
	wire := payload
	if t.eng != nil && len(payload) >= t.min {
		t0 := time.Now()
		out, err := t.eng.Compress(t.buf[:0], payload)
		t.stats.CompressTime += time.Since(t0)
		if err != nil {
			return err
		}
		t.buf = out
		if len(out) < len(payload) {
			wire = out
			flags |= flagCompressed
		}
	}
	var hdr [binary.MaxVarintLen64]byte
	if err := t.w.WriteByte(flags); err != nil {
		return err
	}
	if _, err := t.w.Write(hdr[:binary.PutUvarint(hdr[:], uint64(len(method)))]); err != nil {
		return err
	}
	if _, err := t.w.WriteString(method); err != nil {
		return err
	}
	if _, err := t.w.Write(hdr[:binary.PutUvarint(hdr[:], uint64(len(wire)))]); err != nil {
		return err
	}
	if _, err := t.w.Write(wire); err != nil {
		return err
	}
	t.stats.RawBytes += int64(len(payload))
	t.stats.WireBytes += int64(len(wire))
	return t.w.Flush()
}

// readFrame receives one message, decompressing as flagged.
func (t *transport) readFrame() (flags byte, method string, payload []byte, err error) {
	flags, err = t.r.ReadByte()
	if err != nil {
		return 0, "", nil, err
	}
	mlen, err := binary.ReadUvarint(t.r)
	if err != nil || mlen > 4096 {
		return 0, "", nil, errBad(err)
	}
	mbuf := make([]byte, mlen)
	if _, err := io.ReadFull(t.r, mbuf); err != nil {
		return 0, "", nil, err
	}
	plen, err := binary.ReadUvarint(t.r)
	if err != nil || plen > maxFrame {
		return 0, "", nil, errBad(err)
	}
	pbuf := make([]byte, plen)
	if _, err := io.ReadFull(t.r, pbuf); err != nil {
		return 0, "", nil, err
	}
	t.stats.WireBytes += int64(len(pbuf))
	if flags&flagCompressed != 0 {
		if t.eng == nil {
			return 0, "", nil, errors.New("rpc: compressed frame on uncompressed transport")
		}
		t0 := time.Now()
		out, err := t.eng.Decompress(nil, pbuf)
		t.stats.DecompressTime += time.Since(t0)
		if err != nil {
			return 0, "", nil, err
		}
		pbuf = out
	}
	t.stats.RawBytes += int64(len(pbuf))
	return flags, string(mbuf), pbuf, nil
}

func errBad(err error) error {
	if err != nil {
		return err
	}
	return errors.New("rpc: malformed frame")
}

// Handler processes one request payload.
type Handler func(req []byte) ([]byte, error)

// Server dispatches method calls over accepted connections.
type Server struct {
	comp     Compression
	mu       sync.RWMutex
	handlers map[string]Handler
	stats    Stats
}

// NewServer builds a server with the given transport compression.
func NewServer(comp Compression) *Server {
	return &Server{comp: comp, handlers: make(map[string]Handler)}
}

// Register installs a handler for method.
func (s *Server) Register(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			_ = s.ServeConn(conn)
			conn.Close()
		}()
	}
}

// ServeConn handles one connection until EOF.
func (s *Server) ServeConn(conn io.ReadWriter) error {
	t, err := newTransport(conn, s.comp)
	if err != nil {
		return err
	}
	defer s.fold(&t.stats)
	for {
		_, method, req, err := t.readFrame()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.mu.RLock()
		h, ok := s.handlers[method]
		s.mu.RUnlock()
		var resp []byte
		flags := byte(0)
		if !ok {
			flags = flagError
			resp = []byte(fmt.Sprintf("rpc: unknown method %q", method))
		} else if resp, err = h(req); err != nil {
			flags = flagError
			resp = []byte(err.Error())
		}
		if err := t.writeFrame(flags, method, resp); err != nil {
			return err
		}
	}
}

func (s *Server) fold(st *Stats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Calls += st.Calls
	s.stats.RawBytes += st.RawBytes
	s.stats.WireBytes += st.WireBytes
	s.stats.CompressTime += st.CompressTime
	s.stats.DecompressTime += st.DecompressTime
}

// Stats returns aggregate server-side traffic from finished connections.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Client issues calls over one connection. Safe for concurrent use; calls
// are serialized.
type Client struct {
	mu   sync.Mutex
	t    *transport
	conn io.ReadWriter
}

// NewClient wraps an established connection. Both ends must use the same
// Compression configuration.
func NewClient(conn io.ReadWriter, comp Compression) (*Client, error) {
	t, err := newTransport(conn, comp)
	if err != nil {
		return nil, err
	}
	return &Client{t: t, conn: conn}, nil
}

// RemoteError is a handler-side failure relayed to the caller.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return e.Msg }

// Call sends a request and waits for its response.
func (c *Client) Call(method string, req []byte) ([]byte, error) {
	if method == "" {
		return nil, errors.New("rpc: empty method")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.t.writeFrame(0, method, req); err != nil {
		return nil, err
	}
	flags, _, resp, err := c.t.readFrame()
	if err != nil {
		return nil, err
	}
	c.t.stats.Calls++
	if flags&flagError != 0 {
		return nil, &RemoteError{Msg: string(resp)}
	}
	return resp, nil
}

// Stats returns the client's traffic counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.stats
}
