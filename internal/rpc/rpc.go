// Package rpc is a minimal service-to-service RPC transport with
// transparent per-message compression — the setting of the paper's
// introduction, where datacenter services exchange objects over RPC and
// compression trades CPU cycles for network bytes.
//
// Messages are length-delimited binary frames; payloads at or above a
// configurable threshold are compressed with the configured codec and
// flagged, so the peer decompresses only what was actually compressed
// (small messages skip the codec entirely, as fleet services do). Both
// ends account raw vs wire bytes and codec time with atomic counters,
// making the compute ⇄ network trade measurable per connection while
// reader and writer goroutines run, and publish into the shared telemetry
// registry. Transports draw engines from a codec.Pool keyed by
// configuration, so connection churn does not pay engine construction.
package rpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/telemetry"
)

// Compression configures the transport's codec.
type Compression struct {
	// Codec names a registered codec; empty disables compression.
	Codec string
	// Level is the codec level (0 = codec default).
	Level int
	// MinSize skips compression for smaller payloads (default 256).
	MinSize int
}

func (c *Compression) fill() {
	if c.MinSize == 0 {
		c.MinSize = 256
	}
}

// Stats is a consistent snapshot of one endpoint's traffic.
type Stats struct {
	Calls          int64
	RawBytes       int64 // payload bytes before compression (both directions)
	WireBytes      int64 // payload bytes on the wire
	CompressTime   time.Duration
	DecompressTime time.Duration
}

// Saved reports the fraction of payload bytes removed by compression.
func (s Stats) Saved() float64 {
	if s.RawBytes == 0 {
		return 0
	}
	return 1 - float64(s.WireBytes)/float64(s.RawBytes)
}

// counters is the race-safe accumulator behind Stats. Counters are
// mutated from whichever goroutine touches the frame (reader or writer),
// so every field is an independent atomic; snapshot() assembles a Stats.
type counters struct {
	calls        atomic.Int64
	rawBytes     atomic.Int64
	wireBytes    atomic.Int64
	compressNS   atomic.Int64
	decompressNS atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Calls:          c.calls.Load(),
		RawBytes:       c.rawBytes.Load(),
		WireBytes:      c.wireBytes.Load(),
		CompressTime:   time.Duration(c.compressNS.Load()),
		DecompressTime: time.Duration(c.decompressNS.Load()),
	}
}

func (c *counters) foldInto(dst *counters) {
	dst.calls.Add(c.calls.Load())
	dst.rawBytes.Add(c.rawBytes.Load())
	dst.wireBytes.Add(c.wireBytes.Load())
	dst.compressNS.Add(c.compressNS.Load())
	dst.decompressNS.Add(c.decompressNS.Load())
}

// Package-level telemetry, registered once on first transport creation.
var (
	tmOnce       sync.Once
	tmCalls      *telemetry.Counter
	tmRawBytes   *telemetry.Counter
	tmWireBytes  *telemetry.Counter
	tmCompNS     *telemetry.Counter
	tmDecompNS   *telemetry.Counter
	tmFrameBytes *telemetry.Histogram
)

func tm() {
	tmOnce.Do(func() {
		r := telemetry.Default
		tmCalls = r.Counter("rpc_calls_total", "completed RPC calls")
		tmRawBytes = r.Counter("rpc_raw_bytes_total", "payload bytes before compression")
		tmWireBytes = r.Counter("rpc_wire_bytes_total", "payload bytes on the wire")
		tmCompNS = r.Counter("rpc_compress_ns_total", "time compressing RPC payloads")
		tmDecompNS = r.Counter("rpc_decompress_ns_total", "time decompressing RPC payloads")
		tmFrameBytes = r.Histogram("rpc_wire_frame_bytes", "wire payload size per frame", "bytes")
	})
}

// frame flags.
const (
	flagCompressed = 1 << 0
	flagError      = 1 << 1
)

const maxFrame = 64 << 20

// transport frames and (de)compresses messages on one connection.
// The engine is single-goroutine (Client/Server serialize frame I/O), but
// the stats counters are safe to read concurrently.
//
// When owned is set (server side), readFrame returns method and payload
// slices backed by the transport's scratch buffers, valid only until the
// next readFrame — the serve loop fully consumes each frame before reading
// the next, so steady-state serving allocates nothing per frame. Client
// transports leave owned unset because Call hands the response payload to
// the caller, which keeps it.
type transport struct {
	r     *bufio.Reader
	w     *bufio.Writer
	eng   codec.Engine // nil = no compression
	pool  *codec.Pool  // where eng came from, for release()
	min   int
	owned bool
	stats counters
	buf     []byte // compression scratch (write side)
	mbuf    []byte // method scratch (read side)
	rbuf    []byte // wire-payload scratch (read side)
	dbuf    []byte // decompression scratch (read side, owned only)
	wmethod []byte // method scratch (write side, avoids string→[]byte churn)
}

func newTransport(conn io.ReadWriter, comp Compression) (*transport, error) {
	comp.fill()
	tm()
	t := &transport{
		r:   bufio.NewReader(conn),
		w:   bufio.NewWriter(conn),
		min: comp.MinSize,
	}
	if comp.Codec != "" {
		c, ok := codec.Lookup(comp.Codec)
		if !ok {
			return nil, fmt.Errorf("rpc: unknown codec %q", comp.Codec)
		}
		level := comp.Level
		if level == 0 {
			_, _, level = c.Levels()
		}
		pool, err := codec.SharedPool(comp.Codec, codec.Options{Level: level})
		if err != nil {
			return nil, err
		}
		t.pool = pool
		t.eng = pool.Get()
	}
	return t, nil
}

// release returns the engine to its pool. Safe to call more than once.
func (t *transport) release() {
	if t.pool != nil && t.eng != nil {
		t.pool.Put(t.eng)
		t.eng = nil
		t.pool = nil
	}
}

// writeFrame sends flags, method and payload, compressing when worthwhile.
func (t *transport) writeFrame(flags byte, method, payload []byte) error {
	wire := payload
	if t.eng != nil && len(payload) >= t.min {
		t0 := time.Now()
		out, err := t.eng.Compress(t.buf[:0], payload)
		ns := time.Since(t0).Nanoseconds()
		t.stats.compressNS.Add(ns)
		tmCompNS.Add(ns)
		if err != nil {
			return err
		}
		t.buf = out
		if len(out) < len(payload) {
			wire = out
			flags |= flagCompressed
		}
	}
	var hdr [binary.MaxVarintLen64]byte
	if err := t.w.WriteByte(flags); err != nil {
		return err
	}
	if _, err := t.w.Write(hdr[:binary.PutUvarint(hdr[:], uint64(len(method)))]); err != nil {
		return err
	}
	if _, err := t.w.Write(method); err != nil {
		return err
	}
	if _, err := t.w.Write(hdr[:binary.PutUvarint(hdr[:], uint64(len(wire)))]); err != nil {
		return err
	}
	if _, err := t.w.Write(wire); err != nil {
		return err
	}
	t.stats.rawBytes.Add(int64(len(payload)))
	t.stats.wireBytes.Add(int64(len(wire)))
	tmRawBytes.Add(int64(len(payload)))
	tmWireBytes.Add(int64(len(wire)))
	tmFrameBytes.Observe(int64(len(wire)))
	return t.w.Flush()
}

// readFrame receives one message, decompressing as flagged. On an owned
// transport, method and payload alias scratch buffers valid until the next
// readFrame; otherwise the payload is freshly allocated for the caller.
func (t *transport) readFrame() (flags byte, method, payload []byte, err error) {
	flags, err = t.r.ReadByte()
	if err != nil {
		return 0, nil, nil, err
	}
	mlen, err := binary.ReadUvarint(t.r)
	if err != nil || mlen > 4096 {
		return 0, nil, nil, errBad(err)
	}
	if uint64(cap(t.mbuf)) < mlen {
		t.mbuf = make([]byte, mlen)
	}
	mbuf := t.mbuf[:mlen]
	if _, err := io.ReadFull(t.r, mbuf); err != nil {
		return 0, nil, nil, err
	}
	plen, err := binary.ReadUvarint(t.r)
	if err != nil || plen > maxFrame {
		return 0, nil, nil, errBad(err)
	}
	compressed := flags&flagCompressed != 0
	var pbuf []byte
	if t.owned || compressed {
		// Wire bytes are scratch: either the frame is consumed in place
		// (owned) or decompression copies out of them below.
		if uint64(cap(t.rbuf)) < plen {
			t.rbuf = make([]byte, plen)
		}
		pbuf = t.rbuf[:plen]
	} else {
		pbuf = make([]byte, plen)
	}
	if _, err := io.ReadFull(t.r, pbuf); err != nil {
		return 0, nil, nil, err
	}
	t.stats.wireBytes.Add(int64(len(pbuf)))
	tmWireBytes.Add(int64(len(pbuf)))
	if compressed {
		if t.eng == nil {
			return 0, nil, nil, errors.New("rpc: compressed frame on uncompressed transport")
		}
		dst := []byte(nil)
		if t.owned {
			dst = t.dbuf[:0]
		}
		t0 := time.Now()
		out, err := t.eng.Decompress(dst, pbuf)
		ns := time.Since(t0).Nanoseconds()
		t.stats.decompressNS.Add(ns)
		tmDecompNS.Add(ns)
		if err != nil {
			return 0, nil, nil, err
		}
		if t.owned {
			t.dbuf = out
		}
		pbuf = out
	}
	t.stats.rawBytes.Add(int64(len(pbuf)))
	tmRawBytes.Add(int64(len(pbuf)))
	return flags, mbuf, pbuf, nil
}

func errBad(err error) error {
	if err != nil {
		return err
	}
	return errors.New("rpc: malformed frame")
}

// Handler processes one request payload. The request slice is only valid
// for the duration of the call (the server reuses its frame buffers);
// handlers that need the bytes afterwards must copy them.
type Handler func(req []byte) ([]byte, error)

// Server dispatches method calls over accepted connections.
type Server struct {
	comp     Compression
	mu       sync.RWMutex
	handlers map[string]Handler
	live     map[*transport]struct{}
	closed   counters
}

// NewServer builds a server with the given transport compression.
func NewServer(comp Compression) *Server {
	return &Server{
		comp:     comp,
		handlers: make(map[string]Handler),
		live:     make(map[*transport]struct{}),
	}
}

// Register installs a handler for method.
func (s *Server) Register(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			_ = s.ServeConn(conn)
			conn.Close()
		}()
	}
}

// ServeConn handles one connection until EOF.
func (s *Server) ServeConn(conn io.ReadWriter) error {
	t, err := newTransport(conn, s.comp)
	if err != nil {
		return err
	}
	t.owned = true // frames are consumed within the loop iteration
	s.mu.Lock()
	s.live[t] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.live, t)
		s.mu.Unlock()
		t.stats.foldInto(&s.closed)
		t.release()
	}()
	for {
		_, method, req, err := t.readFrame()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.mu.RLock()
		h, ok := s.handlers[string(method)] // map lookup does not allocate
		s.mu.RUnlock()
		var resp []byte
		flags := byte(0)
		if !ok {
			flags = flagError
			resp = []byte(fmt.Sprintf("rpc: unknown method %q", method))
		} else if resp, err = h(req); err != nil {
			flags = flagError
			resp = []byte(err.Error())
		}
		t.stats.calls.Add(1)
		tmCalls.Add(1)
		if err := t.writeFrame(flags, method, resp); err != nil {
			return err
		}
	}
}

// Stats returns aggregate server-side traffic, including connections still
// in flight — the live view a telemetry scrape needs.
func (s *Server) Stats() Stats {
	var agg counters
	s.closed.foldInto(&agg)
	s.mu.RLock()
	for t := range s.live {
		t.stats.foldInto(&agg)
	}
	s.mu.RUnlock()
	return agg.snapshot()
}

// Client issues calls over one connection. Safe for concurrent use; calls
// are serialized.
type Client struct {
	mu   sync.Mutex
	t    *transport
	conn io.ReadWriter
}

// NewClient wraps an established connection. Both ends must use the same
// Compression configuration.
func NewClient(conn io.ReadWriter, comp Compression) (*Client, error) {
	t, err := newTransport(conn, comp)
	if err != nil {
		return nil, err
	}
	return &Client{t: t, conn: conn}, nil
}

// Close releases the client's pooled engine. The underlying connection is
// the caller's to close. Calls after Close fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.t.eng != nil {
		c.t.release()
		c.t.min = int(^uint(0) >> 1) // never try to compress again
	}
	return nil
}

// RemoteError is a handler-side failure relayed to the caller.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return e.Msg }

// Call sends a request and waits for its response.
func (c *Client) Call(method string, req []byte) ([]byte, error) {
	if method == "" {
		return nil, errors.New("rpc: empty method")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t.wmethod = append(c.t.wmethod[:0], method...)
	if err := c.t.writeFrame(0, c.t.wmethod, req); err != nil {
		return nil, err
	}
	flags, _, resp, err := c.t.readFrame()
	if err != nil {
		return nil, err
	}
	c.t.stats.calls.Add(1)
	tmCalls.Add(1)
	if flags&flagError != 0 {
		return nil, &RemoteError{Msg: string(resp)}
	}
	return resp, nil
}

// Stats returns the client's traffic counters. Safe to call concurrently
// with in-flight Calls.
func (c *Client) Stats() Stats {
	return c.t.stats.snapshot()
}
