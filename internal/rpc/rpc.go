// Package rpc is a service-to-service RPC transport with transparent
// per-message compression — the setting of the paper's introduction, where
// datacenter services exchange objects over RPC and compression trades CPU
// cycles for network bytes.
//
// Messages are length-delimited binary frames carrying an XXH64 integrity
// checksum over method and payload; payloads at or above a configurable
// threshold are compressed with the configured codec and flagged, so the
// peer decompresses only what was actually compressed (small messages skip
// the codec entirely, as fleet services do). The serving path is hardened
// for production failure modes: corrupt frames surface as ErrCorrupt (never
// a panic or a silently wrong payload), Client.Call takes a context whose
// deadline propagates into the connection, idempotent methods retry with
// exponential backoff behind a per-connection circuit breaker, and an
// overloaded server sheds compression work past a queue-depth threshold.
//
// Both ends account raw vs wire bytes and codec time with atomic counters
// and publish into the shared telemetry registry. Transports draw engines
// from a codec.Pool keyed by configuration, so connection churn does not
// pay engine construction.
package rpc

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/datacomp/datacomp/internal/adaptive"
	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/telemetry"
	"github.com/datacomp/datacomp/internal/trace"
	"github.com/datacomp/datacomp/internal/xxhash"
)

// Compression configures the transport's codec.
type Compression struct {
	// Codec names a registered codec; empty disables compression.
	Codec string
	// Level is the codec level (0 = codec default).
	Level int
	// MinSize skips compression for smaller payloads (default 256).
	MinSize int
	// Checksum additionally frames codec payloads with a content checksum
	// (codec.WithChecksum), verifying decompressed bytes end to end on top
	// of the always-on wire-frame checksum.
	Checksum bool
	// Adaptive routes payloads through a live-reoptimizing controller
	// instead of the static Codec/Level engine: each RPC method becomes
	// its own traffic class (AdaptiveClassPrefix + method) whose config
	// the controller retunes from reservoir samples. Frames are
	// self-describing, so both connection ends must use the same
	// controller (in-process) or controllers sharing dictionary state.
	// Codec and Level are ignored when set; MinSize still applies.
	Adaptive *adaptive.Controller
	// AdaptiveClassPrefix namespaces per-method classes (default "rpc:").
	AdaptiveClassPrefix string
}

func (c *Compression) fill() {
	if c.MinSize == 0 {
		c.MinSize = 256
	}
	if c.AdaptiveClassPrefix == "" {
		c.AdaptiveClassPrefix = "rpc:"
	}
}

// ErrCorrupt is the typed error for frames that fail integrity
// verification — a checksum mismatch, a malformed header, a truncated
// frame, or an undecodable payload. It aliases codec.ErrCorrupt so one
// errors.Is covers both layers.
var ErrCorrupt = codec.ErrCorrupt

// Frame-corruption detail errors, all wrapping ErrCorrupt.
var (
	errUnknownFlags = fmt.Errorf("%w: unknown frame flags", ErrCorrupt)
	errMethodLen    = fmt.Errorf("%w: method length out of range", ErrCorrupt)
	errFrameLen     = fmt.Errorf("%w: payload length out of range", ErrCorrupt)
	errHeader       = fmt.Errorf("%w: malformed frame header", ErrCorrupt)
	errTruncated    = fmt.Errorf("%w: truncated frame", ErrCorrupt)
	errSumMismatch  = fmt.Errorf("%w: frame checksum mismatch", ErrCorrupt)
)

// alignedError marks a frame error detected after the whole frame was
// consumed: the byte stream is still frame-aligned, so the connection
// remains usable. Errors without this mark leave the stream in an unknown
// position and the connection must be abandoned.
type alignedError struct{ err error }

func (e *alignedError) Error() string { return e.err.Error() }
func (e *alignedError) Unwrap() error { return e.err }

func aligned(err error) error { return &alignedError{err: err} }

// isAligned reports whether the connection survived the error.
func isAligned(err error) bool {
	var a *alignedError
	return errors.As(err, &a)
}

// Stats is a consistent snapshot of one endpoint's traffic.
type Stats struct {
	Calls          int64
	RawBytes       int64 // payload bytes before compression (both directions)
	WireBytes      int64 // payload bytes on the wire
	CompressTime   time.Duration
	DecompressTime time.Duration
}

// Saved reports the fraction of payload bytes removed by compression.
func (s Stats) Saved() float64 {
	if s.RawBytes == 0 {
		return 0
	}
	return 1 - float64(s.WireBytes)/float64(s.RawBytes)
}

// counters is the race-safe accumulator behind Stats. Counters are
// mutated from whichever goroutine touches the frame (reader or writer),
// so every field is an independent atomic; snapshot() assembles a Stats.
type counters struct {
	calls        atomic.Int64
	rawBytes     atomic.Int64
	wireBytes    atomic.Int64
	compressNS   atomic.Int64
	decompressNS atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Calls:          c.calls.Load(),
		RawBytes:       c.rawBytes.Load(),
		WireBytes:      c.wireBytes.Load(),
		CompressTime:   time.Duration(c.compressNS.Load()),
		DecompressTime: time.Duration(c.decompressNS.Load()),
	}
}

func (c *counters) foldInto(dst *counters) {
	dst.calls.Add(c.calls.Load())
	dst.rawBytes.Add(c.rawBytes.Load())
	dst.wireBytes.Add(c.wireBytes.Load())
	dst.compressNS.Add(c.compressNS.Load())
	dst.decompressNS.Add(c.decompressNS.Load())
}

// Package-level telemetry, registered once on first transport creation.
var (
	tmOnce            sync.Once
	tmCalls           *telemetry.Counter
	tmRawBytes        *telemetry.Counter
	tmWireBytes       *telemetry.Counter
	tmCompNS          *telemetry.Counter
	tmDecompNS        *telemetry.Counter
	tmFrameBytes      *telemetry.Histogram
	tmCallNS          *telemetry.Histogram
	tmCorrupt         *telemetry.Counter
	tmRetries         *telemetry.Counter
	tmBreakerOpen     *telemetry.Counter
	tmBreakerFastFail *telemetry.Counter
	tmShed            *telemetry.Counter
	tmDeadline        *telemetry.Counter
)

func tm() {
	tmOnce.Do(func() {
		r := telemetry.Default
		tmCalls = r.Counter("rpc_calls_total", "completed RPC calls")
		tmRawBytes = r.Counter("rpc_raw_bytes_total", "payload bytes before compression")
		tmWireBytes = r.Counter("rpc_wire_bytes_total", "payload bytes on the wire")
		tmCompNS = r.Counter("rpc_compress_ns_total", "time compressing RPC payloads")
		tmDecompNS = r.Counter("rpc_decompress_ns_total", "time decompressing RPC payloads")
		tmFrameBytes = r.Histogram("rpc_wire_frame_bytes", "wire payload size per frame", "bytes")
		tmCallNS = r.Histogram("rpc_call_ns", "client call latency end to end", "ns")
		// Exemplars link a tail-latency bucket to the trace that landed there.
		tmCallNS.EnableExemplars()
		tmCorrupt = r.Counter("rpc_corrupt_frames_total", "frames failing integrity verification")
		tmRetries = r.Counter("rpc_retries_total", "retried client calls")
		tmBreakerOpen = r.Counter("rpc_breaker_open_total", "circuit breaker open transitions")
		tmBreakerFastFail = r.Counter("rpc_breaker_fastfail_total", "calls rejected by an open circuit breaker")
		tmShed = r.Counter("rpc_shed_frames_total", "response frames sent uncompressed due to load shedding")
		tmDeadline = r.Counter("rpc_deadline_exceeded_total", "calls failed by context deadline or cancellation")
	})
}

// Frame layout (v2, with the v2.1 trace extension):
//
//	flags   1 byte   (flagCompressed | flagError | flagTrace; anything else
//	                  is corrupt)
//	trace   18 bytes trace span context (present iff flagTrace; see
//	                  trace.AppendWire for the field's own layout)
//	mlen    uvarint  method length (≤ maxMethod)
//	method  mlen bytes
//	plen    uvarint  wire payload length (≤ maxFrame)
//	sum     8 bytes  little-endian XXH64 over trace field (when present),
//	                  then method, then wire payload
//	payload plen bytes
//
// v1 frames had no checksum; the format changed because a transport that
// sits on latency-critical service paths must detect bit flips and
// truncation instead of delivering silently wrong bytes (see DESIGN.md).
//
// The trace field is version-gated by its flag bit: frames without
// flagTrace are byte-identical to plain v2 (including their checksum), so
// old frames decode unchanged here, while a pre-trace binary receiving a
// flagTrace frame rejects it as unknown-flags corruption rather than
// misparsing it — enabling tracing requires both ends at this version
// (DESIGN.md §9).
const (
	flagCompressed = 1 << 0
	flagError      = 1 << 1
	flagTrace      = 1 << 2

	flagsKnown = flagCompressed | flagError | flagTrace
)

const (
	maxFrame    = 64 << 20
	maxMethod   = 4096
	frameSumLen = 8
)

// transport frames and (de)compresses messages on one connection.
// The engine is single-goroutine (Client/Server serialize frame I/O), but
// the stats counters are safe to read concurrently.
//
// When owned is set (server side), readFrame returns method and payload
// slices backed by the transport's scratch buffers, valid only until the
// next readFrame — the serve loop fully consumes each frame before reading
// the next, so steady-state serving allocates nothing per frame. Client
// transports leave owned unset because Call hands the response payload to
// the caller, which keeps it.
type transport struct {
	r       *bufio.Reader
	w       *bufio.Writer
	eng     codec.Engine         // nil = no compression
	pool    *codec.Pool          // where eng came from, for release()
	actrl   *adaptive.Controller // non-nil = per-method adaptive compression
	aprefix string
	ahnd    map[string]*adaptive.Handle // method → class handle cache
	min     int
	owned   bool
	shed    func() bool // when non-nil and true, skip compression (overload)
	stats   counters
	buf     []byte // compression scratch (write side)
	mbuf    []byte // method scratch (read side)
	rbuf    []byte // wire-payload scratch (read side)
	dbuf    []byte // decompression scratch (read side, owned only)
	wmethod []byte // method scratch (write side, avoids string→[]byte churn)

	// Tracing state. cur is the span the owner (Client.Call attempt or
	// server request loop) is inside of; the frame codecs hang their
	// compress/decompress spans and per-stage children off it. wsc is the
	// span context the next outbound frame should carry; rsc is what the
	// last inbound frame carried. All single-goroutine, like the engine.
	tracer *trace.Tracer
	cur    trace.SpanHandle
	stages trace.StageSpans
	wsc    trace.SpanContext
	rsc    trace.SpanContext
	tbuf   [trace.WireLen]byte // wire trace-field scratch (both sides)
}

func newTransport(conn io.ReadWriter, comp Compression, tracer *trace.Tracer) (*transport, error) {
	comp.fill()
	tm()
	t := &transport{
		r:      bufio.NewReader(conn),
		w:      bufio.NewWriter(conn),
		min:    comp.MinSize,
		tracer: tracer,
	}
	if comp.Adaptive != nil {
		t.actrl = comp.Adaptive
		t.aprefix = comp.AdaptiveClassPrefix
		t.ahnd = make(map[string]*adaptive.Handle, 4)
		return t, nil
	}
	if comp.Codec != "" {
		c, ok := codec.Lookup(comp.Codec)
		if !ok {
			return nil, fmt.Errorf("rpc: unknown codec %q", comp.Codec)
		}
		level := comp.Level
		if level == 0 {
			_, _, level = c.Levels()
		}
		pool, err := codec.SharedPool(comp.Codec, codec.Options{Level: level, Checksum: comp.Checksum})
		if err != nil {
			return nil, err
		}
		t.pool = pool
		t.eng = pool.Get()
		if tracer.Enabled() {
			// Per-stage child spans under whatever span is bound at
			// compress/decompress time. Pool.Put clears the hook on release,
			// so a recycled engine never fires into a dead transport.
			if h, ok := t.eng.(codec.StageHooker); ok {
				h.SetStageHook(t.stages.Hook)
			}
		}
	}
	return t, nil
}

// release returns the engine to its pool. Safe to call more than once.
func (t *transport) release() {
	if t.pool != nil && t.eng != nil {
		t.pool.Put(t.eng)
		t.eng = nil
		t.pool = nil
	}
}

// adaptiveHandle resolves the class handle for a method, caching per
// transport so steady-state frames pay one map lookup (alloc-free: Go map
// reads with a string([]byte) key do not copy). Like eng, the cache is
// touched only by the transport's owning goroutine.
func (t *transport) adaptiveHandle(method []byte) (*adaptive.Handle, error) {
	if h, ok := t.ahnd[string(method)]; ok {
		return h, nil
	}
	class := t.aprefix + string(method)
	h, err := t.actrl.Handle(class)
	if err != nil {
		return nil, err
	}
	t.ahnd[string(method)] = h
	return h, nil
}

// frameSum hashes what the checksum covers: the trace field when present,
// then method bytes, then the exact bytes that ride the wire as payload. A
// frame without a trace field hashes identically to the pre-trace format.
func frameSum(trc, method, wire []byte) uint64 {
	var d xxhash.Digest
	d.Reset()
	d.Write(trc)
	d.Write(method)
	d.Write(wire)
	return d.Sum64()
}

// writeFrame sends flags, method and payload, compressing when worthwhile
// and not shedding, and stamps the frame checksum. When a trace context is
// staged (t.wsc), the frame carries it and flags it; the context is
// consumed so response frames never echo it back.
func (t *transport) writeFrame(flags byte, method, payload []byte) error {
	wire := payload
	if (t.eng != nil || t.actrl != nil) && len(payload) >= t.min {
		if t.shed != nil && t.shed() {
			tmShed.Inc()
			t.cur.Event("rpc.shed")
		} else {
			sp := t.cur.Child("rpc.compress") // zero handle when untraced
			t.stages.Bind(sp)
			t0 := time.Now()
			var out []byte
			var err error
			if t.actrl != nil {
				var h *adaptive.Handle
				if h, err = t.adaptiveHandle(method); err == nil {
					out, err = h.Compress(t.buf[:0], payload)
				}
			} else {
				out, err = t.eng.Compress(t.buf[:0], payload)
			}
			ns := time.Since(t0).Nanoseconds()
			t.stats.compressNS.Add(ns)
			tmCompNS.Add(ns)
			t.stages.Finish()
			if err != nil {
				sp.End()
				return err
			}
			t.buf = out
			if len(out) < len(payload) {
				wire = out
				flags |= flagCompressed
			}
			sp.SetInt("raw", int64(len(payload))).SetInt("wire", int64(len(wire))).End()
		}
	}
	var trc []byte
	if t.wsc.Valid() {
		trc = trace.AppendWire(t.tbuf[:0], t.wsc)
		flags |= flagTrace
		t.wsc = trace.SpanContext{}
	}
	var hdr [binary.MaxVarintLen64]byte
	if err := t.w.WriteByte(flags); err != nil {
		return err
	}
	if _, err := t.w.Write(trc); err != nil {
		return err
	}
	if _, err := t.w.Write(hdr[:binary.PutUvarint(hdr[:], uint64(len(method)))]); err != nil {
		return err
	}
	if _, err := t.w.Write(method); err != nil {
		return err
	}
	if _, err := t.w.Write(hdr[:binary.PutUvarint(hdr[:], uint64(len(wire)))]); err != nil {
		return err
	}
	var sum [frameSumLen]byte
	binary.LittleEndian.PutUint64(sum[:], frameSum(trc, method, wire))
	if _, err := t.w.Write(sum[:]); err != nil {
		return err
	}
	if _, err := t.w.Write(wire); err != nil {
		return err
	}
	t.stats.rawBytes.Add(int64(len(payload)))
	t.stats.wireBytes.Add(int64(len(wire)))
	tmRawBytes.Add(int64(len(payload)))
	tmWireBytes.Add(int64(len(wire)))
	tmFrameBytes.Observe(int64(len(wire)))
	return t.w.Flush()
}

// corruptFrame counts and returns a frame-integrity failure.
func corruptFrame(err error) error {
	tmCorrupt.Inc()
	return err
}

// midFrame maps an I/O error that happened inside a frame: EOF at that
// point is truncation, which is corruption, not a clean close.
func midFrame(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return corruptFrame(errTruncated)
	}
	return err
}

// readHeaderUvarint reads a length field. Any decode failure that is not
// plain I/O — e.g. a varint overflowing 64 bits — means the header bytes
// themselves are garbage, which is corruption.
func (t *transport) readHeaderUvarint() (uint64, error) {
	n, err := binary.ReadUvarint(t.r)
	if err == nil {
		return n, nil
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return 0, corruptFrame(errTruncated)
	}
	var ne net.Error
	if errors.As(err, &ne) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
		return 0, err // connection-level failure, not frame corruption
	}
	return 0, corruptFrame(errHeader)
}

// readFrame receives one message, verifying the frame checksum and
// decompressing as flagged. On an owned transport, method and payload alias
// scratch buffers valid until the next readFrame; otherwise the payload is
// freshly allocated for the caller.
func (t *transport) readFrame() (flags byte, method, payload []byte, err error) {
	t.rsc = trace.SpanContext{}
	flags, err = t.r.ReadByte()
	if err != nil {
		return 0, nil, nil, err // clean EOF between frames is a close
	}
	if flags&^flagsKnown != 0 {
		return 0, nil, nil, corruptFrame(errUnknownFlags)
	}
	var trc []byte
	if flags&flagTrace != 0 {
		trc = t.tbuf[:]
		if _, err := io.ReadFull(t.r, trc); err != nil {
			return 0, nil, nil, midFrame(err)
		}
		sc, _, err := trace.ParseWire(trc)
		if err != nil {
			// The rest of the frame is unread, so no aligned marker: the
			// connection is abandoned rather than resynchronized.
			return 0, nil, nil, corruptFrame(fmt.Errorf("%w: %v", ErrCorrupt, err))
		}
		t.rsc = sc
	}
	mlen, err := t.readHeaderUvarint()
	if err != nil {
		return 0, nil, nil, err
	}
	if mlen > maxMethod {
		return 0, nil, nil, corruptFrame(errMethodLen)
	}
	if uint64(cap(t.mbuf)) < mlen {
		t.mbuf = make([]byte, mlen)
	}
	mbuf := t.mbuf[:mlen]
	if _, err := io.ReadFull(t.r, mbuf); err != nil {
		return 0, nil, nil, midFrame(err)
	}
	plen, err := t.readHeaderUvarint()
	if err != nil {
		return 0, nil, nil, err
	}
	if plen > maxFrame {
		return 0, nil, nil, corruptFrame(errFrameLen)
	}
	var sum [frameSumLen]byte
	if _, err := io.ReadFull(t.r, sum[:]); err != nil {
		return 0, nil, nil, midFrame(err)
	}
	compressed := flags&flagCompressed != 0
	var pbuf []byte
	if t.owned || compressed {
		// Wire bytes are scratch: either the frame is consumed in place
		// (owned) or decompression copies out of them below.
		if uint64(cap(t.rbuf)) < plen {
			t.rbuf = make([]byte, plen)
		}
		pbuf = t.rbuf[:plen]
	} else {
		pbuf = make([]byte, plen)
	}
	if _, err := io.ReadFull(t.r, pbuf); err != nil {
		return 0, nil, nil, midFrame(err)
	}
	if frameSum(trc, mbuf, pbuf) != binary.LittleEndian.Uint64(sum[:]) {
		// The whole frame was consumed before verification failed, so the
		// stream is still aligned.
		return 0, nil, nil, aligned(corruptFrame(errSumMismatch))
	}
	t.stats.wireBytes.Add(int64(len(pbuf)))
	tmWireBytes.Add(int64(len(pbuf)))
	if compressed {
		if t.eng == nil && t.actrl == nil {
			return 0, nil, nil, aligned(corruptFrame(fmt.Errorf("%w: compressed frame on uncompressed transport", ErrCorrupt)))
		}
		dst := []byte(nil)
		if t.owned {
			dst = t.dbuf[:0]
		}
		sp := t.cur.Child("rpc.decompress") // zero handle when untraced
		t.stages.Bind(sp)
		t0 := time.Now()
		var out []byte
		var err error
		if t.actrl != nil {
			var h *adaptive.Handle
			if h, err = t.adaptiveHandle(mbuf); err == nil {
				out, err = h.Decompress(dst, pbuf)
			}
		} else {
			out, err = t.eng.Decompress(dst, pbuf)
		}
		ns := time.Since(t0).Nanoseconds()
		t.stats.decompressNS.Add(ns)
		tmDecompNS.Add(ns)
		t.stages.Finish()
		if err != nil {
			sp.End()
			// codec decode errors wrap codec.ErrCorrupt; the frame itself
			// was consumed, so the connection stays aligned.
			return 0, nil, nil, aligned(corruptFrame(err))
		}
		sp.SetInt("wire", int64(len(pbuf))).SetInt("raw", int64(len(out))).End()
		if t.owned {
			t.dbuf = out
		}
		pbuf = out
	}
	t.stats.rawBytes.Add(int64(len(pbuf)))
	tmRawBytes.Add(int64(len(pbuf)))
	return flags, mbuf, pbuf, nil
}

// EncodeFrame renders one uncompressed frame to bytes — the writer half of
// the wire format, exposed for fuzzing and tests.
func EncodeFrame(flags byte, method string, payload []byte) []byte {
	tm()
	var buf bytes.Buffer
	t := &transport{w: bufio.NewWriter(&buf), min: int(^uint(0) >> 1)}
	if err := t.writeFrame(flags, []byte(method), payload); err != nil {
		// A bytes.Buffer write cannot fail; a failure here is a programming
		// error in the frame writer itself.
		panic(err)
	}
	return buf.Bytes()
}

// EncodeFrameWithTrace renders one uncompressed frame carrying a wire trace
// context — the flagTrace variant of EncodeFrame, exposed for fuzz seeding
// and frame-format tests. An invalid sc encodes a plain frame.
func EncodeFrameWithTrace(flags byte, method string, payload []byte, sc trace.SpanContext) []byte {
	tm()
	var buf bytes.Buffer
	t := &transport{w: bufio.NewWriter(&buf), min: int(^uint(0) >> 1)}
	t.wsc = sc
	if err := t.writeFrame(flags, []byte(method), payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// ParseFrame decodes one frame from data with no codec configured — the
// parser half of the wire format, exposed for fuzzing and tests. Arbitrary
// input must yield an error, never a panic.
func ParseFrame(data []byte) (flags byte, method, payload []byte, err error) {
	flags, method, payload, _, err = ParseFrameTrace(data)
	return flags, method, payload, err
}

// ParseFrameTrace is ParseFrame plus the frame's wire trace context (the
// zero SpanContext when the frame carried none).
func ParseFrameTrace(data []byte) (flags byte, method, payload []byte, sc trace.SpanContext, err error) {
	tm()
	t := &transport{r: bufio.NewReader(bytes.NewReader(data))}
	flags, method, payload, err = t.readFrame()
	return flags, method, payload, t.rsc, err
}
