package rpc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/datacomp/datacomp/internal/trace"
)

// HandlerFunc serves one method: it receives the request's context and
// payload and returns the response payload. When the inbound frame carried
// a sampled trace context and the server has a tracer, ctx carries the
// request's server-half span, so everything the handler calls through
// context-aware codec paths lands in the trace. Handlers that ignore the
// context can wrap a plain func with Func.
type HandlerFunc func(ctx context.Context, req []byte) ([]byte, error)

// Func adapts a context-free function to a HandlerFunc, for handlers whose
// work has no cancelable or traceable substeps.
func Func(h func(req []byte) ([]byte, error)) HandlerFunc {
	return func(_ context.Context, req []byte) ([]byte, error) { return h(req) }
}

// Handler is the v1 context-free handler form.
//
// Deprecated: use HandlerFunc (wrap existing functions with Func).
type Handler = func(req []byte) ([]byte, error)

// HandlerCtx is the v1 name for the context-aware handler form.
//
// Deprecated: use HandlerFunc; the two are identical.
type HandlerCtx = HandlerFunc

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithShedThreshold enables load shedding: while more than n requests are
// in flight across the server's connections, responses skip compression
// and go out as raw payloads. Compression is the serving path's main CPU
// cost, so shedding it converts an overloaded server into a
// more-bytes-but-alive one instead of a queue collapse. 0 disables.
func WithShedThreshold(n int) ServerOption {
	return func(s *Server) { s.shedAt = int64(n) }
}

// WithServerTracer enables server-side tracing: requests whose frame
// carries a sampled trace context get an "rpc.serve" span recorded as the
// local half of the caller's trace (stitched by trace ID at export). A nil
// tracer is a no-op.
func WithServerTracer(tr *trace.Tracer) ServerOption {
	return func(s *Server) { s.tracer = tr }
}

// Server dispatches method handlers over any number of connections.
type Server struct {
	comp     Compression
	shedAt   int64 // inflight threshold; 0 = never shed
	tracer   *trace.Tracer
	inflight atomic.Int64

	mu       sync.RWMutex
	handlers map[string]HandlerFunc
	live     map[*transport]struct{}
	closed   counters
}

// NewServer builds a server with the given transport compression.
func NewServer(comp Compression, opts ...ServerOption) *Server {
	s := &Server{
		comp:     comp,
		handlers: make(map[string]HandlerFunc),
		live:     make(map[*transport]struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Register installs the handler for method. Every handler is ctx-first;
// wrap context-free functions with Func.
func (s *Server) Register(method string, h HandlerFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// RegisterCtx installs a context-aware handler for method.
//
// Deprecated: Register now takes the ctx-first HandlerFunc directly.
func (s *Server) RegisterCtx(method string, h HandlerFunc) { s.Register(method, h) }

// shedding reports whether response compression should be skipped right
// now. Called by the transport on every response write.
func (s *Server) shedding() bool {
	return s.shedAt > 0 && s.inflight.Load() > s.shedAt
}

// Serve accepts connections until the listener closes. Each connection is
// served under ctx; when ctx ends, in-flight connections unblock.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			_ = s.ServeConn(ctx, conn)
			conn.Close()
		}()
	}
}

// ServeConn handles one connection until EOF, a transport error, or ctx
// ending. A corrupt inbound frame terminates the connection with an error
// wrapping ErrCorrupt — the server never acts on unverified bytes.
func (s *Server) ServeConn(ctx context.Context, conn io.ReadWriter) error {
	if ctx == nil {
		ctx = context.Background()
	}
	t, err := newTransport(conn, s.comp, s.tracer)
	if err != nil {
		return err
	}
	t.owned = true // frames are consumed within the loop iteration
	t.shed = s.shedding
	s.mu.Lock()
	s.live[t] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.live, t)
		s.mu.Unlock()
		t.stats.foldInto(&s.closed)
		t.release()
	}()
	if ctx.Done() != nil {
		// Unblock the serve loop when ctx ends: force past read AND write
		// deadlines on net conns (a response flush can be mid-write into a
		// pipe whose client already gave up), or close anything closable.
		stop := context.AfterFunc(ctx, func() {
			if nc, ok := conn.(net.Conn); ok {
				nc.SetReadDeadline(time.Unix(1, 0))
				nc.SetWriteDeadline(time.Unix(1, 0))
			} else if cl, ok := conn.(io.Closer); ok {
				cl.Close()
			}
		})
		defer stop()
	}
	for {
		_, method, req, err := t.readFrame()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.inflight.Add(1)
		// A sampled inbound trace context opens this request's server-half
		// span; the handler sees it via ctx, and the response-compress span
		// nests under it through t.cur.
		hctx := ctx
		var serve trace.SpanHandle
		if t.rsc.Valid() {
			hctx, serve = s.tracer.StartRemote(ctx, "rpc.serve", t.rsc)
			serve.SetStr("method", string(method))
			t.cur = serve
		}
		s.mu.RLock()
		h, ok := s.handlers[string(method)] // map lookup does not allocate
		s.mu.RUnlock()
		var resp []byte
		flags := byte(0)
		if !ok {
			flags = flagError
			resp = []byte(fmt.Sprintf("rpc: unknown method %q", method))
		} else if resp, err = h(hctx, req); err != nil {
			flags = flagError
			resp = []byte(err.Error())
		}
		t.stats.calls.Add(1)
		tmCalls.Inc()
		err = t.writeFrame(flags, method, resp)
		if serve.Valid() {
			if flags&flagError != 0 {
				serve.SetStr("error", string(resp))
			}
			serve.End()
			t.cur = trace.SpanHandle{}
		}
		s.inflight.Add(-1)
		if err != nil {
			return err
		}
	}
}

// ServeConnLegacy handles one connection without a context.
//
// Deprecated: use ServeConn with a context; this wrapper exists for the
// v1 API and uses context.Background().
func (s *Server) ServeConnLegacy(conn io.ReadWriter) error {
	return s.ServeConn(context.Background(), conn)
}

// Stats returns aggregate server-side traffic, including connections still
// in flight — the live view a telemetry scrape needs.
func (s *Server) Stats() Stats {
	var agg counters
	s.closed.foldInto(&agg)
	s.mu.RLock()
	for t := range s.live {
		t.stats.foldInto(&agg)
	}
	s.mu.RUnlock()
	return agg.snapshot()
}
