package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
)

// Batched method payloads. Small RPC bodies are the paper's dominant
// compression workload, and they are exactly where per-frame overhead
// (frame header + checksum, a compression dispatch, a syscall-sized write)
// is largest relative to the work. A batch envelope packs N payloads into
// one frame: the transport compresses the concatenation — small items that
// would individually duck under Compression.MinSize now share one codec
// dispatch and compress against each other — and the server unpacks,
// serves every item with one handler lookup, and packs the responses.
//
// Envelope layout (request): uvarint item count, then per item a uvarint
// length + body. Response items additionally lead with one status byte
// (batchOK or batchErr); an error item's body is the handler's error text.
// Per-item failures never fail the batch: CallBatch surfaces them in its
// errs slice, positionally aligned with the requests.

const (
	batchOK  = 0
	batchErr = 1
	// maxBatchItems bounds the decoded item count before any allocation,
	// so a hostile envelope can't size a huge slice from a tiny frame.
	maxBatchItems = 1 << 20
)

var errBatchEnvelope = fmt.Errorf("%w: malformed batch envelope", ErrCorrupt)

// PackBatch appends a batch envelope holding items to dst.
func PackBatch(dst []byte, items [][]byte) []byte {
	var tmp [binary.MaxVarintLen64]byte
	dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(len(items)))]...)
	for _, it := range items {
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(len(it)))]...)
		dst = append(dst, it...)
	}
	return dst
}

// UnpackBatch splits a batch envelope, appending one subslice of data per
// item to items (pass a reused slice to avoid allocation). The subslices
// alias data.
func UnpackBatch(data []byte, items [][]byte) ([][]byte, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 || count > maxBatchItems {
		return nil, errBatchEnvelope
	}
	pos := n
	for i := uint64(0); i < count; i++ {
		sz, k := binary.Uvarint(data[pos:])
		if k <= 0 || sz > uint64(len(data)-pos-k) {
			return nil, errBatchEnvelope
		}
		pos += k
		items = append(items, data[pos:pos+int(sz)])
		pos += int(sz)
	}
	if pos != len(data) {
		return nil, errBatchEnvelope
	}
	return items, nil
}

// CallBatch sends every request in one frame to a method registered with
// RegisterBatch and returns the per-item responses. resps and errs are
// positionally aligned with reqs; errs[i] is non-nil when the server's
// handler failed that item (the batch itself still succeeds). The returned
// error covers transport-level failures only.
func (c *Client) CallBatch(ctx context.Context, method string, reqs [][]byte) (resps [][]byte, errs []error, err error) {
	payload := PackBatch(nil, reqs)
	raw, err := c.Call(ctx, method, payload)
	if err != nil {
		return nil, nil, err
	}
	items, err := UnpackBatch(raw, make([][]byte, 0, len(reqs)))
	if err != nil {
		return nil, nil, err
	}
	if len(items) != len(reqs) {
		return nil, nil, fmt.Errorf("%w: batch response has %d items, want %d", ErrCorrupt, len(items), len(reqs))
	}
	resps = make([][]byte, len(items))
	errs = make([]error, len(items))
	failed := false
	for i, it := range items {
		if len(it) == 0 {
			return nil, nil, errBatchEnvelope
		}
		switch it[0] {
		case batchOK:
			resps[i] = it[1:]
		case batchErr:
			errs[i] = errors.New(string(it[1:]))
			failed = true
		default:
			return nil, nil, errBatchEnvelope
		}
	}
	if !failed {
		errs = nil
	}
	return resps, errs, nil
}

// RegisterBatch installs h as a batched method: requests arrive packed N to
// a frame, h serves each item, and the per-item responses (or errors) ride
// back in one frame. The per-item handler is the same shape as Register's,
// so a service exposes the same logic under both a unary and a batched
// method name.
func (s *Server) RegisterBatch(method string, h HandlerFunc) {
	s.Register(method, func(ctx context.Context, req []byte) ([]byte, error) {
		items, err := UnpackBatch(req, nil)
		if err != nil {
			return nil, err
		}
		var tmp [binary.MaxVarintLen64]byte
		out := append([]byte(nil), tmp[:binary.PutUvarint(tmp[:], uint64(len(items)))]...)
		for _, it := range items {
			resp, herr := h(ctx, it)
			body := resp
			status := byte(batchOK)
			if herr != nil {
				status = batchErr
				body = []byte(herr.Error())
			}
			out = append(out, tmp[:binary.PutUvarint(tmp[:], uint64(1+len(body)))]...)
			out = append(out, status)
			out = append(out, body...)
		}
		return out, nil
	})
}
