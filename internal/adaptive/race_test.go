package adaptive

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/datacomp/datacomp/internal/core"
	"github.com/datacomp/datacomp/internal/corpus"
)

// TestSwapHammer drives concurrent compress/decompress traffic through a
// handle while generations swap every few milliseconds — the satellite
// race gate. Run under -race in CI. Every frame must decode without error,
// to the exact payload, and its header must name the generation that was
// serving when it was encoded.
func TestSwapHammer(t *testing.T) {
	c := testController(t, Config{RetainGenerations: 2})
	h, err := c.Handle("hammer")
	if err != nil {
		t.Fatal(err)
	}
	// The controller worker also runs, competing with the explicit swapper
	// below for adoption; both paths must be safe together.
	c.Start()

	payloads := [][]byte{
		corpus.LogLines(11, 4<<10),
		corpus.Records(12, 4<<10),
		corpus.SourceCode(13, 4<<10),
	}
	configs := []core.Config{
		{Algorithm: "zstd", Level: 1},
		{Algorithm: "lz4", Level: 1},
		{Algorithm: "zstd", Level: 6},
		{Algorithm: "zlib", Level: 1},
		{Algorithm: "zstd", Level: 3, WindowLog: 16},
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var decodes, oldGen atomic.Uint64

	// Swapper: a new generation every 2ms.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if err := h.adopt(core.Result{Config: configs[i%len(configs)], Feasible: true}); err != nil {
				t.Errorf("adopt: %v", err)
				return
			}
			i++
		}
	}()

	// Hammerers: compress, parse, decompress, verify — reusing buffers the
	// way a serving loop would.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var comp, out []byte
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				src := payloads[(w+i)%len(payloads)]
				lo := h.Generation() // current gen before encode
				var err error
				comp, err = h.Compress(comp[:0], src)
				if err != nil {
					t.Errorf("compress: %v", err)
					return
				}
				hi := h.Generation() // swaps during encode land in [lo, hi]
				gen, _, _, _, ok, err := ParseFrame(comp)
				if err != nil || !ok {
					t.Errorf("parse: ok=%v err=%v", ok, err)
					return
				}
				if gen < lo || gen > hi {
					t.Errorf("frame generation %d outside window [%d, %d]", gen, lo, hi)
					return
				}
				out, err = h.Decompress(out[:0], comp)
				if err != nil {
					t.Errorf("decompress gen %d (current %d): %v", gen, h.Generation(), err)
					return
				}
				if !bytes.Equal(out, src) {
					t.Errorf("roundtrip mismatch at gen %d", gen)
					return
				}
				decodes.Add(1)
				if gen != h.Generation() {
					oldGen.Add(1)
				}
			}
		}(w)
	}

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if decodes.Load() == 0 {
		t.Fatal("no frames exercised")
	}
	if h.Generation() < 5 {
		t.Fatalf("only %d generations churned; swapper too slow for the race to mean anything", h.Generation())
	}
	if oldGen.Load() == 0 {
		t.Fatal("no frame ever decoded under a retired generation; race surface not exercised")
	}
	t.Logf("hammer: %d decodes across %d generations (%d via retired gens, %d drops)",
		decodes.Load(), h.Generation(), oldGen.Load(), h.sampleDrops.Load())
}
