package adaptive

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Adaptive frames are self-describing so a reader never needs the writer's
// controller state to pick a decoder: the header names the generation that
// encoded the frame plus everything required to rebuild its engine (codec
// identity and dictionary ID). That is what lets the controller evict
// encoder pools for retired generations — the discipline mirrors
// internal/managed, where every trained dictionary generation stays
// resolvable from the ID embedded in the frame.
//
//	adaptive frame:  0xAD | uvarint generation | codec ID byte | uvarint dict ID | payload
//	degraded frame:  0xAC | degrader rung tag  | payload
//
// The degraded form is written while the class's codec.Degrader sits below
// its top rung: under latency pressure the degrader owns the serving codec
// outright (its rung tag names the ladder engine), and the controller holds
// config swaps until pressure clears.
const (
	magicAdaptive = 0xAD
	magicDegraded = 0xAC
)

// Codec identity bytes. The wire format admits new codecs by appending;
// IDs are frozen once released, like the degrader's ladder tags.
const (
	codecInvalid byte = iota
	codecZstd
	codecLZ4
	codecZlib
	codecGraph
)

var codecNames = [...]string{codecZstd: "zstd", codecLZ4: "lz4", codecZlib: "zlib", codecGraph: "graph"}

func codecIDOf(name string) byte {
	for id, n := range codecNames {
		if n == name {
			return byte(id)
		}
	}
	return codecInvalid
}

func codecNameOf(id byte) string {
	if int(id) < len(codecNames) {
		return codecNames[id]
	}
	return ""
}

// ErrFrame reports a payload that is not a well-formed adaptive frame.
var ErrFrame = errors.New("adaptive: malformed frame")

// appendHeader encodes the adaptive frame header.
func appendHeader(dst []byte, gen uint64, codecID byte, dictID uint32) []byte {
	dst = append(dst, magicAdaptive)
	dst = binary.AppendUvarint(dst, gen)
	dst = append(dst, codecID)
	return binary.AppendUvarint(dst, uint64(dictID))
}

// ParseFrame splits an adaptive frame into its descriptor and payload.
// Degraded frames return ok=false with no error: the caller routes them to
// the class degrader. Exported so tests and tooling can assert which
// generation encoded a frame.
func ParseFrame(src []byte) (gen uint64, codecID byte, dictID uint32, payload []byte, ok bool, err error) {
	if len(src) == 0 {
		return 0, 0, 0, nil, false, ErrFrame
	}
	switch src[0] {
	case magicDegraded:
		return 0, 0, 0, src[1:], false, nil
	case magicAdaptive:
	default:
		return 0, 0, 0, nil, false, fmt.Errorf("%w: magic 0x%02x", ErrFrame, src[0])
	}
	rest := src[1:]
	gen, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, 0, 0, nil, false, fmt.Errorf("%w: generation varint", ErrFrame)
	}
	rest = rest[n:]
	if len(rest) < 1 {
		return 0, 0, 0, nil, false, fmt.Errorf("%w: missing codec id", ErrFrame)
	}
	codecID = rest[0]
	if codecNameOf(codecID) == "" {
		return 0, 0, 0, nil, false, fmt.Errorf("%w: codec id 0x%02x", ErrFrame, codecID)
	}
	rest = rest[1:]
	d, n := binary.Uvarint(rest)
	if n <= 0 || d > 0xFFFFFFFF {
		return 0, 0, 0, nil, false, fmt.Errorf("%w: dict id varint", ErrFrame)
	}
	return gen, codecID, uint32(d), rest[n:], true, nil
}
