package adaptive

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/core"
	"github.com/datacomp/datacomp/internal/telemetry"
	"github.com/datacomp/datacomp/internal/zstd"
)

// generation is one immutable serving configuration. The handle publishes
// the current generation through an atomic pointer; a swap builds a fresh
// generation and stores it, so the hot path never takes a lock and never
// observes a half-updated config. Retired generations stay decodable
// forever (the frame header carries everything a decoder needs) even after
// their encoder pool is evicted from the shared registry.
type generation struct {
	gen     uint64
	cfg     core.Config
	codecID byte
	dictID  uint32
	pool    *codec.Pool // refcounted via codec.AcquireShared
	hdr     []byte      // precomputed frame header
	// Adoption-time evidence, surfaced in ClassStatus.
	result   core.Result
	feasible bool
}

// decPoolKey identifies a decode-side engine: decompression is insensitive
// to level and window, so retired generations that differ only in those
// share one pool — the reason cycling N configs keeps pool counts bounded.
type decPoolKey struct {
	codecID byte
	dictID  uint32
}

// Handle is the per-traffic-class serving endpoint: a codec.Engine whose
// configuration is swapped live by the Controller. Unlike raw engines a
// Handle is safe for concurrent use; it checks out single-goroutine
// engines from the current generation's pool per call.
type Handle struct {
	class string
	ctrl  *Controller

	cur     atomic.Pointer[generation]
	nextGen atomic.Uint64

	// Reservoir (Vitter's algorithm R over every sampleEvery-th call).
	// The hot path pays one atomic increment; the sampled call pays a
	// TryLock and a bounded copy into a recycled slot, and drops the
	// sample on contention rather than ever blocking serving traffic.
	ops         atomic.Uint64
	sampleMask  uint64
	sampleBytes int
	resMu       sync.Mutex
	slots       [][]byte
	offered     uint64 // samples offered to the reservoir (algorithm R's t)
	rng         uint64

	// Retired generations, newest last; bounded by RetainGenerations.
	// Guarded by swapMu (swaps are controller-only and rare).
	swapMu  sync.Mutex
	retired []*generation

	// Decode pools for frames from non-current generations, bounded LRU.
	decMu     sync.Mutex
	decPools  map[decPoolKey]*codec.Pool
	decOrder  []decPoolKey
	dicts     map[uint32][]byte // every dictionary ever adopted, by zstd.DictID
	maxDecode int

	// Degrader composition: when attached and below its top rung, frames
	// route through the ladder (magicDegraded) and swaps are held.
	// Degraders are single-goroutine, so degMu serializes every method
	// call; the pointer itself and the pressure flag are atomics so the
	// fast path can branch without the lock.
	degMu     sync.Mutex
	deg       atomic.Pointer[codec.Degrader]
	pressured atomic.Bool

	// Shadow state owned by the controller worker (single goroutine).
	shadow      *core.CompEngine
	trialBuf    [][]byte
	nextCand    int
	dictCand    core.Config
	haveDict    bool
	sinceTrain  int
	curGauge    *telemetry.Gauge
	lastReport  atomic.Pointer[Decision]
	swaps       atomic.Uint64
	decodeOld   atomic.Uint64
	decodeCur   atomic.Uint64
	sampleDrops atomic.Uint64
}

// newHandle builds a handle serving cfg as generation 1.
func newHandle(ctrl *Controller, class string, cfg core.Config) (*Handle, error) {
	h := &Handle{
		class:       class,
		ctrl:        ctrl,
		sampleMask:  uint64(ctrl.cfg.SampleEvery) - 1,
		sampleBytes: ctrl.cfg.SampleBytes,
		slots:       make([][]byte, 0, ctrl.cfg.ReservoirSize),
		decPools:    make(map[decPoolKey]*codec.Pool),
		dicts:       make(map[uint32][]byte),
		maxDecode:   ctrl.cfg.RetainGenerations * 2,
		rng:         0x9E3779B97F4A7C15,
		shadow: &core.CompEngine{
			Params:      ctrl.cfg.Params,
			Constraints: ctrl.cfg.Constraints,
		},
	}
	g, err := h.newGeneration(core.Result{Config: cfg, Feasible: true})
	if err != nil {
		return nil, err
	}
	h.cur.Store(g)
	return h, nil
}

// Class returns the traffic-class name.
func (h *Handle) Class() string { return h.class }

// Generation returns the current generation number.
func (h *Handle) Generation() uint64 { return h.cur.Load().gen }

// Config returns the currently serving configuration.
func (h *Handle) Config() core.Config { return h.cur.Load().cfg }

// AttachDegrader composes a latency degrader with this class. While the
// degrader sits below its top rung it owns the serving codec (frames carry
// its rung tag) and the controller holds swaps; at the top rung the handle
// serves the adaptive config and feeds its compress latencies into the
// degrader's pressure tracker so the two stay on one ladder.
func (h *Handle) AttachDegrader(d *codec.Degrader) {
	h.degMu.Lock()
	h.deg.Store(d)
	h.pressured.Store(d != nil && d.Pressured())
	h.degMu.Unlock()
}

// Pressured reports whether the attached degrader currently owns the
// serving codec.
func (h *Handle) Pressured() bool { return h.pressured.Load() }

func (h *Handle) newGeneration(r core.Result) (*generation, error) {
	cfg := r.Config
	id := codecIDOf(cfg.Algorithm)
	if id == codecInvalid {
		return nil, fmt.Errorf("adaptive: codec %q has no wire id", cfg.Algorithm)
	}
	var dictID uint32
	if len(cfg.Dict) > 0 {
		if cfg.Algorithm != "zstd" {
			return nil, fmt.Errorf("adaptive: dictionaries require zstd, got %q", cfg.Algorithm)
		}
		dictID = zstd.DictID(cfg.Dict)
	}
	pool, err := codec.AcquireShared(cfg.Algorithm, codec.Options{
		Level:     cfg.Level,
		WindowLog: cfg.WindowLog,
		Dict:      cfg.Dict,
		Checksum:  h.ctrl.cfg.Checksum,
	})
	if err != nil {
		return nil, err
	}
	g := &generation{
		gen:      h.nextGen.Add(1),
		cfg:      cfg,
		codecID:  id,
		dictID:   dictID,
		pool:     pool,
		result:   r,
		feasible: r.Feasible,
	}
	g.hdr = appendHeader(make([]byte, 0, 16), g.gen, id, dictID)
	if dictID != 0 {
		h.decMu.Lock()
		h.dicts[dictID] = cfg.Dict
		h.decMu.Unlock()
	}
	return g, nil
}

// adopt swaps the serving config to r, retiring the old generation. Only
// the controller worker calls it.
func (h *Handle) adopt(r core.Result) error {
	g, err := h.newGeneration(r)
	if err != nil {
		return err
	}
	h.swapMu.Lock()
	old := h.cur.Swap(g)
	h.retired = append(h.retired, old)
	if n := h.ctrl.cfg.RetainGenerations; len(h.retired) > n {
		evict := h.retired[0]
		h.retired = append(h.retired[:0], h.retired[1:]...)
		codec.ReleaseShared(evict.pool)
	}
	h.swapMu.Unlock()
	h.swaps.Add(1)
	return nil
}

// Adopt forces the serving configuration immediately, bypassing the
// controller's decision rule — an operator override (and the hook the
// swap-hammer tests churn). The config is treated as feasible by fiat.
func (h *Handle) Adopt(cfg core.Config) error {
	return h.adopt(core.Result{Config: cfg, Feasible: true})
}

// Compress encodes src under the current generation (or the degrader's
// rung while pressured), appending a self-describing adaptive frame to
// dst. Safe for concurrent use; allocation-free once pools are warm.
func (h *Handle) Compress(dst, src []byte) ([]byte, error) {
	if n := h.ops.Add(1); n&h.sampleMask == 0 {
		h.offer(src)
	}
	if h.pressured.Load() {
		return h.compressDegraded(dst, src)
	}
	g := h.cur.Load()
	dst = append(dst, g.hdr...)
	e := g.pool.Get()
	if h.deg.Load() == nil {
		out, err := e.Compress(dst, src)
		g.pool.Put(e)
		return out, err
	}
	// Degrader attached at top rung: time the compress and feed the
	// ladder's pressure tracker (TryLock — never stall serving traffic on
	// the single-goroutine degrader).
	t0 := time.Now()
	out, err := e.Compress(dst, src)
	dt := time.Since(t0)
	g.pool.Put(e)
	if err != nil {
		return nil, err
	}
	if h.degMu.TryLock() {
		if d := h.deg.Load(); d != nil {
			d.ObserveExternal(dt)
			h.pressured.Store(d.Pressured())
		}
		h.degMu.Unlock()
	}
	return out, nil
}

// compressDegraded routes one payload through the class degrader.
func (h *Handle) compressDegraded(dst, src []byte) ([]byte, error) {
	dst = append(dst, magicDegraded)
	h.degMu.Lock()
	d := h.deg.Load()
	if d == nil {
		h.degMu.Unlock()
		return nil, errors.New("adaptive: degraded frame with no degrader attached")
	}
	out, err := d.Compress(dst, src)
	h.pressured.Store(d.Pressured())
	h.degMu.Unlock()
	return out, err
}

// Decompress decodes a frame produced by any generation of this class —
// current, retired, or a remote peer's — plus degraded frames from the
// attached ladder. Safe for concurrent use.
func (h *Handle) Decompress(dst, src []byte) ([]byte, error) {
	gen, codecID, dictID, payload, ok, err := ParseFrame(src)
	if err != nil {
		return nil, err
	}
	if !ok {
		h.degMu.Lock()
		d := h.deg.Load()
		if d == nil {
			h.degMu.Unlock()
			return nil, errors.New("adaptive: degraded frame with no degrader attached")
		}
		out, derr := d.Decompress(dst, payload)
		h.degMu.Unlock()
		return out, derr
	}
	g := h.cur.Load()
	if g.gen == gen && g.codecID == codecID && g.dictID == dictID {
		h.decodeCur.Add(1)
		e := g.pool.Get()
		out, err := e.Decompress(dst, payload)
		g.pool.Put(e)
		return out, err
	}
	h.decodeOld.Add(1)
	p, err := h.decodePool(codecID, dictID)
	if err != nil {
		return nil, err
	}
	e := p.Get()
	out, err := e.Decompress(dst, payload)
	p.Put(e)
	return out, err
}

// decodePool returns an engine pool able to decode frames written with
// (codecID, dictID), building and LRU-bounding private pools on demand.
// Decompression ignores level and window, so one pool per (codec, dict)
// covers every retired generation of that shape.
func (h *Handle) decodePool(codecID byte, dictID uint32) (*codec.Pool, error) {
	k := decPoolKey{codecID: codecID, dictID: dictID}
	h.decMu.Lock()
	defer h.decMu.Unlock()
	if p, ok := h.decPools[k]; ok {
		return p, nil
	}
	var dict []byte
	if dictID != 0 {
		var ok bool
		if dict, ok = h.dicts[dictID]; !ok {
			return nil, fmt.Errorf("adaptive: unknown dictionary id %d", dictID)
		}
	}
	p, err := codec.NewPool(codecNameOf(codecID), codec.Options{
		Level:    1,
		Dict:     dict,
		Checksum: h.ctrl.cfg.Checksum,
	})
	if err != nil {
		return nil, err
	}
	h.decPools[k] = p
	h.decOrder = append(h.decOrder, k)
	if len(h.decOrder) > h.maxDecode {
		evict := h.decOrder[0]
		h.decOrder = append(h.decOrder[:0], h.decOrder[1:]...)
		delete(h.decPools, evict)
	}
	return p, nil
}

// offer places one payload into the reservoir. Algorithm R over the
// subsampled stream: the first ReservoirSize offers fill the slots, after
// which each offer replaces a uniformly random slot with probability
// size/offered. Slot buffers are recycled; contention drops the sample.
func (h *Handle) offer(src []byte) {
	if len(src) == 0 {
		return
	}
	if !h.resMu.TryLock() {
		h.sampleDrops.Add(1)
		return
	}
	defer h.resMu.Unlock()
	h.offered++
	var slot int
	if len(h.slots) < cap(h.slots) {
		h.slots = append(h.slots, nil)
		slot = len(h.slots) - 1
	} else {
		// xorshift64* — cheap, and statistical (not cryptographic) quality
		// is all a sampling reservoir needs.
		h.rng ^= h.rng << 13
		h.rng ^= h.rng >> 7
		h.rng ^= h.rng << 17
		j := h.rng % h.offered
		if j >= uint64(len(h.slots)) {
			return
		}
		slot = int(j)
	}
	n := min(len(src), h.sampleBytes)
	h.slots[slot] = append(h.slots[slot][:0], src[:n]...)
}

// snapshotSamples copies the reservoir into the controller's trial buffer.
func (h *Handle) snapshotSamples() [][]byte {
	h.resMu.Lock()
	defer h.resMu.Unlock()
	if cap(h.trialBuf) < len(h.slots) {
		h.trialBuf = make([][]byte, 0, cap(h.slots))
	}
	h.trialBuf = h.trialBuf[:0]
	for _, s := range h.slots {
		if len(s) == 0 {
			continue
		}
		h.trialBuf = append(h.trialBuf, append([]byte(nil), s...))
	}
	return h.trialBuf
}

// Report returns the most recent controller decision for this class, if
// any trial has completed.
func (h *Handle) Report() (Decision, bool) {
	d := h.lastReport.Load()
	if d == nil {
		return Decision{}, false
	}
	return *d, true
}
