// Package adaptive closes the CompOpt loop in the live serving path: the
// paper's offline optimizer (internal/core) picks one configuration per
// use case from a one-off sample study; this package keeps re-running that
// same cost model continuously, per traffic class, against reservoir
// samples of what the class is serving right now.
//
// The pieces map onto the paper's Fig 14 plus an online control loop:
//
//   - Handle is the serving endpoint — a concurrent codec.Engine whose
//     configuration is a generation behind an atomic pointer. Hot-path
//     cost over a static pooled engine is one atomic increment and a
//     header append; every frame is self-describing so old generations
//     (and remote peers) stay decodable after swaps.
//   - Controller is the background worker — it snapshots each class's
//     reservoir, shadow-measures a rotating subset of candidate configs
//     with core.CompEngine (measured ratio/speed, not synthetic curves),
//     prices them with equations (1)-(4), and swaps the serving config
//     when a challenger beats the incumbent by the hysteresis margin
//     while satisfying the SLO constraints. Shadow CPU is duty-cycled to
//     a configured budget and every decision is visible in telemetry.
//   - codec.Degrader composes: under latency pressure the degrader owns
//     the serving codec (frames carry its rung tag) and swaps are held;
//     the controller re-optimizes the baseline the ladder returns to.
package adaptive

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/core"
	"github.com/datacomp/datacomp/internal/dict"
	"github.com/datacomp/datacomp/internal/telemetry"
	"github.com/datacomp/datacomp/internal/trace"
)

// Package-level telemetry on the shared registry, registered at first
// controller construction.
var (
	tmOnce       sync.Once
	tmSwaps      *telemetry.Counter
	tmDecisions  *telemetry.Counter
	tmTrials     *telemetry.Counter
	tmShadowNS   *telemetry.Counter
	tmThrottleNS *telemetry.Counter
	tmHolds      *telemetry.Counter
	tmDictTrains *telemetry.Counter
	tmErrors     *telemetry.Counter
	tmBudget     *telemetry.Gauge
)

func tm() {
	tmOnce.Do(func() {
		r := telemetry.Default
		tmSwaps = r.Counter("adaptive_swaps_total", "serving-config generation swaps")
		tmDecisions = r.Counter("adaptive_decisions_total", "candidate configurations shadow-priced")
		tmTrials = r.Counter("adaptive_trials_total", "shadow trial rounds")
		tmShadowNS = r.Counter("adaptive_shadow_ns_total", "CPU time spent in shadow measurement")
		tmThrottleNS = r.Counter("adaptive_throttle_ns_total", "sleep inserted to hold the shadow CPU budget")
		tmHolds = r.Counter("adaptive_holds_total", "trial rounds skipped while the degrader owned the codec")
		tmDictTrains = r.Counter("adaptive_dict_trains_total", "dictionaries trained from reservoir samples")
		tmErrors = r.Counter("adaptive_trial_errors_total", "shadow trials that failed to measure or adopt")
		tmBudget = r.Gauge("adaptive_shadow_budget_permille", "configured shadow CPU budget, in thousandths of one core")
	})
}

// Config parameterizes a Controller. The zero value is usable: every
// field has a production default.
type Config struct {
	// Default is the configuration every new class starts serving —
	// CompOpt's role is to beat it ((zstd, 3) by default, the paper's
	// baseline).
	Default core.Config
	// Candidates is the challenger search space (a compact online subset
	// of core.DefaultCandidates by default; dict-trained zstd is added
	// automatically when TrainDict is set).
	Candidates []core.Config
	// Params is the cost model (core.DefaultCostParams by default).
	Params core.CostParams
	// Constraints are the per-class SLOs every adopted config must meet.
	Constraints core.Constraints
	// Interval is the cadence of shadow trial rounds (default 500ms).
	Interval time.Duration
	// Budget caps shadow CPU as a fraction of one core (default 0.10):
	// after each trial the worker sleeps busy·(1-B)/B.
	Budget float64
	// Margin is the hysteresis bar: a challenger must beat the incumbent's
	// cost by this fraction to displace it (default 0.05).
	Margin float64
	// MinSamples gates trials until the reservoir has substance (default 8).
	MinSamples int
	// ReservoirSize is the per-class sample reservoir (default 32).
	ReservoirSize int
	// SampleEvery subsamples the hot path: one in N compress calls is
	// offered to the reservoir (default 64; rounded up to a power of two).
	SampleEvery int
	// SampleBytes caps each retained sample (default 64 KiB).
	SampleBytes int
	// ChallengersPerRound bounds how many candidates one round measures,
	// rotating through the space across rounds (default 3).
	ChallengersPerRound int
	// RetainGenerations keeps this many retired generations' encoder
	// pools alive in the shared registry; older ones are released and
	// re-materialized on demand from the frame descriptor (default 4).
	RetainGenerations int
	// TrainDict adds a dict-trained zstd candidate refreshed from the
	// reservoir (internal/dict), the online analogue of internal/managed.
	TrainDict bool
	// DictBytes is the trained dictionary size target (default 4 KiB).
	DictBytes int
	// MinDictSamples gates training (default 16).
	MinDictSamples int
	// DictRetrainRounds refreshes the trained dictionary every N trial
	// rounds (default 8).
	DictRetrainRounds int
	// Checksum applies the XXH64 content frame to serving engines (off by
	// default: RPC frames and containers carry their own checksums).
	Checksum bool
	// Tracer, when enabled, receives an "adaptive.swap" root span per
	// generation swap (subject to its own sampling policy).
	Tracer *trace.Tracer
}

func (cfg Config) withDefaults() Config {
	if cfg.Default.Algorithm == "" {
		cfg.Default = core.Config{Algorithm: "zstd", Level: 3}
	}
	if cfg.Candidates == nil {
		cfg.Candidates = DefaultOnlineCandidates()
	}
	if cfg.Params.Base == 0 {
		cfg.Params = core.DefaultCostParams()
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.Budget <= 0 || cfg.Budget > 1 {
		cfg.Budget = 0.10
	}
	if cfg.Margin <= 0 {
		cfg.Margin = 0.05
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 8
	}
	if cfg.ReservoirSize <= 0 {
		cfg.ReservoirSize = 32
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 64
	}
	// Power of two so the hot path masks instead of dividing.
	p := 1
	for p < cfg.SampleEvery {
		p <<= 1
	}
	cfg.SampleEvery = p
	if cfg.SampleBytes <= 0 {
		cfg.SampleBytes = 64 << 10
	}
	if cfg.ChallengersPerRound <= 0 {
		cfg.ChallengersPerRound = 3
	}
	if cfg.RetainGenerations <= 0 {
		cfg.RetainGenerations = 4
	}
	if cfg.DictBytes <= 0 {
		cfg.DictBytes = 4 << 10
	}
	if cfg.MinDictSamples <= 0 {
		cfg.MinDictSamples = 16
	}
	if cfg.DictRetrainRounds <= 0 {
		cfg.DictRetrainRounds = 8
	}
	return cfg
}

// DefaultOnlineCandidates is the compact challenger space used when
// Config.Candidates is nil: wide enough to cover the speed/ratio frontier
// the paper's studies map out, small enough that a rotating three-per-round
// schedule revisits every point within a couple of seconds.
func DefaultOnlineCandidates() []core.Config {
	return []core.Config{
		{Algorithm: "zstd", Level: 1},
		{Algorithm: "zstd", Level: 3},
		{Algorithm: "zstd", Level: 9},
		{Algorithm: "lz4", Level: 1},
		{Algorithm: "zlib", Level: 1},
		// Typed-transform graph compression at heuristic search effort:
		// wins big on structured payloads (columns, embeddings), loses
		// rounds cheaply on byte-stream classes.
		{Algorithm: "graph", Level: 1},
	}
}

// Decision records the outcome of one shadow trial round for a class. All
// costs are equation-(4) totals priced on the same reservoir snapshot, so
// they are directly comparable.
type Decision struct {
	Class         string
	Incumbent     string  // config serving after this round
	IncumbentCost float64 // its cost on current samples
	Best          string  // cheapest feasible challenger measured
	BestCost      float64
	DefaultCost   float64 // the static default priced on the same samples
	Swapped       bool
	From          string // pre-round config when Swapped
	Feasible      bool   // the serving config meets the SLO on current data
}

// MarginVsDefault is the fractional cost win of the serving config over
// the static default on the same samples (positive = adaptive is cheaper).
func (d Decision) MarginVsDefault() float64 {
	if d.DefaultCost <= 0 {
		return 0
	}
	return 1 - d.IncumbentCost/d.DefaultCost
}

// ClassStatus is a point-in-time view of one traffic class.
type ClassStatus struct {
	Class         string
	Config        string
	Generation    uint64
	Swaps         uint64
	Feasible      bool // current config was SLO-feasible at adoption
	DecodeCurrent uint64
	DecodeRetired uint64
	SampleDrops   uint64
	Decision      Decision
	HasDecision   bool
}

// Controller owns the shadow-measurement worker and the per-class
// handles. Create with New, wire handles into serving paths, then Start.
type Controller struct {
	cfg Config

	mu      sync.RWMutex
	classes map[string]*Handle

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New builds a controller. Candidate configurations (and the default) are
// validated eagerly: every algorithm must have a wire ID.
func New(cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if codecIDOf(cfg.Default.Algorithm) == codecInvalid {
		return nil, fmt.Errorf("adaptive: default codec %q has no wire id", cfg.Default.Algorithm)
	}
	for _, c := range cfg.Candidates {
		if codecIDOf(c.Algorithm) == codecInvalid {
			return nil, fmt.Errorf("adaptive: candidate codec %q has no wire id", c.Algorithm)
		}
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	tm()
	tmBudget.Set(int64(cfg.Budget * 1000))
	return &Controller{
		cfg:     cfg,
		classes: make(map[string]*Handle),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}, nil
}

// Handle returns the serving handle for a traffic class, creating it on
// first use with the default configuration.
func (c *Controller) Handle(class string) (*Handle, error) {
	c.mu.RLock()
	h, ok := c.classes[class]
	c.mu.RUnlock()
	if ok {
		return h, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if h, ok = c.classes[class]; ok {
		return h, nil
	}
	h, err := newHandle(c, class, c.cfg.Default)
	if err != nil {
		return nil, err
	}
	c.classes[class] = h
	return h, nil
}

// handles snapshots the class set for one worker round.
func (c *Controller) handles() []*Handle {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Handle, 0, len(c.classes))
	for _, h := range c.classes {
		out = append(out, h)
	}
	return out
}

// Start launches the background shadow worker. Idempotent.
func (c *Controller) Start() {
	c.startOnce.Do(func() { go c.run() })
}

// Close stops the worker (if started) and releases every generation's
// encoder pool from the shared registry. Handles remain usable for decode
// but stop being re-optimized.
func (c *Controller) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.startOnce.Do(func() { close(c.done) }) // never started: unblock the wait
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, h := range c.classes {
		h.swapMu.Lock()
		codec.ReleaseShared(h.cur.Load().pool)
		for _, g := range h.retired {
			codec.ReleaseShared(g.pool)
		}
		h.retired = nil
		h.swapMu.Unlock()
	}
}

func (c *Controller) run() {
	defer close(c.done)
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
		for _, h := range c.handles() {
			busy := c.trial(h)
			if busy <= 0 {
				continue
			}
			tmShadowNS.Add(int64(busy))
			// Duty-cycle to the CPU budget: busy·(1-B)/B idle per busy
			// slice, capped so one slow measurement cannot park the
			// worker for minutes.
			idle := time.Duration(float64(busy) * (1 - c.cfg.Budget) / c.cfg.Budget)
			if idle > 10*time.Second {
				idle = 10 * time.Second
			}
			tmThrottleNS.Add(int64(idle))
			select {
			case <-c.stop:
				return
			case <-time.After(idle):
			}
		}
	}
}

func configEqual(a, b core.Config) bool {
	return a.Algorithm == b.Algorithm && a.Level == b.Level &&
		a.WindowLog == b.WindowLog && a.BlockSize == b.BlockSize &&
		bytes.Equal(a.Dict, b.Dict)
}

// trial runs one budgeted shadow round for a class: price the incumbent,
// the static default, and a rotating slice of challengers on the current
// reservoir, then swap if a feasible challenger clears the hysteresis bar
// (or the incumbent fell out of the SLO). Returns the CPU time spent.
func (c *Controller) trial(h *Handle) time.Duration {
	if h.Pressured() {
		tmHolds.Inc()
		return 0
	}
	samples := h.snapshotSamples()
	if len(samples) < c.cfg.MinSamples {
		return 0
	}
	start := time.Now()
	tmTrials.Inc()
	sh := h.shadow
	sh.Samples = samples
	sh.Repeats = 1

	cur := h.cur.Load()
	inc, err := sh.Evaluate(cur.cfg)
	if err != nil {
		tmErrors.Inc()
		return time.Since(start)
	}
	tmDecisions.Inc()
	def := inc
	if !configEqual(cur.cfg, c.cfg.Default) {
		if d, derr := sh.Evaluate(c.cfg.Default); derr == nil {
			def = d
		}
	}

	best := core.Result{}
	haveBest := false
	for _, cand := range c.challengers(h, samples) {
		if configEqual(cand, cur.cfg) {
			continue
		}
		r, err := sh.Evaluate(cand)
		tmDecisions.Inc()
		if err != nil || !r.Feasible {
			continue
		}
		if !haveBest || r.TotalCost() < best.TotalCost() {
			best, haveBest = r, true
		}
	}

	d := Decision{
		Class:         h.class,
		Incumbent:     cur.cfg.String(),
		IncumbentCost: inc.TotalCost(),
		DefaultCost:   def.TotalCost(),
		Feasible:      inc.Feasible,
	}
	if haveBest {
		d.Best = best.Config.String()
		d.BestCost = best.TotalCost()
	}
	if haveBest && (!inc.Feasible || best.TotalCost() < inc.TotalCost()*(1-c.cfg.Margin)) {
		if err := h.adopt(best); err != nil {
			tmErrors.Inc()
		} else {
			tmSwaps.Inc()
			d.Swapped = true
			d.From = d.Incumbent
			d.Incumbent = best.Config.String()
			d.IncumbentCost = best.TotalCost()
			d.Feasible = true
			c.publishCurrent(h, best.Config)
			c.traceSwap(h, d)
		}
	}
	h.lastReport.Store(&d)
	return time.Since(start)
}

// challengers returns this round's candidate slice: a rotating window over
// the configured space plus the dict-trained candidate when fresh enough.
func (c *Controller) challengers(h *Handle, samples [][]byte) []core.Config {
	k := c.cfg.ChallengersPerRound
	n := len(c.cfg.Candidates)
	out := make([]core.Config, 0, k+1)
	for i := 0; i < k && i < n; i++ {
		out = append(out, c.cfg.Candidates[(h.nextCand+i)%n])
	}
	if n > 0 {
		h.nextCand = (h.nextCand + k) % n
	}
	if c.cfg.TrainDict {
		h.sinceTrain++
		if (!h.haveDict || h.sinceTrain >= c.cfg.DictRetrainRounds) && len(samples) >= c.cfg.MinDictSamples {
			if d, err := dict.Train(samples, dict.DefaultParams(c.cfg.DictBytes)); err == nil {
				h.dictCand = core.Config{Algorithm: "zstd", Level: 3, Dict: d}
				h.haveDict = true
				h.sinceTrain = 0
				tmDictTrains.Inc()
			} else if !errors.Is(err, dict.ErrNotEnoughSamples) {
				tmErrors.Inc()
			}
		}
		if h.haveDict {
			out = append(out, h.dictCand)
		}
	}
	return out
}

// publishCurrent flips the labeled current-config gauge for a class.
func (c *Controller) publishCurrent(h *Handle, cfg core.Config) {
	if h.curGauge != nil {
		h.curGauge.Set(0)
	}
	h.curGauge = telemetry.Default.Gauge(
		telemetry.Label("adaptive_current", "class", h.class, "config", cfg.String()),
		"1 while this configuration serves the class")
	h.curGauge.Set(1)
	telemetry.Default.Gauge(
		telemetry.Label("adaptive_generation", "class", h.class),
		"current serving-config generation").Set(int64(h.Generation()))
}

// traceSwap emits an "adaptive.swap" root span (one-shot event) when the
// tracer samples it, linking config changes into the flight recorder next
// to the degrader's rung events.
func (c *Controller) traceSwap(h *Handle, d Decision) {
	tr := c.cfg.Tracer
	if !tr.Enabled() {
		return
	}
	_, sp := tr.StartRoot(context.Background(), "adaptive.swap")
	if !sp.Valid() {
		return
	}
	sp.SetStr("class", h.class).
		SetStr("from", d.From).
		SetStr("to", d.Incumbent).
		SetInt("generation", int64(h.Generation())).
		SetInt("win_vs_default_ppm", int64(d.MarginVsDefault()*1e6)).
		End()
}

// Status reports every class's current generation and last decision.
func (c *Controller) Status() []ClassStatus {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]ClassStatus, 0, len(c.classes))
	for _, h := range c.classes {
		g := h.cur.Load()
		st := ClassStatus{
			Class:         h.class,
			Config:        g.cfg.String(),
			Generation:    g.gen,
			Swaps:         h.swaps.Load(),
			Feasible:      g.feasible,
			DecodeCurrent: h.decodeCur.Load(),
			DecodeRetired: h.decodeOld.Load(),
			SampleDrops:   h.sampleDrops.Load(),
		}
		if d := h.lastReport.Load(); d != nil {
			st.Decision = *d
			st.HasDecision = true
		}
		out = append(out, st)
	}
	return out
}
