package adaptive

import (
	"bytes"
	"testing"
	"time"

	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/core"
	"github.com/datacomp/datacomp/internal/corpus"
	"github.com/datacomp/datacomp/internal/dict"
)

func testController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestFrameRoundtrip(t *testing.T) {
	hdr := appendHeader(nil, 42, codecLZ4, 7)
	payload := []byte("the payload")
	frame := append(hdr, payload...)
	gen, id, dict, rest, ok, err := ParseFrame(frame)
	if err != nil || !ok {
		t.Fatalf("parse: ok=%v err=%v", ok, err)
	}
	if gen != 42 || id != codecLZ4 || dict != 7 || !bytes.Equal(rest, payload) {
		t.Fatalf("parse got gen=%d id=%d dict=%d rest=%q", gen, id, dict, rest)
	}
	// Degraded frames parse with ok=false and no error.
	if _, _, _, rest, ok, err = ParseFrame([]byte{magicDegraded, 0, 'x'}); err != nil || ok || len(rest) != 2 {
		t.Fatalf("degraded parse: ok=%v err=%v rest=%q", ok, err, rest)
	}
	for _, bad := range [][]byte{nil, {0x00}, {magicAdaptive}, {magicAdaptive, 1}, {magicAdaptive, 1, 0xEE, 0}} {
		if _, _, _, _, _, err := ParseFrame(bad); err == nil {
			t.Fatalf("malformed frame %x parsed", bad)
		}
	}
}

func TestHandleRoundtripAcrossSwaps(t *testing.T) {
	c := testController(t, Config{SampleEvery: 1})
	h, err := c.Handle("test")
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{
		corpus.LogLines(1, 8<<10),
		corpus.Records(2, 8<<10),
		corpus.SourceCode(3, 8<<10),
	}
	configs := []core.Config{
		{Algorithm: "lz4", Level: 1},
		{Algorithm: "zstd", Level: 9},
		{Algorithm: "zlib", Level: 1},
		{Algorithm: "zstd", Level: 1, WindowLog: 16},
	}
	type frame struct {
		gen  uint64
		data []byte
		want []byte
	}
	var frames []frame
	for i, cfg := range configs {
		src := payloads[i%len(payloads)]
		out, err := h.Compress(nil, src)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frame{gen: h.Generation(), data: out, want: src})
		if err := h.adopt(core.Result{Config: cfg, Feasible: true}); err != nil {
			t.Fatal(err)
		}
		if h.Generation() != uint64(i+2) {
			t.Fatalf("generation %d after %d swaps", h.Generation(), i+1)
		}
	}
	// Every frame — including ones whose encoder generation was retired —
	// must decode, and its header must name the generation that wrote it.
	for i, f := range frames {
		gen, _, _, _, ok, err := ParseFrame(f.data)
		if err != nil || !ok {
			t.Fatalf("frame %d: parse ok=%v err=%v", i, ok, err)
		}
		if gen != f.gen {
			t.Fatalf("frame %d: header generation %d, encoded under %d", i, gen, f.gen)
		}
		out, err := h.Decompress(nil, f.data)
		if err != nil {
			t.Fatalf("frame %d (gen %d): %v", i, f.gen, err)
		}
		if !bytes.Equal(out, f.want) {
			t.Fatalf("frame %d (gen %d): content mismatch", i, f.gen)
		}
	}
	if h.decodeOld.Load() == 0 {
		t.Fatal("expected retired-generation decodes")
	}
}

func TestDictGenerationsStayDecodable(t *testing.T) {
	c := testController(t, Config{SampleEvery: 1})
	h, err := c.Handle("dict")
	if err != nil {
		t.Fatal(err)
	}
	samples := make([][]byte, 32)
	for i := range samples {
		samples[i] = corpus.Records(int64(i), 4<<10)
	}
	// Train two successive dictionaries, encoding one frame under each —
	// the managed-dict discipline: retrain must not orphan old frames.
	var frames [][]byte
	src := corpus.Records(99, 4<<10)
	for round := 0; round < 2; round++ {
		d, err := dict.Train(samples[round*8:], dict.DefaultParams(2<<10))
		if err != nil {
			t.Fatal(err)
		}
		if err := h.adopt(core.Result{Config: core.Config{Algorithm: "zstd", Level: 3, Dict: d}, Feasible: true}); err != nil {
			t.Fatal(err)
		}
		out, err := h.Compress(nil, src)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, out)
	}
	for i, f := range frames {
		_, _, dictID, _, _, err := ParseFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		if dictID == 0 {
			t.Fatalf("frame %d carries no dictionary id", i)
		}
		out, err := h.Decompress(nil, f)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(out, src) {
			t.Fatalf("frame %d: content mismatch", i)
		}
	}
}

func TestSwapsKeepSharedPoolsBounded(t *testing.T) {
	c := testController(t, Config{RetainGenerations: 2, SampleEvery: 1})
	h, err := c.Handle("bounded")
	if err != nil {
		t.Fatal(err)
	}
	base := codec.SharedPoolCount()
	src := corpus.LogLines(5, 4<<10)
	var frames [][]byte
	for lvl := 1; lvl <= 12; lvl++ {
		out, err := h.Compress(nil, src)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, out)
		if err := h.adopt(core.Result{Config: core.Config{Algorithm: "zstd", Level: lvl}, Feasible: true}); err != nil {
			t.Fatal(err)
		}
		// Current + retained retired generations may hold registry slots;
		// everything older must have been released.
		if got := codec.SharedPoolCount(); got > base+3 {
			t.Fatalf("shared registry grew to %d pools after %d swaps (base %d)", got, lvl, base)
		}
	}
	// Frames from evicted generations still decode via private pools.
	for i, f := range frames {
		out, err := h.Decompress(nil, f)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(out, src) {
			t.Fatalf("frame %d: content mismatch", i)
		}
	}
}

func TestControllerConvergesUnderSLO(t *testing.T) {
	// Records compress well with zstd; the default is hobbled to zlib-1 so
	// a cheaper feasible challenger must displace it within a few rounds.
	// Compute is priced at zero so the verdict rides on measured ratio
	// alone — measured speed varies wildly under -race and slow CI.
	params := core.DefaultCostParams()
	params.AlphaCompute = 0
	c := testController(t, Config{
		Default:  core.Config{Algorithm: "zlib", Level: 1},
		Params:   params,
		Interval: 5 * time.Millisecond,
		Budget:   0.5,
		// Keep trials cheap and eager for the test.
		MinSamples: 4, SampleEvery: 1, ReservoirSize: 8,
		ChallengersPerRound: 5,
		Constraints:         core.Constraints{MinCompressMBps: 1},
	})
	h, err := c.Handle("records")
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		src := corpus.Records(time.Now().UnixNano()%1000, 8<<10)
		if _, err := h.Compress(nil, src); err != nil {
			t.Fatal(err)
		}
		if h.swaps.Load() > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if h.swaps.Load() == 0 {
		t.Fatal("controller never swapped off the hobbled default")
	}
	st := c.Status()[0]
	if !st.Feasible {
		t.Fatalf("adopted config %s was not SLO-feasible", st.Config)
	}
	if st.Config == "(zlib, 1)" {
		t.Fatal("still serving the default after a recorded swap")
	}
	d, ok := h.Report()
	if !ok {
		t.Fatal("no decision recorded")
	}
	if d.DefaultCost <= 0 || d.IncumbentCost <= 0 {
		t.Fatalf("decision costs not populated: %+v", d)
	}
}

func TestControllerNeverAdoptsInfeasible(t *testing.T) {
	// An impossible SLO: nothing compresses at 1 TB/s, so the controller
	// must keep the incumbent and report infeasibility rather than swap.
	c := testController(t, Config{
		Interval:   5 * time.Millisecond,
		Budget:     0.5,
		MinSamples: 4, SampleEvery: 1, ReservoirSize: 8,
		ChallengersPerRound: 5,
		Constraints:         core.Constraints{MinCompressMBps: 1e6},
	})
	h, err := c.Handle("impossible")
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	for i := 0; i < 50; i++ {
		if _, err := h.Compress(nil, corpus.LogLines(int64(i), 8<<10)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	// Give the worker time for several rounds.
	time.Sleep(100 * time.Millisecond)
	if got := h.swaps.Load(); got != 0 {
		t.Fatalf("controller swapped %d times with no feasible candidate", got)
	}
	if d, ok := h.Report(); ok && d.Feasible {
		t.Fatal("decision claims feasibility under an impossible SLO")
	}
}

func TestDegraderComposition(t *testing.T) {
	c := testController(t, Config{SampleEvery: 1})
	h, err := c.Handle("deg")
	if err != nil {
		t.Fatal(err)
	}
	// A fake clock drives the degrader: each Compress appears to take
	// fake.step, so the test dials pressure on and off deterministically.
	now := time.Unix(0, 0)
	step := time.Duration(0)
	d, err := codec.NewDegrader(codec.DegraderConfig{
		High:   time.Millisecond,
		Low:    100 * time.Microsecond,
		Window: 2, Recover: 2,
		Now: func() time.Time { now = now.Add(step); return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	h.AttachDegrader(d)
	src := corpus.LogLines(3, 4<<10)

	// Push the ladder down: external observations over High.
	for i := 0; i < 4; i++ {
		d.ObserveExternal(2 * time.Millisecond)
	}
	if !d.Pressured() {
		t.Fatal("degrader not pressured after hot streak")
	}
	h.pressured.Store(true) // mirror, as the hot path would after its next feed
	out, err := h.Compress(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != magicDegraded {
		t.Fatalf("pressured frame magic 0x%02x, want degraded", out[0])
	}
	if c.trial(h) != 0 {
		t.Fatal("controller ran a trial while the degrader owned the codec")
	}
	back, err := h.Decompress(nil, out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, src) {
		t.Fatal("degraded roundtrip mismatch")
	}

	// Recovery: degraded compresses observe fast ops (step=0 < Low), so
	// the ladder climbs back and the handle returns to adaptive frames.
	for i := 0; i < 20 && h.Pressured(); i++ {
		if _, err := h.Compress(nil, src); err != nil {
			t.Fatal(err)
		}
	}
	if h.Pressured() {
		t.Fatal("handle never recovered from degradation")
	}
	out, err = h.Compress(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != magicAdaptive {
		t.Fatalf("recovered frame magic 0x%02x, want adaptive", out[0])
	}
}

func TestReservoirSamples(t *testing.T) {
	c := testController(t, Config{SampleEvery: 1, ReservoirSize: 8, SampleBytes: 128})
	h, err := c.Handle("res")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		src := bytes.Repeat([]byte{byte(i)}, 1024)
		if _, err := h.Compress(nil, src); err != nil {
			t.Fatal(err)
		}
	}
	samples := h.snapshotSamples()
	if len(samples) != 8 {
		t.Fatalf("reservoir holds %d samples, want 8", len(samples))
	}
	for _, s := range samples {
		if len(s) != 128 {
			t.Fatalf("sample length %d, want capped 128", len(s))
		}
	}
}

func BenchmarkHandleCompress(b *testing.B) {
	c, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	h, err := c.Handle("bench")
	if err != nil {
		b.Fatal(err)
	}
	src := corpus.Records(7, 4<<10)
	dst := make([]byte, 0, 8<<10)
	b.ReportAllocs()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := h.Compress(dst[:0], src)
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}
