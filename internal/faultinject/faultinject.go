// Package faultinject wraps an io.ReadWriter with deterministic failure
// injection: bit flips, stream truncation, and delayed or fragmented
// transfers. It is the chaos harness behind the serving path's integrity
// tests — every corruption a frame checksum must catch is produced here,
// reproducibly, from a seed.
//
// All randomness comes from a splitmix64 generator seeded explicitly, so
// a failing chaos run is replayed by its seed alone.
package faultinject

import (
	"io"
	"sync"
	"time"
)

// Conn wraps an io.ReadWriter with injected faults. Reads and writes each
// take an internal lock, so a Conn is safe for the one-reader/one-writer
// pattern the rpc transport uses.
type Conn struct {
	rw io.ReadWriter

	mu       sync.Mutex
	rng      uint64
	flipRate float64 // probability of flipping one bit per byte read
	truncAt  int64   // total readable bytes; negative = unlimited
	readN    int64
	delay    time.Duration // sleep before each chunk transfer
	chunk    int           // max bytes per underlying read/write; 0 = unlimited
}

// Option configures a Conn.
type Option func(*Conn)

// WithSeed sets the deterministic RNG seed (default 1).
func WithSeed(seed uint64) Option { return func(c *Conn) { c.rng = splitmix(seed) } }

// WithBitFlips flips one bit per read byte with probability rate.
func WithBitFlips(rate float64) Option { return func(c *Conn) { c.flipRate = rate } }

// WithTruncate cuts the stream after n readable bytes: the wrapped reader
// then reports io.ErrUnexpectedEOF, as a peer dying mid-frame does.
func WithTruncate(n int64) Option { return func(c *Conn) { c.truncAt = n } }

// WithDelay sleeps d before every chunk transferred in either direction —
// the slow-peer injection used by deadline tests.
func WithDelay(d time.Duration) Option { return func(c *Conn) { c.delay = d } }

// WithChunk caps the bytes moved per underlying read or write call,
// fragmenting large frames into partial transfers.
func WithChunk(n int) Option { return func(c *Conn) { c.chunk = n } }

// New wraps rw with the configured faults.
func New(rw io.ReadWriter, opts ...Option) *Conn {
	c := &Conn{rw: rw, rng: splitmix(1), truncAt: -1}
	for _, o := range opts {
		o(c)
	}
	return c
}

// splitmix advances a splitmix64 state and returns the mixed output; used
// both to derive the initial state from a seed and as the step function.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// next returns a uniform uint64 and advances the generator.
func (c *Conn) next() uint64 {
	c.rng = splitmix(c.rng)
	return c.rng
}

// chance reports true with probability p.
func (c *Conn) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(c.next()>>11)/(1<<53) < p
}

// Read implements io.Reader with truncation, chunking, delay, and bit
// flips applied to the bytes read.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	limit := len(p)
	if c.chunk > 0 && limit > c.chunk {
		limit = c.chunk
	}
	if c.truncAt >= 0 {
		remain := c.truncAt - c.readN
		if remain <= 0 {
			c.mu.Unlock()
			return 0, io.ErrUnexpectedEOF
		}
		if int64(limit) > remain {
			limit = int(remain)
		}
	}
	delay := c.delay
	c.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	n, err := c.rw.Read(p[:limit])

	c.mu.Lock()
	c.readN += int64(n)
	if c.flipRate > 0 {
		for i := 0; i < n; i++ {
			if c.chance(c.flipRate) {
				p[i] ^= 1 << (c.next() & 7)
			}
		}
	}
	c.mu.Unlock()
	return n, err
}

// Write implements io.Writer, fragmenting into delayed chunks. The full
// payload is always delivered (partial-write injection exercises framing
// code against fragmentation, not data loss — loss is truncation's job).
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	chunk := c.chunk
	delay := c.delay
	c.mu.Unlock()
	if chunk <= 0 {
		if delay > 0 {
			time.Sleep(delay)
		}
		return c.rw.Write(p)
	}
	written := 0
	for written < len(p) {
		end := written + chunk
		if end > len(p) {
			end = len(p)
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		n, err := c.rw.Write(p[written:end])
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Close closes the wrapped connection when it supports it.
func (c *Conn) Close() error {
	if cl, ok := c.rw.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}
