package faultinject

import (
	"bytes"
	"io"
	"testing"
	"time"
)

func TestDeterministicFlips(t *testing.T) {
	payload := bytes.Repeat([]byte("abcdefgh"), 512)
	run := func(seed uint64) []byte {
		src := bytes.NewBuffer(append([]byte(nil), payload...))
		c := New(src, WithSeed(seed), WithBitFlips(0.01))
		out, err := io.ReadAll(c)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(7), run(7)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruption")
	}
	if bytes.Equal(a, payload) {
		t.Fatal("1% flip rate over 4KiB corrupted nothing")
	}
	if c := run(8); bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical corruption")
	}
}

func TestFlipRateZeroIsTransparent(t *testing.T) {
	payload := []byte("unharmed payload")
	c := New(bytes.NewBuffer(append([]byte(nil), payload...)), WithSeed(3))
	out, err := io.ReadAll(c)
	if err != nil || !bytes.Equal(out, payload) {
		t.Fatalf("transparent mode mangled data: %v %q", err, out)
	}
}

func TestTruncate(t *testing.T) {
	payload := make([]byte, 1000)
	c := New(bytes.NewBuffer(payload), WithTruncate(100))
	got, err := io.ReadAll(c)
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
	if len(got) != 100 {
		t.Fatalf("read %d bytes past truncation point", len(got))
	}
}

func TestChunkedWrites(t *testing.T) {
	var sink chunkRecorder
	c := New(&sink, WithChunk(10))
	payload := make([]byte, 95)
	n, err := c.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("write: %d %v", n, err)
	}
	if len(sink.sizes) != 10 {
		t.Fatalf("chunks = %v", sink.sizes)
	}
	for i, s := range sink.sizes[:9] {
		if s != 10 {
			t.Fatalf("chunk %d size %d", i, s)
		}
	}
	if sink.sizes[9] != 5 {
		t.Fatalf("tail chunk size %d", sink.sizes[9])
	}
}

type chunkRecorder struct {
	sizes []int
}

func (c *chunkRecorder) Write(p []byte) (int, error) {
	c.sizes = append(c.sizes, len(p))
	return len(p), nil
}

func (c *chunkRecorder) Read(p []byte) (int, error) { return 0, io.EOF }

func TestDelay(t *testing.T) {
	src := bytes.NewBufferString("x")
	c := New(src, WithDelay(20*time.Millisecond))
	t0 := time.Now()
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 15*time.Millisecond {
		t.Fatalf("read returned after %v, want ≥20ms delay", d)
	}
}
