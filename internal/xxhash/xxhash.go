// Package xxhash implements the 64-bit xxHash algorithm (XXH64), the
// non-cryptographic checksum real-world compression containers (zstd
// frames, lz4 frames) use for payload integrity. The serving path embeds
// it in two places: the codec-layer checksum header and the RPC frame
// checksum — both hot, so Sum64 and the streaming Digest are
// allocation-free.
//
// The implementation follows the XXH64 specification with seed 0 and is
// byte-for-byte compatible with the reference library (verified against
// published test vectors).
package xxhash

import "math/bits"

const (
	prime1 uint64 = 11400714785074694791
	prime2 uint64 = 14029467366897019727
	prime3 uint64 = 1609587929392839161
	prime4 uint64 = 9650029242287828579
	prime5 uint64 = 2870177450012600261
)

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func le32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func round(acc, input uint64) uint64 {
	acc += input * prime2
	acc = bits.RotateLeft64(acc, 31)
	acc *= prime1
	return acc
}

func mergeRound(h, v uint64) uint64 {
	v = round(0, v)
	h ^= v
	h = h*prime1 + prime4
	return h
}

func avalanche(h uint64) uint64 {
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

// Sum64 returns the XXH64 checksum of b with seed 0.
func Sum64(b []byte) uint64 {
	n := uint64(len(b))
	var h uint64
	if len(b) >= 32 {
		v1 := prime1
		v1 += prime2
		v2 := prime2
		v3 := uint64(0)
		v4 := ^prime1 + 1
		for len(b) >= 32 {
			v1 = round(v1, le64(b[0:8]))
			v2 = round(v2, le64(b[8:16]))
			v3 = round(v3, le64(b[16:24]))
			v4 = round(v4, le64(b[24:32]))
			b = b[32:]
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = mergeRound(h, v1)
		h = mergeRound(h, v2)
		h = mergeRound(h, v3)
		h = mergeRound(h, v4)
	} else {
		h = prime5
	}
	h += n
	return finishTail(h, b)
}

// finishTail folds the final <32 bytes into h and avalanches.
func finishTail(h uint64, b []byte) uint64 {
	for ; len(b) >= 8; b = b[8:] {
		h ^= round(0, le64(b))
		h = bits.RotateLeft64(h, 27)*prime1 + prime4
	}
	if len(b) >= 4 {
		h ^= uint64(le32(b)) * prime1
		h = bits.RotateLeft64(h, 23)*prime2 + prime3
		b = b[4:]
	}
	for _, c := range b {
		h ^= uint64(c) * prime5
		h = bits.RotateLeft64(h, 11) * prime1
	}
	return avalanche(h)
}

// Digest is a streaming XXH64 state (seed 0). The zero value is NOT ready
// for use; call Reset first. Digest holds no heap state, so a stack-local
// value hashes without allocating.
type Digest struct {
	v1, v2, v3, v4 uint64
	total          uint64
	mem            [32]byte
	n              int
}

// Reset returns the digest to its initial state.
func (d *Digest) Reset() {
	d.v1 = prime1
	d.v1 += prime2
	d.v2 = prime2
	d.v3 = 0
	d.v4 = ^prime1 + 1
	d.total = 0
	d.n = 0
}

// Write absorbs p into the digest. It never fails; the error return
// satisfies io.Writer.
func (d *Digest) Write(p []byte) (int, error) {
	n := len(p)
	d.total += uint64(n)
	if d.n+len(p) < 32 {
		copy(d.mem[d.n:], p)
		d.n += len(p)
		return n, nil
	}
	if d.n > 0 {
		c := copy(d.mem[d.n:], p)
		p = p[c:]
		d.v1 = round(d.v1, le64(d.mem[0:8]))
		d.v2 = round(d.v2, le64(d.mem[8:16]))
		d.v3 = round(d.v3, le64(d.mem[16:24]))
		d.v4 = round(d.v4, le64(d.mem[24:32]))
		d.n = 0
	}
	for len(p) >= 32 {
		d.v1 = round(d.v1, le64(p[0:8]))
		d.v2 = round(d.v2, le64(p[8:16]))
		d.v3 = round(d.v3, le64(p[16:24]))
		d.v4 = round(d.v4, le64(p[24:32]))
		p = p[32:]
	}
	d.n = copy(d.mem[:], p)
	return n, nil
}

// Sum64 returns the checksum of everything written so far. The digest
// remains usable for further writes.
func (d *Digest) Sum64() uint64 {
	var h uint64
	if d.total >= 32 {
		h = bits.RotateLeft64(d.v1, 1) + bits.RotateLeft64(d.v2, 7) +
			bits.RotateLeft64(d.v3, 12) + bits.RotateLeft64(d.v4, 18)
		h = mergeRound(h, d.v1)
		h = mergeRound(h, d.v2)
		h = mergeRound(h, d.v3)
		h = mergeRound(h, d.v4)
	} else {
		h = prime5
	}
	h += d.total
	return finishTail(h, d.mem[:d.n])
}
