package xxhash

import (
	"testing"
)

// Published XXH64 test vectors (seed 0).
var vectors = []struct {
	in   string
	want uint64
}{
	{"", 0xef46db3751d8e999},
	{"a", 0xd24ec4f1a98c6e5b},
	{"abc", 0x44bc2cf5ad770999},
	{"message digest", 0x066ed728fceeb3be},
	{"abcdefghijklmnopqrstuvwxyz", 0xcfe1f278fa89835c},
	{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789", 0xaaa46907d3047814},
	{"12345678901234567890123456789012345678901234567890123456789012345678901234567890", 0xe04a477f19ee145d},
}

func TestSum64Vectors(t *testing.T) {
	for _, v := range vectors {
		if got := Sum64([]byte(v.in)); got != v.want {
			t.Errorf("Sum64(%q) = %#x, want %#x", v.in, got, v.want)
		}
	}
}

func TestDigestMatchesSum64(t *testing.T) {
	// Streaming must equal one-shot for every length and several split
	// points, covering the <32-byte tail, the buffered boundary, and the
	// bulk loop.
	buf := make([]byte, 257)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range buf {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = byte(x)
	}
	for n := 0; n <= len(buf); n++ {
		want := Sum64(buf[:n])
		for _, split := range []int{0, 1, 7, 31, 32, 33, n / 2, n} {
			if split > n {
				continue
			}
			var d Digest
			d.Reset()
			d.Write(buf[:split])
			d.Write(buf[split:n])
			if got := d.Sum64(); got != want {
				t.Fatalf("len %d split %d: digest %#x, want %#x", n, split, got, want)
			}
		}
	}
}

func TestDigestIncrementalSum(t *testing.T) {
	// Sum64 must not disturb the state: write, sum, write more, sum again.
	var d Digest
	d.Reset()
	d.Write([]byte("abc"))
	if got := d.Sum64(); got != 0x44bc2cf5ad770999 {
		t.Fatalf("mid-stream sum = %#x", got)
	}
	d.Write([]byte("defghijklmnopqrstuvwxyz"))
	if got, want := d.Sum64(), Sum64([]byte("abcdefghijklmnopqrstuvwxyz")); got != want {
		t.Fatalf("continued sum = %#x, want %#x", got, want)
	}
}

func TestSum64NoAllocs(t *testing.T) {
	buf := make([]byte, 64<<10)
	if n := testing.AllocsPerRun(10, func() {
		_ = Sum64(buf)
	}); n != 0 {
		t.Fatalf("Sum64 allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(10, func() {
		var d Digest
		d.Reset()
		d.Write(buf[:1000])
		d.Write(buf[1000:])
		_ = d.Sum64()
	}); n != 0 {
		t.Fatalf("Digest allocates %v/op", n)
	}
}

func BenchmarkSum64(b *testing.B) {
	buf := make([]byte, 64<<10)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		_ = Sum64(buf)
	}
}
