package cache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"github.com/datacomp/datacomp/internal/corpus"
)

func TestSetGetRoundtrip(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	typ := corpus.DefaultItemTypes()[0]
	items := corpus.CacheItems(1, typ, 200)
	for i, it := range items {
		if err := c.Set(fmt.Sprintf("k%d", i), typ.Name, it); err != nil {
			t.Fatal(err)
		}
	}
	for i, it := range items {
		got, ok, err := c.Get(fmt.Sprintf("k%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("item %d missing", i)
		}
		if !bytes.Equal(got, it) {
			t.Fatalf("item %d corrupted", i)
		}
	}
	st := c.Stats()
	if st.Hits != 200 || st.Sets != 200 {
		t.Fatalf("stats: %+v", st)
	}
	if st.CompressionRatio() <= 1 {
		t.Fatalf("items should compress: ratio %.2f", st.CompressionRatio())
	}
}

func TestGetMiss(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err := c.Get("missing")
	if err != nil || ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d", st.Misses)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	c, _ := New(Config{})
	if err := c.Set("", "t", []byte("v")); err != ErrEmptyKey {
		t.Fatalf("got %v", err)
	}
	if _, _, err := c.Get(""); err != ErrEmptyKey {
		t.Fatalf("got %v", err)
	}
	if c.Delete("") {
		t.Fatal("deleted empty key")
	}
}

func TestDelete(t *testing.T) {
	c, _ := New(Config{})
	v := bytes.Repeat([]byte("abc"), 100)
	if err := c.Set("k", "t", v); err != nil {
		t.Fatal(err)
	}
	if !c.Delete("k") {
		t.Fatal("delete failed")
	}
	if c.Delete("k") {
		t.Fatal("double delete succeeded")
	}
	if _, ok, _ := c.Get("k"); ok {
		t.Fatal("deleted key still present")
	}
	st := c.Stats()
	if st.ResidentRawBytes != 0 || st.ResidentCompressedBytes != 0 {
		t.Fatalf("resident bytes not released: %+v", st)
	}
}

func TestOverwriteAccounting(t *testing.T) {
	c, _ := New(Config{Shards: 1})
	big := bytes.Repeat([]byte("hello world "), 200)
	small := bytes.Repeat([]byte("x"), 100)
	if err := c.Set("k", "t", big); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("k", "t", small); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.ResidentRawBytes != int64(len(small)) {
		t.Fatalf("raw bytes = %d want %d", st.ResidentRawBytes, len(small))
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c, err := New(Config{Shards: 1, CapacityBytes: 4096, MinCompressSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Incompressible-ish values stored raw: 16 x 512B > 4096B capacity.
	for i := 0; i < 16; i++ {
		v := bytes.Repeat([]byte{byte(i)}, 512)
		if err := c.Set(fmt.Sprintf("k%d", i), "t", v); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evicts == 0 {
		t.Fatal("no evictions under pressure")
	}
	if st.ResidentCompressedBytes > 4096 {
		t.Fatalf("capacity exceeded: %d", st.ResidentCompressedBytes)
	}
	// Oldest keys should be gone, newest present.
	if _, ok, _ := c.Get("k0"); ok {
		t.Fatal("oldest key survived")
	}
	if _, ok, _ := c.Get("k15"); !ok {
		t.Fatal("newest key evicted")
	}
}

func TestDictionaryImprovesResidentRatio(t *testing.T) {
	typ := corpus.DefaultItemTypes()[2] // edge_assoc: small items
	train := corpus.CacheItems(1, typ, 2000)
	dicts, err := TrainDictionaries(map[string][][]byte{typ.Name: train}, 8192)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	dicted, err := New(Config{Shards: 1, Dicts: dicts})
	if err != nil {
		t.Fatal(err)
	}
	items := corpus.CacheItems(99, typ, 500)
	for i, it := range items {
		key := fmt.Sprintf("k%d", i)
		if err := plain.Set(key, typ.Name, it); err != nil {
			t.Fatal(err)
		}
		if err := dicted.Set(key, typ.Name, it); err != nil {
			t.Fatal(err)
		}
	}
	// Verify values survive the dictionary path.
	got, ok, err := dicted.Get("k0")
	if err != nil || !ok || !bytes.Equal(got, items[0]) {
		t.Fatalf("dict get: ok=%v err=%v", ok, err)
	}
	pr := plain.Stats().CompressionRatio()
	dr := dicted.Stats().CompressionRatio()
	t.Logf("plain ratio %.2f, dict ratio %.2f", pr, dr)
	if dr <= pr {
		t.Fatalf("dictionary should improve ratio: plain %.2f dict %.2f", pr, dr)
	}
}

func TestNetworkAccounting(t *testing.T) {
	c, _ := New(Config{Shards: 1})
	v := bytes.Repeat([]byte("net bytes saved "), 64)
	if err := c.Set("k", "t", v); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get("k"); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.NetworkBytesRaw != int64(len(v)) {
		t.Fatalf("raw net bytes = %d", st.NetworkBytesRaw)
	}
	if st.NetworkBytesCompressed >= st.NetworkBytesRaw {
		t.Fatal("compressed network bytes should be smaller")
	}
	if st.ServerCompressTime <= 0 || st.ClientDecompressTime <= 0 {
		t.Fatalf("timing not accounted: %+v", st)
	}
}

func TestTinyItemsStoredRaw(t *testing.T) {
	c, _ := New(Config{Shards: 1, MinCompressSize: 64})
	if err := c.Set("k", "t", []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get("k")
	if err != nil || !ok || string(got) != "tiny" {
		t.Fatalf("got=%q ok=%v err=%v", got, ok, err)
	}
	if st := c.Stats(); st.ServerCompressTime != 0 {
		t.Fatal("tiny item should skip compression")
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := New(Config{Codec: "nope"}); err == nil {
		t.Fatal("unknown codec accepted")
	}
	if _, err := New(Config{Dicts: map[string][]byte{"t": []byte("d")}, Codec: "lz4", Level: 1}); err == nil {
		t.Fatal("dict with lz4 accepted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c, err := New(Config{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	typ := corpus.DefaultItemTypes()[0]
	items := corpus.CacheItems(7, typ, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, it := range items {
				key := fmt.Sprintf("g%d-k%d", g, i)
				if err := c.Set(key, typ.Name, it); err != nil {
					t.Error(err)
					return
				}
				got, ok, err := c.Get(key)
				if err != nil || !ok || !bytes.Equal(got, it) {
					t.Errorf("g%d item %d: ok=%v err=%v", g, i, ok, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 8*len(items) {
		t.Fatalf("len = %d", c.Len())
	}
}
