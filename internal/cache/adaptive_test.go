package cache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/datacomp/datacomp/internal/adaptive"
	"github.com/datacomp/datacomp/internal/core"
	"github.com/datacomp/datacomp/internal/corpus"
)

func TestAdaptiveCacheRoundtrip(t *testing.T) {
	ctrl, err := adaptive.New(adaptive.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	c, err := New(Config{Shards: 2, Adaptive: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	val := corpus.Records(1, 8<<10)
	if err := c.Set("k", "profile", val); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get("k")
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, val) {
		t.Fatal("roundtrip mismatch")
	}
	// The item type became its own adaptive class.
	found := false
	for _, s := range ctrl.Status() {
		if s.Class == "cache:profile" {
			found = true
		}
	}
	if !found {
		t.Fatal("no cache:profile class registered")
	}
	// Items stay compressed: resident bytes under raw bytes.
	if st := c.Stats(); st.ResidentCompressedBytes >= st.ResidentRawBytes {
		t.Fatalf("no compression: raw %d compressed %d", st.ResidentRawBytes, st.ResidentCompressedBytes)
	}
}

// TestAdaptiveCacheSwapHammer is the cache half of the satellite race
// gate: concurrent Get/Set traffic while the serving config swaps every
// few milliseconds. Items written under retired generations must keep
// decoding — the cache is exactly the consumer whose payloads outlive
// config changes.
func TestAdaptiveCacheSwapHammer(t *testing.T) {
	ctrl, err := adaptive.New(adaptive.Config{RetainGenerations: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	c, err := New(Config{Shards: 4, Adaptive: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	h, err := ctrl.Handle("cache:items")
	if err != nil {
		t.Fatal(err)
	}
	configs := []core.Config{
		{Algorithm: "zstd", Level: 1},
		{Algorithm: "lz4", Level: 1},
		{Algorithm: "zstd", Level: 6},
		{Algorithm: "zlib", Level: 1},
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if err := h.Adopt(configs[i%len(configs)]); err != nil {
				t.Errorf("adopt: %v", err)
				return
			}
		}
	}()
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("w%d-k%d", w, i%64)
				want := corpus.Records(int64(w*1000+i%64), 4<<10)
				if err := c.Set(key, "items", want); err != nil {
					t.Errorf("set %s: %v", key, err)
					return
				}
				// Read back keys written many swaps ago too.
				old := fmt.Sprintf("w%d-k%d", w, (i-32+64)%64)
				got, ok, err := c.Get(old)
				if err != nil {
					t.Errorf("get %s: %v", old, err)
					return
				}
				if ok && i >= 32 {
					wantOld := corpus.Records(int64(w*1000+(i-32+64)%64), 4<<10)
					if !bytes.Equal(got, wantOld) {
						t.Errorf("get %s: content mismatch", old)
						return
					}
				}
			}
		}(w)
	}
	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if h.Generation() < 5 {
		t.Fatalf("only %d generations churned during the hammer", h.Generation())
	}
}
