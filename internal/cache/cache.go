// Package cache implements a memcached-style in-memory object cache with
// per-item compression, reproducing the CACHE1/CACHE2 services of the
// paper's §IV-C: items must stay individually decompressible for random
// access, items are typed, and one trained dictionary per type recovers the
// ratio lost to small item sizes. Items are stored (and would be shipped to
// clients) compressed; decompression cost is attributed to the client side,
// which is the paper's "saves both cache CPU and network" argument.
package cache

import (
	"container/list"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"github.com/datacomp/datacomp/internal/adaptive"
	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/dict"
	"github.com/datacomp/datacomp/internal/telemetry"
)

// Package-level telemetry on the shared registry, registered on first
// cache construction. All caches in the process aggregate here; per-cache
// numbers stay available via Cache.Stats.
var (
	tmOnce      sync.Once
	tmHits      *telemetry.Counter
	tmMisses    *telemetry.Counter
	tmSets      *telemetry.Counter
	tmEvicts    *telemetry.Counter
	tmCompNS    *telemetry.Counter
	tmDecompNS  *telemetry.Counter
	tmItemBytes *telemetry.Histogram
	tmResident  *telemetry.Gauge
)

func tm() {
	tmOnce.Do(func() {
		r := telemetry.Default
		tmHits = r.Counter("cache_hits_total", "cache get hits")
		tmMisses = r.Counter("cache_misses_total", "cache get misses")
		tmSets = r.Counter("cache_sets_total", "cache sets")
		tmEvicts = r.Counter("cache_evictions_total", "LRU evictions")
		tmCompNS = r.Counter("cache_compress_ns_total", "server-side compression time")
		tmDecompNS = r.Counter("cache_decompress_ns_total", "client-side decompression time")
		tmItemBytes = r.Histogram("cache_item_bytes", "raw item size on set", "bytes")
		tmResident = r.Gauge("cache_resident_compressed_bytes", "resident compressed bytes across caches")
	})
}

// Config configures a Cache. Field names follow the option vocabulary of
// kvstore.Open and codec.NewEngine (Codec/Level/…, a WithX option each,
// were this an options API); the struct form stays because cache configs
// are written as literals in service manifests.
type Config struct {
	// Shards is the number of independent shards (concurrency domains).
	Shards int
	// CapacityBytes bounds resident compressed bytes per cache; LRU
	// eviction enforces it. 0 means unbounded.
	CapacityBytes int64
	// Codec and Level select the compressor (default zstd level 3 — caches
	// favour cheap levels, per the paper's level-usage findings).
	Codec string
	Level int
	// MinCompressSize skips compression for tiny items where headers
	// dominate.
	MinCompressSize int
	// Dicts maps item type to a trained dictionary. Types without an entry
	// are compressed without a dictionary.
	Dicts map[string][]byte
	// Adaptive compresses items through a live-reoptimizing controller
	// instead of the static Codec/Level engines: each item type becomes
	// its own traffic class (AdaptiveClassPrefix + type) whose config the
	// controller retunes from reservoir samples of actual Set traffic —
	// including dict-trained candidates, replacing static Dicts. Resident
	// payloads written under retired generations stay readable because
	// adaptive frames are self-describing. Codec, Level, and Dicts are
	// ignored when set.
	Adaptive *adaptive.Controller
	// AdaptiveClassPrefix namespaces per-type classes (default "cache:").
	AdaptiveClassPrefix string
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Codec == "" {
		c.Codec = "zstd"
	}
	if c.Level == 0 {
		c.Level = 3
	}
	if c.MinCompressSize == 0 {
		c.MinCompressSize = 64
	}
	if c.AdaptiveClassPrefix == "" {
		c.AdaptiveClassPrefix = "cache:"
	}
}

// Stats aggregates cache activity. Byte counters describe resident data;
// time counters separate server-side (compress on set) from client-side
// (decompress on get) work.
type Stats struct {
	Hits   int64
	Misses int64
	Sets   int64
	Evicts int64

	ResidentRawBytes        int64
	ResidentCompressedBytes int64

	ServerCompressTime   time.Duration
	ClientDecompressTime time.Duration

	// NetworkBytesCompressed counts bytes that crossed the wire compressed
	// on Get; NetworkBytesRaw is what they would have been uncompressed.
	NetworkBytesCompressed int64
	NetworkBytesRaw        int64
}

// CompressionRatio is the resident raw/compressed ratio.
func (s Stats) CompressionRatio() float64 {
	if s.ResidentCompressedBytes == 0 {
		return 0
	}
	return float64(s.ResidentRawBytes) / float64(s.ResidentCompressedBytes)
}

type entry struct {
	key      string
	typ      string
	payload  []byte // compressed (or raw when below MinCompressSize)
	rawSize  int
	stored   bool // true when payload is raw
	lruEntry *list.Element
}

type shard struct {
	mu      sync.Mutex
	items   map[string]*entry
	lru     *list.List // front = most recent
	bytes   int64
	engines map[string]codec.Engine // per item type
	raw     codec.Engine            // engine for untyped/no-dict items
	cfg     *Config

	stats Stats
}

// Cache is a sharded compressed object cache. Safe for concurrent use.
type Cache struct {
	cfg    Config
	shards []*shard
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	cfg.fill()
	tm()
	if _, ok := codec.Lookup(cfg.Codec); !ok {
		return nil, fmt.Errorf("cache: unknown codec %q", cfg.Codec)
	}
	c := &Cache{cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{
			items:   make(map[string]*entry),
			lru:     list.New(),
			engines: make(map[string]codec.Engine),
			cfg:     &c.cfg,
		}
		if cfg.Adaptive != nil {
			// One controller-managed handle per item type, shared by every
			// shard (handles are concurrent-safe, unlike raw engines). The
			// untyped class doubles as the fallback.
			h, err := cfg.Adaptive.Handle(cfg.AdaptiveClassPrefix + "default")
			if err != nil {
				return nil, fmt.Errorf("cache: adaptive default class: %w", err)
			}
			sh.raw = h
		} else {
			raw, err := codec.NewEngine(cfg.Codec, codec.WithLevel(cfg.Level))
			if err != nil {
				return nil, err
			}
			sh.raw = raw
			for typ, d := range cfg.Dicts {
				eng, err := codec.NewEngine(cfg.Codec, codec.WithLevel(cfg.Level), codec.WithDict(d))
				if err != nil {
					return nil, fmt.Errorf("cache: dictionary for type %q: %w", typ, err)
				}
				sh.engines[typ] = eng
			}
		}
		c.shards = append(c.shards, sh)
	}
	return c, nil
}

func (c *Cache) shardIndex(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(c.shards)))
}

func (c *Cache) shard(key string) *shard {
	return c.shards[c.shardIndex(key)]
}

func (s *shard) engine(typ string) codec.Engine {
	if e, ok := s.engines[typ]; ok {
		return e
	}
	if s.cfg.Adaptive != nil && typ != "" {
		// Materialize the per-type adaptive class on first touch (caller
		// holds s.mu, so the per-shard cache write is safe). A controller
		// failure falls back to the default class rather than failing the
		// operation.
		if h, err := s.cfg.Adaptive.Handle(s.cfg.AdaptiveClassPrefix + typ); err == nil {
			s.engines[typ] = h
			return h
		}
	}
	return s.raw
}

// ErrEmptyKey is returned for operations with an empty key.
var ErrEmptyKey = errors.New("cache: empty key")

// compressLocked compresses value with typ's engine, falling back to a raw
// copy for tiny or incompressible values. Timing is the caller's
// responsibility so batched sets can read the clock once per group. Caller
// holds s.mu.
func (s *shard) compressLocked(typ string, value []byte) (payload []byte, raw bool, err error) {
	if len(value) < s.cfg.MinCompressSize {
		return append([]byte{}, value...), true, nil
	}
	out, err := s.engine(typ).Compress(nil, value)
	if err != nil {
		return nil, false, err
	}
	if len(out) >= len(value) {
		return append([]byte{}, value...), true, nil
	}
	return out, false, nil
}

// storeLocked inserts or replaces key's entry and updates resident
// accounting. Caller holds s.mu.
func (s *shard) storeLocked(key, typ string, payload []byte, rawSize int, raw bool) {
	if old, ok := s.items[key]; ok {
		s.bytes -= int64(len(old.payload))
		s.stats.ResidentRawBytes -= int64(old.rawSize)
		s.stats.ResidentCompressedBytes -= int64(len(old.payload))
		tmResident.Add(-int64(len(old.payload)))
		s.lru.Remove(old.lruEntry)
		delete(s.items, key)
	}
	e := &entry{key: key, typ: typ, payload: payload, rawSize: rawSize, stored: raw}
	e.lruEntry = s.lru.PushFront(e)
	s.items[key] = e
	s.bytes += int64(len(payload))
	s.stats.Sets++
	s.stats.ResidentRawBytes += int64(rawSize)
	s.stats.ResidentCompressedBytes += int64(len(payload))
	tmSets.Inc()
	tmItemBytes.Observe(int64(rawSize))
	tmResident.Add(int64(len(payload)))
}

// evictLocked enforces CapacityBytes with LRU eviction. Caller holds s.mu.
func (s *shard) evictLocked() {
	if s.cfg.CapacityBytes <= 0 {
		return
	}
	for s.bytes > s.cfg.CapacityBytes && s.lru.Len() > 1 {
		victim := s.lru.Back().Value.(*entry)
		s.lru.Remove(victim.lruEntry)
		delete(s.items, victim.key)
		s.bytes -= int64(len(victim.payload))
		s.stats.ResidentRawBytes -= int64(victim.rawSize)
		s.stats.ResidentCompressedBytes -= int64(len(victim.payload))
		s.stats.Evicts++
		tmEvicts.Inc()
		tmResident.Add(-int64(len(victim.payload)))
	}
}

// Set stores value under key, compressing it with the type's engine.
func (c *Cache) Set(key, typ string, value []byte) error {
	if key == "" {
		return ErrEmptyKey
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()

	if len(value) < s.cfg.MinCompressSize {
		// Tiny items skip the codec entirely — no compress time accrues.
		s.storeLocked(key, typ, append([]byte{}, value...), len(value), true)
		s.evictLocked()
		return nil
	}
	t0 := time.Now()
	payload, raw, err := s.compressLocked(typ, value)
	dt := time.Since(t0)
	s.stats.ServerCompressTime += dt
	tmCompNS.Add(dt.Nanoseconds())
	if err != nil {
		return err
	}
	s.storeLocked(key, typ, payload, len(value), raw)
	s.evictLocked()
	return nil
}

// Get fetches and decodes the value for key. The payload travels compressed
// (counted as network bytes); decompression time is attributed to the
// client.
func (c *Cache) Get(key string) ([]byte, bool, error) {
	if key == "" {
		return nil, false, ErrEmptyKey
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.items[key]
	if !ok {
		s.stats.Misses++
		tmMisses.Inc()
		return nil, false, nil
	}
	s.lru.MoveToFront(e.lruEntry)
	s.stats.Hits++
	tmHits.Inc()
	s.stats.NetworkBytesCompressed += int64(len(e.payload))
	s.stats.NetworkBytesRaw += int64(e.rawSize)
	if e.stored {
		return append([]byte{}, e.payload...), true, nil
	}
	t0 := time.Now()
	out, err := s.engine(e.typ).Decompress(nil, e.payload)
	dt := time.Since(t0)
	s.stats.ClientDecompressTime += dt
	tmDecompNS.Add(dt.Nanoseconds())
	if err != nil {
		return nil, false, err
	}
	return out, true, nil
}

// Delete removes key, reporting whether it was present.
func (c *Cache) Delete(key string) bool {
	if key == "" {
		return false
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.items[key]
	if !ok {
		return false
	}
	s.lru.Remove(e.lruEntry)
	delete(s.items, key)
	s.bytes -= int64(len(e.payload))
	s.stats.ResidentRawBytes -= int64(e.rawSize)
	s.stats.ResidentCompressedBytes -= int64(len(e.payload))
	tmResident.Add(-int64(len(e.payload)))
	return true
}

// Len returns the number of resident items.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}

// Stats merges all shard statistics.
func (c *Cache) Stats() Stats {
	var total Stats
	for _, s := range c.shards {
		s.mu.Lock()
		st := s.stats
		s.mu.Unlock()
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Sets += st.Sets
		total.Evicts += st.Evicts
		total.ResidentRawBytes += st.ResidentRawBytes
		total.ResidentCompressedBytes += st.ResidentCompressedBytes
		total.ServerCompressTime += st.ServerCompressTime
		total.ClientDecompressTime += st.ClientDecompressTime
		total.NetworkBytesCompressed += st.NetworkBytesCompressed
		total.NetworkBytesRaw += st.NetworkBytesRaw
	}
	return total
}

// TrainDictionaries builds one dictionary per item type from sample values,
// ready for Config.Dicts. maxSize bounds each dictionary.
func TrainDictionaries(samplesByType map[string][][]byte, maxSize int) (map[string][]byte, error) {
	out := make(map[string][]byte, len(samplesByType))
	for typ, samples := range samplesByType {
		d, err := dict.Train(samples, dict.DefaultParams(maxSize))
		if err != nil {
			return nil, fmt.Errorf("cache: training type %q: %w", typ, err)
		}
		out[typ] = d
	}
	return out, nil
}
