package cache

import (
	"bytes"
	"fmt"
	"testing"
)

func batchItems(n, size int) (keys []string, values [][]byte) {
	keys = make([]string, n)
	values = make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = fmt.Sprintf("user:%d", i)
		var buf bytes.Buffer
		for buf.Len() < size {
			fmt.Fprintf(&buf, "field%d=value%d;", i, buf.Len())
		}
		values[i] = buf.Bytes()[:size]
	}
	return keys, values
}

func TestSetGetBatch(t *testing.T) {
	c, err := New(Config{Shards: 4, Codec: "zstd", Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	keys, values := batchItems(64, 512)
	if failed, errs := c.SetBatch("user", keys, values); failed != 0 {
		t.Fatalf("SetBatch failed %d items: %v", failed, errs)
	}
	got, hits, errs := c.GetBatch(keys)
	if errs != nil {
		t.Fatalf("GetBatch errors: %v", errs)
	}
	for i := range keys {
		if !hits[i] || !bytes.Equal(got[i], values[i]) {
			t.Fatalf("item %d: hit=%v, mismatch", i, hits[i])
		}
	}
	st := c.Stats()
	if st.Sets != 64 || st.Hits != 64 || st.Misses != 0 {
		t.Fatalf("stats off: %+v", st)
	}
	if st.CompressionRatio() <= 1 {
		t.Fatalf("repetitive items should compress: ratio %.2f", st.CompressionRatio())
	}
}

func TestGetBatchMissesAndSingles(t *testing.T) {
	c, err := New(Config{Shards: 4, Codec: "lz4", Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	keys, values := batchItems(8, 256)
	if failed, _ := c.SetBatch("t", keys[:4], values[:4]); failed != 0 {
		t.Fatal("set failed")
	}
	got, hits, errs := c.GetBatch(keys)
	if errs != nil {
		t.Fatal(errs)
	}
	for i := 0; i < 4; i++ {
		if !hits[i] || !bytes.Equal(got[i], values[i]) {
			t.Fatalf("resident item %d missing", i)
		}
	}
	for i := 4; i < 8; i++ {
		if hits[i] || got[i] != nil {
			t.Fatalf("absent item %d reported as hit", i)
		}
	}
	// Batched and unary paths share storage: Get sees SetBatch's items.
	v, ok, err := c.Get(keys[0])
	if err != nil || !ok || !bytes.Equal(v, values[0]) {
		t.Fatal("unary Get cannot see batched Set")
	}
	st := c.Stats()
	if st.Misses != 4 || st.Hits != 5 {
		t.Fatalf("hit/miss accounting off: %+v", st)
	}
}

func TestSetBatchPerItemErrors(t *testing.T) {
	c, err := New(Config{Shards: 2, Codec: "zstd", Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	keys, values := batchItems(4, 128)
	keys[2] = ""
	failed, errs := c.SetBatch("t", keys, values)
	if failed != 1 || errs == nil || errs[2] != ErrEmptyKey {
		t.Fatalf("failed=%d errs=%v", failed, errs)
	}
	for _, i := range []int{0, 1, 3} {
		if errs[i] != nil {
			t.Fatalf("healthy item %d errored", i)
		}
		if _, ok, _ := c.Get(keys[i]); !ok {
			t.Fatalf("healthy item %d not stored", i)
		}
	}
}

func TestSetBatchRespectsCapacity(t *testing.T) {
	c, err := New(Config{Shards: 1, Codec: "lz4", Level: 1, CapacityBytes: 2048, MinCompressSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	keys, values := batchItems(64, 256) // raw-stored: 16 KiB total, 8x capacity
	if failed, _ := c.SetBatch("t", keys, values); failed != 0 {
		t.Fatal("set failed")
	}
	st := c.Stats()
	if st.ResidentCompressedBytes > 2048 {
		t.Fatalf("capacity not enforced: resident %d", st.ResidentCompressedBytes)
	}
	if st.Evicts == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestSetBatchDictTypes(t *testing.T) {
	_, samples := batchItems(64, 300)
	dicts, err := TrainDictionaries(map[string][][]byte{"user": samples}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Shards: 4, Codec: "zstd", Level: 1, Dicts: dicts})
	if err != nil {
		t.Fatal(err)
	}
	keys, values := batchItems(32, 300)
	if failed, errs := c.SetBatch("user", keys, values); failed != 0 {
		t.Fatalf("dict-typed SetBatch failed: %v", errs)
	}
	got, hits, errs := c.GetBatch(keys)
	if errs != nil {
		t.Fatal(errs)
	}
	for i := range keys {
		if !hits[i] || !bytes.Equal(got[i], values[i]) {
			t.Fatalf("dict item %d corrupt", i)
		}
	}
}
