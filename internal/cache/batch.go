package cache

import "time"

// Batched cache operations. The paper's cache corpus (§IV-C) is dominated
// by small typed items, and at a few hundred bytes per value the per-call
// fixed costs — a shard lock round-trip, two clock reads, telemetry updates
// — rival the codec work itself. SetBatch and GetBatch group items by shard
// so each shard is locked once per call, the compression clock is read once
// per shard group, and the per-type engine is resolved once per item without
// re-taking the lock.

// groupByShard buckets item indices by owning shard, preserving the input
// order within each bucket.
func (c *Cache) groupByShard(keys []string) [][]int {
	groups := make([][]int, len(c.shards))
	for i, k := range keys {
		si := c.shardIndex(k)
		groups[si] = append(groups[si], i)
	}
	return groups
}

// batchFail lazily materializes the error slice for a batch of n items and
// records item i's error.
func batchFail(errs []error, n, i int, err error) []error {
	if errs == nil {
		errs = make([]error, n)
	}
	errs[i] = err
	return errs
}

// SetBatch stores items of one type, keys[i] mapping to values[i]. It
// returns the number of failed items and, when failed > 0, a slice aligned
// with keys holding each item's error (nil for successes). Items land in
// shard-grouped order, so relative recency is preserved within a shard but
// not across shards.
func (c *Cache) SetBatch(typ string, keys []string, values [][]byte) (failed int, errs []error) {
	n := len(keys)
	if len(values) != n {
		panic("cache: SetBatch keys/values length mismatch")
	}
	for si, idxs := range c.groupByShard(keys) {
		if len(idxs) == 0 {
			continue
		}
		s := c.shards[si]
		s.mu.Lock()
		t0 := time.Now()
		for _, i := range idxs {
			if keys[i] == "" {
				errs = batchFail(errs, n, i, ErrEmptyKey)
				failed++
				continue
			}
			payload, raw, err := s.compressLocked(typ, values[i])
			if err != nil {
				errs = batchFail(errs, n, i, err)
				failed++
				continue
			}
			s.storeLocked(keys[i], typ, payload, len(values[i]), raw)
		}
		dt := time.Since(t0)
		s.stats.ServerCompressTime += dt
		tmCompNS.Add(dt.Nanoseconds())
		s.evictLocked()
		s.mu.Unlock()
	}
	return failed, errs
}

// GetBatch fetches every key in one pass per shard. values and hits are
// aligned with keys; errs is nil unless some resident payload failed to
// decode (a decode failure counts as a miss in hits but carries its error).
func (c *Cache) GetBatch(keys []string) (values [][]byte, hits []bool, errs []error) {
	n := len(keys)
	values = make([][]byte, n)
	hits = make([]bool, n)
	for si, idxs := range c.groupByShard(keys) {
		if len(idxs) == 0 {
			continue
		}
		s := c.shards[si]
		s.mu.Lock()
		t0 := time.Now()
		for _, i := range idxs {
			if keys[i] == "" {
				errs = batchFail(errs, n, i, ErrEmptyKey)
				continue
			}
			e, ok := s.items[keys[i]]
			if !ok {
				s.stats.Misses++
				tmMisses.Inc()
				continue
			}
			s.lru.MoveToFront(e.lruEntry)
			s.stats.Hits++
			tmHits.Inc()
			s.stats.NetworkBytesCompressed += int64(len(e.payload))
			s.stats.NetworkBytesRaw += int64(e.rawSize)
			if e.stored {
				values[i] = append([]byte{}, e.payload...)
				hits[i] = true
				continue
			}
			out, err := s.engine(e.typ).Decompress(nil, e.payload)
			if err != nil {
				errs = batchFail(errs, n, i, err)
				continue
			}
			values[i] = out
			hits[i] = true
		}
		dt := time.Since(t0)
		s.stats.ClientDecompressTime += dt
		tmDecompNS.Add(dt.Nanoseconds())
		s.mu.Unlock()
	}
	return values, hits, errs
}
