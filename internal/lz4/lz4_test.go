package lz4

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func compressible(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"request", "response", "compression", "block", "offset", "service", "lz4", "token"}
	var buf bytes.Buffer
	for buf.Len() < n {
		buf.WriteString(words[rng.Intn(len(words))])
		buf.WriteByte(byte(' '))
	}
	return buf.Bytes()[:n]
}

func roundtrip(t *testing.T, level int, src []byte) []byte {
	t.Helper()
	e, err := NewEncoder(level)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Compress(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(nil, out)
	if err != nil {
		t.Fatalf("level %d size %d: %v", level, len(src), err)
	}
	if !bytes.Equal(back, src) {
		t.Fatalf("level %d size %d: roundtrip mismatch", level, len(src))
	}
	return out
}

func TestRoundtripAllLevels(t *testing.T) {
	src := compressible(1, 100000)
	for level := MinLevel; level <= MaxLevel; level++ {
		if level == 0 {
			continue
		}
		out := roundtrip(t, level, src)
		if len(out) >= len(src) {
			t.Errorf("level %d: no compression on compressible data (%d >= %d)", level, len(out), len(src))
		}
	}
}

func TestRoundtripEdgeSizes(t *testing.T) {
	for _, n := range []int{0, 1, 4, 5, 11, 12, 13, 17, 64, 255, 256, 300, 4096} {
		src := compressible(int64(n), n)
		roundtrip(t, 1, src)
		roundtrip(t, 9, src)
	}
}

func TestRoundtripIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := make([]byte, 50000)
	rng.Read(src)
	out := roundtrip(t, 1, src)
	if len(out) > CompressBound(len(src)) {
		t.Fatalf("output %d exceeds bound %d", len(out), CompressBound(len(src)))
	}
}

func TestRoundtripLongRuns(t *testing.T) {
	src := bytes.Repeat([]byte{0}, 200000)
	out := roundtrip(t, 1, src)
	if len(out) > 1200 {
		t.Fatalf("run-of-zeros should compress hard, got %d bytes", len(out))
	}
	// Long literal runs (random) force length-extension bytes.
	rng := rand.New(rand.NewSource(3))
	lit := make([]byte, 70000)
	rng.Read(lit)
	roundtrip(t, 1, lit)
}

func TestAccelerationLevels(t *testing.T) {
	src := compressible(21, 1<<18)
	sizes := map[int]int{}
	for _, level := range []int{-10, -3, -1, 1} {
		out := roundtrip(t, level, src)
		sizes[level] = len(out)
	}
	// Acceleration trades ratio for speed: -10 must compress worse than 1.
	if sizes[-10] <= sizes[1] {
		t.Fatalf("acceleration -10 (%d) should compress worse than level 1 (%d)",
			sizes[-10], sizes[1])
	}
}

func TestHigherLevelCompressesBetter(t *testing.T) {
	src := compressible(5, 1<<18)
	e1, _ := NewEncoder(1)
	e12, _ := NewEncoder(12)
	out1, err := e1.Compress(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	out12, err := e12.Compress(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(out12) > len(out1) {
		t.Fatalf("HC level 12 (%d) worse than level 1 (%d)", len(out12), len(out1))
	}
}

func TestLevelValidation(t *testing.T) {
	if _, err := NewEncoder(0); err == nil {
		t.Fatal("level 0 must be rejected")
	}
	if _, err := NewEncoder(13); err == nil {
		t.Fatal("level 13 must be rejected")
	}
	if _, err := NewEncoder(-11); err == nil {
		t.Fatal("level -11 must be rejected")
	}
	e, err := NewEncoder(5)
	if err != nil {
		t.Fatal(err)
	}
	if e.Level() != 5 {
		t.Fatalf("Level() = %d", e.Level())
	}
}

func TestDecompressCorrupt(t *testing.T) {
	e, _ := NewEncoder(1)
	src := compressible(7, 5000)
	out, err := e.Compress(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]byte{
		nil,
		{0xff},
		out[:len(out)/2],
		append(append([]byte{}, out...), 0x01, 0x02),
	}
	for i, c := range cases {
		if _, err := Decompress(nil, c); err == nil {
			t.Errorf("case %d: corrupt input decoded successfully", i)
		}
	}
	// Flipping offset bytes should be caught by bounds checks or size check.
	mut := append([]byte{}, out...)
	for i := range mut[5:20] {
		mut[5+i] ^= 0xff
	}
	if back, err := Decompress(nil, mut); err == nil && bytes.Equal(back, src) {
		t.Error("mutated payload decoded to original data")
	}
}

func TestDecompressBlockSizeMismatch(t *testing.T) {
	e, _ := NewEncoder(1)
	src := compressible(9, 1000)
	blk, err := e.CompressBlock(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressBlock(nil, blk, len(src)-1); err == nil {
		t.Fatal("undersized target must fail")
	}
	if _, err := DecompressBlock(nil, blk, len(src)+1); err == nil {
		t.Fatal("oversized target must fail")
	}
}

func TestOffsetsWithinWindow(t *testing.T) {
	// Data repeating at 100 KiB distance: beyond the 64 KiB format limit.
	block := compressible(11, 100*1024)
	src := append(append([]byte{}, block...), block...)
	roundtrip(t, 12, src)
}

func TestAppendToNonEmptyDst(t *testing.T) {
	e, _ := NewEncoder(1)
	src := compressible(13, 3000)
	prefix := []byte("PREFIX")
	out, err := e.Compress(append([]byte{}, prefix...), src)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("dst prefix clobbered")
	}
	back, err := Decompress(append([]byte{}, prefix...), out[len(prefix):])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back[len(prefix):], src) {
		t.Fatal("roundtrip mismatch with non-empty dst")
	}
}

func TestQuickRoundtrip(t *testing.T) {
	f := func(seed int64, size uint16, levelSel uint8, noise uint8) bool {
		n := int(size) % 20000
		src := compressible(seed, n)
		rng := rand.New(rand.NewSource(seed ^ 77))
		for k := 0; k < n*int(noise)/1024; k++ {
			src[rng.Intn(n)] = byte(rng.Intn(256))
		}
		level := int(levelSel)%MaxLevel + 1
		e, err := NewEncoder(level)
		if err != nil {
			return false
		}
		out, err := e.Compress(nil, src)
		if err != nil {
			return false
		}
		back, err := Decompress(nil, out)
		return err == nil && bytes.Equal(back, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress(b *testing.B) {
	src := compressible(1, 1<<18)
	for _, level := range []int{1, 3, 6, 9, 12} {
		b.Run(map[bool]string{true: "L"}[true]+string(rune('0'+level/10))+string(rune('0'+level%10)), func(b *testing.B) {
			e, err := NewEncoder(level)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(src)))
			var out []byte
			for i := 0; i < b.N; i++ {
				out, _ = e.Compress(out[:0], src)
			}
		})
	}
}

func BenchmarkDecompress(b *testing.B) {
	src := compressible(1, 1<<18)
	e, _ := NewEncoder(6)
	out, err := e.Compress(nil, src)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	var back []byte
	for i := 0; i < b.N; i++ {
		back, err = Decompress(back[:0], out)
		if err != nil {
			b.Fatal(err)
		}
	}
}
