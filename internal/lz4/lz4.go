// Package lz4 implements the LZ4 block format: the byte-aligned,
// entropy-free LZ compressor the paper identifies as the fast-decompression
// end of the datacenter codec spectrum.
//
// The block encoding matches the published LZ4 specification — a token byte
// holding literal-run and match lengths (with 255-extension bytes), raw
// literals, and 2-byte little-endian offsets — so ratios are directly
// comparable to the real library. Levels 1-12 mirror lz4/lz4hc: 1-2 use the
// fast single-hash matcher, 3-12 use hash chains with geometrically growing
// search depth (HC).
//
// Compress/Decompress wrap blocks in a minimal container (a uvarint content
// length) so payloads are self-describing; CompressBlock/DecompressBlock
// expose the raw format.
package lz4

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/datacomp/datacomp/internal/lz"
	"github.com/datacomp/datacomp/internal/stage"
	"github.com/datacomp/datacomp/internal/wildcopy"
)

// Level bounds for this codec. Positive levels 1-12 mirror lz4/lz4hc;
// negative levels are lz4's "acceleration" fast modes (level -N trades
// ratio for speed by skipping ~N positions per miss, like `lz4 --fast=N`).
// Level 0 is invalid.
const (
	MinLevel = -10
	MaxLevel = 12
)

const (
	minMatch   = 4
	mfLimit    = 12 // matches must start at least this far from the end
	lastLits   = 5  // the final bytes are always literals
	maxOffset  = 65535
	tokenMaxL  = 15
	tokenMaxM  = 15 // stored match length is length-4
	extByteMax = 255
)

// ErrCorrupt is returned for undecodable payloads.
var ErrCorrupt = errors.New("lz4: corrupt payload")

// params maps a level to match-finder parameters, mirroring lz4/lz4hc.
func params(level int) (lz.Params, error) {
	if level < MinLevel || level > MaxLevel || level == 0 {
		return lz.Params{}, fmt.Errorf("lz4: level %d out of range [%d,%d] (0 invalid)", level, MinLevel, MaxLevel)
	}
	p := lz.Params{
		WindowLog: 16, // format limit: 64 KiB offsets
		MinMatch:  minMatch,
		SkipStep:  1,
	}
	switch {
	case level < 0: // acceleration: skip positions on miss
		p.Strategy = lz.Fast
		p.HashLog = 13
		p.SkipStep = 1 - level // -1 → 2 ... -10 → 11
	case level == 1:
		p.Strategy = lz.Fast
		p.HashLog = 14
	case level == 2:
		p.Strategy = lz.Fast
		p.HashLog = 16
	default: // HC levels
		p.HashLog = 16
		p.ChainLog = 16
		p.Depth = 1 << uint(level-2) // 2 at L3 ... 1024 at L12
		switch {
		case level <= 5:
			p.Strategy = lz.Greedy
		case level <= 8:
			p.Strategy = lz.Lazy
		default:
			p.Strategy = lz.Lazy2
		}
	}
	return p, nil
}

// Encoder compresses buffers at a fixed level. Not safe for concurrent use.
type Encoder struct {
	level     int
	matcher   *lz.Matcher
	seqs      []lz.Sequence
	stageHook stage.Hook
}

// SetStageHook installs a hook fired at stage transitions inside
// CompressBlock: stage.MatchFind before parsing, stage.Serialize before
// token emission (LZ4 has no entropy stage), stage.App when done.
func (e *Encoder) SetStageHook(h stage.Hook) { e.stageHook = h }

func (e *Encoder) enterStage(s stage.ID) {
	if e.stageHook != nil {
		e.stageHook(s)
	}
}

// NewEncoder returns an encoder for the given level.
func NewEncoder(level int) (*Encoder, error) {
	p, err := params(level)
	if err != nil {
		return nil, err
	}
	m, err := lz.NewMatcher(p)
	if err != nil {
		return nil, err
	}
	return &Encoder{level: level, matcher: m}, nil
}

// Level returns the encoder's compression level.
func (e *Encoder) Level() int { return e.level }

// CompressBound returns the maximum compressed size for an input of n bytes.
func CompressBound(n int) int { return n + n/255 + 16 }

// Compress appends a self-describing payload (uvarint content length + LZ4
// block) to dst.
func (e *Encoder) Compress(dst, src []byte) ([]byte, error) {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(src)))
	dst = append(dst, hdr[:n]...)
	return e.CompressBlock(dst, src)
}

// CompressBlock appends the raw LZ4 block encoding of src to dst.
func (e *Encoder) CompressBlock(dst, src []byte) ([]byte, error) {
	if len(src) == 0 {
		return dst, nil
	}
	e.enterStage(stage.MatchFind)
	e.seqs = e.matcher.Parse(e.seqs[:0], src, 0)
	e.enterStage(stage.Serialize)
	out, err := emitBlock(dst, src, e.seqs)
	e.enterStage(stage.App)
	return out, err
}

// emitBlock serializes sequences in LZ4 block format, enforcing the format's
// end-of-block rules (final 5 bytes literal, matches start ≥12 from end) by
// demoting offending matches to literals.
func emitBlock(dst, src []byte, seqs []lz.Sequence) ([]byte, error) {
	pos := 0
	pendingLits := 0
	// flushSeq emits pendingLits literals ending at litEnd, then a match.
	flushSeq := func(litEnd, matchLen, offset int) {
		lits := src[litEnd-pendingLits : litEnd]
		token := byte(0)
		ll := len(lits)
		if ll >= tokenMaxL {
			token = tokenMaxL << 4
		} else {
			token = byte(ll) << 4
		}
		if matchLen > 0 {
			m := matchLen - minMatch
			if m >= tokenMaxM {
				token |= tokenMaxM
			} else {
				token |= byte(m)
			}
		}
		dst = append(dst, token)
		if ll >= tokenMaxL {
			rem := ll - tokenMaxL
			for rem >= extByteMax {
				dst = append(dst, extByteMax)
				rem -= extByteMax
			}
			dst = append(dst, byte(rem))
		}
		dst = append(dst, lits...)
		if matchLen > 0 {
			dst = append(dst, byte(offset), byte(offset>>8))
			m := matchLen - minMatch
			if m >= tokenMaxM {
				rem := m - tokenMaxM
				for rem >= extByteMax {
					dst = append(dst, extByteMax)
					rem -= extByteMax
				}
				dst = append(dst, byte(rem))
			}
		}
	}

	for _, s := range seqs {
		pos += int(s.LitLen)
		pendingLits += int(s.LitLen)
		if s.MatchLen == 0 {
			continue
		}
		matchStart := pos
		matchLen := int(s.MatchLen)
		pos += matchLen
		// End-of-block rules: trim matches that run into the final literal
		// region, demote entirely when they start too late or the trimmed
		// remainder is too short.
		if over := matchStart + matchLen - (len(src) - lastLits); over > 0 {
			matchLen -= over
		}
		if matchStart > len(src)-mfLimit || matchLen < minMatch || s.Offset > maxOffset {
			pendingLits += int(s.MatchLen)
			continue
		}
		flushSeq(matchStart, matchLen, int(s.Offset))
		pendingLits = int(s.MatchLen) - matchLen // trimmed tail becomes literals
	}
	if pendingLits > 0 || len(seqs) == 0 {
		flushSeq(pos, 0, 0)
	}
	if pos != len(src) {
		return nil, fmt.Errorf("lz4: internal parse coverage error (%d != %d)", pos, len(src))
	}
	return dst, nil
}

// Decoder decompresses payloads produced by an Encoder. LZ4 decoding is
// stateless, so the type exists for constructor symmetry with the zstd and
// zlibx packages (NewEncoder/NewDecoder pairs) and as an anchor for future
// decoder-side state (streaming windows, dictionaries).
type Decoder struct{}

// NewDecoder returns a Decoder.
func NewDecoder() *Decoder { return &Decoder{} }

// Decompress decodes a payload produced by Compress, appending to dst.
func (d *Decoder) Decompress(dst, src []byte) ([]byte, error) { return Decompress(dst, src) }

// DecompressBlock decodes a raw LZ4 block of known decompressed size.
func (d *Decoder) DecompressBlock(dst, src []byte, size int) ([]byte, error) {
	return DecompressBlock(dst, src, size)
}

// Decompress decodes a payload produced by Compress, appending to dst.
func Decompress(dst, src []byte) ([]byte, error) {
	size, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	if size > 1<<31 {
		return nil, ErrCorrupt
	}
	return DecompressBlock(dst, src[n:], int(size))
}

// DecompressBlock decodes a raw LZ4 block of known decompressed size,
// appending exactly size bytes to dst.
func DecompressBlock(dst, src []byte, size int) ([]byte, error) {
	if size == 0 {
		if len(src) != 0 {
			return nil, ErrCorrupt
		}
		return dst, nil
	}
	base := len(dst)
	// The content size is known up front, so one reservation covers the
	// whole block plus wildcopy slack: every match below can run the
	// unconditional 16-byte chunk path.
	out := wildcopy.Reserve(dst, size+16)
	i := 0
	for {
		if i >= len(src) {
			return nil, ErrCorrupt
		}
		token := src[i]
		i++
		// Literal run.
		ll := int(token >> 4)
		if ll == tokenMaxL {
			for {
				if i >= len(src) {
					return nil, ErrCorrupt
				}
				b := src[i]
				i++
				ll += int(b)
				if b != extByteMax {
					break
				}
			}
		}
		if i+ll > len(src) || len(out)-base+ll > size {
			return nil, ErrCorrupt
		}
		out = append(out, src[i:i+ll]...)
		i += ll
		if i == len(src) {
			break // final literal-only sequence
		}
		// Match.
		if i+2 > len(src) {
			return nil, ErrCorrupt
		}
		offset := int(src[i]) | int(src[i+1])<<8
		i += 2
		if offset == 0 || offset > len(out)-base {
			return nil, ErrCorrupt
		}
		ml := int(token&0xf) + minMatch
		if token&0xf == tokenMaxM {
			for {
				if i >= len(src) {
					return nil, ErrCorrupt
				}
				b := src[i]
				i++
				ml += int(b)
				if b != extByteMax {
					break
				}
			}
		}
		if len(out)-base+ml > size {
			return nil, ErrCorrupt
		}
		if offset >= 16 {
			out = wildcopy.MatchSlack(out, offset, ml)
		} else {
			out = wildcopy.Match(out, offset, ml)
		}
	}
	if len(out)-base != size {
		return nil, ErrCorrupt
	}
	return out, nil
}
