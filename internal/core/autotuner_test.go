package core

import (
	"math/rand"
	"testing"

	"github.com/datacomp/datacomp/internal/corpus"
)

func tunerEngine() *CompEngine {
	p := DefaultCostParams()
	// Balance the terms so that on compressible data the ratio advantage
	// (storage over a long retention) picks zstd by a wide margin, while on
	// incompressible data ratios tie and (read-weighted) compute picks lz4.
	p.AlphaCompute *= 10
	p.RetentionDays = 90
	p.DecompressWeight = 10
	p.AlphaNetwork = 0
	return &CompEngine{Params: p, Repeats: 2}
}

func tunerCandidates() []Config {
	return []Config{
		{Algorithm: "zstd", Level: 6},
		{Algorithm: "lz4", Level: 1},
	}
}

func TestAutoTunerFirstRetune(t *testing.T) {
	tuner, err := NewAutoTuner(tunerEngine(), tunerCandidates())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tuner.Retune(); err != ErrNoSamples {
		t.Fatalf("want ErrNoSamples, got %v", err)
	}
	tuner.Observe(corpus.XML(1, 64<<10))
	res, changed, err := tuner.Retune()
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("first retune must set a configuration")
	}
	cur, ok := tuner.Current()
	if !ok || cur.Config.String() != res.Config.String() {
		t.Fatal("current not tracked")
	}
	if res.Config.Algorithm != "zstd" {
		t.Fatalf("compressible markup should pick zstd, got %s", res.Config)
	}
}

func TestAutoTunerSwitchesOnDrift(t *testing.T) {
	tuner, err := NewAutoTuner(tunerEngine(), tunerCandidates())
	if err != nil {
		t.Fatal(err)
	}
	tuner.WindowSize = 4
	tuner.SwitchThreshold = 0.02

	// Phase 1: highly compressible markup → zstd wins on storage cost.
	for i := 0; i < 4; i++ {
		tuner.Observe(corpus.XML(int64(i), 64<<10))
	}
	res, _, err := tuner.Retune()
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Algorithm != "zstd" {
		t.Fatalf("phase 1 should pick zstd, got %s", res.Config)
	}

	// Phase 2: already-compressed (incompressible) payloads flood the
	// window → ratio ties, compute decides, lz4-1 wins.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4; i++ {
		blob := make([]byte, 64<<10)
		rng.Read(blob)
		tuner.Observe(blob)
	}
	res, changed, err := tuner.Retune()
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("drift should trigger a switch")
	}
	if res.Config.Algorithm != "lz4" {
		t.Fatalf("phase 2 should pick lz4, got %s", res.Config)
	}
	if tuner.Switches < 2 || tuner.Retunes != 2 {
		t.Fatalf("switches=%d retunes=%d", tuner.Switches, tuner.Retunes)
	}
}

func TestAutoTunerHysteresis(t *testing.T) {
	tuner, err := NewAutoTuner(tunerEngine(), tunerCandidates())
	if err != nil {
		t.Fatal(err)
	}
	tuner.SwitchThreshold = 0.95 // nearly impossible to displace
	tuner.Observe(corpus.XML(1, 64<<10))
	if _, _, err := tuner.Retune(); err != nil {
		t.Fatal(err)
	}
	before, _ := tuner.Current()
	// Same-ish data again: no switch expected under extreme hysteresis.
	tuner.Observe(corpus.XML(2, 64<<10))
	_, changed, err := tuner.Retune()
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("hysteresis should prevent flapping")
	}
	after, _ := tuner.Current()
	if before.Config.String() != after.Config.String() {
		t.Fatal("incumbent changed without a switch")
	}
}

func TestAutoTunerSwitchesWhenIncumbentInfeasible(t *testing.T) {
	e := tunerEngine()
	e.Constraints.MinCompressMBps = 30
	tuner, err := NewAutoTuner(e, tunerCandidates())
	if err != nil {
		t.Fatal(err)
	}
	tuner.SwitchThreshold = 0.99 // only infeasibility can force a switch
	// Tiny, highly compressible samples keep zstd-9 fast enough at first.
	tuner.Observe(corpus.XML(1, 128<<10))
	if _, _, err := tuner.Retune(); err != nil {
		t.Fatal(err)
	}
	cur, _ := tuner.Current()
	if cur.Config.Algorithm != "zstd" {
		t.Skipf("zstd-9 not picked initially (%s); environment too slow", cur.Config)
	}
	// Hard data makes zstd-9 crawl below the SLO; the tuner must move.
	tuner.window = nil
	rng := rand.New(rand.NewSource(3))
	blob := make([]byte, 256<<10)
	rng.Read(blob)
	tuner.Observe(blob)
	res, changed, err := tuner.Retune()
	if err != nil {
		t.Fatal(err)
	}
	if !changed || res.Config.Algorithm != "lz4" {
		t.Fatalf("infeasible incumbent should force a switch, got %s (changed=%v)", res.Config, changed)
	}
}

func TestAutoTunerWindowBounds(t *testing.T) {
	tuner, err := NewAutoTuner(tunerEngine(), tunerCandidates())
	if err != nil {
		t.Fatal(err)
	}
	tuner.WindowSize = 3
	for i := 0; i < 10; i++ {
		tuner.Observe([]byte("sample data sample data"))
	}
	if tuner.WindowLen() != 3 {
		t.Fatalf("window = %d", tuner.WindowLen())
	}
	tuner.Observe(nil) // ignored
	if tuner.WindowLen() != 3 {
		t.Fatal("empty sample should be ignored")
	}
}

func TestNewAutoTunerValidation(t *testing.T) {
	if _, err := NewAutoTuner(nil, tunerCandidates()); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewAutoTuner(tunerEngine(), nil); err == nil {
		t.Error("empty candidates accepted")
	}
}
