package core

import (
	"strings"
	"testing"
	"time"

	"github.com/datacomp/datacomp/internal/corpus"
)

func adsEngine(t *testing.T) *CompEngine {
	t.Helper()
	p := DefaultCostParams()
	p.AlphaStorage = 0 // ads: intermediate data is not stored
	return &CompEngine{
		Samples: corpus.ModelB.Requests(1, 3),
		Params:  p,
	}
}

func TestEvaluateBasics(t *testing.T) {
	e := adsEngine(t)
	r, err := e.Evaluate(Config{Algorithm: "zstd", Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatalf("unconstrained config infeasible: %s", r.Violation)
	}
	if r.ComputeCost <= 0 || r.NetworkCost <= 0 {
		t.Fatalf("costs not computed: %+v", r)
	}
	if r.StorageCost != 0 {
		t.Fatalf("storage cost should be zero with alpha=0: %v", r.StorageCost)
	}
	if r.TotalCost() != r.ComputeCost+r.StorageCost+r.NetworkCost {
		t.Fatal("total mismatch")
	}
	if r.Metrics.Ratio() <= 1 {
		t.Fatalf("ratio = %v", r.Metrics.Ratio())
	}
}

func TestEvaluateErrors(t *testing.T) {
	e := adsEngine(t)
	if _, err := e.Evaluate(Config{Algorithm: "nope", Level: 1}); err == nil {
		t.Error("unknown codec accepted")
	}
	empty := &CompEngine{Params: DefaultCostParams()}
	if _, err := empty.Evaluate(Config{Algorithm: "zstd", Level: 1}); err == nil {
		t.Error("empty samples accepted")
	}
	bad := adsEngine(t)
	bad.Params.Base = 0
	if _, err := bad.Evaluate(Config{Algorithm: "zstd", Level: 1}); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := e.Evaluate(Config{Algorithm: "zstd", Level: 1,
		Accel: &Accelerator{SpeedFactor: 0}}); err == nil {
		t.Error("zero-speed accelerator accepted")
	}
}

func TestConstraintsFilter(t *testing.T) {
	e := adsEngine(t)
	// Impossible speed requirement: everything infeasible.
	e.Constraints.MinCompressMBps = 1e9
	r, err := e.Evaluate(Config{Algorithm: "zstd", Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible || !strings.Contains(r.Violation, "compress speed") {
		t.Fatalf("constraint not applied: %+v", r)
	}
	if _, _, err := e.Search([]Config{{Algorithm: "zstd", Level: 1}}); err != ErrNoFeasible {
		t.Fatalf("want ErrNoFeasible, got %v", err)
	}
}

func TestDecompressLatencyConstraint(t *testing.T) {
	e := &CompEngine{
		Samples: [][]byte{corpus.SSTSample(1, 1<<20)},
		Params:  DefaultCostParams(),
		Constraints: Constraints{
			MaxDecompressPerBlock: time.Nanosecond, // impossible
		},
	}
	r, err := e.Evaluate(Config{Algorithm: "zstd", Level: 1, BlockSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible || !strings.Contains(r.Violation, "per-block") {
		t.Fatalf("latency constraint not applied: %+v", r)
	}
}

func TestSearchPicksCheapestFeasible(t *testing.T) {
	e := adsEngine(t)
	best, all, err := e.Search(DefaultCandidates(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(DefaultCandidates(nil)) {
		t.Fatalf("results = %d", len(all))
	}
	for _, r := range all {
		if r.Feasible && r.TotalCost() < best.TotalCost() {
			t.Fatalf("search missed cheaper config %s", r.Config)
		}
	}
	// Results are sorted.
	for i := 1; i < len(all); i++ {
		if all[i].TotalCost() < all[i-1].TotalCost() {
			t.Fatal("results not sorted")
		}
	}
}

func TestStorageCostScalesWithRetention(t *testing.T) {
	samples := [][]byte{corpus.SSTSample(2, 1<<19)}
	short := &CompEngine{Samples: samples, Params: DefaultCostParams()}
	long := &CompEngine{Samples: samples, Params: DefaultCostParams()}
	long.Params.RetentionDays = 300
	cfg := Config{Algorithm: "zstd", Level: 3}
	rs, err := short.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := long.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rl.StorageCost <= rs.StorageCost*9 {
		t.Fatalf("10x retention should scale storage cost ≈10x: %v vs %v",
			rl.StorageCost, rs.StorageCost)
	}
}

func TestSamplingRateScalesCosts(t *testing.T) {
	samples := [][]byte{corpus.SSTSample(3, 1<<18)}
	full := &CompEngine{Samples: samples, Params: DefaultCostParams()}
	sampled := &CompEngine{Samples: samples, Params: DefaultCostParams()}
	sampled.Params.SamplingRate = 0.01 // samples represent 1% of traffic
	cfg := Config{Algorithm: "lz4", Level: 1}
	rf, err := full.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sampled.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rs.NetworkCost < rf.NetworkCost*50 {
		t.Fatalf("β=0.01 should scale costs ≈100x: %v vs %v", rs.NetworkCost, rf.NetworkCost)
	}
}

func TestAcceleratorScalesSpeedAndCost(t *testing.T) {
	samples := [][]byte{corpus.SSTSample(5, 1<<19)}
	e := &CompEngine{Samples: samples, Params: DefaultCostParams(), Repeats: 2}
	sw, err := e.Evaluate(Config{Algorithm: "zstd", Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	hw, err := e.Evaluate(Config{Algorithm: "zstd", Level: 1,
		Accel: &Accelerator{Name: "acc", SpeedFactor: 10, AlphaCompute: EIAComputeAlpha}})
	if err != nil {
		t.Fatal(err)
	}
	// γ=10 should raise effective speed ~10x (timing noise allowed).
	if hw.Metrics.CompressMBps() < sw.Metrics.CompressMBps()*4 {
		t.Fatalf("accelerator speed not scaled: %v vs %v",
			hw.Metrics.CompressMBps(), sw.Metrics.CompressMBps())
	}
	// Same ratio: same bytes.
	if hw.Metrics.CompressedBytes != sw.Metrics.CompressedBytes {
		t.Fatal("accelerator should not change the ratio")
	}
}

func TestGridAndSweep(t *testing.T) {
	g := Grid(map[string][]int{"zstd": {1, 3}, "lz4": {1}}, []int{0, 4096})
	if len(g) != 6 {
		t.Fatalf("grid size = %d", len(g))
	}
	seen := map[string]bool{}
	for _, c := range g {
		seen[c.String()] = true
	}
	if len(seen) != 6 {
		t.Fatal("duplicate configs in grid")
	}
	ws := WindowSweep("zstd", 1, 16<<10, 10, 24, 10, EIAComputeAlpha)
	if len(ws) != 15 {
		t.Fatalf("sweep size = %d", len(ws))
	}
	for _, c := range ws {
		if c.Accel == nil || c.Accel.SpeedFactor != 10 {
			t.Fatalf("sweep config missing accelerator: %+v", c)
		}
	}
}

func TestConfigString(t *testing.T) {
	c := Config{Algorithm: "zstd", Level: 3, BlockSize: 64 << 10}
	if got := c.String(); got != "(zstd, 3, 64KB)" {
		t.Fatalf("got %q", got)
	}
	plain := Config{Algorithm: "lz4", Level: 1}
	if got := plain.String(); got != "(lz4, 1)" {
		t.Fatalf("got %q", got)
	}
}

func TestDecompressWeight(t *testing.T) {
	samples := [][]byte{corpus.SSTSample(7, 1<<18)}
	noReads := &CompEngine{Samples: samples, Params: DefaultCostParams()}
	manyReads := &CompEngine{Samples: samples, Params: DefaultCostParams()}
	manyReads.Params.DecompressWeight = 100
	cfg := Config{Algorithm: "zstd", Level: 3}
	a, err := noReads.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := manyReads.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.ComputeCost <= a.ComputeCost {
		t.Fatal("read weighting should raise compute cost")
	}
}
