// Package core implements CompOpt, the paper's first-order compression
// optimizer (§V): given sample data from a service, service-specific cost
// weights, and SLO constraints, it enumerates candidate compression
// configurations (CompEngine), measures each candidate's compression
// metrics on the samples, prices them with the analytical cost model of
// equations (1)-(4), and returns the cheapest feasible configuration.
//
// CompSim, the hardware-accelerator what-if interface, treats a
// hypothetical accelerator as another compressor: a software engine
// (optionally running a simplified, window-capped variant of the algorithm,
// as HW implementations must) is measured and its speed is scaled by the
// designer's factor γ, with a separate compute-cost coefficient.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/datacomp/datacomp/internal/codec"
)

// Config is one compression configuration x — the tuple (algorithm, level,
// block size) from the paper, extended with the window override and
// optional accelerator used by sensitivity study 3.
type Config struct {
	Algorithm string
	Level     int
	// BlockSize splits inputs into independently compressed blocks
	// (0 = whole input), the knob of sensitivity study 2.
	BlockSize int
	// WindowLog caps the match window (zstd only; 0 = level default), the
	// knob of sensitivity study 3.
	WindowLog uint
	// Dict supplies a shared dictionary (zstd only).
	Dict []byte
	// Accel marks this configuration as a CompSim accelerator candidate.
	Accel *Accelerator
}

// String renders the configuration like the paper: (Zstd, 3, 64KB).
func (c Config) String() string {
	s := fmt.Sprintf("(%s, %d", c.Algorithm, c.Level)
	if c.BlockSize > 0 {
		s += fmt.Sprintf(", %dKB", c.BlockSize/1024)
	}
	if c.WindowLog > 0 {
		s += fmt.Sprintf(", w%d", c.WindowLog)
	}
	if c.Accel != nil {
		s += ", " + c.Accel.Name
	}
	return s + ")"
}

// Accelerator describes a hypothetical compression offload for CompSim.
type Accelerator struct {
	// Name labels the design point.
	Name string
	// SpeedFactor is γ: measured software (de)compression speed is
	// multiplied by it.
	SpeedFactor float64
	// AlphaCompute replaces CostParams.AlphaCompute for this device
	// (accelerator cycles are priced differently from host CPU cycles;
	// the paper uses Amazon EIA pricing).
	AlphaCompute float64
}

// CostParams are the inputs of equations (1)-(3). All alphas are relative
// prices; Base (B) scales everything; SamplingRate (β) is the fraction of
// the service's compression calls the samples represent; RetentionDays (R)
// weights storage.
type CostParams struct {
	AlphaCompute  float64
	AlphaStorage  float64
	AlphaNetwork  float64
	Base          float64
	SamplingRate  float64
	RetentionDays float64
	// DecompressWeight adds decompression time into the compute cost with
	// this weight (0 follows the paper's equation (1), which prices
	// compression only; read-heavy services set >0 — e.g. the mean number
	// of reads per written object).
	DecompressWeight float64
}

// DefaultCostParams prices resources from the March-2023 public AWS sheets
// the paper cites: EC2 on-demand compute (c5, ≈$0.0425/vCPU-hour), S3
// storage ($0.023/GB-month) and internet egress ($0.09/GB).
func DefaultCostParams() CostParams {
	return CostParams{
		AlphaCompute:  0.0425 / 3600,    // $ per CPU-second
		AlphaStorage:  0.023 / 30 / 1e9, // $ per byte-day
		AlphaNetwork:  0.09 / 1e9,       // $ per byte
		Base:          1,
		SamplingRate:  1,
		RetentionDays: 30,
	}
}

// EIAComputeAlpha is the accelerator compute price used by sensitivity
// study 3 (Amazon Elastic Inference, ≈$0.12/hour for eia2.medium).
const EIAComputeAlpha = 0.12 / 3600

// Validate checks the parameters.
func (p CostParams) Validate() error {
	if p.Base <= 0 {
		return errors.New("core: Base must be positive")
	}
	if p.SamplingRate <= 0 || p.SamplingRate > 1 {
		return errors.New("core: SamplingRate must be in (0,1]")
	}
	if p.AlphaCompute < 0 || p.AlphaStorage < 0 || p.AlphaNetwork < 0 || p.RetentionDays < 0 || p.DecompressWeight < 0 {
		return errors.New("core: negative cost parameter")
	}
	return nil
}

// Constraints are the service SLOs a configuration must satisfy.
type Constraints struct {
	// MinCompressMBps rejects configurations that compress too slowly
	// (study 1: ≥200 MB/s for the latency-sensitive ads service).
	MinCompressMBps float64
	// MaxDecompressPerBlock rejects configurations whose mean per-block
	// decompression latency exceeds the read SLO (study 2: ≤0.08 ms).
	MaxDecompressPerBlock time.Duration
}

// Result is one evaluated candidate.
type Result struct {
	Config  Config
	Metrics codec.Metrics

	ComputeCost float64
	StorageCost float64
	NetworkCost float64

	Feasible bool
	// Violation explains infeasibility.
	Violation string
}

// TotalCost is the objective of equation (4).
func (r Result) TotalCost() float64 { return r.ComputeCost + r.StorageCost + r.NetworkCost }

// CompEngine measures candidate configurations against sample data — the
// CompEngine box of the paper's Fig 14.
type CompEngine struct {
	// Samples is the service's sample data set S.
	Samples [][]byte
	// Params is the cost model.
	Params CostParams
	// Constraints are the service SLOs.
	Constraints Constraints
	// Repeats stabilizes timing measurements (default 1).
	Repeats int

	// engines caches one constructed engine per configuration signature.
	// Matcher tables run to megabytes at high levels, so re-evaluating the
	// same candidate list every AutoTuner.Retune or adaptive shadow round
	// must not rebuild them; the cache makes Evaluate's steady state
	// measurement-only.
	engines map[string]codec.Engine
}

// engineKey identifies a cached scratch engine. Config.String omits the
// dictionary, which changes the engine, so key on its length and first
// bytes too (dict candidates within one CompEngine are retrain outputs
// that differ in content and length).
func engineKey(cfg Config) string {
	k := cfg.Algorithm + "|" + fmt.Sprint(cfg.Level) + "|" + fmt.Sprint(cfg.WindowLog)
	if len(cfg.Dict) > 0 {
		n := min(len(cfg.Dict), 16)
		k += fmt.Sprintf("|d%d:%x", len(cfg.Dict), cfg.Dict[:n])
	}
	return k
}

// engine returns the cached scratch engine for cfg, constructing it once.
func (e *CompEngine) engine(cfg Config) (codec.Engine, error) {
	k := engineKey(cfg)
	if eng, ok := e.engines[k]; ok {
		return eng, nil
	}
	eng, err := codec.NewEngine(cfg.Algorithm,
		codec.WithLevel(cfg.Level),
		codec.WithWindowLog(cfg.WindowLog),
		codec.WithDict(cfg.Dict),
	)
	if err != nil {
		return nil, err
	}
	if e.engines == nil {
		e.engines = make(map[string]codec.Engine)
	}
	e.engines[k] = eng
	return eng, nil
}

// Evaluate measures one configuration and prices it.
func (e *CompEngine) Evaluate(cfg Config) (Result, error) {
	if err := e.Params.Validate(); err != nil {
		return Result{}, err
	}
	if len(e.Samples) == 0 {
		return Result{}, errors.New("core: no sample data")
	}
	eng, err := e.engine(cfg)
	if err != nil {
		return Result{}, err
	}
	repeats := e.Repeats
	if repeats < 1 {
		repeats = 1
	}
	m, err := codec.Measure(eng, e.Samples, cfg.BlockSize, repeats)
	if err != nil {
		return Result{}, fmt.Errorf("core: measuring %s: %w", cfg, err)
	}
	return e.PriceMeasured(cfg, m)
}

// PriceMeasured prices a configuration from externally measured metrics —
// equations (1)-(4) applied to a BENCH_codec.json row or an adaptive
// shadow trial instead of a fresh in-process measurement. This is the
// pricing half of Evaluate, so offline and online CompOpt score with the
// same model.
func (e *CompEngine) PriceMeasured(cfg Config, m codec.Metrics) (Result, error) {
	if err := e.Params.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Accel != nil {
		if cfg.Accel.SpeedFactor <= 0 {
			return Result{}, errors.New("core: accelerator speed factor must be positive")
		}
		// CompSim: same ratio, γ-scaled speeds.
		m.CompressTime = time.Duration(float64(m.CompressTime) / cfg.Accel.SpeedFactor)
		m.DecompressTime = time.Duration(float64(m.DecompressTime) / cfg.Accel.SpeedFactor)
	}
	r := Result{Config: cfg, Metrics: m, Feasible: true}

	// Equations (1)-(3). Size(s)/CompSpeed(x,s) summed over samples is the
	// total measured compression time.
	alphaC := e.Params.AlphaCompute
	if cfg.Accel != nil {
		alphaC = cfg.Accel.AlphaCompute
	}
	b := e.Params.Base / e.Params.SamplingRate
	computeSeconds := m.CompressTime.Seconds() + e.Params.DecompressWeight*m.DecompressTime.Seconds()
	r.ComputeCost = alphaC * b * computeSeconds
	r.StorageCost = e.Params.AlphaStorage * b * e.Params.RetentionDays * float64(m.CompressedBytes)
	r.NetworkCost = e.Params.AlphaNetwork * b * float64(m.CompressedBytes)

	if e.Constraints.MinCompressMBps > 0 && m.CompressMBps() < e.Constraints.MinCompressMBps {
		r.Feasible = false
		r.Violation = fmt.Sprintf("compress speed %.0f MB/s below %.0f MB/s",
			m.CompressMBps(), e.Constraints.MinCompressMBps)
	}
	if e.Constraints.MaxDecompressPerBlock > 0 && m.DecompressPerBlock() > e.Constraints.MaxDecompressPerBlock {
		r.Feasible = false
		r.Violation = fmt.Sprintf("per-block decompression %v above %v",
			m.DecompressPerBlock(), e.Constraints.MaxDecompressPerBlock)
	}
	return r, nil
}

// ErrNoFeasible is returned when every candidate violates the constraints.
var ErrNoFeasible = errors.New("core: no feasible configuration")

// Search evaluates all candidates and returns the feasible cost minimizer
// (equation (4)) plus every result sorted by total cost. The exhaustive
// scan follows the paper ("the exhaustive search is sufficient for our
// study").
func (e *CompEngine) Search(candidates []Config) (Result, []Result, error) {
	if len(candidates) == 0 {
		return Result{}, nil, errors.New("core: no candidates")
	}
	results := make([]Result, 0, len(candidates))
	for _, cfg := range candidates {
		r, err := e.Evaluate(cfg)
		if err != nil {
			return Result{}, nil, err
		}
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].TotalCost() < results[j].TotalCost() })
	best := Result{}
	bestCost := math.Inf(1)
	found := false
	for _, r := range results {
		if r.Feasible && r.TotalCost() < bestCost {
			best = r
			bestCost = r.TotalCost()
			found = true
		}
	}
	if !found {
		return Result{}, results, ErrNoFeasible
	}
	return best, results, nil
}

// Grid builds the candidate cross product of algorithms × levels × block
// sizes. levels maps algorithm name to the level list; blockSizes may be
// nil for whole-input compression.
func Grid(levels map[string][]int, blockSizes []int) []Config {
	if len(blockSizes) == 0 {
		blockSizes = []int{0}
	}
	algos := make([]string, 0, len(levels))
	for a := range levels {
		algos = append(algos, a)
	}
	sort.Strings(algos)
	var out []Config
	for _, a := range algos {
		for _, l := range levels[a] {
			for _, bs := range blockSizes {
				out = append(out, Config{Algorithm: a, Level: l, BlockSize: bs})
			}
		}
	}
	return out
}

// DefaultCandidates returns the standard search space used by the
// sensitivity studies: all three codecs over a representative level sweep.
func DefaultCandidates(blockSizes []int) []Config {
	return Grid(map[string][]int{
		"zstd": {-5, -1, 1, 2, 3, 4, 6, 9, 12},
		"lz4":  {1, 3, 6, 9, 10, 12},
		"zlib": {1, 6, 9},
	}, blockSizes)
}

// WindowSweep builds CompSim candidates over match-window sizes for a
// fixed algorithm/level — the study-3 sweep. gamma is the accelerator
// speed factor; alphaCompute its compute price.
func WindowSweep(algorithm string, level int, blockSize int, minLog, maxLog uint, gamma, alphaCompute float64) []Config {
	var out []Config
	for w := minLog; w <= maxLog; w++ {
		out = append(out, Config{
			Algorithm: algorithm,
			Level:     level,
			BlockSize: blockSize,
			WindowLog: w,
			Accel: &Accelerator{
				Name:         fmt.Sprintf("hw-w%d", w),
				SpeedFactor:  gamma,
				AlphaCompute: alphaCompute,
			},
		})
	}
	return out
}
