package core

import (
	"errors"
	"fmt"
	"sync"

	"github.com/datacomp/datacomp/internal/telemetry"
)

// Package-level telemetry on the shared registry, registered at first
// Retune. The tuner used to be invisible at runtime; now every retune
// attempt, configuration switch, and the incumbent config are scrapeable
// next to the serving-path metrics they explain.
var (
	atOnce     sync.Once
	atRetunes  *telemetry.Counter
	atSwitches *telemetry.Counter
	atFailed   *telemetry.Counter
)

func at() {
	atOnce.Do(func() {
		r := telemetry.Default
		atRetunes = r.Counter("autotuner_retunes_total", "AutoTuner optimization runs")
		atSwitches = r.Counter("autotuner_switches_total", "AutoTuner configuration changes")
		atFailed = r.Counter("autotuner_retune_errors_total", "AutoTuner runs that found no feasible configuration or failed to measure")
	})
}

// AutoTuner implements the paper's §VI-C proposal: a cost/SLO-aware tuner
// that re-optimizes a service's compression configuration as its data
// characteristics drift, instead of a one-off manual experiment. It keeps a
// sliding window of recent payload samples; Retune runs the CompOpt search
// over the window and switches configurations only when the incumbent is
// either infeasible on current data or beaten by more than the hysteresis
// threshold (configuration flaps are themselves an operational cost).
type AutoTuner struct {
	// Engine prices and constrains candidates (its Samples field is
	// managed by the tuner). The engine's scratch codec engines are cached
	// per configuration, so repeated Retunes measure with warm matchers
	// instead of reconstructing megabytes of tables each run.
	Engine *CompEngine
	// Candidates is the search space.
	Candidates []Config
	// WindowSize bounds retained samples (default 32).
	WindowSize int
	// SwitchThreshold is the fractional cost improvement a challenger
	// needs to displace the incumbent (default 0.05).
	SwitchThreshold float64

	window  [][]byte
	current Result
	haveCur bool
	// Switches counts configuration changes over the tuner's lifetime.
	Switches int
	// Retunes counts optimization runs.
	Retunes int

	curGauge *telemetry.Gauge // autotuner_current{config=...}, 1 while incumbent
}

// NewAutoTuner wires a tuner around a configured CompEngine.
func NewAutoTuner(engine *CompEngine, candidates []Config) (*AutoTuner, error) {
	if engine == nil {
		return nil, errors.New("core: nil engine")
	}
	if len(candidates) == 0 {
		return nil, errors.New("core: no candidates")
	}
	return &AutoTuner{
		Engine:          engine,
		Candidates:      candidates,
		WindowSize:      32,
		SwitchThreshold: 0.05,
	}, nil
}

// Observe adds a recent payload sample to the sliding window.
func (t *AutoTuner) Observe(sample []byte) {
	if len(sample) == 0 {
		return
	}
	t.window = append(t.window, append([]byte{}, sample...))
	if t.WindowSize > 0 && len(t.window) > t.WindowSize {
		t.window = t.window[len(t.window)-t.WindowSize:]
	}
}

// WindowLen reports the number of retained samples.
func (t *AutoTuner) WindowLen() int { return len(t.window) }

// Current returns the incumbent configuration, if any.
func (t *AutoTuner) Current() (Result, bool) { return t.current, t.haveCur }

// publish flips the labeled current-config gauge to the new incumbent.
func (t *AutoTuner) publish(cfg Config) {
	if t.curGauge != nil {
		t.curGauge.Set(0)
	}
	t.curGauge = telemetry.Default.Gauge(
		telemetry.Label("autotuner_current", "config", cfg.String()),
		"1 while this configuration is the AutoTuner incumbent")
	t.curGauge.Set(1)
}

// ErrNoSamples is returned when Retune runs before any Observe.
var ErrNoSamples = errors.New("core: no observed samples")

// Retune re-runs the search over the current window. It returns the active
// configuration after the run and whether it changed.
func (t *AutoTuner) Retune() (Result, bool, error) {
	if len(t.window) == 0 {
		return Result{}, false, ErrNoSamples
	}
	at()
	t.Engine.Samples = t.window
	t.Retunes++
	atRetunes.Inc()
	best, _, err := t.Engine.Search(t.Candidates)
	if err != nil {
		atFailed.Inc()
		return Result{}, false, fmt.Errorf("core: retune: %w", err)
	}
	if !t.haveCur {
		t.current = best
		t.haveCur = true
		t.Switches++
		atSwitches.Inc()
		t.publish(best.Config)
		return best, true, nil
	}
	// Re-price the incumbent on current data; switch when it went
	// infeasible or the challenger clears the hysteresis bar.
	incumbent, err := t.Engine.Evaluate(t.current.Config)
	if err != nil {
		atFailed.Inc()
		return Result{}, false, err
	}
	mustSwitch := !incumbent.Feasible
	better := best.TotalCost() < incumbent.TotalCost()*(1-t.SwitchThreshold)
	if (mustSwitch || better) && best.Config.String() != t.current.Config.String() {
		t.current = best
		t.Switches++
		atSwitches.Inc()
		t.publish(best.Config)
		return best, true, nil
	}
	t.current = incumbent // refresh the incumbent's metrics
	return incumbent, false, nil
}
