// Package hist provides byte-symbol frequency statistics and the count
// normalization used to build FSE coding tables: frequencies are scaled to a
// power-of-two total while guaranteeing every present symbol keeps a nonzero
// slot.
package hist

import (
	"errors"
	"math"
	mathbits "math/bits"
)

// MaxSymbols is the size of the byte-symbol alphabet handled by this package.
const MaxSymbols = 256

// Histogram holds frequency counts for a byte alphabet.
type Histogram struct {
	Counts    [MaxSymbols]uint32
	Total     int // number of symbols counted
	MaxSymbol int // largest symbol with a nonzero count, -1 when empty
}

// Count tallies the symbols of data into a fresh Histogram.
func Count(data []byte) Histogram {
	var h Histogram
	h.MaxSymbol = -1
	for _, b := range data {
		h.Counts[b]++
	}
	h.Total = len(data)
	for s := MaxSymbols - 1; s >= 0; s-- {
		if h.Counts[s] != 0 {
			h.MaxSymbol = s
			break
		}
	}
	return h
}

// CountSymbols tallies an arbitrary symbol stream whose values must all be
// < MaxSymbols.
func CountSymbols(syms []byte) Histogram { return Count(syms) }

// Distinct reports the number of symbols with a nonzero count.
func (h *Histogram) Distinct() int {
	n := 0
	for s := 0; s <= h.MaxSymbol; s++ {
		if h.Counts[s] != 0 {
			n++
		}
	}
	return n
}

// IsSingleSymbol reports whether exactly one symbol occurs in the data.
func (h *Histogram) IsSingleSymbol() bool {
	return h.Total > 0 && h.MaxSymbol >= 0 && int(h.Counts[h.MaxSymbol]) == h.Total
}

// ShannonEntropy returns the empirical entropy of the histogram in bits per
// symbol. An empty histogram has zero entropy.
func (h *Histogram) ShannonEntropy() float64 {
	if h.Total == 0 {
		return 0
	}
	e := 0.0
	total := float64(h.Total)
	for s := 0; s <= h.MaxSymbol; s++ {
		if c := h.Counts[s]; c != 0 {
			p := float64(c) / total
			e -= p * math.Log2(p)
		}
	}
	return e
}

// EstimateCompressedBits returns the entropy-ideal size in bits of coding the
// histogram's data with an order-0 coder, excluding table headers.
func (h *Histogram) EstimateCompressedBits() float64 {
	return h.ShannonEntropy() * float64(h.Total)
}

// MinTableLog and MaxTableLog bound the FSE table sizes supported by the
// repository's coders.
const (
	MinTableLog = 5
	MaxTableLog = 12
)

// OptimalTableLog picks a table size for normalizing a histogram: large
// enough to represent the alphabet, small enough that tables stay cache
// resident for short inputs. maxLog caps the result and is clamped to
// [MinTableLog, MaxTableLog].
func OptimalTableLog(h *Histogram, maxLog uint) uint {
	if maxLog > MaxTableLog {
		maxLog = MaxTableLog
	}
	if maxLog < MinTableLog {
		maxLog = MinTableLog
	}
	// Heuristic from FSE: about log2(total)-2, at least enough slots to give
	// every distinct symbol one state.
	log := uint(MinTableLog)
	if h.Total > 1 {
		log = uint(mathbits.Len32(uint32(h.Total-1))) - 2
	}
	minNeeded := uint(mathbits.Len32(uint32(h.Distinct()))) + 1
	if log < minNeeded {
		log = minNeeded
	}
	if log < MinTableLog {
		log = MinTableLog
	}
	if log > maxLog {
		log = maxLog
	}
	return log
}

// ErrEmpty is returned when normalizing an empty histogram.
var ErrEmpty = errors.New("hist: cannot normalize empty histogram")

// ErrTooManySymbols is returned when the alphabet cannot fit in the table.
var ErrTooManySymbols = errors.New("hist: more distinct symbols than table slots")

// Normalize scales the histogram to sum exactly to 1<<tableLog. Every symbol
// with a nonzero raw count receives at least one slot. The returned slice has
// length MaxSymbol+1.
func (h *Histogram) Normalize(tableLog uint) ([]uint16, error) {
	return h.NormalizeInto(nil, tableLog)
}

// NormalizeInto is Normalize writing into dst (reusing its capacity), the
// form steady-state encoders call so table construction does not allocate.
// The returned slice has length MaxSymbol+1.
func (h *Histogram) NormalizeInto(dst []uint16, tableLog uint) ([]uint16, error) {
	if h.Total == 0 || h.MaxSymbol < 0 {
		return nil, ErrEmpty
	}
	tableSize := 1 << tableLog
	distinct := h.Distinct()
	if distinct > tableSize {
		return nil, ErrTooManySymbols
	}
	norm := dst
	if n := h.MaxSymbol + 1; cap(norm) < n {
		norm = make([]uint16, n)
	} else {
		norm = norm[:n]
	}
	for i := range norm {
		norm[i] = 0
	}
	if distinct == 1 {
		norm[h.MaxSymbol] = uint16(tableSize)
		return norm, nil
	}

	// First pass: proportional shares with a floor of 1, tracking the
	// fractional remainders for largest-remainder correction.
	type rem struct {
		sym  int
		frac float64
	}
	var remArr [MaxSymbols]rem
	rems := remArr[:0]
	sum := 0
	scale := float64(tableSize) / float64(h.Total)
	for s := 0; s <= h.MaxSymbol; s++ {
		c := h.Counts[s]
		if c == 0 {
			continue
		}
		exact := float64(c) * scale
		n := int(exact)
		if n < 1 {
			n = 1
		}
		norm[s] = uint16(n)
		sum += n
		rems = append(rems, rem{s, exact - float64(n)})
	}

	// Distribute the remaining slots to the largest remainders, or reclaim
	// overshoot from the symbols that can best afford it.
	for sum < tableSize {
		best := -1
		bestFrac := math.Inf(-1)
		for i := range rems {
			if rems[i].frac > bestFrac {
				bestFrac = rems[i].frac
				best = i
			}
		}
		norm[rems[best].sym]++
		rems[best].frac -= 1.0
		sum++
	}
	for sum > tableSize {
		// Shrink the symbol whose normalized share most exceeds its exact
		// share, never below 1.
		best := -1
		bestOver := math.Inf(-1)
		for s := 0; s <= h.MaxSymbol; s++ {
			if norm[s] <= 1 {
				continue
			}
			over := float64(norm[s]) - float64(h.Counts[s])*scale
			if over > bestOver {
				bestOver = over
				best = s
			}
		}
		if best < 0 {
			return nil, ErrTooManySymbols
		}
		norm[best]--
		sum--
	}
	return norm, nil
}

// ValidateNormalized checks that norm sums to exactly 1<<tableLog.
func ValidateNormalized(norm []uint16, tableLog uint) error {
	sum := 0
	for _, n := range norm {
		sum += int(n)
	}
	if sum != 1<<tableLog {
		return errors.New("hist: normalized counts do not sum to table size")
	}
	return nil
}
