package hist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCountBasics(t *testing.T) {
	h := Count([]byte("abracadabra"))
	if h.Total != 11 {
		t.Fatalf("total = %d", h.Total)
	}
	if h.Counts['a'] != 5 || h.Counts['b'] != 2 || h.Counts['r'] != 2 || h.Counts['c'] != 1 || h.Counts['d'] != 1 {
		t.Fatalf("bad counts: %v", h.Counts[:128])
	}
	if h.MaxSymbol != 'r' {
		t.Fatalf("max symbol = %d", h.MaxSymbol)
	}
	if h.Distinct() != 5 {
		t.Fatalf("distinct = %d", h.Distinct())
	}
}

func TestCountEmpty(t *testing.T) {
	h := Count(nil)
	if h.Total != 0 || h.MaxSymbol != -1 {
		t.Fatalf("empty histogram: %+v", h)
	}
	if h.ShannonEntropy() != 0 {
		t.Fatal("entropy of empty data should be 0")
	}
	if _, err := h.Normalize(6); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestSingleSymbol(t *testing.T) {
	h := Count([]byte{42, 42, 42, 42})
	if !h.IsSingleSymbol() {
		t.Fatal("should be single symbol")
	}
	norm, err := h.Normalize(6)
	if err != nil {
		t.Fatal(err)
	}
	if norm[42] != 64 {
		t.Fatalf("single symbol should own the whole table: %v", norm)
	}
}

func TestEntropyUniform(t *testing.T) {
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	h := Count(data)
	if e := h.ShannonEntropy(); math.Abs(e-8.0) > 1e-9 {
		t.Fatalf("uniform 256-symbol entropy = %v, want 8", e)
	}
}

func TestEntropyBiased(t *testing.T) {
	// Biased coin p=0.25: H = 0.25*2 + 0.75*log2(4/3) ≈ 0.8113.
	data := make([]byte, 1000)
	for i := 0; i < 250; i++ {
		data[i] = 1
	}
	h := Count(data)
	want := -(0.25*math.Log2(0.25) + 0.75*math.Log2(0.75))
	if e := h.ShannonEntropy(); math.Abs(e-want) > 1e-9 {
		t.Fatalf("entropy = %v want %v", e, want)
	}
}

func TestNormalizeSumsToTableSize(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog, the quick brown fox")
	h := Count(data)
	for _, log := range []uint{5, 6, 8, 10, 12} {
		norm, err := h.Normalize(log)
		if err != nil {
			t.Fatalf("log %d: %v", log, err)
		}
		if err := ValidateNormalized(norm, log); err != nil {
			t.Fatalf("log %d: %v", log, err)
		}
		// Every present symbol must keep a slot.
		for s := 0; s <= h.MaxSymbol; s++ {
			if h.Counts[s] > 0 && norm[s] == 0 {
				t.Fatalf("log %d: symbol %d lost its slot", log, s)
			}
			if h.Counts[s] == 0 && s < len(norm) && norm[s] != 0 {
				t.Fatalf("log %d: absent symbol %d gained a slot", log, s)
			}
		}
	}
}

func TestNormalizeTooManySymbols(t *testing.T) {
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	h := Count(data)
	if _, err := h.Normalize(5); err != ErrTooManySymbols {
		t.Fatalf("want ErrTooManySymbols, got %v", err)
	}
}

func TestNormalizeProportionality(t *testing.T) {
	// A symbol with 90% of the mass should get roughly 90% of the slots.
	data := make([]byte, 1000)
	for i := 0; i < 900; i++ {
		data[i] = 'x'
	}
	for i := 900; i < 1000; i++ {
		data[i] = 'y'
	}
	h := Count(data)
	norm, err := h.Normalize(8)
	if err != nil {
		t.Fatal(err)
	}
	if norm['x'] < 220 || norm['x'] > 236 {
		t.Fatalf("x share = %d, want ≈230", norm['x'])
	}
}

func TestOptimalTableLogBounds(t *testing.T) {
	small := Count([]byte("ab"))
	if log := OptimalTableLog(&small, 12); log < MinTableLog || log > MaxTableLog {
		t.Fatalf("log out of bounds: %d", log)
	}
	big := Count(make([]byte, 1<<20))
	if log := OptimalTableLog(&big, 9); log != 9 {
		t.Fatalf("cap not honored: %d", log)
	}
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	wide := Count(data)
	if log := OptimalTableLog(&wide, 12); (1 << log) < wide.Distinct() {
		t.Fatalf("table too small for alphabet: log=%d distinct=%d", log, wide.Distinct())
	}
}

func TestQuickNormalizeInvariants(t *testing.T) {
	f := func(seed int64, size uint16, logSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size)%4096 + 1
		data := make([]byte, n)
		// Mix of skewed and uniform data.
		alpha := rng.Intn(255) + 1
		for i := range data {
			data[i] = byte(rng.Intn(alpha))
		}
		h := Count(data)
		log := uint(logSel)%(MaxTableLog-MinTableLog+1) + MinTableLog
		norm, err := h.Normalize(log)
		if err == ErrTooManySymbols {
			return h.Distinct() > 1<<log
		}
		if err != nil {
			return false
		}
		if ValidateNormalized(norm, log) != nil {
			return false
		}
		for s := 0; s <= h.MaxSymbol; s++ {
			if (h.Counts[s] > 0) != (norm[s] > 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCount(b *testing.B) {
	data := make([]byte, 1<<16)
	rng := rand.New(rand.NewSource(1))
	for i := range data {
		data[i] = byte(rng.Intn(64))
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Count(data)
	}
}

func BenchmarkNormalize(b *testing.B) {
	data := make([]byte, 1<<16)
	rng := rand.New(rand.NewSource(1))
	for i := range data {
		data[i] = byte(rng.Intn(64))
	}
	h := Count(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Normalize(9); err != nil {
			b.Fatal(err)
		}
	}
}
