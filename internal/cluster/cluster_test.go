package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
)

var tctx = context.Background()

// testCluster builds an n-node cluster with mem persisters and registers
// cleanup.
func testCluster(t *testing.T, n int, opts ...Option) *Cluster {
	t.Helper()
	c := New(opts...)
	t.Cleanup(func() { c.Close() })
	for i := 0; i < n; i++ {
		if _, err := c.AddNode(tctx, fmt.Sprintf("node-%d", i)); err != nil {
			t.Fatalf("AddNode: %v", err)
		}
	}
	return c
}

func TestClusterPutGetDelete(t *testing.T) {
	c := testCluster(t, 3)
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		if err := c.Put(tctx, k, []byte(fmt.Sprintf("val-%03d", i))); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
	}
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		v, ok, err := c.Get(tctx, k)
		if err != nil || !ok {
			t.Fatalf("get %s: ok=%v err=%v", k, ok, err)
		}
		if want := fmt.Sprintf("val-%03d", i); string(v) != want {
			t.Fatalf("get %s = %q, want %q", k, v, want)
		}
	}
	if err := c.Delete(tctx, []byte("key-050")); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, ok, err := c.Get(tctx, []byte("key-050")); err != nil || ok {
		t.Fatalf("deleted key visible: ok=%v err=%v", ok, err)
	}
	if _, ok, err := c.Get(tctx, []byte("never-written")); err != nil || ok {
		t.Fatalf("phantom key: ok=%v err=%v", ok, err)
	}
}

func TestClusterOverwriteLatestWins(t *testing.T) {
	c := testCluster(t, 3)
	k := []byte("counter")
	for i := 0; i < 50; i++ {
		if err := c.Put(tctx, k, []byte(fmt.Sprintf("gen-%d", i))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	v, ok, err := c.Get(tctx, k)
	if err != nil || !ok || string(v) != "gen-49" {
		t.Fatalf("get = %q ok=%v err=%v, want gen-49", v, ok, err)
	}
}

// replicaRecords reads key directly from each member's store, bypassing
// the quorum path.
func replicaRecords(t *testing.T, c *Cluster, key []byte) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, name := range c.Nodes() {
		n := c.Node(name)
		db := n.Store()
		if db == nil {
			continue
		}
		v, ok, err := db.Get(tctx, key)
		if err != nil {
			t.Fatalf("direct get on %s: %v", name, err)
		}
		if ok {
			out[name] = v
		}
	}
	return out
}

func TestClusterReplicationFanout(t *testing.T) {
	c := testCluster(t, 5)
	k := []byte("replicated-key")
	if err := c.Put(tctx, k, []byte("hello")); err != nil {
		t.Fatalf("put: %v", err)
	}
	recs := replicaRecords(t, c, k)
	if len(recs) != 3 {
		t.Fatalf("record on %d nodes, want replication factor 3: %v", len(recs), keysOf(recs))
	}
}

func keysOf(m map[string][]byte) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestClusterReadRepairCorruptReplica(t *testing.T) {
	c := testCluster(t, 3)
	k := []byte("precious")
	if err := c.Put(tctx, k, []byte("intact-value")); err != nil {
		t.Fatalf("put: %v", err)
	}

	// Corrupt one replica in place: flip payload bits so the record
	// checksum no longer matches.
	names, _, err := c.owners(k)
	if err != nil {
		t.Fatal(err)
	}
	victim := c.Node(names[1])
	db := victim.Store()
	raw, ok, err := db.Get(tctx, k)
	if err != nil || !ok {
		t.Fatalf("victim read: ok=%v err=%v", ok, err)
	}
	bad := append([]byte{}, raw...)
	bad[len(bad)-1] ^= 0xFF
	if err := db.Put(tctx, k, bad); err != nil {
		t.Fatalf("corrupt put: %v", err)
	}

	// The quorum read must still return the intact value and repair the
	// victim.
	v, ok, err := c.Get(tctx, k)
	if err != nil || !ok || string(v) != "intact-value" {
		t.Fatalf("get after corruption = %q ok=%v err=%v", v, ok, err)
	}
	st := c.Stats()
	if st.CorruptReplicas == 0 {
		t.Fatal("corrupt replica not detected")
	}
	if st.ReadRepairs == 0 {
		t.Fatal("no read-repair issued")
	}
	fixed, ok, err := db.Get(tctx, k)
	if err != nil || !ok {
		t.Fatalf("victim read after repair: ok=%v err=%v", ok, err)
	}
	rec, perr := parseRecord(fixed)
	if perr != nil || !rec.sumOK(fixed) {
		t.Fatalf("victim record still invalid after repair: %v", perr)
	}
	if string(rec.payload) != "intact-value" {
		t.Fatalf("repaired payload = %q", rec.payload)
	}
}

func TestClusterReadRepairStaleReplica(t *testing.T) {
	c := testCluster(t, 3)
	k := []byte("versioned")
	if err := c.Put(tctx, k, []byte("v0")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(tctx, k, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	names, _, err := c.owners(k)
	if err != nil {
		t.Fatal(err)
	}
	// Roll one replica back to an older record.
	victim := c.Node(names[0])
	stale := appendRecord(nil, 1, false, []byte("ancient"))
	if err := victim.Store().Put(tctx, k, stale); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get(tctx, k)
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("get = %q ok=%v err=%v, want v1", v, ok, err)
	}
	got, ok, err := victim.Store().Get(tctx, k)
	if err != nil || !ok {
		t.Fatalf("victim read: %v", err)
	}
	rec, perr := parseRecord(got)
	if perr != nil || string(rec.payload) != "v1" {
		t.Fatalf("stale replica not repaired: payload=%q err=%v", rec.payload, perr)
	}
}

func TestClusterNodeCrashNoLostAckedWrites(t *testing.T) {
	c := testCluster(t, 3)
	const writes = 200
	for i := 0; i < writes; i++ {
		k := []byte(fmt.Sprintf("durable-%03d", i))
		if err := c.Put(tctx, k, []byte(fmt.Sprintf("v-%03d", i))); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
	}

	// Kill one node hard (unsynced state lost), then keep serving: quorum
	// reads must still see every acked write.
	crashed := c.Node("node-1")
	crashed.Crash()
	for i := 0; i < writes; i++ {
		k := []byte(fmt.Sprintf("durable-%03d", i))
		v, ok, err := c.Get(tctx, k)
		if err != nil || !ok {
			t.Fatalf("lost acked write %s with node down: ok=%v err=%v", k, ok, err)
		}
		if want := fmt.Sprintf("v-%03d", i); string(v) != want {
			t.Fatalf("get %s = %q want %q", k, v, want)
		}
	}

	// Restart: the node recovers from its fsynced WAL and serves again.
	if err := crashed.Restart(tctx); err != nil {
		t.Fatalf("restart: %v", err)
	}
	for i := 0; i < writes; i++ {
		k := []byte(fmt.Sprintf("durable-%03d", i))
		if _, ok, err := c.Get(tctx, k); err != nil || !ok {
			t.Fatalf("lost acked write %s after restart: ok=%v err=%v", k, ok, err)
		}
	}
	// And the recovered node holds real data locally for its keys.
	if db := crashed.Store(); db == nil || db.Seq() == 0 {
		t.Fatal("restarted node recovered nothing")
	}
}

func TestClusterWritesFailWithoutQuorum(t *testing.T) {
	c := testCluster(t, 3)
	c.Node("node-0").Crash()
	c.Node("node-1").Crash()
	// Only 1 of 3 replicas up: every write must fail with ErrNoQuorum.
	err := c.Put(tctx, []byte("k"), []byte("v"))
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("put with 1/3 nodes = %v, want ErrNoQuorum", err)
	}
	if _, _, err := c.Get(tctx, []byte("k")); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("get with 1/3 nodes = %v, want ErrNoQuorum", err)
	}
}

func TestClusterJoinLeaveRebalance(t *testing.T) {
	c := testCluster(t, 3)
	const keys = 120
	for i := 0; i < keys; i++ {
		k := []byte(fmt.Sprintf("rb-%03d", i))
		if err := c.Put(tctx, k, []byte(fmt.Sprintf("val-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Join a fourth node; rebalancing must copy its share over.
	if _, err := c.AddNode(tctx, "node-3"); err != nil {
		t.Fatalf("join: %v", err)
	}
	if c.Stats().RebalancedRecords == 0 {
		t.Fatal("join rebalanced nothing")
	}
	for i := 0; i < keys; i++ {
		k := []byte(fmt.Sprintf("rb-%03d", i))
		v, ok, err := c.Get(tctx, k)
		if err != nil || !ok || !bytes.Equal(v, []byte(fmt.Sprintf("val-%03d", i))) {
			t.Fatalf("after join, get %s = %q ok=%v err=%v", k, v, ok, err)
		}
	}

	// The new node actually owns data.
	if db := c.Node("node-3").Store(); db == nil || db.Seq() == 0 {
		t.Fatal("joined node received no records")
	}

	// Leave: drain node-0 and verify nothing is lost once it's gone.
	n0 := c.Node("node-0")
	if err := c.Leave(tctx, "node-0"); err != nil {
		t.Fatalf("leave: %v", err)
	}
	if c.Node("node-0") != nil {
		t.Fatal("node-0 still a member after leave")
	}
	if err := n0.Stop(); err != nil {
		t.Fatalf("stop after leave: %v", err)
	}
	for i := 0; i < keys; i++ {
		k := []byte(fmt.Sprintf("rb-%03d", i))
		v, ok, err := c.Get(tctx, k)
		if err != nil || !ok || !bytes.Equal(v, []byte(fmt.Sprintf("val-%03d", i))) {
			t.Fatalf("after leave, get %s = %q ok=%v err=%v", k, v, ok, err)
		}
	}
}

func TestClusterConcurrentWriters(t *testing.T) {
	c := testCluster(t, 3, WithClientsPerNode(4))
	const workers = 8
	const perWorker = 50
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < perWorker; i++ {
				k := []byte(fmt.Sprintf("w%d-%03d", w, i))
				if err := c.Put(tctx, k, []byte(fmt.Sprintf("val-%d-%d", w, i))); err != nil {
					errs <- fmt.Errorf("put %s: %w", k, err)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			k := []byte(fmt.Sprintf("w%d-%03d", w, i))
			v, ok, err := c.Get(tctx, k)
			if err != nil || !ok || string(v) != fmt.Sprintf("val-%d-%d", w, i) {
				t.Fatalf("get %s = %q ok=%v err=%v", k, v, ok, err)
			}
		}
	}
}

func TestClusterEmptyAndBadInput(t *testing.T) {
	c := New()
	if err := c.Put(tctx, []byte("k"), []byte("v")); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("put on empty cluster = %v", err)
	}
	c2 := testCluster(t, 1)
	if err := c2.Put(tctx, nil, []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
	n := c2.Node("node-0")
	if err := c2.Join(tctx, n); err == nil {
		t.Fatal("duplicate join accepted")
	}
	if err := c2.Leave(tctx, "ghost"); err == nil {
		t.Fatal("leave of unknown node accepted")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	raw := appendRecord(nil, 42, false, []byte("payload"))
	rec, err := parseRecord(raw)
	if err != nil {
		t.Fatal(err)
	}
	if rec.version != 42 || rec.tombstone || string(rec.payload) != "payload" {
		t.Fatalf("round trip: %+v", rec)
	}
	if !rec.sumOK(raw) {
		t.Fatal("checksum should verify")
	}
	raw[len(raw)-1] ^= 0x01
	rec2, err := parseRecord(raw)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.sumOK(raw) {
		t.Fatal("checksum should fail after bit flip")
	}
	tomb := appendRecord(nil, 7, true, nil)
	rec3, err := parseRecord(tomb)
	if err != nil || !rec3.tombstone || rec3.version != 7 {
		t.Fatalf("tombstone round trip: %+v err=%v", rec3, err)
	}
	if _, err := parseRecord([]byte{1, 2, 3}); err == nil {
		t.Fatal("short record accepted")
	}
}
