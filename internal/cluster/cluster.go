package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"github.com/datacomp/datacomp/internal/kvstore"
	"github.com/datacomp/datacomp/internal/rpc"
	"github.com/datacomp/datacomp/internal/telemetry"
)

// Package-level telemetry on the shared registry.
var (
	cmOnce                                sync.Once
	cmPuts, cmGets, cmDeletes             *telemetry.Counter
	cmRepairs, cmCorrupt, cmStale         *telemetry.Counter
	cmQuorumFailures, cmRebalancedRecords *telemetry.Counter
	cmReplicaErrors                       *telemetry.Counter
)

func cm() {
	cmOnce.Do(func() {
		r := telemetry.Default
		cmPuts = r.Counter("cluster_puts_total", "cluster put operations")
		cmGets = r.Counter("cluster_gets_total", "cluster get operations")
		cmDeletes = r.Counter("cluster_deletes_total", "cluster delete operations")
		cmRepairs = r.Counter("cluster_read_repairs_total", "replica records rewritten by read-repair")
		cmCorrupt = r.Counter("cluster_corrupt_replicas_total", "replica reads failing the record checksum")
		cmStale = r.Counter("cluster_stale_replicas_total", "replica reads returning an older version")
		cmQuorumFailures = r.Counter("cluster_quorum_failures_total", "operations failing to reach quorum")
		cmRebalancedRecords = r.Counter("cluster_rebalanced_records_total", "records copied during rebalancing")
		cmReplicaErrors = r.Counter("cluster_replica_errors_total", "per-replica call failures")
	})
}

// ErrNoQuorum is returned when fewer replicas than the required quorum
// acknowledged an operation.
var ErrNoQuorum = errors.New("cluster: quorum not reached")

// ErrNoNodes is returned for operations on an empty cluster.
var ErrNoNodes = errors.New("cluster: no nodes")

// Option configures a Cluster.
type Option func(*clusterConfig)

type clusterConfig struct {
	replication    int
	vnodes         int
	clientsPerNode int
	comp           rpc.Compression
	nodeOpts       []NodeOption
	dialWrap       func(string, func(context.Context) (io.ReadWriter, error)) func(context.Context) (io.ReadWriter, error)
}

// WithReplication sets the replica count N (default 3). Write and read
// quorums are both majorities of N, so a read always intersects the last
// acknowledged write.
func WithReplication(n int) Option { return func(c *clusterConfig) { c.replication = n } }

// WithVirtualNodes sets the ring's virtual nodes per physical node
// (default 64).
func WithVirtualNodes(n int) Option { return func(c *clusterConfig) { c.vnodes = n } }

// WithClientsPerNode sizes the per-node rpc client pool (default 2) —
// concurrent cluster callers beyond the pool size queue per node.
func WithClientsPerNode(n int) Option { return func(c *clusterConfig) { c.clientsPerNode = n } }

// WithCompression sets the transport compression used on node links. It
// must match the nodes' own (default lz4-1 with checksums).
func WithCompression(comp rpc.Compression) Option {
	return func(c *clusterConfig) { c.comp = comp }
}

// WithNodeDefaults appends NodeOptions applied to every node the cluster
// creates via AddNode.
func WithNodeDefaults(opts ...NodeOption) Option {
	return func(c *clusterConfig) { c.nodeOpts = append(c.nodeOpts, opts...) }
}

// WithDialWrapper interposes on every node dial — the chaos hook where a
// faultinject.Conn slips between client and node. The wrapper receives the
// node name and its dial function and returns the dial to use.
func WithDialWrapper(w func(node string, dial func(context.Context) (io.ReadWriter, error)) func(context.Context) (io.ReadWriter, error)) Option {
	return func(c *clusterConfig) { c.dialWrap = w }
}

// Cluster routes versioned keys over a consistent-hash ring of rpc-served
// kvstore nodes with majority-quorum replication and read-repair.
type Cluster struct {
	cfg     clusterConfig
	version atomic.Uint64

	mu      sync.RWMutex
	ring    *Ring
	nodes   map[string]*Node
	clients map[string]*clientPool

	// Stats below are process-wide mirrors of the telemetry counters,
	// kept per-cluster for tests.
	repairs   atomic.Int64
	corrupt   atomic.Int64
	rebalance atomic.Int64
}

// New builds an empty cluster; add members with AddNode or Join.
func New(opts ...Option) *Cluster {
	cfg := clusterConfig{
		replication:    3,
		clientsPerNode: 2,
		comp:           rpc.Compression{Codec: "lz4", Level: 1, Checksum: true},
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.replication < 1 {
		cfg.replication = 1
	}
	if cfg.clientsPerNode < 1 {
		cfg.clientsPerNode = 1
	}
	cm()
	return &Cluster{
		cfg:     cfg,
		ring:    NewRing(cfg.vnodes),
		nodes:   make(map[string]*Node),
		clients: make(map[string]*clientPool),
	}
}

// quorum is the majority of the effective replica set.
func (c *Cluster) quorum(replicas int) int { return replicas/2 + 1 }

// AddNode creates a node, joins it to the ring, and rebalances existing
// keys onto it.
func (c *Cluster) AddNode(ctx context.Context, name string, opts ...NodeOption) (*Node, error) {
	n, err := NewNode(ctx, name, append(append([]NodeOption{}, c.cfg.nodeOpts...), opts...)...)
	if err != nil {
		return nil, err
	}
	if err := c.Join(ctx, n); err != nil {
		return nil, err
	}
	return n, nil
}

// Join adds an existing node to the ring and copies onto it every record
// it now owns.
func (c *Cluster) Join(ctx context.Context, n *Node) error {
	c.mu.Lock()
	if _, dup := c.nodes[n.Name()]; dup {
		c.mu.Unlock()
		return fmt.Errorf("cluster: duplicate node %q", n.Name())
	}
	c.nodes[n.Name()] = n
	c.clients[n.Name()] = newClientPool(c, n)
	c.ring.Add(n.Name())
	c.mu.Unlock()
	return c.Rebalance(ctx)
}

// Leave removes a node from the ring, first copying its records to their
// new owners. The node itself keeps running until the caller stops it.
func (c *Cluster) Leave(ctx context.Context, name string) error {
	c.mu.Lock()
	n, ok := c.nodes[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: unknown node %q", name)
	}
	// Drop from the ring first so owners are computed without it, then
	// push its data to the new owner set.
	c.ring.Remove(name)
	delete(c.nodes, name)
	pool := c.clients[name]
	delete(c.clients, name)
	c.mu.Unlock()

	var err error
	if n.Running() {
		err = c.drainFrom(ctx, pool)
	}
	pool.close()
	return err
}

// Node returns a member by name (nil if absent) — the handle tests and
// harnesses use to crash and restart members.
func (c *Cluster) Node(name string) *Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nodes[name]
}

// Nodes lists member names in sorted order.
func (c *Cluster) Nodes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring.Nodes()
}

// Close stops every node.
func (c *Cluster) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for name, p := range c.clients {
		p.close()
		delete(c.clients, name)
	}
	for name, n := range c.nodes {
		if err := n.Stop(); err != nil && first == nil {
			first = err
		}
		delete(c.nodes, name)
	}
	return first
}

// owners resolves the replica set and pools for key.
func (c *Cluster) owners(key []byte) ([]string, []*clientPool, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.ring.Len() == 0 {
		return nil, nil, ErrNoNodes
	}
	names := c.ring.Owners(key, c.cfg.replication)
	pools := make([]*clientPool, len(names))
	for i, name := range names {
		pools[i] = c.clients[name]
	}
	return names, pools, nil
}

// NextVersion mints a monotonically increasing write version. Exposed so
// load harnesses can stamp their own records when verifying.
func (c *Cluster) NextVersion() uint64 { return c.version.Add(1) }

// Put replicates key→value to its owners; it succeeds once a majority
// acknowledged a durable write.
func (c *Cluster) Put(ctx context.Context, key, value []byte) error {
	if len(key) == 0 {
		return kvstore.ErrEmptyKey
	}
	cmPuts.Inc()
	rec := appendRecord(nil, c.NextVersion(), false, value)
	req := appendKeyRecord(nil, key, rec)
	return c.writeQuorum(ctx, key, MethodPut, req)
}

// Delete replicates a versioned tombstone for key.
func (c *Cluster) Delete(ctx context.Context, key []byte) error {
	if len(key) == 0 {
		return kvstore.ErrEmptyKey
	}
	cmDeletes.Inc()
	req := binary.AppendUvarint(nil, uint64(len(key)))
	req = append(req, key...)
	req = binary.LittleEndian.AppendUint64(req, c.NextVersion())
	return c.writeQuorum(ctx, key, MethodDelete, req)
}

func (c *Cluster) writeQuorum(ctx context.Context, key []byte, method string, req []byte) error {
	_, pools, err := c.owners(key)
	if err != nil {
		return err
	}
	acks := 0
	var lastErr error
	for _, p := range pools {
		if _, err := p.call(ctx, method, req); err != nil {
			cmReplicaErrors.Inc()
			lastErr = err
			continue
		}
		acks++
	}
	if acks < c.quorum(len(pools)) {
		cmQuorumFailures.Inc()
		if lastErr != nil {
			return fmt.Errorf("%w: %d/%d acks: %w", ErrNoQuorum, acks, len(pools), lastErr)
		}
		return fmt.Errorf("%w: %d/%d acks", ErrNoQuorum, acks, len(pools))
	}
	return nil
}

// Get reads key from its replica set: every reachable replica up to the
// read quorum is consulted, the highest-version checksum-valid record
// wins, and any replica that returned stale, missing, or corrupt data is
// repaired with the winner before Get returns.
func (c *Cluster) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	if len(key) == 0 {
		return nil, false, kvstore.ErrEmptyKey
	}
	cmGets.Inc()
	names, pools, err := c.owners(key)
	if err != nil {
		return nil, false, err
	}
	type reply struct {
		idx  int
		rec  record
		raw  []byte // full record bytes, nil when the replica had none
		ok   bool   // call succeeded
		lost bool   // record present but checksum-invalid
	}
	replies := make([]reply, 0, len(pools))
	responded := 0
	var callErrs []error
	for i, p := range pools {
		resp, err := p.call(ctx, MethodGet, key)
		if err != nil {
			cmReplicaErrors.Inc()
			callErrs = append(callErrs, fmt.Errorf("%s: %w", names[i], err))
			replies = append(replies, reply{idx: i})
			continue
		}
		responded++
		r := reply{idx: i, ok: true}
		if len(resp) >= 1 && resp[0] == 0x01 {
			raw := resp[1:]
			rec, perr := parseRecord(raw)
			switch {
			case perr != nil || !rec.sumOK(raw):
				r.lost = true
				cmCorrupt.Inc()
				c.corrupt.Add(1)
			default:
				r.rec = rec
				r.raw = append([]byte{}, raw...)
			}
		}
		replies = append(replies, r)
	}
	if responded < c.quorum(len(pools)) {
		cmQuorumFailures.Inc()
		return nil, false, fmt.Errorf("get: %w: %d/%d replicas: %w", ErrNoQuorum, responded, len(pools), errors.Join(callErrs...))
	}

	// Pick the winner: highest version among checksum-valid records.
	var best *reply
	for i := range replies {
		r := &replies[i]
		if r.raw == nil {
			continue
		}
		if best == nil || r.rec.version > best.rec.version {
			best = r
		}
	}

	// Read-repair: push the winner to every responsive replica that
	// disagrees (stale version, missing, or corrupt).
	if best != nil {
		req := appendKeyRecord(nil, key, best.raw)
		for _, r := range replies {
			if !r.ok || r.idx == best.idx {
				continue
			}
			needs := r.lost || r.raw == nil || r.rec.version < best.rec.version
			if !needs {
				continue
			}
			if r.raw != nil && !r.lost {
				cmStale.Inc()
			}
			if _, err := pools[r.idx].call(ctx, MethodPut, req); err == nil {
				cmRepairs.Inc()
				c.repairs.Add(1)
				_ = names // names kept for debuggability in future logging
			}
		}
	}

	if best == nil || best.rec.tombstone {
		return nil, false, nil
	}
	return append([]byte{}, best.rec.payload...), true, nil
}

// Rebalance copies every record to its current owner set — run after ring
// membership changes. Writes are versioned, so re-copying is idempotent
// and concurrent user writes are never regressed.
func (c *Cluster) Rebalance(ctx context.Context) error {
	c.mu.RLock()
	pools := make([]*clientPool, 0, len(c.clients))
	for _, p := range c.clients {
		pools = append(pools, p)
	}
	c.mu.RUnlock()
	for _, p := range pools {
		if !p.node.Running() {
			continue
		}
		if err := c.drainFrom(ctx, p); err != nil {
			return err
		}
	}
	return nil
}

// drainFrom dumps one node and re-puts each record to its owners.
func (c *Cluster) drainFrom(ctx context.Context, src *clientPool) error {
	dumpResp, err := src.call(ctx, MethodDump, nil)
	if err != nil {
		return fmt.Errorf("rebalance dump from %s: %w", src.node.Name(), err)
	}
	return walkDump(dumpResp, func(key, rec []byte) error {
		_, pools, err := c.owners(key)
		if err != nil {
			return err
		}
		req := appendKeyRecord(nil, key, rec)
		for _, p := range pools {
			if p == src {
				continue
			}
			if _, err := p.call(ctx, MethodPut, req); err != nil {
				cmReplicaErrors.Inc()
				continue // best-effort: quorum reads tolerate a lagging copy
			}
			cmRebalancedRecords.Inc()
			c.rebalance.Add(1)
		}
		return nil
	})
}

// Stats is a per-cluster view of repair and rebalance activity.
type Stats struct {
	ReadRepairs       int64
	CorruptReplicas   int64
	RebalancedRecords int64
}

// Stats returns per-cluster counters (the telemetry registry carries the
// process-wide versions).
func (c *Cluster) Stats() Stats {
	return Stats{
		ReadRepairs:       c.repairs.Load(),
		CorruptReplicas:   c.corrupt.Load(),
		RebalancedRecords: c.rebalance.Load(),
	}
}

// clientPool is a fixed-size pool of rpc clients to one node. Clients
// redial through the node's Dial, so a restarted node reconnects
// transparently on the next call.
type clientPool struct {
	node *Node
	ch   chan *rpc.Client
	c    *Cluster
}

func newClientPool(c *Cluster, n *Node) *clientPool {
	return &clientPool{node: n, c: c, ch: make(chan *rpc.Client, c.cfg.clientsPerNode)}
}

// acquire returns a pooled client, dialing a fresh one when the pool has
// capacity.
func (p *clientPool) acquire(ctx context.Context) (*rpc.Client, error) {
	select {
	case cl := <-p.ch:
		return cl, nil
	default:
	}
	dial := func(ctx context.Context) (io.ReadWriter, error) { return p.node.Dial(ctx) }
	if p.c.cfg.dialWrap != nil {
		dial = p.c.cfg.dialWrap(p.node.Name(), dial)
	}
	conn, err := dial(ctx)
	if err != nil {
		return nil, err
	}
	return rpc.NewClient(conn, p.c.cfg.comp, rpc.WithRedial(func(ctx context.Context) (io.ReadWriter, error) {
		return dial(ctx)
	}))
}

func (p *clientPool) release(cl *rpc.Client) {
	select {
	case p.ch <- cl:
	default:
		cl.Close()
	}
}

// call runs one rpc against the node with a pooled client.
func (p *clientPool) call(ctx context.Context, method string, req []byte) ([]byte, error) {
	cl, err := p.acquire(ctx)
	if err != nil {
		return nil, err
	}
	resp, err := cl.Call(ctx, method, req)
	if err != nil {
		// A dead connection (node stop/crash) poisons the client; drop it
		// so the next call dials fresh.
		cl.Close()
		return nil, err
	}
	p.release(cl)
	return resp, nil
}

func (p *clientPool) close() {
	for {
		select {
		case cl := <-p.ch:
			cl.Close()
		default:
			return
		}
	}
}
