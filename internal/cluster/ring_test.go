package cluster

import (
	"fmt"
	"testing"
)

func TestRingOwnersDistinctAndStable(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 5; i++ {
		r.Add(fmt.Sprintf("node-%d", i))
	}
	key := []byte("user:12345")
	owners := r.Owners(key, 3)
	if len(owners) != 3 {
		t.Fatalf("owners = %v, want 3 distinct", owners)
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("duplicate owner %q in %v", o, owners)
		}
		seen[o] = true
	}
	for i := 0; i < 10; i++ {
		again := r.Owners(key, 3)
		for j := range owners {
			if again[j] != owners[j] {
				t.Fatalf("owners not stable: %v vs %v", again, owners)
			}
		}
	}
}

func TestRingOwnersFewerNodesThanReplicas(t *testing.T) {
	r := NewRing(8)
	r.Add("only")
	r.Add("other")
	owners := r.Owners([]byte("k"), 3)
	if len(owners) != 2 {
		t.Fatalf("owners = %v, want both nodes", owners)
	}
	if r.Owners([]byte("k"), 0) != nil {
		t.Fatal("n=0 should own nothing")
	}
	if NewRing(4).Owners([]byte("k"), 2) != nil {
		t.Fatal("empty ring should own nothing")
	}
}

func TestRingLoadSpread(t *testing.T) {
	r := NewRing(64)
	const nodes = 8
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("n%d", i))
	}
	counts := map[string]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[r.Owners([]byte(fmt.Sprintf("key-%d", i)), 1)[0]]++
	}
	want := keys / nodes
	for n, got := range counts {
		if got < want/2 || got > want*2 {
			t.Errorf("node %s owns %d keys, want within [%d,%d]", n, got, want/2, want*2)
		}
	}
}

func TestRingJoinMovesMinority(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("n%d", i))
	}
	const keys = 10000
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Owners([]byte(fmt.Sprintf("key-%d", i)), 1)[0]
	}
	r.Add("n4")
	moved := 0
	for i := range before {
		if r.Owners([]byte(fmt.Sprintf("key-%d", i)), 1)[0] != before[i] {
			moved++
		}
	}
	// Ideal is keys/5 = 2000; allow generous slack but far below a full
	// reshuffle (hash-mod would move ~80%).
	if moved > keys*2/5 {
		t.Fatalf("join moved %d/%d keys; consistent hashing should move ~1/5", moved, keys)
	}
	if moved == 0 {
		t.Fatal("join moved no keys; new node owns nothing")
	}

	// Removing the node restores the exact prior assignment.
	r.Remove("n4")
	for i := range before {
		if got := r.Owners([]byte(fmt.Sprintf("key-%d", i)), 1)[0]; got != before[i] {
			t.Fatalf("key-%d moved from %s to %s after remove", i, before[i], got)
		}
	}
}

func TestRingAddRemoveIdempotent(t *testing.T) {
	r := NewRing(16)
	r.Add("a")
	r.Add("a")
	if r.Len() != 1 || len(r.points) != 16 {
		t.Fatalf("double add: len=%d points=%d", r.Len(), len(r.points))
	}
	r.Remove("b") // absent
	r.Remove("a")
	r.Remove("a")
	if r.Len() != 0 || len(r.points) != 0 {
		t.Fatalf("remove: len=%d points=%d", r.Len(), len(r.points))
	}
}
