package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/datacomp/datacomp/internal/codec"
	"github.com/datacomp/datacomp/internal/kvstore"
	"github.com/datacomp/datacomp/internal/rpc"
	"github.com/datacomp/datacomp/internal/xxhash"
)

// RPC method names a node serves. Exported as constants so clients and
// servers can never drift on the string.
const (
	// MethodPut stores a versioned record: uvarint klen | key | record.
	// The node applies it only if the version exceeds the stored one, so
	// replays and retries are idempotent.
	MethodPut = "kv.put"
	// MethodGet fetches the record for a key: request is the raw key,
	// response is 0x00 (none) or 0x01 followed by the record.
	MethodGet = "kv.get"
	// MethodDelete writes a versioned tombstone: uvarint klen | key |
	// 8-byte version.
	MethodDelete = "kv.delete"
	// MethodDump streams every live record: uvarint klen | key |
	// uvarint reclen | record, repeated. Rebalancing reads it.
	MethodDump = "kv.dump"
)

// Versioned record layout, built by the cluster and stored opaquely in the
// node's kvstore:
//
//	8B LE version | 1B flags | 8B LE xxhash(payload) | payload
//
// The version orders concurrent writers (last-write-wins) and makes
// replication idempotent; the checksum lets a reader detect a replica
// whose payload rotted beneath the store's own block checksums (or was
// corrupted before they were computed). Deletes are tombstone records
// (flag bit 0) so replicas can order a delete against a racing put.
const (
	recHeaderLen  = 8 + 1 + 8
	flagTombstone = 0x01
)

var errBadRecord = errors.New("cluster: malformed record")

// appendRecord frames payload as a versioned record.
func appendRecord(dst []byte, version uint64, tombstone bool, payload []byte) []byte {
	var hdr [recHeaderLen]byte
	binary.LittleEndian.PutUint64(hdr[0:8], version)
	if tombstone {
		hdr[8] = flagTombstone
	}
	binary.LittleEndian.PutUint64(hdr[9:17], xxhash.Sum64(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// record is a parsed versioned record. payload aliases the input.
type record struct {
	version   uint64
	tombstone bool
	payload   []byte
}

func parseRecord(b []byte) (record, error) {
	if len(b) < recHeaderLen {
		return record{}, errBadRecord
	}
	return record{
		version:   binary.LittleEndian.Uint64(b[0:8]),
		tombstone: b[8]&flagTombstone != 0,
		payload:   b[recHeaderLen:],
	}, nil
}

// sumOK verifies the embedded payload checksum.
func (r record) sumOK(raw []byte) bool {
	return binary.LittleEndian.Uint64(raw[9:17]) == xxhash.Sum64(r.payload)
}

// NodeOption configures a Node.
type NodeOption func(*nodeConfig)

type nodeConfig struct {
	comp          rpc.Compression
	shedAt        int
	degradeHigh   time.Duration
	storeOpts     []kvstore.Option
	persister     kvstore.Persister
	storeDir      string
	syncPolicy    kvstore.SyncPolicy
	syncPolicySet bool
}

// WithNodeCompression sets the node's RPC transport compression (default
// lz4-1 with checksums — cheap enough for the serving path, verified
// end to end).
func WithNodeCompression(comp rpc.Compression) NodeOption {
	return func(c *nodeConfig) { c.comp = comp }
}

// WithNodeShedThreshold arms the rpc server's load shedding: past n
// in-flight requests, responses skip compression (default 0: off).
func WithNodeShedThreshold(n int) NodeOption {
	return func(c *nodeConfig) { c.shedAt = n }
}

// WithNodeDegrader wraps the store's block engine in a codec.Degrader with
// the given high-latency threshold, so a node under compression pressure
// steps down its ladder instead of queueing (default: no degrader).
func WithNodeDegrader(high time.Duration) NodeOption {
	return func(c *nodeConfig) { c.degradeHigh = high }
}

// WithNodeStoreOptions appends options to the node's kvstore.Open call.
func WithNodeStoreOptions(opts ...kvstore.Option) NodeOption {
	return func(c *nodeConfig) { c.storeOpts = append(c.storeOpts, opts...) }
}

// WithNodePersister pins the node's durability backend (default: a
// MemPersister that survives Stop/Crash/Restart in memory).
func WithNodePersister(p kvstore.Persister) NodeOption {
	return func(c *nodeConfig) { c.persister = p }
}

// WithNodeDir stores the node's WAL and snapshots under dir instead of the
// in-memory persister.
func WithNodeDir(dir string) NodeOption {
	return func(c *nodeConfig) { c.storeDir = dir }
}

// WithNodeSyncPolicy sets the node store's WAL fsync policy (default
// SyncAlways: an acked replica write must survive that replica crashing,
// because the quorum already counted it).
func WithNodeSyncPolicy(p kvstore.SyncPolicy) NodeOption {
	return func(c *nodeConfig) { c.syncPolicy = p; c.syncPolicySet = true }
}

// Node is one in-process cluster member: a durable kvstore served over
// real rpc frames. Stop/Restart cycle the process; Crash models the
// machine dying (unsynced WAL bytes lost).
type Node struct {
	name string
	cfg  nodeConfig

	mu      sync.RWMutex
	db      *kvstore.DB
	server  *rpc.Server
	ctx     context.Context
	cancel  context.CancelFunc
	stopped bool
	wg      sync.WaitGroup

	// putMu serializes the version-compare-and-put in handlePut so a
	// concurrent older write can never clobber a newer record.
	putMu sync.Mutex

	// lifeMu serializes Stop/Crash/Restart so two lifecycle transitions
	// can never interleave (e.g. concurrent Restarts double-opening the
	// store over one persister).
	lifeMu sync.Mutex
}

// ErrNodeDown is returned when dialing or serving on a stopped node.
var ErrNodeDown = errors.New("cluster: node down")

// NewNode starts a node. The store opens immediately (recovering whatever
// the persister holds, which for a fresh MemPersister is nothing).
func NewNode(ctx context.Context, name string, opts ...NodeOption) (*Node, error) {
	cfg := nodeConfig{
		comp: rpc.Compression{Codec: "lz4", Level: 1, Checksum: true},
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.persister == nil && cfg.storeDir == "" {
		cfg.persister = kvstore.NewMemPersister()
	}
	if !cfg.syncPolicySet {
		cfg.syncPolicy = kvstore.SyncAlways
	}
	n := &Node{name: name, cfg: cfg}
	if err := n.start(ctx); err != nil {
		return nil, err
	}
	return n, nil
}

// start opens the store (recovering from the persister) and builds a fresh
// rpc server. Callers hold no locks.
func (n *Node) start(ctx context.Context) error {
	storeOpts := []kvstore.Option{kvstore.WithWAL(n.cfg.syncPolicy)}
	if n.cfg.persister != nil {
		storeOpts = append(storeOpts, kvstore.WithPersister(n.cfg.persister))
	}
	if n.cfg.degradeHigh > 0 {
		deg, err := codec.NewDegrader(codec.DegraderConfig{
			High:     n.cfg.degradeHigh,
			Checksum: true,
		})
		if err != nil {
			return err
		}
		storeOpts = append(storeOpts, kvstore.WithEngine(deg))
	}
	storeOpts = append(storeOpts, n.cfg.storeOpts...)
	db, err := kvstore.Open(ctx, n.cfg.storeDir, storeOpts...)
	if err != nil {
		return err
	}
	var srvOpts []rpc.ServerOption
	if n.cfg.shedAt > 0 {
		srvOpts = append(srvOpts, rpc.WithShedThreshold(n.cfg.shedAt))
	}
	srv := rpc.NewServer(n.cfg.comp, srvOpts...)
	srv.Register(MethodPut, n.handlePut)
	srv.Register(MethodGet, n.handleGet)
	srv.Register(MethodDelete, n.handleDelete)
	srv.Register(MethodDump, n.handleDump)

	nctx, cancel := context.WithCancel(context.Background())
	n.mu.Lock()
	n.db = db
	n.server = srv
	n.ctx = nctx
	n.cancel = cancel
	n.stopped = false
	n.mu.Unlock()
	return nil
}

// Name reports the node's ring identity.
func (n *Node) Name() string { return n.name }

// Dial opens an in-process connection to the node's rpc server: a
// net.Pipe whose server end is served until the node stops. The returned
// end is what rpc.NewClient (or a faultinject wrapper) consumes.
func (n *Node) Dial(ctx context.Context) (io.ReadWriter, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.stopped {
		return nil, fmt.Errorf("dial %s: %w", n.name, ErrNodeDown)
	}
	cc, sc := net.Pipe()
	srv, nctx := n.server, n.ctx
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		_ = srv.ServeConn(nctx, sc)
		sc.Close()
		cc.Close()
	}()
	return cc, nil
}

// Stop gracefully halts the node: connections drop, and the store closes
// with a final WAL sync. The persisted state remains for Restart.
func (n *Node) Stop() error {
	n.lifeMu.Lock()
	defer n.lifeMu.Unlock()
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return nil
	}
	n.stopped = true
	n.cancel()
	db := n.db
	n.mu.Unlock()
	n.wg.Wait()
	return db.Close()
}

// Crash kills the node without any sync: connections drop and every WAL
// byte not already fsynced is lost, exactly like the machine dying.
func (n *Node) Crash() {
	n.lifeMu.Lock()
	defer n.lifeMu.Unlock()
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	n.cancel()
	n.mu.Unlock()
	n.wg.Wait()
	if mp, ok := n.cfg.persister.(*kvstore.MemPersister); ok {
		mp.Crash()
	}
	// The old DB is abandoned un-Closed, as a killed process would leave it.
}

// Restart brings a stopped or crashed node back: the store reopens from
// the persister, replaying the snapshot and WAL.
func (n *Node) Restart(ctx context.Context) error {
	n.lifeMu.Lock()
	defer n.lifeMu.Unlock()
	n.mu.RLock()
	stopped := n.stopped
	n.mu.RUnlock()
	if !stopped {
		return fmt.Errorf("cluster: restart of running node %s", n.name)
	}
	return n.start(ctx)
}

// Running reports whether the node currently serves.
func (n *Node) Running() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return !n.stopped
}

// Store exposes the node's live kvstore (nil when the node is down).
// Chaos tests use it to corrupt a replica in place; treat it as
// read-mostly in real harnesses.
func (n *Node) Store() *kvstore.DB {
	db, err := n.store()
	if err != nil {
		return nil
	}
	return db
}

// store returns the live DB or ErrNodeDown.
func (n *Node) store() (*kvstore.DB, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.stopped {
		return nil, ErrNodeDown
	}
	return n.db, nil
}

// handlePut applies a versioned record if it is newer than the stored one.
func (n *Node) handlePut(ctx context.Context, req []byte) ([]byte, error) {
	key, rest, err := splitKey(req)
	if err != nil {
		return nil, err
	}
	rec, err := parseRecord(rest)
	if err != nil {
		return nil, err
	}
	db, err := n.store()
	if err != nil {
		return nil, err
	}
	n.putMu.Lock()
	defer n.putMu.Unlock()
	cur, ok, err := db.Get(ctx, key)
	if err != nil {
		return nil, err
	}
	if ok {
		// Only a checksum-valid stored record can veto the write; a
		// corrupt one must be replaceable by read-repair regardless of
		// the version its damaged header claims.
		if curRec, err := parseRecord(cur); err == nil && curRec.sumOK(cur) && curRec.version >= rec.version {
			return nil, nil // stale or duplicate: idempotent no-op
		}
	}
	return nil, db.Put(ctx, key, rest)
}

// handleGet returns the stored record (tombstones included — the caller
// needs their versions for repair ordering).
func (n *Node) handleGet(ctx context.Context, req []byte) ([]byte, error) {
	if len(req) == 0 {
		return nil, errBadRecord
	}
	db, err := n.store()
	if err != nil {
		return nil, err
	}
	v, ok, err := db.Get(ctx, req)
	if err != nil {
		return nil, err
	}
	if !ok {
		return []byte{0x00}, nil
	}
	return append([]byte{0x01}, v...), nil
}

// handleDelete stores a versioned tombstone via the same newer-wins rule.
func (n *Node) handleDelete(ctx context.Context, req []byte) ([]byte, error) {
	key, rest, err := splitKey(req)
	if err != nil {
		return nil, err
	}
	if len(rest) != 8 {
		return nil, errBadRecord
	}
	version := binary.LittleEndian.Uint64(rest)
	rec := appendRecord(nil, version, true, nil)
	put := make([]byte, 0, len(req)+recHeaderLen)
	put = binary.AppendUvarint(put, uint64(len(key)))
	put = append(put, key...)
	put = append(put, rec...)
	return n.handlePut(ctx, put)
}

// handleDump streams every stored record, tombstones included.
func (n *Node) handleDump(ctx context.Context, req []byte) ([]byte, error) {
	db, err := n.store()
	if err != nil {
		return nil, err
	}
	var out []byte
	err = db.Scan(ctx, func(k, v []byte) bool {
		out = binary.AppendUvarint(out, uint64(len(k)))
		out = append(out, k...)
		out = binary.AppendUvarint(out, uint64(len(v)))
		out = append(out, v...)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// splitKey parses "uvarint klen | key | rest".
func splitKey(b []byte) (key, rest []byte, err error) {
	klen, n := binary.Uvarint(b)
	if n <= 0 || klen == 0 || klen > uint64(len(b)-n) {
		return nil, nil, errBadRecord
	}
	return b[n : n+int(klen)], b[n+int(klen):], nil
}

// appendKeyRecord frames "uvarint klen | key | record" for MethodPut.
func appendKeyRecord(dst, key, rec []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	return append(dst, rec...)
}

// walkDump iterates a MethodDump response.
func walkDump(b []byte, fn func(key, rec []byte) error) error {
	for len(b) > 0 {
		klen, n := binary.Uvarint(b)
		if n <= 0 || klen == 0 || klen > uint64(len(b)-n) {
			return errBadRecord
		}
		b = b[n:]
		key := b[:klen]
		b = b[klen:]
		rlen, n := binary.Uvarint(b)
		if n <= 0 || rlen > uint64(len(b)-n) {
			return errBadRecord
		}
		b = b[n:]
		if err := fn(key, b[:rlen]); err != nil {
			return err
		}
		b = b[rlen:]
	}
	return nil
}
