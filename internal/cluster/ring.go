// Package cluster turns the durable kvstore into a small sharded serving
// system: a consistent-hash ring with virtual nodes spreads keys over
// in-process "nodes" that speak real rpc frames, with N-way replication,
// quorum reads and writes, and read-repair when a replica returns stale or
// checksum-failing data. It is the serving topology the paper's fleet
// numbers come from, shrunk to one process so chaos (crash, corrupt,
// degrade, shed) stays deterministic and testable.
package cluster

import (
	"fmt"
	"sort"

	"github.com/datacomp/datacomp/internal/xxhash"
)

// Ring is a consistent-hash ring with virtual nodes. Each physical node
// projects vnodes points onto the 64-bit hash circle; a key's owners are
// the first N distinct nodes clockwise from the key's hash. Virtual nodes
// smooth the load split (with tens of points per node, shares stay within
// a few percent of even) and make join/leave move only ~1/nodes of keys.
//
// Ring is not safe for concurrent mutation; Cluster guards it.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	nodes  map[string]struct{}
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds an empty ring with the given virtual-node count per
// physical node (0 means 64).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]struct{})}
}

// Add projects node onto the ring. Adding a present node is a no-op.
func (r *Ring) Add(node string) {
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		h := xxhash.Sum64([]byte(fmt.Sprintf("%s#%d", node, i)))
		r.points = append(r.points, ringPoint{hash: h, node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove takes node off the ring. Removing an absent node is a no-op.
func (r *Ring) Remove(node string) {
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len reports the number of physical nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the physical node names in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owners returns the first n distinct nodes clockwise from key's hash —
// the key's replica set, preference-ordered. Fewer than n nodes on the
// ring returns them all.
func (r *Ring) Owners(key []byte, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := xxhash.Sum64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		owners = append(owners, p.node)
	}
	return owners
}
