// Package orc implements a simplified Optimized-Row-Columnar storage
// format: typed columns are encoded with lightweight schemes (zigzag
// varints, delta, string dictionaries, bit-packed booleans) into stripes,
// which the warehouse services then hand to a general-purpose compressor in
// blocks of up to 256 KiB — the exact pipeline the paper describes for
// Meta's Data Warehouse (§IV-B: "Columns get encoded by the storage engine
// and then passed to Zstd in blocks of up to 256KB").
package orc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Kind enumerates column types.
type Kind byte

const (
	// Int64 columns hold signed integers (IDs, timestamps, counters).
	Int64 Kind = iota
	// Float64 columns hold measurements.
	Float64
	// String columns hold text values.
	String
	// Bool columns hold flags.
	Bool
)

func (k Kind) String() string {
	switch k {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	case Bool:
		return "bool"
	}
	return fmt.Sprintf("Kind(%d)", byte(k))
}

// Integer encodings.
const (
	encDirect = iota // zigzag varints of the values
	encDelta         // first value then zigzag varints of deltas
)

// String encodings.
const (
	encPlain = iota // length-prefixed values in row order
	encDict         // distinct values + varint indexes
)

// MaxCompressionBlock is the block size the warehouse passes to the
// compressor (256 KiB, per the paper).
const MaxCompressionBlock = 256 << 10

// Column is one typed column of row data. Exactly the slice matching Kind
// must be populated.
type Column struct {
	Name    string
	Kind    Kind
	Ints    []int64
	Floats  []float64
	Strings []string
	Bools   []bool
}

// Len returns the number of rows in the column.
func (c Column) Len() int {
	switch c.Kind {
	case Int64:
		return len(c.Ints)
	case Float64:
		return len(c.Floats)
	case String:
		return len(c.Strings)
	case Bool:
		return len(c.Bools)
	}
	return 0
}

// ErrCorrupt is returned for undecodable stripes.
var ErrCorrupt = errors.New("orc: corrupt stripe")

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func appendInts(dst []byte, vals []int64) []byte {
	// Try both integer encodings and keep the smaller: timestamps and
	// sorted IDs shrink dramatically under delta, random IDs do not.
	direct := make([]byte, 0, len(vals)*2)
	for _, v := range vals {
		direct = binary.AppendUvarint(direct, zigzag(v))
	}
	delta := make([]byte, 0, len(vals)*2)
	prev := int64(0)
	for i, v := range vals {
		if i == 0 {
			delta = binary.AppendUvarint(delta, zigzag(v))
		} else {
			delta = binary.AppendUvarint(delta, zigzag(v-prev))
		}
		prev = v
	}
	if len(delta) < len(direct) {
		dst = append(dst, encDelta)
		return append(dst, delta...)
	}
	dst = append(dst, encDirect)
	return append(dst, direct...)
}

func readInts(src []byte, n int) ([]int64, int, error) {
	if len(src) < 1 {
		return nil, 0, ErrCorrupt
	}
	enc := src[0]
	pos := 1
	out := make([]int64, n)
	prev := int64(0)
	for i := 0; i < n; i++ {
		u, k := binary.Uvarint(src[pos:])
		if k <= 0 {
			return nil, 0, ErrCorrupt
		}
		pos += k
		v := unzigzag(u)
		if enc == encDelta && i > 0 {
			v += prev
		} else if enc != encDelta && enc != encDirect {
			return nil, 0, ErrCorrupt
		}
		out[i] = v
		prev = v
	}
	return out, pos, nil
}

func appendFloats(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

func readFloats(src []byte, n int) ([]float64, int, error) {
	if len(src) < 8*n {
		return nil, 0, ErrCorrupt
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:]))
	}
	return out, 8 * n, nil
}

func appendStrings(dst []byte, vals []string) []byte {
	distinct := make(map[string]int, len(vals)/4)
	order := make([]string, 0, 16)
	for _, v := range vals {
		if _, ok := distinct[v]; !ok {
			distinct[v] = len(order)
			order = append(order, v)
		}
	}
	if len(order)*2 <= len(vals) || len(vals) >= 16 && len(order) <= len(vals)/2 {
		// Dictionary encoding.
		dst = append(dst, encDict)
		dst = binary.AppendUvarint(dst, uint64(len(order)))
		for _, s := range order {
			dst = binary.AppendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		}
		for _, v := range vals {
			dst = binary.AppendUvarint(dst, uint64(distinct[v]))
		}
		return dst
	}
	dst = append(dst, encPlain)
	for _, v := range vals {
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		dst = append(dst, v...)
	}
	return dst
}

func readStrings(src []byte, n int) ([]string, int, error) {
	if len(src) < 1 {
		return nil, 0, ErrCorrupt
	}
	enc := src[0]
	pos := 1
	out := make([]string, n)
	switch enc {
	case encDict:
		dictLen, k := binary.Uvarint(src[pos:])
		if k <= 0 || dictLen > uint64(len(src)) {
			return nil, 0, ErrCorrupt
		}
		pos += k
		dict := make([]string, dictLen)
		for i := range dict {
			l, k := binary.Uvarint(src[pos:])
			if k <= 0 || pos+k+int(l) > len(src) {
				return nil, 0, ErrCorrupt
			}
			pos += k
			dict[i] = string(src[pos : pos+int(l)])
			pos += int(l)
		}
		for i := 0; i < n; i++ {
			idx, k := binary.Uvarint(src[pos:])
			if k <= 0 || idx >= uint64(len(dict)) {
				return nil, 0, ErrCorrupt
			}
			pos += k
			out[i] = dict[idx]
		}
	case encPlain:
		for i := 0; i < n; i++ {
			l, k := binary.Uvarint(src[pos:])
			if k <= 0 || pos+k+int(l) > len(src) {
				return nil, 0, ErrCorrupt
			}
			pos += k
			out[i] = string(src[pos : pos+int(l)])
			pos += int(l)
		}
	default:
		return nil, 0, ErrCorrupt
	}
	return out, pos, nil
}

func appendBools(dst []byte, vals []bool) []byte {
	var cur byte
	bit := 0
	for _, v := range vals {
		if v {
			cur |= 1 << bit
		}
		bit++
		if bit == 8 {
			dst = append(dst, cur)
			cur, bit = 0, 0
		}
	}
	if bit > 0 {
		dst = append(dst, cur)
	}
	return dst
}

func readBools(src []byte, n int) ([]bool, int, error) {
	need := (n + 7) / 8
	if len(src) < need {
		return nil, 0, ErrCorrupt
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = src[i/8]&(1<<(i%8)) != 0
	}
	return out, need, nil
}

// EncodeStripe serializes columns (all with equal row counts) into one
// stripe. The output is the storage-engine encoding only; compression is
// applied by the caller in MaxCompressionBlock chunks.
func EncodeStripe(cols []Column) ([]byte, error) {
	if len(cols) == 0 {
		return nil, errors.New("orc: no columns")
	}
	rows := cols[0].Len()
	for _, c := range cols {
		if c.Len() != rows {
			return nil, fmt.Errorf("orc: column %q has %d rows, want %d", c.Name, c.Len(), rows)
		}
	}
	var out []byte
	out = binary.AppendUvarint(out, uint64(rows))
	out = binary.AppendUvarint(out, uint64(len(cols)))
	for _, c := range cols {
		out = binary.AppendUvarint(out, uint64(len(c.Name)))
		out = append(out, c.Name...)
		out = append(out, byte(c.Kind))
		var payload []byte
		switch c.Kind {
		case Int64:
			payload = appendInts(nil, c.Ints)
		case Float64:
			payload = appendFloats(nil, c.Floats)
		case String:
			payload = appendStrings(nil, c.Strings)
		case Bool:
			payload = appendBools(nil, c.Bools)
		default:
			return nil, fmt.Errorf("orc: unknown kind %d", c.Kind)
		}
		out = binary.AppendUvarint(out, uint64(len(payload)))
		out = append(out, payload...)
	}
	return out, nil
}

// DecodeStripe reverses EncodeStripe.
func DecodeStripe(data []byte) ([]Column, error) {
	rows64, n := binary.Uvarint(data)
	if n <= 0 || rows64 > 1<<31 {
		return nil, ErrCorrupt
	}
	pos := n
	numCols, n := binary.Uvarint(data[pos:])
	if n <= 0 || numCols > 1<<16 {
		return nil, ErrCorrupt
	}
	pos += n
	rows := int(rows64)
	cols := make([]Column, 0, numCols)
	for i := uint64(0); i < numCols; i++ {
		nameLen, n := binary.Uvarint(data[pos:])
		if n <= 0 || pos+n+int(nameLen)+1 > len(data) {
			return nil, ErrCorrupt
		}
		pos += n
		name := string(data[pos : pos+int(nameLen)])
		pos += int(nameLen)
		kind := Kind(data[pos])
		pos++
		payloadLen, n := binary.Uvarint(data[pos:])
		if n <= 0 || pos+n+int(payloadLen) > len(data) {
			return nil, ErrCorrupt
		}
		pos += n
		payload := data[pos : pos+int(payloadLen)]
		pos += int(payloadLen)
		c := Column{Name: name, Kind: kind}
		var used int
		var err error
		switch kind {
		case Int64:
			c.Ints, used, err = readInts(payload, rows)
		case Float64:
			c.Floats, used, err = readFloats(payload, rows)
		case String:
			c.Strings, used, err = readStrings(payload, rows)
		case Bool:
			c.Bools, used, err = readBools(payload, rows)
		default:
			return nil, ErrCorrupt
		}
		if err != nil {
			return nil, err
		}
		if used != len(payload) {
			return nil, ErrCorrupt
		}
		cols = append(cols, c)
	}
	if pos != len(data) {
		return nil, ErrCorrupt
	}
	return cols, nil
}
