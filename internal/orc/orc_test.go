package orc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/datacomp/datacomp/internal/corpus"
)

func sampleCols(seed int64, rows int) []Column {
	return []Column{
		{Name: "ts", Kind: Int64, Ints: corpus.TimestampColumn(seed, rows)},
		{Name: "entity", Kind: Int64, Ints: corpus.IDColumn(seed+1, rows)},
		{Name: "metric", Kind: Float64, Floats: corpus.MetricColumn(seed+2, rows)},
		{Name: "event", Kind: String, Strings: corpus.CategoryColumn(seed+3, rows)},
		{Name: "sampled", Kind: Bool, Bools: corpus.FlagColumn(seed+4, rows, 0.1)},
	}
}

func TestStripeRoundtrip(t *testing.T) {
	for _, rows := range []int{1, 7, 8, 9, 1000, 10000} {
		cols := sampleCols(int64(rows), rows)
		enc, err := EncodeStripe(cols)
		if err != nil {
			t.Fatalf("rows=%d: %v", rows, err)
		}
		back, err := DecodeStripe(enc)
		if err != nil {
			t.Fatalf("rows=%d: %v", rows, err)
		}
		if !reflect.DeepEqual(cols, back) {
			t.Fatalf("rows=%d: roundtrip mismatch", rows)
		}
	}
}

func TestDeltaBeatsDirectOnTimestamps(t *testing.T) {
	rows := 10000
	ts := corpus.TimestampColumn(1, rows)
	rng := rand.New(rand.NewSource(2))
	random := make([]int64, rows)
	for i := range random {
		random[i] = rng.Int63()
	}
	encTS, err := EncodeStripe([]Column{{Name: "t", Kind: Int64, Ints: ts}})
	if err != nil {
		t.Fatal(err)
	}
	encRand, err := EncodeStripe([]Column{{Name: "r", Kind: Int64, Ints: random}})
	if err != nil {
		t.Fatal(err)
	}
	if len(encTS) >= len(encRand)/2 {
		t.Errorf("delta coding should shrink timestamps: ts=%d random=%d", len(encTS), len(encRand))
	}
	if encTS[findPayloadStart(t, encTS)] != encDelta {
		t.Error("timestamps should select delta encoding")
	}
}

// findPayloadStart locates the first column's payload (encoding byte).
func findPayloadStart(t *testing.T, stripe []byte) int {
	t.Helper()
	// rows uvarint, cols uvarint, nameLen uvarint, name, kind byte,
	// payloadLen uvarint — all single-byte uvarints in these tests except
	// the sizes; parse minimally.
	pos := 0
	skipUvarint := func() {
		for stripe[pos]&0x80 != 0 {
			pos++
		}
		pos++
	}
	skipUvarint() // rows
	skipUvarint() // cols
	nameLen := int(stripe[pos])
	pos++
	pos += nameLen
	pos++         // kind
	skipUvarint() // payload len
	return pos
}

func TestDictionaryEncodingSelected(t *testing.T) {
	rows := 1000
	cats := corpus.CategoryColumn(1, rows)
	enc, err := EncodeStripe([]Column{{Name: "c", Kind: String, Strings: cats}})
	if err != nil {
		t.Fatal(err)
	}
	if enc[findPayloadStart(t, enc)] != encDict {
		t.Error("low-cardinality strings should use dictionary encoding")
	}
	// High-cardinality strings go plain.
	rng := rand.New(rand.NewSource(3))
	uniq := make([]string, rows)
	for i := range uniq {
		b := make([]byte, 12)
		for j := range b {
			b[j] = byte('a' + rng.Intn(26))
		}
		uniq[i] = string(b)
	}
	enc2, err := EncodeStripe([]Column{{Name: "u", Kind: String, Strings: uniq}})
	if err != nil {
		t.Fatal(err)
	}
	if enc2[findPayloadStart(t, enc2)] != encPlain {
		t.Error("unique strings should use plain encoding")
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := EncodeStripe(nil); err == nil {
		t.Error("empty stripe accepted")
	}
	cols := []Column{
		{Name: "a", Kind: Int64, Ints: []int64{1, 2}},
		{Name: "b", Kind: Bool, Bools: []bool{true}},
	}
	if _, err := EncodeStripe(cols); err == nil {
		t.Error("mismatched row counts accepted")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cols := sampleCols(5, 100)
	enc, err := EncodeStripe(cols)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]byte{
		nil,
		enc[:3],
		enc[:len(enc)/2],
		append(append([]byte{}, enc...), 1, 2, 3),
	}
	for i, c := range cases {
		if _, err := DecodeStripe(c); err == nil {
			t.Errorf("case %d decoded", i)
		}
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 2, -2, 1 << 40, -(1 << 40), math64Max, -math64Max - 1} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Fatalf("zigzag roundtrip %d -> %d", v, got)
		}
	}
}

const math64Max = int64(^uint64(0) >> 1)

func TestQuickStripeRoundtrip(t *testing.T) {
	f := func(seed int64, rowsSel uint16) bool {
		rows := int(rowsSel)%2000 + 1
		cols := sampleCols(seed, rows)
		enc, err := EncodeStripe(cols)
		if err != nil {
			return false
		}
		back, err := DecodeStripe(enc)
		return err == nil && reflect.DeepEqual(cols, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeStripe(b *testing.B) {
	cols := sampleCols(1, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeStripe(cols); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeStripe(b *testing.B) {
	cols := sampleCols(1, 50000)
	enc, err := EncodeStripe(cols)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeStripe(enc); err != nil {
			b.Fatal(err)
		}
	}
}
