package huffman

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestCompress4Roundtrip sweeps the 4-stream coder across every length from
// the minimum up to 799 so all four quarter sizes and tail phases are hit.
func TestCompress4Roundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 16; n < 800; n++ {
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(rng.Intn(12))
		}
		enc, err := Compress4(nil, src)
		if err == ErrIncompressible {
			continue
		}
		if err != nil {
			t.Fatalf("n=%d compress: %v", n, err)
		}
		dec, err := Decompress4(nil, enc, n)
		if err != nil {
			t.Fatalf("n=%d decompress: %v", n, err)
		}
		if !bytes.Equal(dec, src) {
			t.Fatalf("n=%d mismatch", n)
		}
	}
}

// TestCompress4Large runs big skewed payloads through a reused Scratch — the
// literal-stage shape in the zstd block encoder.
func TestCompress4Large(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var s Scratch
	for trial := 0; trial < 20; trial++ {
		n := 1000 + rng.Intn(60000)
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(rng.Intn(3) * rng.Intn(60))
		}
		enc, err := s.Compress4(nil, src)
		if err == ErrIncompressible {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: compress: %v", trial, err)
		}
		dec, err := s.Decompress4(nil, enc, n)
		if err != nil {
			t.Fatalf("trial %d: decompress: %v", trial, err)
		}
		if !bytes.Equal(dec, src) {
			t.Fatalf("trial %d: mismatch (n=%d)", trial, n)
		}
	}
}

func TestCompress4TooSmall(t *testing.T) {
	if _, err := Compress4(nil, []byte("abc")); err != ErrIncompressible {
		t.Fatalf("tiny input: got %v, want ErrIncompressible", err)
	}
}

func TestDecompress4Corrupt(t *testing.T) {
	src := bytes.Repeat([]byte("compressible payload "), 100)
	enc, err := Compress4(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress4(nil, nil, 10); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := Decompress4(nil, enc[:8], len(src)); err == nil {
		t.Fatal("header-only payload accepted")
	}
	// Corrupting the jump header must not panic; the stream offsets it
	// yields may point anywhere inside the payload.
	mut := append([]byte{}, enc...)
	for off := 1; off < 7 && off < len(mut); off++ {
		mut[off] ^= 0xff
		_, _ = Decompress4(nil, mut, len(src))
		mut[off] ^= 0xff
	}
}
