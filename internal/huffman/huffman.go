// Package huffman implements canonical, length-limited Huffman coding.
//
// Two layers are exposed:
//
//   - Primitives (BuildLengths, CanonicalCodes) that compute optimal
//     length-limited code lengths via the package-merge algorithm and assign
//     canonical codes. The DEFLATE-style codec builds its lit/len and
//     distance tables from these. Their scratch-taking variants
//     (BuildScratch.BuildLengths, CanonicalCodesInto) run allocation-free
//     once warmed.
//   - A byte-stream coder (Compress/Decompress) with a compact 4-bit weight
//     table header, used by the Zstd-style codec to compress block literals.
//     Codes are limited to MaxCodeLen bits and decoded with a single
//     table lookup. The Scratch type carries every table and work buffer
//     across blocks so the steady-state path performs zero heap allocations.
package huffman

import (
	"errors"
	"fmt"
	"slices"

	"github.com/datacomp/datacomp/internal/bits"
)

// MaxCodeLen is the code-length limit for the byte-stream coder.
const MaxCodeLen = 11

// maxBuildBits bounds the code-length limit BuildScratch supports; both
// in-repo alphabets (MaxCodeLen=11, zlibx's 12) fit well under it.
const maxBuildBits = 16

// ErrIncompressible is returned by Compress when Huffman coding does not
// shrink the input; callers should store the data raw.
var ErrIncompressible = errors.New("huffman: input not compressible")

// ErrCorrupt is returned when a compressed payload cannot be decoded.
var ErrCorrupt = errors.New("huffman: corrupt payload")

// BuildScratch holds the package-merge work lists, reused across builds so
// steady-state table construction does not allocate.
type BuildScratch struct {
	syms  []int32  // used symbols, sorted by (frequency, symbol)
	prevW []uint64 // weights of the previous level's merged list
	curW  []uint64
	// levels[l] is level l's merged list: an entry ≥ 0 indexes syms (a base
	// item), -1 marks a package of two entries from level l-1. Level 0 is
	// the base list itself and is not stored.
	levels [maxBuildBits][]int32
}

// BuildLengths computes optimal length-limited code lengths for freqs into
// lengths (len(lengths) must equal len(freqs)), reusing the scratch work
// lists. Semantics match the package-level BuildLengths.
func (s *BuildScratch) BuildLengths(lengths []uint8, freqs []uint32, maxBits uint8) error {
	if len(lengths) != len(freqs) {
		return errors.New("huffman: lengths/freqs size mismatch")
	}
	if maxBits == 0 || int(maxBits) > maxBuildBits {
		return fmt.Errorf("huffman: bit limit %d out of range [1,%d]", maxBits, maxBuildBits)
	}
	for i := range lengths {
		lengths[i] = 0
	}
	s.syms = s.syms[:0]
	for sym, f := range freqs {
		if f > 0 {
			s.syms = append(s.syms, int32(sym))
		}
	}
	n := len(s.syms)
	switch n {
	case 0:
		return errors.New("huffman: no symbols")
	case 1:
		lengths[s.syms[0]] = 1
		return nil
	}
	if n > 1<<maxBits {
		return fmt.Errorf("huffman: %d symbols exceed %d-bit limit", n, maxBits)
	}
	slices.SortFunc(s.syms, func(a, b int32) int {
		if fa, fb := freqs[a], freqs[b]; fa != fb {
			if fa < fb {
				return -1
			}
			return 1
		}
		return int(a - b)
	})

	// Forward package-merge: level l's list merges the base items with the
	// pairwise packages of level l-1, recording only base-or-package per
	// entry (package contents are implied by position, so no per-item
	// symbol sets are materialized).
	pw := s.prevW[:0]
	for _, sym := range s.syms {
		pw = append(pw, uint64(freqs[sym]))
	}
	cw := s.curW[:0]
	for l := 1; l < int(maxBits); l++ {
		list := s.levels[l][:0]
		cw = cw[:0]
		npkg := len(pw) / 2
		bi, pi := 0, 0
		for bi < n || pi < npkg {
			var pkgW uint64
			if pi < npkg {
				pkgW = pw[2*pi] + pw[2*pi+1]
			}
			if pi >= npkg || (bi < n && uint64(freqs[s.syms[bi]]) <= pkgW) {
				list = append(list, int32(bi))
				cw = append(cw, uint64(freqs[s.syms[bi]]))
				bi++
			} else {
				list = append(list, -1)
				cw = append(cw, pkgW)
				pi++
			}
		}
		s.levels[l] = list
		pw, cw = cw, pw
	}
	s.prevW, s.curW = pw, cw

	// Backward walk: the first 2n-2 entries of the final list are taken;
	// a taken package expands to the first 2·(packages taken) entries one
	// level down, and every taken base item adds one bit to its symbol.
	take := 2*n - 2
	for l := int(maxBits) - 1; l >= 1; l-- {
		list := s.levels[l]
		if take > len(list) {
			take = len(list)
		}
		npkgTaken := 0
		for _, e := range list[:take] {
			if e >= 0 {
				lengths[s.syms[e]]++
			} else {
				npkgTaken++
			}
		}
		take = 2 * npkgTaken
	}
	if take > n {
		take = n
	}
	for _, sym := range s.syms[:take] {
		lengths[sym]++
	}
	return nil
}

// BuildLengths returns optimal length-limited Huffman code lengths for the
// given symbol frequencies, using the package-merge algorithm. Symbols with
// zero frequency receive length 0. maxBits must satisfy
// 2^maxBits ≥ number of used symbols. A single used symbol gets length 1.
func BuildLengths(freqs []uint32, maxBits uint8) ([]uint8, error) {
	var s BuildScratch
	lengths := make([]uint8, len(freqs))
	if err := s.BuildLengths(lengths, freqs, maxBits); err != nil {
		return nil, err
	}
	return lengths, nil
}

// CanonicalCodesInto assigns canonical (MSB-first) codes for lengths into
// codes, which must have len(codes) == len(lengths). Entries with length 0
// are set to 0. It performs no heap allocation.
func CanonicalCodesInto(codes []uint32, lengths []uint8) error {
	if len(codes) != len(lengths) {
		return errors.New("huffman: codes/lengths size mismatch")
	}
	maxLen := uint8(0)
	for _, l := range lengths {
		if l > maxLen {
			maxLen = l
		}
	}
	if maxLen == 0 {
		return errors.New("huffman: all lengths zero")
	}
	var blCount [256]uint32
	var nextCode [257]uint32
	for _, l := range lengths {
		if l > 0 {
			blCount[l]++
		}
	}
	code := uint32(0)
	for b := uint8(1); b <= maxLen; b++ {
		code = (code + blCount[b-1]) << 1
		nextCode[b] = code
	}
	// Kraft check: the final code for the longest length must not overflow.
	if code+blCount[maxLen] > 1<<maxLen {
		return errors.New("huffman: oversubscribed code lengths")
	}
	for s, l := range lengths {
		if l > 0 {
			codes[s] = nextCode[l]
			nextCode[l]++
		} else {
			codes[s] = 0
		}
	}
	return nil
}

// CanonicalCodes assigns canonical (MSB-first) codes to the given lengths.
// The returned slice parallels lengths; entries with length 0 are 0.
func CanonicalCodes(lengths []uint8) ([]uint32, error) {
	codes := make([]uint32, len(lengths))
	if err := CanonicalCodesInto(codes, lengths); err != nil {
		return nil, err
	}
	return codes, nil
}

// ReverseBits reverses the low n bits of v (used to store MSB-first canonical
// codes in an LSB-first bit stream).
func ReverseBits(v uint32, n uint8) uint32 {
	r := uint32(0)
	for i := uint8(0); i < n; i++ {
		r = r<<1 | (v & 1)
		v >>= 1
	}
	return r
}

// decEntry packs a decoded symbol and its code length.
type decEntry struct {
	sym byte
	len uint8
}

// Table is a prepared coder for the byte alphabet: canonical codes limited to
// MaxCodeLen bits plus a 2^MaxCodeLen lookup table for decoding.
type Table struct {
	lengths [256]uint8
	codes   [256]uint32 // bit-reversed, ready for LSB-first emission
	dec     []decEntry  // 1<<MaxCodeLen entries
	maxSym  int
}

// BuildTable constructs a Table from symbol frequencies (length ≤ 256).
func BuildTable(freqs []uint32) (*Table, error) {
	lengths, err := BuildLengths(freqs, MaxCodeLen)
	if err != nil {
		return nil, err
	}
	return tableFromLengths(lengths)
}

func tableFromLengths(lengths []uint8) (*Table, error) {
	t := &Table{}
	if err := t.init(lengths); err != nil {
		return nil, err
	}
	return t, nil
}

// init (re)builds the table in place, reusing the decode slab.
func (t *Table) init(lengths []uint8) error {
	if len(lengths) > 256 {
		return errors.New("huffman: alphabet exceeds 256 symbols")
	}
	var codes [256]uint32
	if err := CanonicalCodesInto(codes[:len(lengths)], lengths); err != nil {
		return err
	}
	if t.dec == nil {
		t.dec = make([]decEntry, 1<<MaxCodeLen)
	} else {
		// Unused entries must read as len=0 so corrupt streams are detected.
		clear(t.dec)
	}
	clear(t.lengths[:])
	clear(t.codes[:])
	t.maxSym = -1
	for s, l := range lengths {
		if l == 0 {
			continue
		}
		if l > MaxCodeLen {
			return fmt.Errorf("huffman: length %d exceeds limit", l)
		}
		t.maxSym = s
		rev := ReverseBits(codes[s], l)
		t.lengths[s] = l
		t.codes[s] = rev
		step := uint32(1) << l
		for idx := rev; idx < 1<<MaxCodeLen; idx += step {
			t.dec[idx] = decEntry{sym: byte(s), len: l}
		}
	}
	return nil
}

// Lengths returns the code length for each symbol (0 = unused).
func (t *Table) Lengths() []uint8 { return t.lengths[:] }

// EstimateSize returns the exact payload size in bits of encoding data whose
// histogram is freqs with this table (excluding the table header).
func (t *Table) EstimateSize(freqs []uint32) int {
	total := 0
	for s, f := range freqs {
		total += int(f) * int(t.lengths[s])
	}
	return total
}

// headerSize returns the serialized weight-table size in bytes for an
// alphabet reaching maxSym.
func headerSize(maxSym int) int { return 1 + (maxSym+2)/2 }

// writeHeader serializes code lengths as 4-bit weights:
// weight = MaxCodeLen+1-length for used symbols, 0 for unused.
func (t *Table) writeHeader(dst []byte) []byte {
	n := t.maxSym + 1
	dst = append(dst, byte(n-1))
	for i := 0; i < n; i += 2 {
		var b byte
		if l := t.lengths[i]; l > 0 {
			b = byte(MaxCodeLen + 1 - l)
		}
		if i+1 < n {
			if l := t.lengths[i+1]; l > 0 {
				b |= byte(MaxCodeLen+1-l) << 4
			}
		}
		dst = append(dst, b)
	}
	return dst
}

// Scratch owns every table and work buffer the byte-stream coder needs, so
// a warmed encoder or decoder runs the steady-state path with zero heap
// allocations. The zero value is ready to use; a Scratch is not safe for
// concurrent use.
type Scratch struct {
	build   BuildScratch
	table   Table
	w       bits.Writer
	freqs   [256]uint32
	lengths [256]uint8
}

// readHeader parses a weight table into s.table, returning bytes consumed.
func (s *Scratch) readHeader(src []byte) (int, error) {
	if len(src) < 1 {
		return 0, ErrCorrupt
	}
	n := int(src[0]) + 1
	need := 1 + (n+1)/2
	if len(src) < need {
		return 0, ErrCorrupt
	}
	lengths := s.lengths[:n]
	for i := 0; i < n; i++ {
		b := src[1+i/2]
		var w byte
		if i%2 == 0 {
			w = b & 0xf
		} else {
			w = b >> 4
		}
		if w > MaxCodeLen+1 {
			return 0, ErrCorrupt
		}
		if w > 0 {
			lengths[i] = MaxCodeLen + 1 - w
		} else {
			lengths[i] = 0
		}
	}
	if err := s.table.init(lengths); err != nil {
		return 0, ErrCorrupt
	}
	return need, nil
}

// Compress is the scratch-reusing form of the package-level Compress.
func (s *Scratch) Compress(dst, src []byte) ([]byte, error) {
	if len(src) < 2 {
		return nil, ErrIncompressible
	}
	clear(s.freqs[:])
	for _, b := range src {
		s.freqs[b]++
	}
	distinct := 0
	for _, f := range s.freqs {
		if f > 0 {
			distinct++
		}
	}
	if distinct < 2 {
		return nil, ErrIncompressible // RLE territory
	}
	if err := s.build.BuildLengths(s.lengths[:], s.freqs[:], MaxCodeLen); err != nil {
		return nil, err
	}
	t := &s.table
	if err := t.init(s.lengths[:]); err != nil {
		return nil, err
	}
	payloadBits := t.EstimateSize(s.freqs[:])
	estimate := headerSize(t.maxSym) + (payloadBits+7)/8
	if estimate >= len(src) {
		return nil, ErrIncompressible
	}
	dst = t.writeHeader(dst)
	s.w.Reset()
	for _, b := range src {
		s.w.WriteBits(uint64(t.codes[b]), uint(t.lengths[b]))
	}
	return append(dst, s.w.Flush()...), nil
}

// Decompress is the scratch-reusing form of the package-level Decompress.
func (s *Scratch) Decompress(dst, src []byte, n int) ([]byte, error) {
	used, err := s.readHeader(src)
	if err != nil {
		return nil, err
	}
	var r bits.Reader
	r.Reset(src[used:])
	t := &s.table
	for i := 0; i < n; i++ {
		e := t.dec[r.Peek(MaxCodeLen)]
		if e.len == 0 {
			return nil, ErrCorrupt
		}
		if err := r.Skip(uint(e.len)); err != nil {
			return nil, ErrCorrupt
		}
		dst = append(dst, e.sym)
	}
	return dst, nil
}

// Compress Huffman-codes src, appending the table header and payload to dst.
// It returns ErrIncompressible when the encoded form (header included) would
// not be smaller than src, and an error when src is empty or single-symbol
// (callers handle those with raw/RLE block modes).
func Compress(dst, src []byte) ([]byte, error) {
	var s Scratch
	return s.Compress(dst, src)
}

// CompressWithTable encodes src with a pre-built table (for dictionary reuse),
// still emitting the header so payloads stay self-describing. Symbols missing
// from the table cause an error.
func CompressWithTable(dst, src []byte, t *Table) ([]byte, error) {
	for _, b := range src {
		if t.lengths[b] == 0 {
			return nil, fmt.Errorf("huffman: symbol %d not in table", b)
		}
	}
	dst = t.writeHeader(dst)
	w := bits.NewWriter(len(src))
	for _, b := range src {
		w.WriteBits(uint64(t.codes[b]), uint(t.lengths[b]))
	}
	return append(dst, w.Flush()...), nil
}

// Decompress decodes a payload produced by Compress into exactly n bytes,
// appended to dst.
func Decompress(dst, src []byte, n int) ([]byte, error) {
	var s Scratch
	return s.Decompress(dst, src, n)
}
