// Package huffman implements canonical, length-limited Huffman coding.
//
// Two layers are exposed:
//
//   - Primitives (BuildLengths, CanonicalCodes) that compute optimal
//     length-limited code lengths via the package-merge algorithm and assign
//     canonical codes. The DEFLATE-style codec builds its lit/len and
//     distance tables from these.
//   - A byte-stream coder (Compress/Decompress) with a compact 4-bit weight
//     table header, used by the Zstd-style codec to compress block literals.
//     Codes are limited to MaxCodeLen bits and decoded with a single
//     table lookup.
package huffman

import (
	"errors"
	"fmt"
	"sort"

	"github.com/datacomp/datacomp/internal/bits"
)

// MaxCodeLen is the code-length limit for the byte-stream coder.
const MaxCodeLen = 11

// ErrIncompressible is returned by Compress when Huffman coding does not
// shrink the input; callers should store the data raw.
var ErrIncompressible = errors.New("huffman: input not compressible")

// ErrCorrupt is returned when a compressed payload cannot be decoded.
var ErrCorrupt = errors.New("huffman: corrupt payload")

// BuildLengths returns optimal length-limited Huffman code lengths for the
// given symbol frequencies, using the package-merge algorithm. Symbols with
// zero frequency receive length 0. maxBits must satisfy
// 2^maxBits ≥ number of used symbols. A single used symbol gets length 1.
func BuildLengths(freqs []uint32, maxBits uint8) ([]uint8, error) {
	type item struct {
		weight uint64
		syms   []int // original symbols contributing to this package
	}
	var used []int
	for s, f := range freqs {
		if f > 0 {
			used = append(used, s)
		}
	}
	lengths := make([]uint8, len(freqs))
	switch len(used) {
	case 0:
		return nil, errors.New("huffman: no symbols")
	case 1:
		lengths[used[0]] = 1
		return lengths, nil
	}
	if len(used) > 1<<maxBits {
		return nil, fmt.Errorf("huffman: %d symbols exceed %d-bit limit", len(used), maxBits)
	}

	base := make([]item, len(used))
	for i, s := range used {
		base[i] = item{weight: uint64(freqs[s]), syms: []int{s}}
	}
	sort.Slice(base, func(i, j int) bool { return base[i].weight < base[j].weight })

	// Package-merge: iterate maxBits levels; at each level pair up the
	// previous level's packages and merge with the base items.
	prev := append([]item(nil), base...)
	for level := 1; level < int(maxBits); level++ {
		var packaged []item
		for i := 0; i+1 < len(prev); i += 2 {
			syms := make([]int, 0, len(prev[i].syms)+len(prev[i+1].syms))
			syms = append(syms, prev[i].syms...)
			syms = append(syms, prev[i+1].syms...)
			packaged = append(packaged, item{weight: prev[i].weight + prev[i+1].weight, syms: syms})
		}
		merged := make([]item, 0, len(packaged)+len(base))
		bi, pi := 0, 0
		for bi < len(base) || pi < len(packaged) {
			if pi >= len(packaged) || (bi < len(base) && base[bi].weight <= packaged[pi].weight) {
				merged = append(merged, base[bi])
				bi++
			} else {
				merged = append(merged, packaged[pi])
				pi++
			}
		}
		prev = merged
	}

	// The first 2n-2 entries of the final list determine code lengths: each
	// appearance of a symbol adds one bit to its length.
	take := 2*len(used) - 2
	for i := 0; i < take && i < len(prev); i++ {
		for _, s := range prev[i].syms {
			lengths[s]++
		}
	}
	return lengths, nil
}

// CanonicalCodes assigns canonical (MSB-first) codes to the given lengths.
// The returned slice parallels lengths; entries with length 0 are 0.
func CanonicalCodes(lengths []uint8) ([]uint32, error) {
	maxLen := uint8(0)
	for _, l := range lengths {
		if l > maxLen {
			maxLen = l
		}
	}
	if maxLen == 0 {
		return nil, errors.New("huffman: all lengths zero")
	}
	blCount := make([]uint32, maxLen+1)
	for _, l := range lengths {
		if l > 0 {
			blCount[l]++
		}
	}
	nextCode := make([]uint32, maxLen+2)
	code := uint32(0)
	for b := uint8(1); b <= maxLen; b++ {
		code = (code + blCount[b-1]) << 1
		nextCode[b] = code
	}
	// Kraft check: the final code for the longest length must not overflow.
	if code+blCount[maxLen] > 1<<maxLen {
		return nil, errors.New("huffman: oversubscribed code lengths")
	}
	codes := make([]uint32, len(lengths))
	for s, l := range lengths {
		if l > 0 {
			codes[s] = nextCode[l]
			nextCode[l]++
		}
	}
	return codes, nil
}

// ReverseBits reverses the low n bits of v (used to store MSB-first canonical
// codes in an LSB-first bit stream).
func ReverseBits(v uint32, n uint8) uint32 {
	r := uint32(0)
	for i := uint8(0); i < n; i++ {
		r = r<<1 | (v & 1)
		v >>= 1
	}
	return r
}

// decEntry packs a decoded symbol and its code length.
type decEntry struct {
	sym byte
	len uint8
}

// Table is a prepared coder for the byte alphabet: canonical codes limited to
// MaxCodeLen bits plus a 2^MaxCodeLen lookup table for decoding.
type Table struct {
	lengths [256]uint8
	codes   [256]uint32 // bit-reversed, ready for LSB-first emission
	dec     []decEntry  // 1<<MaxCodeLen entries
	maxSym  int
}

// BuildTable constructs a Table from symbol frequencies (length ≤ 256).
func BuildTable(freqs []uint32) (*Table, error) {
	lengths, err := BuildLengths(freqs, MaxCodeLen)
	if err != nil {
		return nil, err
	}
	return tableFromLengths(lengths)
}

func tableFromLengths(lengths []uint8) (*Table, error) {
	codes, err := CanonicalCodes(lengths)
	if err != nil {
		return nil, err
	}
	t := &Table{maxSym: -1}
	t.dec = make([]decEntry, 1<<MaxCodeLen)
	// Mark unused entries with len=0 so corrupt streams are detected.
	for s, l := range lengths {
		if l == 0 {
			continue
		}
		if l > MaxCodeLen {
			return nil, fmt.Errorf("huffman: length %d exceeds limit", l)
		}
		t.maxSym = s
		rev := ReverseBits(codes[s], l)
		t.lengths[s] = l
		t.codes[s] = rev
		step := uint32(1) << l
		for idx := rev; idx < 1<<MaxCodeLen; idx += step {
			t.dec[idx] = decEntry{sym: byte(s), len: l}
		}
	}
	return t, nil
}

// Lengths returns the code length for each symbol (0 = unused).
func (t *Table) Lengths() []uint8 { return t.lengths[:] }

// EstimateSize returns the exact payload size in bits of encoding data whose
// histogram is freqs with this table (excluding the table header).
func (t *Table) EstimateSize(freqs []uint32) int {
	total := 0
	for s, f := range freqs {
		total += int(f) * int(t.lengths[s])
	}
	return total
}

// headerSize returns the serialized weight-table size in bytes for an
// alphabet reaching maxSym.
func headerSize(maxSym int) int { return 1 + (maxSym+2)/2 }

// writeHeader serializes code lengths as 4-bit weights:
// weight = MaxCodeLen+1-length for used symbols, 0 for unused.
func (t *Table) writeHeader(dst []byte) []byte {
	n := t.maxSym + 1
	dst = append(dst, byte(n-1))
	for i := 0; i < n; i += 2 {
		var b byte
		if l := t.lengths[i]; l > 0 {
			b = byte(MaxCodeLen + 1 - l)
		}
		if i+1 < n {
			if l := t.lengths[i+1]; l > 0 {
				b |= byte(MaxCodeLen+1-l) << 4
			}
		}
		dst = append(dst, b)
	}
	return dst
}

// readHeader parses a weight table, returning the table and bytes consumed.
func readHeader(src []byte) (*Table, int, error) {
	if len(src) < 1 {
		return nil, 0, ErrCorrupt
	}
	n := int(src[0]) + 1
	need := 1 + (n+1)/2
	if len(src) < need {
		return nil, 0, ErrCorrupt
	}
	lengths := make([]uint8, n)
	for i := 0; i < n; i++ {
		b := src[1+i/2]
		var w byte
		if i%2 == 0 {
			w = b & 0xf
		} else {
			w = b >> 4
		}
		if w > MaxCodeLen+1 {
			return nil, 0, ErrCorrupt
		}
		if w > 0 {
			lengths[i] = MaxCodeLen + 1 - w
		}
	}
	t, err := tableFromLengths(lengths)
	if err != nil {
		return nil, 0, ErrCorrupt
	}
	return t, need, nil
}

// Compress Huffman-codes src, appending the table header and payload to dst.
// It returns ErrIncompressible when the encoded form (header included) would
// not be smaller than src, and an error when src is empty or single-symbol
// (callers handle those with raw/RLE block modes).
func Compress(dst, src []byte) ([]byte, error) {
	if len(src) < 2 {
		return nil, ErrIncompressible
	}
	var freqs [256]uint32
	for _, b := range src {
		freqs[b]++
	}
	distinct := 0
	for _, f := range freqs {
		if f > 0 {
			distinct++
		}
	}
	if distinct < 2 {
		return nil, ErrIncompressible // RLE territory
	}
	t, err := BuildTable(freqs[:])
	if err != nil {
		return nil, err
	}
	payloadBits := t.EstimateSize(freqs[:])
	estimate := headerSize(t.maxSym) + (payloadBits+7)/8
	if estimate >= len(src) {
		return nil, ErrIncompressible
	}
	dst = t.writeHeader(dst)
	w := bits.NewWriter((payloadBits + 7) / 8)
	for _, b := range src {
		w.WriteBits(uint64(t.codes[b]), uint(t.lengths[b]))
	}
	return append(dst, w.Flush()...), nil
}

// CompressWithTable encodes src with a pre-built table (for dictionary reuse),
// still emitting the header so payloads stay self-describing. Symbols missing
// from the table cause an error.
func CompressWithTable(dst, src []byte, t *Table) ([]byte, error) {
	for _, b := range src {
		if t.lengths[b] == 0 {
			return nil, fmt.Errorf("huffman: symbol %d not in table", b)
		}
	}
	dst = t.writeHeader(dst)
	w := bits.NewWriter(len(src))
	for _, b := range src {
		w.WriteBits(uint64(t.codes[b]), uint(t.lengths[b]))
	}
	return append(dst, w.Flush()...), nil
}

// Decompress decodes a payload produced by Compress into exactly n bytes,
// appended to dst.
func Decompress(dst, src []byte, n int) ([]byte, error) {
	t, used, err := readHeader(src)
	if err != nil {
		return nil, err
	}
	r := bits.NewReader(src[used:])
	for i := 0; i < n; i++ {
		e := t.dec[r.Peek(MaxCodeLen)]
		if e.len == 0 {
			return nil, ErrCorrupt
		}
		if err := r.Skip(uint(e.len)); err != nil {
			return nil, ErrCorrupt
		}
		dst = append(dst, e.sym)
	}
	return dst, nil
}
