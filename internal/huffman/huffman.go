// Package huffman implements canonical, length-limited Huffman coding.
//
// Two layers are exposed:
//
//   - Primitives (BuildLengths, CanonicalCodes) that compute optimal
//     length-limited code lengths via the package-merge algorithm and assign
//     canonical codes. The DEFLATE-style codec builds its lit/len and
//     distance tables from these. Their scratch-taking variants
//     (BuildScratch.BuildLengths, CanonicalCodesInto) run allocation-free
//     once warmed.
//   - A byte-stream coder (Compress/Decompress) with a compact 4-bit weight
//     table header, used by the Zstd-style codec to compress block literals.
//     Codes are limited to MaxCodeLen bits and decoded with a single
//     table lookup. The Scratch type carries every table and work buffer
//     across blocks so the steady-state path performs zero heap allocations.
package huffman

import (
	"errors"
	"fmt"
	"slices"

	"github.com/datacomp/datacomp/internal/bits"
)

// MaxCodeLen is the code-length limit for the byte-stream coder.
const MaxCodeLen = 11

// maxBuildBits bounds the code-length limit BuildScratch supports; both
// in-repo alphabets (MaxCodeLen=11, zlibx's 12) fit well under it.
const maxBuildBits = 16

// ErrIncompressible is returned by Compress when Huffman coding does not
// shrink the input; callers should store the data raw.
var ErrIncompressible = errors.New("huffman: input not compressible")

// ErrCorrupt is returned when a compressed payload cannot be decoded.
var ErrCorrupt = errors.New("huffman: corrupt payload")

// BuildScratch holds the package-merge work lists, reused across builds so
// steady-state table construction does not allocate.
type BuildScratch struct {
	syms  []int32  // used symbols, sorted by (frequency, symbol)
	prevW []uint64 // weights of the previous level's merged list
	curW  []uint64
	// levels[l] is level l's merged list: an entry ≥ 0 indexes syms (a base
	// item), -1 marks a package of two entries from level l-1. Level 0 is
	// the base list itself and is not stored.
	levels [maxBuildBits][]int32
}

// BuildLengths computes optimal length-limited code lengths for freqs into
// lengths (len(lengths) must equal len(freqs)), reusing the scratch work
// lists. Semantics match the package-level BuildLengths.
func (s *BuildScratch) BuildLengths(lengths []uint8, freqs []uint32, maxBits uint8) error {
	if len(lengths) != len(freqs) {
		return errors.New("huffman: lengths/freqs size mismatch")
	}
	if maxBits == 0 || int(maxBits) > maxBuildBits {
		return fmt.Errorf("huffman: bit limit %d out of range [1,%d]", maxBits, maxBuildBits)
	}
	for i := range lengths {
		lengths[i] = 0
	}
	s.syms = s.syms[:0]
	for sym, f := range freqs {
		if f > 0 {
			s.syms = append(s.syms, int32(sym))
		}
	}
	n := len(s.syms)
	switch n {
	case 0:
		return errors.New("huffman: no symbols")
	case 1:
		lengths[s.syms[0]] = 1
		return nil
	}
	if n > 1<<maxBits {
		return fmt.Errorf("huffman: %d symbols exceed %d-bit limit", n, maxBits)
	}
	slices.SortFunc(s.syms, func(a, b int32) int {
		if fa, fb := freqs[a], freqs[b]; fa != fb {
			if fa < fb {
				return -1
			}
			return 1
		}
		return int(a - b)
	})

	// Forward package-merge: level l's list merges the base items with the
	// pairwise packages of level l-1, recording only base-or-package per
	// entry (package contents are implied by position, so no per-item
	// symbol sets are materialized).
	pw := s.prevW[:0]
	for _, sym := range s.syms {
		pw = append(pw, uint64(freqs[sym]))
	}
	cw := s.curW[:0]
	for l := 1; l < int(maxBits); l++ {
		list := s.levels[l][:0]
		cw = cw[:0]
		npkg := len(pw) / 2
		bi, pi := 0, 0
		for bi < n || pi < npkg {
			var pkgW uint64
			if pi < npkg {
				pkgW = pw[2*pi] + pw[2*pi+1]
			}
			if pi >= npkg || (bi < n && uint64(freqs[s.syms[bi]]) <= pkgW) {
				list = append(list, int32(bi))
				cw = append(cw, uint64(freqs[s.syms[bi]]))
				bi++
			} else {
				list = append(list, -1)
				cw = append(cw, pkgW)
				pi++
			}
		}
		s.levels[l] = list
		pw, cw = cw, pw
	}
	s.prevW, s.curW = pw, cw

	// Backward walk: the first 2n-2 entries of the final list are taken;
	// a taken package expands to the first 2·(packages taken) entries one
	// level down, and every taken base item adds one bit to its symbol.
	take := 2*n - 2
	for l := int(maxBits) - 1; l >= 1; l-- {
		list := s.levels[l]
		if take > len(list) {
			take = len(list)
		}
		npkgTaken := 0
		for _, e := range list[:take] {
			if e >= 0 {
				lengths[s.syms[e]]++
			} else {
				npkgTaken++
			}
		}
		take = 2 * npkgTaken
	}
	if take > n {
		take = n
	}
	for _, sym := range s.syms[:take] {
		lengths[sym]++
	}
	return nil
}

// BuildLengths returns optimal length-limited Huffman code lengths for the
// given symbol frequencies, using the package-merge algorithm. Symbols with
// zero frequency receive length 0. maxBits must satisfy
// 2^maxBits ≥ number of used symbols. A single used symbol gets length 1.
func BuildLengths(freqs []uint32, maxBits uint8) ([]uint8, error) {
	var s BuildScratch
	lengths := make([]uint8, len(freqs))
	if err := s.BuildLengths(lengths, freqs, maxBits); err != nil {
		return nil, err
	}
	return lengths, nil
}

// CanonicalCodesInto assigns canonical (MSB-first) codes for lengths into
// codes, which must have len(codes) == len(lengths). Entries with length 0
// are set to 0. It performs no heap allocation.
func CanonicalCodesInto(codes []uint32, lengths []uint8) error {
	if len(codes) != len(lengths) {
		return errors.New("huffman: codes/lengths size mismatch")
	}
	maxLen := uint8(0)
	for _, l := range lengths {
		if l > maxLen {
			maxLen = l
		}
	}
	if maxLen == 0 {
		return errors.New("huffman: all lengths zero")
	}
	var blCount [256]uint32
	var nextCode [257]uint32
	for _, l := range lengths {
		if l > 0 {
			blCount[l]++
		}
	}
	code := uint32(0)
	for b := uint8(1); b <= maxLen; b++ {
		code = (code + blCount[b-1]) << 1
		nextCode[b] = code
	}
	// Kraft check: the final code for the longest length must not overflow.
	if code+blCount[maxLen] > 1<<maxLen {
		return errors.New("huffman: oversubscribed code lengths")
	}
	for s, l := range lengths {
		if l > 0 {
			codes[s] = nextCode[l]
			nextCode[l]++
		} else {
			codes[s] = 0
		}
	}
	return nil
}

// CanonicalCodes assigns canonical (MSB-first) codes to the given lengths.
// The returned slice parallels lengths; entries with length 0 are 0.
func CanonicalCodes(lengths []uint8) ([]uint32, error) {
	codes := make([]uint32, len(lengths))
	if err := CanonicalCodesInto(codes, lengths); err != nil {
		return nil, err
	}
	return codes, nil
}

// ReverseBits reverses the low n bits of v (used to store MSB-first canonical
// codes in an LSB-first bit stream).
func ReverseBits(v uint32, n uint8) uint32 {
	r := uint32(0)
	for i := uint8(0); i < n; i++ {
		r = r<<1 | (v & 1)
		v >>= 1
	}
	return r
}

// Decode-table entries pack a symbol and its code length into one uint16
// (sym<<4 | len), so the decode inner loop costs a single 16-bit load per
// symbol. len occupies 4 bits (MaxCodeLen = 11 < 16); entry 0 marks an
// unused slot: a valid entry always has len ≥ 1.
const decEntryBits = 4

// Table is a prepared coder for the byte alphabet: canonical codes limited
// to MaxCodeLen bits plus a single-level packed lookup table for decoding,
// sized 1<<tableLog where tableLog is the longest code actually assigned.
type Table struct {
	lengths  [256]uint8
	codes    [256]uint32 // bit-reversed, ready for LSB-first emission
	dec      []uint16    // 1<<tableLog packed entries, see decEntryBits
	tableLog uint8       // longest assigned code length
	maxSym   int
}

// BuildTable constructs a Table from symbol frequencies (length ≤ 256).
func BuildTable(freqs []uint32) (*Table, error) {
	lengths, err := BuildLengths(freqs, MaxCodeLen)
	if err != nil {
		return nil, err
	}
	return tableFromLengths(lengths)
}

func tableFromLengths(lengths []uint8) (*Table, error) {
	t := &Table{}
	if err := t.init(lengths); err != nil {
		return nil, err
	}
	return t, nil
}

// init (re)builds the table in place, reusing the decode slab. The decode
// table is sized to the longest assigned code, not the MaxCodeLen ceiling:
// shorter alphabets get a smaller, cache-friendlier table and a cheaper
// rebuild per block.
func (t *Table) init(lengths []uint8) error {
	if len(lengths) > 256 {
		return errors.New("huffman: alphabet exceeds 256 symbols")
	}
	var codes [256]uint32
	if err := CanonicalCodesInto(codes[:len(lengths)], lengths); err != nil {
		return err
	}
	maxLen := uint8(0)
	for _, l := range lengths {
		if l > maxLen {
			maxLen = l
		}
	}
	if maxLen > MaxCodeLen {
		return fmt.Errorf("huffman: length %d exceeds limit", maxLen)
	}
	t.tableLog = maxLen
	tableSize := 1 << maxLen
	if cap(t.dec) < tableSize {
		t.dec = make([]uint16, 1<<MaxCodeLen)
	}
	t.dec = t.dec[:tableSize]
	// Unused entries must read as 0 so corrupt streams are detected.
	clear(t.dec)
	clear(t.lengths[:])
	clear(t.codes[:])
	t.maxSym = -1
	for s, l := range lengths {
		if l == 0 {
			continue
		}
		t.maxSym = s
		rev := ReverseBits(codes[s], l)
		t.lengths[s] = l
		t.codes[s] = rev
		step := uint32(1) << l
		e := uint16(s)<<decEntryBits | uint16(l)
		for idx := int(rev); idx < tableSize; idx += int(step) {
			t.dec[idx] = e
		}
	}
	return nil
}

// Lengths returns the code length for each symbol (0 = unused).
func (t *Table) Lengths() []uint8 { return t.lengths[:] }

// EstimateSize returns the exact payload size in bits of encoding data whose
// histogram is freqs with this table (excluding the table header).
func (t *Table) EstimateSize(freqs []uint32) int {
	total := 0
	for s, f := range freqs {
		total += int(f) * int(t.lengths[s])
	}
	return total
}

// headerSize returns the serialized weight-table size in bytes for an
// alphabet reaching maxSym.
func headerSize(maxSym int) int { return 1 + (maxSym+2)/2 }

// writeHeader serializes code lengths as 4-bit weights:
// weight = MaxCodeLen+1-length for used symbols, 0 for unused.
func (t *Table) writeHeader(dst []byte) []byte {
	n := t.maxSym + 1
	dst = append(dst, byte(n-1))
	for i := 0; i < n; i += 2 {
		var b byte
		if l := t.lengths[i]; l > 0 {
			b = byte(MaxCodeLen + 1 - l)
		}
		if i+1 < n {
			if l := t.lengths[i+1]; l > 0 {
				b |= byte(MaxCodeLen+1-l) << 4
			}
		}
		dst = append(dst, b)
	}
	return dst
}

// Scratch owns every table and work buffer the byte-stream coder needs, so
// a warmed encoder or decoder runs the steady-state path with zero heap
// allocations. The zero value is ready to use; a Scratch is not safe for
// concurrent use.
type Scratch struct {
	build   BuildScratch
	table   Table
	w       bits.Writer
	w64     bits.Writer64
	freqs   [256]uint32
	lengths [256]uint8
}

// grow extends b by n bytes without zero-filling, reusing capacity. The
// extension holds stale bytes until the caller overwrites all of them.
func grow(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b[:len(b)+n]
	}
	nb := make([]byte, len(b)+n, 2*len(b)+n)
	copy(nb, b)
	return nb
}

// readHeader parses a weight table into s.table, returning bytes consumed.
func (s *Scratch) readHeader(src []byte) (int, error) {
	if len(src) < 1 {
		return 0, ErrCorrupt
	}
	n := int(src[0]) + 1
	need := 1 + (n+1)/2
	if len(src) < need {
		return 0, ErrCorrupt
	}
	lengths := s.lengths[:n]
	for i := 0; i < n; i++ {
		b := src[1+i/2]
		var w byte
		if i%2 == 0 {
			w = b & 0xf
		} else {
			w = b >> 4
		}
		if w > MaxCodeLen+1 {
			return 0, ErrCorrupt
		}
		if w > 0 {
			lengths[i] = MaxCodeLen + 1 - w
		} else {
			lengths[i] = 0
		}
	}
	if err := s.table.init(lengths); err != nil {
		return 0, ErrCorrupt
	}
	return need, nil
}

// Compress is the scratch-reusing form of the package-level Compress.
func (s *Scratch) Compress(dst, src []byte) ([]byte, error) {
	if len(src) < 2 {
		return nil, ErrIncompressible
	}
	clear(s.freqs[:])
	for _, b := range src {
		s.freqs[b]++
	}
	distinct := 0
	for _, f := range s.freqs {
		if f > 0 {
			distinct++
		}
	}
	if distinct < 2 {
		return nil, ErrIncompressible // RLE territory
	}
	if err := s.build.BuildLengths(s.lengths[:], s.freqs[:], MaxCodeLen); err != nil {
		return nil, err
	}
	t := &s.table
	if err := t.init(s.lengths[:]); err != nil {
		return nil, err
	}
	payloadBits := t.EstimateSize(s.freqs[:])
	estimate := headerSize(t.maxSym) + (payloadBits+7)/8
	if estimate >= len(src) {
		return nil, ErrIncompressible
	}
	dst = t.writeHeader(dst)
	s.w.Reset()
	for _, b := range src {
		s.w.WriteBits(uint64(t.codes[b]), uint(t.lengths[b]))
	}
	return append(dst, s.w.Flush()...), nil
}

// Decompress is the scratch-reusing form of the package-level Decompress.
func (s *Scratch) Decompress(dst, src []byte, n int) ([]byte, error) {
	used, err := s.readHeader(src)
	if err != nil {
		return nil, err
	}
	base := len(dst)
	dst = grow(dst, n)
	if !decodeStream(dst[base:], &s.table, src[used:]) {
		return nil, ErrCorrupt
	}
	return dst, nil
}

// decodeStream decodes len(out) symbols from one bitstream into out using
// the branch-reduced reader: one 8-byte refill per 4 symbols, no per-bit
// branches in the loop. Invalid table entries (packed value 0) set bit 15
// of the running e-1 accumulator, so corruption is detected with a single
// check per group instead of a branch per symbol; a stream that consumed
// more bits than it holds is caught by the final overrun check.
func decodeStream(out []byte, t *Table, stream []byte) bool {
	var r bits.Reader64
	r.Init(stream)
	dec := t.dec
	tlog := uint(t.tableLog)
	bad := uint16(0)
	i, n := 0, len(out)
	for ; i+4 <= n; i += 4 {
		r.Refill()
		e := dec[r.Peek(tlog)]
		r.Consume(uint(e & 0xf))
		out[i] = byte(e >> decEntryBits)
		bad |= e - 1
		e = dec[r.Peek(tlog)]
		r.Consume(uint(e & 0xf))
		out[i+1] = byte(e >> decEntryBits)
		bad |= e - 1
		e = dec[r.Peek(tlog)]
		r.Consume(uint(e & 0xf))
		out[i+2] = byte(e >> decEntryBits)
		bad |= e - 1
		e = dec[r.Peek(tlog)]
		r.Consume(uint(e & 0xf))
		out[i+3] = byte(e >> decEntryBits)
		bad |= e - 1
	}
	for ; i < n; i++ {
		r.Refill()
		e := dec[r.Peek(tlog)]
		r.Consume(uint(e & 0xf))
		out[i] = byte(e >> decEntryBits)
		bad |= e - 1
	}
	return bad&0x8000 == 0 && !r.Overrun()
}

// encodeStream emits src's codes into w as one LSB-first bitstream,
// grouping four codes (≤ 44 bits) per 8-byte carry.
func encodeStream(w *bits.Writer64, t *Table, src []byte) {
	i := 0
	for ; i+4 <= len(src); i += 4 {
		w.Add(uint64(t.codes[src[i]]), uint(t.lengths[src[i]]))
		w.Add(uint64(t.codes[src[i+1]]), uint(t.lengths[src[i+1]]))
		w.Add(uint64(t.codes[src[i+2]]), uint(t.lengths[src[i+2]]))
		w.Add(uint64(t.codes[src[i+3]]), uint(t.lengths[src[i+3]]))
		w.Carry()
	}
	for ; i < len(src); i++ {
		w.WriteBits(uint64(t.codes[src[i]]), uint(t.lengths[src[i]]))
	}
}

// minCompress4 is the smallest input Compress4 accepts: each of the four
// streams must hold at least one symbol and the 6-byte jump header has to
// amortize.
const minCompress4 = 16

// Compress4 encodes src with a single shared table into four independent
// bitstreams — one per quarter of the input — so the decoder can run four
// symbol chains in parallel (instruction-level, not goroutines). Layout:
//
//	weight-table header · 3×uint16 LE stream sizes · stream1..stream4
//
// The last stream's size is implied by the payload length. Streams cover
// ceil(n/4) symbols each except the fourth, which takes the remainder.
// Returns ErrIncompressible under the same policy as Compress.
func (s *Scratch) Compress4(dst, src []byte) ([]byte, error) {
	if len(src) < minCompress4 {
		return nil, ErrIncompressible
	}
	clear(s.freqs[:])
	for _, b := range src {
		s.freqs[b]++
	}
	distinct := 0
	for _, f := range s.freqs {
		if f > 0 {
			distinct++
		}
	}
	if distinct < 2 {
		return nil, ErrIncompressible // RLE territory
	}
	if err := s.build.BuildLengths(s.lengths[:], s.freqs[:], MaxCodeLen); err != nil {
		return nil, err
	}
	t := &s.table
	if err := t.init(s.lengths[:]); err != nil {
		return nil, err
	}
	payloadBits := t.EstimateSize(s.freqs[:])
	estimate := headerSize(t.maxSym) + 6 + (payloadBits+7)/8 + 3
	if estimate >= len(src) {
		return nil, ErrIncompressible
	}
	start := len(dst)
	dst = t.writeHeader(dst)
	jump := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0)
	q := (len(src) + 3) / 4
	w := &s.w64
	for k := 0; k < 4; k++ {
		lo := k * q
		hi := lo + q
		if k == 3 {
			hi = len(src)
		}
		prev := len(dst)
		w.ResetBuf(dst)
		encodeStream(w, t, src[lo:hi])
		dst = w.Flush()
		if k < 3 {
			size := len(dst) - prev
			if size > 0xffff {
				return nil, fmt.Errorf("huffman: stream %d overflows jump table (%d bytes)", k, size)
			}
			dst[jump+2*k] = byte(size)
			dst[jump+2*k+1] = byte(size >> 8)
		}
	}
	if len(dst)-start >= len(src) {
		// Return dst at its original length, not nil: the caller keeps the
		// capacity this attempt grew, so incompressible small payloads
		// don't reallocate the staging buffer every call.
		return dst[:start], ErrIncompressible
	}
	return dst, nil
}

// Decompress4 decodes a payload produced by Compress4 into exactly n
// bytes appended to dst. The four streams are decoded in one interleaved
// loop, two symbols per stream per refill, so the four dependent-load
// chains overlap instead of serializing.
func (s *Scratch) Decompress4(dst, src []byte, n int) ([]byte, error) {
	used, err := s.readHeader(src)
	if err != nil {
		return nil, err
	}
	if n < 4 {
		return nil, ErrCorrupt
	}
	q := (n + 3) / 4
	n4 := n - 3*q
	if n4 <= 0 {
		return nil, ErrCorrupt
	}
	if len(src) < used+6 {
		return nil, ErrCorrupt
	}
	sz1 := int(src[used]) | int(src[used+1])<<8
	sz2 := int(src[used+2]) | int(src[used+3])<<8
	sz3 := int(src[used+4]) | int(src[used+5])<<8
	p := used + 6
	if p+sz1+sz2+sz3 > len(src) {
		return nil, ErrCorrupt
	}
	b1 := src[p : p+sz1]
	b2 := src[p+sz1 : p+sz1+sz2]
	b3 := src[p+sz1+sz2 : p+sz1+sz2+sz3]
	b4 := src[p+sz1+sz2+sz3:]

	base := len(dst)
	dst = grow(dst, n)
	out := dst[base:]
	o1, o2, o3, o4 := out[:q], out[q:2*q], out[2*q:3*q], out[3*q:]

	t := &s.table
	dec := t.dec
	tlog := uint(t.tableLog)
	var r1, r2, r3, r4 bits.Reader64
	r1.Init(b1)
	r2.Init(b2)
	r3.Init(b3)
	r4.Init(b4)

	// Interleaved main loop: bounded by the shortest stream (the fourth),
	// two symbols per stream per refill — 8 independent table lookups in
	// flight per iteration.
	bad := uint16(0)
	k := 0
	for ; k+2 <= n4; k += 2 {
		r1.Refill()
		r2.Refill()
		r3.Refill()
		r4.Refill()
		e := dec[r1.Peek(tlog)]
		r1.Consume(uint(e & 0xf))
		o1[k] = byte(e >> decEntryBits)
		bad |= e - 1
		e = dec[r2.Peek(tlog)]
		r2.Consume(uint(e & 0xf))
		o2[k] = byte(e >> decEntryBits)
		bad |= e - 1
		e = dec[r3.Peek(tlog)]
		r3.Consume(uint(e & 0xf))
		o3[k] = byte(e >> decEntryBits)
		bad |= e - 1
		e = dec[r4.Peek(tlog)]
		r4.Consume(uint(e & 0xf))
		o4[k] = byte(e >> decEntryBits)
		bad |= e - 1
		e = dec[r1.Peek(tlog)]
		r1.Consume(uint(e & 0xf))
		o1[k+1] = byte(e >> decEntryBits)
		bad |= e - 1
		e = dec[r2.Peek(tlog)]
		r2.Consume(uint(e & 0xf))
		o2[k+1] = byte(e >> decEntryBits)
		bad |= e - 1
		e = dec[r3.Peek(tlog)]
		r3.Consume(uint(e & 0xf))
		o3[k+1] = byte(e >> decEntryBits)
		bad |= e - 1
		e = dec[r4.Peek(tlog)]
		r4.Consume(uint(e & 0xf))
		o4[k+1] = byte(e >> decEntryBits)
		bad |= e - 1
	}
	if bad&0x8000 != 0 {
		return nil, ErrCorrupt
	}
	// Stream tails: at most 3 symbols each for streams 1-3 (their length
	// exceeds the fourth's by at most 3) plus the odd symbol of stream 4.
	if !finishStream(o1, k, &r1, dec, tlog) ||
		!finishStream(o2, k, &r2, dec, tlog) ||
		!finishStream(o3, k, &r3, dec, tlog) ||
		!finishStream(o4, k, &r4, dec, tlog) {
		return nil, ErrCorrupt
	}
	if r1.Overrun() || r2.Overrun() || r3.Overrun() || r4.Overrun() {
		return nil, ErrCorrupt
	}
	return dst, nil
}

// finishStream drains the last few symbols of one stream after the
// interleaved loop.
func finishStream(out []byte, k int, r *bits.Reader64, dec []uint16, tlog uint) bool {
	for ; k < len(out); k++ {
		r.Refill()
		e := dec[r.Peek(tlog)]
		if e == 0 {
			return false
		}
		r.Consume(uint(e & 0xf))
		out[k] = byte(e >> decEntryBits)
	}
	return true
}

// Compress Huffman-codes src, appending the table header and payload to dst.
// It returns ErrIncompressible when the encoded form (header included) would
// not be smaller than src, and an error when src is empty or single-symbol
// (callers handle those with raw/RLE block modes).
func Compress(dst, src []byte) ([]byte, error) {
	var s Scratch
	return s.Compress(dst, src)
}

// CompressWithTable encodes src with a pre-built table (for dictionary reuse),
// still emitting the header so payloads stay self-describing. Symbols missing
// from the table cause an error.
func CompressWithTable(dst, src []byte, t *Table) ([]byte, error) {
	for _, b := range src {
		if t.lengths[b] == 0 {
			return nil, fmt.Errorf("huffman: symbol %d not in table", b)
		}
	}
	dst = t.writeHeader(dst)
	w := bits.NewWriter(len(src))
	for _, b := range src {
		w.WriteBits(uint64(t.codes[b]), uint(t.lengths[b]))
	}
	return append(dst, w.Flush()...), nil
}

// Decompress decodes a payload produced by Compress into exactly n bytes,
// appended to dst.
func Decompress(dst, src []byte, n int) ([]byte, error) {
	var s Scratch
	return s.Decompress(dst, src, n)
}

// Compress4 is the one-shot form of Scratch.Compress4.
func Compress4(dst, src []byte) ([]byte, error) {
	var s Scratch
	return s.Compress4(dst, src)
}

// Decompress4 is the one-shot form of Scratch.Decompress4.
func Decompress4(dst, src []byte, n int) ([]byte, error) {
	var s Scratch
	return s.Decompress4(dst, src, n)
}
